# Targets mirror .github/workflows/ci.yml so local runs match the
# pipeline exactly.

GO ?= go

.PHONY: all build test bench lint fmt serve-smoke cluster-smoke chaos-smoke obs-smoke profile

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# The short benchmark smoke CI runs, plus a perf record from benchtab
# and the alloc-regression diff against the committed seed baseline.
bench:
	$(GO) test -run '^$$' -bench 'MatMulInto128|MulDenseInto' -benchtime 1x ./internal/mat/ ./internal/sparse/
	$(GO) test -run '^$$' -bench DDIGCNTraining -benchtime 1x -timeout 30m .
	$(GO) run ./cmd/benchtab -table 1 -trainbench -json BENCH_local.json
	$(GO) run ./cmd/benchdiff BENCH_seed.json BENCH_local.json
	$(GO) run ./cmd/benchdiff BENCH_baseline.json BENCH_local.json

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# Train a tiny model, round-trip it through a snapshot, boot the HTTP
# server on an ephemeral port, smoke every endpoint and record a
# servebench JSON — the same script CI runs.
serve-smoke:
	./scripts/serve-smoke.sh

# Boot 1 dssddi-router + 3 dssddi-serve backends, smoke the fleet
# (sticky routing, shard-local registry, coordinated rolling reload
# under -strict load) and record BENCH_cluster.json — the same script
# the CI "cluster" job runs. The >= 2x scaling gate needs >= 3 cores.
cluster-smoke:
	./scripts/cluster-smoke.sh

# Observability end to end: 1 router + 2 backends at 100% trace
# sampling under mixed load, every response echoing X-Request-Id, a
# known request correlated into both tiers' /debug/tracez with stage
# spans summing to its latency, and both Prometheus expositions
# round-tripped through the strict in-repo parser — the same script
# the CI "obs" job runs.
obs-smoke:
	./scripts/obs-smoke.sh

# Durability + overload under fire: WAL-backed backend behind a
# fault-injecting TCP proxy, kill -9 + crash recovery mid-workload
# (zero lost registrations, bitwise-identical answers, bounded error
# rate), plus an admission-control shed check. Records
# BENCH_chaos.json — the same script the CI "chaos" job runs.
chaos-smoke:
	./scripts/chaos-smoke.sh

# CPU + heap profiles of the serve hot path: one full cold suggest
# request (handler -> batcher -> fused scoring -> encode) per
# iteration. Inspect with `go tool pprof cpu.pprof` / `mem.pprof`.
profile:
	$(GO) test -run '^$$' -bench ServeSuggestCold -benchtime 3s \
		-cpuprofile cpu.pprof -memprofile mem.pprof ./internal/serve/
	@echo "profiles written: cpu.pprof mem.pprof"

fmt:
	gofmt -w .

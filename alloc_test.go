package dssddi

import (
	"sync"
	"testing"

	"dssddi/internal/mat"
)

var (
	allocSysOnce sync.Once
	allocSys     *System
	allocData    *Data
)

// allocSystem trains one small system shared by the serving-path
// allocation gates.
func allocSystem(t *testing.T) (*System, *Data) {
	t.Helper()
	allocSysOnce.Do(func() {
		data := GenerateChronic(1, 60, 50)
		cfg := DefaultConfig()
		cfg.DDIEpochs = 20
		cfg.MDEpochs = 30
		cfg.Hidden = 16
		sys := New(cfg)
		if err := sys.Train(data); err != nil {
			panic(err)
		}
		allocSys, allocData = sys, data
	})
	if allocSys == nil {
		t.Fatal("shared alloc-gate system failed to train")
	}
	return allocSys, allocData
}

// TestSuggestAllocBudget is the serving half of the ISSUE 2 allocation
// gate: with the MDGCN drug representations cached after training, a
// Suggest call is a patient-encoder forward plus one decoder pass and
// must stay within a fixed small allocation budget (serial kernels for
// a deterministic count).
func TestSuggestAllocBudget(t *testing.T) {
	const budget = 100
	sys, data := allocSystem(t)
	mat.SetWorkers(1)
	defer mat.SetWorkers(0)

	patient := data.TestPatients()[0]
	got := testing.AllocsPerRun(20, func() {
		if _, err := sys.Suggest(patient, 3); err != nil {
			t.Fatal(err)
		}
	})
	if got > budget {
		t.Fatalf("Suggest allocates %.1f objects per call, budget %d", got, budget)
	}
}

// TestScoresAllocBudget pins the System.Scores fast path (the double
// copy this PR removed): scoring one patient must stay within the same
// budget as Suggest.
func TestScoresAllocBudget(t *testing.T) {
	const budget = 100
	sys, data := allocSystem(t)
	mat.SetWorkers(1)
	defer mat.SetWorkers(0)

	patients := data.TestPatients()[:1]
	got := testing.AllocsPerRun(20, func() {
		if _, err := sys.Scores(patients); err != nil {
			t.Fatal(err)
		}
	})
	if got > budget {
		t.Fatalf("Scores allocates %.1f objects per call, budget %d", got, budget)
	}
}

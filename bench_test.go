package dssddi_test

// The benchmarks in this file regenerate every table and figure of the
// paper's evaluation (see DESIGN.md's experiment index and
// EXPERIMENTS.md for paper-vs-measured numbers). Each benchmark prints
// its table/figure once, then times repeated regeneration. They run on
// the quick profile; `go run ./cmd/benchtab -full` reproduces the
// paper-scale run.

import (
	"fmt"
	"sync"
	"testing"

	"dssddi/internal/baselines"
	"dssddi/internal/ddi"
	"dssddi/internal/eval"
	"dssddi/internal/md"
	"dssddi/internal/metrics"
	"dssddi/internal/ms"
)

// benchOpts is the shared quick profile: large enough for the paper's
// orderings to emerge, small enough for a bench iteration in seconds.
func benchOpts() eval.Options {
	o := eval.Quick()
	o.Males, o.Females = 260, 240
	o.MIMICPatients = 300
	o.DDIEpochs = 80
	o.MDEpochs = 160
	o.BaselineEpochs = 80
	o.Hidden = 48
	return o
}

var (
	suiteOnce sync.Once
	suite     *eval.Suite
)

func sharedSuite() *eval.Suite {
	suiteOnce.Do(func() { suite = eval.NewSuite(benchOpts()) })
	return suite
}

// BenchmarkTableI regenerates Table I: medication-suggestion metrics of
// all baselines and DSSDDI backbones on the chronic data.
func BenchmarkTableI(b *testing.B) {
	s := sharedSuite()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := s.TableI()
		if i == 0 {
			b.Log("\n" + t.Format())
		}
	}
}

// BenchmarkTableII regenerates the drug-embedding ablation (Table II).
func BenchmarkTableII(b *testing.B) {
	s := sharedSuite()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := s.TableII()
		if i == 0 {
			b.Log("\n" + t.Format())
		}
	}
}

// BenchmarkTableIII regenerates the Suggestion Satisfaction comparison
// (Table III).
func BenchmarkTableIII(b *testing.B) {
	s := sharedSuite()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		title, rows := s.TableIII()
		if i == 0 {
			b.Log("\n" + eval.FormatSS(title, rows))
		}
	}
}

// BenchmarkTableIV regenerates the MIMIC-III comparison (Table IV).
func BenchmarkTableIV(b *testing.B) {
	s := sharedSuite()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := s.TableIV()
		if i == 0 {
			b.Log("\n" + t.Format())
		}
	}
}

// BenchmarkFig2Fig3 regenerates the data-set distribution figures.
func BenchmarkFig2Fig3(b *testing.B) {
	s := sharedSuite()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f2, f3 := s.Figure2(), s.Figure3()
		if i == 0 {
			b.Log("\n" + f2 + "\n" + f3)
		}
	}
}

// BenchmarkFig7 regenerates the representation-similarity analysis
// (Fig. 7, the over-smoothing argument).
func BenchmarkFig7(b *testing.B) {
	s := sharedSuite()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, txt := s.Figure7()
		if i == 0 {
			b.Log("\n" + txt)
		}
	}
}

// BenchmarkFig8 regenerates the cardiovascular explanation case study
// (Fig. 8).
func BenchmarkFig8(b *testing.B) {
	s := sharedSuite()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		txt := s.Figure8()
		if i == 0 {
			b.Log("\n" + txt)
		}
	}
}

// BenchmarkFig9 regenerates the four DDI case studies (Fig. 9).
func BenchmarkFig9(b *testing.B) {
	s := sharedSuite()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, txt := s.Figure9()
		if i == 0 {
			b.Log("\n" + txt)
		}
	}
}

// BenchmarkAblationDelta sweeps the counterfactual loss weight δ
// (DESIGN.md ablation 1; δ=0 disables the causal loss).
func BenchmarkAblationDelta(b *testing.B) {
	s := sharedSuite()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var out string
		for _, delta := range []float64{0, 0.5, 1} {
			cfg := md.DefaultConfig()
			cfg.Hidden = s.Opts.Hidden
			cfg.Epochs = s.Opts.MDEpochs
			cfg.Delta = delta
			cfg.UseCounterfactual = delta > 0
			m := md.NewModel(s.Chronic, nil, cfg)
			m.Train()
			r := reportAt4(m, s)
			out += fmt.Sprintf("delta=%.1f P@4=%.4f NDCG@4=%.4f\n", delta, r.Precision, r.NDCG)
		}
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

// BenchmarkAblationLayers sweeps the MDGCN propagation depth T'
// (DESIGN.md ablation 2).
func BenchmarkAblationLayers(b *testing.B) {
	s := sharedSuite()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var out string
		for _, layers := range []int{1, 2, 3} {
			cfg := md.DefaultConfig()
			cfg.Hidden = s.Opts.Hidden
			cfg.Epochs = s.Opts.MDEpochs
			cfg.PropLayers = layers
			m := md.NewModel(s.Chronic, nil, cfg)
			m.Train()
			r := reportAt4(m, s)
			out += fmt.Sprintf("T'=%d P@4=%.4f NDCG@4=%.4f\n", layers, r.Precision, r.NDCG)
		}
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

// BenchmarkAblationZeroEdges sweeps the zero-edge sampling ratio of the
// DDI training graph (DESIGN.md ablation 4).
func BenchmarkAblationZeroEdges(b *testing.B) {
	s := sharedSuite()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var out string
		for _, ratio := range []float64{0, 0.5, 1, 2} {
			cfg := ddi.DefaultConfig()
			cfg.Hidden = s.Opts.Hidden
			cfg.Epochs = s.Opts.DDIEpochs
			cfg.ZeroRatio = ratio
			dm := ddi.NewModel(s.Chronic.DDI, cfg)
			losses := dm.Train()
			out += fmt.Sprintf("zeroRatio=%.1f finalMSE=%.4f edges=%d\n",
				ratio, losses[len(losses)-1], len(dm.Graph.EdgeU))
		}
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

// BenchmarkDDIGCNTraining times one DDI-module training run per
// backbone (the component benchmark behind Tables I/II).
func BenchmarkDDIGCNTraining(b *testing.B) {
	s := sharedSuite()
	b.ReportAllocs()
	for _, backbone := range []ddi.Backbone{ddi.GIN, ddi.SGCN, ddi.SiGAT, ddi.SNEA} {
		backbone := backbone
		b.Run(backbone.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := ddi.DefaultConfig()
				cfg.Backbone = backbone
				cfg.Hidden = s.Opts.Hidden
				cfg.Epochs = 50
				m := ddi.NewModel(s.Chronic.DDI, cfg)
				m.Train()
			}
		})
	}
}

// BenchmarkMDGCNTraining times one MD-module training run.
func BenchmarkMDGCNTraining(b *testing.B) {
	s := sharedSuite()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := md.DefaultConfig()
		cfg.Hidden = s.Opts.Hidden
		cfg.Epochs = 50
		m := md.NewModel(s.Chronic, nil, cfg)
		m.Train()
	}
}

// BenchmarkSubgraphQuery times the MS module's community search over
// the DDI graph (per suggestion).
func BenchmarkSubgraphQuery(b *testing.B) {
	b.ReportAllocs()
	s := sharedSuite()
	lg := baselines.NewUserSim()
	lg.Fit(s.Chronic)
	scores := lg.Scores(s.Chronic.Test[:1])
	top := metrics.TopK(scores.Row(0), 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchExplain(s, top)
	}
}

func benchExplain(s *eval.Suite, drugs []int) {
	ms.Explain(s.Chronic.DDI, drugs, ms.DefaultOptions())
}

func reportAt4(m *md.Model, s *eval.Suite) metrics.Report {
	scores := m.Scores(s.Chronic.Test)
	rows := make([][]float64, len(s.Chronic.Test))
	truth := make([][]int, len(s.Chronic.Test))
	for i, p := range s.Chronic.Test {
		rows[i] = scores.Row(i)
		truth[i] = s.Chronic.TruePositives(p)
	}
	return metrics.Evaluate(rows, truth, []int{4})[0]
}

// Command benchdiff compares two benchtab/loadgen -json reports
// (typically a committed baseline against a fresh run) and enforces
// the regression gates:
//
//   - any training entry whose allocs/op exceeds the baseline by more
//     than -max-alloc-ratio fails the run;
//   - cold-suggest entries (name containing "suggest-cold") also gate
//     on ns/op: the interactive cold path is the product metric, so a
//     >-max-ns-ratio wall-clock regression fails even though other
//     entries' ns/op stay informational (wall-clock is
//     machine-dependent; allocation counts are not);
//   - serving entries overlapping by name are diffed on req/s. By
//     default this is informational — serving throughput on shared CI
//     runners is too noisy to gate hard — but -min-rps-ratio N fails
//     any suggest entry whose current req/s drops below N x baseline.
//
// A second mode asserts replication scaling inside ONE report:
//
//	benchdiff -scale cluster-suggest:suggest:2.0 BENCH_cluster.json
//
// fails unless entry "cluster-suggest" achieves at least 2.0x the
// req/s of entry "suggest" — the cluster smoke's proof that fleet
// throughput actually scales with replica count.
//
// A third mode gates on the replication section of ONE report:
//
//	benchdiff -replication-gate BENCH_chaos.json
//
// requires the report to carry replication stats (a chaos run with
// -verify-registry) and fails when lost_registrations is nonzero — an
// acknowledged registration that vanished is a hard failure, never a
// threshold. The same gate applies automatically in two-report mode
// when the current report carries a replication section.
//
// A fourth mode gates on the precision section of ONE report:
//
//	benchdiff -precision-gate BENCH_serve.json
//
// requires the report to carry precision stats ('dssddi precision
// -bench') and hard-fails when the f32 entry's max absolute score
// divergence from the float64 oracle exceeds -max-abs-delta, or its
// top-K ranking invariance drops below -min-ranking-invariance. The
// int8-experimental entry is printed but never gated — it is the
// proven-path experiment, not a shipped precision.
//
// Usage:
//
//	benchdiff [-max-alloc-ratio 2.0] [-max-ns-ratio 2.0] [-min-rps-ratio 0] baseline.json current.json
//	benchdiff -scale scaled:base:minratio report.json
//	benchdiff -replication-gate report.json
//	benchdiff -precision-gate [-max-abs-delta 1e-4] [-min-ranking-invariance 0.95] report.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dssddi/internal/benchfmt"
)

func load(path string) (benchfmt.Report, error) {
	var r benchfmt.Report
	buf, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(buf, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func main() {
	maxAllocRatio := flag.Float64("max-alloc-ratio", 2.0, "fail when current allocs/op exceeds baseline by this factor")
	maxNsRatio := flag.Float64("max-ns-ratio", 2.0, "fail when a cold-suggest entry's ns/op exceeds baseline by this factor")
	minRPSRatio := flag.Float64("min-rps-ratio", 0, "fail when a serving suggest entry's req/s falls below this fraction of baseline (0 = informational only)")
	scale := flag.String("scale", "", "single-report scaling assertion: scaledEntry:baseEntry:minRatio (e.g. cluster-suggest:suggest:2.0)")
	replGate := flag.Bool("replication-gate", false, "single-report replication gate: require a replication section and fail when lost_registrations > 0")
	precGate := flag.Bool("precision-gate", false, "single-report precision gate: require precision stats and fail when the f32 divergence or ranking invariance breaks the thresholds")
	maxAbsDelta := flag.Float64("max-abs-delta", 1e-4, "precision gate: max tolerated |score_f32 - score_f64|")
	minInvariance := flag.Float64("min-ranking-invariance", 0.95, "precision gate: min fraction of sampled patients whose f32 top-K matches the f64 oracle")
	flag.Parse()

	if *precGate {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: benchdiff -precision-gate report.json")
			os.Exit(2)
		}
		rep, err := load(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if err := checkPrecision(rep, *maxAbsDelta, *minInvariance); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		return
	}

	if *replGate {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: benchdiff -replication-gate report.json")
			os.Exit(2)
		}
		rep, err := load(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if rep.Replication == nil {
			fmt.Fprintf(os.Stderr, "benchdiff: -replication-gate: %s has no replication section (run loadgen with -verify-registry)\n", flag.Arg(0))
			os.Exit(2)
		}
		if err := checkReplication(rep.Replication); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		return
	}

	if *scale != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: benchdiff -scale scaled:base:minratio report.json")
			os.Exit(2)
		}
		rep, err := load(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if err := assertScale(rep, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-alloc-ratio N] [-max-ns-ratio N] [-min-rps-ratio N] baseline.json current.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	matched := 0
	failed := false
	if len(cur.Training) > 0 {
		m, f := diffTraining(base, cur, *maxAllocRatio, *maxNsRatio)
		matched += m
		failed = failed || f
	}
	if len(cur.Serving) > 0 {
		m, f := diffServing(base, cur, *minRPSRatio)
		matched += m
		failed = failed || f
	}
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no overlapping entries between reports")
		os.Exit(2)
	}
	// The lost-registration gate is unconditional: when the current
	// report carries a replication section, zero lost is a hard
	// requirement, not a ratio against the baseline.
	if cur.Replication != nil {
		if err := checkReplication(cur.Replication); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			failed = true
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: regression beyond thresholds (allocs %.1fx, cold ns %.1fx, min rps %.2fx)\n",
			*maxAllocRatio, *maxNsRatio, *minRPSRatio)
		os.Exit(1)
	}
}

func diffTraining(base, cur benchfmt.Report, maxAllocRatio, maxNsRatio float64) (matched int, failed bool) {
	baseline := make(map[string]benchfmt.TrainBench, len(base.Training))
	for _, tb := range base.Training {
		baseline[tb.Name] = tb
	}
	fmt.Printf("%-28s %14s %14s %9s %14s %14s %9s\n",
		"benchmark", "base ns/op", "cur ns/op", "speedup", "base allocs", "cur allocs", "ratio")
	for _, tb := range cur.Training {
		b, ok := baseline[tb.Name]
		if !ok {
			fmt.Printf("%-28s %14s (no baseline entry, skipped)\n", tb.Name, "-")
			continue
		}
		matched++
		speedup := 0.0
		if tb.NsPerOp > 0 {
			speedup = b.NsPerOp / tb.NsPerOp
		}
		// A zero-alloc baseline must not disable the gate: treat it as
		// one alloc/op so any real regression still trips the ratio.
		denom := b.AllocsPerOp
		if denom < 1 {
			denom = 1
		}
		ratio := tb.AllocsPerOp / denom
		status := ""
		if ratio > maxAllocRatio {
			status = "  <-- ALLOC REGRESSION"
			failed = true
		}
		if strings.Contains(tb.Name, "suggest-cold") && b.NsPerOp > 0 && tb.NsPerOp > maxNsRatio*b.NsPerOp {
			status += "  <-- COLD-PATH NS REGRESSION"
			failed = true
		}
		fmt.Printf("%-28s %14.0f %14.0f %8.2fx %14.1f %14.1f %8.2fx%s\n",
			tb.Name, b.NsPerOp, tb.NsPerOp, speedup, b.AllocsPerOp, tb.AllocsPerOp, ratio, status)
	}
	return matched, failed
}

// diffServing compares serving throughput entry by entry. Suggest
// entries (the product metric) gate when minRPSRatio > 0; everything
// is always printed so CI job summaries carry the trajectory even
// when the gate is off.
func diffServing(base, cur benchfmt.Report, minRPSRatio float64) (matched int, failed bool) {
	baseline := make(map[string]benchfmt.ServeBench, len(base.Serving))
	for _, sb := range base.Serving {
		baseline[sb.Name] = sb
	}
	fmt.Printf("%-28s %14s %14s %9s %9s %9s\n",
		"serving entry", "base req/s", "cur req/s", "ratio", "cur p99", "cur errs")
	for _, sb := range cur.Serving {
		b, ok := baseline[sb.Name]
		if !ok {
			fmt.Printf("%-28s %14s (no baseline entry, skipped)\n", sb.Name, "-")
			continue
		}
		matched++
		ratio := 0.0
		if b.RPS > 0 {
			ratio = sb.RPS / b.RPS
		}
		status := ""
		if minRPSRatio > 0 && strings.Contains(sb.Name, "suggest") && b.RPS > 0 && sb.RPS < minRPSRatio*b.RPS {
			status = "  <-- THROUGHPUT REGRESSION"
			failed = true
		}
		fmt.Printf("%-28s %14.0f %14.0f %8.2fx %7.2fms %9d%s\n",
			sb.Name, b.RPS, sb.RPS, ratio, sb.P99Ms, sb.Errors, status)
	}
	return matched, failed
}

// checkReplication prints a report's replication section and returns
// an error when any acknowledged registration was lost.
func checkReplication(r *benchfmt.ReplicationStats) error {
	fmt.Printf("replication: %d registrations verified, %d lost | replica reads %d, read repairs %d, fanouts %d, quorum failures %d, anti-entropy %d syncs / %d records, pinned 503s %d\n",
		r.VerifiedRegistrations, r.LostRegistrations, r.ReplicaReads, r.ReadRepairs,
		r.ReplicationFanouts, r.QuorumFailures, r.AntiEntropySyncs, r.AntiEntropyRecords, r.PinnedUnavailable)
	if r.LostRegistrations > 0 {
		return fmt.Errorf("replication gate: %d acknowledged registrations lost (must be 0)", r.LostRegistrations)
	}
	return nil
}

// checkPrecision prints a report's precision characterization and
// enforces the f32 accuracy gate: the quantized path only ships while
// it provably tracks the float64 oracle. Missing stats are an error —
// a pipeline that forgets the characterization step must not pass.
func checkPrecision(rep benchfmt.Report, maxAbsDelta, minInvariance float64) error {
	if len(rep.Precisions) == 0 {
		return fmt.Errorf("-precision-gate: report has no precision stats (run 'dssddi precision -bench')")
	}
	var gated bool
	var gateErr error
	for _, ps := range rep.Precisions {
		fmt.Printf("precision %-18s max|dscore| %.3e, top-%d ranking invariance %.3f over %d patients x %d drugs\n",
			ps.Precision, ps.MaxAbsDelta, ps.K, ps.RankingInvariance, ps.Patients, ps.Drugs)
		if ps.Precision != "f32" {
			continue
		}
		gated = true
		if ps.MaxAbsDelta > maxAbsDelta {
			gateErr = fmt.Errorf("precision gate: f32 max|dscore| %.3e exceeds %.3e", ps.MaxAbsDelta, maxAbsDelta)
		} else if ps.RankingInvariance < minInvariance {
			gateErr = fmt.Errorf("precision gate: f32 ranking invariance %.3f below %.3f", ps.RankingInvariance, minInvariance)
		}
	}
	if !gated {
		return fmt.Errorf("-precision-gate: report has no f32 precision entry")
	}
	return gateErr
}

// assertScale enforces scaledEntry.RPS >= minRatio * baseEntry.RPS
// within one report.
func assertScale(rep benchfmt.Report, spec string) error {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return fmt.Errorf("-scale %q: want scaledEntry:baseEntry:minRatio", spec)
	}
	minRatio, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || minRatio <= 0 {
		return fmt.Errorf("-scale %q: bad ratio %q", spec, parts[2])
	}
	entries := make(map[string]benchfmt.ServeBench, len(rep.Serving))
	for _, sb := range rep.Serving {
		entries[sb.Name] = sb
	}
	scaled, ok := entries[parts[0]]
	if !ok {
		return fmt.Errorf("-scale: entry %q not in report", parts[0])
	}
	baseEntry, ok := entries[parts[1]]
	if !ok {
		return fmt.Errorf("-scale: entry %q not in report", parts[1])
	}
	if baseEntry.RPS <= 0 {
		return fmt.Errorf("-scale: base entry %q has no throughput", parts[1])
	}
	ratio := scaled.RPS / baseEntry.RPS
	fmt.Printf("scale: %s %.0f req/s vs %s %.0f req/s = %.2fx (require >= %.2fx)\n",
		parts[0], scaled.RPS, parts[1], baseEntry.RPS, ratio, minRatio)
	if ratio < minRatio {
		return fmt.Errorf("scaling assertion failed: %s is %.2fx of %s, want >= %.2fx",
			parts[0], ratio, parts[1], minRatio)
	}
	return nil
}

// Command benchdiff compares two benchtab -json reports (typically the
// committed BENCH_seed.json baseline against a fresh run) and enforces
// the regression gates:
//
//   - any training entry whose allocs/op exceeds the baseline by more
//     than -max-alloc-ratio fails the run;
//   - cold-suggest entries (name containing "suggest-cold") also gate
//     on ns/op: the interactive cold path is the product metric, so a
//     >-max-ns-ratio wall-clock regression fails even though other
//     entries' ns/op stay informational (wall-clock is
//     machine-dependent; allocation counts are not).
//
// Usage:
//
//	benchdiff [-max-alloc-ratio 2.0] [-max-ns-ratio 2.0] baseline.json current.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"dssddi/internal/benchfmt"
)

func load(path string) (benchfmt.Report, error) {
	var r benchfmt.Report
	buf, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(buf, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func main() {
	maxAllocRatio := flag.Float64("max-alloc-ratio", 2.0, "fail when current allocs/op exceeds baseline by this factor")
	maxNsRatio := flag.Float64("max-ns-ratio", 2.0, "fail when a cold-suggest entry's ns/op exceeds baseline by this factor")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-alloc-ratio N] baseline.json current.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	baseline := make(map[string]benchfmt.TrainBench, len(base.Training))
	for _, tb := range base.Training {
		baseline[tb.Name] = tb
	}

	fmt.Printf("%-28s %14s %14s %9s %14s %14s %9s\n",
		"benchmark", "base ns/op", "cur ns/op", "speedup", "base allocs", "cur allocs", "ratio")
	failed := false
	matched := 0
	for _, tb := range cur.Training {
		b, ok := baseline[tb.Name]
		if !ok {
			fmt.Printf("%-28s %14s (no baseline entry, skipped)\n", tb.Name, "-")
			continue
		}
		matched++
		speedup := 0.0
		if tb.NsPerOp > 0 {
			speedup = b.NsPerOp / tb.NsPerOp
		}
		// A zero-alloc baseline must not disable the gate: treat it as
		// one alloc/op so any real regression still trips the ratio.
		denom := b.AllocsPerOp
		if denom < 1 {
			denom = 1
		}
		ratio := tb.AllocsPerOp / denom
		status := ""
		if ratio > *maxAllocRatio {
			status = "  <-- ALLOC REGRESSION"
			failed = true
		}
		if strings.Contains(tb.Name, "suggest-cold") && b.NsPerOp > 0 && tb.NsPerOp > *maxNsRatio*b.NsPerOp {
			status += "  <-- COLD-PATH NS REGRESSION"
			failed = true
		}
		fmt.Printf("%-28s %14.0f %14.0f %8.2fx %14.1f %14.1f %8.2fx%s\n",
			tb.Name, b.NsPerOp, tb.NsPerOp, speedup, b.AllocsPerOp, tb.AllocsPerOp, ratio, status)
	}
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no overlapping training entries between reports")
		os.Exit(2)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: regression beyond thresholds (allocs %.1fx, cold ns %.1fx)\n", *maxAllocRatio, *maxNsRatio)
		os.Exit(1)
	}
}

// Command benchtab regenerates the paper's tables and figures from the
// synthetic data sets.
//
// Usage:
//
//	benchtab                    # everything, quick profile
//	benchtab -table 1           # only Table I
//	benchtab -figure 7          # only Figure 7
//	benchtab -full              # paper-scale sizes (slow)
//	benchtab -workers 1         # exact-serial kernels
//	benchtab -json out.json     # also write per-section timings
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dssddi/internal/eval"
	"dssddi/internal/mat"
)

// section is one timed unit of work in the -json report.
type section struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// report is the machine-readable benchmark record CI archives per run
// (BENCH_*.json artifacts) so the perf trajectory of the kernels is
// tracked commit over commit.
type report struct {
	Schema       string    `json:"schema"`
	Profile      string    `json:"profile"`
	Workers      int       `json:"workers"`
	GoMaxProcs   int       `json:"go_max_procs"`
	Seed         int64     `json:"seed"`
	Sections     []section `json:"sections"`
	TotalSeconds float64   `json:"total_seconds"`
}

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate one table (1-4); 0 = all")
		figure   = flag.Int("figure", 0, "regenerate one figure (2, 3, 7, 8, 9); 0 = all")
		full     = flag.Bool("full", false, "paper-scale data and epochs (slow)")
		seed     = flag.Int64("seed", 1, "run seed")
		workers  = flag.Int("workers", 0, "kernel worker goroutines (0 = GOMAXPROCS, 1 = serial)")
		jsonPath = flag.String("json", "", "write per-section timings to this JSON file")
	)
	flag.Parse()

	mat.SetWorkers(*workers)
	opts := eval.Quick()
	profile := "quick"
	if *full {
		opts = eval.Full()
		profile = "full"
	}
	opts.Seed = *seed
	rep := report{
		Schema:     "dssddi-bench/v1",
		Profile:    profile,
		Workers:    mat.Workers(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       *seed,
	}
	start := time.Now()
	fmt.Fprintf(os.Stderr, "generating data (%d+%d chronic, %d MIMIC, %d workers)...\n",
		opts.Males, opts.Females, opts.MIMICPatients, mat.Workers())
	suite := eval.NewSuite(opts)
	rep.Sections = append(rep.Sections, section{"GenerateData", time.Since(start).Seconds()})

	timed := func(name string, f func()) {
		t0 := time.Now()
		f()
		rep.Sections = append(rep.Sections, section{name, time.Since(t0).Seconds()})
	}

	wantTable := func(n int) bool { return *figure == 0 && (*table == 0 || *table == n) }
	wantFigure := func(n int) bool { return *table == 0 && (*figure == 0 || *figure == n) }

	if wantFigure(2) {
		timed("Figure2", func() { fmt.Println(suite.Figure2()) })
	}
	if wantFigure(3) {
		timed("Figure3", func() { fmt.Println(suite.Figure3()) })
	}
	if wantTable(1) {
		timed("TableI", func() { fmt.Println(suite.TableI().Format()) })
	}
	if wantTable(2) {
		timed("TableII", func() { fmt.Println(suite.TableII().Format()) })
	}
	if wantTable(3) {
		timed("TableIII", func() {
			title, rows := suite.TableIII()
			fmt.Println(eval.FormatSS(title, rows))
		})
	}
	if wantTable(4) {
		timed("TableIV", func() { fmt.Println(suite.TableIV().Format()) })
	}
	if wantFigure(7) {
		timed("Figure7", func() {
			_, txt := suite.Figure7()
			fmt.Println(txt)
		})
	}
	if wantFigure(8) {
		timed("Figure8", func() { fmt.Println(suite.Figure8()) })
	}
	if wantFigure(9) {
		timed("Figure9", func() {
			_, txt := suite.Figure9()
			fmt.Println(txt)
		})
	}
	rep.TotalSeconds = time.Since(start).Seconds()

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: marshal report: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchtab: wrote %s\n", *jsonPath)
	}
}

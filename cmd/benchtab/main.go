// Command benchtab regenerates the paper's tables and figures from the
// synthetic data sets.
//
// Usage:
//
//	benchtab                    # everything, quick profile
//	benchtab -table 1           # only Table I
//	benchtab -figure 7          # only Figure 7
//	benchtab -full              # paper-scale sizes (slow)
package main

import (
	"flag"
	"fmt"
	"os"

	"dssddi/internal/eval"
)

func main() {
	var (
		table  = flag.Int("table", 0, "regenerate one table (1-4); 0 = all")
		figure = flag.Int("figure", 0, "regenerate one figure (2, 3, 7, 8, 9); 0 = all")
		full   = flag.Bool("full", false, "paper-scale data and epochs (slow)")
		seed   = flag.Int64("seed", 1, "run seed")
	)
	flag.Parse()

	opts := eval.Quick()
	if *full {
		opts = eval.Full()
	}
	opts.Seed = *seed
	fmt.Fprintf(os.Stderr, "generating data (%d+%d chronic, %d MIMIC)...\n",
		opts.Males, opts.Females, opts.MIMICPatients)
	suite := eval.NewSuite(opts)

	wantTable := func(n int) bool { return *figure == 0 && (*table == 0 || *table == n) }
	wantFigure := func(n int) bool { return *table == 0 && (*figure == 0 || *figure == n) }

	if wantFigure(2) {
		fmt.Println(suite.Figure2())
	}
	if wantFigure(3) {
		fmt.Println(suite.Figure3())
	}
	if wantTable(1) {
		fmt.Println(suite.TableI().Format())
	}
	if wantTable(2) {
		fmt.Println(suite.TableII().Format())
	}
	if wantTable(3) {
		title, rows := suite.TableIII()
		fmt.Println(eval.FormatSS(title, rows))
	}
	if wantTable(4) {
		fmt.Println(suite.TableIV().Format())
	}
	if wantFigure(7) {
		_, txt := suite.Figure7()
		fmt.Println(txt)
	}
	if wantFigure(8) {
		fmt.Println(suite.Figure8())
	}
	if wantFigure(9) {
		_, txt := suite.Figure9()
		fmt.Println(txt)
	}
}

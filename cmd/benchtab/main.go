// Command benchtab regenerates the paper's tables and figures from the
// synthetic data sets.
//
// Usage:
//
//	benchtab                    # everything, quick profile
//	benchtab -table 1           # only Table I
//	benchtab -figure 7          # only Figure 7
//	benchtab -full              # paper-scale sizes (slow)
//	benchtab -workers 1         # exact-serial kernels
//	benchtab -trainbench        # also measure training/serving throughput
//	benchtab -json out.json     # also write per-section timings + allocs
//	benchtab -cpuprofile cpu.pb # write a pprof CPU profile
//	benchtab -memprofile mem.pb # write a pprof heap profile at exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"dssddi/internal/benchfmt"
	"dssddi/internal/ddi"
	"dssddi/internal/eval"
	"dssddi/internal/mat"
	"dssddi/internal/md"
)

func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// measure times iters operations of f and reads the allocator deltas
// around it.
func measure(name string, iters int, f func()) benchfmt.TrainBench {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	f()
	el := time.Since(t0)
	runtime.ReadMemStats(&m1)
	n := float64(iters)
	return benchfmt.TrainBench{
		Name:        name,
		Iters:       iters,
		Seconds:     el.Seconds(),
		NsPerOp:     float64(el.Nanoseconds()) / n,
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / n,
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / n,
	}
}

// runTrainBench measures DDIGCN and MDGCN training throughput and the
// per-patient scoring path on the chronic data, serial kernels (see
// trainBench). The workload shapes match the committed BENCH_seed.json
// recording of the seed implementation, so ratios against it are
// meaningful.
func runTrainBench(suite *eval.Suite, opts eval.Options) []benchfmt.TrainBench {
	prev := mat.Workers()
	mat.SetWorkers(1)
	defer mat.SetWorkers(prev)

	var out []benchfmt.TrainBench
	const epochs = 50
	dcfg := ddi.DefaultConfig()
	dcfg.Hidden = opts.Hidden
	dcfg.Epochs = epochs
	dcfg.Seed = opts.Seed
	dm := ddi.NewModel(suite.Chronic.DDI, dcfg)
	out = append(out, measure("DDIGCN-SGCN/train-epoch", epochs, func() { dm.Train() }))

	mcfg := md.DefaultConfig()
	mcfg.Hidden = opts.Hidden
	mcfg.Epochs = epochs
	mcfg.Seed = opts.Seed
	mm := md.NewModel(suite.Chronic, nil, mcfg)
	out = append(out, measure("MDGCN/train-epoch", epochs, func() { mm.Train() }))

	const scoreIters = 100
	patient := suite.Chronic.Test[0]
	out = append(out, measure("MDGCN/score-patient", scoreIters, func() {
		for i := 0; i < scoreIters; i++ {
			mm.Scores([]int{patient})
		}
	}))
	// The cold-suggest path: tiled TopKScores, no full row, pooled
	// scratch — the number the CI cold-path regression gate tracks.
	out = append(out, measure("MDGCN/suggest-cold", scoreIters, func() {
		for i := 0; i < scoreIters; i++ {
			mm.TopKScores(patient, 4)
		}
	}))
	return out
}

func main() {
	var (
		table      = flag.Int("table", 0, "regenerate one table (1-4); 0 = all")
		figure     = flag.Int("figure", 0, "regenerate one figure (2, 3, 7, 8, 9); 0 = all")
		full       = flag.Bool("full", false, "paper-scale data and epochs (slow)")
		seed       = flag.Int64("seed", 1, "run seed")
		workers    = flag.Int("workers", 0, "kernel worker goroutines (0 = GOMAXPROCS, 1 = serial)")
		jsonPath   = flag.String("json", "", "write per-section timings to this JSON file")
		trainbench = flag.Bool("trainbench", false, "measure training/serving throughput (serial workers)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	mat.SetWorkers(*workers)
	opts := eval.Quick()
	profile := "quick"
	if *full {
		opts = eval.Full()
		profile = "full"
	}
	opts.Seed = *seed
	rep := benchfmt.Report{
		Schema:     benchfmt.Schema,
		Profile:    profile,
		Workers:    mat.Workers(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       *seed,
		SIMD:       mat.SIMD(),
	}
	start := time.Now()
	startAllocs := mallocs()
	fmt.Fprintf(os.Stderr, "generating data (%d+%d chronic, %d MIMIC, %d workers)...\n",
		opts.Males, opts.Females, opts.MIMICPatients, mat.Workers())
	suite := eval.NewSuite(opts)
	rep.Sections = append(rep.Sections, benchfmt.Section{Name: "GenerateData", Seconds: time.Since(start).Seconds(), Allocs: mallocs() - startAllocs})

	timed := func(name string, f func()) {
		t0 := time.Now()
		a0 := mallocs()
		f()
		rep.Sections = append(rep.Sections, benchfmt.Section{Name: name, Seconds: time.Since(t0).Seconds(), Allocs: mallocs() - a0})
	}

	wantTable := func(n int) bool { return *figure == 0 && (*table == 0 || *table == n) }
	wantFigure := func(n int) bool { return *table == 0 && (*figure == 0 || *figure == n) }

	if wantFigure(2) {
		timed("Figure2", func() { fmt.Println(suite.Figure2()) })
	}
	if wantFigure(3) {
		timed("Figure3", func() { fmt.Println(suite.Figure3()) })
	}
	if wantTable(1) {
		timed("TableI", func() { fmt.Println(suite.TableI().Format()) })
	}
	if wantTable(2) {
		timed("TableII", func() { fmt.Println(suite.TableII().Format()) })
	}
	if wantTable(3) {
		timed("TableIII", func() {
			title, rows := suite.TableIII()
			fmt.Println(eval.FormatSS(title, rows))
		})
	}
	if wantTable(4) {
		timed("TableIV", func() { fmt.Println(suite.TableIV().Format()) })
	}
	if wantFigure(7) {
		timed("Figure7", func() {
			_, txt := suite.Figure7()
			fmt.Println(txt)
		})
	}
	if wantFigure(8) {
		timed("Figure8", func() { fmt.Println(suite.Figure8()) })
	}
	if wantFigure(9) {
		timed("Figure9", func() {
			_, txt := suite.Figure9()
			fmt.Println(txt)
		})
	}
	if *trainbench {
		fmt.Fprintf(os.Stderr, "running training benchmark (serial workers, simd=%s)...\n", mat.SIMD())
		rep.Training = runTrainBench(suite, opts)
		for _, tb := range rep.Training {
			fmt.Printf("%-28s %10.0f ns/op %12.1f allocs/op %14.0f B/op\n",
				tb.Name, tb.NsPerOp, tb.AllocsPerOp, tb.BytesPerOp)
		}
	}
	rep.TotalSeconds = time.Since(start).Seconds()

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: marshal report: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchtab: wrote %s\n", *jsonPath)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: memprofile: %v\n", err)
			os.Exit(1)
		}
	}
}

// Command chaosproxy is a fault-injecting TCP relay for chaos
// testing: it forwards every connection to a target backend while
// injecting connection resets, mid-body drops and latency at
// configurable probabilities. scripts/chaos-smoke.sh places it
// between the router and one dssddi-serve backend to prove the fleet
// degrades gracefully on a flaky network.
//
// Usage:
//
//	chaosproxy -target 127.0.0.1:8080 [-listen 127.0.0.1:0]
//	    [-latency 5ms] [-jitter 2ms] [-reset-prob 0.2] [-drop-prob 0.1]
//	    [-error-prob 0] [-seed 1] [-addr-file path]
//
// -addr-file writes the actual listen address (useful with :0) so
// scripts can discover the bound port.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"dssddi/internal/chaos"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "address to listen on")
		target    = flag.String("target", "", "backend address to relay to (host:port, required)")
		latency   = flag.Duration("latency", 0, "added latency per connection")
		jitter    = flag.Duration("jitter", 0, "latency jitter (+/-)")
		errorProb = flag.Float64("error-prob", 0, "probability a connection is failed outright (treated as reset at TCP level)")
		resetProb = flag.Float64("reset-prob", 0, "probability a connection is RST")
		dropProb  = flag.Float64("drop-prob", 0, "probability a response is cut mid-body")
		seed      = flag.Int64("seed", 1, "RNG seed (reproducible fault sequences)")
		addrFile  = flag.String("addr-file", "", "write the bound address to this file")
	)
	flag.Parse()
	if *target == "" {
		fmt.Fprintln(os.Stderr, "chaosproxy: -target is required")
		os.Exit(2)
	}

	px, err := chaos.NewProxy(*listen, *target, chaos.Faults{
		Latency:   *latency,
		Jitter:    *jitter,
		ErrorProb: *errorProb,
		ResetProb: *resetProb,
		DropProb:  *dropProb,
	}, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosproxy: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("chaosproxy: %s -> %s (reset %.2f, drop %.2f, error %.2f, latency %s±%s)\n",
		px.Addr(), *target, *resetProb, *dropProb, *errorProb, *latency, *jitter)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(px.Addr()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "chaosproxy: writing addr file: %v\n", err)
			os.Exit(1)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	px.Close()
	fmt.Printf("chaosproxy: stopped (%d connections, %d resets, %d drops)\n",
		px.Connections.Load(), px.Resets.Load(), px.Drops.Load())
}

// Command dssddi-router is the fleet front tier: it consistent-hashes
// patient keys (dataset indices and registered patient ids) onto a
// health-checked pool of dssddi-serve backends, so per-patient state —
// registry profiles, cached embeddings, result-cache entries — stays
// local to one backend and cache hit rates survive replication.
//
// Usage:
//
//	dssddi-serve -m model.snap -addr 127.0.0.1:9001 &
//	dssddi-serve -m model.snap -addr 127.0.0.1:9002 &
//	dssddi-serve -m model.snap -addr 127.0.0.1:9003 &
//	dssddi-router -backends 127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 -addr :8080
//
// Clients talk to the router exactly as they would to a single
// dssddi-serve: the /v1 API is proxied transparently (responses gain
// an X-Backend header naming the serving replica). POST
// /v1/admin/reload on the router performs a coordinated rolling
// reload: canary first, each backend verified (epoch bump, model
// identity, smoke suggest) before the next, abort-and-report on any
// mismatch. GET /healthz and /metricsz aggregate fleet health,
// per-backend latency quantiles, retry/ejection counters and
// key-distribution stats.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dssddi/internal/obs"
	"dssddi/internal/router"
)

func main() {
	var (
		backends      = flag.String("backends", "", "comma-separated dssddi-serve addresses (host:port,host:port,...); required")
		addr          = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 = ephemeral)")
		addrFile      = flag.String("addr-file", "", "write the bound address to this file once listening")
		vnodes        = flag.Int("vnodes", 128, "virtual nodes per backend on the hash ring")
		replicas      = flag.Int("replicas", 1, "backends holding each registered patient's record: the ring owner plus replicas-1 successors (1 = no replication)")
		writeQuorum   = flag.Int("write-quorum", 1, "replica-group acks a registry mutation needs before the router acknowledges it (bounded by the members in rotation)")
		probeInterval = flag.Duration("probe-interval", time.Second, "active health-check cadence")
		failAfter     = flag.Int("fail-after", 3, "consecutive transport failures before a backend is ejected")
		cooldown      = flag.Duration("cooldown", 2*time.Second, "how long an ejected backend sits out before a half-open trial")
		retries       = flag.Int("retries", 2, "max retries for idempotent reads after a transport failure (writes never retry)")
		retryBackoff  = flag.Duration("retry-backoff", 25*time.Millisecond, "initial retry backoff, doubling per attempt")
		timeout       = flag.Duration("timeout", 10*time.Second, "per-attempt backend request timeout")
		budget        = flag.Duration("budget", 0, "end-to-end request budget across attempts and backoffs; each attempt stamps the remainder onto the backend as X-Deadline-Ms (0 = 2x -timeout)")

		traceSample = flag.Float64("trace-sample", 0, "fraction of routed requests traced into /debug/tracez (0 = off, 1 = all)")
		traceRing   = flag.Int("trace-ring", obs.DefaultTraceRing, "tracez ring capacity for each of recent/slowest/errored traces")
		slowMs      = flag.Int("slow-ms", 0, "log a warning for every routed request slower than this many milliseconds (0 = off)")
		pprof       = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		logFormat   = flag.String("log-format", "off", "structured log output: json, text or off")
		logLevel    = flag.String("log-level", "info", "structured log level: debug (per-request access logs), info, warn or error")
	)
	flag.Parse()
	log.SetFlags(0)
	if *backends == "" {
		log.Fatal("dssddi-router: -backends host:port[,host:port...] is required")
	}
	logger, err := obs.NewLogger(*logFormat, *logLevel, os.Stderr)
	if err != nil {
		log.Fatalf("dssddi-router: %v", err)
	}
	pool := strings.Split(*backends, ",")
	for i := range pool {
		pool[i] = strings.TrimSpace(pool[i])
	}

	rt, err := router.New(router.Config{
		Backends:          pool,
		VNodes:            *vnodes,
		ReplicationFactor: *replicas,
		WriteQuorum:       *writeQuorum,
		ProbeInterval:     *probeInterval,
		FailAfter:         *failAfter,
		Cooldown:          *cooldown,
		MaxRetries:        *retries,
		RetryBackoff:      *retryBackoff,
		Timeout:           *timeout,
		RequestBudget:     *budget,
		TraceSample:       *traceSample,
		TraceRing:         *traceRing,
		SlowMs:            *slowMs,
		Logger:            logger,
	})
	if err != nil {
		log.Fatalf("dssddi-router: %v", err)
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("dssddi-router: %v", err)
	}
	bound := ln.Addr().String()
	fmt.Fprintf(os.Stderr, "dssddi-router: build %s (%s) %d backends (%s) listening on %s\n",
		obs.Build().Short(), obs.Build().GoVersion, len(pool), strings.Join(pool, ", "), bound)
	if logger != nil {
		logger.Info("boot", "service", "dssddi-router", "build", obs.Build(), "addr", bound)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			log.Fatalf("dssddi-router: writing -addr-file: %v", err)
		}
	}

	handler := rt.Handler()
	if *pprof {
		handler = obs.WithPprof(handler)
		fmt.Fprintln(os.Stderr, "dssddi-router: pprof enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{Handler: handler}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "dssddi-router: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatalf("dssddi-router: %v", err)
	}
	<-done
}

// Command dssddi-serve exposes a trained DSSDDI model snapshot as a
// concurrent HTTP JSON API: medication suggestions with interaction
// alerts, raw scores, explanations, DDI screening, a live patient
// registry and zero-downtime model hot-reload (see internal/serve for
// the endpoint reference).
//
// Usage:
//
//	dssddi train -o model.snap               # once
//	dssddi-serve -m model.snap -addr :8080   # many
//
// Use -addr 127.0.0.1:0 to bind an ephemeral port; the bound address
// is printed to stderr and, with -addr-file, written to a file so
// scripts (and the CI smoke test) can discover it.
//
// The serving model can be replaced without restarting: POST
// /v1/admin/reload, send SIGHUP, or run with -watch to reload
// automatically whenever the snapshot file changes. Requests in
// flight during a reload finish on the model they started with.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dssddi"
	"dssddi/internal/mat"
	"dssddi/internal/obs"
	"dssddi/internal/serve"
)

func main() {
	var (
		model       = flag.String("m", "", "model snapshot to serve (required; produce with 'dssddi train -o')")
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 = ephemeral)")
		addrFile    = flag.String("addr-file", "", "write the bound address to this file once listening")
		workers     = flag.Int("workers", 0, "kernel worker goroutines (0 = GOMAXPROCS, 1 = serial)")
		maxBatch    = flag.Int("batch-max", 64, "max patients coalesced into one score-matrix call")
		batchWindow = flag.Duration("batch-window", time.Millisecond, "how long a lone request waits to be batched (0 = never wait)")
		cacheSize   = flag.Int("cache", 4096, "result cache entries across endpoints (negative disables)")
		defaultK    = flag.Int("default-k", 4, "suggestion list length when a request omits k")
		precision   = flag.String("precision", "f64", "serving precision: f64 (oracle), f32 (SIMD quantized) or int8-experimental; hot reloads keep it unless the reload request names another")
		watch       = flag.Bool("watch", false, "watch the -m snapshot file and hot-reload it when it changes")
		watchEvery  = flag.Duration("watch-interval", time.Second, "how often -watch polls the snapshot file")

		walPath      = flag.String("registry-wal", "", "write-ahead log for the patient registry; registrations survive crashes and are replayed on boot (empty = volatile registry)")
		walSync      = flag.String("wal-sync", "interval", "WAL durability: always (fsync per write), interval (background fsync), off (OS decides)")
		walSyncEvery = flag.Duration("wal-sync-interval", 100*time.Millisecond, "background fsync cadence for -wal-sync interval")
		ckptEvery    = flag.Int("checkpoint-every", 1024, "compact the WAL into a checkpoint after this many logged mutations (<= 0 disables)")
		maxInflight  = flag.Int("max-inflight", 256, "admission control: concurrent requests executing per endpoint (negative = unlimited)")
		maxQueue     = flag.Int("max-queue", 512, "admission control: requests waiting per endpoint beyond -max-inflight; anything more is shed with a fast 503 (negative = no queue)")

		traceSample = flag.Float64("trace-sample", 0, "fraction of requests traced into /debug/tracez (0 = off, 1 = all)")
		traceRing   = flag.Int("trace-ring", obs.DefaultTraceRing, "tracez ring capacity for each of recent/slowest/errored traces")
		slowMs      = flag.Int("slow-ms", 0, "log a warning for every request slower than this many milliseconds (0 = off)")
		pprof       = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		logFormat   = flag.String("log-format", "off", "structured log output: json, text or off")
		logLevel    = flag.String("log-level", "info", "structured log level: debug (per-request access logs), info, warn or error")
	)
	flag.Parse()
	log.SetFlags(0)
	if *model == "" {
		log.Fatal("dssddi-serve: -m model.snap is required (train one with 'dssddi train -o model.snap')")
	}
	logger, err := obs.NewLogger(*logFormat, *logLevel, os.Stderr)
	if err != nil {
		log.Fatalf("dssddi-serve: %v", err)
	}
	mat.SetWorkers(*workers)

	f, err := os.Open(*model)
	if err != nil {
		log.Fatalf("dssddi-serve: %v", err)
	}
	sys, err := dssddi.Load(f)
	f.Close()
	if err != nil {
		log.Fatalf("dssddi-serve: %v", err)
	}
	info, err := sys.SnapshotInfo()
	if err != nil {
		log.Fatalf("dssddi-serve: %v", err)
	}

	srv, err := serve.New(sys, serve.Config{
		MaxBatch:        *maxBatch,
		BatchWindow:     *batchWindow,
		CacheSize:       *cacheSize,
		DefaultK:        *defaultK,
		Precision:       *precision,
		SnapshotPath:    *model,
		WALPath:         *walPath,
		WALSync:         *walSync,
		WALSyncInterval: *walSyncEvery,
		CheckpointEvery: *ckptEvery,
		MaxInflight:     *maxInflight,
		MaxQueue:        *maxQueue,
		TraceSample:     *traceSample,
		TraceRing:       *traceRing,
		SlowMs:          *slowMs,
		Logger:          logger,
	})
	if err != nil {
		log.Fatalf("dssddi-serve: %v", err)
	}
	defer srv.Close()
	if *walPath != "" {
		fmt.Fprintf(os.Stderr, "dssddi-serve: durable registry: WAL %s (sync %s), checkpoint every %d writes\n",
			*walPath, *walSync, *ckptEvery)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("dssddi-serve: %v", err)
	}
	bound := ln.Addr().String()
	fmt.Fprintf(os.Stderr, "dssddi-serve: build %s (%s) %s model (%d patients, %d drugs, dataset %s) precision %s simd %s listening on %s\n",
		obs.Build().Short(), obs.Build().GoVersion, info.Backbone, info.Patients, info.Drugs, info.DatasetSHA256[:12], sys.Precision(), mat.SIMD(), bound)
	if logger != nil {
		logger.Info("boot", "service", "dssddi-serve", "build", obs.Build(), "addr", bound)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			log.Fatalf("dssddi-serve: writing -addr-file: %v", err)
		}
	}

	reload := func(reason string) {
		epoch, err := srv.ReloadFromPath(*model)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dssddi-serve: %s reload failed (still serving the previous model): %v\n", reason, err)
			return
		}
		fmt.Fprintf(os.Stderr, "dssddi-serve: %s reload OK, now serving epoch %d\n", reason, epoch)
	}

	// SIGHUP: operator-triggered hot reload of the -m snapshot.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			reload("SIGHUP")
		}
	}()

	// -watch: poll the snapshot's mtime/size and reload on change. A
	// half-written file is harmless — the snapshot checksum makes the
	// load fail and the previous epoch keeps serving until the next
	// successful poll.
	if *watch {
		go func() {
			var lastMod time.Time
			var lastSize int64
			if st, err := os.Stat(*model); err == nil {
				lastMod, lastSize = st.ModTime(), st.Size()
			}
			for range time.Tick(*watchEvery) {
				st, err := os.Stat(*model)
				if err != nil {
					continue
				}
				if st.ModTime().Equal(lastMod) && st.Size() == lastSize {
					continue
				}
				lastMod, lastSize = st.ModTime(), st.Size()
				reload("watch")
			}
		}()
	}

	handler := srv.Handler()
	if *pprof {
		handler = obs.WithPprof(handler)
		fmt.Fprintln(os.Stderr, "dssddi-serve: pprof enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{Handler: handler}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "dssddi-serve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatalf("dssddi-serve: %v", err)
	}
	<-done
	// Graceful close: httpSrv.Shutdown has already drained in-flight
	// requests (which empties the batcher — every parked request holds
	// an epoch ref); Close then writes a final registry checkpoint and
	// fsync-closes the WAL, so the next boot replays nothing.
	srv.Close()
	if *walPath != "" {
		fmt.Fprintln(os.Stderr, "dssddi-serve: final checkpoint written, WAL closed")
	}
}

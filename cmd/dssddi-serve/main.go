// Command dssddi-serve exposes a trained DSSDDI model snapshot as a
// concurrent HTTP JSON API: medication suggestions with interaction
// alerts, raw scores, explanations and DDI screening (see
// internal/serve for the endpoint reference).
//
// Usage:
//
//	dssddi train -o model.snap               # once
//	dssddi-serve -m model.snap -addr :8080   # many
//
// Use -addr 127.0.0.1:0 to bind an ephemeral port; the bound address
// is printed to stderr and, with -addr-file, written to a file so
// scripts (and the CI smoke test) can discover it.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dssddi"
	"dssddi/internal/mat"
	"dssddi/internal/serve"
)

func main() {
	var (
		model       = flag.String("m", "", "model snapshot to serve (required; produce with 'dssddi train -o')")
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 = ephemeral)")
		addrFile    = flag.String("addr-file", "", "write the bound address to this file once listening")
		workers     = flag.Int("workers", 0, "kernel worker goroutines (0 = GOMAXPROCS, 1 = serial)")
		maxBatch    = flag.Int("batch-max", 64, "max patients coalesced into one score-matrix call")
		batchWindow = flag.Duration("batch-window", time.Millisecond, "how long a lone request waits to be batched (0 = never wait)")
		cacheSize   = flag.Int("cache", 4096, "result cache entries across endpoints (negative disables)")
		defaultK    = flag.Int("default-k", 4, "suggestion list length when a request omits k")
	)
	flag.Parse()
	log.SetFlags(0)
	if *model == "" {
		log.Fatal("dssddi-serve: -m model.snap is required (train one with 'dssddi train -o model.snap')")
	}
	mat.SetWorkers(*workers)

	f, err := os.Open(*model)
	if err != nil {
		log.Fatalf("dssddi-serve: %v", err)
	}
	sys, err := dssddi.Load(f)
	f.Close()
	if err != nil {
		log.Fatalf("dssddi-serve: %v", err)
	}
	info, err := sys.SnapshotInfo()
	if err != nil {
		log.Fatalf("dssddi-serve: %v", err)
	}

	srv, err := serve.New(sys, serve.Config{
		MaxBatch:    *maxBatch,
		BatchWindow: *batchWindow,
		CacheSize:   *cacheSize,
		DefaultK:    *defaultK,
	})
	if err != nil {
		log.Fatalf("dssddi-serve: %v", err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("dssddi-serve: %v", err)
	}
	bound := ln.Addr().String()
	fmt.Fprintf(os.Stderr, "dssddi-serve: %s model (%d patients, %d drugs, dataset %s) listening on %s\n",
		info.Backbone, info.Patients, info.Drugs, info.DatasetSHA256[:12], bound)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			log.Fatalf("dssddi-serve: writing -addr-file: %v", err)
		}
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "dssddi-serve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatalf("dssddi-serve: %v", err)
	}
	<-done
}

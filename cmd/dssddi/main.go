// Command dssddi is the command-line front end of the decision support
// system: it generates a synthetic cohort, trains the system, and
// either evaluates it, suggests medications for a patient, or explains
// a drug combination.
//
// Usage:
//
//	dssddi -mode eval    [-patients 800] [-backbone SGCN]
//	dssddi -mode suggest -patient 12 [-k 3]
//	dssddi -mode explain -drugs 46,47
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"dssddi"
)

func main() {
	var (
		mode       = flag.String("mode", "eval", "eval | suggest | explain")
		backbone   = flag.String("backbone", "SGCN", "DDIGCN backbone: GIN, SGCN, SiGAT, SNEA")
		patients   = flag.Int("patients", 800, "synthetic cohort size")
		seed       = flag.Int64("seed", 1, "generation and training seed")
		patient    = flag.Int("patient", -1, "patient index for -mode suggest")
		k          = flag.Int("k", 3, "suggestion list length")
		drugs      = flag.String("drugs", "", "comma-separated drug IDs for -mode explain")
		ddiEpochs  = flag.Int("ddi-epochs", 150, "DDI module training epochs (paper: 400)")
		mdEpochs   = flag.Int("md-epochs", 250, "MD module training epochs (paper: 1000)")
		mimic      = flag.Bool("mimic", false, "use the MIMIC-like data set instead of the chronic cohort")
		workers    = flag.Int("workers", 0, "kernel worker goroutines (0 = GOMAXPROCS, 1 = serial)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("memprofile: %v", err)
			}
		}()
	}

	var data *dssddi.Data
	if *mimic {
		data = dssddi.GenerateMIMIC(*seed, *patients)
	} else {
		males := *patients / 2
		data = dssddi.GenerateChronic(*seed, *patients-males, males)
	}
	cfg := dssddi.DefaultConfig()
	cfg.Backbone = *backbone
	cfg.DDIEpochs = *ddiEpochs
	cfg.MDEpochs = *mdEpochs
	cfg.Seed = *seed
	cfg.Workers = *workers
	sys := dssddi.New(cfg)
	fmt.Fprintf(os.Stderr, "training DSSDDI(%s) on %d patients...\n", *backbone, data.NumPatients())
	if err := sys.Train(data); err != nil {
		log.Fatal(err)
	}

	switch *mode {
	case "eval":
		reports, err := sys.Evaluate(data.TestPatients(), []int{1, 2, 3, 4, 5, 6})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s %-10s %-10s %-10s %-10s\n", "k", "Precision", "Recall", "NDCG", "SS")
		for _, r := range reports {
			fmt.Printf("%-4d %-10.4f %-10.4f %-10.4f %-10.4f\n", r.K, r.Precision, r.Recall, r.NDCG, r.SS)
		}
	case "suggest":
		p := *patient
		if p < 0 {
			p = data.TestPatients()[0]
		}
		suggs, err := sys.Suggest(p, *k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("patient %d takes:", p)
		for _, d := range data.Medications(p) {
			fmt.Printf(" %s", data.DrugName(d))
		}
		fmt.Println()
		for i, s := range suggs {
			fmt.Printf("%d. %-24s %.4f\n", i+1, s.DrugName, s.Score)
		}
		fmt.Println()
		fmt.Println(sys.ExplainSuggestions(suggs).Text)
	case "explain":
		if *drugs == "" {
			log.Fatal("-mode explain needs -drugs, e.g. -drugs 46,47")
		}
		var ids []int
		for _, part := range strings.Split(*drugs, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				log.Fatalf("bad drug ID %q: %v", part, err)
			}
			ids = append(ids, id)
		}
		ex, err := sys.Explain(ids)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(ex.Text)
	default:
		log.Fatalf("unknown mode %q (want eval, suggest or explain)", *mode)
	}
}

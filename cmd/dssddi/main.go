// Command dssddi is the command-line front end of the decision support
// system. It supports a train-once / serve-many lifecycle: train and
// save a model snapshot, then answer suggestion, evaluation and
// explanation queries from the snapshot without retraining (pair with
// cmd/dssddi-serve for the HTTP service).
//
// Usage:
//
//	dssddi train   [-patients 800] [-backbone SGCN] -o model.snap
//	dssddi eval    [-m model.snap | training flags]
//	dssddi suggest [-m model.snap] [-patient 12] [-k 3] [-alerts]
//	dssddi explain [-m model.snap] -drugs 46,47
//	dssddi info    -m model.snap
//	dssddi precision [-m model.snap] [-k 4] [-sample 64] [-bench BENCH_serve.json]
//
// The legacy single-command form (dssddi -mode eval|suggest|explain)
// is retained and trains on every run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"dssddi"
	"dssddi/internal/alerts"
	"dssddi/internal/benchfmt"
	"dssddi/internal/mat"
)

// options collects the flags shared by the subcommands.
type options struct {
	backbone  string
	patients  int
	seed      int64
	ddiEpochs int
	mdEpochs  int
	hidden    int
	mimic     bool
	workers   int
	model     string // -m: load snapshot instead of training
	out       string // -o: save snapshot after training
	patient   int
	k         int
	drugs     string
	alerts    bool
	sample    int    // precision: max test patients to score
	bench     string // precision: merge stats into this report file
}

func commonFlags(fs *flag.FlagSet, o *options) {
	fs.StringVar(&o.backbone, "backbone", "SGCN", "DDIGCN backbone: GIN, SGCN, SiGAT, SNEA")
	fs.IntVar(&o.patients, "patients", 800, "synthetic cohort size")
	fs.Int64Var(&o.seed, "seed", 1, "generation and training seed")
	fs.IntVar(&o.ddiEpochs, "ddi-epochs", 150, "DDI module training epochs (paper: 400)")
	fs.IntVar(&o.mdEpochs, "md-epochs", 250, "MD module training epochs (paper: 1000)")
	fs.IntVar(&o.hidden, "hidden", 0, "representation width (0 = paper default 64)")
	fs.BoolVar(&o.mimic, "mimic", false, "use the MIMIC-like data set instead of the chronic cohort")
	fs.IntVar(&o.workers, "workers", 0, "kernel worker goroutines (0 = GOMAXPROCS, 1 = serial)")
}

func modelFlag(fs *flag.FlagSet, o *options) {
	fs.StringVar(&o.model, "m", "", "load this model snapshot instead of training")
}

// trainSystem generates data and trains a fresh system.
func trainSystem(o *options) (*dssddi.System, error) {
	var data *dssddi.Data
	if o.mimic {
		data = dssddi.GenerateMIMIC(o.seed, o.patients)
	} else {
		males := o.patients / 2
		data = dssddi.GenerateChronic(o.seed, o.patients-males, males)
	}
	cfg := dssddi.DefaultConfig()
	cfg.Backbone = o.backbone
	cfg.DDIEpochs = o.ddiEpochs
	cfg.MDEpochs = o.mdEpochs
	if o.hidden > 0 {
		cfg.Hidden = o.hidden
	}
	cfg.Seed = o.seed
	cfg.Workers = o.workers
	sys := dssddi.New(cfg)
	fmt.Fprintf(os.Stderr, "training DSSDDI(%s) on %d patients...\n", o.backbone, data.NumPatients())
	if err := sys.Train(data); err != nil {
		return nil, err
	}
	return sys, nil
}

// loadSystem restores a snapshot from disk.
func loadSystem(path string) (*dssddi.System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sys, err := dssddi.Load(f)
	if err != nil {
		return nil, err
	}
	info, _ := sys.SnapshotInfo()
	fmt.Fprintf(os.Stderr, "loaded %s: %s model, %d patients, %d drugs\n",
		path, info.Backbone, info.Patients, info.Drugs)
	return sys, nil
}

// obtainSystem loads the -m snapshot when given, else trains.
func obtainSystem(o *options) (*dssddi.System, error) {
	if o.model != "" {
		return loadSystem(o.model)
	}
	return trainSystem(o)
}

func saveSnapshot(sys *dssddi.System, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sys.Save(f); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	info, err := sys.SnapshotInfo()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "saved %s (%d bytes, dataset %s)\n", path, st.Size(), info.DatasetSHA256[:12])
	return nil
}

func cmdTrain(args []string) error {
	var o options
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	commonFlags(fs, &o)
	fs.StringVar(&o.out, "o", "model.snap", "write the trained model snapshot here")
	fs.Parse(args)
	sys, err := trainSystem(&o)
	if err != nil {
		return err
	}
	return saveSnapshot(sys, o.out)
}

func cmdEval(args []string) error {
	var o options
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	commonFlags(fs, &o)
	modelFlag(fs, &o)
	fs.Parse(args)
	sys, err := obtainSystem(&o)
	if err != nil {
		return err
	}
	return runEval(sys)
}

func runEval(sys *dssddi.System) error {
	data := sys.Data()
	reports, err := sys.Evaluate(data.TestPatients(), []int{1, 2, 3, 4, 5, 6})
	if err != nil {
		return err
	}
	fmt.Printf("%-4s %-10s %-10s %-10s %-10s\n", "k", "Precision", "Recall", "NDCG", "SS")
	for _, r := range reports {
		fmt.Printf("%-4d %-10.4f %-10.4f %-10.4f %-10.4f\n", r.K, r.Precision, r.Recall, r.NDCG, r.SS)
	}
	return nil
}

func cmdSuggest(args []string) error {
	var o options
	fs := flag.NewFlagSet("suggest", flag.ExitOnError)
	commonFlags(fs, &o)
	modelFlag(fs, &o)
	fs.IntVar(&o.patient, "patient", -1, "patient index (default: first test patient)")
	fs.IntVar(&o.k, "k", 3, "suggestion list length")
	fs.BoolVar(&o.alerts, "alerts", true, "screen suggestions against the patient's regimen")
	fs.Parse(args)
	sys, err := obtainSystem(&o)
	if err != nil {
		return err
	}
	return runSuggest(sys, o.patient, o.k, o.alerts)
}

func runSuggest(sys *dssddi.System, patient, k int, screen bool) error {
	data := sys.Data()
	p := patient
	if p < 0 {
		p = data.TestPatients()[0]
	}
	suggs, err := sys.Suggest(p, k)
	if err != nil {
		return err
	}
	regimen := data.Medications(p)
	fmt.Printf("patient %d takes:", p)
	for _, d := range regimen {
		fmt.Printf(" %s", data.DrugName(d))
	}
	fmt.Println()
	var checker *alerts.Checker
	if screen {
		emb, err := sys.DrugRelationEmbeddings()
		if err != nil {
			return err
		}
		names := make([]string, data.NumDrugs())
		for i := range names {
			names[i] = data.DrugName(i)
		}
		checker = alerts.NewChecker(data.Dataset().DDI, emb, names)
	}
	for i, s := range suggs {
		fmt.Printf("%d. %-24s %.4f\n", i+1, s.DrugName, s.Score)
		if checker != nil {
			for _, a := range checker.ScreenAgainst(regimen, []int{s.DrugID}) {
				fmt.Printf("   [%s] %s\n", a.Severity, a.Message)
			}
		}
	}
	fmt.Println()
	ex, err := sys.ExplainSuggestions(suggs)
	if err != nil {
		return err
	}
	fmt.Println(ex.Text)
	return nil
}

func cmdExplain(args []string) error {
	var o options
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	commonFlags(fs, &o)
	modelFlag(fs, &o)
	fs.StringVar(&o.drugs, "drugs", "", "comma-separated drug IDs, e.g. 46,47")
	fs.Parse(args)
	if o.drugs == "" {
		return fmt.Errorf("explain needs -drugs, e.g. -drugs 46,47")
	}
	ids, err := parseDrugs(o.drugs)
	if err != nil {
		return err
	}
	sys, err := obtainSystem(&o)
	if err != nil {
		return err
	}
	ex, err := sys.Explain(ids)
	if err != nil {
		return err
	}
	fmt.Println(ex.Text)
	return nil
}

func cmdInfo(args []string) error {
	var o options
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	modelFlag(fs, &o)
	fs.Parse(args)
	if o.model == "" {
		return fmt.Errorf("info needs -m model.snap")
	}
	f, err := os.Open(o.model)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := dssddi.ReadSnapshotInfo(f)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(info, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(buf))
	return nil
}

// cmdPrecision characterizes the quantized serving precisions against
// the float64 accuracy oracle: it scores a sample of test patients at
// f64, f32 and int8, and reports per-precision max absolute score
// divergence and top-K ranking invariance. With -bench it merges the
// stats (and the active SIMD level) into an existing benchfmt report,
// where cmd/benchdiff -precision-gate hard-fails on regressions.
func cmdPrecision(args []string) error {
	var o options
	fs := flag.NewFlagSet("precision", flag.ExitOnError)
	commonFlags(fs, &o)
	modelFlag(fs, &o)
	fs.IntVar(&o.k, "k", 4, "top-K list length for ranking invariance")
	fs.IntVar(&o.sample, "sample", 64, "max test patients to sample")
	fs.StringVar(&o.bench, "bench", "", "merge the stats into this benchfmt report file")
	fs.Parse(args)
	sys, err := obtainSystem(&o)
	if err != nil {
		return err
	}
	stats, err := precisionStats(sys, o.sample, o.k)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(stats, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(buf))
	if o.bench == "" {
		return nil
	}
	raw, err := os.ReadFile(o.bench)
	if err != nil {
		return err
	}
	var report benchfmt.Report
	if err := json.Unmarshal(raw, &report); err != nil {
		return fmt.Errorf("%s: %v", o.bench, err)
	}
	report.Precisions = stats
	report.SIMD = mat.SIMD()
	out, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(o.bench, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "merged %d precision entries into %s\n", len(stats), o.bench)
	return nil
}

func precisionStats(sys *dssddi.System, sample, k int) ([]benchfmt.PrecisionStats, error) {
	patients := sys.Data().TestPatients()
	if len(patients) > sample {
		patients = patients[:sample]
	}
	oracle, err := sys.Scores(patients)
	if err != nil {
		return nil, err
	}
	var stats []benchfmt.PrecisionStats
	for _, prec := range []string{"f32", "int8-experimental"} {
		if err := sys.SetPrecision(prec); err != nil {
			return nil, err
		}
		rows, err := sys.Scores(patients)
		if err != nil {
			return nil, err
		}
		st := benchfmt.PrecisionStats{Precision: prec, Patients: len(patients), K: k}
		invariant := 0
		for i, row := range rows {
			st.Drugs = len(row)
			for v, sc := range row {
				if d := math.Abs(sc - oracle[i][v]); d > st.MaxAbsDelta {
					st.MaxAbsDelta = d
				}
			}
			if sliceEq(topK(row, k), topK(oracle[i], k)) {
				invariant++
			}
		}
		if len(patients) > 0 {
			st.RankingInvariance = float64(invariant) / float64(len(patients))
		}
		stats = append(stats, st)
	}
	if err := sys.SetPrecision("f64"); err != nil {
		return nil, err
	}
	return stats, nil
}

// topK returns the indices of the k highest scores in descending score
// order, ties broken by lower index — the same order a ranked
// suggestion list presents.
func topK(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	if k < len(idx) {
		idx = idx[:k]
	}
	return idx
}

func sliceEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func parseDrugs(spec string) ([]int, error) {
	var ids []int
	for _, part := range strings.Split(spec, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad drug ID %q: %v", part, err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

func main() {
	log.SetFlags(0)
	if len(os.Args) > 1 && !strings.HasPrefix(os.Args[1], "-") {
		var err error
		switch cmd := os.Args[1]; cmd {
		case "train":
			err = cmdTrain(os.Args[2:])
		case "eval":
			err = cmdEval(os.Args[2:])
		case "suggest":
			err = cmdSuggest(os.Args[2:])
		case "explain":
			err = cmdExplain(os.Args[2:])
		case "info":
			err = cmdInfo(os.Args[2:])
		case "precision":
			err = cmdPrecision(os.Args[2:])
		case "help", "usage":
			fmt.Fprintln(os.Stderr, "subcommands: train, eval, suggest, explain, info, precision (or legacy -mode flags)")
		default:
			err = fmt.Errorf("unknown subcommand %q (want train, eval, suggest, explain, info or precision)", cmd)
		}
		if err != nil {
			log.Fatal(err)
		}
		return
	}
	legacyMain()
}

// legacyMain is the original flag-driven interface: it trains on every
// invocation and keeps the profiling hooks.
func legacyMain() {
	var (
		o          options
		mode       = flag.String("mode", "eval", "eval | suggest | explain")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	commonFlags(flag.CommandLine, &o)
	flag.IntVar(&o.patient, "patient", -1, "patient index for -mode suggest")
	flag.IntVar(&o.k, "k", 3, "suggestion list length")
	flag.StringVar(&o.drugs, "drugs", "", "comma-separated drug IDs for -mode explain")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("memprofile: %v", err)
			}
		}()
	}

	sys, err := trainSystem(&o)
	if err != nil {
		log.Fatal(err)
	}
	switch *mode {
	case "eval":
		err = runEval(sys)
	case "suggest":
		err = runSuggest(sys, o.patient, o.k, false)
	case "explain":
		if o.drugs == "" {
			log.Fatal("-mode explain needs -drugs, e.g. -drugs 46,47")
		}
		ids, perr := parseDrugs(o.drugs)
		if perr != nil {
			log.Fatal(perr)
		}
		var ex dssddi.Explanation
		ex, err = sys.Explain(ids)
		if err == nil {
			fmt.Println(ex.Text)
		}
	default:
		log.Fatalf("unknown mode %q (want eval, suggest or explain)", *mode)
	}
	if err != nil {
		log.Fatal(err)
	}
}

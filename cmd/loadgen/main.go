// Command loadgen drives a running dssddi-serve instance with
// concurrent /v1/suggest traffic and reports throughput and latency
// quantiles, optionally recording them in the shared benchfmt JSON
// schema next to the training benchmarks.
//
// Usage:
//
//	dssddi-serve -m model.snap -addr 127.0.0.1:8080 &
//	loadgen -addr 127.0.0.1:8080 -duration 10s -concurrency 32 -json BENCH_serve.json
//	loadgen -addr 127.0.0.1:8080 -cold -json BENCH_serve.json -append
//
// Patients are sampled uniformly from the model's cohort (discovered
// via /healthz), so cache hit rates reflect the -spread flag: the
// sampled patient pool size (0 = the whole cohort). With -cold every
// request targets a distinct patient and carries Cache-Control:
// no-cache, measuring the scoring path itself (recorded as
// "suggest-cold"); -append merges the entry into an existing report
// so cached and cold numbers live side by side.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dssddi/internal/benchfmt"
)

type suggestRequest struct {
	Patient int `json:"patient"`
	K       int `json:"k,omitempty"`
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "dssddi-serve address (host:port)")
		duration    = flag.Duration("duration", 5*time.Second, "how long to drive load")
		concurrency = flag.Int("concurrency", 16, "concurrent client goroutines")
		k           = flag.Int("k", 4, "suggestion list length per request")
		spread      = flag.Int("spread", 0, "distinct patients to sample (0 = whole cohort)")
		seed        = flag.Int64("seed", 1, "patient sampling seed")
		jsonPath    = flag.String("json", "", "write a benchfmt report to this JSON file")
		cold        = flag.Bool("cold", false, "cold-path mode: walk distinct patients and send Cache-Control: no-cache, so every request is scored, not served from the result cache")
		appendJSON  = flag.Bool("append", false, "merge the measurement into an existing -json report instead of overwriting it")
	)
	flag.Parse()
	log.SetFlags(0)
	base := "http://" + *addr

	// Discover the cohort size (and prove the server is up).
	var health struct {
		Model struct {
			Patients int `json:"patients"`
		} `json:"model"`
	}
	if err := getJSON(base+"/healthz", &health); err != nil {
		log.Fatalf("loadgen: %s unreachable: %v", base, err)
	}
	patients := health.Model.Patients
	if patients <= 0 {
		log.Fatalf("loadgen: server reports %d patients", patients)
	}
	pool := patients
	if *spread > 0 && *spread < pool {
		pool = *spread
	}

	fmt.Fprintf(os.Stderr, "loadgen: %d clients, %v, %d-patient pool against %s\n",
		*concurrency, *duration, pool, base)

	var (
		wg       sync.WaitGroup
		requests atomic.Int64
		errors   atomic.Int64
		next     atomic.Int64 // cold mode: round-robin patient cursor
		mu       sync.Mutex
		lats     []int64
	)
	deadline := time.Now().Add(*duration)
	start := time.Now()
	for c := 0; c < *concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			client := &http.Client{Timeout: 10 * time.Second}
			local := make([]int64, 0, 4096)
			for time.Now().Before(deadline) {
				patient := rng.Intn(pool)
				if *cold {
					// Unique patients per request (until the pool wraps),
					// and the no-cache header keeps even wrapped patients
					// on the scoring path.
					patient = int(next.Add(1)-1) % pool
				}
				body, _ := json.Marshal(suggestRequest{Patient: patient, K: *k})
				req, err := http.NewRequest(http.MethodPost, base+"/v1/suggest", bytes.NewReader(body))
				if err != nil {
					errors.Add(1)
					requests.Add(1)
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				if *cold {
					req.Header.Set("Cache-Control", "no-cache")
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				lat := time.Since(t0).Nanoseconds()
				requests.Add(1)
				if err != nil {
					errors.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errors.Add(1)
					continue
				}
				local = append(local, lat)
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	n := requests.Load()
	errs := errors.Load()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		return float64(lats[int(p*float64(len(lats)-1))]) / 1e6
	}
	name := "suggest"
	if *cold {
		name = "suggest-cold"
	}
	bench := benchfmt.ServeBench{
		Name:        name,
		Concurrency: *concurrency,
		Requests:    int(n),
		Errors:      int(errs),
		Seconds:     elapsed.Seconds(),
		RPS:         float64(n-errs) / elapsed.Seconds(),
		P50Ms:       q(0.50),
		P90Ms:       q(0.90),
		P99Ms:       q(0.99),
	}

	// Enrich with the server's own cache/batching counters.
	var metrics struct {
		SuggestCache struct {
			HitRate float64 `json:"hit_rate"`
		} `json:"suggest_cache"`
		Batching struct {
			AvgBatchSize float64 `json:"avg_batch_size"`
		} `json:"batching"`
	}
	if err := getJSON(base+"/metricsz", &metrics); err == nil {
		bench.CacheHitRate = metrics.SuggestCache.HitRate
		bench.AvgBatchSize = metrics.Batching.AvgBatchSize
	}

	fmt.Printf("%-10s %8.0f req/s  %6d reqs  %4d errs  p50 %6.2fms  p90 %6.2fms  p99 %6.2fms  cache %4.1f%%  batch %.2f\n",
		bench.Name, bench.RPS, bench.Requests, bench.Errors,
		bench.P50Ms, bench.P90Ms, bench.P99Ms, 100*bench.CacheHitRate, bench.AvgBatchSize)
	if errs > 0 && errs*10 > n {
		log.Fatalf("loadgen: %d/%d requests failed", errs, n)
	}

	if *jsonPath != "" {
		rep := benchfmt.Report{
			Schema:       benchfmt.Schema,
			Profile:      "serve",
			GoMaxProcs:   runtime.GOMAXPROCS(0),
			Seed:         *seed,
			Serving:      []benchfmt.ServeBench{bench},
			TotalSeconds: elapsed.Seconds(),
		}
		if *appendJSON {
			// Merge into an existing report (replacing a same-named
			// entry), so one BENCH_serve.json can carry the cached and
			// cold measurements side by side. A missing file starts a
			// fresh report; an unreadable or foreign one is an error —
			// silently dropping the earlier entries would corrupt the
			// committed record.
			switch prev, err := os.ReadFile(*jsonPath); {
			case err == nil:
				var old benchfmt.Report
				if err := json.Unmarshal(prev, &old); err != nil {
					log.Fatalf("loadgen: -append: %s is not a benchfmt report: %v", *jsonPath, err)
				}
				if old.Schema != rep.Schema {
					log.Fatalf("loadgen: -append: %s has schema %q, want %q", *jsonPath, old.Schema, rep.Schema)
				}
				merged := old.Serving[:0]
				for _, sb := range old.Serving {
					if sb.Name != bench.Name {
						merged = append(merged, sb)
					}
				}
				old.Serving = append(merged, bench)
				old.TotalSeconds += elapsed.Seconds()
				rep = old
			case !os.IsNotExist(err):
				log.Fatalf("loadgen: -append: %v", err)
			}
		}
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("loadgen: marshal report: %v", err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			log.Fatalf("loadgen: write %s: %v", *jsonPath, err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", *jsonPath)
	}
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Command loadgen drives a running dssddi-serve instance with
// concurrent traffic and reports throughput and latency quantiles,
// optionally recording them in the shared benchfmt JSON schema next to
// the training benchmarks.
//
// Usage:
//
//	dssddi-serve -m model.snap -addr 127.0.0.1:8080 &
//	loadgen -addr 127.0.0.1:8080 -duration 10s -concurrency 32 -json BENCH_serve.json
//	loadgen -addr 127.0.0.1:8080 -cold -json BENCH_serve.json -append
//	loadgen -addr 127.0.0.1:8080 -mix -json BENCH_serve.json -append
//
// Patients are sampled uniformly from the model's cohort (discovered
// via /healthz), so cache hit rates reflect the -spread flag: the
// sampled patient pool size (0 = the whole cohort). With -cold every
// request targets a distinct patient and carries Cache-Control:
// no-cache, measuring the scoring path itself (recorded as
// "suggest-cold"). With -mix each client owns a registered patient and
// interleaves registry writes (PUT /v1/patients/{id}), inductive
// suggests by registered id, and cached index suggests — the online
// serving workload — recorded as the "patient-update" and
// "suggest-inductive" entries. -append merges entries into an existing
// report so the measurements live side by side; -strict exits non-zero
// on ANY failed request — non-2xx status or transport error
// (connection refused/reset, timeout) — which is how the hot-reload
// and rolling-reload smoke tests assert zero dropped requests under a
// mid-load model swap.
//
// With -cluster the target is a dssddi-router front tier instead of a
// single dssddi-serve: entries are recorded under cluster-prefixed
// names ("cluster-suggest", ...) so one report can hold both
// single-backend and fleet measurements, and the single-backend
// /metricsz enrichment is skipped (the router aggregates per-backend
// metrics in its own shape).
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dssddi/internal/benchfmt"
	"dssddi/internal/obs"
)

type suggestRequest struct {
	Patient   int    `json:"patient,omitempty"`
	PatientID string `json:"patient_id,omitempty"`
	K         int    `json:"k,omitempty"`
}

type patientPutRequest struct {
	Regimen []int `json:"regimen"`
}

// opStats accumulates one operation class's counters and latencies.
// Transport errors (connection refused/reset, timeout — no HTTP
// response at all) are tracked separately from non-2xx statuses: a
// dropped connection during a rolling reload is exactly the failure
// -strict exists to catch, and lumping it into generic errors would
// let a zero-non-2xx assertion pass while requests were being dropped
// on the floor.
type opStats struct {
	op        string // operation-class label for request-id reporting
	mu        sync.Mutex
	requests  int64
	errors    int64
	transport int64 // subset of errors that never got a response
	statuses  map[string]int64
	lats      []int64
}

// observe records one request: status is the HTTP status code, or 0
// with transport=true when no response arrived at all.
func (s *opStats) observe(latNs int64, status int, transport bool) {
	s.mu.Lock()
	s.requests++
	key := strconv.Itoa(status)
	if transport {
		key = "transport"
	}
	if s.statuses == nil {
		s.statuses = make(map[string]int64)
	}
	s.statuses[key]++
	if transport || status < 200 || status >= 300 {
		s.errors++
		if transport {
			s.transport++
		}
	} else {
		s.lats = append(s.lats, latNs)
	}
	s.mu.Unlock()
}

// bench converts the accumulated samples into a ServeBench entry.
func (s *opStats) bench(name string, concurrency int, elapsed time.Duration) benchfmt.ServeBench {
	s.mu.Lock()
	defer s.mu.Unlock()
	sort.Slice(s.lats, func(i, j int) bool { return s.lats[i] < s.lats[j] })
	q := func(p float64) float64 {
		if len(s.lats) == 0 {
			return 0
		}
		return float64(s.lats[int(p*float64(len(s.lats)-1))]) / 1e6
	}
	var counts map[string]int
	if len(s.statuses) > 0 {
		counts = make(map[string]int, len(s.statuses))
		for k, v := range s.statuses {
			counts[k] = int(v)
		}
	}
	return benchfmt.ServeBench{
		Name:            name,
		Concurrency:     concurrency,
		Requests:        int(s.requests),
		Errors:          int(s.errors),
		TransportErrors: int(s.transport),
		StatusCounts:    counts,
		Seconds:         elapsed.Seconds(),
		RPS:             float64(s.requests-s.errors) / elapsed.Seconds(),
		P50Ms:           q(0.50),
		P90Ms:           q(0.90),
		P99Ms:           q(0.99),
	}
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "dssddi-serve address (host:port)")
		duration    = flag.Duration("duration", 5*time.Second, "how long to drive load")
		concurrency = flag.Int("concurrency", 16, "concurrent client goroutines")
		k           = flag.Int("k", 4, "suggestion list length per request")
		spread      = flag.Int("spread", 0, "distinct patients to sample (0 = whole cohort)")
		seed        = flag.Int64("seed", 1, "patient sampling seed")
		jsonPath    = flag.String("json", "", "write a benchfmt report to this JSON file")
		cold        = flag.Bool("cold", false, "cold-path mode: walk distinct patients and send Cache-Control: no-cache, so every request is scored, not served from the result cache")
		mix         = flag.Bool("mix", false, "online mix mode: interleave registry writes, inductive suggests by registered id, and cached index suggests")
		strict      = flag.Bool("strict", false, "exit non-zero if ANY request fails — non-2xx status OR transport error (zero-drop assertion)")
		cluster     = flag.Bool("cluster", false, "cluster mode: the target is a dssddi-router front tier; entries are recorded with a cluster- prefix and backend-shape /metricsz enrichment is skipped")
		appendJSON  = flag.Bool("append", false, "merge the measurements into an existing -json report instead of overwriting it")
		maxErrRate  = flag.Float64("max-error-rate", -1, "exit non-zero if the overall failure rate exceeds this fraction (e.g. 0.05); negative disables — chaos runs use it to assert bounded degradation instead of -strict's zero tolerance")
		verifyEpoch = flag.Bool("verify-epoch", false, "hash every index-suggest response keyed by (patient, k, X-Epoch) and exit non-zero on any bitwise mismatch — the correctness-under-chaos assertion")
		verifyReg   = flag.Bool("verify-registry", false, "mix mode: after the run, re-read every registration the server acknowledged and exit non-zero if any is gone — the zero-lost-registration assertion; counts land in the report's replication section")
		entryPrefix = flag.String("entry-prefix", "", "extra prefix for recorded entry names (e.g. permakill-), so one report can hold several scenarios of the same mode without -append overwriting the earlier one")
		entrySuffix = flag.String("entry-suffix", "", "extra suffix for recorded entry names (e.g. -f32), so quantized passes record beside the f64 ones (suggest-cold vs suggest-cold-f32)")
	)
	flag.Parse()
	log.SetFlags(0)
	if *cold && *mix {
		log.Fatal("loadgen: -cold and -mix are mutually exclusive")
	}
	if *verifyReg && !*mix {
		log.Fatal("loadgen: -verify-registry requires -mix (it audits the mix's registrations)")
	}
	base := "http://" + *addr

	// Discover the cohort size (and prove the server is up). Retried:
	// a chaos-injected or mid-recovery target can drop one probe
	// without invalidating the whole run.
	var health struct {
		Model struct {
			Patients int `json:"patients"`
			Drugs    int `json:"drugs"`
		} `json:"model"`
	}
	var discoverErr error
	for attempt := 0; attempt < 10; attempt++ {
		health.Model.Patients, health.Model.Drugs = 0, 0
		discoverErr = getJSON(base+"/healthz", &health)
		if discoverErr == nil && health.Model.Patients > 0 {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if discoverErr != nil {
		log.Fatalf("loadgen: %s unreachable: %v", base, discoverErr)
	}
	patients, drugs := health.Model.Patients, health.Model.Drugs
	if patients <= 0 {
		log.Fatalf("loadgen: server reports %d patients", patients)
	}
	pool := patients
	if *spread > 0 && *spread < pool {
		pool = *spread
	}

	mode := "cached"
	if *cold {
		mode = "cold"
	} else if *mix {
		mode = "mix"
	}
	if *cluster {
		mode = "cluster " + mode
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d clients, %v, %d-patient pool, %s mode against %s\n",
		*concurrency, *duration, pool, mode, base)

	var (
		wg        sync.WaitGroup
		next      int64      // cold mode: round-robin patient cursor
		nextMu    sync.Mutex // guards next
		suggest   opStats    // plain / cold suggests
		inductive opStats    // mix: suggests by registered id
		update    opStats    // mix: registry PUTs
		verifier  *epochVerifier
	)
	suggest.op, inductive.op, update.op = "suggest", "suggest-inductive", "patient-update"
	if *verifyEpoch {
		verifier = newEpochVerifier()
	}
	takeNext := func() int {
		nextMu.Lock()
		defer nextMu.Unlock()
		v := next
		next++
		return int(v)
	}
	// ackedIDs[c] is client c's registered patient id once at least one
	// PUT for it was acknowledged — the set -verify-registry audits.
	// One slot per client, so no locking.
	ackedIDs := make([]string, *concurrency)
	deadline := time.Now().Add(*duration)
	start := time.Now()
	for c := 0; c < *concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			client := &http.Client{Timeout: 10 * time.Second}
			regID := fmt.Sprintf("lg-%d-%d", *seed, c)
			registered := false
			for it := 0; time.Now().Before(deadline); it++ {
				switch {
				case *mix && (it%4 == 0 || !registered):
					// Registry write: register or replace this client's
					// patient with a fresh random regimen.
					reg := make([]int, 3+rng.Intn(6))
					for i := range reg {
						reg[i] = rng.Intn(drugs)
					}
					body, _ := json.Marshal(patientPutRequest{Regimen: reg})
					req, err := http.NewRequest(http.MethodPut, base+"/v1/patients/"+regID, bytes.NewReader(body))
					if err != nil {
						update.observe(0, 0, true)
						continue
					}
					req.Header.Set("Content-Type", "application/json")
					ok := issue(client, req, &update)
					registered = registered || ok
					if ok {
						ackedIDs[c] = regID
					}
				case *mix && it%2 == 1:
					// Inductive suggest by registered id.
					body, _ := json.Marshal(suggestRequest{PatientID: regID, K: *k})
					req, err := http.NewRequest(http.MethodPost, base+"/v1/suggest", bytes.NewReader(body))
					if err != nil {
						inductive.observe(0, 0, true)
						continue
					}
					req.Header.Set("Content-Type", "application/json")
					issue(client, req, &inductive)
				default:
					patient := rng.Intn(pool)
					if *cold {
						// Unique patients per request (until the pool
						// wraps), and the no-cache header keeps even
						// wrapped patients on the scoring path.
						patient = takeNext() % pool
					}
					body, _ := json.Marshal(suggestRequest{Patient: patient, K: *k})
					req, err := http.NewRequest(http.MethodPost, base+"/v1/suggest", bytes.NewReader(body))
					if err != nil {
						suggest.observe(0, 0, true)
						continue
					}
					req.Header.Set("Content-Type", "application/json")
					if *cold {
						req.Header.Set("Cache-Control", "no-cache")
					}
					var check responseCheck
					if verifier != nil {
						check = verifier.check(patient, *k)
					}
					issueVerified(client, req, &suggest, check)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Cluster measurements get their own entry names so a single
	// report can hold single-backend and fleet numbers side by side
	// (the cluster smoke's scaling assertion diffs the two).
	prefix := ""
	if *cluster {
		prefix = "cluster-"
	}
	prefix = *entryPrefix + prefix
	var benches []benchfmt.ServeBench
	if *mix {
		benches = append(benches,
			inductive.bench(prefix+"suggest-inductive"+*entrySuffix, *concurrency, elapsed),
			update.bench(prefix+"patient-update"+*entrySuffix, *concurrency, elapsed))
	} else {
		name := "suggest"
		if *cold {
			name = "suggest-cold"
		}
		benches = append(benches, suggest.bench(prefix+name+*entrySuffix, *concurrency, elapsed))
	}

	// Enrich with the server's own cache/batching counters. A router's
	// /metricsz aggregates per-backend stats in a different shape, so
	// cluster runs skip this rather than record misleading zeros.
	if !*cluster {
		var metrics struct {
			SuggestCache struct {
				HitRate float64 `json:"hit_rate"`
			} `json:"suggest_cache"`
			Batching struct {
				AvgBatchSize float64 `json:"avg_batch_size"`
			} `json:"batching"`
			Memory struct {
				Precision              string `json:"precision"`
				ModelBytes             int64  `json:"model_bytes"`
				RegistryEmbeddingBytes int64  `json:"registry_embedding_bytes"`
			} `json:"memory"`
		}
		if err := getJSON(base+"/metricsz", &metrics); err == nil {
			for i := range benches {
				benches[i].CacheHitRate = metrics.SuggestCache.HitRate
				benches[i].AvgBatchSize = metrics.Batching.AvgBatchSize
				// The memory section is the server's explicit per-precision
				// byte accounting — the entry records what the run actually
				// served at and what it cost resident.
				benches[i].Precision = metrics.Memory.Precision
				benches[i].ModelBytes = metrics.Memory.ModelBytes
				benches[i].RegistryBytes = metrics.Memory.RegistryEmbeddingBytes
			}
			if metrics.Memory.Precision != "" {
				fmt.Fprintf(os.Stderr, "loadgen: server precision %s, model %d bytes resident, registry embeddings %d bytes\n",
					metrics.Memory.Precision, metrics.Memory.ModelBytes, metrics.Memory.RegistryEmbeddingBytes)
			}
		}
	}

	var totalReqs, totalErrs, totalTransport int64
	for _, b := range benches {
		totalReqs += int64(b.Requests)
		totalErrs += int64(b.Errors)
		totalTransport += int64(b.TransportErrors)
		fmt.Printf("%-24s %8.0f req/s  %6d reqs  %4d errs  %4d terrs  p50 %6.2fms  p90 %6.2fms  p99 %6.2fms  cache %4.1f%%  batch %.2f\n",
			b.Name, b.RPS, b.Requests, b.Errors, b.TransportErrors,
			b.P50Ms, b.P90Ms, b.P99Ms, 100*b.CacheHitRate, b.AvgBatchSize)
	}
	if *mix {
		// The cached index suggests of the mix are warm-up traffic, not
		// a recorded entry, but their failures still count.
		totalReqs += suggest.requests
		totalErrs += suggest.errors
		totalTransport += suggest.transport
	}
	// Failure-mix summary shared by -strict and -max-error-rate: which
	// codes failed, how often — "1483 errors" is unactionable, "503×1480
	// transport×3" names the behavior.
	breakdown := failureBreakdown(&suggest, &inductive, &update)
	if *strict && totalErrs > 0 {
		tracker.dump()
		log.Fatalf("loadgen: -strict: %d/%d requests failed (%d transport errors, %d non-2xx): %s",
			totalErrs, totalReqs, totalTransport, totalErrs-totalTransport, breakdown)
	}
	if misses := tracker.echoMisses(); *strict && misses > 0 {
		log.Fatalf("loadgen: -strict: %d responses missing or mismatching the X-Request-Id echo", misses)
	}
	if *maxErrRate >= 0 && totalReqs > 0 && float64(totalErrs) > *maxErrRate*float64(totalReqs) {
		tracker.dump()
		log.Fatalf("loadgen: -max-error-rate: %d/%d requests failed (%.1f%% > %.1f%% allowed): %s",
			totalErrs, totalReqs, 100*float64(totalErrs)/float64(totalReqs), 100**maxErrRate, breakdown)
	}
	if *maxErrRate < 0 && totalErrs > 0 && totalErrs*10 > totalReqs {
		tracker.dump()
		log.Fatalf("loadgen: %d/%d requests failed: %s", totalErrs, totalReqs, breakdown)
	}
	if verifier != nil && !verifier.report() {
		log.Fatal("loadgen: -verify-epoch: responses diverged within a single epoch")
	}

	// The replication section: loadgen's own registry audit plus the
	// router's replication counters. Gathered before the report is
	// written so a failing audit still leaves its evidence in the JSON.
	var repl *benchfmt.ReplicationStats
	var lostIDs []string
	if *verifyReg {
		repl = &benchfmt.ReplicationStats{}
		repl.VerifiedRegistrations, lostIDs = auditRegistrations(base, ackedIDs)
		repl.LostRegistrations = len(lostIDs)
		if *cluster {
			var rm struct {
				ReplicaReads       int64 `json:"replica_reads"`
				ReadRepairs        int64 `json:"read_repairs"`
				ReplicationFanouts int64 `json:"replication_fanouts"`
				QuorumFailures     int64 `json:"quorum_failures"`
				AntiEntropySyncs   int64 `json:"anti_entropy_syncs"`
				AntiEntropyRecords int64 `json:"anti_entropy_records"`
				PinnedUnavailable  int64 `json:"pinned_unavailable"`
			}
			if err := getJSON(base+"/metricsz", &rm); err != nil {
				log.Fatalf("loadgen: -verify-registry: scraping router metrics: %v", err)
			}
			repl.ReplicaReads = rm.ReplicaReads
			repl.ReadRepairs = rm.ReadRepairs
			repl.ReplicationFanouts = rm.ReplicationFanouts
			repl.QuorumFailures = rm.QuorumFailures
			repl.AntiEntropySyncs = rm.AntiEntropySyncs
			repl.AntiEntropyRecords = rm.AntiEntropyRecords
			repl.PinnedUnavailable = rm.PinnedUnavailable
		}
		fmt.Fprintf(os.Stderr, "loadgen: -verify-registry: %d acknowledged registrations re-read, %d lost\n",
			repl.VerifiedRegistrations, repl.LostRegistrations)
	}

	if *jsonPath != "" {
		rep := benchfmt.Report{
			Schema:       benchfmt.Schema,
			Profile:      "serve",
			GoMaxProcs:   runtime.GOMAXPROCS(0),
			Seed:         *seed,
			Serving:      benches,
			Replication:  repl,
			TotalSeconds: elapsed.Seconds(),
		}
		if *appendJSON {
			// Merge into an existing report (replacing same-named
			// entries), so one BENCH_serve.json carries the cached, cold
			// and mix measurements side by side. A missing file starts a
			// fresh report; an unreadable or foreign one is an error —
			// silently dropping the earlier entries would corrupt the
			// committed record.
			switch prev, err := os.ReadFile(*jsonPath); {
			case err == nil:
				var old benchfmt.Report
				if err := json.Unmarshal(prev, &old); err != nil {
					log.Fatalf("loadgen: -append: %s is not a benchfmt report: %v", *jsonPath, err)
				}
				if old.Schema != rep.Schema {
					log.Fatalf("loadgen: -append: %s has schema %q, want %q", *jsonPath, old.Schema, rep.Schema)
				}
				replaced := make(map[string]bool, len(benches))
				for _, b := range benches {
					replaced[b.Name] = true
				}
				merged := old.Serving[:0]
				for _, sb := range old.Serving {
					if !replaced[sb.Name] {
						merged = append(merged, sb)
					}
				}
				old.Serving = append(merged, benches...)
				old.TotalSeconds += elapsed.Seconds()
				if repl != nil {
					old.Replication = repl
				}
				rep = old
			case !os.IsNotExist(err):
				log.Fatalf("loadgen: -append: %v", err)
			}
		}
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("loadgen: marshal report: %v", err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			log.Fatalf("loadgen: write %s: %v", *jsonPath, err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", *jsonPath)
	}
	// The audit failure exits AFTER the report is written: the lost
	// count must land in the JSON so benchdiff's gate and the artifact
	// trail both see it.
	if len(lostIDs) > 0 {
		if len(lostIDs) > trackerKeep {
			lostIDs = lostIDs[:trackerKeep]
		}
		log.Fatalf("loadgen: -verify-registry: %d acknowledged registrations lost (first: %s)",
			repl.LostRegistrations, strings.Join(lostIDs, ", "))
	}
}

// auditRegistrations re-reads every acknowledged registration after
// the run. Each id gets a patient GET with retries — the fleet may
// still be healing from a mid-run crash — and counts as lost only if
// it never answers 200 within the retry budget. Returns the verified
// count and the lost ids.
func auditRegistrations(base string, ackedIDs []string) (verified int, lost []string) {
	client := &http.Client{Timeout: 10 * time.Second}
	for _, id := range ackedIDs {
		if id == "" {
			continue // this client never got a PUT acknowledged
		}
		ok := false
		for attempt := 0; attempt < 40 && !ok; attempt++ {
			resp, err := client.Get(base + "/v1/patients/" + id)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ok = resp.StatusCode == http.StatusOK
			}
			if !ok {
				time.Sleep(250 * time.Millisecond)
			}
		}
		if ok {
			verified++
		} else {
			lost = append(lost, id)
		}
	}
	return verified, lost
}

// issue sends one request, draining and classifying the response;
// 2xx is success, a client.Do error is a transport error (the request
// never got an HTTP response).
func issue(client *http.Client, req *http.Request, stats *opStats) bool {
	return issueVerified(client, req, stats, nil)
}

// issueVerified is issue plus an optional response check: when check
// is non-nil the body is read in full (instead of discarded) and
// handed to it along with the response's X-Epoch stamp. Every request
// is stamped with a fresh X-Request-Id and the response's echo is
// verified, so a failed or slow request can be looked up by id in the
// server's /debug/tracez afterwards.
func issueVerified(client *http.Client, req *http.Request, stats *opStats, check responseCheck) bool {
	rid := obs.NewRequestID()
	req.Header.Set(obs.RequestIDHeader, rid)
	t0 := time.Now()
	resp, err := client.Do(req)
	lat := time.Since(t0).Nanoseconds()
	if err != nil {
		stats.observe(lat, 0, true)
		tracker.noteFailed(stats.op, rid, "transport")
		return false
	}
	if echo := resp.Header.Get(obs.RequestIDHeader); echo != rid {
		tracker.noteEchoMiss()
	}
	ok := resp.StatusCode >= 200 && resp.StatusCode < 300
	if check != nil && ok {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			// The body died mid-read (mid-body drop): a transport error,
			// even though a status line arrived.
			stats.observe(lat, 0, true)
			tracker.noteFailed(stats.op, rid, "transport")
			return false
		}
		check(resp.Header.Get("X-Epoch"), body)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	stats.observe(lat, resp.StatusCode, false)
	if ok {
		tracker.noteSlow(stats.op, rid, lat)
	} else {
		tracker.noteFailed(stats.op, rid, strconv.Itoa(resp.StatusCode))
	}
	return ok
}

// reqRecord identifies one request for post-hoc trace lookup: its id
// can be pasted into /debug/tracez?id= on the router or backend.
type reqRecord struct {
	op    string
	id    string
	latNs int64
	cause string // failures: status code or "transport"
}

// idTracker remembers the request ids worth naming when an assertion
// fails: the slowest successes (sorted descending, bounded) and the
// first few failures, plus a count of responses whose X-Request-Id
// echo was missing or wrong.
type idTracker struct {
	mu       sync.Mutex
	slowest  []reqRecord
	failed   []reqRecord
	echoMiss int64
}

const trackerKeep = 5

var tracker idTracker

func (t *idTracker) noteSlow(op, id string, latNs int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.slowest) == trackerKeep && latNs <= t.slowest[len(t.slowest)-1].latNs {
		return
	}
	i := sort.Search(len(t.slowest), func(i int) bool { return t.slowest[i].latNs < latNs })
	t.slowest = append(t.slowest, reqRecord{})
	copy(t.slowest[i+1:], t.slowest[i:])
	t.slowest[i] = reqRecord{op: op, id: id, latNs: latNs}
	if len(t.slowest) > trackerKeep {
		t.slowest = t.slowest[:trackerKeep]
	}
}

func (t *idTracker) noteFailed(op, id, cause string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.failed) < trackerKeep {
		t.failed = append(t.failed, reqRecord{op: op, id: id, cause: cause})
	}
}

func (t *idTracker) noteEchoMiss() {
	t.mu.Lock()
	t.echoMiss++
	t.mu.Unlock()
}

func (t *idTracker) echoMisses() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.echoMiss
}

// dump prints the remembered ids to stderr so a failing run names the
// traces to pull, instead of just a count.
func (t *idTracker) dump() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.failed {
		fmt.Fprintf(os.Stderr, "loadgen: failed request  id=%s op=%s cause=%s\n", r.id, r.op, r.cause)
	}
	for _, r := range t.slowest {
		fmt.Fprintf(os.Stderr, "loadgen: slowest request id=%s op=%s lat=%.2fms\n", r.id, r.op, float64(r.latNs)/1e6)
	}
}

// responseCheck consumes one verified response's epoch stamp and body.
type responseCheck func(epoch string, body []byte)

// failureBreakdown renders the non-2xx status mix across operation
// classes, sorted by count descending ("503×1480, transport×3").
func failureBreakdown(all ...*opStats) string {
	merged := make(map[string]int64)
	for _, s := range all {
		s.mu.Lock()
		for code, n := range s.statuses {
			if code == "transport" || code[0] != '2' {
				merged[code] += n
			}
		}
		s.mu.Unlock()
	}
	if len(merged) == 0 {
		return "none"
	}
	type kv struct {
		code string
		n    int64
	}
	codes := make([]kv, 0, len(merged))
	for c, n := range merged {
		codes = append(codes, kv{c, n})
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i].n > codes[j].n })
	parts := make([]string, len(codes))
	for i, c := range codes {
		parts[i] = fmt.Sprintf("%s×%d", c.code, c.n)
	}
	return strings.Join(parts, ", ")
}

// epochVerifier asserts the bitwise-consistency invariant under load:
// two 200s for the same (patient, k) carrying the same X-Epoch must
// be byte-identical, no matter which backend served them or what the
// network did in between. It stores one SHA-256 per key, so verifying
// a long chaos run costs a few KB, not the bodies themselves.
type epochVerifier struct {
	mu         sync.Mutex
	seen       map[string][sha256.Size]byte
	checked    int64
	mismatches []string // first few offending keys, for the error message
}

func newEpochVerifier() *epochVerifier {
	return &epochVerifier{seen: make(map[string][sha256.Size]byte)}
}

func (v *epochVerifier) check(patient, k int) responseCheck {
	return func(epoch string, body []byte) {
		if epoch == "" {
			return // not an epoch-stamped response; nothing to hold it to
		}
		key := fmt.Sprintf("%d|%d|%s", patient, k, epoch)
		sum := sha256.Sum256(body)
		v.mu.Lock()
		defer v.mu.Unlock()
		v.checked++
		if prev, ok := v.seen[key]; ok {
			if prev != sum && len(v.mismatches) < 8 {
				v.mismatches = append(v.mismatches, key)
			}
			return
		}
		v.seen[key] = sum
	}
}

// report prints the verification summary and returns false when the
// invariant was violated.
func (v *epochVerifier) report() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.mismatches) > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: -verify-epoch: %d bitwise mismatches (patient|k|epoch): %s\n",
			len(v.mismatches), strings.Join(v.mismatches, ", "))
		return false
	}
	fmt.Fprintf(os.Stderr, "loadgen: -verify-epoch: %d responses over %d distinct (patient, k, epoch) keys, all bitwise-consistent\n",
		v.checked, len(v.seen))
	return true
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

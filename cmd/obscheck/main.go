// Command obscheck validates a running dssddi tier's observability
// surfaces from the outside; the obs-smoke script (and CI) uses it as
// the assertion half of end-to-end trace correlation.
//
// Usage:
//
//	obscheck prom http://127.0.0.1:8080/metricsz?format=prometheus [-require name,name...]
//	obscheck trace http://127.0.0.1:8080/debug/tracez -id <request-id> [-min-ms 5] [-spans score,encode] [-cover 0.5]
//
// `prom` fetches one Prometheus text exposition, parses it strictly,
// verifies every histogram family is internally consistent (cumulative
// buckets, _count == +Inf bucket) and that each -require'd family is
// present. `trace` fetches /debug/tracez JSON filtered to one request
// id and asserts the trace was retained, names every -spans stage, and
// that the stage spans sum to at least -cover of the measured request
// latency (and no more than the latency itself, within scheduling
// slack) — the "spans explain the latency" end-to-end check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"dssddi/internal/obs"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 3 {
		log.Fatal("usage: obscheck prom|trace <url> [flags]")
	}
	cmd, url := os.Args[1], os.Args[2]
	args := os.Args[3:]
	switch cmd {
	case "prom":
		checkProm(url, args)
	case "trace":
		checkTrace(url, args)
	default:
		log.Fatalf("obscheck: unknown subcommand %q (want prom or trace)", cmd)
	}
}

func checkProm(url string, args []string) {
	fs := flag.NewFlagSet("prom", flag.ExitOnError)
	require := fs.String("require", "", "comma-separated metric families that must be present")
	fs.Parse(args)

	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("obscheck: GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("obscheck: GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		log.Fatalf("obscheck: GET %s: content-type %q, want text/plain exposition", url, ct)
	}
	set, err := obs.ParseProm(resp.Body)
	if err != nil {
		log.Fatalf("obscheck: %s: malformed exposition: %v", url, err)
	}
	hists, err := set.CheckHistograms()
	if err != nil {
		log.Fatalf("obscheck: %s: inconsistent histogram: %v", url, err)
	}
	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if _, ok := set.Types[name]; !ok {
				log.Fatalf("obscheck: %s: required metric family %q missing", url, name)
			}
		}
	}
	fmt.Printf("obscheck: prom OK: %d samples, %d histogram series consistent (%s)\n",
		len(set.Series), hists, url)
}

func checkTrace(url string, args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	id := fs.String("id", "", "request id the trace must carry (required)")
	minMs := fs.Float64("min-ms", 0, "trace duration must be at least this many milliseconds")
	spans := fs.String("spans", "", "comma-separated span names the trace must contain")
	cover := fs.Float64("cover", 0.5, "stage spans must sum to at least this fraction of the trace duration")
	fs.Parse(args)
	if *id == "" {
		log.Fatal("obscheck: trace: -id is required")
	}

	sep := "?"
	if strings.Contains(url, "?") {
		sep = "&"
	}
	full := url + sep + "format=json&id=" + *id
	resp, err := http.Get(full)
	if err != nil {
		log.Fatalf("obscheck: GET %s: %v", full, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("obscheck: GET %s: status %d", full, resp.StatusCode)
	}
	var page obs.TracezPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		log.Fatalf("obscheck: %s: bad tracez JSON: %v", full, err)
	}

	// The id filter leaves only matching traces; one request can sit in
	// several rings, so take the first hit.
	views := append(append(append([]obs.TraceView(nil), page.Recent...), page.Slowest...), page.Errored...)
	if len(views) == 0 {
		log.Fatalf("obscheck: %s: no retained trace for id %s", full, *id)
	}
	v := views[0]
	if v.ID != *id {
		log.Fatalf("obscheck: %s: trace id %q, want %q", full, v.ID, *id)
	}
	if v.DurMs < *minMs {
		log.Fatalf("obscheck: trace %s: duration %.3fms < required %.3fms", *id, v.DurMs, *minMs)
	}

	var sumMs float64
	have := make(map[string]bool, len(v.Spans))
	for _, sp := range v.Spans {
		sumMs += sp.DurMs
		// Span names may be instance-qualified ("proxy:127.0.0.1:9001");
		// index by the bare stage name too.
		have[sp.Name] = true
		if i := strings.IndexByte(sp.Name, ':'); i > 0 {
			have[sp.Name[:i]] = true
		}
	}
	if *spans != "" {
		for _, name := range strings.Split(*spans, ",") {
			name = strings.TrimSpace(name)
			if !have[name] {
				log.Fatalf("obscheck: trace %s: span %q missing (spans: %v)", *id, name, spanNames(v.Spans))
			}
		}
	}
	if len(v.Spans) > 0 {
		if sumMs < *cover*v.DurMs {
			log.Fatalf("obscheck: trace %s: spans sum to %.3fms, less than %.0f%% of the %.3fms request (%v)",
				*id, sumMs, 100**cover, v.DurMs, spanNames(v.Spans))
		}
		// Stages are sequential, so their sum cannot exceed the request
		// latency by more than scheduling slack.
		if slack := 1.0 + 0.1*v.DurMs; sumMs > v.DurMs+slack {
			log.Fatalf("obscheck: trace %s: spans sum to %.3fms, exceeding the %.3fms request", *id, sumMs, v.DurMs)
		}
	}
	fmt.Printf("obscheck: trace OK: id=%s service=%s route=%s %.3fms, %d spans summing %.3fms (%v)\n",
		*id, page.Service, v.Route, v.DurMs, len(v.Spans), sumMs, spanNames(v.Spans))
}

func spanNames(spans []obs.Span) []string {
	names := make([]string, len(spans))
	for i, sp := range spans {
		names[i] = sp.Name
	}
	return names
}

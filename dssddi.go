// Package dssddi is a decision support system for chronic diseases
// based on drug-drug interactions — a from-scratch Go reproduction of
// Bian et al., "Decision Support System for Chronic Diseases Based on
// Drug-Drug Interactions" (ICDE 2023).
//
// The system has three modules:
//
//   - the DDI module learns drug relation embeddings from a signed
//     drug-drug interaction graph (DDIGCN; backbones GIN, SGCN, SiGAT,
//     SNEA),
//   - the MD module suggests medications by link prediction on the
//     patient-drug bipartite graph, trained with counterfactual links
//     derived from a causal treatment model (MDGCN),
//   - the MS module explains each suggestion with the closest dense
//     subgraph of the DDI graph and the Suggestion Satisfaction score.
//
// Quickstart:
//
//	data := dssddi.GenerateChronic(1, 300, 250)
//	sys := dssddi.New(dssddi.DefaultConfig())
//	sys.Train(data)
//	suggestions, _ := sys.Suggest(data.TestPatients()[0], 3)
//	explanation, _ := sys.ExplainSuggestions(suggestions)
//	fmt.Println(explanation.Text)
package dssddi

import (
	"fmt"
	"math/rand"

	"dssddi/internal/dataset"
	"dssddi/internal/ddi"
	"dssddi/internal/kg"
	"dssddi/internal/mat"
	"dssddi/internal/md"
	"dssddi/internal/metrics"
	"dssddi/internal/ms"
	"dssddi/internal/synth"
)

// ExplicitZero is a sentinel for the Config fields whose literal zero
// value selects a paper default (Alpha, Delta): set a field to
// ExplicitZero to request an exact zero instead of the default. Any
// other negative value is rejected at Train time.
const ExplicitZero float64 = -1

// Config tunes the whole system. Zero values fall back to the paper's
// hyperparameters (Section V-A3).
type Config struct {
	// Backbone of the DDI module: "GIN", "SGCN" (default), "SiGAT" or
	// "SNEA".
	Backbone string
	// DDIEpochs / MDEpochs bound the two training loops (defaults 400
	// and 1000, the paper's settings).
	DDIEpochs int
	MDEpochs  int
	// Hidden is the representation width (default 64).
	Hidden int
	// Delta weights the counterfactual loss (default 1; ExplicitZero
	// disables it).
	Delta float64
	// Alpha balances the two terms of Suggestion Satisfaction
	// (default 0.5; ExplicitZero weights only the second term).
	Alpha float64
	// Seed drives all randomness.
	Seed int64
	// Workers bounds the goroutines used by the dense/sparse compute
	// kernels (a process-wide knob shared by all systems). 0 keeps
	// the current process-wide setting (which defaults to
	// runtime.GOMAXPROCS(0)); 1 restores exact-serial execution. Any
	// setting produces bitwise-identical results — kernels partition
	// rows, never reductions.
	Workers int
}

// DefaultConfig mirrors the paper's experimental setup.
func DefaultConfig() Config {
	return Config{
		Backbone:  "SGCN",
		DDIEpochs: 400,
		MDEpochs:  1000,
		Hidden:    64,
		Delta:     1,
		Alpha:     0.5,
		Seed:      1,
	}
}

func (c *Config) fill() {
	if c.Backbone == "" {
		c.Backbone = "SGCN"
	}
	if c.DDIEpochs == 0 {
		c.DDIEpochs = 400
	}
	if c.MDEpochs == 0 {
		c.MDEpochs = 1000
	}
	if c.Hidden == 0 {
		c.Hidden = 64
	}
	switch c.Alpha {
	case 0:
		c.Alpha = 0.5
	case ExplicitZero:
		c.Alpha = 0
	}
	switch c.Delta {
	case 0:
		c.Delta = 1
	case ExplicitZero:
		c.Delta = 0
	}
}

// validate rejects out-of-range hyperparameters after fill has
// resolved defaults and sentinels.
func (c *Config) validate() error {
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("dssddi: Alpha %v out of range [0, 1] (use ExplicitZero for an exact zero)", c.Alpha)
	}
	if c.Delta < 0 {
		return fmt.Errorf("dssddi: Delta %v must be non-negative (use ExplicitZero for an exact zero)", c.Delta)
	}
	return nil
}

func parseBackbone(s string) (ddi.Backbone, error) {
	switch s {
	case "GIN":
		return ddi.GIN, nil
	case "SGCN":
		return ddi.SGCN, nil
	case "SiGAT":
		return ddi.SiGAT, nil
	case "SNEA":
		return ddi.SNEA, nil
	default:
		return 0, fmt.Errorf("dssddi: unknown backbone %q (want GIN, SGCN, SiGAT or SNEA)", s)
	}
}

// Data is a medication-suggestion problem instance: patients with
// features and medication-use labels, plus the signed DDI graph.
type Data struct {
	ds    *dataset.Dataset
	names []string
}

// GenerateChronic builds a synthetic chronic-disease cohort shaped
// after the paper's Hong Kong Chronic Disease Study data (86 drugs, 71
// features, 97 synergistic + 243 antagonistic DDI pairs) together with
// TransE-pretrained drug features, split 5:3:2.
func GenerateChronic(seed int64, males, females int) *Data {
	rng := rand.New(rand.NewSource(seed))
	opts := synth.DefaultCohortOptions()
	opts.Males, opts.Females = males, females
	cohort := synth.GenerateCohort(rng, opts)
	// Pretrained drug features from the synthetic knowledge graph.
	kgraph := kg.Generate(rng, cohort.Catalog, 40)
	cfg := kg.DefaultTransEConfig()
	cfg.Dim = 64
	cfg.Epochs = 30
	cfg.Seed = seed
	emb := kg.Train(kgraph, cfg).DrugEmbeddings(len(cohort.Catalog))
	ds := dataset.FromCohort(rng, cohort, emb)
	return &Data{ds: ds, names: ds.DrugNames}
}

// GenerateChronicDefault builds the full-size cohort of the paper
// (2254 male + 1903 female records).
func GenerateChronicDefault(seed int64) *Data { return GenerateChronic(seed, 2254, 1903) }

// GenerateMIMIC builds the synthetic critical-care instance standing in
// for MIMIC-III (visit sequences, anonymous medicines, unsigned DDI).
func GenerateMIMIC(seed int64, patients int) *Data {
	rng := rand.New(rand.NewSource(seed))
	opts := synth.DefaultMIMICOptions()
	if patients > 0 {
		opts.Patients = patients
	}
	m := synth.GenerateMIMIC(rng, opts)
	ds := dataset.FromMIMIC(rng, m)
	return &Data{ds: ds, names: ds.DrugNames}
}

// Dataset exposes the underlying dataset for the experiment harness.
func (d *Data) Dataset() *dataset.Dataset { return d.ds }

// NumPatients returns the cohort size.
func (d *Data) NumPatients() int { return d.ds.NumPatients() }

// NumDrugs returns the drug-candidate count.
func (d *Data) NumDrugs() int { return d.ds.NumDrugs() }

// DrugName resolves a drug ID.
func (d *Data) DrugName(id int) string {
	if id < 0 || id >= len(d.names) {
		return fmt.Sprintf("DID %d", id)
	}
	return d.names[id]
}

// TrainPatients returns the observed (training) patient indices.
func (d *Data) TrainPatients() []int { return d.ds.Train }

// ValPatients returns the validation patient indices.
func (d *Data) ValPatients() []int { return d.ds.Val }

// TestPatients returns the unobserved (test) patient indices.
func (d *Data) TestPatients() []int { return d.ds.Test }

// Medications returns the drug IDs patient p is recorded as taking.
func (d *Data) Medications(p int) []int { return d.ds.TruePositives(p) }

// Features returns a copy of patient p's feature vector.
func (d *Data) Features(p int) []float64 {
	return append([]float64(nil), d.ds.X.Row(p)...)
}

// Suggestion is one ranked drug recommendation.
type Suggestion struct {
	DrugID   int
	DrugName string
	Score    float64
}

// Explanation is the MS module's output with drug names resolved.
type Explanation struct {
	// SS is the Suggestion Satisfaction (Eq. 19 of the paper).
	SS float64
	// Synergistic / Antagonistic list the interactions in the
	// explanation subgraph as "DrugA and DrugB" strings.
	Synergistic  []string
	Antagonistic []string
	// SubgraphDrugs names every drug in the closest dense subgraph.
	SubgraphDrugs []string
	// Text is the full rendered explanation.
	Text string
}

// System is a trained DSSDDI instance.
type System struct {
	cfg      Config
	backbone ddi.Backbone
	data     *Data
	ddiModel *ddi.Model
	mdModel  *md.Model
	trained  bool
}

// New creates an untrained system. Invalid configurations surface at
// Train time. A non-zero Workers setting takes effect immediately
// (process-wide); zero leaves the current setting untouched, so
// constructing a default-config system never clobbers an explicit
// earlier choice.
func New(cfg Config) *System {
	cfg.fill()
	if cfg.Workers != 0 {
		mat.SetWorkers(cfg.Workers)
	}
	return &System{cfg: cfg}
}

// Train fits the DDI module on the data's interaction graph and the MD
// module on its observed patients.
func (s *System) Train(data *Data) error {
	b, err := parseBackbone(s.cfg.Backbone)
	if err != nil {
		return err
	}
	if err := s.cfg.validate(); err != nil {
		return err
	}
	s.backbone = b
	s.data = data

	syn, ant, _ := data.ds.DDI.CountBySign()
	useSigned := syn > 0 && ant > 0
	if !useSigned && (b == ddi.SGCN || b == ddi.SiGAT || b == ddi.SNEA) {
		// Signed backbones need both edge signs (the paper reports only
		// GIN on MIMIC for this reason).
		return fmt.Errorf("dssddi: backbone %v needs both synergy and antagonism edges; this data has %d/%d (use GIN)", b, syn, ant)
	}

	dcfg := ddi.DefaultConfig()
	dcfg.Backbone = b
	dcfg.Hidden = s.cfg.Hidden
	dcfg.Epochs = s.cfg.DDIEpochs
	dcfg.Seed = s.cfg.Seed
	s.ddiModel = ddi.NewModel(data.ds.DDI, dcfg)
	s.ddiModel.Train()
	relEmb := s.ddiModel.Embeddings()

	mcfg := md.DefaultConfig()
	mcfg.Hidden = s.cfg.Hidden
	mcfg.Epochs = s.cfg.MDEpochs
	mcfg.Delta = s.cfg.Delta
	mcfg.Seed = s.cfg.Seed
	s.mdModel = md.NewModel(data.ds, relEmb, mcfg)
	s.mdModel.Train()
	s.trained = true
	return nil
}

func (s *System) ensureTrained() error {
	if !s.trained {
		return fmt.Errorf("dssddi: system is not trained; call Train first")
	}
	return nil
}

// SetPrecision switches the serving-side numeric representation of the
// frozen MD model: "f64" (the default and the accuracy oracle), "f32"
// (float32 copies of the frozen state on the f32 SIMD kernels, ~half
// the resident bytes) or "int8-experimental" (additionally row-
// quantizes the drug-representation matrix to int8). The derivation is
// deterministic per snapshot. It must not run concurrently with
// scoring; the serving layer applies it to a freshly loaded system
// before the epoch is published. Embeddings built at one precision are
// rejected at another (see EmbedPatient), so callers holding
// PatientEmbeddings must re-embed after a switch.
func (s *System) SetPrecision(name string) error {
	if err := s.ensureTrained(); err != nil {
		return err
	}
	p, err := md.ParsePrecision(name)
	if err != nil {
		return err
	}
	return s.mdModel.SetPrecision(p)
}

// ValidatePrecision reports whether name is a recognized precision
// ("", "f64", "f32", "int8-experimental") without touching any system.
func ValidatePrecision(name string) error {
	_, err := md.ParsePrecision(name)
	return err
}

// Precision reports the active serving precision ("f64", "f32" or
// "int8-experimental").
func (s *System) Precision() string {
	if s.mdModel == nil {
		return md.F64.String()
	}
	return s.mdModel.Precision().String()
}

// ResidentModelBytes returns the explicit resident byte count of the
// active serving representation of the frozen model — measured from
// the blobs themselves per precision, not from runtime.MemStats.
func (s *System) ResidentModelBytes() int {
	if s.mdModel == nil {
		return 0
	}
	return s.mdModel.ResidentModelBytes()
}

// Suggest returns the top-k drug suggestions for a patient of the
// training data (typically a test patient). It is the single-patient
// cold fast path: scoring streams through the MD module's tiled
// TopKScores — pooled scratch, a size-k running selection, no full
// score row — and returns exactly the suggestions ranking a full
// Scores row would produce.
func (s *System) Suggest(patient, k int) ([]Suggestion, error) {
	if err := s.ensureTrained(); err != nil {
		return nil, err
	}
	if patient < 0 || patient >= s.data.NumPatients() {
		return nil, fmt.Errorf("dssddi: patient %d out of range %d", patient, s.data.NumPatients())
	}
	ids, scores := s.mdModel.TopKScores(patient, k)
	out := make([]Suggestion, len(ids))
	for i, v := range ids {
		out[i] = Suggestion{DrugID: v, DrugName: s.data.DrugName(v), Score: scores[i]}
	}
	return out, nil
}

// Scores returns the raw suggestion scores (one row per patient, one
// column per drug).
func (s *System) Scores(patients []int) ([][]float64, error) {
	if err := s.ensureTrained(); err != nil {
		return nil, err
	}
	// Scores materialises a fresh matrix owned by this call, so the
	// rows can be handed out directly — no second copy. Capacities are
	// clipped so appending to one row can never bleed into the next.
	m := s.mdModel.Scores(patients)
	n := m.Cols()
	rows := make([][]float64, m.Rows())
	for i := range rows {
		rows[i] = m.Row(i)[:n:n]
	}
	return rows, nil
}

// ScoresInto fills rows[i] with the suggestion scores of patients[i]
// — the buffer-reusing form of Scores. Each rows[i] must have length
// NumDrugs. The serving batcher feeds pooled row buffers through
// here, so steady-state batch scoring allocates nothing; the values
// are bitwise identical to Scores.
func (s *System) ScoresInto(rows [][]float64, patients []int) error {
	if err := s.ensureTrained(); err != nil {
		return err
	}
	if len(rows) != len(patients) {
		return fmt.Errorf("dssddi: ScoresInto got %d rows for %d patients", len(rows), len(patients))
	}
	for i, r := range rows {
		if len(r) != s.data.NumDrugs() {
			return fmt.Errorf("dssddi: ScoresInto row %d has length %d, want %d", i, len(r), s.data.NumDrugs())
		}
	}
	for _, p := range patients {
		if p < 0 || p >= s.data.NumPatients() {
			return fmt.Errorf("dssddi: patient %d out of range %d", p, s.data.NumPatients())
		}
	}
	s.mdModel.ScoresRowsInto(rows, patients)
	return nil
}

// SuggestFromScores ranks a precomputed score row (one element per
// drug, as returned by Scores) into a suggestion list. It is the
// batched serving path: a server that coalesced many patients into one
// Scores call re-ranks each row with exactly the code Suggest uses, so
// batched and direct suggestions are identical. Returns an error on an
// untrained system or a row of the wrong width.
func (s *System) SuggestFromScores(scores []float64, k int) ([]Suggestion, error) {
	if err := s.ensureTrained(); err != nil {
		return nil, err
	}
	if len(scores) != s.data.NumDrugs() {
		return nil, fmt.Errorf("dssddi: score row has %d entries for %d drugs", len(scores), s.data.NumDrugs())
	}
	return s.rank(scores, k), nil
}

func (s *System) rank(scores []float64, k int) []Suggestion {
	// Streaming selection with metrics.TopK's exact ordering, without
	// allocating and sorting an index permutation of the whole row.
	var sel metrics.Selector
	sel.Reset(k)
	for i, v := range scores {
		sel.Push(i, v)
	}
	out := make([]Suggestion, sel.Len())
	for r := range out {
		v, sc := sel.At(r)
		out[r] = Suggestion{DrugID: v, DrugName: s.data.DrugName(v), Score: sc}
	}
	return out
}

// PatientProfile describes a patient by clinical content instead of a
// dataset index: their current medication regimen (drug IDs) and an
// optional feature vector of the training data's feature width. It is
// the online-layer input — profiles for patients the model has never
// seen, or edited regimens for known ones, score without retraining.
type PatientProfile struct {
	Regimen  []int
	Features []float64
}

// PatientEmbedding is an opaque scoring-ready representation of one
// PatientProfile, produced by EmbedPatient and consumed by the
// *ForEmbedding methods. Embedding once and scoring many times is the
// serving fast path: the registry caches one embedding per registered
// patient and recomputes it only on regimen/feature writes. An
// embedding is bound to the System that produced it.
type PatientEmbedding struct {
	sys *System
	emb *md.PatientEmbedding
}

// EmbedPatient builds the scoring-ready embedding of a patient
// profile. For an observed (training) patient embedded with their own
// recorded regimen and features, scoring the embedding is bitwise
// identical to the transductive Scores/Suggest path for that index;
// unseen profiles run the same kernels over the inductive patient
// representation (see internal/md).
func (s *System) EmbedPatient(p PatientProfile) (*PatientEmbedding, error) {
	if err := s.ensureTrained(); err != nil {
		return nil, err
	}
	emb, err := s.mdModel.EmbedPatient(p.Regimen, p.Features)
	if err != nil {
		return nil, fmt.Errorf("dssddi: %w", err)
	}
	return &PatientEmbedding{sys: s, emb: emb}, nil
}

// Bytes returns the resident size of the embedding's payload — the
// per-entry term of the registry's explicit memory accounting. At
// precision f32/int8 embeddings store only narrowed representations,
// so this is half the f64 figure.
func (e *PatientEmbedding) Bytes() int {
	if e == nil || e.emb == nil {
		return 0
	}
	return e.emb.Bytes()
}

// checkEmbedding rejects embeddings that did not come from this
// system — scoring one against a different model (for example across a
// serving hot-reload) would silently mix two models' representations.
func (s *System) checkEmbedding(e *PatientEmbedding) error {
	if e == nil || e.emb == nil {
		return fmt.Errorf("dssddi: nil patient embedding")
	}
	if e.sys != s {
		return fmt.Errorf("dssddi: patient embedding belongs to a different System; re-embed the profile")
	}
	return nil
}

// SuggestFor returns the top-k drug suggestions for an arbitrary
// patient profile — the inductive counterpart of Suggest, riding the
// same tiled top-k engine.
func (s *System) SuggestFor(p PatientProfile, k int) ([]Suggestion, error) {
	e, err := s.EmbedPatient(p)
	if err != nil {
		return nil, err
	}
	return s.SuggestForEmbedding(e, k)
}

// SuggestForEmbedding is SuggestFor over a prebuilt embedding.
func (s *System) SuggestForEmbedding(e *PatientEmbedding, k int) ([]Suggestion, error) {
	if err := s.checkEmbedding(e); err != nil {
		return nil, err
	}
	ids, scores := s.mdModel.TopKScoresFor(e.emb, k)
	out := make([]Suggestion, len(ids))
	for i, v := range ids {
		out[i] = Suggestion{DrugID: v, DrugName: s.data.DrugName(v), Score: scores[i]}
	}
	return out, nil
}

// ScoresFor returns the raw suggestion scores (one per drug) for an
// arbitrary patient profile.
func (s *System) ScoresFor(p PatientProfile) ([]float64, error) {
	e, err := s.EmbedPatient(p)
	if err != nil {
		return nil, err
	}
	return s.ScoresForEmbedding(e)
}

// ScoresForEmbedding is ScoresFor over a prebuilt embedding.
func (s *System) ScoresForEmbedding(e *PatientEmbedding) ([]float64, error) {
	if err := s.checkEmbedding(e); err != nil {
		return nil, err
	}
	return s.mdModel.ScoresFor(e.emb), nil
}

// ScoresForEmbeddingInto fills dst (length NumDrugs) with the scores
// of a prebuilt embedding — the buffer-reusing serving form.
func (s *System) ScoresForEmbeddingInto(dst []float64, e *PatientEmbedding) error {
	if err := s.checkEmbedding(e); err != nil {
		return err
	}
	if len(dst) != s.data.NumDrugs() {
		return fmt.Errorf("dssddi: ScoresForEmbeddingInto dst has length %d, want %d", len(dst), s.data.NumDrugs())
	}
	s.mdModel.ScoresForInto(dst, e.emb)
	return nil
}

// ExplainFor suggests top-k drugs for an arbitrary patient profile and
// explains the suggested set with the MS module, returning both.
func (s *System) ExplainFor(p PatientProfile, k int) ([]Suggestion, Explanation, error) {
	suggs, err := s.SuggestFor(p, k)
	if err != nil {
		return nil, Explanation{}, err
	}
	ex, err := s.ExplainSuggestions(suggs)
	if err != nil {
		return nil, Explanation{}, err
	}
	return suggs, ex, nil
}

// Explain runs the MS module on a set of drug IDs.
func (s *System) Explain(drugIDs []int) (Explanation, error) {
	if err := s.ensureTrained(); err != nil {
		return Explanation{}, err
	}
	opts := ms.DefaultOptions()
	opts.Alpha = s.cfg.Alpha
	ex := ms.Explain(s.data.ds.DDI, drugIDs, opts)
	out := Explanation{SS: ex.SS, Text: ex.Render(s.data.names)}
	for _, n := range ex.Nodes {
		out.SubgraphDrugs = append(out.SubgraphDrugs, s.data.DrugName(n))
	}
	for _, e := range ex.Edges {
		line := fmt.Sprintf("%s and %s", s.data.DrugName(e.U), s.data.DrugName(e.V))
		if e.Sign > 0 {
			out.Synergistic = append(out.Synergistic, line)
		} else {
			out.Antagonistic = append(out.Antagonistic, line)
		}
	}
	return out, nil
}

// ExplainSuggestions is Explain over a suggestion list. It propagates
// Explain's error (an untrained system) instead of returning an empty
// Explanation that is indistinguishable from "no subgraph found".
func (s *System) ExplainSuggestions(suggs []Suggestion) (Explanation, error) {
	ids := make([]int, len(suggs))
	for i, sg := range suggs {
		ids[i] = sg.DrugID
	}
	return s.Explain(ids)
}

// Metrics bundles the ranking metrics of the paper at one k.
type Metrics struct {
	K         int
	Precision float64
	Recall    float64
	NDCG      float64
	SS        float64
}

// Evaluate scores the given patients and reports Precision/Recall/NDCG
// and mean Suggestion Satisfaction at each k. Scoring runs tile by
// tile through the fused engine, so evaluation peaks at the
// O(patients·drugs) result matrix plus O(tile) scratch — the old
// batched path's O(patients·drugs·dim) pair intermediates are gone.
func (s *System) Evaluate(patients []int, ks []int) ([]Metrics, error) {
	if err := s.ensureTrained(); err != nil {
		return nil, err
	}
	scores := s.mdModel.Scores(patients)
	rows := make([][]float64, len(patients))
	truth := make([][]int, len(patients))
	for i, p := range patients {
		rows[i] = scores.Row(i)
		truth[i] = s.data.ds.TruePositives(p)
	}
	reports := metrics.Evaluate(rows, truth, ks)
	out := make([]Metrics, len(reports))
	opts := ms.DefaultOptions()
	opts.Alpha = s.cfg.Alpha
	for i, r := range reports {
		sugg := make([][]int, len(rows))
		for j := range rows {
			sugg[j] = metrics.TopK(rows[j], r.K)
		}
		out[i] = Metrics{
			K: r.K, Precision: r.Precision, Recall: r.Recall, NDCG: r.NDCG,
			SS: ms.MeanSS(s.data.ds.DDI, sugg, opts),
		}
	}
	return out, nil
}

// DrugRelationEmbeddings exposes the DDI module's learned drug
// relation embeddings (one row per drug).
func (s *System) DrugRelationEmbeddings() ([][]float64, error) {
	if err := s.ensureTrained(); err != nil {
		return nil, err
	}
	// Embeddings returns a private copy, so its rows are ours to share
	// (capacity-clipped so appends cannot cross row boundaries).
	z := s.ddiModel.Embeddings()
	n := z.Cols()
	rows := make([][]float64, z.Rows())
	for i := range rows {
		rows[i] = z.Row(i)[:n:n]
	}
	return rows, nil
}

package dssddi

import (
	"strings"
	"testing"
)

// trainedSystem builds a small trained system shared across tests.
func trainedSystem(t *testing.T) (*System, *Data) {
	t.Helper()
	data := GenerateChronic(1, 150, 120)
	cfg := DefaultConfig()
	cfg.DDIEpochs = 60
	cfg.MDEpochs = 120
	cfg.Hidden = 32
	sys := New(cfg)
	if err := sys.Train(data); err != nil {
		t.Fatalf("Train: %v", err)
	}
	return sys, data
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Backbone != "SGCN" || cfg.DDIEpochs != 400 || cfg.MDEpochs != 1000 ||
		cfg.Hidden != 64 || cfg.Delta != 1 {
		t.Fatalf("defaults drifted from the paper: %+v", cfg)
	}
}

func TestGenerateChronicShape(t *testing.T) {
	data := GenerateChronic(2, 60, 40)
	if data.NumPatients() != 100 {
		t.Fatalf("patients %d", data.NumPatients())
	}
	if data.NumDrugs() != 86 {
		t.Fatalf("drugs %d, want 86", data.NumDrugs())
	}
	if data.DrugName(1) != "Doxazosin" {
		t.Fatalf("drug name: %s", data.DrugName(1))
	}
	total := len(data.TrainPatients()) + len(data.ValPatients()) + len(data.TestPatients())
	if total != 100 {
		t.Fatalf("split covers %d", total)
	}
	if len(data.Features(0)) != 71 {
		t.Fatal("feature dim wrong")
	}
}

func TestUntrainedSystemErrors(t *testing.T) {
	sys := New(DefaultConfig())
	if _, err := sys.Suggest(0, 3); err == nil {
		t.Fatal("Suggest before Train must error")
	}
	if _, err := sys.Scores([]int{0}); err == nil {
		t.Fatal("Scores before Train must error")
	}
	if _, err := sys.Explain([]int{1}); err == nil {
		t.Fatal("Explain before Train must error")
	}
}

func TestUnknownBackboneErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Backbone = "GPT"
	sys := New(cfg)
	if err := sys.Train(GenerateChronic(3, 40, 30)); err == nil ||
		!strings.Contains(err.Error(), "unknown backbone") {
		t.Fatalf("expected backbone error, got %v", err)
	}
}

func TestSignedBackboneRejectedOnUnsignedData(t *testing.T) {
	data := GenerateMIMIC(4, 80)
	cfg := DefaultConfig()
	cfg.Backbone = "SGCN"
	cfg.DDIEpochs = 10
	cfg.MDEpochs = 10
	sys := New(cfg)
	if err := sys.Train(data); err == nil {
		t.Fatal("SGCN on unsigned MIMIC DDI must be rejected (paper Table IV note)")
	}
	cfg.Backbone = "GIN"
	sys = New(cfg)
	if err := sys.Train(data); err != nil {
		t.Fatalf("GIN must work on unsigned data: %v", err)
	}
}

func TestTrainSuggestExplainRoundTrip(t *testing.T) {
	sys, data := trainedSystem(t)
	p := data.TestPatients()[0]
	suggs, err := sys.Suggest(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(suggs) != 3 {
		t.Fatalf("got %d suggestions", len(suggs))
	}
	for i := 1; i < len(suggs); i++ {
		if suggs[i].Score > suggs[i-1].Score {
			t.Fatal("suggestions not sorted by score")
		}
	}
	if suggs[0].DrugName == "" {
		t.Fatal("names must be resolved")
	}
	ex, err := sys.ExplainSuggestions(suggs)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Text == "" || !strings.Contains(ex.Text, "Suggestion Satisfaction") {
		t.Fatalf("explanation text: %q", ex.Text)
	}
	if ex.SS < 0 {
		t.Fatal("SS must be non-negative")
	}
}

func TestEvaluateReports(t *testing.T) {
	sys, data := trainedSystem(t)
	ms, err := sys.Evaluate(data.TestPatients(), []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].K != 2 || ms[1].K != 4 {
		t.Fatalf("reports %+v", ms)
	}
	for _, m := range ms {
		if m.Precision < 0 || m.Precision > 1 || m.NDCG < 0 || m.NDCG > 1 {
			t.Fatalf("metric out of range: %+v", m)
		}
	}
	// The trained system must beat random ranking (P@4 random ~0.025).
	if ms[1].Precision < 0.05 {
		t.Fatalf("P@4 = %v; system did not learn", ms[1].Precision)
	}
}

func TestScoresAndEmbeddingsShapes(t *testing.T) {
	sys, data := trainedSystem(t)
	rows, err := sys.Scores(data.TestPatients()[:5])
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || len(rows[0]) != data.NumDrugs() {
		t.Fatal("score shape wrong")
	}
	emb, err := sys.DrugRelationEmbeddings()
	if err != nil {
		t.Fatal(err)
	}
	if len(emb) != data.NumDrugs() {
		t.Fatal("embedding rows wrong")
	}
}

func TestExplicitZeroSentinel(t *testing.T) {
	// Literal zero selects the paper defaults for Alpha AND Delta —
	// previously Delta silently stayed 0, contradicting the Config doc.
	cfg := Config{}
	cfg.fill()
	if cfg.Alpha != 0.5 || cfg.Delta != 1 {
		t.Fatalf("zero-value Config filled to Alpha=%v Delta=%v, want 0.5 and 1", cfg.Alpha, cfg.Delta)
	}
	// The sentinel makes an exact zero expressible.
	cfg = Config{Alpha: ExplicitZero, Delta: ExplicitZero}
	cfg.fill()
	if cfg.Alpha != 0 || cfg.Delta != 0 {
		t.Fatalf("ExplicitZero filled to Alpha=%v Delta=%v, want 0 and 0", cfg.Alpha, cfg.Delta)
	}
	// Explicit non-zero values pass through untouched.
	cfg = Config{Alpha: 0.25, Delta: 2}
	cfg.fill()
	if cfg.Alpha != 0.25 || cfg.Delta != 2 {
		t.Fatalf("explicit values clobbered: Alpha=%v Delta=%v", cfg.Alpha, cfg.Delta)
	}
}

func TestInvalidAlphaDeltaRejected(t *testing.T) {
	data := GenerateChronic(3, 40, 30)
	for _, tc := range []struct{ alpha, delta float64 }{
		{alpha: 2, delta: 1},
		{alpha: -0.5, delta: 1},
		{alpha: 0.5, delta: -3},
	} {
		cfg := DefaultConfig()
		cfg.Alpha, cfg.Delta = tc.alpha, tc.delta
		if err := New(cfg).Train(data); err == nil ||
			!strings.Contains(err.Error(), "ExplicitZero") {
			t.Fatalf("Alpha=%v Delta=%v must be rejected with a sentinel hint, got %v", tc.alpha, tc.delta, err)
		}
	}
}

func TestExplainSuggestionsUntrainedErrors(t *testing.T) {
	sys := New(DefaultConfig())
	if _, err := sys.ExplainSuggestions([]Suggestion{{DrugID: 1}}); err == nil {
		t.Fatal("ExplainSuggestions before Train must propagate the error")
	}
}

func TestSuggestOutOfRange(t *testing.T) {
	sys, data := trainedSystem(t)
	if _, err := sys.Suggest(data.NumPatients()+5, 3); err == nil {
		t.Fatal("out-of-range patient must error")
	}
}

package dssddi_test

import (
	"fmt"

	"dssddi"
)

// ExampleNew shows the complete train → suggest → explain workflow on a
// small synthetic cohort.
func ExampleNew() {
	data := dssddi.GenerateChronic(1, 60, 50)
	cfg := dssddi.DefaultConfig()
	cfg.DDIEpochs = 20
	cfg.MDEpochs = 30
	sys := dssddi.New(cfg)
	if err := sys.Train(data); err != nil {
		fmt.Println("train failed:", err)
		return
	}
	suggs, err := sys.Suggest(data.TestPatients()[0], 2)
	if err != nil {
		fmt.Println("suggest failed:", err)
		return
	}
	fmt.Println(len(suggs), "suggestions")
	// Output: 2 suggestions
}

// ExampleSystem_Explain explains a known-synergistic drug pair from the
// paper's Fig. 8 case study (Simvastatin DID 46 + Atorvastatin DID 47).
func ExampleSystem_Explain() {
	data := dssddi.GenerateChronic(1, 60, 50)
	cfg := dssddi.DefaultConfig()
	cfg.DDIEpochs = 20
	cfg.MDEpochs = 30
	sys := dssddi.New(cfg)
	if err := sys.Train(data); err != nil {
		fmt.Println("train failed:", err)
		return
	}
	ex, err := sys.Explain([]int{46, 47})
	if err != nil {
		fmt.Println("explain failed:", err)
		return
	}
	fmt.Println(len(ex.Synergistic) > 0)
	// Output: true
}

// Command chronic runs the chronic-disease workload the paper's
// introduction motivates: polypharmacy patients with several chronic
// conditions. It compares all four DDIGCN backbones on the same cohort
// and shows how the choice affects both ranking quality and the
// Suggestion Satisfaction of the recommendations.
package main

import (
	"fmt"
	"log"

	"dssddi"
)

func main() {
	data := dssddi.GenerateChronic(7, 400, 350)
	fmt.Printf("chronic cohort: %d patients, %d drugs\n\n",
		data.NumPatients(), data.NumDrugs())

	for _, backbone := range []string{"GIN", "SGCN", "SiGAT", "SNEA"} {
		cfg := dssddi.DefaultConfig()
		cfg.Backbone = backbone
		cfg.DDIEpochs = 120
		cfg.MDEpochs = 200
		sys := dssddi.New(cfg)
		if err := sys.Train(data); err != nil {
			log.Fatalf("%s: %v", backbone, err)
		}
		reports, err := sys.Evaluate(data.TestPatients(), []int{4})
		if err != nil {
			log.Fatal(err)
		}
		r := reports[0]
		fmt.Printf("DSSDDI(%-5s)  P@4=%.4f  R@4=%.4f  NDCG@4=%.4f  SS@4=%.4f\n",
			backbone, r.Precision, r.Recall, r.NDCG, r.SS)
	}

	// Highlight one polypharmacy patient: the suggestion must avoid
	// antagonistic combinations.
	cfg := dssddi.DefaultConfig()
	cfg.DDIEpochs = 120
	cfg.MDEpochs = 200
	sys := dssddi.New(cfg)
	if err := sys.Train(data); err != nil {
		log.Fatal(err)
	}
	best, bestMeds := -1, 0
	for _, p := range data.TestPatients() {
		if n := len(data.Medications(p)); n > bestMeds {
			best, bestMeds = p, n
		}
	}
	fmt.Printf("\npolypharmacy patient %d takes %d medications:", best, bestMeds)
	for _, d := range data.Medications(best) {
		fmt.Printf(" %s", data.DrugName(d))
	}
	fmt.Println()
	suggs, err := sys.Suggest(best, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("suggested:")
	for _, s := range suggs {
		fmt.Printf("  %-24s %.3f\n", s.DrugName, s.Score)
	}
	ex, err := sys.ExplainSuggestions(suggs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsuggestion satisfaction: %.4f\n", ex.SS)
	if len(ex.Antagonistic) > 0 {
		fmt.Println("antagonistic interactions in the explanation subgraph:")
		for _, a := range ex.Antagonistic {
			fmt.Printf("  %s\n", a)
		}
	}
}

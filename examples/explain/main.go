// Command explain exercises the Medical Support module directly: it
// reproduces the flavour of the paper's Fig. 8 by explaining both a
// good (synergistic) and a bad (antagonistic) drug combination through
// the closest-dense-subgraph query and the Suggestion Satisfaction
// measure.
package main

import (
	"fmt"
	"log"

	"dssddi"
)

func main() {
	data := dssddi.GenerateChronic(3, 200, 160)
	cfg := dssddi.DefaultConfig()
	cfg.DDIEpochs = 100
	cfg.MDEpochs = 120
	sys := dssddi.New(cfg)
	if err := sys.Train(data); err != nil {
		log.Fatal(err)
	}

	// Fig. 8(a): Simvastatin (46) + Atorvastatin (47) are synergistic;
	// the subgraph also shows which drugs they antagonise.
	good, err := sys.Explain([]int{46, 47})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== synergistic combination (cf. Fig. 8a) ===")
	fmt.Println(good.Text)

	// Case 3-style bad pair: Amlodipine (8) + Phenytoin (62) are
	// antagonistic — the SS score must drop.
	bad, err := sys.Explain([]int{8, 62})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== antagonistic combination (cf. Case 3) ===")
	fmt.Println(bad.Text)

	fmt.Printf("SS comparison: synergistic %.4f vs antagonistic %.4f\n",
		good.SS, bad.SS)
	if good.SS > bad.SS {
		fmt.Println("=> the MS module prefers the safe combination, as the paper argues.")
	}
}

// Command mimic evaluates DSSDDI on the synthetic critical-care data
// set that stands in for MIMIC-III (Section V-E of the paper): visit
// sequences, anonymous medicines and an unsigned (antagonism-only) DDI
// graph, which restricts the DDI module to the GIN backbone.
package main

import (
	"fmt"
	"log"

	"dssddi"
)

func main() {
	data := dssddi.GenerateMIMIC(11, 800)
	fmt.Printf("MIMIC-like data: %d patients, %d anonymous medicines\n",
		data.NumPatients(), data.NumDrugs())

	// Signed backbones must be rejected on unsigned DDI data.
	bad := dssddi.New(dssddi.Config{Backbone: "SGCN", DDIEpochs: 10, MDEpochs: 10})
	if err := bad.Train(data); err != nil {
		fmt.Printf("SGCN correctly rejected: %v\n\n", err)
	}

	cfg := dssddi.DefaultConfig()
	cfg.Backbone = "GIN"
	cfg.DDIEpochs = 120
	cfg.MDEpochs = 200
	sys := dssddi.New(cfg)
	if err := sys.Train(data); err != nil {
		log.Fatal(err)
	}

	reports, err := sys.Evaluate(data.TestPatients(), []int{4, 6, 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("DSSDDI(GIN) on the MIMIC-like test split:")
	for _, r := range reports {
		fmt.Printf("  P@%d=%.4f  R@%d=%.4f  NDCG@%d=%.4f\n",
			r.K, r.Precision, r.K, r.Recall, r.K, r.NDCG)
	}

	p := data.TestPatients()[0]
	suggs, err := sys.Suggest(p, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlast-visit medicines of patient %d:", p)
	for _, d := range data.Medications(p) {
		fmt.Printf(" %s", data.DrugName(d))
	}
	fmt.Println("\nsuggested:")
	for _, s := range suggs {
		fmt.Printf("  %-10s %.3f\n", s.DrugName, s.Score)
	}
}

// Command quickstart shows the minimal DSSDDI workflow: generate a
// chronic-disease cohort, train the system, suggest medications for a
// test patient and print the DDI explanation.
package main

import (
	"fmt"
	"log"

	"dssddi"
)

func main() {
	// A small cohort keeps the demo under half a minute; use
	// dssddi.GenerateChronicDefault for the paper-scale 4157 records.
	data := dssddi.GenerateChronic(1, 300, 250)
	fmt.Printf("cohort: %d patients, %d drug candidates\n",
		data.NumPatients(), data.NumDrugs())

	cfg := dssddi.DefaultConfig()
	cfg.DDIEpochs = 150 // paper default: 400
	cfg.MDEpochs = 250  // paper default: 1000
	sys := dssddi.New(cfg)
	if err := sys.Train(data); err != nil {
		log.Fatal(err)
	}

	patient := data.TestPatients()[0]
	fmt.Printf("\npatient %d currently takes:", patient)
	for _, d := range data.Medications(patient) {
		fmt.Printf(" %s", data.DrugName(d))
	}
	fmt.Println()

	suggestions, err := sys.Suggest(patient, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-3 suggestions:")
	for i, s := range suggestions {
		fmt.Printf("  %d. %-24s score %.3f\n", i+1, s.DrugName, s.Score)
	}

	explanation, err := sys.ExplainSuggestions(suggestions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(explanation.Text)

	reports, err := sys.Evaluate(data.TestPatients(), []int{1, 3, 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("test-set performance:")
	for _, r := range reports {
		fmt.Printf("  P@%d=%.4f R@%d=%.4f NDCG@%d=%.4f SS@%d=%.4f\n",
			r.K, r.Precision, r.K, r.Recall, r.K, r.NDCG, r.K, r.SS)
	}
}

package dssddi

import (
	"math"
	"testing"

	"dssddi/internal/mat"
)

// TestSuggestFastPathMatchesFullRanking checks the TopKScores-backed
// Suggest against ranking a full Scores row (the path every previous
// release used), for several patients and k — same drugs, same order,
// same score bits.
func TestSuggestFastPathMatchesFullRanking(t *testing.T) {
	sys, data := allocSystem(t)
	for _, workers := range []int{1, 4} {
		mat.SetWorkers(workers)
		for _, p := range data.TestPatients()[:5] {
			rows, err := sys.Scores([]int{p})
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 3, data.NumDrugs()} {
				fast, err := sys.Suggest(p, k)
				if err != nil {
					t.Fatal(err)
				}
				want, err := sys.SuggestFromScores(rows[0], k)
				if err != nil {
					t.Fatal(err)
				}
				if len(fast) != len(want) {
					t.Fatalf("patient %d k=%d: fast path returned %d suggestions, want %d", p, k, len(fast), len(want))
				}
				for i := range want {
					if fast[i].DrugID != want[i].DrugID || fast[i].DrugName != want[i].DrugName {
						t.Fatalf("workers=%d patient %d k=%d rank %d: fast %+v != full %+v", workers, p, k, i, fast[i], want[i])
					}
					if math.Float64bits(fast[i].Score) != math.Float64bits(want[i].Score) {
						t.Fatalf("patient %d k=%d rank %d: score %v != %v", p, k, i, fast[i].Score, want[i].Score)
					}
				}
			}
		}
	}
	mat.SetWorkers(0)
}

// TestScoresIntoMatchesScores checks the row-buffer API against the
// allocating one, and its input validation.
func TestScoresIntoMatchesScores(t *testing.T) {
	sys, data := allocSystem(t)
	patients := data.TestPatients()[:4]
	want, err := sys.Scores(patients)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]float64, len(patients))
	for i := range rows {
		rows[i] = make([]float64, data.NumDrugs())
	}
	if err := sys.ScoresInto(rows, patients); err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		for j, v := range rows[i] {
			if math.Float64bits(v) != math.Float64bits(want[i][j]) {
				t.Fatalf("row %d col %d: ScoresInto %v != Scores %v", i, j, v, want[i][j])
			}
		}
	}

	if err := sys.ScoresInto(rows[:2], patients); err == nil {
		t.Fatal("row/patient count mismatch must error")
	}
	short := [][]float64{make([]float64, 1)}
	if err := sys.ScoresInto(short, patients[:1]); err == nil {
		t.Fatal("short row must error")
	}
	if err := sys.ScoresInto(rows[:1], []int{-1}); err == nil {
		t.Fatal("out-of-range patient must error")
	}
	var untrained System
	if err := untrained.ScoresInto(rows[:1], patients[:1]); err == nil {
		t.Fatal("untrained system must error")
	}
}

// TestEvaluateStableAcrossWorkers pins Evaluate's metrics bit for bit
// across kernel worker counts — the tiled engine partitions work but
// never reassociates arithmetic.
func TestEvaluateStableAcrossWorkers(t *testing.T) {
	sys, data := allocSystem(t)
	mat.SetWorkers(1)
	serial, err := sys.Evaluate(data.TestPatients(), []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	mat.SetWorkers(4)
	parallel, err := sys.Evaluate(data.TestPatients(), []int{1, 4})
	mat.SetWorkers(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("metrics at k=%d differ across workers: %+v vs %+v", serial[i].K, serial[i], parallel[i])
		}
	}
}

// TestSuggestColdAllocBudget is the fast-path allocation gate from the
// fused-engine issue: a cold single-patient Suggest must stay at or
// under 64 allocations. The engine itself runs on pooled scratch, so
// the remaining allocations are the returned suggestion list.
func TestSuggestColdAllocBudget(t *testing.T) {
	const budget = 64
	sys, data := allocSystem(t)
	mat.SetWorkers(1)
	defer mat.SetWorkers(0)

	patient := data.TestPatients()[0]
	sys.Suggest(patient, 4) // warm the scratch pools
	got := testing.AllocsPerRun(20, func() {
		if _, err := sys.Suggest(patient, 4); err != nil {
			t.Fatal(err)
		}
	})
	if got > budget {
		t.Fatalf("cold Suggest allocates %.1f objects per call, budget %d", got, budget)
	}
	t.Logf("cold Suggest: %.1f allocs/op", got)
}

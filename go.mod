module dssddi

go 1.24

// Package ag implements a small reverse-mode automatic-differentiation
// engine over dense matrices. Every neural model in the repository
// (DDIGCN, MDGCN and the graph-learning baselines) is trained through
// this tape.
//
// Usage: create a Tape, wrap parameters and inputs as nodes, compose
// ops, then call Backward on a scalar loss node. Gradients accumulate
// in Node.Grad.
//
// # Tape lifecycle and steady-state allocation
//
// A Tape is retained across training epochs: call Reset at the top of
// each epoch and rebuild the forward pass with the same op sequence.
// The tape replays the recorded graph positionally — every op call
// finds its node from the previous epoch (same op kind, same inputs,
// same shape), overwrites the node's value in place with the fused
// *Into kernels, and keeps the backward closure built on first record.
// Together with the size-bucketed mat.Arena that owns every node value,
// gradient and backward scratch buffer, an epoch after the first
// allocates (approximately) nothing: no node structs, no closures, no
// matrices.
//
// If the op sequence diverges from the recording (a branch changes
// between epochs), the tape recycles the stale tail of the graph into
// its arena and records fresh from the divergence point — correctness
// never depends on the graph being static; only the allocation win
// does. Per-epoch data that flows into an op (gather indices, loss
// targets, constant inputs) is refreshed on the retained node every
// epoch, and backward closures read it through the node, never from a
// stale capture.
//
// Values that must outlive a Reset (e.g. a final embedding matrix) are
// taken off the tape with Detach. A Tape must not be shared across
// goroutines.
package ag

import (
	"fmt"
	"math"
	"sync/atomic"

	"dssddi/internal/mat"
	"dssddi/internal/par"
	"dssddi/internal/sparse"
)

// rowGrain sizes parallel row chunks; the policy lives in mat so all
// kernels share one threshold.
func rowGrain(cols int) int { return mat.RowGrain(cols) }

// arenaEnabled gates whether new tapes own a buffer-recycling arena.
// It exists so tests can prove arena-on and arena-off training are
// bitwise identical.
var arenaEnabled atomic.Bool

func init() { arenaEnabled.Store(true) }

// SetArenaEnabled toggles (process-wide) whether tapes created from now
// on recycle buffers through a mat.Arena. On by default; switching it
// off makes every recycled-buffer request fall back to plain
// allocation, which must not change any numeric result.
func SetArenaEnabled(on bool) { arenaEnabled.Store(on) }

// ArenaEnabled reports the current setting.
func ArenaEnabled() bool { return arenaEnabled.Load() }

// opKind identifies the operation a node was recorded by; replay
// requires the same op in the same position.
type opKind uint8

const (
	opInvalid opKind = iota
	opParam
	opConst
	opMatMul
	opSpMM
	opAdd
	opSub
	opAddBias
	opHadamard
	opScale
	opAddScalar
	opReLU
	opLeakyReLU
	opTanh
	opSigmoid
	opConcat
	opGather
	opScaleRows
	opRowSum
	opMean
	opSum
	opMSE
	opBCE
	opWBCE
	opL2
)

// Node is a value in the computation graph together with its gradient.
type Node struct {
	Value *mat.Dense
	Grad  *mat.Dense

	tape      *Tape
	op        opKind
	a, b      *Node
	requires  bool   // whether gradient flows into/through this node
	owned     bool   // Value's buffer belongs to the tape arena
	gradEpoch uint64 // epoch whose backward pass Grad belongs to

	backward func() // accumulates into the inputs' Grad; nil for leaves

	// Retained parallel chunk workers for ops whose loops live in this
	// package (built once on record, reused every epoch).
	fwdChunk  par.FuncWorker
	bwdChunk  par.FuncWorker
	bwdChunk2 par.FuncWorker

	// Element-wise forward/derivative (activations, AddScalar).
	fwd func(float64) float64
	dfn func(float64) float64
	zf  func(x, od float64) float64

	// Per-epoch operands refreshed on replay and read live by the
	// retained closures.
	idx     []int
	scalar  float64
	ref     *mat.Dense
	ref2    *mat.Dense
	sp      *sparse.CSR
	spT     *sparse.CSR // transpose cached once per operator (not per epoch)
	scratch [2]*mat.Dense
}

// Rows returns the node value's row count.
func (n *Node) Rows() int { return n.Value.Rows() }

// Cols returns the node value's column count.
func (n *Node) Cols() int { return n.Value.Cols() }

// Tape records operations during a forward pass so they can be replayed
// in reverse for gradient computation, and retains the recorded graph
// so later epochs reuse its nodes and buffers (see the package
// comment). A Tape must not be shared across goroutines.
type Tape struct {
	arena      *mat.Arena
	nodes      []*Node // op + const nodes in creation (topological) order
	paramNodes []*Node
	params     map[*mat.Dense]*Node
	cursor     int    // next replay position in nodes
	epoch      uint64 // bumped by Reset; stamps valid gradients
}

// NewTape returns an empty tape (with its own arena unless
// SetArenaEnabled(false) is in effect).
func NewTape() *Tape {
	t := &Tape{params: make(map[*mat.Dense]*Node), epoch: 1}
	if arenaEnabled.Load() {
		t.arena = mat.NewArena()
	}
	return t
}

// Reset begins a new epoch on the retained graph: the replay cursor
// rewinds, every recorded node keeps its buffers, and all gradients are
// invalidated (they are lazily re-zeroed on first accumulation). The
// caller then re-issues the forward pass; matching ops reuse their
// previous nodes in place.
func (t *Tape) Reset() {
	t.cursor = 0
	t.epoch++
}

// Detach removes n's value from the tape's ownership and returns it:
// the matrix survives any later Reset or recycling, and the tape
// allocates a fresh buffer for the node's slot if the graph is rebuilt.
func (t *Tape) Detach(n *Node) *mat.Dense {
	v := n.Value
	n.Value = nil
	n.owned = false
	return v
}

// NumNodes reports the retained graph size (op and const nodes). Steady
// state training keeps this constant across epochs — tests use it to
// assert the graph is reused, not regrown.
func (t *Tape) NumNodes() int { return len(t.nodes) }

// ArenaStats exposes the tape arena's counters (zeros without arena).
func (t *Tape) ArenaStats() (gets, hits, puts uint64) { return t.arena.Stats() }

// alloc takes a zeroed matrix from the tape's arena (or the heap).
func (t *Tape) alloc(rows, cols int) *mat.Dense { return mat.NewIn(t.arena, rows, cols) }

// recycleFrom drops the recorded nodes from position k on, returning
// their buffers to the arena. Called when replay diverges from the
// recording.
func (t *Tape) recycleFrom(k int) {
	for _, n := range t.nodes[k:] {
		if n.owned && n.Value != nil {
			n.Value.ReleaseTo(t.arena)
		}
		n.Value = nil
		if n.Grad != nil {
			n.Grad.ReleaseTo(t.arena)
			n.Grad = nil
		}
		for i, s := range n.scratch {
			if s != nil {
				s.ReleaseTo(t.arena)
				n.scratch[i] = nil
			}
		}
		n.tape = nil
	}
	t.nodes = t.nodes[:k]
}

// next returns the node for the op being issued: the retained node at
// the replay cursor when the position matches (same op, same inputs,
// same shape), or a freshly recorded one. Reused nodes keep their
// backward closure; the bool result tells the op whether it must build
// one.
func (t *Tape) next(op opKind, a, b *Node, rows, cols int, requires bool) (*Node, bool) {
	if t.cursor < len(t.nodes) {
		n := t.nodes[t.cursor]
		if n.op == op && n.a == a && n.b == b && n.requires == requires &&
			(op == opConst || n.Value == nil || (n.Value.Rows() == rows && n.Value.Cols() == cols)) {
			if op != opConst && n.Value == nil {
				// Slot was detached: give it a fresh buffer.
				n.Value = t.alloc(rows, cols)
				n.owned = true
			}
			t.cursor++
			return n, true
		}
		t.recycleFrom(t.cursor)
	}
	n := &Node{tape: t, op: op, a: a, b: b, requires: requires}
	if op != opConst {
		n.Value = t.alloc(rows, cols)
		n.owned = true
	}
	t.nodes = append(t.nodes, n)
	t.cursor++
	return n, false
}

// Param registers v as a differentiable leaf (a model parameter or an
// input that requires gradient). Calling Param twice with the same
// matrix returns the same node, so gradients from all uses accumulate
// in one place. Parameter nodes persist across Reset. The node's Grad
// is allocated lazily on first accumulation and re-zeroed lazily each
// epoch.
func (t *Tape) Param(v *mat.Dense) *Node {
	if n, ok := t.params[v]; ok {
		return n
	}
	n := &Node{tape: t, op: opParam, Value: v, requires: true}
	t.paramNodes = append(t.paramNodes, n)
	t.params[v] = n
	return n
}

// Grad returns the gradient accumulated this epoch for a parameter
// matrix registered via Param, or nil if the parameter received no
// gradient. Call after Backward.
func (t *Tape) Grad(v *mat.Dense) *mat.Dense {
	if n, ok := t.params[v]; ok && n.gradEpoch == t.epoch {
		return n.Grad
	}
	return nil
}

// Const registers v as a non-differentiable leaf. The retained node's
// value is refreshed every epoch, so per-epoch constant payloads (e.g.
// resampled targets) may pass a different matrix each time.
func (t *Tape) Const(v *mat.Dense) *Node {
	n, _ := t.next(opConst, nil, nil, 0, 0, false)
	n.Value = v
	return n
}

// ensureGrad returns n's gradient buffer, valid for the current epoch:
// allocated on first use, re-zeroed on first use of a new epoch.
func (n *Node) ensureGrad() *mat.Dense {
	if n.Grad == nil {
		n.Grad = n.tape.alloc(n.Value.Rows(), n.Value.Cols())
	} else if n.gradEpoch != n.tape.epoch {
		n.Grad.Zero()
	}
	n.gradEpoch = n.tape.epoch
	return n.Grad
}

// scratchMat returns a per-node scratch matrix retained across epochs
// (slot 0 or 1). Contents are stale; callers must fully overwrite or
// Zero it.
func (n *Node) scratchMat(slot, rows, cols int) *mat.Dense {
	s := n.scratch[slot]
	if s == nil || s.Rows() != rows || s.Cols() != cols {
		if s != nil {
			s.ReleaseTo(n.tape.arena)
		}
		s = n.tape.alloc(rows, cols)
		n.scratch[slot] = s
	}
	return s
}

// gradDst returns n's gradient buffer for accumulation plus whether
// this is the first contribution of the epoch. A fresh buffer holds
// STALE data (it is not zeroed) — the caller must fully overwrite it.
// Overwrite-on-first-touch skips the zero and add passes of the
// classic zero+accumulate pattern; the values are identical.
func (n *Node) gradDst() (*mat.Dense, bool) {
	fresh := false
	if n.Grad == nil {
		n.Grad = n.tape.alloc(n.Value.Rows(), n.Value.Cols())
		fresh = true
	} else if n.gradEpoch != n.tape.epoch {
		fresh = true
	}
	n.gradEpoch = n.tape.epoch
	return n.Grad, fresh
}

// accumGrad adds g into n's gradient if n participates in
// differentiation (copying on the first contribution of the epoch).
func (n *Node) accumGrad(g *mat.Dense) {
	if !n.requires {
		return
	}
	dst, fresh := n.gradDst()
	if fresh {
		dst.CopyFrom(g)
	} else {
		dst.AddScaled(g, 1)
	}
}

// hasGrad reports whether n received gradient this epoch.
func (n *Node) hasGrad() bool { return n.Grad != nil && n.gradEpoch == n.tape.epoch }

// Backward runs reverse-mode differentiation from the scalar node loss.
// The loss value must be 1x1.
func (t *Tape) Backward(loss *Node) {
	if loss.Value.Rows() != 1 || loss.Value.Cols() != 1 {
		panic(fmt.Sprintf("ag: Backward requires a scalar loss, got %dx%d", loss.Value.Rows(), loss.Value.Cols()))
	}
	loss.ensureGrad().Set(0, 0, 1)
	for i := t.cursor - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.backward != nil && n.requires && n.hasGrad() {
			n.backward()
		}
	}
}

// MatMul returns a*b. The backward pass accumulates straight into the
// input gradients with the fused MatMulTrans*AddInto kernels — no
// temporary gradient matrices.
func (t *Tape) MatMul(a, b *Node) *Node {
	out, reused := t.next(opMatMul, a, b, a.Rows(), b.Cols(), a.requires || b.requires)
	if !reused {
		out.backward = func() {
			if a.requires { // dA += dOut * Bᵀ
				if g, fresh := a.gradDst(); fresh {
					mat.MatMulTransBInto(g, out.Grad, b.Value)
				} else {
					mat.MatMulTransBAddInto(g, out.Grad, b.Value)
				}
			}
			if b.requires { // dB += Aᵀ * dOut
				if g, fresh := b.gradDst(); fresh {
					mat.MatMulTransAInto(g, a.Value, out.Grad)
				} else {
					mat.MatMulTransAAddInto(g, a.Value, out.Grad)
				}
			}
		}
	}
	mat.MatMulInto(out.Value, a.Value, b.Value)
	return out
}

// SpMM returns s*x where s is a constant sparse operator (adjacency).
// Gradient flows into x only: dX += sᵀ * dOut (fused accumulation).
// The operator's transpose is built lazily on the first backward pass
// and cached on the node for all later epochs.
func (t *Tape) SpMM(s *sparse.CSR, x *Node) *Node {
	out, reused := t.next(opSpMM, x, nil, s.Rows(), x.Cols(), x.requires)
	if out.sp != s {
		out.sp, out.spT = s, nil
	}
	if !reused {
		out.backward = func() {
			if !x.requires {
				return
			}
			if out.spT == nil {
				out.spT = out.sp.T()
			}
			if g, fresh := x.gradDst(); fresh {
				out.spT.MulDenseInto(g, out.Grad)
			} else {
				out.spT.MulDenseAddInto(g, out.Grad)
			}
		}
	}
	out.sp.MulDenseInto(out.Value, x.Value)
	return out
}

// Add returns a+b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	out, reused := t.next(opAdd, a, b, a.Rows(), a.Cols(), a.requires || b.requires)
	if !reused {
		out.backward = func() {
			a.accumGrad(out.Grad)
			b.accumGrad(out.Grad)
		}
	}
	mat.AddInto(out.Value, a.Value, b.Value)
	return out
}

// Sub returns a-b.
func (t *Tape) Sub(a, b *Node) *Node {
	out, reused := t.next(opSub, a, b, a.Rows(), a.Cols(), a.requires || b.requires)
	if !reused {
		out.backward = func() {
			a.accumGrad(out.Grad)
			if b.requires {
				if g, fresh := b.gradDst(); fresh {
					mat.ScaleInto(g, out.Grad, -1)
				} else {
					g.AddScaled(out.Grad, -1)
				}
			}
		}
	}
	mat.SubInto(out.Value, a.Value, b.Value)
	return out
}

// AddBias broadcasts the 1 x d bias row onto every row of a (n x d).
func (t *Tape) AddBias(a, bias *Node) *Node {
	if bias.Value.Rows() != 1 || bias.Value.Cols() != a.Value.Cols() {
		panic(fmt.Sprintf("ag: AddBias wants 1x%d bias, got %dx%d", a.Value.Cols(), bias.Value.Rows(), bias.Value.Cols()))
	}
	out, reused := t.next(opAddBias, a, bias, a.Rows(), a.Cols(), a.requires || bias.requires)
	if !reused {
		out.backward = func() {
			a.accumGrad(out.Grad)
			if bias.requires {
				g := out.scratchMat(0, 1, out.Cols())
				g.Zero()
				grow := g.Row(0)
				for i := 0; i < out.Grad.Rows(); i++ {
					orow := out.Grad.Row(i)
					for j, ov := range orow {
						grow[j] += ov
					}
				}
				bias.accumGrad(g)
			}
		}
	}
	mat.AddRowInto(out.Value, a.Value, bias.Value.Row(0))
	return out
}

// Hadamard returns the element-wise product a⊙b. Gradients accumulate
// with the fused AddHadamard kernel.
func (t *Tape) Hadamard(a, b *Node) *Node {
	out, reused := t.next(opHadamard, a, b, a.Rows(), a.Cols(), a.requires || b.requires)
	if !reused {
		out.backward = func() {
			if a.requires {
				if g, fresh := a.gradDst(); fresh {
					mat.HadamardInto(g, out.Grad, b.Value)
				} else {
					g.AddHadamard(out.Grad, b.Value)
				}
			}
			if b.requires {
				if g, fresh := b.gradDst(); fresh {
					mat.HadamardInto(g, out.Grad, a.Value)
				} else {
					g.AddHadamard(out.Grad, a.Value)
				}
			}
		}
	}
	mat.HadamardInto(out.Value, a.Value, b.Value)
	return out
}

// Scale returns s*a for a constant scalar s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	out, reused := t.next(opScale, a, nil, a.Rows(), a.Cols(), a.requires)
	out.scalar = s
	if !reused {
		out.backward = func() {
			if !a.requires {
				return
			}
			if g, fresh := a.gradDst(); fresh {
				mat.ScaleInto(g, out.Grad, out.scalar)
			} else {
				g.AddScaled(out.Grad, out.scalar)
			}
		}
	}
	mat.ScaleInto(out.Value, a.Value, s)
	return out
}

// AddScalar returns a + s element-wise for a constant scalar s.
func (t *Tape) AddScalar(a *Node, s float64) *Node {
	out, reused := t.next(opAddScalar, a, nil, a.Rows(), a.Cols(), a.requires)
	out.scalar = s
	if !reused {
		out.fwd = func(x float64) float64 { return x + out.scalar }
		out.backward = func() { a.accumGrad(out.Grad) }
	}
	mat.ApplyInto(out.Value, a.Value, out.fwd)
	return out
}

// elementwise records (or replays) a unary element-wise op. mk installs
// the forward/derivative functions on first record; the backward pass
// fuses grad += dOut·f'(x) with the ZipAddInto kernel.
func (t *Tape) elementwise(kind opKind, a *Node, scalar float64, mk func(n *Node)) *Node {
	out, reused := t.next(kind, a, nil, a.Rows(), a.Cols(), a.requires)
	out.scalar = scalar
	if !reused {
		mk(out)
		out.zf = func(x, od float64) float64 { return od * out.dfn(x) }
		out.backward = func() {
			if !a.requires {
				return
			}
			if g, fresh := a.gradDst(); fresh {
				mat.ZipInto(g, a.Value, out.Grad, out.zf)
			} else {
				mat.ZipAddInto(g, a.Value, out.Grad, out.zf)
			}
		}
	}
	mat.ApplyInto(out.Value, a.Value, out.fwd)
	return out
}

func reluF(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

func reluDF(x float64) float64 {
	if x > 0 {
		return 1
	}
	return 0
}

func mkReLU(n *Node) { n.fwd, n.dfn = reluF, reluDF }

func mkLeakyReLU(n *Node) {
	n.fwd = func(x float64) float64 {
		if x > 0 {
			return x
		}
		return n.scalar * x
	}
	n.dfn = func(x float64) float64 {
		if x > 0 {
			return 1
		}
		return n.scalar
	}
}

func tanhDF(x float64) float64 {
	y := math.Tanh(x)
	return 1 - y*y
}

func mkTanh(n *Node) { n.fwd, n.dfn = math.Tanh, tanhDF }

func sigmoidDF(x float64) float64 {
	y := mat.Sigmoid(x)
	return y * (1 - y)
}

func mkSigmoid(n *Node) { n.fwd, n.dfn = mat.Sigmoid, sigmoidDF }

// ReLU applies max(0, x) element-wise.
func (t *Tape) ReLU(a *Node) *Node { return t.elementwise(opReLU, a, 0, mkReLU) }

// LeakyReLU applies x (x>0) or slope*x (x<=0) element-wise.
func (t *Tape) LeakyReLU(a *Node, slope float64) *Node {
	return t.elementwise(opLeakyReLU, a, slope, mkLeakyReLU)
}

// Tanh applies tanh element-wise.
func (t *Tape) Tanh(a *Node) *Node { return t.elementwise(opTanh, a, 0, mkTanh) }

// Sigmoid applies the logistic function element-wise.
func (t *Tape) Sigmoid(a *Node) *Node { return t.elementwise(opSigmoid, a, 0, mkSigmoid) }

// ConcatCols returns [a | b].
func (t *Tape) ConcatCols(a, b *Node) *Node {
	out, reused := t.next(opConcat, a, b, a.Rows(), a.Cols()+b.Cols(), a.requires || b.requires)
	if !reused {
		sliceGrad := func(n *Node, slot, off, width int) {
			g, fresh := n.gradDst()
			if fresh { // split dOut straight into the input's gradient
				for i := 0; i < n.Rows(); i++ {
					copy(g.Row(i), out.Grad.Row(i)[off:off+width])
				}
				return
			}
			s := out.scratchMat(slot, n.Rows(), width)
			for i := 0; i < n.Rows(); i++ {
				copy(s.Row(i), out.Grad.Row(i)[off:off+width])
			}
			g.AddScaled(s, 1)
		}
		out.backward = func() {
			if a.requires {
				sliceGrad(a, 0, 0, a.Cols())
			}
			if b.requires {
				sliceGrad(b, 1, a.Cols(), b.Cols())
			}
		}
	}
	mat.ConcatColsInto(out.Value, a.Value, b.Value)
	return out
}

// GatherRows selects rows idx from a: out[i] = a[idx[i]]. Gradient
// scatters (with accumulation for repeated indices) back into a. The
// index slice may change between epochs; the retained node reads the
// current one.
func (t *Tape) GatherRows(a *Node, idx []int) *Node {
	out, reused := t.next(opGather, a, nil, len(idx), a.Cols(), a.requires)
	out.idx = idx
	if !reused {
		out.backward = func() {
			if !a.requires {
				return
			}
			g, fresh := a.gradDst()
			if fresh { // scatter straight into the zeroed gradient
				g.Zero()
			} else {
				g = out.scratchMat(0, a.Rows(), a.Cols())
				g.Zero()
			}
			for i, id := range out.idx {
				grow := g.Row(id)
				orow := out.Grad.Row(i)
				for j, ov := range orow {
					grow[j] += ov
				}
			}
			if !fresh {
				a.Grad.AddScaled(g, 1)
			}
		}
	}
	mat.GatherRowsInto(out.Value, a.Value, idx)
	return out
}

// ScaleRows multiplies each row i of a (n x d) by the scalar c[i, 0]
// (c is n x 1). Used to apply per-edge attention weights to message
// matrices.
func (t *Tape) ScaleRows(a, c *Node) *Node {
	if c.Cols() != 1 || c.Rows() != a.Rows() {
		panic(fmt.Sprintf("ag: ScaleRows wants %dx1 scale, got %dx%d", a.Rows(), c.Rows(), c.Cols()))
	}
	out, reused := t.next(opScaleRows, a, c, a.Rows(), a.Cols(), a.requires || c.requires)
	if !reused {
		out.fwdChunk = func(lo, hi int) {
			for i := lo; i < hi; i++ {
				s := c.Value.At(i, 0)
				arow := a.Value.Row(i)
				vrow := out.Value.Row(i)
				for j, av := range arow {
					vrow[j] = s * av
				}
			}
		}
		out.bwdChunk = func(lo, hi int) { // dA += c ⊙rows dOut
			g := a.Grad
			for i := lo; i < hi; i++ {
				s := c.Value.At(i, 0)
				orow := out.Grad.Row(i)
				grow := g.Row(i)
				for j, ov := range orow {
					grow[j] += s * ov
				}
			}
		}
		out.bwdChunk2 = func(lo, hi int) { // dC[i] += dOut[i]·A[i]
			g := c.Grad
			for i := lo; i < hi; i++ {
				g.Add(i, 0, mat.Dot(out.Grad.Row(i), a.Value.Row(i)))
			}
		}
		out.backward = func() {
			if a.requires {
				a.ensureGrad()
				par.Run(a.Rows(), rowGrain(a.Cols()), out.bwdChunk)
			}
			if c.requires {
				c.ensureGrad()
				par.Run(a.Rows(), rowGrain(a.Cols()), out.bwdChunk2)
			}
		}
	}
	par.Run(a.Rows(), rowGrain(a.Cols()), out.fwdChunk)
	return out
}

// RowSum reduces each row to its sum, producing an n x 1 column.
func (t *Tape) RowSum(a *Node) *Node {
	out, reused := t.next(opRowSum, a, nil, a.Rows(), 1, a.requires)
	if !reused {
		out.fwdChunk = func(lo, hi int) {
			for i := lo; i < hi; i++ {
				var s float64
				for _, x := range a.Value.Row(i) {
					s += x
				}
				out.Value.Set(i, 0, s)
			}
		}
		out.bwdChunk = func(lo, hi int) {
			g := a.Grad
			for i := lo; i < hi; i++ {
				gv := out.Grad.At(i, 0)
				grow := g.Row(i)
				for j := range grow {
					grow[j] += gv
				}
			}
		}
		out.backward = func() {
			if !a.requires {
				return
			}
			a.ensureGrad()
			par.Run(a.Rows(), rowGrain(a.Cols()), out.bwdChunk)
		}
	}
	par.Run(a.Rows(), rowGrain(a.Cols()), out.fwdChunk)
	return out
}

// RowDot computes the per-row inner product of a and b (both n x d),
// producing an n x 1 column: out[i] = a[i]·b[i].
func (t *Tape) RowDot(a, b *Node) *Node {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		panic("ag: RowDot shape mismatch")
	}
	return t.RowSum(t.Hadamard(a, b))
}

// Mean reduces the whole matrix to its scalar mean (1x1).
func (t *Tape) Mean(a *Node) *Node {
	out, reused := t.next(opMean, a, nil, 1, 1, a.requires)
	n := float64(a.Rows() * a.Cols())
	out.scalar = n
	if !reused {
		out.backward = func() {
			if !a.requires {
				return
			}
			g := out.scratchMat(0, a.Rows(), a.Cols())
			g.Fill(out.Grad.At(0, 0) / out.scalar)
			a.accumGrad(g)
		}
	}
	out.Value.Set(0, 0, a.Value.SumAll()/n)
	return out
}

// Sum reduces the whole matrix to its scalar sum (1x1).
func (t *Tape) Sum(a *Node) *Node {
	out, reused := t.next(opSum, a, nil, 1, 1, a.requires)
	if !reused {
		out.backward = func() {
			if !a.requires {
				return
			}
			g := out.scratchMat(0, a.Rows(), a.Cols())
			g.Fill(out.Grad.At(0, 0))
			a.accumGrad(g)
		}
	}
	out.Value.Set(0, 0, a.Value.SumAll())
	return out
}

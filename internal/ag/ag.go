// Package ag implements a small reverse-mode automatic-differentiation
// engine over dense matrices. Every neural model in the repository
// (DDIGCN, MDGCN and the graph-learning baselines) is trained through
// this tape.
//
// Usage: create a Tape per forward pass, wrap parameters and inputs as
// nodes, compose ops, then call Backward on a scalar loss node. Gradients
// accumulate in Node.Grad.
package ag

import (
	"fmt"
	"math"

	"dssddi/internal/mat"
	"dssddi/internal/par"
	"dssddi/internal/sparse"
)

// rowGrain sizes parallel row chunks; the policy lives in mat so all
// kernels share one threshold.
func rowGrain(cols int) int { return mat.RowGrain(cols) }

// Node is a value in the computation graph together with its gradient.
type Node struct {
	Value *mat.Dense
	Grad  *mat.Dense

	tape     *Tape
	backward func() // accumulates into the inputs' Grad; nil for leaves
	requires bool   // whether gradient flows into/through this node
}

// Rows returns the node value's row count.
func (n *Node) Rows() int { return n.Value.Rows() }

// Cols returns the node value's column count.
func (n *Node) Cols() int { return n.Value.Cols() }

// Tape records operations during a forward pass so they can be replayed
// in reverse for gradient computation. A Tape must not be shared across
// goroutines.
type Tape struct {
	nodes  []*Node
	params map[*mat.Dense]*Node
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{params: make(map[*mat.Dense]*Node)} }

// Param registers v as a differentiable leaf (a model parameter or an
// input that requires gradient). Calling Param twice with the same
// matrix returns the same node, so gradients from all uses accumulate
// in one place. The node's Grad is allocated lazily on first
// accumulation.
func (t *Tape) Param(v *mat.Dense) *Node {
	if n, ok := t.params[v]; ok {
		return n
	}
	n := &Node{Value: v, tape: t, requires: true}
	t.nodes = append(t.nodes, n)
	t.params[v] = n
	return n
}

// Grad returns the accumulated gradient for a parameter matrix
// registered via Param, or nil if the parameter received no gradient.
// Call after Backward.
func (t *Tape) Grad(v *mat.Dense) *mat.Dense {
	if n, ok := t.params[v]; ok {
		return n.Grad
	}
	return nil
}

// Const registers v as a non-differentiable leaf.
func (t *Tape) Const(v *mat.Dense) *Node {
	n := &Node{Value: v, tape: t, requires: false}
	t.nodes = append(t.nodes, n)
	return n
}

func (t *Tape) newNode(v *mat.Dense, requires bool, back func()) *Node {
	n := &Node{Value: v, tape: t, requires: requires, backward: back}
	t.nodes = append(t.nodes, n)
	return n
}

func (n *Node) ensureGrad() *mat.Dense {
	if n.Grad == nil {
		n.Grad = mat.New(n.Value.Rows(), n.Value.Cols())
	}
	return n.Grad
}

// accumGrad adds g into n's gradient if n participates in
// differentiation.
func (n *Node) accumGrad(g *mat.Dense) {
	if !n.requires {
		return
	}
	n.ensureGrad().AddScaled(g, 1)
}

// Backward runs reverse-mode differentiation from the scalar node loss.
// The loss value must be 1x1.
func (t *Tape) Backward(loss *Node) {
	if loss.Value.Rows() != 1 || loss.Value.Cols() != 1 {
		panic(fmt.Sprintf("ag: Backward requires a scalar loss, got %dx%d", loss.Value.Rows(), loss.Value.Cols()))
	}
	loss.ensureGrad().Set(0, 0, 1)
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.backward != nil && n.requires && n.Grad != nil {
			n.backward()
		}
	}
}

// MatMul returns a*b. The backward pass accumulates straight into the
// input gradients with the fused MatMulTrans*AddInto kernels — no
// temporary gradient matrices.
func (t *Tape) MatMul(a, b *Node) *Node {
	v := mat.MatMul(a.Value, b.Value)
	req := a.requires || b.requires
	out := t.newNode(v, req, nil)
	out.backward = func() {
		if a.requires {
			mat.MatMulTransBAddInto(a.ensureGrad(), out.Grad, b.Value) // dA += dOut * Bᵀ
		}
		if b.requires {
			mat.MatMulTransAAddInto(b.ensureGrad(), a.Value, out.Grad) // dB += Aᵀ * dOut
		}
	}
	return out
}

// SpMM returns s*x where s is a constant sparse operator (adjacency).
// Gradient flows into x only: dX += sᵀ * dOut (fused accumulation).
func (t *Tape) SpMM(s *sparse.CSR, x *Node) *Node {
	v := s.MulDense(x.Value)
	out := t.newNode(v, x.requires, nil)
	st := s.T() // computed once per op; graphs are static per epoch
	out.backward = func() {
		if x.requires {
			st.MulDenseAddInto(x.ensureGrad(), out.Grad)
		}
	}
	return out
}

// Add returns a+b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	v := mat.AddMat(a.Value, b.Value)
	out := t.newNode(v, a.requires || b.requires, nil)
	out.backward = func() {
		a.accumGrad(out.Grad)
		b.accumGrad(out.Grad)
	}
	return out
}

// Sub returns a-b.
func (t *Tape) Sub(a, b *Node) *Node {
	v := mat.SubMat(a.Value, b.Value)
	out := t.newNode(v, a.requires || b.requires, nil)
	out.backward = func() {
		a.accumGrad(out.Grad)
		if b.requires {
			b.ensureGrad().AddScaled(out.Grad, -1)
		}
	}
	return out
}

// AddBias broadcasts the 1 x d bias row onto every row of a (n x d).
func (t *Tape) AddBias(a, bias *Node) *Node {
	if bias.Value.Rows() != 1 || bias.Value.Cols() != a.Value.Cols() {
		panic(fmt.Sprintf("ag: AddBias wants 1x%d bias, got %dx%d", a.Value.Cols(), bias.Value.Rows(), bias.Value.Cols()))
	}
	v := mat.New(a.Rows(), a.Cols())
	brow := bias.Value.Row(0)
	par.For(a.Rows(), rowGrain(a.Cols()), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Value.Row(i)
			vrow := v.Row(i)
			for j, av := range arow {
				vrow[j] = av + brow[j]
			}
		}
	})
	out := t.newNode(v, a.requires || bias.requires, nil)
	out.backward = func() {
		a.accumGrad(out.Grad)
		if bias.requires {
			g := mat.New(1, a.Cols())
			grow := g.Row(0)
			for i := 0; i < out.Grad.Rows(); i++ {
				orow := out.Grad.Row(i)
				for j, ov := range orow {
					grow[j] += ov
				}
			}
			bias.accumGrad(g)
		}
	}
	return out
}

// Hadamard returns the element-wise product a⊙b. Gradients accumulate
// with the fused AddHadamard kernel.
func (t *Tape) Hadamard(a, b *Node) *Node {
	v := mat.Hadamard(a.Value, b.Value)
	out := t.newNode(v, a.requires || b.requires, nil)
	out.backward = func() {
		if a.requires {
			a.ensureGrad().AddHadamard(out.Grad, b.Value)
		}
		if b.requires {
			b.ensureGrad().AddHadamard(out.Grad, a.Value)
		}
	}
	return out
}

// Scale returns s*a for a constant scalar s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	v := a.Value.Clone()
	v.Scale(s)
	out := t.newNode(v, a.requires, nil)
	out.backward = func() {
		if a.requires {
			a.ensureGrad().AddScaled(out.Grad, s)
		}
	}
	return out
}

// AddScalar returns a + s element-wise for a constant scalar s.
func (t *Tape) AddScalar(a *Node, s float64) *Node {
	v := a.Value.Apply(func(x float64) float64 { return x + s })
	out := t.newNode(v, a.requires, nil)
	out.backward = func() { a.accumGrad(out.Grad) }
	return out
}

func (t *Tape) elementwise(a *Node, f, df func(float64) float64) *Node {
	v := a.Value.Apply(f)
	out := t.newNode(v, a.requires, nil)
	out.backward = func() {
		if !a.requires {
			return
		}
		// grad += dOut · f'(x), fused and parallel.
		mat.ZipAddInto(a.ensureGrad(), a.Value, out.Grad, func(x, od float64) float64 {
			return od * df(x)
		})
	}
	return out
}

// ReLU applies max(0, x) element-wise.
func (t *Tape) ReLU(a *Node) *Node {
	return t.elementwise(a,
		func(x float64) float64 {
			if x > 0 {
				return x
			}
			return 0
		},
		func(x float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		})
}

// LeakyReLU applies x (x>0) or slope*x (x<=0) element-wise.
func (t *Tape) LeakyReLU(a *Node, slope float64) *Node {
	return t.elementwise(a,
		func(x float64) float64 {
			if x > 0 {
				return x
			}
			return slope * x
		},
		func(x float64) float64 {
			if x > 0 {
				return 1
			}
			return slope
		})
}

// Tanh applies tanh element-wise.
func (t *Tape) Tanh(a *Node) *Node {
	return t.elementwise(a, math.Tanh, func(x float64) float64 {
		y := math.Tanh(x)
		return 1 - y*y
	})
}

// Sigmoid applies the logistic function element-wise.
func (t *Tape) Sigmoid(a *Node) *Node {
	return t.elementwise(a, mat.Sigmoid, func(x float64) float64 {
		y := mat.Sigmoid(x)
		return y * (1 - y)
	})
}

// ConcatCols returns [a | b].
func (t *Tape) ConcatCols(a, b *Node) *Node {
	v := mat.ConcatCols(a.Value, b.Value)
	out := t.newNode(v, a.requires || b.requires, nil)
	out.backward = func() {
		if a.requires {
			g := mat.New(a.Rows(), a.Cols())
			for i := 0; i < a.Rows(); i++ {
				copy(g.Row(i), out.Grad.Row(i)[:a.Cols()])
			}
			a.accumGrad(g)
		}
		if b.requires {
			g := mat.New(b.Rows(), b.Cols())
			for i := 0; i < b.Rows(); i++ {
				copy(g.Row(i), out.Grad.Row(i)[a.Cols():])
			}
			b.accumGrad(g)
		}
	}
	return out
}

// GatherRows selects rows idx from a: out[i] = a[idx[i]]. Gradient
// scatters (with accumulation for repeated indices) back into a.
func (t *Tape) GatherRows(a *Node, idx []int) *Node {
	v := a.Value.GatherRows(idx)
	out := t.newNode(v, a.requires, nil)
	out.backward = func() {
		if !a.requires {
			return
		}
		g := mat.New(a.Rows(), a.Cols())
		for i, id := range idx {
			grow := g.Row(id)
			orow := out.Grad.Row(i)
			for j, ov := range orow {
				grow[j] += ov
			}
		}
		a.accumGrad(g)
	}
	return out
}

// ScaleRows multiplies each row i of a (n x d) by the scalar c[i, 0]
// (c is n x 1). Used to apply per-edge attention weights to message
// matrices.
func (t *Tape) ScaleRows(a, c *Node) *Node {
	if c.Cols() != 1 || c.Rows() != a.Rows() {
		panic(fmt.Sprintf("ag: ScaleRows wants %dx1 scale, got %dx%d", a.Rows(), c.Rows(), c.Cols()))
	}
	v := mat.New(a.Rows(), a.Cols())
	par.For(a.Rows(), rowGrain(a.Cols()), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := c.Value.At(i, 0)
			arow := a.Value.Row(i)
			vrow := v.Row(i)
			for j, av := range arow {
				vrow[j] = s * av
			}
		}
	})
	out := t.newNode(v, a.requires || c.requires, nil)
	out.backward = func() {
		if a.requires {
			g := a.ensureGrad()
			par.For(a.Rows(), rowGrain(a.Cols()), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					s := c.Value.At(i, 0)
					orow := out.Grad.Row(i)
					grow := g.Row(i)
					for j, ov := range orow {
						grow[j] += s * ov
					}
				}
			})
		}
		if c.requires {
			g := c.ensureGrad()
			par.For(a.Rows(), rowGrain(a.Cols()), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					g.Add(i, 0, mat.Dot(out.Grad.Row(i), a.Value.Row(i)))
				}
			})
		}
	}
	return out
}

// RowSum reduces each row to its sum, producing an n x 1 column.
func (t *Tape) RowSum(a *Node) *Node {
	v := mat.New(a.Rows(), 1)
	par.For(a.Rows(), rowGrain(a.Cols()), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var s float64
			for _, x := range a.Value.Row(i) {
				s += x
			}
			v.Set(i, 0, s)
		}
	})
	out := t.newNode(v, a.requires, nil)
	out.backward = func() {
		if !a.requires {
			return
		}
		g := a.ensureGrad()
		par.For(a.Rows(), rowGrain(a.Cols()), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				gv := out.Grad.At(i, 0)
				grow := g.Row(i)
				for j := range grow {
					grow[j] += gv
				}
			}
		})
	}
	return out
}

// RowDot computes the per-row inner product of a and b (both n x d),
// producing an n x 1 column: out[i] = a[i]·b[i].
func (t *Tape) RowDot(a, b *Node) *Node {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		panic("ag: RowDot shape mismatch")
	}
	return t.RowSum(t.Hadamard(a, b))
}

// Mean reduces the whole matrix to its scalar mean (1x1).
func (t *Tape) Mean(a *Node) *Node {
	n := float64(a.Rows() * a.Cols())
	v := mat.New(1, 1)
	v.Set(0, 0, a.Value.SumAll()/n)
	out := t.newNode(v, a.requires, nil)
	out.backward = func() {
		if !a.requires {
			return
		}
		g := mat.New(a.Rows(), a.Cols())
		g.Fill(out.Grad.At(0, 0) / n)
		a.accumGrad(g)
	}
	return out
}

// Sum reduces the whole matrix to its scalar sum (1x1).
func (t *Tape) Sum(a *Node) *Node {
	v := mat.New(1, 1)
	v.Set(0, 0, a.Value.SumAll())
	out := t.newNode(v, a.requires, nil)
	out.backward = func() {
		if !a.requires {
			return
		}
		g := mat.New(a.Rows(), a.Cols())
		g.Fill(out.Grad.At(0, 0))
		a.accumGrad(g)
	}
	return out
}

package ag

import (
	"math"
	"math/rand"
	"testing"

	"dssddi/internal/mat"
	"dssddi/internal/sparse"
)

// gradCheck compares the tape gradient of loss w.r.t. param against
// central finite differences. build must construct the full forward pass
// from scratch each call (the tape is single-use).
func gradCheck(t *testing.T, param *mat.Dense, build func(tp *Tape, p *Node) *Node) {
	t.Helper()
	tape := NewTape()
	p := tape.Param(param)
	loss := build(tape, p)
	tape.Backward(loss)
	if p.Grad == nil {
		t.Fatal("no gradient accumulated on parameter")
	}
	analytic := p.Grad.Clone()

	const h = 1e-5
	for i := 0; i < param.Rows(); i++ {
		for j := 0; j < param.Cols(); j++ {
			orig := param.At(i, j)
			param.Set(i, j, orig+h)
			lp := evalLoss(param, build)
			param.Set(i, j, orig-h)
			lm := evalLoss(param, build)
			param.Set(i, j, orig)
			numeric := (lp - lm) / (2 * h)
			a := analytic.At(i, j)
			denom := math.Max(1, math.Max(math.Abs(a), math.Abs(numeric)))
			if math.Abs(a-numeric)/denom > 1e-4 {
				t.Fatalf("grad mismatch at (%d,%d): analytic %v numeric %v", i, j, a, numeric)
			}
		}
	}
}

func evalLoss(param *mat.Dense, build func(tp *Tape, p *Node) *Node) float64 {
	tape := NewTape()
	p := tape.Param(param)
	return build(tape, p).Value.At(0, 0)
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := mat.RandNormal(rng, 3, 4, 1)
	x := mat.RandNormal(rng, 5, 3, 1)
	gradCheck(t, w, func(tp *Tape, p *Node) *Node {
		return tp.Mean(tp.MatMul(tp.Const(x), p))
	})
}

func TestGradMatMulLeft(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := mat.RandNormal(rng, 4, 3, 1)
	b := mat.RandNormal(rng, 3, 2, 1)
	gradCheck(t, a, func(tp *Tape, p *Node) *Node {
		return tp.Mean(tp.MatMul(p, tp.Const(b)))
	})
}

func TestGradSpMM(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bld := sparse.NewBuilder(4, 4)
	bld.Add(0, 1, 0.5)
	bld.Add(1, 0, 0.5)
	bld.Add(2, 3, -1)
	bld.Add(3, 2, -1)
	bld.Add(1, 2, 0.7)
	s := bld.Build()
	x := mat.RandNormal(rng, 4, 3, 1)
	gradCheck(t, x, func(tp *Tape, p *Node) *Node {
		return tp.Mean(tp.SpMM(s, p))
	})
}

func TestGradAddSubBias(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := mat.RandNormal(rng, 3, 3, 1)
	other := mat.RandNormal(rng, 3, 3, 1)
	gradCheck(t, a, func(tp *Tape, p *Node) *Node {
		return tp.Mean(tp.Sub(tp.Add(p, tp.Const(other)), p))
	})
	bias := mat.RandNormal(rng, 1, 3, 1)
	gradCheck(t, bias, func(tp *Tape, p *Node) *Node {
		return tp.Mean(tp.AddBias(tp.Const(a), p))
	})
	gradCheck(t, a, func(tp *Tape, p *Node) *Node {
		return tp.Mean(tp.AddBias(p, tp.Const(bias)))
	})
}

func TestGradHadamardScale(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := mat.RandNormal(rng, 3, 2, 1)
	b := mat.RandNormal(rng, 3, 2, 1)
	gradCheck(t, a, func(tp *Tape, p *Node) *Node {
		return tp.Mean(tp.Scale(tp.Hadamard(p, tp.Const(b)), 2.5))
	})
	// Hadamard with itself: d(x²)/dx = 2x.
	gradCheck(t, a, func(tp *Tape, p *Node) *Node {
		return tp.Mean(tp.Hadamard(p, p))
	})
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := mat.RandNormal(rng, 4, 3, 1)
	for name, f := range map[string]func(tp *Tape, p *Node) *Node{
		"sigmoid":   func(tp *Tape, p *Node) *Node { return tp.Mean(tp.Sigmoid(p)) },
		"tanh":      func(tp *Tape, p *Node) *Node { return tp.Mean(tp.Tanh(p)) },
		"leakyrelu": func(tp *Tape, p *Node) *Node { return tp.Mean(tp.LeakyReLU(p, 0.01)) },
	} {
		t.Run(name, func(t *testing.T) { gradCheck(t, a.Clone(), f) })
	}
}

func TestGradReLU(t *testing.T) {
	// Keep values away from the kink at 0 for a clean finite-difference check.
	a := mat.FromRows([][]float64{{1.5, -2.3}, {0.7, -0.9}})
	gradCheck(t, a, func(tp *Tape, p *Node) *Node {
		return tp.Mean(tp.ReLU(p))
	})
}

func TestGradConcatGather(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := mat.RandNormal(rng, 3, 2, 1)
	b := mat.RandNormal(rng, 3, 4, 1)
	gradCheck(t, a, func(tp *Tape, p *Node) *Node {
		return tp.Mean(tp.ConcatCols(p, tp.Const(b)))
	})
	gradCheck(t, b.Clone(), func(tp *Tape, p *Node) *Node {
		return tp.Mean(tp.ConcatCols(tp.Const(a), p))
	})
	// Gather with repeated indices must accumulate gradients.
	gradCheck(t, a.Clone(), func(tp *Tape, p *Node) *Node {
		return tp.Mean(tp.GatherRows(p, []int{0, 2, 0, 1, 0}))
	})
}

func TestGradScaleRows(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := mat.RandNormal(rng, 4, 3, 1)
	c := mat.RandNormal(rng, 4, 1, 1)
	gradCheck(t, a, func(tp *Tape, p *Node) *Node {
		return tp.Mean(tp.ScaleRows(p, tp.Const(c)))
	})
	gradCheck(t, c.Clone(), func(tp *Tape, p *Node) *Node {
		return tp.Mean(tp.ScaleRows(tp.Const(a), p))
	})
}

func TestGradReductions(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := mat.RandNormal(rng, 3, 4, 1)
	gradCheck(t, a, func(tp *Tape, p *Node) *Node { return tp.Sum(p) })
	gradCheck(t, a.Clone(), func(tp *Tape, p *Node) *Node { return tp.Mean(tp.RowSum(p)) })
	b := mat.RandNormal(rng, 3, 4, 1)
	gradCheck(t, a.Clone(), func(tp *Tape, p *Node) *Node {
		return tp.Mean(tp.RowDot(p, tp.Const(b)))
	})
}

func TestGradMSELoss(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pred := mat.RandNormal(rng, 4, 1, 1)
	target := mat.RandNormal(rng, 4, 1, 1)
	gradCheck(t, pred, func(tp *Tape, p *Node) *Node {
		return tp.MSELoss(p, target)
	})
}

func TestGradBCEWithLogits(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	logits := mat.RandNormal(rng, 5, 2, 2)
	target := mat.New(5, 2)
	for i := range target.Data() {
		if rng.Float64() < 0.5 {
			target.Data()[i] = 1
		}
	}
	gradCheck(t, logits, func(tp *Tape, p *Node) *Node {
		return tp.BCEWithLogits(p, target)
	})
}

func TestGradWeightedBCE(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	logits := mat.RandNormal(rng, 4, 3, 2)
	target := mat.New(4, 3)
	weight := mat.New(4, 3)
	for i := range target.Data() {
		if rng.Float64() < 0.5 {
			target.Data()[i] = 1
		}
		if rng.Float64() < 0.7 {
			weight.Data()[i] = 1 + rng.Float64()
		}
	}
	gradCheck(t, logits, func(tp *Tape, p *Node) *Node {
		return tp.WeightedBCEWithLogits(p, target, weight)
	})
}

func TestGradL2Penalty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	w := mat.RandNormal(rng, 3, 3, 1)
	gradCheck(t, w, func(tp *Tape, p *Node) *Node {
		return tp.L2Penalty(p, 0.1)
	})
}

func TestGradCompositeMLP(t *testing.T) {
	// Two-layer MLP end-to-end: y = sigmoid(relu(X*W1+b1)*W2), BCE loss.
	rng := rand.New(rand.NewSource(13))
	x := mat.RandNormal(rng, 6, 4, 1)
	w1 := mat.RandNormal(rng, 4, 5, 0.5)
	b1 := mat.RandNormal(rng, 1, 5, 0.1)
	w2 := mat.RandNormal(rng, 5, 1, 0.5)
	target := mat.New(6, 1)
	for i := 0; i < 6; i++ {
		if rng.Float64() < 0.5 {
			target.Set(i, 0, 1)
		}
	}
	build := func(param *mat.Dense, which int) func(tp *Tape, p *Node) *Node {
		return func(tp *Tape, p *Node) *Node {
			var n1, nb, n2 *Node
			switch which {
			case 0:
				n1, nb, n2 = p, tp.Param(b1), tp.Param(w2)
			case 1:
				n1, nb, n2 = tp.Param(w1), p, tp.Param(w2)
			default:
				n1, nb, n2 = tp.Param(w1), tp.Param(b1), p
			}
			h := tp.ReLU(tp.AddBias(tp.MatMul(tp.Const(x), n1), nb))
			logits := tp.MatMul(h, n2)
			return tp.BCEWithLogits(logits, target)
		}
	}
	gradCheck(t, w1, build(w1, 0))
	gradCheck(t, b1, build(b1, 1))
	gradCheck(t, w2, build(w2, 2))
}

func TestBackwardRequiresScalar(t *testing.T) {
	tape := NewTape()
	p := tape.Param(mat.New(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar Backward")
		}
	}()
	tape.Backward(p)
}

func TestConstReceivesNoGrad(t *testing.T) {
	tape := NewTape()
	c := tape.Const(mat.FromRows([][]float64{{1, 2}}))
	p := tape.Param(mat.FromRows([][]float64{{3, 4}}))
	loss := tape.Mean(tape.Hadamard(c, p))
	tape.Backward(loss)
	if c.Grad != nil {
		t.Fatal("const node should not accumulate gradient")
	}
	if p.Grad == nil {
		t.Fatal("param node should accumulate gradient")
	}
}

func TestGradAccumulationAcrossUses(t *testing.T) {
	// p used twice: loss = mean(p) + mean(p) => grad = 2/n each entry.
	tape := NewTape()
	p := tape.Param(mat.FromRows([][]float64{{1, 2}, {3, 4}}))
	loss := tape.Add(tape.Mean(p), tape.Mean(p))
	tape.Backward(loss)
	for _, g := range p.Grad.Data() {
		if math.Abs(g-0.5) > 1e-12 {
			t.Fatalf("grad %v, want 0.5", g)
		}
	}
}

package ag

import (
	"fmt"
	"math"

	"dssddi/internal/mat"
)

// MSELoss returns the scalar mean-squared error between pred and the
// constant target (Eq. 6 of the paper, used by DDIGCN edge regression).
// The target may change between epochs; the retained node reads the
// current one.
func (t *Tape) MSELoss(pred *Node, target *mat.Dense) *Node {
	if pred.Rows() != target.Rows() || pred.Cols() != target.Cols() {
		panic(fmt.Sprintf("ag: MSELoss shape mismatch %dx%d vs %dx%d",
			pred.Rows(), pred.Cols(), target.Rows(), target.Cols()))
	}
	out, reused := t.next(opMSE, pred, nil, 1, 1, pred.requires)
	out.ref = target
	if !reused {
		out.backward = func() {
			if !pred.requires {
				return
			}
			g := out.scratchMat(0, pred.Rows(), pred.Cols())
			gd := g.Data()
			pd, td := pred.Value.Data(), out.ref.Data()
			scale := 2 * out.Grad.At(0, 0) / float64(len(pd))
			for i, p := range pd {
				gd[i] = scale * (p - td[i])
			}
			pred.accumGrad(g)
		}
	}
	var sum float64
	pd, td := pred.Value.Data(), target.Data()
	for i, p := range pd {
		d := p - td[i]
		sum += d * d
	}
	out.Value.Set(0, 0, sum/float64(len(pd)))
	return out
}

// BCEWithLogits returns the scalar mean binary cross-entropy between
// logits and binary targets, computed in a numerically stable fused
// form: max(x,0) - x*y + log(1+exp(-|x|)). This is the loss of
// Eq. 16-17 with the sigmoid folded in.
func (t *Tape) BCEWithLogits(logits *Node, target *mat.Dense) *Node {
	if logits.Rows() != target.Rows() || logits.Cols() != target.Cols() {
		panic(fmt.Sprintf("ag: BCEWithLogits shape mismatch %dx%d vs %dx%d",
			logits.Rows(), logits.Cols(), target.Rows(), target.Cols()))
	}
	out, reused := t.next(opBCE, logits, nil, 1, 1, logits.requires)
	out.ref = target
	if !reused {
		out.backward = func() {
			if !logits.requires {
				return
			}
			g := out.scratchMat(0, logits.Rows(), logits.Cols())
			gd := g.Data()
			xd, yd := logits.Value.Data(), out.ref.Data()
			scale := out.Grad.At(0, 0) / float64(len(xd))
			for i, x := range xd {
				gd[i] = scale * (mat.Sigmoid(x) - yd[i])
			}
			logits.accumGrad(g)
		}
	}
	var sum float64
	xd, yd := logits.Value.Data(), target.Data()
	for i, x := range xd {
		y := yd[i]
		sum += math.Max(x, 0) - x*y + math.Log1p(math.Exp(-math.Abs(x)))
	}
	out.Value.Set(0, 0, sum/float64(len(xd)))
	return out
}

// WeightedBCEWithLogits is BCEWithLogits with a per-element weight
// matrix; elements with weight 0 do not contribute. The normaliser is
// the sum of weights (so it is a weighted mean).
func (t *Tape) WeightedBCEWithLogits(logits *Node, target, weight *mat.Dense) *Node {
	if logits.Rows() != target.Rows() || logits.Cols() != target.Cols() ||
		logits.Rows() != weight.Rows() || logits.Cols() != weight.Cols() {
		panic("ag: WeightedBCEWithLogits shape mismatch")
	}
	out, reused := t.next(opWBCE, logits, nil, 1, 1, logits.requires)
	out.ref, out.ref2 = target, weight
	if !reused {
		out.backward = func() {
			if !logits.requires {
				return
			}
			g := out.scratchMat(0, logits.Rows(), logits.Cols())
			gd := g.Data()
			xd, yd, wd := logits.Value.Data(), out.ref.Data(), out.ref2.Data()
			wsum := out.ref2.SumAll()
			if wsum <= 0 {
				wsum = 1
			}
			scale := out.Grad.At(0, 0) / wsum
			for i, x := range xd {
				if wd[i] == 0 {
					gd[i] = 0
					continue
				}
				gd[i] = scale * wd[i] * (mat.Sigmoid(x) - yd[i])
			}
			logits.accumGrad(g)
		}
	}
	wsum := weight.SumAll()
	if wsum <= 0 {
		wsum = 1
	}
	var sum float64
	xd, yd, wd := logits.Value.Data(), target.Data(), weight.Data()
	for i, x := range xd {
		w := wd[i]
		if w == 0 {
			continue
		}
		y := yd[i]
		sum += w * (math.Max(x, 0) - x*y + math.Log1p(math.Exp(-math.Abs(x))))
	}
	out.Value.Set(0, 0, sum/wsum)
	return out
}

// L2Penalty returns 0.5*λ*‖a‖² as a scalar node, for weight decay folded
// into the loss.
func (t *Tape) L2Penalty(a *Node, lambda float64) *Node {
	out, reused := t.next(opL2, a, nil, 1, 1, a.requires)
	out.scalar = lambda
	if !reused {
		out.backward = func() {
			if !a.requires {
				return
			}
			g := out.scratchMat(0, a.Rows(), a.Cols())
			g.CopyFrom(a.Value)
			g.Scale(out.scalar * out.Grad.At(0, 0))
			a.accumGrad(g)
		}
	}
	var sum float64
	for _, x := range a.Value.Data() {
		sum += x * x
	}
	out.Value.Set(0, 0, 0.5*lambda*sum)
	return out
}

package ag

import (
	"math/rand"
	"testing"

	"dssddi/internal/mat"
)

// trainStep runs one MLP-ish forward/backward on tp and applies a plain
// SGD update, returning the loss. idx and target vary per step to
// exercise the per-epoch operand refresh of retained nodes.
func trainStep(tp *Tape, x, w1, b1, w2 *mat.Dense, idx []int, target *mat.Dense) float64 {
	h := tp.ReLU(tp.AddBias(tp.MatMul(tp.Const(x), tp.Param(w1)), tp.Param(b1)))
	g := tp.GatherRows(h, idx)
	logits := tp.MatMul(g, tp.Param(w2))
	loss := tp.BCEWithLogits(logits, target)
	tp.Backward(loss)
	for _, p := range []*mat.Dense{w1, b1, w2} {
		if gr := tp.Grad(p); gr != nil {
			p.AddScaled(gr, -0.05)
		}
	}
	return loss.Value.At(0, 0)
}

func cloneAll(ms ...*mat.Dense) []*mat.Dense {
	out := make([]*mat.Dense, len(ms))
	for i, m := range ms {
		out[i] = m.Clone()
	}
	return out
}

// TestReplayMatchesFreshTapes is the core retained-tape equivalence
// gate: training with one tape reset per step must be bitwise identical
// to training with a fresh tape every step, including per-step index
// and target changes (negative-sampling style).
func TestReplayMatchesFreshTapes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := mat.RandNormal(rng, 9, 5, 1)
	mkParams := func() (w1, b1, w2 *mat.Dense) {
		r := rand.New(rand.NewSource(7))
		return mat.RandNormal(r, 5, 6, 0.5), mat.RandNormal(r, 1, 6, 0.1), mat.RandNormal(r, 6, 1, 0.5)
	}
	w1a, b1a, w2a := mkParams()
	w1b, b1b, w2b := mkParams()

	steps := 30
	idxs := make([][]int, steps)
	targets := make([]*mat.Dense, steps)
	for s := range idxs {
		idxs[s] = []int{rng.Intn(9), rng.Intn(9), rng.Intn(9), rng.Intn(9)}
		tg := mat.New(4, 1)
		for i := 0; i < 4; i++ {
			if rng.Float64() < 0.5 {
				tg.Set(i, 0, 1)
			}
		}
		targets[s] = tg
	}

	retained := NewTape()
	nodesAfterFirst := -1
	for s := 0; s < steps; s++ {
		retained.Reset()
		lossA := trainStep(retained, x, w1a, b1a, w2a, idxs[s], targets[s])
		if s == 0 {
			nodesAfterFirst = retained.NumNodes()
		} else if retained.NumNodes() != nodesAfterFirst {
			t.Fatalf("step %d: retained graph grew from %d to %d nodes", s, nodesAfterFirst, retained.NumNodes())
		}

		fresh := NewTape()
		lossB := trainStep(fresh, x, w1b, b1b, w2b, idxs[s], targets[s])
		if lossA != lossB {
			t.Fatalf("step %d: retained loss %v != fresh-tape loss %v", s, lossA, lossB)
		}
	}
	for i, pair := range [][2]*mat.Dense{{w1a, w1b}, {b1a, b1b}, {w2a, w2b}} {
		for k, v := range pair[0].Data() {
			if v != pair[1].Data()[k] {
				t.Fatalf("param %d diverged at element %d: %v vs %v", i, k, v, pair[1].Data()[k])
			}
		}
	}
}

// TestReplayDivergenceRecovers checks that changing the op sequence
// mid-training recycles the stale tail and keeps producing correct
// results (structure may change; only the allocation win is lost).
func TestReplayDivergenceRecovers(t *testing.T) {
	w := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	x := mat.FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	tp := NewTape()

	build := func(extraScale bool) float64 {
		tp.Reset()
		h := tp.MatMul(tp.Const(x), tp.Param(w))
		if extraScale {
			h = tp.Scale(h, 2)
		}
		loss := tp.Mean(h)
		tp.Backward(loss)
		return loss.Value.At(0, 0)
	}

	plain := build(false)
	scaled := build(true) // diverges at the Scale op
	again := build(false) // diverges back
	if scaled != 2*plain {
		t.Fatalf("diverged graph: got %v, want %v", scaled, 2*plain)
	}
	if again != plain {
		t.Fatalf("re-diverged graph: got %v, want %v", again, plain)
	}
	// Gradient of mean over 6 elements: d/dw_kj = sum_i x_ik / 6.
	g := tp.Grad(w)
	if g == nil {
		t.Fatal("no gradient after divergence")
	}
	want := mat.FromRows([][]float64{{2.0 / 6, 2.0 / 6}, {2.0 / 6, 2.0 / 6}})
	for i, v := range g.Data() {
		if v != want.Data()[i] {
			t.Fatalf("grad[%d] = %v, want %v", i, v, want.Data()[i])
		}
	}
}

// TestDetachSurvivesReset ensures a detached value is not clobbered by
// later epochs reusing the graph slot.
func TestDetachSurvivesReset(t *testing.T) {
	w := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	x := mat.FromRows([][]float64{{1, 1}})
	tp := NewTape()

	tp.Reset()
	h := tp.MatMul(tp.Const(x), tp.Param(w))
	kept := tp.Detach(h)
	want := []float64{4, 6}
	for i, v := range kept.Data() {
		if v != want[i] {
			t.Fatalf("detached[%d] = %v, want %v", i, v, want[i])
		}
	}

	w.Set(0, 0, 100)
	tp.Reset()
	h2 := tp.MatMul(tp.Const(x), tp.Param(w))
	if h2.Value == kept {
		t.Fatal("reset reused the detached matrix")
	}
	for i, v := range kept.Data() {
		if v != want[i] {
			t.Fatalf("detached value clobbered: [%d] = %v, want %v", i, v, want[i])
		}
	}
	if got := h2.Value.At(0, 0); got != 103 {
		t.Fatalf("recomputed value = %v, want 103", got)
	}
}

// TestArenaOnOffBitwiseIdentical trains the same loop with the tape
// arena enabled and disabled; every step's loss and the final
// parameters must match bit for bit.
func TestArenaOnOffBitwiseIdentical(t *testing.T) {
	run := func(arena bool) (losses []float64, params []*mat.Dense) {
		SetArenaEnabled(arena)
		defer SetArenaEnabled(true)
		rng := rand.New(rand.NewSource(3))
		x := mat.RandNormal(rng, 8, 4, 1)
		r := rand.New(rand.NewSource(11))
		w1 := mat.RandNormal(r, 4, 5, 0.5)
		b1 := mat.RandNormal(r, 1, 5, 0.1)
		w2 := mat.RandNormal(r, 5, 1, 0.5)
		tp := NewTape()
		idxRng := rand.New(rand.NewSource(5))
		for s := 0; s < 20; s++ {
			idx := []int{idxRng.Intn(8), idxRng.Intn(8), idxRng.Intn(8)}
			tg := mat.New(3, 1)
			tg.Set(idxRng.Intn(3), 0, 1)
			tp.Reset()
			losses = append(losses, trainStep(tp, x, w1, b1, w2, idx, tg))
		}
		return losses, cloneAll(w1, b1, w2)
	}
	lossOn, paramsOn := run(true)
	lossOff, paramsOff := run(false)
	for i := range lossOn {
		if lossOn[i] != lossOff[i] {
			t.Fatalf("step %d: arena-on loss %v != arena-off loss %v", i, lossOn[i], lossOff[i])
		}
	}
	for i := range paramsOn {
		for k, v := range paramsOn[i].Data() {
			if v != paramsOff[i].Data()[k] {
				t.Fatalf("param %d element %d: arena-on %v != arena-off %v", i, k, v, paramsOff[i].Data()[k])
			}
		}
	}
}

// TestReplayReusesArenaBuffers asserts the arena actually serves
// recycled buffers once the graph has diverged and been rebuilt.
func TestReplayReusesArenaBuffers(t *testing.T) {
	w := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	x := mat.FromRows([][]float64{{1, 0}, {0, 1}})
	tp := NewTape()
	for s := 0; s < 4; s++ {
		tp.Reset()
		// Alternate structures so every other epoch recycles the tail
		// into the arena and records afresh from it.
		h := tp.MatMul(tp.Const(x), tp.Param(w))
		if s%2 == 0 {
			h = tp.Scale(h, 2)
		} else {
			h = tp.Add(h, h)
		}
		tp.Backward(tp.Mean(h))
	}
	_, hits, puts := tp.ArenaStats()
	if puts == 0 || hits == 0 {
		t.Fatalf("arena unused: hits=%d puts=%d", hits, puts)
	}
}

// Package alerts screens medication lists against the signed
// drug-drug interaction graph and the DDI module's learned relation
// embeddings, producing severity-tiered alerts in the style of
// clinical prescription-critiquing systems: a recorded antagonism is a
// hard warning, a model-predicted one a soft caution, a synergy an
// informational note.
//
// Severity is derived from the edge sign and the interaction score
// (the embedding inner product ẑ_uv trained to regress +1 synergy /
// -1 antagonism / 0 none):
//
//	Critical — recorded antagonism the model also scores strongly
//	           negative (ẑ ≤ CriticalScore)
//	Major    — any other recorded antagonism
//	Moderate — no recorded edge, but ẑ ≤ PredictThreshold (a
//	           model-predicted antagonism)
//	Minor    — recorded synergy (informational, beneficial)
package alerts

import (
	"encoding/json"
	"fmt"
	"sort"

	"dssddi/internal/graph"
)

// Severity tiers an alert, ordered so a higher value is more severe.
type Severity int

// Severity tiers, least to most severe.
const (
	Minor Severity = iota
	Moderate
	Major
	Critical
)

// String returns the lower-case tier name used in JSON payloads.
func (s Severity) String() string {
	switch s {
	case Critical:
		return "critical"
	case Major:
		return "major"
	case Moderate:
		return "moderate"
	default:
		return "minor"
	}
}

// MarshalJSON renders the tier name, not the numeric value.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses a tier name written by MarshalJSON.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "critical":
		*s = Critical
	case "major":
		*s = Major
	case "moderate":
		*s = Moderate
	case "minor":
		*s = Minor
	default:
		return fmt.Errorf("alerts: unknown severity %q", name)
	}
	return nil
}

// Alert is one structured interaction finding between two drugs.
type Alert struct {
	// Type is "recorded-antagonism", "predicted-antagonism" or
	// "recorded-synergy".
	Type      string   `json:"type"`
	Severity  Severity `json:"severity"`
	DrugA     int      `json:"drug_a"`
	DrugB     int      `json:"drug_b"`
	DrugAName string   `json:"drug_a_name,omitempty"`
	DrugBName string   `json:"drug_b_name,omitempty"`
	// Score is the model's interaction score ẑ_uv (0 when embeddings
	// are unavailable and the alert rests on the recorded edge alone).
	Score   float64 `json:"score"`
	Message string  `json:"message"`
}

// Checker screens drug lists. It is immutable after construction and
// safe for unbounded concurrent use — every method only reads.
type Checker struct {
	ddi   *graph.Signed
	emb   [][]float64 // drug relation embeddings; nil disables scores
	names []string

	// CriticalScore is the predicted-score ceiling at or below which a
	// recorded antagonism escalates from Major to Critical.
	CriticalScore float64
	// PredictThreshold is the ceiling at or below which an unrecorded
	// pair raises a Moderate predicted-antagonism alert.
	PredictThreshold float64
}

// NewChecker builds a checker over the interaction graph. emb is the
// DDI module's relation embedding matrix (one row per drug); pass nil
// to screen on recorded edges only. names resolves drug IDs in
// messages and may be nil.
func NewChecker(ddi *graph.Signed, emb [][]float64, names []string) *Checker {
	return &Checker{
		ddi:              ddi,
		emb:              emb,
		names:            names,
		CriticalScore:    -0.75,
		PredictThreshold: -0.5,
	}
}

func (c *Checker) name(id int) string {
	if c.names != nil && id >= 0 && id < len(c.names) {
		return c.names[id]
	}
	return fmt.Sprintf("DID %d", id)
}

// score returns the embedding inner product for a drug pair and
// whether embeddings are available for both.
func (c *Checker) score(u, v int) (float64, bool) {
	if c.emb == nil || u >= len(c.emb) || v >= len(c.emb) {
		return 0, false
	}
	var dot float64
	for i, x := range c.emb[u] {
		dot += x * c.emb[v][i]
	}
	return dot, true
}

// Pair screens one drug pair, reporting whether it raises an alert.
func (c *Checker) Pair(u, v int) (Alert, bool) {
	if u == v || u < 0 || v < 0 || u >= c.ddi.N() || v >= c.ddi.N() {
		return Alert{}, false
	}
	score, scored := c.score(u, v)
	sign, recorded := c.ddi.Edge(u, v)
	a := Alert{DrugA: u, DrugB: v, DrugAName: c.name(u), DrugBName: c.name(v), Score: score}
	switch {
	case recorded && sign == graph.Antagonism:
		a.Type = "recorded-antagonism"
		a.Severity = Major
		if scored && score <= c.CriticalScore {
			a.Severity = Critical
			a.Message = fmt.Sprintf("%s and %s have a recorded antagonistic interaction the model scores strongly negative (%.2f); avoid co-prescription", a.DrugAName, a.DrugBName, score)
		} else {
			a.Message = fmt.Sprintf("%s and %s have a recorded antagonistic interaction; review before co-prescription", a.DrugAName, a.DrugBName)
		}
	case recorded && sign == graph.Synergy:
		a.Type = "recorded-synergy"
		a.Severity = Minor
		a.Message = fmt.Sprintf("%s and %s have a recorded synergistic interaction (informational)", a.DrugAName, a.DrugBName)
	case !recorded && scored && score <= c.PredictThreshold:
		a.Type = "predicted-antagonism"
		a.Severity = Moderate
		a.Message = fmt.Sprintf("the model predicts an antagonistic interaction between %s and %s (score %.2f); no recorded edge — monitor", a.DrugAName, a.DrugBName, score)
	default:
		return Alert{}, false
	}
	return a, true
}

// dedup returns drugs with repeats removed, first occurrence winning,
// so a list with duplicate IDs cannot double-report a pair.
func dedup(drugs []int) []int {
	seen := make(map[int]bool, len(drugs))
	out := make([]int, 0, len(drugs))
	for _, d := range drugs {
		if seen[d] {
			continue
		}
		seen[d] = true
		out = append(out, d)
	}
	return out
}

// ScreenList screens every pair of a proposed medication list
// (duplicate IDs are ignored), returning alerts ordered most-severe
// first (ties by drug IDs, so the output is deterministic).
func (c *Checker) ScreenList(drugs []int) []Alert {
	drugs = dedup(drugs)
	var out []Alert
	for i := 0; i < len(drugs); i++ {
		for j := i + 1; j < len(drugs); j++ {
			if a, ok := c.Pair(drugs[i], drugs[j]); ok {
				out = append(out, a)
			}
		}
	}
	sortAlerts(out)
	return out
}

// ScreenAgainst screens each proposed drug against a patient's current
// regimen (skipping drugs already in it), the check a suggestion list
// goes through before it reaches a clinician. Alerts are ordered
// most-severe first.
func (c *Checker) ScreenAgainst(regimen, proposed []int) []Alert {
	current := make(map[int]bool, len(regimen))
	for _, d := range regimen {
		current[d] = true
	}
	regimen = dedup(regimen)
	var out []Alert
	for _, p := range dedup(proposed) {
		if current[p] {
			continue
		}
		for _, r := range regimen {
			if a, ok := c.Pair(r, p); ok {
				out = append(out, a)
			}
		}
	}
	sortAlerts(out)
	return out
}

func sortAlerts(alerts []Alert) {
	sort.SliceStable(alerts, func(i, j int) bool {
		if alerts[i].Severity != alerts[j].Severity {
			return alerts[i].Severity > alerts[j].Severity
		}
		if alerts[i].DrugA != alerts[j].DrugA {
			return alerts[i].DrugA < alerts[j].DrugA
		}
		return alerts[i].DrugB < alerts[j].DrugB
	})
}

// MaxSeverity returns the highest tier present in alerts and whether
// any alert exists.
func MaxSeverity(alerts []Alert) (Severity, bool) {
	if len(alerts) == 0 {
		return Minor, false
	}
	max := alerts[0].Severity
	for _, a := range alerts[1:] {
		if a.Severity > max {
			max = a.Severity
		}
	}
	return max, true
}

package alerts

import (
	"encoding/json"
	"strings"
	"testing"

	"dssddi/internal/graph"
)

// testChecker builds a 5-drug world:
//
//	0-1 recorded antagonism, embedding score -0.9  -> Critical
//	0-2 recorded antagonism, embedding score -0.1  -> Major
//	1-2 recorded synergy                           -> Minor
//	3-4 no recorded edge, embedding score -0.81    -> Moderate
//	0-4 no recorded edge, embedding score ~0       -> no alert
func testChecker() *Checker {
	g := graph.NewSigned(5)
	g.SetEdge(0, 1, graph.Antagonism)
	g.SetEdge(0, 2, graph.Antagonism)
	g.SetEdge(1, 2, graph.Synergy)
	emb := [][]float64{
		{1, 0, 0},
		{-0.9, 0.1, 0},
		{-0.1, 0.3, 0},
		{0, 0.9, 0},
		{0, -0.9, 0.1},
	}
	return NewChecker(g, emb, []string{"Aspirin", "Warfarin", "Statin", "DrugD", "DrugE"})
}

func TestSeverityTiers(t *testing.T) {
	c := testChecker()
	cases := []struct {
		u, v     int
		wantType string
		wantSev  Severity
	}{
		{0, 1, "recorded-antagonism", Critical},
		{0, 2, "recorded-antagonism", Major},
		{1, 2, "recorded-synergy", Minor},
		{3, 4, "predicted-antagonism", Moderate},
	}
	for _, tc := range cases {
		a, ok := c.Pair(tc.u, tc.v)
		if !ok {
			t.Fatalf("pair (%d,%d): no alert", tc.u, tc.v)
		}
		if a.Type != tc.wantType || a.Severity != tc.wantSev {
			t.Fatalf("pair (%d,%d): got %s/%s, want %s/%s", tc.u, tc.v, a.Type, a.Severity, tc.wantType, tc.wantSev)
		}
		if a.Message == "" || a.DrugAName == "" {
			t.Fatalf("pair (%d,%d): message/names not filled: %+v", tc.u, tc.v, a)
		}
	}
	if _, ok := c.Pair(0, 4); ok {
		t.Fatal("benign pair must not alert")
	}
	if _, ok := c.Pair(2, 2); ok {
		t.Fatal("self pair must not alert")
	}
	if _, ok := c.Pair(0, 99); ok {
		t.Fatal("out-of-range drug must not alert")
	}
}

func TestScreenListOrdersBySeverity(t *testing.T) {
	c := testChecker()
	alerts := c.ScreenList([]int{0, 1, 2, 3, 4})
	if len(alerts) != 4 {
		t.Fatalf("got %d alerts: %+v", len(alerts), alerts)
	}
	for i := 1; i < len(alerts); i++ {
		if alerts[i].Severity > alerts[i-1].Severity {
			t.Fatalf("alerts not sorted most-severe first: %+v", alerts)
		}
	}
	if alerts[0].Severity != Critical || alerts[len(alerts)-1].Severity != Minor {
		t.Fatalf("tier range wrong: %+v", alerts)
	}
	sev, any := MaxSeverity(alerts)
	if !any || sev != Critical {
		t.Fatalf("MaxSeverity = %v,%v", sev, any)
	}
}

func TestScreenListDeduplicates(t *testing.T) {
	c := testChecker()
	want := c.ScreenList([]int{0, 1})
	got := c.ScreenList([]int{0, 1, 0, 1, 0})
	if len(got) != len(want) {
		t.Fatalf("duplicate IDs double-reported: %d alerts, want %d", len(got), len(want))
	}
}

func TestScreenAgainstSkipsCurrentRegimen(t *testing.T) {
	c := testChecker()
	// Patient takes 0 and 2; proposing 1 must flag 0-1 (critical) and
	// the 1-2 synergy note, but proposing 2 (already taken) is skipped.
	alerts := c.ScreenAgainst([]int{0, 2}, []int{1, 2})
	if len(alerts) != 2 {
		t.Fatalf("got %d alerts: %+v", len(alerts), alerts)
	}
	if alerts[0].Severity != Critical || alerts[0].DrugA != 0 || alerts[0].DrugB != 1 {
		t.Fatalf("first alert wrong: %+v", alerts[0])
	}
	if alerts[1].Type != "recorded-synergy" {
		t.Fatalf("second alert wrong: %+v", alerts[1])
	}
}

func TestNoEmbeddingsFallsBackToRecordedEdges(t *testing.T) {
	g := graph.NewSigned(3)
	g.SetEdge(0, 1, graph.Antagonism)
	c := NewChecker(g, nil, nil)
	a, ok := c.Pair(0, 1)
	if !ok || a.Severity != Major {
		t.Fatalf("recorded antagonism without embeddings must be Major, got %+v (ok=%v)", a, ok)
	}
	if !strings.Contains(a.DrugAName, "DID 0") {
		t.Fatalf("nameless checker must fall back to IDs: %+v", a)
	}
	if _, ok := c.Pair(0, 2); ok {
		t.Fatal("no edge and no embeddings must not alert")
	}
}

func TestSeverityJSON(t *testing.T) {
	buf, err := json.Marshal(Alert{Severity: Critical, Type: "recorded-antagonism"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), `"severity":"critical"`) {
		t.Fatalf("severity must marshal as its name: %s", buf)
	}
}

// Package baselines implements the eight comparison methods of the
// paper's evaluation (Section V-A1): the traditional models UserSim,
// ECC and SVM, the graph-learning models GCMC, LightGCN and Bipar-GCN,
// and the sequence/safety models SafeDrug and CauseRec. Each model
// implements the Suggester interface used by the experiment harness.
//
// SafeDrug and CauseRec are faithful simplifications: SafeDrug's MPNN
// molecule encoder is replaced by fixed random molecular fingerprints
// (no molecule structures exist for the synthetic drugs) and CauseRec's
// counterfactual sequence synthesis operates on feature tokens; both
// retain the training signal that distinguishes the originals (a DDI
// safety penalty and counterfactual augmentation respectively). See
// DESIGN.md.
package baselines

import (
	"dssddi/internal/dataset"
	"dssddi/internal/mat"
)

// Suggester is a medication-suggestion model: fit on a dataset's
// training split, then score every drug for arbitrary patients.
type Suggester interface {
	// Name is the display name used in the result tables.
	Name() string
	// Fit trains on d.Train.
	Fit(d *dataset.Dataset)
	// Scores returns a (len(patients) x drugs) score matrix for the
	// given global patient indices.
	Scores(patients []int) *mat.Dense
}

// scoresToRows converts a score matrix into per-patient slices, the
// shape the metrics package consumes.
func scoresToRows(s *mat.Dense) [][]float64 {
	rows := make([][]float64, s.Rows())
	for i := range rows {
		rows[i] = s.Row(i)
	}
	return rows
}

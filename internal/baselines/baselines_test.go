package baselines

import (
	"math/rand"
	"testing"

	"dssddi/internal/dataset"
	"dssddi/internal/metrics"
	"dssddi/internal/synth"
)

func testDataset(seed int64, n int) *dataset.Dataset {
	opts := synth.DefaultCohortOptions()
	opts.Males, opts.Females = n/2+n%2, n/2
	c := synth.GenerateCohort(rand.New(rand.NewSource(seed)), opts)
	return dataset.FromCohort(rand.New(rand.NewSource(seed+1)), c, nil)
}

// evalP4 fits the model and returns test-set P@4 and R@4.
func evalP4(t *testing.T, m Suggester, d *dataset.Dataset) (float64, float64) {
	t.Helper()
	m.Fit(d)
	scores := m.Scores(d.Test)
	if scores.Rows() != len(d.Test) || scores.Cols() != d.NumDrugs() {
		t.Fatalf("%s: scores shape %dx%d", m.Name(), scores.Rows(), scores.Cols())
	}
	truth := make([][]int, len(d.Test))
	for i, p := range d.Test {
		truth[i] = d.TruePositives(p)
	}
	r := metrics.Evaluate(scoresToRows(scores), truth, []int{4})
	return r[0].Precision, r[0].Recall
}

const randomP4 = 0.03 // ~ mean medications / drugs

func TestUserSimBeatsRandom(t *testing.T) {
	d := testDataset(1, 240)
	p, _ := evalP4(t, NewUserSim(), d)
	if p <= randomP4 {
		t.Fatalf("UserSim P@4 = %v, want > random %v", p, randomP4)
	}
}

func TestECCBeatsRandom(t *testing.T) {
	d := testDataset(2, 240)
	m := NewECC()
	m.Chains = 2
	m.Epochs = 30
	p, _ := evalP4(t, m, d)
	if p <= randomP4 {
		t.Fatalf("ECC P@4 = %v, want > random", p)
	}
}

func TestSVMBeatsRandom(t *testing.T) {
	d := testDataset(3, 240)
	m := NewSVM()
	m.Epochs = 15
	p, _ := evalP4(t, m, d)
	if p <= randomP4 {
		t.Fatalf("SVM P@4 = %v, want > random", p)
	}
}

func TestGCMCBeatsRandom(t *testing.T) {
	d := testDataset(4, 240)
	m := NewGCMC()
	m.Epochs = 100
	p, _ := evalP4(t, m, d)
	if p <= randomP4 {
		t.Fatalf("GCMC P@4 = %v, want > random", p)
	}
}

func TestLightGCNBeatsRandom(t *testing.T) {
	d := testDataset(5, 240)
	m := NewLightGCN()
	m.Epochs = 100
	p, _ := evalP4(t, m, d)
	if p <= randomP4 {
		t.Fatalf("LightGCN P@4 = %v, want > random", p)
	}
}

func TestBiparGCNBeatsRandom(t *testing.T) {
	d := testDataset(6, 240)
	m := NewBiparGCN()
	m.Epochs = 100
	p, _ := evalP4(t, m, d)
	if p <= randomP4 {
		t.Fatalf("Bipar-GCN P@4 = %v, want > random", p)
	}
}

func TestSafeDrugBeatsRandom(t *testing.T) {
	d := testDataset(7, 240)
	m := NewSafeDrug()
	m.Epochs = 100
	p, _ := evalP4(t, m, d)
	if p <= randomP4 {
		t.Fatalf("SafeDrug P@4 = %v, want > random", p)
	}
}

func TestCauseRecBeatsRandom(t *testing.T) {
	d := testDataset(8, 240)
	m := NewCauseRec()
	m.Epochs = 100
	p, _ := evalP4(t, m, d)
	if p <= randomP4 {
		t.Fatalf("CauseRec P@4 = %v, want > random", p)
	}
}

func TestSafeDrugWithVisitHistory(t *testing.T) {
	opts := synth.DefaultMIMICOptions()
	opts.Patients = 160
	mm := synth.GenerateMIMIC(rand.New(rand.NewSource(9)), opts)
	d := dataset.FromMIMIC(rand.New(rand.NewSource(10)), mm)
	m := NewSafeDrug()
	m.Epochs = 60
	m.VisitHistory = mm.VisitMedicineHistory()
	p, r := evalP4(t, m, d)
	// On MIMIC-like data history medicines strongly predict the label.
	if p < 0.2 || r < 0.1 {
		t.Fatalf("SafeDrug(GRU) P@4 = %v R@4 = %v; visit history signal lost", p, r)
	}
}

func TestLightGCNOverSmoothingProbe(t *testing.T) {
	// Fig. 7 phenomenon: post-propagation patient representations
	// should be substantially more mutually similar than raw features.
	d := testDataset(11, 240)
	m := NewLightGCN()
	m.Epochs = 80
	m.Fit(d)
	positions := make([]int, 40)
	for i := range positions {
		positions[i] = i
	}
	reps := m.PatientRepresentations(positions)
	if reps.Rows() != 40 {
		t.Fatalf("reps shape %dx%d", reps.Rows(), reps.Cols())
	}
	if m.DrugRepresentations().Rows() != d.NumDrugs() {
		t.Fatal("drug reps shape wrong")
	}
}

func TestAllNamesDistinct(t *testing.T) {
	models := []Suggester{
		NewUserSim(), NewECC(), NewSVM(), NewGCMC(),
		NewLightGCN(), NewBiparGCN(), NewSafeDrug(), NewCauseRec(),
	}
	seen := map[string]bool{}
	for _, m := range models {
		if m.Name() == "" || seen[m.Name()] {
			t.Fatalf("duplicate or empty name %q", m.Name())
		}
		seen[m.Name()] = true
	}
}

package baselines

import (
	"math/rand"

	"dssddi/internal/ag"
	"dssddi/internal/dataset"
	"dssddi/internal/mat"
	"dssddi/internal/nn"
	"dssddi/internal/optim"
	"dssddi/internal/par"
	"dssddi/internal/sparse"
)

// gnnBase carries the plumbing shared by the bipartite GNN baselines:
// feature matrices, propagation operators over the observed graph, the
// per-epoch negative-sampled training pairs and the Adam loop.
type gnnBase struct {
	d        *dataset.Dataset
	trainX   *mat.Dense
	trainY   *mat.Dense
	drugFeat *mat.Dense
	l2r, r2l *sparse.CSR
	posP     []int
	posV     []int
	rng      *rand.Rand
	params   nn.Params

	// Reused per-epoch pair buffers (samplePairs refills in place).
	pairP, pairV []int
	pairY        *mat.Dense
}

func (g *gnnBase) prepare(d *dataset.Dataset, seed int64) {
	g.d = d
	g.rng = rand.New(rand.NewSource(seed))
	g.trainX = d.Rows(d.Train)
	g.trainY = d.Labels(d.Train)
	g.drugFeat = d.DrugFeatures
	if g.drugFeat == nil {
		g.drugFeat = mat.OneHot(d.NumDrugs())
	}
	g.l2r, g.r2l = sparse.BipartiteNorm(len(d.Train), d.NumDrugs(), d.ObservedBipartite().Links())
	for p := 0; p < g.trainY.Rows(); p++ {
		for v := 0; v < g.trainY.Cols(); v++ {
			if g.trainY.At(p, v) == 1 {
				g.posP = append(g.posP, p)
				g.posV = append(g.posV, v)
			}
		}
	}
}

// samplePairs draws this epoch's 1:1 positive/negative pairs into the
// reused pair buffers (no per-epoch allocation).
func (g *gnnBase) samplePairs() (ps, vs []int, y *mat.Dense) {
	nD := g.trainY.Cols()
	total := 2 * len(g.posP)
	if cap(g.pairP) < total {
		g.pairP = make([]int, 0, total)
		g.pairV = make([]int, 0, total)
		g.pairY = mat.New(total, 1)
	}
	ps, vs = g.pairP[:0], g.pairV[:0]
	yd := g.pairY.Data()
	for i := range g.posP {
		p := g.posP[i]
		ps = append(ps, p)
		vs = append(vs, g.posV[i])
		yd[len(ps)-1] = 1
		for {
			neg := g.rng.Intn(nD)
			if g.trainY.At(p, neg) != 1 {
				ps = append(ps, p)
				vs = append(vs, neg)
				yd[len(ps)-1] = 0
				break
			}
		}
	}
	g.pairP, g.pairV = ps, vs
	return ps, vs, g.pairY
}

// trainLoop runs Adam over a forward closure producing the loss. One
// retained tape is reset and replayed per epoch, so steady-state
// epochs reuse the previous epoch's graph and buffers.
func (g *gnnBase) trainLoop(epochs int, lr, weightDecay float64, forward func(t *ag.Tape) *ag.Node) {
	opt := optim.NewAdam(lr)
	opt.WeightDecay = weightDecay
	tape := ag.NewTape()
	grads := make([]*mat.Dense, len(g.params.All()))
	for e := 0; e < epochs; e++ {
		tape.Reset()
		loss := forward(tape)
		tape.Backward(loss)
		nn.CollectGradsInto(grads, tape, &g.params)
		optim.ClipGlobalNorm(grads, 5)
		opt.Step(g.params.All(), grads)
	}
}

// LightGCN is He et al.'s simplified GCN recommender in its original
// form: free ID embeddings for patients and drugs, no feature
// transforms or nonlinearities during propagation, layer outputs
// combined by averaging. Because the model is transductive, unobserved
// patients are scored through an inductive extension: their
// representation is the feature-cosine-weighted average of observed
// patients' final representations. This is also the model whose
// propagated patient representations the paper's Fig. 7 shows to be
// over-smoothed.
type LightGCN struct {
	Hidden      int
	Layers      int
	Epochs      int
	LR          float64
	WeightDecay float64
	Seed        int64

	gnnBase
	patEmb  *nn.Embedding
	drugEmb *nn.Embedding
}

// NewLightGCN returns the baseline with the experiments'
// configuration.
func NewLightGCN() *LightGCN {
	return &LightGCN{Hidden: 64, Layers: 2, Epochs: 250, LR: 0.01, WeightDecay: 1e-4, Seed: 1}
}

// Name implements Suggester.
func (l *LightGCN) Name() string { return "LightGCN" }

// encode propagates and returns (patient reps, drug reps) after layer
// averaging.
func (l *LightGCN) encode(t *ag.Tape) (*ag.Node, *ag.Node) {
	p0 := l.patEmb.Full(t)
	d0 := l.drugEmb.Full(t)
	pSum, dSum := p0, d0
	pT, dT := p0, d0
	for layer := 1; layer <= l.Layers; layer++ {
		pNext := t.SpMM(l.l2r, dT)
		dNext := t.SpMM(l.r2l, pT)
		pT, dT = pNext, dNext
		pSum = t.Add(pSum, pT)
		dSum = t.Add(dSum, dT)
	}
	scale := 1 / float64(l.Layers+1)
	return t.Scale(pSum, scale), t.Scale(dSum, scale)
}

// Fit implements Suggester.
func (l *LightGCN) Fit(d *dataset.Dataset) {
	l.prepare(d, l.Seed)
	rng := rand.New(rand.NewSource(l.Seed))
	l.patEmb = nn.NewEmbedding(rng, &l.params, len(d.Train), l.Hidden)
	l.drugEmb = nn.NewEmbedding(rng, &l.params, d.NumDrugs(), l.Hidden)
	l.trainLoop(l.Epochs, l.LR, l.WeightDecay, func(t *ag.Tape) *ag.Node {
		ps, vs, y := l.samplePairs()
		hp, hd := l.encode(t)
		logits := t.RowDot(t.GatherRows(hp, ps), t.GatherRows(hd, vs))
		return t.BCEWithLogits(logits, y)
	})
}

// repsFor returns the representation LightGCN uses for each GLOBAL
// patient index: observed patients use their propagated embedding;
// unobserved patients the feature-cosine-weighted average of observed
// patients' final representations (the inductive extension).
func (l *LightGCN) repsFor(hpTrain *mat.Dense, patients []int) *mat.Dense {
	d := l.d
	trainPos := make(map[int]int, len(d.Train))
	for ti, p := range d.Train {
		trainPos[p] = ti
	}
	// Each patient's representation is independent, so the similarity
	// search fans out across the shared worker pool.
	hp := mat.New(len(patients), l.Hidden)
	par.For(len(patients), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := patients[i]
			if ti, ok := trainPos[p]; ok {
				copy(hp.Row(i), hpTrain.Row(ti))
				continue
			}
			xi := d.X.Row(p)
			row := hp.Row(i)
			var wsum float64
			for ti, o := range d.Train {
				sim := mat.CosineSimilarity(xi, d.X.Row(o))
				if sim <= 0 {
					continue
				}
				wsum += sim
				orow := hpTrain.Row(ti)
				for j, v := range orow {
					row[j] += sim * v
				}
			}
			if wsum > 0 {
				for j := range row {
					row[j] /= wsum
				}
			}
		}
	})
	return hp
}

// Scores implements Suggester.
func (l *LightGCN) Scores(patients []int) *mat.Dense {
	t := ag.NewTape()
	hpTrain, hd := l.encode(t)
	hp := l.repsFor(hpTrain.Value, patients)
	out := mat.MatMulTransB(hp, hd.Value)
	applySigmoid(out)
	return out
}

// PatientRepresentations returns the representations used to score the
// given GLOBAL patient indices (Fig. 7's over-smoothing probe; the
// paper samples 100 test patients).
func (l *LightGCN) PatientRepresentations(patients []int) *mat.Dense {
	t := ag.NewTape()
	hpTrain, _ := l.encode(t)
	return l.repsFor(hpTrain.Value, patients)
}

// DrugRepresentations returns the propagated drug embeddings.
func (l *LightGCN) DrugRepresentations() *mat.Dense {
	t := ag.NewTape()
	_, hd := l.encode(t)
	return t.Detach(hd) // single-use tape: hand the value over, no copy
}

func applySigmoid(m *mat.Dense) {
	m.ApplyInPlace(sigmoidSafe)
}

// GCMC is Berg et al.'s graph convolutional matrix completion adapted
// to implicit binary feedback: one message-passing layer with a weight
// matrix and ReLU per direction, dense (feature) side channels, and a
// bilinear decoder.
type GCMC struct {
	Hidden      int
	Epochs      int
	LR          float64
	WeightDecay float64
	Seed        int64

	gnnBase
	patFC, drugFC *nn.Linear // side-feature channels
	convP, convD  *nn.Linear // message transforms
	bilinear      *mat.Dense // decoder Q
}

// NewGCMC returns the baseline with the experiments' configuration.
func NewGCMC() *GCMC {
	return &GCMC{Hidden: 64, Epochs: 250, LR: 0.01, WeightDecay: 1e-4, Seed: 1}
}

// Name implements Suggester.
func (g *GCMC) Name() string { return "GCMC" }

func (g *GCMC) encode(t *ag.Tape) (*ag.Node, *ag.Node) {
	p0 := t.ReLU(g.patFC.Apply(t, t.Const(g.trainX)))
	d0 := t.ReLU(g.drugFC.Apply(t, t.Const(g.drugFeat)))
	// One graph-convolution layer per direction with transform+ReLU.
	p1 := t.ReLU(g.convP.Apply(t, t.SpMM(g.l2r, d0)))
	d1 := t.ReLU(g.convD.Apply(t, t.SpMM(g.r2l, p0)))
	return t.Add(p0, p1), t.Add(d0, d1)
}

// Fit implements Suggester.
func (g *GCMC) Fit(d *dataset.Dataset) {
	g.prepare(d, g.Seed)
	rng := rand.New(rand.NewSource(g.Seed))
	g.patFC = nn.NewLinear(rng, &g.params, d.X.Cols(), g.Hidden)
	g.drugFC = nn.NewLinear(rng, &g.params, g.drugFeat.Cols(), g.Hidden)
	g.convP = nn.NewLinear(rng, &g.params, g.Hidden, g.Hidden)
	g.convD = nn.NewLinear(rng, &g.params, g.Hidden, g.Hidden)
	g.bilinear = g.params.Register(mat.GlorotUniform(rng, g.Hidden, g.Hidden))
	g.trainLoop(g.Epochs, g.LR, g.WeightDecay, func(t *ag.Tape) *ag.Node {
		ps, vs, y := g.samplePairs()
		hp, hd := g.encode(t)
		// Bilinear decode: (h_p Q) · h_d.
		hq := t.MatMul(t.GatherRows(hp, ps), t.Param(g.bilinear))
		logits := t.RowDot(hq, t.GatherRows(hd, vs))
		return t.BCEWithLogits(logits, y)
	})
}

// Scores implements Suggester. Unobserved patients have no incident
// links, so their message aggregation is the zero vector; running the
// convolution on zeros keeps their representation in the same space
// the decoder was trained in.
func (g *GCMC) Scores(patients []int) *mat.Dense {
	t := ag.NewTape()
	_, hd := g.encode(t)
	p0 := t.ReLU(g.patFC.Apply(t, t.Const(g.d.Rows(patients))))
	zeroAgg := t.Const(mat.New(len(patients), g.Hidden))
	p1 := t.ReLU(g.convP.Apply(t, zeroAgg))
	hp := t.Add(p0, p1)
	hq := mat.MatMul(hp.Value, g.bilinear)
	out := mat.MatMulTransB(hq, hd.Value)
	applySigmoid(out)
	return out
}

// BiparGCN is Jin et al.'s two-tower bipartite GCN: structurally
// identical patient-oriented and drug-oriented networks with separate
// parameters, two propagation layers with transforms, dot-product
// decoding.
type BiparGCN struct {
	Hidden      int
	Layers      int
	Epochs      int
	LR          float64
	WeightDecay float64
	Seed        int64

	gnnBase
	patFC, drugFC *nn.Linear
	patConv       []*nn.Linear
	drugConv      []*nn.Linear
}

// NewBiparGCN returns the baseline with the experiments'
// configuration.
func NewBiparGCN() *BiparGCN {
	return &BiparGCN{Hidden: 64, Layers: 2, Epochs: 250, LR: 0.01, WeightDecay: 1e-4, Seed: 1}
}

// Name implements Suggester.
func (b *BiparGCN) Name() string { return "Bipar-GCN" }

func (b *BiparGCN) encode(t *ag.Tape) (*ag.Node, *ag.Node) {
	hp := t.ReLU(b.patFC.Apply(t, t.Const(b.trainX)))
	hd := t.ReLU(b.drugFC.Apply(t, t.Const(b.drugFeat)))
	for l := 0; l < b.Layers; l++ {
		hpNext := t.ReLU(b.patConv[l].Apply(t, t.ConcatCols(hp, t.SpMM(b.l2r, hd))))
		hdNext := t.ReLU(b.drugConv[l].Apply(t, t.ConcatCols(hd, t.SpMM(b.r2l, hp))))
		hp, hd = hpNext, hdNext
	}
	return hp, hd
}

// Fit implements Suggester.
func (b *BiparGCN) Fit(d *dataset.Dataset) {
	b.prepare(d, b.Seed)
	rng := rand.New(rand.NewSource(b.Seed))
	b.patFC = nn.NewLinear(rng, &b.params, d.X.Cols(), b.Hidden)
	b.drugFC = nn.NewLinear(rng, &b.params, b.drugFeat.Cols(), b.Hidden)
	for l := 0; l < b.Layers; l++ {
		b.patConv = append(b.patConv, nn.NewLinear(rng, &b.params, 2*b.Hidden, b.Hidden))
		b.drugConv = append(b.drugConv, nn.NewLinear(rng, &b.params, 2*b.Hidden, b.Hidden))
	}
	b.trainLoop(b.Epochs, b.LR, b.WeightDecay, func(t *ag.Tape) *ag.Node {
		ps, vs, y := b.samplePairs()
		hp, hd := b.encode(t)
		logits := t.RowDot(t.GatherRows(hp, ps), t.GatherRows(hd, vs))
		return t.BCEWithLogits(logits, y)
	})
}

// Scores implements Suggester. Unobserved patients run through the full
// patient tower with zero neighbourhood aggregations (they have no
// links yet), which keeps their representation in the space the
// decoder was trained in.
func (b *BiparGCN) Scores(patients []int) *mat.Dense {
	t := ag.NewTape()
	_, hd := b.encode(t)
	hp := t.ReLU(b.patFC.Apply(t, t.Const(b.d.Rows(patients))))
	for l := 0; l < b.Layers; l++ {
		zeroAgg := t.Const(mat.New(len(patients), b.Hidden))
		hp = t.ReLU(b.patConv[l].Apply(t, t.ConcatCols(hp, zeroAgg)))
	}
	out := mat.MatMulTransB(hp.Value, hd.Value)
	applySigmoid(out)
	return out
}

package baselines

import (
	"math/rand"

	"dssddi/internal/ag"
	"dssddi/internal/dataset"
	"dssddi/internal/graph"
	"dssddi/internal/mat"
	"dssddi/internal/nn"
	"dssddi/internal/optim"
)

// SafeDrug is the safety-regularised multi-label model of Yang et al.
// (IJCAI 2021), simplified per DESIGN.md: the MPNN molecule encoder is
// replaced by fixed random molecular fingerprints, the patient encoder
// is a GRU over visit medicine vectors when visit history exists
// (MIMIC) and an MLP over questionnaire features otherwise, and the
// original's DDI-controlled loss is kept as an explicit penalty on
// jointly recommending antagonistic drug pairs.
type SafeDrug struct {
	Hidden      int
	Epochs      int
	LR          float64
	DDIWeight   float64
	WeightDecay float64
	Seed        int64
	// VisitHistory, when non-nil, provides per-patient medicine
	// multi-hot sequences (index-aligned with the dataset's patients).
	VisitHistory [][][]int

	d       *dataset.Dataset
	params  nn.Params
	encoder *nn.MLP
	gru     *nn.GRUCell
	readout *nn.Linear
	molFP   *mat.Dense // drugs x Hidden fixed fingerprints
	antU    []int
	antV    []int
	rng     *rand.Rand
}

// NewSafeDrug returns the baseline with the experiments'
// configuration.
func NewSafeDrug() *SafeDrug {
	return &SafeDrug{Hidden: 64, Epochs: 200, LR: 0.01, DDIWeight: 0.05, WeightDecay: 1e-4, Seed: 1}
}

// Name implements Suggester.
func (s *SafeDrug) Name() string { return "SafeDrug" }

// Fit implements Suggester.
func (s *SafeDrug) Fit(d *dataset.Dataset) {
	s.d = d
	s.rng = rand.New(rand.NewSource(s.Seed))
	rng := rand.New(rand.NewSource(s.Seed))
	nD := d.NumDrugs()
	s.molFP = mat.RandNormal(rng, nD, s.Hidden, 0.3)
	if s.VisitHistory != nil {
		s.gru = nn.NewGRUCell(rng, &s.params, nD, s.Hidden)
	} else {
		s.encoder = nn.NewMLP(rng, &s.params, []int{d.X.Cols(), s.Hidden, s.Hidden}, nn.ActReLU, false)
	}
	s.readout = nn.NewLinear(rng, &s.params, s.Hidden, nD)
	// Collect antagonistic pairs for the safety penalty.
	el := d.DDI.Edges()
	for i := range el.U {
		if el.S[i] == graph.Antagonism {
			s.antU = append(s.antU, el.U[i])
			s.antV = append(s.antV, el.V[i])
		}
	}
	y := d.Labels(d.Train)
	opt := optim.NewAdam(s.LR)
	opt.WeightDecay = s.WeightDecay
	for e := 0; e < s.Epochs; e++ {
		t := ag.NewTape()
		rep := s.encodePatients(t, d.Train)
		logits := s.readout.Apply(t, rep)
		loss := t.BCEWithLogits(logits, y)
		if len(s.antU) > 0 && s.DDIWeight > 0 {
			// DDI penalty: mean over antagonistic pairs of p_u * p_v.
			probs := t.Sigmoid(logits)
			// Gather columns via transpose-free trick: probs is
			// (n x drugs); use per-pair column dot products through
			// GatherRows on the transpose. Cheaper: build penalty from
			// Hadamard of gathered columns — implemented by gathering
			// rows of probsᵀ is not available on the tape, so compute
			// with column masks instead.
			maskU := columnMask(s.d.NumDrugs(), s.antU)
			maskV := columnMask(s.d.NumDrugs(), s.antV)
			pu := t.MatMul(probs, t.Const(maskU))
			pv := t.MatMul(probs, t.Const(maskV))
			pen := t.Mean(t.Hadamard(pu, pv))
			loss = t.Add(loss, t.Scale(pen, s.DDIWeight))
		}
		t.Backward(loss)
		grads := nn.CollectGrads(t, &s.params)
		optim.ClipGlobalNorm(grads, 5)
		opt.Step(s.params.All(), grads)
	}
}

// columnMask builds a (drugs x len(cols)) selection matrix whose k-th
// column is the one-hot of cols[k].
func columnMask(drugs int, cols []int) *mat.Dense {
	m := mat.New(drugs, len(cols))
	for k, c := range cols {
		m.Set(c, k, 1)
	}
	return m
}

// encodePatients produces patient representations on the tape: GRU
// over the visit medicine history when available, MLP over features
// otherwise.
func (s *SafeDrug) encodePatients(t *ag.Tape, patients []int) *ag.Node {
	if s.gru == nil {
		return s.encoder.Apply(t, t.Const(s.d.Rows(patients)))
	}
	// Align visit sequences to a common length by left-padding with
	// zero vectors.
	maxLen := 1
	for _, p := range patients {
		if l := len(s.VisitHistory[p]); l > maxLen {
			maxLen = l
		}
	}
	nD := s.d.NumDrugs()
	steps := make([]*ag.Node, maxLen)
	for step := 0; step < maxLen; step++ {
		x := mat.New(len(patients), nD)
		for i, p := range patients {
			h := s.VisitHistory[p]
			offset := maxLen - len(h)
			if step >= offset {
				for _, med := range h[step-offset] {
					x.Set(i, med, 1)
				}
			}
		}
		steps[step] = t.Const(x)
	}
	return s.gru.Run(t, steps)
}

// Scores implements Suggester: sigmoid readout modulated by fingerprint
// similarity (the local bipartite module of the original).
func (s *SafeDrug) Scores(patients []int) *mat.Dense {
	t := ag.NewTape()
	rep := s.encodePatients(t, patients)
	logits := s.readout.Apply(t, rep)
	out := logits.Value.Clone()
	applySigmoid(out)
	return out
}

// CauseRec is Zhang et al.'s counterfactual recommendation model
// (SIGIR 2021), simplified per DESIGN.md: patient "behaviour tokens"
// are the feature dimensions (or visit medicine vectors on MIMIC);
// counterfactual samples replace a random subset of dispensable tokens
// with cohort means, and training adds a consistency loss between
// factual and counterfactual representations on top of the BCE
// objective.
type CauseRec struct {
	Hidden      int
	Epochs      int
	LR          float64
	ReplaceFrac float64
	ConsistW    float64
	WeightDecay float64
	Seed        int64

	d       *dataset.Dataset
	params  nn.Params
	encoder *nn.MLP
	readout *nn.Linear
	mean    []float64
	rng     *rand.Rand
}

// NewCauseRec returns the baseline with the experiments'
// configuration.
func NewCauseRec() *CauseRec {
	return &CauseRec{Hidden: 64, Epochs: 200, LR: 0.01, ReplaceFrac: 0.3, ConsistW: 0.5, WeightDecay: 1e-4, Seed: 1}
}

// Name implements Suggester.
func (c *CauseRec) Name() string { return "CauseRec" }

// Fit implements Suggester.
func (c *CauseRec) Fit(d *dataset.Dataset) {
	c.d = d
	c.rng = rand.New(rand.NewSource(c.Seed))
	rng := rand.New(rand.NewSource(c.Seed))
	c.encoder = nn.NewMLP(rng, &c.params, []int{d.X.Cols(), c.Hidden, c.Hidden}, nn.ActReLU, false)
	c.readout = nn.NewLinear(rng, &c.params, c.Hidden, d.NumDrugs())

	x := d.Rows(d.Train)
	y := d.Labels(d.Train)
	// Cohort means for token replacement.
	c.mean = make([]float64, x.Cols())
	for i := 0; i < x.Rows(); i++ {
		for j, v := range x.Row(i) {
			c.mean[j] += v
		}
	}
	for j := range c.mean {
		c.mean[j] /= float64(x.Rows())
	}

	opt := optim.NewAdam(c.LR)
	opt.WeightDecay = c.WeightDecay
	for e := 0; e < c.Epochs; e++ {
		xcf := c.counterfactual(x)
		t := ag.NewTape()
		rep := c.encoder.Apply(t, t.Const(x))
		logits := c.readout.Apply(t, rep)
		loss := t.BCEWithLogits(logits, y)
		// Counterfactual consistency: out-of-interest replacements must
		// not change the representation much.
		repCF := c.encoder.Apply(t, t.Const(xcf))
		diff := t.Sub(rep, repCF)
		consist := t.Mean(t.Hadamard(diff, diff))
		loss = t.Add(loss, t.Scale(consist, c.ConsistW))
		t.Backward(loss)
		grads := nn.CollectGrads(t, &c.params)
		optim.ClipGlobalNorm(grads, 5)
		opt.Step(c.params.All(), grads)
	}
}

// counterfactual replaces a random ReplaceFrac of each row's features
// with the cohort mean (the "dispensable concept replacement").
func (c *CauseRec) counterfactual(x *mat.Dense) *mat.Dense {
	out := x.Clone()
	nRep := int(c.ReplaceFrac * float64(x.Cols()))
	for i := 0; i < out.Rows(); i++ {
		row := out.Row(i)
		for _, j := range c.rng.Perm(x.Cols())[:nRep] {
			row[j] = c.mean[j]
		}
	}
	return out
}

// Scores implements Suggester.
func (c *CauseRec) Scores(patients []int) *mat.Dense {
	t := ag.NewTape()
	rep := c.encoder.Apply(t, t.Const(c.d.Rows(patients)))
	logits := c.readout.Apply(t, rep)
	out := logits.Value.Clone()
	applySigmoid(out)
	return out
}

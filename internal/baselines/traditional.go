package baselines

import (
	"math"
	"math/rand"

	"dssddi/internal/dataset"
	"dssddi/internal/mat"
)

// UserSim is the paper's naive similarity baseline (Eq. 20): the score
// of drug v for an unobserved patient is the cosine-similarity-weighted
// average of observed patients' medication use.
type UserSim struct {
	d *dataset.Dataset
}

// NewUserSim returns the baseline.
func NewUserSim() *UserSim { return &UserSim{} }

// Name implements Suggester.
func (u *UserSim) Name() string { return "UserSim" }

// Fit implements Suggester (UserSim is non-parametric; it just keeps
// the dataset).
func (u *UserSim) Fit(d *dataset.Dataset) { u.d = d }

// Scores implements Suggester: YU = cosine(XU, XO) · YO.
func (u *UserSim) Scores(patients []int) *mat.Dense {
	d := u.d
	out := mat.New(len(patients), d.NumDrugs())
	for i, p := range patients {
		xi := d.X.Row(p)
		srow := out.Row(i)
		for _, o := range d.Train {
			sim := mat.CosineSimilarity(xi, d.X.Row(o))
			if sim <= 0 {
				continue
			}
			for v := 0; v < d.NumDrugs(); v++ {
				if d.Y.At(o, v) == 1 {
					srow[v] += sim
				}
			}
		}
	}
	return out
}

// logistic is a binary logistic-regression classifier trained by
// full-batch gradient descent with L2 regularisation; the building
// block of ECC.
type logistic struct {
	w []float64
	b float64
}

// fitLogistic trains on rows x with binary targets y.
func fitLogistic(x [][]float64, y []float64, epochs int, lr, l2 float64) *logistic {
	if len(x) == 0 {
		return &logistic{w: nil}
	}
	d := len(x[0])
	m := &logistic{w: make([]float64, d)}
	n := float64(len(x))
	gw := make([]float64, d)
	for e := 0; e < epochs; e++ {
		for j := range gw {
			gw[j] = l2 * m.w[j]
		}
		var gb float64
		for i, xi := range x {
			p := mat.Sigmoid(m.score(xi))
			diff := (p - y[i]) / n
			for j, xv := range xi {
				gw[j] += diff * xv
			}
			gb += diff
		}
		for j := range m.w {
			m.w[j] -= lr * gw[j]
		}
		m.b -= lr * gb
	}
	return m
}

func (m *logistic) score(x []float64) float64 {
	if m.w == nil {
		return 0
	}
	return mat.Dot(m.w, x) + m.b
}

// ECC is the Ensemble of Classifier Chains baseline (Read et al.,
// 2009) with logistic-regression base classifiers: each chain orders
// the labels randomly and feeds earlier predictions as extra features
// to later classifiers; the ensemble averages chain scores.
type ECC struct {
	Chains int
	Epochs int
	LR     float64
	Seed   int64

	d      *dataset.Dataset
	orders [][]int
	models [][]*logistic // [chain][position]
}

// NewECC returns the baseline with the configuration used in the
// experiments.
func NewECC() *ECC { return &ECC{Chains: 3, Epochs: 60, LR: 0.5, Seed: 1} }

// Name implements Suggester.
func (e *ECC) Name() string { return "ECC" }

// Fit implements Suggester.
func (e *ECC) Fit(d *dataset.Dataset) {
	e.d = d
	rng := rand.New(rand.NewSource(e.Seed))
	nD := d.NumDrugs()
	xBase := make([][]float64, len(d.Train))
	for i, p := range d.Train {
		xBase[i] = d.X.Row(p)
	}
	e.orders = make([][]int, e.Chains)
	e.models = make([][]*logistic, e.Chains)
	for c := 0; c < e.Chains; c++ {
		e.orders[c] = rng.Perm(nD)
		e.models[c] = make([]*logistic, nD)
		// Chain features grow with each position: [x, y_prev...].
		feats := make([][]float64, len(xBase))
		for i := range feats {
			feats[i] = append([]float64(nil), xBase[i]...)
		}
		for pos, label := range e.orders[c] {
			y := make([]float64, len(d.Train))
			for i, p := range d.Train {
				y[i] = e.d.Y.At(p, label)
			}
			e.models[c][pos] = fitLogistic(feats, y, e.Epochs, e.LR, 1e-3)
			// Append TRUE labels during training (teacher forcing, as
			// in the original CC formulation).
			for i := range feats {
				feats[i] = append(feats[i], y[i])
			}
		}
	}
}

// Scores implements Suggester: chains are rolled out with predicted
// probabilities as the chained features.
func (e *ECC) Scores(patients []int) *mat.Dense {
	d := e.d
	out := mat.New(len(patients), d.NumDrugs())
	for i, p := range patients {
		for c := 0; c < e.Chains; c++ {
			feats := append([]float64(nil), d.X.Row(p)...)
			for pos, label := range e.orders[c] {
				prob := mat.Sigmoid(e.models[c][pos].score(feats))
				out.Add(i, label, prob/float64(e.Chains))
				feats = append(feats, prob)
			}
		}
	}
	return out
}

// SVM is the linear one-vs-rest support-vector baseline: one hinge-loss
// classifier per drug trained with Pegasos-style SGD; ranking scores
// are the raw margins.
type SVM struct {
	Epochs int
	Lambda float64
	Seed   int64

	d *dataset.Dataset
	w [][]float64
	b []float64
}

// NewSVM returns the baseline with the configuration used in the
// experiments.
func NewSVM() *SVM { return &SVM{Epochs: 40, Lambda: 1e-3, Seed: 1} }

// Name implements Suggester.
func (s *SVM) Name() string { return "SVM" }

// Fit implements Suggester.
func (s *SVM) Fit(d *dataset.Dataset) {
	s.d = d
	rng := rand.New(rand.NewSource(s.Seed))
	nD := d.NumDrugs()
	dim := d.X.Cols()
	s.w = make([][]float64, nD)
	s.b = make([]float64, nD)
	for v := 0; v < nD; v++ {
		w := make([]float64, dim)
		var b float64
		step := 0
		for e := 0; e < s.Epochs; e++ {
			perm := rng.Perm(len(d.Train))
			for _, pi := range perm {
				p := d.Train[pi]
				step++
				eta := 1 / (s.Lambda * float64(step))
				yi := -1.0
				if d.Y.At(p, v) == 1 {
					yi = 1
				}
				xi := d.X.Row(p)
				margin := yi * (mat.Dot(w, xi) + b)
				for j := range w {
					w[j] *= 1 - eta*s.Lambda
				}
				if margin < 1 {
					for j, xv := range xi {
						w[j] += eta * yi * xv
					}
					b += eta * yi * 0.1
				}
			}
		}
		s.w[v] = w
		s.b[v] = b
	}
}

// Scores implements Suggester.
func (s *SVM) Scores(patients []int) *mat.Dense {
	d := s.d
	out := mat.New(len(patients), d.NumDrugs())
	for i, p := range patients {
		xi := d.X.Row(p)
		for v := 0; v < d.NumDrugs(); v++ {
			out.Set(i, v, mat.Dot(s.w[v], xi)+s.b[v])
		}
	}
	return out
}

// sigmoidSafe keeps scores finite for ranking.
func sigmoidSafe(x float64) float64 {
	if math.IsNaN(x) {
		return 0
	}
	return mat.Sigmoid(x)
}

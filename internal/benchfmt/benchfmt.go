// Package benchfmt defines the machine-readable benchmark record
// shared by cmd/benchtab (writer) and cmd/benchdiff (reader). Keeping
// one definition prevents the two ends of the CI alloc-regression gate
// from silently drifting apart.
package benchfmt

// Schema identifies the current report format.
const Schema = "dssddi-bench/v2"

// Section is one timed unit of table/figure work in the report.
type Section struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Allocs  uint64  `json:"allocs"`
}

// TrainBench is one training/serving throughput measurement, taken
// with kernel workers pinned to 1 so allocs/op is deterministic and
// comparable across machines.
type TrainBench struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	Seconds     float64 `json:"seconds"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// Report is the full benchmark record CI archives per run.
type Report struct {
	Schema       string       `json:"schema"`
	Profile      string       `json:"profile"`
	Workers      int          `json:"workers"`
	GoMaxProcs   int          `json:"go_max_procs"`
	Seed         int64        `json:"seed"`
	Training     []TrainBench `json:"training,omitempty"`
	Sections     []Section    `json:"sections,omitempty"`
	TotalSeconds float64      `json:"total_seconds"`
}

// Package benchfmt defines the machine-readable benchmark record
// shared by cmd/benchtab (writer) and cmd/benchdiff (reader). Keeping
// one definition prevents the two ends of the CI alloc-regression gate
// from silently drifting apart.
package benchfmt

// Schema identifies the current report format.
const Schema = "dssddi-bench/v2"

// Section is one timed unit of table/figure work in the report.
type Section struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Allocs  uint64  `json:"allocs"`
}

// TrainBench is one training/serving throughput measurement, taken
// with kernel workers pinned to 1 so allocs/op is deterministic and
// comparable across machines.
type TrainBench struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	Seconds     float64 `json:"seconds"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// ServeBench is one HTTP serving throughput measurement, recorded by
// cmd/loadgen against a running dssddi-serve instance.
type ServeBench struct {
	Name        string `json:"name"` // e.g. "suggest"
	Concurrency int    `json:"concurrency"`
	Requests    int    `json:"requests"`
	// Errors counts every failed request; TransportErrors is the
	// subset that never got an HTTP response (connection refused,
	// reset, timeout) — the dropped-request signal the rolling-reload
	// smoke tests assert is zero.
	Errors          int `json:"errors"`
	TransportErrors int `json:"transport_errors,omitempty"`
	// StatusCounts breaks the run down by HTTP status code (keyed by
	// the decimal code, plus "transport" for requests that never got a
	// response). Chaos runs read it to assert the failure mix — e.g.
	// "503s are fine, 500s are not".
	StatusCounts map[string]int `json:"status_counts,omitempty"`
	Seconds      float64        `json:"seconds"`
	RPS          float64        `json:"rps"`
	P50Ms        float64        `json:"p50_ms"`
	P90Ms        float64        `json:"p90_ms"`
	P99Ms        float64        `json:"p99_ms"`
	// CacheHitRate and AvgBatchSize come from the server's /metricsz
	// after the run (0 when unavailable).
	CacheHitRate float64 `json:"cache_hit_rate"`
	AvgBatchSize float64 `json:"avg_batch_size"`
	// Precision, ModelBytes and RegistryBytes are scraped from the
	// server's /metricsz memory section after the run: the serving
	// precision the entry ran at and the explicit resident byte
	// accounting of the model blobs and registry embeddings (measured
	// from the structures, not runtime.MemStats — so f64/f32/int8
	// entries compare exactly).
	Precision     string `json:"precision,omitempty"`
	ModelBytes    int64  `json:"model_bytes,omitempty"`
	RegistryBytes int64  `json:"registry_bytes,omitempty"`
}

// PrecisionStats characterizes one quantized precision against the
// float64 accuracy oracle over a sample of patients: the worst
// absolute score divergence across every (patient, drug) pair and the
// fraction of patients whose top-K ranking survives quantization
// unchanged. cmd/benchdiff -precision-gate hard-fails a report whose
// f32 entry exceeds tolerance on either number.
type PrecisionStats struct {
	Precision string `json:"precision"` // "f32" or "int8-experimental"
	Patients  int    `json:"patients"`
	Drugs     int    `json:"drugs"`
	K         int    `json:"k"`
	// MaxAbsDelta is max over sampled (patient, drug) pairs of
	// |score_quantized - score_f64|.
	MaxAbsDelta float64 `json:"max_abs_delta"`
	// RankingInvariance is the fraction of sampled patients whose
	// top-K drug sets match the f64 oracle's exactly (as sets; a
	// reordering within the set still counts as invariant only when
	// the ordered lists match).
	RankingInvariance float64 `json:"ranking_invariance"`
}

// ReplicationStats records the replication outcome of a cluster run:
// the router's replication counters scraped after the workload, plus
// loadgen's own post-run registry audit. LostRegistrations is the
// hard-gated number — cmd/benchdiff fails any report where it is
// nonzero, because a lost acknowledged registration is clinical state
// silently gone.
type ReplicationStats struct {
	ReplicaReads       int64 `json:"replica_reads"`
	ReadRepairs        int64 `json:"read_repairs"`
	ReplicationFanouts int64 `json:"replication_fanouts"`
	QuorumFailures     int64 `json:"quorum_failures"`
	AntiEntropySyncs   int64 `json:"anti_entropy_syncs"`
	AntiEntropyRecords int64 `json:"anti_entropy_records"`
	PinnedUnavailable  int64 `json:"pinned_unavailable"`
	// VerifiedRegistrations / LostRegistrations come from loadgen's
	// -verify-registry pass: every id acknowledged during the run is
	// re-read afterwards; lost = acknowledged but no longer served.
	VerifiedRegistrations int `json:"verified_registrations"`
	LostRegistrations     int `json:"lost_registrations"`
}

// Report is the full benchmark record CI archives per run.
type Report struct {
	Schema     string `json:"schema"`
	Profile    string `json:"profile"`
	Workers    int    `json:"workers"`
	GoMaxProcs int    `json:"go_max_procs"`
	Seed       int64  `json:"seed"`
	// SIMD records the kernel dispatch level active when the report
	// was produced (avx512 / avx2 / generic) — quantized throughput
	// numbers are meaningless to compare without it.
	SIMD        string            `json:"simd,omitempty"`
	Training    []TrainBench      `json:"training,omitempty"`
	Serving     []ServeBench      `json:"serving,omitempty"`
	Sections    []Section         `json:"sections,omitempty"`
	Replication *ReplicationStats `json:"replication,omitempty"`
	// Precisions carries the divergence characterization of each
	// quantized precision vs the f64 oracle (cmd/dssddi precision).
	Precisions   []PrecisionStats `json:"precisions,omitempty"`
	TotalSeconds float64          `json:"total_seconds"`
}

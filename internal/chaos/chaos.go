// Package chaos injects controlled faults into HTTP traffic so the
// serving stack's failure handling can be exercised deterministically
// in tests and smoke scripts instead of waiting for production to do
// it. Two injection points cover the two classes of failure:
//
//   - RoundTripper wraps an http.RoundTripper and misbehaves at the
//     application layer: added latency, synthetic 5xx responses,
//     connection-reset errors, and response bodies that die midway.
//     Use it to harden a single client or test a retry loop.
//
//   - Proxy is a TCP-level man-in-the-middle for one backend: real
//     sockets, real RSTs, real half-written responses. Use it between
//     the router and a backend to prove the fleet survives a flaky
//     network, not just a polite error return.
//
// All randomness is seeded, so a failing chaos run reproduces.
package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Faults is one fault profile. Probabilities are per request
// (RoundTripper) or per connection (Proxy), in [0, 1]; zero values
// inject nothing.
type Faults struct {
	// Latency (± Jitter) is added before the request or connection
	// proceeds.
	Latency time.Duration
	Jitter  time.Duration
	// ErrorProb returns a synthetic 503 without touching the wire
	// (RoundTripper only — a TCP proxy has no notion of a response it
	// didn't receive).
	ErrorProb float64
	// ResetProb fails the exchange as a connection reset: an error
	// from RoundTrip, a real RST from Proxy.
	ResetProb float64
	// DropProb lets the response start and then kills it mid-body —
	// the nastiest failure for clients, who have already seen a
	// status code and headers.
	DropProb float64
}

// roll decides one exchange's fate from the profile. The order is
// fixed (error, reset, drop) so a profile with several probabilities
// behaves predictably.
func (f Faults) roll(rng *rand.Rand) (delay time.Duration, verdict int) {
	delay = f.Latency
	if f.Jitter > 0 {
		delay += time.Duration(rng.Int63n(int64(2*f.Jitter))) - f.Jitter
		if delay < 0 {
			delay = 0
		}
	}
	switch p := rng.Float64(); {
	case f.ErrorProb > 0 && p < f.ErrorProb:
		verdict = verdictError
	case f.ResetProb > 0 && p < f.ErrorProb+f.ResetProb:
		verdict = verdictReset
	case f.DropProb > 0 && p < f.ErrorProb+f.ResetProb+f.DropProb:
		verdict = verdictDrop
	}
	return delay, verdict
}

const (
	verdictNone = iota
	verdictError
	verdictReset
	verdictDrop
)

// ErrInjectedReset is the error a RoundTripper reset produces. It is
// a distinct type so tests can tell injected faults from real ones.
var ErrInjectedReset = fmt.Errorf("chaos: injected connection reset")

// RoundTripper wraps Base with fault injection. Safe for concurrent
// use; SetFaults may be called while requests are in flight.
type RoundTripper struct {
	Base http.RoundTripper

	mu     sync.Mutex
	faults Faults
	rng    *rand.Rand

	// Counters record what was actually injected.
	Errors atomic.Int64
	Resets atomic.Int64
	Drops  atomic.Int64
}

// NewRoundTripper wraps base (nil = http.DefaultTransport) with the
// given fault profile. The seed makes the injection sequence
// reproducible.
func NewRoundTripper(base http.RoundTripper, faults Faults, seed int64) *RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &RoundTripper{Base: base, faults: faults, rng: rand.New(rand.NewSource(seed))}
}

// SetFaults swaps the fault profile; in-flight requests keep the
// profile they rolled under.
func (c *RoundTripper) SetFaults(f Faults) {
	c.mu.Lock()
	c.faults = f
	c.mu.Unlock()
}

func (c *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	c.mu.Lock()
	delay, verdict := c.faults.roll(c.rng)
	c.mu.Unlock()
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	switch verdict {
	case verdictError:
		c.Errors.Add(1)
		return &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Status:     "503 Service Unavailable (chaos)",
			Proto:      req.Proto, ProtoMajor: req.ProtoMajor, ProtoMinor: req.ProtoMinor,
			Header:  http.Header{"Retry-After": []string{"1"}},
			Body:    io.NopCloser(strings.NewReader(`{"error":"chaos: injected 503"}`)),
			Request: req,
		}, nil
	case verdictReset:
		c.Resets.Add(1)
		return nil, ErrInjectedReset
	}
	resp, err := c.Base.RoundTrip(req)
	if err != nil || verdict != verdictDrop {
		return resp, err
	}
	c.Drops.Add(1)
	// Let roughly half the advertised body through, then fail the
	// read — the client has already committed to the status line.
	limit := resp.ContentLength / 2
	if limit <= 0 {
		limit = 256
	}
	resp.Body = &droppedBody{rc: resp.Body, remaining: limit}
	return resp, nil
}

// droppedBody reads up to remaining bytes and then fails.
type droppedBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (d *droppedBody) Read(p []byte) (int, error) {
	if d.remaining <= 0 {
		return 0, fmt.Errorf("chaos: injected mid-body drop: %w", io.ErrUnexpectedEOF)
	}
	if int64(len(p)) > d.remaining {
		p = p[:d.remaining]
	}
	n, err := d.rc.Read(p)
	d.remaining -= int64(n)
	return n, err
}

func (d *droppedBody) Close() error { return d.rc.Close() }

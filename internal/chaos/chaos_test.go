package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func backend(t *testing.T, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestRoundTripperPassThrough(t *testing.T) {
	ts := backend(t, "hello")
	client := &http.Client{Transport: NewRoundTripper(nil, Faults{}, 1)}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(got) != "hello" {
		t.Fatalf("passthrough: %d %q", resp.StatusCode, got)
	}
}

func TestRoundTripperInjectsErrors(t *testing.T) {
	ts := backend(t, "hello")
	rt := NewRoundTripper(nil, Faults{ErrorProb: 1}, 1)
	client := &http.Client{Transport: rt}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want injected 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("injected 503 missing Retry-After")
	}
	if rt.Errors.Load() != 1 {
		t.Fatalf("Errors = %d, want 1", rt.Errors.Load())
	}
}

func TestRoundTripperInjectsResets(t *testing.T) {
	ts := backend(t, "hello")
	rt := NewRoundTripper(nil, Faults{ResetProb: 1}, 1)
	client := &http.Client{Transport: rt}
	_, err := client.Get(ts.URL)
	if err == nil || !strings.Contains(err.Error(), "injected connection reset") {
		t.Fatalf("err = %v, want injected reset", err)
	}
	if rt.Resets.Load() != 1 {
		t.Fatalf("Resets = %d, want 1", rt.Resets.Load())
	}
}

func TestRoundTripperDropsBody(t *testing.T) {
	ts := backend(t, strings.Repeat("x", 64<<10))
	rt := NewRoundTripper(nil, Faults{DropProb: 1}, 1)
	client := &http.Client{Transport: rt}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drop fault must deliver the status first, got %d", resp.StatusCode)
	}
	got, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("read %d bytes with no error; body should die midway", len(got))
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
	if len(got) >= 64<<10 {
		t.Fatal("the whole body arrived despite the drop")
	}
	if rt.Drops.Load() != 1 {
		t.Fatalf("Drops = %d, want 1", rt.Drops.Load())
	}
}

func TestRoundTripperMixedProbabilities(t *testing.T) {
	ts := backend(t, "hello")
	rt := NewRoundTripper(nil, Faults{ErrorProb: 0.3, ResetProb: 0.3}, 42)
	client := &http.Client{Transport: rt}
	var ok, injected int
	for i := 0; i < 200; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			injected++
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			injected++
		} else {
			ok++
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	// With 60% total fault probability over 200 trials, both outcomes
	// must appear (p of all-one-way is astronomically small).
	if ok == 0 || injected == 0 {
		t.Fatalf("ok=%d injected=%d; mixed profile produced a constant outcome", ok, injected)
	}
	if rt.Errors.Load() == 0 || rt.Resets.Load() == 0 {
		t.Fatalf("Errors=%d Resets=%d; both fault kinds should fire", rt.Errors.Load(), rt.Resets.Load())
	}
}

func proxyClient() *http.Client {
	// No keep-alive: each request gets its own connection, so
	// per-connection faults map 1:1 onto requests.
	return &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   5 * time.Second,
	}
}

func TestProxyPassThrough(t *testing.T) {
	ts := backend(t, "hello")
	p, err := NewProxy("127.0.0.1:0", strings.TrimPrefix(ts.URL, "http://"), Faults{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	resp, err := proxyClient().Get("http://" + p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(got) != "hello" {
		t.Fatalf("through proxy: %d %q", resp.StatusCode, got)
	}
	if p.Connections.Load() == 0 {
		t.Fatal("proxy saw no connections")
	}
}

func TestProxyResets(t *testing.T) {
	ts := backend(t, "hello")
	p, err := NewProxy("127.0.0.1:0", strings.TrimPrefix(ts.URL, "http://"), Faults{ResetProb: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := proxyClient().Get("http://" + p.Addr()); err == nil {
		t.Fatal("request through always-reset proxy succeeded")
	}
	if p.Resets.Load() == 0 {
		t.Fatal("no resets recorded")
	}
}

func TestProxyDropsMidBody(t *testing.T) {
	ts := backend(t, strings.Repeat("x", 256<<10))
	p, err := NewProxy("127.0.0.1:0", strings.TrimPrefix(ts.URL, "http://"), Faults{DropProb: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	resp, err := proxyClient().Get("http://" + p.Addr())
	if err == nil {
		// The first bytes made it through; the body must then fail.
		defer resp.Body.Close()
		got, rerr := io.ReadAll(resp.Body)
		if rerr == nil && len(got) >= 256<<10 {
			t.Fatal("entire body survived a drop fault")
		}
	}
	if p.Drops.Load() == 0 {
		t.Fatal("no drops recorded")
	}
}

func TestProxyLatency(t *testing.T) {
	ts := backend(t, "hello")
	p, err := NewProxy("127.0.0.1:0", strings.TrimPrefix(ts.URL, "http://"),
		Faults{Latency: 80 * time.Millisecond}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	t0 := time.Now()
	resp, err := proxyClient().Get("http://" + p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if d := time.Since(t0); d < 80*time.Millisecond {
		t.Fatalf("request took %v, want >= 80ms injected latency", d)
	}
}

func TestProxySetFaultsLive(t *testing.T) {
	ts := backend(t, "hello")
	p, err := NewProxy("127.0.0.1:0", strings.TrimPrefix(ts.URL, "http://"), Faults{ResetProb: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := proxyClient().Get("http://" + p.Addr()); err == nil {
		t.Fatal("reset profile let a request through")
	}
	p.SetFaults(Faults{})
	resp, err := proxyClient().Get("http://" + p.Addr())
	if err != nil {
		t.Fatalf("after clearing faults: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after clearing faults: status %d", resp.StatusCode)
	}
}

package chaos

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is a fault-injecting TCP relay in front of one backend. It
// produces the failures a polite in-process wrapper cannot: real
// connection resets (RST via SO_LINGER 0), responses cut off after
// the first bytes are on the wire, and added network latency. Faults
// are rolled once per accepted connection, so an HTTP client that
// keeps a connection alive sees bursts of good and bad service — just
// like a real flaky link.
type Proxy struct {
	target string
	ln     net.Listener

	mu     sync.Mutex
	faults Faults
	rng    *rand.Rand

	connsMu sync.Mutex
	conns   map[net.Conn]struct{}

	wg     sync.WaitGroup
	closed atomic.Bool

	// Counters record what was actually injected.
	Connections atomic.Int64
	Resets      atomic.Int64
	Drops       atomic.Int64
}

// NewProxy listens on listen (e.g. "127.0.0.1:0") and relays every
// connection to target, applying the fault profile. The seed makes
// the injection sequence reproducible.
func NewProxy(listen, target string, faults Faults, seed int64) (*Proxy, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		target: target,
		ln:     ln,
		faults: faults,
		rng:    rand.New(rand.NewSource(seed)),
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address (host:port) — hand this to the
// router as the backend name.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetFaults swaps the fault profile; established connections keep the
// verdict they rolled at accept time.
func (p *Proxy) SetFaults(f Faults) {
	p.mu.Lock()
	p.faults = f
	p.mu.Unlock()
}

// Close stops accepting and tears down every live connection.
func (p *Proxy) Close() error {
	p.closed.Store(true)
	err := p.ln.Close()
	p.connsMu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.connsMu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.Connections.Add(1)
		p.track(c, true)
		p.wg.Add(1)
		go p.handle(c)
	}
}

func (p *Proxy) track(c net.Conn, add bool) {
	p.connsMu.Lock()
	if add {
		p.conns[c] = struct{}{}
	} else {
		delete(p.conns, c)
	}
	p.connsMu.Unlock()
}

// rstClose closes a TCP connection with SO_LINGER 0, so the peer sees
// a hard RST instead of a graceful FIN — indistinguishable from a
// crashed backend or a dropped NAT entry.
func rstClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

func (p *Proxy) handle(client net.Conn) {
	defer p.wg.Done()
	defer p.track(client, false)

	p.mu.Lock()
	delay, verdict := p.faults.roll(p.rng)
	p.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	// A TCP relay has no application layer to fabricate a 503 from;
	// treat an error verdict as a reset so ErrorProb still means
	// "this connection fails".
	if verdict == verdictError || verdict == verdictReset {
		p.Resets.Add(1)
		rstClose(client)
		return
	}

	upstream, err := net.Dial("tcp", p.target)
	if err != nil {
		rstClose(client)
		return
	}
	p.track(upstream, true)
	defer p.track(upstream, false)
	defer upstream.Close()
	defer client.Close()

	// Client -> upstream runs untouched; faults land on the response
	// path, where they hurt the most.
	go func() {
		io.Copy(upstream, client)
		if tc, ok := upstream.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()

	// Relay upstream -> client, re-rolling the dice per read burst.
	// HTTP clients keep connections alive, so a once-per-connection
	// roll would make a lucky connection immune forever; per-burst
	// rolls (one burst ≈ one response for this workload) keep every
	// exchange at risk, like a genuinely flaky link.
	buf := make([]byte, 32<<10)
	for {
		n, err := upstream.Read(buf)
		if n > 0 {
			switch verdict {
			case verdictError, verdictReset:
				// Destroy the response while the client is waiting on it.
				p.Resets.Add(1)
				rstClose(client)
				return
			case verdictDrop:
				// Let the status line and headers escape, then cut the wire.
				limit := 256 + int(p.dropJitter())
				if limit > n {
					limit = n
				}
				client.Write(buf[:limit])
				p.Drops.Add(1)
				rstClose(client)
				return
			}
			if _, werr := client.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
		verdict = p.reroll()
	}
}

func (p *Proxy) dropJitter() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Int63n(256)
}

// reroll draws a fresh verdict (ignoring latency) for the next burst
// on an established connection.
func (p *Proxy) reroll() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, verdict := p.faults.roll(p.rng)
	return verdict
}

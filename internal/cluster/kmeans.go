// Package cluster implements k-means clustering (Hartigan & Wong style
// Lloyd iterations with k-means++ seeding). The Medical Decision module
// clusters patients by their features to build the treatment matrix;
// the paper sets k to the number of chronic diseases in the cohort.
package cluster

import (
	"math"
	"math/rand"

	"dssddi/internal/mat"
)

// Result holds a clustering.
type Result struct {
	// Assign[i] is the cluster index of row i.
	Assign []int
	// Centroids is a k x d matrix of cluster centres.
	Centroids *mat.Dense
	// Inertia is the summed squared distance of points to their
	// centroids.
	Inertia float64
	// Iterations actually run.
	Iterations int
}

// KMeans clusters the rows of x into k clusters. maxIter bounds the
// Lloyd iterations (20 is plenty for the cohort sizes here). The rng
// drives k-means++ seeding, making runs reproducible.
func KMeans(rng *rand.Rand, x *mat.Dense, k, maxIter int) Result {
	n, d := x.Rows(), x.Cols()
	if k <= 0 {
		panic("cluster: k must be positive")
	}
	if k > n {
		k = n
	}
	if maxIter <= 0 {
		maxIter = 20
	}
	centroids := seedPlusPlus(rng, x, k)
	assign := make([]int, n)
	var inertia float64
	iters := 0
	for iter := 0; iter < maxIter; iter++ {
		iters = iter + 1
		changed := false
		inertia = 0
		for i := 0; i < n; i++ {
			row := x.Row(i)
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				dist := sqDist(row, centroids.Row(c))
				if dist < bestD {
					best, bestD = c, dist
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			inertia += bestD
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		counts := make([]int, k)
		next := mat.New(k, d)
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			crow := next.Row(c)
			for j, v := range x.Row(i) {
				crow[j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point furthest from
				// its centroid.
				far, farD := 0, -1.0
				for i := 0; i < n; i++ {
					dist := sqDist(x.Row(i), centroids.Row(assign[i]))
					if dist > farD {
						far, farD = i, dist
					}
				}
				copy(next.Row(c), x.Row(far))
				continue
			}
			crow := next.Row(c)
			for j := range crow {
				crow[j] /= float64(counts[c])
			}
		}
		centroids = next
	}
	return Result{Assign: assign, Centroids: centroids, Inertia: inertia, Iterations: iters}
}

// seedPlusPlus picks k initial centroids with k-means++ (distance-
// squared weighted sampling).
func seedPlusPlus(rng *rand.Rand, x *mat.Dense, k int) *mat.Dense {
	n, d := x.Rows(), x.Cols()
	centroids := mat.New(k, d)
	first := rng.Intn(n)
	copy(centroids.Row(0), x.Row(first))
	minD := make([]float64, n)
	for i := range minD {
		minD[i] = sqDist(x.Row(i), centroids.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, v := range minD {
			total += v
		}
		var pick int
		if total == 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			for i, v := range minD {
				r -= v
				if r <= 0 {
					pick = i
					break
				}
			}
		}
		copy(centroids.Row(c), x.Row(pick))
		for i := range minD {
			if dist := sqDist(x.Row(i), centroids.Row(c)); dist < minD[i] {
				minD[i] = dist
			}
		}
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		diff := v - b[i]
		s += diff * diff
	}
	return s
}

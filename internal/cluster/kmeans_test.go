package cluster

import (
	"math/rand"
	"testing"

	"dssddi/internal/mat"
)

// blobs generates three well-separated Gaussian blobs.
func blobs(rng *rand.Rand, perBlob int) (*mat.Dense, []int) {
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	x := mat.New(3*perBlob, 2)
	truth := make([]int, 3*perBlob)
	for b, c := range centers {
		for i := 0; i < perBlob; i++ {
			r := b*perBlob + i
			x.Set(r, 0, c[0]+rng.NormFloat64()*0.5)
			x.Set(r, 1, c[1]+rng.NormFloat64()*0.5)
			truth[r] = b
		}
	}
	return x, truth
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, truth := blobs(rng, 30)
	res := KMeans(rng, x, 3, 50)
	// Every pair in the same true blob must share a cluster, and pairs
	// in different blobs must differ.
	for i := 0; i < x.Rows(); i++ {
		for j := i + 1; j < x.Rows(); j++ {
			same := truth[i] == truth[j]
			got := res.Assign[i] == res.Assign[j]
			if same != got {
				t.Fatalf("points %d,%d: same-blob=%v but same-cluster=%v", i, j, same, got)
			}
		}
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, _ := blobs(rng, 20)
	r1 := KMeans(rand.New(rand.NewSource(3)), x, 1, 50)
	r3 := KMeans(rand.New(rand.NewSource(3)), x, 3, 50)
	if r3.Inertia >= r1.Inertia {
		t.Fatalf("inertia should drop with more clusters: k1=%v k3=%v", r1.Inertia, r3.Inertia)
	}
}

func TestKMeansKLargerThanN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := mat.FromRows([][]float64{{0, 0}, {1, 1}})
	res := KMeans(rng, x, 5, 10)
	if len(res.Assign) != 2 {
		t.Fatal("assignment length wrong")
	}
	if res.Centroids.Rows() != 2 {
		t.Fatalf("k should clamp to n, got %d centroids", res.Centroids.Rows())
	}
}

func TestKMeansDeterministicWithSeed(t *testing.T) {
	x, _ := blobs(rand.New(rand.NewSource(5)), 15)
	a := KMeans(rand.New(rand.NewSource(7)), x, 3, 50)
	b := KMeans(rand.New(rand.NewSource(7)), x, 3, 50)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed should give identical clustering")
		}
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	x := mat.New(6, 2) // all-zero points
	res := KMeans(rand.New(rand.NewSource(8)), x, 2, 10)
	if res.Inertia != 0 {
		t.Fatalf("identical points should have 0 inertia, got %v", res.Inertia)
	}
}

func TestKMeansPanicsOnNonPositiveK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KMeans(rand.New(rand.NewSource(9)), mat.New(3, 2), 0, 10)
}

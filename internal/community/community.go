// Package community implements the Closest Truss Community (CTC) search
// of Huang et al. (VLDB J. 2015), which the paper's Medical Support
// module uses (its Algorithm 1) to extract the dense DDI subgraph
// around a set of suggested drugs:
//
//  1. truss-decompose the DDI graph,
//  2. connect the query drugs with an approximate Steiner tree under
//     the truss distance,
//  3. expand the tree into a dense subgraph G'0 whose edges have truss
//     number >= the tree's minimum truss,
//  4. iteratively delete the nodes furthest from the query while
//     maintaining the truss property,
//  5. return the iterate with the smallest query distance.
package community

import (
	"sort"

	"dssddi/internal/graph"
	"dssddi/internal/steiner"
	"dssddi/internal/truss"
)

// Options tunes the search.
type Options struct {
	// MaxExpand caps the size (in nodes) of the expanded subgraph G'0
	// before shrinking. The paper's n0. Defaults to 20.
	MaxExpand int
}

// Result is the closest dense subgraph found for a query.
type Result struct {
	// Nodes of the final community, sorted.
	Nodes []int
	// Edges of the final community (u < v), sorted.
	Edges [][2]int
	// Trussness is the minimum edge truss number of the community.
	Trussness int
	// Found reports whether the query nodes were connected at all; if
	// false, Nodes contains just the query.
	Found bool
}

// Search runs the CTC algorithm on g for the query node set. The graph
// is typically the interacting skeleton of the DDI graph.
func Search(g *graph.Undirected, query []int, opts Options) Result {
	if opts.MaxExpand <= 0 {
		opts.MaxExpand = 20
	}
	if len(query) == 0 {
		return Result{Found: false}
	}
	uniq := dedup(query)
	if len(uniq) == 1 && g.Degree(uniq[0]) == 0 {
		return Result{Nodes: uniq, Found: false}
	}

	// Step 1: truss decomposition on the whole graph.
	tn := truss.Decompose(g)

	// Step 2: Steiner tree under truss distance. Edges with higher
	// truss are "closer": weight = 1 + 1/(truss-1) keeps weights
	// positive and prefers dense edges (the truss distance of the
	// paper's reference).
	w := func(u, v int) float64 {
		t := tn[truss.MakeEdge(u, v)]
		if t < 2 {
			t = 2
		}
		return 1 + 1/float64(t-1)
	}
	tree := steiner.Approximate(g, uniq, w)
	if tree == nil {
		return Result{Nodes: uniq, Found: false}
	}

	// p' = min truss number over tree edges.
	var treeEdges []truss.Edge
	for _, e := range tree.Edges {
		treeEdges = append(treeEdges, truss.MakeEdge(e[0], e[1]))
	}
	pPrime := truss.MinTrussOn(tn, treeEdges)
	if pPrime < 2 {
		pPrime = 2
	}

	// Step 3: expand the tree into G'0 by BFS over adjacent edges with
	// truss(e) >= p', capped at MaxExpand nodes.
	inSub := make(map[int]bool)
	for n := range tree.Nodes {
		inSub[n] = true
	}
	frontier := keys(inSub)
	for len(inSub) < opts.MaxExpand && len(frontier) > 0 {
		var next []int
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				if inSub[v] {
					continue
				}
				if tn[truss.MakeEdge(u, v)] >= pPrime {
					inSub[v] = true
					next = append(next, v)
					if len(inSub) >= opts.MaxExpand {
						break
					}
				}
			}
			if len(inSub) >= opts.MaxExpand {
				break
			}
		}
		frontier = next
	}
	g0 := g.Subgraph(inSub)

	// Step 4: find the maximum connected p-truss containing the query
	// inside G'0; p stays fixed for the rest of the search.
	g0, p := maxConnectedTruss(g0, uniq)
	if g0 == nil {
		// Fall back to the Steiner tree itself.
		return treeResult(tree, tn, uniq)
	}

	// Step 5: iterative shrink — delete the furthest node while
	// maintaining the p-truss property and query connectivity, keeping
	// the iterate with the smallest query distance (Alg. 1, lines
	// 10-15).
	best := g0.Clone()
	bestDist := maxQueryDistance(best, uniq)
	cur := g0.Clone()
	queryMask := make(map[int]bool, len(uniq))
	for _, q := range uniq {
		queryMask[q] = true
	}
	for {
		qd := cur.QueryDistance(uniq)
		var nodes []int
		for v := 0; v < cur.N(); v++ {
			if cur.Degree(v) > 0 {
				nodes = append(nodes, v)
			}
		}
		if len(nodes) <= len(uniq) {
			break
		}
		// Find the furthest deletable (non-query) node.
		far, farD := -1, -1
		for _, v := range nodes {
			if queryMask[v] {
				continue
			}
			if qd[v] > farD {
				far, farD = v, qd[v]
			}
		}
		if far == -1 {
			break
		}
		next := cur.Clone()
		for _, nb := range next.Neighbors(far) {
			next.RemoveEdge(far, nb)
		}
		next = maintainTruss(next, uniq, p)
		if next == nil {
			break
		}
		cur = next
		if d := maxQueryDistance(cur, uniq); d <= bestDist {
			bestDist = d
			best = cur.Clone()
		}
	}

	return finish(best, tn, uniq)
}

// maintainTruss restores the p-truss property after node deletions by
// keeping only edges with truss >= p in the current subgraph, then
// returns the component containing the query; nil if the query is
// disconnected or any query node lost all its edges.
func maintainTruss(g *graph.Undirected, query []int, p int) *graph.Undirected {
	tn := truss.Decompose(g)
	sub := truss.MaxTruss(g, tn, p)
	if !sub.Connected(query) || !allInOneComponent(sub, query) {
		return nil
	}
	for _, q := range query {
		if sub.Degree(q) == 0 {
			return nil
		}
	}
	return componentOf(sub, query[0])
}

func treeResult(tree *steiner.Tree, tn map[truss.Edge]int, query []int) Result {
	res := Result{Found: true}
	for n := range tree.Nodes {
		res.Nodes = append(res.Nodes, n)
	}
	sort.Ints(res.Nodes)
	res.Edges = append(res.Edges, tree.Edges...)
	var edges []truss.Edge
	for _, e := range tree.Edges {
		edges = append(edges, truss.MakeEdge(e[0], e[1]))
	}
	res.Trussness = truss.MinTrussOn(tn, edges)
	return res
}

func finish(g *graph.Undirected, tn map[truss.Edge]int, query []int) Result {
	res := Result{Found: true}
	present := make(map[int]bool)
	for _, e := range g.Edges() {
		res.Edges = append(res.Edges, e)
		present[e[0]] = true
		present[e[1]] = true
	}
	for _, q := range query {
		present[q] = true
	}
	res.Nodes = keys(present)
	sort.Ints(res.Nodes)
	var edges []truss.Edge
	for _, e := range res.Edges {
		edges = append(edges, truss.MakeEdge(e[0], e[1]))
	}
	res.Trussness = truss.MinTrussOn(tn, edges)
	return res
}

// maxConnectedTruss returns the maximal connected k-truss of g
// containing all query nodes, for the largest k that admits one, along
// with that k; (nil, 0) when the query is not connected in g at all.
// Query nodes must retain at least one incident edge in the result.
func maxConnectedTruss(g *graph.Undirected, query []int) (*graph.Undirected, int) {
	if !g.Connected(query) {
		return nil, 0
	}
	tn := truss.Decompose(g)
	maxK := 2
	for _, k := range tn {
		if k > maxK {
			maxK = k
		}
	}
	for k := maxK; k >= 2; k-- {
		sub := truss.MaxTruss(g, tn, k)
		if !sub.Connected(query) || !allInOneComponent(sub, query) {
			continue
		}
		ok := true
		for _, q := range query {
			if sub.Degree(q) == 0 {
				ok = false
				break
			}
		}
		if ok {
			return componentOf(sub, query[0]), k
		}
	}
	return nil, 0
}

func allInOneComponent(g *graph.Undirected, query []int) bool {
	if len(query) == 0 {
		return true
	}
	comp := g.ConnectedComponent(query[0])
	for _, q := range query {
		if !comp[q] {
			return false
		}
	}
	return true
}

func componentOf(g *graph.Undirected, src int) *graph.Undirected {
	return g.Subgraph(g.ConnectedComponent(src))
}

// maxQueryDistance is the community's distance to the query: the
// maximum over community nodes of the max hop distance to any query
// node (proxy for diameter-based closeness in the reference).
func maxQueryDistance(g *graph.Undirected, query []int) int {
	qd := g.QueryDistance(query)
	var worst int
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 0 {
			continue
		}
		if qd[v] > worst {
			worst = qd[v]
		}
	}
	return worst
}

func dedup(xs []int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

package community

import (
	"math/rand"
	"testing"

	"dssddi/internal/graph"
)

func clique(g *graph.Undirected, nodes ...int) {
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			g.AddEdge(nodes[i], nodes[j])
		}
	}
}

func TestEmptyQuery(t *testing.T) {
	g := graph.NewUndirected(3)
	res := Search(g, nil, Options{})
	if res.Found {
		t.Fatal("empty query should not be found")
	}
}

func TestIsolatedSingleQuery(t *testing.T) {
	g := graph.NewUndirected(3)
	g.AddEdge(0, 1)
	res := Search(g, []int{2}, Options{})
	if res.Found {
		t.Fatal("isolated node has no community")
	}
	if len(res.Nodes) != 1 || res.Nodes[0] != 2 {
		t.Fatalf("nodes = %v", res.Nodes)
	}
}

func TestSingleQueryInClique(t *testing.T) {
	g := graph.NewUndirected(6)
	clique(g, 0, 1, 2, 3)
	res := Search(g, []int{0}, Options{})
	if !res.Found {
		t.Fatal("expected community")
	}
	if res.Trussness < 3 {
		t.Fatalf("clique member should sit in a >=3-truss, got %d", res.Trussness)
	}
}

func TestQueryInsideDenseCluster(t *testing.T) {
	// Two K4s joined by a path; query inside the first K4 must return
	// (a subgraph of) that K4, not drag in the other.
	g := graph.NewUndirected(12)
	clique(g, 0, 1, 2, 3)
	clique(g, 8, 9, 10, 11)
	g.AddEdge(3, 5)
	g.AddEdge(5, 6)
	g.AddEdge(6, 8)
	res := Search(g, []int{0, 1}, Options{})
	if !res.Found {
		t.Fatal("expected community")
	}
	for _, n := range res.Nodes {
		if n >= 8 {
			t.Fatalf("community leaked into distant cluster: %v", res.Nodes)
		}
	}
	if res.Trussness != 4 {
		t.Fatalf("K4 trussness = %d, want 4", res.Trussness)
	}
}

func TestQueryAcrossTwoClusters(t *testing.T) {
	// Query nodes in both K4s: the community must contain both query
	// nodes and connect them.
	g := graph.NewUndirected(10)
	clique(g, 0, 1, 2, 3)
	clique(g, 6, 7, 8, 9)
	g.AddEdge(3, 5)
	g.AddEdge(5, 6)
	res := Search(g, []int{0, 9}, Options{})
	if !res.Found {
		t.Fatal("expected community")
	}
	has := map[int]bool{}
	for _, n := range res.Nodes {
		has[n] = true
	}
	if !has[0] || !has[9] {
		t.Fatalf("community must include query nodes, got %v", res.Nodes)
	}
	// Query must be connected within the returned edge set.
	sub := graph.NewUndirected(10)
	for _, e := range res.Edges {
		sub.AddEdge(e[0], e[1])
	}
	if !sub.Connected([]int{0, 9}) {
		t.Fatal("query nodes not connected in community")
	}
}

func TestDisconnectedQueryNotFound(t *testing.T) {
	g := graph.NewUndirected(6)
	clique(g, 0, 1, 2)
	clique(g, 3, 4, 5)
	res := Search(g, []int{0, 5}, Options{})
	if res.Found {
		t.Fatal("disconnected query should not be found")
	}
}

func TestCommunityAlwaysContainsQuery(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 15
		g := graph.NewUndirected(n)
		for i := 0; i < n; i++ {
			g.AddEdge(i, (i+1)%n)
		}
		for e := 0; e < 25; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		q := []int{rng.Intn(n), rng.Intn(n), rng.Intn(n)}
		res := Search(g, q, Options{MaxExpand: 12})
		if !res.Found {
			t.Fatalf("seed %d: connected graph query should be found", seed)
		}
		has := map[int]bool{}
		for _, x := range res.Nodes {
			has[x] = true
		}
		for _, x := range q {
			if !has[x] {
				t.Fatalf("seed %d: community %v missing query node %d", seed, res.Nodes, x)
			}
		}
	}
}

func TestShrinkPrefersTighterCommunity(t *testing.T) {
	// Dense core K4 {0..3} with a long pendant path 3-4-5-6 that the
	// expansion may include; shrinking must drop the path tail.
	g := graph.NewUndirected(8)
	clique(g, 0, 1, 2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 6)
	res := Search(g, []int{0, 1}, Options{})
	if !res.Found {
		t.Fatal("expected community")
	}
	for _, n := range res.Nodes {
		if n >= 5 {
			t.Fatalf("tail node %d should be shrunk away, got %v", n, res.Nodes)
		}
	}
}

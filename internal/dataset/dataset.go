// Package dataset packages a medication-suggestion problem instance —
// patient features X, binary medication-use labels Y, the signed DDI
// graph and the observed/unobserved patient split — in the form every
// model in the repository consumes.
//
// Terminology follows the paper: "observed" patients (train) have both
// features and medication use available to the model; "unobserved"
// patients (validation/test) expose only features at inference time.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"dssddi/internal/graph"
	"dssddi/internal/mat"
	"dssddi/internal/synth"
)

// Dataset is one fully materialised problem instance.
type Dataset struct {
	// X is the n x d patient feature matrix (standardised).
	X *mat.Dense
	// Y is the n x m binary medication-use matrix.
	Y *mat.Dense
	// DDI is the signed drug-drug interaction graph on m drugs.
	DDI *graph.Signed
	// DrugFeatures is the m x f pretrained drug feature matrix (e.g.
	// TransE embeddings); may be nil, in which case models fall back to
	// one-hot IDs.
	DrugFeatures *mat.Dense
	// Train/Val/Test are disjoint patient index sets (5:3:2 split).
	Train, Val, Test []int
	// DrugNames, if present, maps drug IDs to names for explanations.
	DrugNames []string
	// NumClusters is the k used for patient clustering (the number of
	// distinct diseases in the cohort, per the paper).
	NumClusters int
}

// NumPatients returns n.
func (d *Dataset) NumPatients() int { return d.X.Rows() }

// NumDrugs returns m.
func (d *Dataset) NumDrugs() int { return d.Y.Cols() }

// Split partitions indices 0..n-1 into train/val/test with the given
// ratios (they are normalised), shuffled by rng.
func Split(rng *rand.Rand, n int, trainR, valR, testR float64) (train, val, test []int) {
	total := trainR + valR + testR
	if total <= 0 {
		panic("dataset: non-positive split ratios")
	}
	perm := rng.Perm(n)
	nTrain := int(math.Round(float64(n) * trainR / total))
	nVal := int(math.Round(float64(n) * valR / total))
	if nTrain+nVal > n {
		nVal = n - nTrain
	}
	train = append(train, perm[:nTrain]...)
	val = append(val, perm[nTrain:nTrain+nVal]...)
	test = append(test, perm[nTrain+nVal:]...)
	return
}

// Standardize rescales every column of x to zero mean, unit variance
// (in place), using only the rows in fit to compute the statistics —
// preventing information leaking from validation/test patients.
// Constant columns are left centred.
func Standardize(x *mat.Dense, fit []int) {
	if len(fit) == 0 {
		panic("dataset: Standardize needs at least one fitting row")
	}
	d := x.Cols()
	mean := make([]float64, d)
	std := make([]float64, d)
	for _, i := range fit {
		for j, v := range x.Row(i) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(fit))
	}
	for _, i := range fit {
		for j, v := range x.Row(i) {
			dv := v - mean[j]
			std[j] += dv * dv
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(len(fit)))
		if std[j] < 1e-9 {
			std[j] = 1
		}
	}
	for i := 0; i < x.Rows(); i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = (row[j] - mean[j]) / std[j]
		}
	}
}

// FromCohort converts a synthetic chronic cohort into a Dataset with
// the paper's 5:3:2 split and standardised features.
func FromCohort(rng *rand.Rand, c *synth.Cohort, drugFeatures *mat.Dense) *Dataset {
	x := c.FeatureMatrix()
	y := c.LabelMatrix()
	train, val, test := Split(rng, x.Rows(), 5, 3, 2)
	Standardize(x, train)
	names := make([]string, len(c.Catalog))
	for i, d := range c.Catalog {
		names[i] = d.Name
	}
	return &Dataset{
		X: x, Y: y, DDI: c.DDI, DrugFeatures: drugFeatures,
		Train: train, Val: val, Test: test,
		DrugNames:   names,
		NumClusters: c.DiseaseCount(),
	}
}

// FromMIMIC converts a synthetic MIMIC instance into a Dataset.
func FromMIMIC(rng *rand.Rand, m *synth.MIMIC) *Dataset {
	x := m.FeatureMatrix()
	y := m.LabelMatrix()
	train, val, test := Split(rng, x.Rows(), 5, 3, 2)
	Standardize(x, train)
	names := make([]string, m.Opts.Medicines)
	for i := range names {
		names[i] = fmt.Sprintf("MED_%04d", i)
	}
	return &Dataset{
		X: x, Y: y, DDI: m.DDI,
		Train: train, Val: val, Test: test,
		DrugNames:   names,
		NumClusters: m.Opts.Conditions,
	}
}

// ObservedBipartite builds the patient-drug bipartite graph over the
// TRAIN patients only, reindexed so row i corresponds to Train[i].
func (d *Dataset) ObservedBipartite() *graph.Bipartite {
	b := graph.NewBipartite(len(d.Train), d.NumDrugs())
	for i, p := range d.Train {
		for v := 0; v < d.NumDrugs(); v++ {
			if d.Y.At(p, v) == 1 {
				b.AddLink(i, v)
			}
		}
	}
	return b
}

// Rows gathers the feature rows for the given patient indices.
func (d *Dataset) Rows(idx []int) *mat.Dense { return d.X.GatherRows(idx) }

// Labels gathers the label rows for the given patient indices.
func (d *Dataset) Labels(idx []int) *mat.Dense { return d.Y.GatherRows(idx) }

// TruePositives returns the drug IDs patient p takes.
func (d *Dataset) TruePositives(p int) []int {
	var out []int
	for v := 0; v < d.NumDrugs(); v++ {
		if d.Y.At(p, v) == 1 {
			out = append(out, v)
		}
	}
	return out
}

// NegativeSample draws, for each (patient, positive-drug) pair in rows,
// one uniformly random drug the patient does NOT take (the paper's 1:1
// negative sampling). It returns parallel slices of patient indices,
// drug IDs and 0/1 targets covering both positives and negatives.
func (d *Dataset) NegativeSample(rng *rand.Rand, patients []int) (ps, vs []int, ys []float64) {
	m := d.NumDrugs()
	for _, p := range patients {
		for v := 0; v < m; v++ {
			if d.Y.At(p, v) != 1 {
				continue
			}
			ps = append(ps, p)
			vs = append(vs, v)
			ys = append(ys, 1)
			// Matched negative.
			for {
				neg := rng.Intn(m)
				if d.Y.At(p, neg) != 1 {
					ps = append(ps, p)
					vs = append(vs, neg)
					ys = append(ys, 0)
					break
				}
			}
		}
	}
	return
}

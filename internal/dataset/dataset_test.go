package dataset

import (
	"math"
	"math/rand"
	"testing"

	"dssddi/internal/mat"
	"dssddi/internal/synth"
)

func TestSplitRatiosAndDisjointness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train, val, test := Split(rng, 100, 5, 3, 2)
	if len(train) != 50 || len(val) != 30 || len(test) != 20 {
		t.Fatalf("split sizes %d/%d/%d", len(train), len(val), len(test))
	}
	seen := map[int]bool{}
	for _, xs := range [][]int{train, val, test} {
		for _, i := range xs {
			if seen[i] {
				t.Fatalf("index %d appears twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 100 {
		t.Fatalf("split covers %d of 100", len(seen))
	}
}

func TestSplitSmallN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train, val, test := Split(rng, 3, 5, 3, 2)
	if len(train)+len(val)+len(test) != 3 {
		t.Fatal("small split must cover all")
	}
}

func TestStandardizeUsesFitRowsOnly(t *testing.T) {
	x := mat.FromRows([][]float64{{0}, {2}, {100}})
	Standardize(x, []int{0, 1}) // fit stats: mean 1, std 1
	if math.Abs(x.At(0, 0)+1) > 1e-9 || math.Abs(x.At(1, 0)-1) > 1e-9 {
		t.Fatalf("standardised fit rows wrong: %v %v", x.At(0, 0), x.At(1, 0))
	}
	if math.Abs(x.At(2, 0)-99) > 1e-9 {
		t.Fatalf("held-out row should use fit stats: %v", x.At(2, 0))
	}
}

func TestStandardizeConstantColumn(t *testing.T) {
	x := mat.FromRows([][]float64{{5, 1}, {5, 3}})
	Standardize(x, []int{0, 1})
	if math.IsNaN(x.At(0, 0)) || math.IsInf(x.At(0, 0), 0) {
		t.Fatal("constant column must not produce NaN/Inf")
	}
	if x.At(0, 0) != 0 {
		t.Fatalf("constant column should be centred to 0, got %v", x.At(0, 0))
	}
}

func testDataset(t *testing.T) *Dataset {
	t.Helper()
	opts := synth.DefaultCohortOptions()
	opts.Males, opts.Females = 60, 40
	c := synth.GenerateCohort(rand.New(rand.NewSource(3)), opts)
	return FromCohort(rand.New(rand.NewSource(4)), c, nil)
}

func TestFromCohort(t *testing.T) {
	d := testDataset(t)
	if d.NumPatients() != 100 || d.NumDrugs() != synth.NumDrugs {
		t.Fatalf("shape %d %d", d.NumPatients(), d.NumDrugs())
	}
	if len(d.Train) != 50 || len(d.Val) != 30 || len(d.Test) != 20 {
		t.Fatalf("split %d/%d/%d", len(d.Train), len(d.Val), len(d.Test))
	}
	if len(d.DrugNames) != synth.NumDrugs || d.DrugNames[1] != "Doxazosin" {
		t.Fatal("drug names missing")
	}
	if d.NumClusters < 5 {
		t.Fatalf("NumClusters %d", d.NumClusters)
	}
}

func TestObservedBipartite(t *testing.T) {
	d := testDataset(t)
	b := d.ObservedBipartite()
	if b.Patients != len(d.Train) {
		t.Fatal("bipartite patient count wrong")
	}
	// Row i of the bipartite graph must match Y[Train[i]].
	for i, p := range d.Train {
		for _, v := range b.DrugsOf(i) {
			if d.Y.At(p, v) != 1 {
				t.Fatalf("bipartite link (%d,%d) not in Y", i, v)
			}
		}
		if len(b.DrugsOf(i)) != len(d.TruePositives(p)) {
			t.Fatal("bipartite degree mismatch")
		}
	}
}

func TestNegativeSampleBalanced(t *testing.T) {
	d := testDataset(t)
	rng := rand.New(rand.NewSource(5))
	ps, vs, ys := d.NegativeSample(rng, d.Train)
	if len(ps) != len(vs) || len(vs) != len(ys) {
		t.Fatal("parallel slices length mismatch")
	}
	var pos, neg int
	for i, y := range ys {
		if y == 1 {
			pos++
			if d.Y.At(ps[i], vs[i]) != 1 {
				t.Fatal("positive sample not in Y")
			}
		} else {
			neg++
			if d.Y.At(ps[i], vs[i]) == 1 {
				t.Fatal("negative sample is actually positive")
			}
		}
	}
	if pos != neg {
		t.Fatalf("1:1 sampling violated: %d pos, %d neg", pos, neg)
	}
}

func TestFromMIMIC(t *testing.T) {
	opts := synth.DefaultMIMICOptions()
	opts.Patients = 60
	m := synth.GenerateMIMIC(rand.New(rand.NewSource(6)), opts)
	d := FromMIMIC(rand.New(rand.NewSource(7)), m)
	if d.NumPatients() != 60 || d.NumDrugs() != opts.Medicines {
		t.Fatalf("shape %d %d", d.NumPatients(), d.NumDrugs())
	}
	if d.DrugNames[3] != "MED_0003" {
		t.Fatalf("anonymous names wrong: %s", d.DrugNames[3])
	}
	syn, _, _ := d.DDI.CountBySign()
	if syn != 0 {
		t.Fatal("MIMIC DDI must be unsigned")
	}
}

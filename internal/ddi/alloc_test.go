package ddi

import (
	"testing"

	"dssddi/internal/mat"
	"dssddi/internal/nn"
	"dssddi/internal/optim"
)

// steadyEpochAllocs measures the allocations of one steady-state
// training epoch (tape already recorded, optimizer warm) with serial
// kernels, which makes the count deterministic and machine-independent.
func steadyEpochAllocs(t *testing.T, backbone Backbone) float64 {
	t.Helper()
	mat.SetWorkers(1)
	defer mat.SetWorkers(0)

	cfg := DefaultConfig()
	cfg.Backbone = backbone
	cfg.Hidden = 16
	cfg.Epochs = 3
	m := NewModel(toyGraph(), cfg)
	m.Train() // records the tape, caches transposes, sizes all buffers

	opt := optim.NewAdam(cfg.LR)
	step := func() {
		m.tape.Reset()
		_, loss := m.forward(m.tape)
		m.tape.Backward(loss)
		nn.CollectGradsInto(m.grads, m.tape, &m.params)
		optim.ClipGlobalNorm(m.grads, 5)
		opt.Step(m.params.All(), m.grads)
	}
	step() // warm the fresh optimizer's moment buffers
	return testing.AllocsPerRun(10, step)
}

// TestSteadyStateEpochAllocBudget is the allocation-regression gate of
// ISSUE 2: a steady-state DDIGCN training epoch must stay within a
// fixed small allocation budget for every backbone.
func TestSteadyStateEpochAllocBudget(t *testing.T) {
	const budget = 100
	for _, backbone := range []Backbone{GIN, SGCN, SiGAT, SNEA} {
		t.Run(backbone.String(), func(t *testing.T) {
			if got := steadyEpochAllocs(t, backbone); got > budget {
				t.Fatalf("steady-state epoch allocates %.1f objects, budget %d", got, budget)
			}
		})
	}
}

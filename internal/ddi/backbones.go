package ddi

import (
	"math/rand"

	"dssddi/internal/ag"
	"dssddi/internal/graph"
	"dssddi/internal/mat"
	"dssddi/internal/nn"
	"dssddi/internal/sparse"
)

// encoder produces drug relation embeddings: embed records the forward
// pass on a tape for training; inferEmbed is the tape-free inference
// path (plain Dense evaluation, no nodes or backward closures) and
// must produce bitwise-identical values.
type encoder interface {
	embed(t *ag.Tape) *ag.Node // N x Hidden
	inferEmbed() *mat.Dense    // N x Hidden, tape-free
}

// signEdges extracts the directed edge lists (both directions of every
// undirected edge) of one sign.
func signEdges(g *graph.Signed, want graph.Sign) (src, dst []int) {
	el := g.Edges()
	src = make([]int, 0, 2*len(el.U))
	dst = make([]int, 0, 2*len(el.U))
	for i := range el.U {
		if el.S[i] != want {
			continue
		}
		src = append(src, el.U[i], el.V[i])
		dst = append(dst, el.V[i], el.U[i])
	}
	return
}

// meanAdj builds the mean-aggregation operator over edges of the given
// signs (each undirected edge contributes both directions).
func meanAdj(g *graph.Signed, signs ...graph.Sign) *sparse.CSR {
	wanted := make(map[graph.Sign]bool, len(signs))
	for _, s := range signs {
		wanted[s] = true
	}
	var edges []sparse.Edge
	el := g.Edges()
	for i := range el.U {
		if wanted[el.S[i]] {
			edges = append(edges, sparse.Edge{U: el.U[i], V: el.V[i], Weight: 1})
		}
	}
	return sparse.MeanAdjacency(g.N(), edges)
}

// incidence builds the (n x E) mean-aggregation operator mapping
// per-edge messages to destination nodes: row v holds 1/indeg(v) at
// every edge whose destination is v.
func incidence(n int, dst []int) *sparse.CSR {
	indeg := make([]float64, n)
	for _, v := range dst {
		indeg[v]++
	}
	b := sparse.NewBuilder(n, len(dst))
	for e, v := range dst {
		b.Add(v, e, 1/indeg[v])
	}
	return b.Build()
}

// broadcastScalar expands a 1x1 parameter to an n x 1 column on the
// tape (used for GIN's learnable epsilon). idx is a caller-retained
// all-zero index slice so replay epochs allocate nothing.
func broadcastScalar(t *ag.Tape, p *mat.Dense, idx []int) *ag.Node {
	return t.GatherRows(t.Param(p), idx)
}

// rowDot computes out[i] = a[i]·b[i] on plain matrices — the inference
// counterpart of Tape.RowDot (same per-element order).
func rowDot(a, b *mat.Dense) *mat.Dense {
	out := mat.New(a.Rows(), 1)
	for i := 0; i < a.Rows(); i++ {
		out.Set(i, 0, mat.Dot(a.Row(i), b.Row(i)))
	}
	return out
}

// --- GIN -------------------------------------------------------------

// ginEncoder implements Eq. 1: z_v = MLP((1+eps) z_v + mean_{u∈N(v)} z_u),
// with BatchNorm+ReLU after every layer, message passing over all
// non-zero interaction edges.
type ginEncoder struct {
	input  *nn.Linear
	layers []*nn.Linear
	norms  []*nn.BatchNorm
	eps    []*mat.Dense // learnable 1x1 per layer
	adj    *sparse.CSR
	oneHot *mat.Dense
	bidx   []int // retained all-zero index for the eps broadcast
	hidden int
}

func newGIN(rng *rand.Rand, ps *nn.Params, g *graph.Signed, hidden, layers int) *ginEncoder {
	e := &ginEncoder{
		input:  nn.NewLinear(rng, ps, g.N(), hidden),
		adj:    meanAdj(g, graph.Synergy, graph.Antagonism),
		oneHot: mat.OneHot(g.N()),
		bidx:   make([]int, g.N()),
		hidden: hidden,
	}
	for l := 0; l < layers; l++ {
		e.layers = append(e.layers, nn.NewLinear(rng, ps, hidden, hidden))
		e.norms = append(e.norms, nn.NewBatchNorm(ps, hidden))
		e.eps = append(e.eps, ps.Register(mat.New(1, 1)))
	}
	return e
}

func (e *ginEncoder) embed(t *ag.Tape) *ag.Node {
	h := e.input.Apply(t, t.Const(e.oneHot))
	for l, lin := range e.layers {
		agg := t.SpMM(e.adj, h)
		epsCol := broadcastScalar(t, e.eps[l], e.bidx)
		pre := t.Add(t.Add(h, t.ScaleRows(h, epsCol)), agg)
		h = e.norms[l].Apply(t, lin.Apply(t, pre))
		// The final layer stays linear so the inner-product decoder
		// (Eq. 5) can reach the -1 antagonism target.
		if l < len(e.layers)-1 {
			h = t.ReLU(h)
		}
	}
	return h
}

func (e *ginEncoder) inferEmbed() *mat.Dense {
	h := e.input.Forward(e.oneHot)
	for l, lin := range e.layers {
		agg := e.adj.MulDense(h)
		// pre = (h + eps*h) + agg, matching the tape's
		// Add(Add(h, ScaleRows(h, eps)), agg) element order.
		scaled := h.Clone()
		scaled.Scale(e.eps[l].At(0, 0))
		pre := h.Clone()
		pre.AddScaled(scaled, 1)
		pre.AddScaled(agg, 1)
		h = e.norms[l].Forward(lin.Forward(pre))
		if l < len(e.layers)-1 {
			h = nn.ForwardActivation(h, nn.ActReLU)
		}
	}
	return h
}

// --- SGCN ------------------------------------------------------------

// sgcnEncoder implements Eqs. 2-4: separate balanced (synergy-reachable)
// and unbalanced (antagonism-reachable) representations, combined by
// concatenation. Each side has hidden/2 dimensions so z keeps the
// configured width.
type sgcnEncoder struct {
	inputB, inputU *nn.Linear
	wB, wU         []*nn.Linear
	adjSyn, adjAnt *sparse.CSR
	oneHot         *mat.Dense
}

func newSGCN(rng *rand.Rand, ps *nn.Params, g *graph.Signed, hidden, layers int) *sgcnEncoder {
	half := hidden / 2
	e := &sgcnEncoder{
		inputB: nn.NewLinear(rng, ps, g.N(), half),
		inputU: nn.NewLinear(rng, ps, g.N(), half),
		adjSyn: meanAdj(g, graph.Synergy),
		adjAnt: meanAdj(g, graph.Antagonism),
		oneHot: mat.OneHot(g.N()),
	}
	for l := 0; l < layers; l++ {
		e.wB = append(e.wB, nn.NewLinear(rng, ps, 3*half, half))
		e.wU = append(e.wU, nn.NewLinear(rng, ps, 3*half, half))
	}
	return e
}

func (e *sgcnEncoder) embed(t *ag.Tape) *ag.Node {
	x := t.Const(e.oneHot)
	hB := e.inputB.Apply(t, x)
	hU := e.inputU.Apply(t, x)
	for l := range e.wB {
		// Eq. 2: balanced side sees synergy-neighbours' balanced reps
		// and antagonism-neighbours' unbalanced reps.
		bIn := t.ConcatCols(t.ConcatCols(t.SpMM(e.adjSyn, hB), t.SpMM(e.adjAnt, hU)), hB)
		// Eq. 3: unbalanced side mirrors it.
		uIn := t.ConcatCols(t.ConcatCols(t.SpMM(e.adjSyn, hU), t.SpMM(e.adjAnt, hB)), hU)
		// σ = tanh, as in the original SGCN; its signed range lets the
		// inner-product decoder reach the -1 antagonism target.
		hB = t.Tanh(e.wB[l].Apply(t, bIn))
		hU = t.Tanh(e.wU[l].Apply(t, uIn))
	}
	return t.ConcatCols(hB, hU) // Eq. 4
}

func (e *sgcnEncoder) inferEmbed() *mat.Dense {
	hB := e.inputB.Forward(e.oneHot)
	hU := e.inputU.Forward(e.oneHot)
	for l := range e.wB {
		bIn := mat.ConcatCols(mat.ConcatCols(e.adjSyn.MulDense(hB), e.adjAnt.MulDense(hU)), hB)
		uIn := mat.ConcatCols(mat.ConcatCols(e.adjSyn.MulDense(hU), e.adjAnt.MulDense(hB)), hU)
		hB = nn.ForwardActivation(e.wB[l].Forward(bIn), nn.ActTanh)
		hU = nn.ForwardActivation(e.wU[l].Forward(uIn), nn.ActTanh)
	}
	return mat.ConcatCols(hB, hU)
}

// --- Signed attention backbones ---------------------------------------

// attnKind distinguishes the two attention backbones.
type attnKind int

const (
	kindSiGAT attnKind = iota
	kindSNEA
)

// attnEncoder implements the attention-based signed encoders. Per sign,
// per layer, each directed edge (u→v) receives an attention weight:
//
//	SiGAT: α = σ(LeakyReLU(a·[h_u, h_v]))       (concat attention)
//	SNEA:  α = σ(LeakyReLU((W h_u)·(W h_v)))    (bilinear attention)
//
// Messages h_u are scaled by α and mean-aggregated at v; the layer
// combines [agg_syn, agg_ant, h] with a linear transform and ReLU.
// These are faithful simplifications of the published models: the
// originals' motif enumeration (SiGAT) and softmax normalisation
// (SNEA) are replaced with sigmoid gates, which preserves the
// sign-aware attention structure the paper's comparison probes.
type attnEncoder struct {
	kind    attnKind
	input   *nn.Linear
	combine []*nn.Linear
	attnSyn []*nn.Linear // per layer attention scorer for synergy
	attnAnt []*nn.Linear
	projSyn []*nn.Linear // SNEA bilinear projections
	projAnt []*nn.Linear
	srcSyn  []int
	dstSyn  []int
	srcAnt  []int
	dstAnt  []int
	incSyn  *sparse.CSR
	incAnt  *sparse.CSR
	oneHot  *mat.Dense
	zeroAgg *mat.Dense // retained placeholder for a missing sign
	hidden  int
	haveSyn bool
	haveAnt bool
}

func newAttn(rng *rand.Rand, ps *nn.Params, g *graph.Signed, hidden, layers int, kind attnKind) *attnEncoder {
	e := &attnEncoder{
		kind:   kind,
		input:  nn.NewLinear(rng, ps, g.N(), hidden),
		oneHot: mat.OneHot(g.N()),
		hidden: hidden,
	}
	e.srcSyn, e.dstSyn = signEdges(g, graph.Synergy)
	e.srcAnt, e.dstAnt = signEdges(g, graph.Antagonism)
	e.haveSyn = len(e.srcSyn) > 0
	e.haveAnt = len(e.srcAnt) > 0
	if e.haveSyn {
		e.incSyn = incidence(g.N(), e.dstSyn)
	}
	if e.haveAnt {
		e.incAnt = incidence(g.N(), e.dstAnt)
	}
	if !e.haveSyn || !e.haveAnt {
		e.zeroAgg = mat.New(g.N(), hidden)
	}
	for l := 0; l < layers; l++ {
		e.combine = append(e.combine, nn.NewLinear(rng, ps, 3*hidden, hidden))
		switch kind {
		case kindSiGAT:
			e.attnSyn = append(e.attnSyn, nn.NewLinear(rng, ps, 2*hidden, 1))
			e.attnAnt = append(e.attnAnt, nn.NewLinear(rng, ps, 2*hidden, 1))
		case kindSNEA:
			e.projSyn = append(e.projSyn, nn.NewLinear(rng, ps, hidden, hidden))
			e.projAnt = append(e.projAnt, nn.NewLinear(rng, ps, hidden, hidden))
		}
	}
	return e
}

// attend computes the attention-weighted mean aggregation for one sign
// at layer l.
func (e *attnEncoder) attend(t *ag.Tape, h *ag.Node, l int, src, dst []int,
	inc *sparse.CSR, attn, proj *nn.Linear) *ag.Node {

	hu := t.GatherRows(h, src)
	hv := t.GatherRows(h, dst)
	var logits *ag.Node
	if e.kind == kindSiGAT {
		logits = attn.Apply(t, t.ConcatCols(hu, hv))
	} else {
		logits = t.RowDot(proj.Apply(t, hu), proj.Apply(t, hv))
	}
	alpha := t.Sigmoid(t.LeakyReLU(logits, 0.2))
	msg := t.ScaleRows(hu, alpha)
	return t.SpMM(inc, msg)
}

func (e *attnEncoder) embed(t *ag.Tape) *ag.Node {
	h := e.input.Apply(t, t.Const(e.oneHot))
	// Retained zero aggregate placeholder for a missing sign (the
	// common both-signs case never touches it).
	zero := func() *ag.Node { return t.Const(e.zeroAgg) }
	for l := range e.combine {
		var aggSyn, aggAnt *ag.Node
		var attnS, attnA, projS, projA *nn.Linear
		if e.kind == kindSiGAT {
			attnS, attnA = e.attnSyn[l], e.attnAnt[l]
		} else {
			projS, projA = e.projSyn[l], e.projAnt[l]
		}
		if e.haveSyn {
			aggSyn = e.attend(t, h, l, e.srcSyn, e.dstSyn, e.incSyn, attnS, projS)
		} else {
			aggSyn = zero()
		}
		if e.haveAnt {
			aggAnt = e.attend(t, h, l, e.srcAnt, e.dstAnt, e.incAnt, attnA, projA)
		} else {
			aggAnt = zero()
		}
		h = e.combine[l].Apply(t, t.ConcatCols(t.ConcatCols(aggSyn, aggAnt), h))
		// Keep the final layer linear for the signed decoder.
		if l < len(e.combine)-1 {
			h = t.ReLU(h)
		}
	}
	return h
}

// attendInferSigned is the tape-free counterpart of attend: same
// kernels and element formulas, so values match the tape bitwise.
func (e *attnEncoder) attendInferSigned(h *mat.Dense, src, dst []int,
	inc *sparse.CSR, attn, proj *nn.Linear) *mat.Dense {

	hu := h.GatherRows(src)
	hv := h.GatherRows(dst)
	var logits *mat.Dense
	if e.kind == kindSiGAT {
		logits = attn.Forward(mat.ConcatCols(hu, hv))
	} else {
		logits = rowDot(proj.Forward(hu), proj.Forward(hv))
	}
	logits.ApplyInPlace(func(x float64) float64 { // LeakyReLU, slope 0.2
		if x > 0 {
			return x
		}
		return 0.2 * x
	})
	logits.ApplyInPlace(mat.Sigmoid)
	msg := mat.New(hu.Rows(), hu.Cols())
	for i := 0; i < hu.Rows(); i++ {
		s := logits.At(i, 0)
		hrow := hu.Row(i)
		mrow := msg.Row(i)
		for j, v := range hrow {
			mrow[j] = s * v
		}
	}
	return inc.MulDense(msg)
}

func (e *attnEncoder) inferEmbed() *mat.Dense {
	h := e.input.Forward(e.oneHot)
	for l := range e.combine {
		var aggSyn, aggAnt *mat.Dense
		var attnS, attnA, projS, projA *nn.Linear
		if e.kind == kindSiGAT {
			attnS, attnA = e.attnSyn[l], e.attnAnt[l]
		} else {
			projS, projA = e.projSyn[l], e.projAnt[l]
		}
		if e.haveSyn {
			aggSyn = e.attendInferSigned(h, e.srcSyn, e.dstSyn, e.incSyn, attnS, projS)
		} else {
			aggSyn = e.zeroAgg
		}
		if e.haveAnt {
			aggAnt = e.attendInferSigned(h, e.srcAnt, e.dstAnt, e.incAnt, attnA, projA)
		} else {
			aggAnt = e.zeroAgg
		}
		h = e.combine[l].Forward(mat.ConcatCols(mat.ConcatCols(aggSyn, aggAnt), h))
		if l < len(e.combine)-1 {
			h = nn.ForwardActivation(h, nn.ActReLU)
		}
	}
	return h
}

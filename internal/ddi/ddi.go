// Package ddi implements the paper's Drug-Drug Interaction module
// (Section IV-A): construction of the training DDI graph with
// explicitly sampled "no interaction" edges, the DDIGCN model with four
// interchangeable backbones (GIN, SGCN, SiGAT, SNEA) and its MSE
// edge-regression training (Eqs. 1-6). Its product is a drug relation
// embedding matrix that the Medical Decision module adds to its drug
// representations (h'_v = h'_v + z_v).
package ddi

import (
	"fmt"
	"math/rand"

	"dssddi/internal/graph"
	"dssddi/internal/mat"
)

// Backbone selects the graph encoder of DDIGCN.
type Backbone int

// Supported backbones (Section V-A1 "Variants of DSSDDI").
const (
	GIN Backbone = iota
	SGCN
	SiGAT
	SNEA
)

// String returns the backbone name used in the paper's tables.
func (b Backbone) String() string {
	switch b {
	case GIN:
		return "GIN"
	case SGCN:
		return "SGCN"
	case SiGAT:
		return "SiGAT"
	case SNEA:
		return "SNEA"
	default:
		return fmt.Sprintf("Backbone(%d)", int(b))
	}
}

// TrainingGraph is the DDI graph prepared for DDIGCN training: the
// recorded synergy/antagonism edges plus sampled zero edges
// (Section IV-A1), split into parallel arrays for the edge-regression
// loss.
type TrainingGraph struct {
	N       int
	EdgeU   []int
	EdgeV   []int
	Targets []float64 // +1 synergy, -1 antagonism, 0 sampled none
	// Signed is the underlying interaction graph (without zero edges).
	Signed *graph.Signed
}

// BuildTrainingGraph samples zeroRatio * (number of non-zero edges)
// no-interaction drug pairs and merges them with the recorded edges.
func BuildTrainingGraph(rng *rand.Rand, g *graph.Signed, zeroRatio float64) *TrainingGraph {
	tg := &TrainingGraph{N: g.N(), Signed: g}
	el := g.Edges()
	nonZero := 0
	for i := range el.U {
		if el.S[i] == graph.NoInteraction {
			continue
		}
		tg.EdgeU = append(tg.EdgeU, el.U[i])
		tg.EdgeV = append(tg.EdgeV, el.V[i])
		tg.Targets = append(tg.Targets, float64(el.S[i]))
		nonZero++
	}
	want := int(zeroRatio * float64(nonZero))
	seen := make(map[[2]int]bool)
	for placed, guard := 0, 0; placed < want && guard < want*50; guard++ {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if _, ok := g.Edge(u, v); ok {
			continue
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		tg.EdgeU = append(tg.EdgeU, u)
		tg.EdgeV = append(tg.EdgeV, v)
		tg.Targets = append(tg.Targets, 0)
		placed++
	}
	return tg
}

// TargetMatrix returns the regression targets as an (E x 1) column.
func (tg *TrainingGraph) TargetMatrix() *mat.Dense {
	m := mat.New(len(tg.Targets), 1)
	for i, v := range tg.Targets {
		m.Set(i, 0, v)
	}
	return m
}

// Config tunes DDIGCN training. Defaults follow Section V-A3: 3 graph
// convolution layers, hidden size 64, Adam at 1e-3, 400 epochs,
// BatchNorm+ReLU after each layer.
type Config struct {
	Backbone  Backbone
	Hidden    int
	Layers    int
	Epochs    int
	LR        float64
	ZeroRatio float64 // sampled zero edges per non-zero edge
	Seed      int64
}

// DefaultConfig mirrors the paper's hyperparameters.
func DefaultConfig() Config {
	return Config{
		Backbone:  SGCN,
		Hidden:    64,
		Layers:    3,
		Epochs:    400,
		LR:        1e-3,
		ZeroRatio: 1.0,
		Seed:      1,
	}
}

package ddi

import (
	"math"
	"math/rand"
	"testing"

	"dssddi/internal/graph"
	"dssddi/internal/synth"
)

// toyGraph builds a tiny signed graph: synergy triangle {0,1,2},
// antagonism path 3-4, plus isolated node 5.
func toyGraph() *graph.Signed {
	g := graph.NewSigned(6)
	g.SetEdge(0, 1, graph.Synergy)
	g.SetEdge(1, 2, graph.Synergy)
	g.SetEdge(0, 2, graph.Synergy)
	g.SetEdge(3, 4, graph.Antagonism)
	return g
}

func TestBuildTrainingGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tg := BuildTrainingGraph(rng, toyGraph(), 1.0)
	var pos, neg, zero int
	for _, v := range tg.Targets {
		switch {
		case v > 0:
			pos++
		case v < 0:
			neg++
		default:
			zero++
		}
	}
	if pos != 3 || neg != 1 {
		t.Fatalf("pos=%d neg=%d, want 3,1", pos, neg)
	}
	if zero != 4 {
		t.Fatalf("zero=%d, want 4 (ratio 1.0)", zero)
	}
	// Zero edges must not duplicate recorded interactions.
	for i := range tg.EdgeU {
		if tg.Targets[i] != 0 {
			continue
		}
		if _, ok := tg.Signed.Edge(tg.EdgeU[i], tg.EdgeV[i]); ok {
			t.Fatal("sampled zero edge collides with recorded edge")
		}
	}
}

func TestBuildTrainingGraphZeroRatioZero(t *testing.T) {
	tg := BuildTrainingGraph(rand.New(rand.NewSource(2)), toyGraph(), 0)
	for _, v := range tg.Targets {
		if v == 0 {
			t.Fatal("no zero edges expected at ratio 0")
		}
	}
}

func smallConfig(b Backbone) Config {
	return Config{
		Backbone: b, Hidden: 16, Layers: 2, Epochs: 400, LR: 1e-2,
		ZeroRatio: 1.0, Seed: 3,
	}
}

func TestAllBackbonesTrainAndSeparateSigns(t *testing.T) {
	for _, b := range []Backbone{GIN, SGCN, SiGAT, SNEA} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			m := NewModel(toyGraph(), smallConfig(b))
			losses := m.Train()
			first, last := losses[0], losses[len(losses)-1]
			if !(last < first) {
				t.Fatalf("%v loss did not decrease: %v -> %v", b, first, last)
			}
			z := m.Embeddings()
			// Synergistic pair must score above the antagonistic pair.
			synScore := m.EdgeScore(z, 0, 1)
			antScore := m.EdgeScore(z, 3, 4)
			if synScore <= antScore {
				t.Fatalf("%v: synergy score %v not above antagonism %v", b, synScore, antScore)
			}
		})
	}
}

func TestSGCNFitsEdgeRegression(t *testing.T) {
	m := NewModel(toyGraph(), smallConfig(SGCN))
	m.Train()
	z := m.Embeddings()
	if s := m.EdgeScore(z, 0, 1); math.Abs(s-1) > 0.5 {
		t.Fatalf("synergy edge score %v, want near +1", s)
	}
	if s := m.EdgeScore(z, 3, 4); math.Abs(s+1) > 0.5 {
		t.Fatalf("antagonism edge score %v, want near -1", s)
	}
}

func TestEmbeddingsShapeAndDeterminism(t *testing.T) {
	cfg := smallConfig(GIN)
	cfg.Epochs = 10
	m1 := NewModel(toyGraph(), cfg)
	m1.Train()
	z1 := m1.Embeddings()
	if z1.Rows() != 6 || z1.Cols() != 16 {
		t.Fatalf("embedding shape %dx%d", z1.Rows(), z1.Cols())
	}
	m2 := NewModel(toyGraph(), cfg)
	m2.Train()
	z2 := m2.Embeddings()
	for i, v := range z1.Data() {
		if v != z2.Data()[i] {
			t.Fatal("same seed must give identical embeddings")
		}
	}
}

func TestOnFullCatalogGraph(t *testing.T) {
	// Integration: the real 86-drug DDI graph with paper edge counts.
	rng := rand.New(rand.NewSource(5))
	g := synth.GenerateDDI(rng, synth.Catalog(), synth.DefaultDDIOptions())
	cfg := smallConfig(SGCN)
	cfg.Epochs = 60
	m := NewModel(g, cfg)
	losses := m.Train()
	if losses[len(losses)-1] >= losses[0] {
		t.Fatal("loss did not decrease on catalogue graph")
	}
	// Aggregate check: mean score over synergy edges must exceed mean
	// over antagonism edges.
	z := m.Embeddings()
	el := g.Edges()
	var synSum, antSum float64
	var synN, antN int
	for i := range el.U {
		s := m.EdgeScore(z, el.U[i], el.V[i])
		switch el.S[i] {
		case graph.Synergy:
			synSum += s
			synN++
		case graph.Antagonism:
			antSum += s
			antN++
		}
	}
	if synSum/float64(synN) <= antSum/float64(antN) {
		t.Fatalf("mean synergy score %.3f not above antagonism %.3f",
			synSum/float64(synN), antSum/float64(antN))
	}
}

func TestBackboneString(t *testing.T) {
	if GIN.String() != "GIN" || SGCN.String() != "SGCN" ||
		SiGAT.String() != "SiGAT" || SNEA.String() != "SNEA" {
		t.Fatal("backbone names wrong")
	}
}

func TestNumParamsPositive(t *testing.T) {
	for _, b := range []Backbone{GIN, SGCN, SiGAT, SNEA} {
		m := NewModel(toyGraph(), smallConfig(b))
		if m.NumParams() == 0 {
			t.Fatalf("%v has no parameters", b)
		}
	}
}

package ddi

import (
	"testing"

	"dssddi/internal/ag"
)

// TestInferEmbedMatchesTape trains a few epochs per backbone, then
// checks the tape-free inference path reproduces the tape forward pass
// bit for bit — the equivalence the cached-embedding read paths rely
// on.
func TestInferEmbedMatchesTape(t *testing.T) {
	for _, backbone := range []Backbone{GIN, SGCN, SiGAT, SNEA} {
		t.Run(backbone.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Backbone = backbone
			cfg.Hidden = 8
			cfg.Layers = 2
			cfg.Epochs = 3
			m := NewModel(toyGraph(), cfg)
			m.Train()

			tape := ag.NewTape()
			want := m.enc.embed(tape).Value
			got := m.enc.inferEmbed()
			if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
				t.Fatalf("shape %dx%d, want %dx%d", got.Rows(), got.Cols(), want.Rows(), want.Cols())
			}
			for i, v := range got.Data() {
				if v != want.Data()[i] {
					t.Fatalf("element %d: infer %v != tape %v", i, v, want.Data()[i])
				}
			}
			// The post-training cache must serve the same values.
			emb := m.Embeddings()
			for i, v := range emb.Data() {
				if v != want.Data()[i] {
					t.Fatalf("cached element %d: %v != tape %v", i, v, want.Data()[i])
				}
			}
		})
	}
}

// TestLossMatchesTapeForward checks the tape-free Loss equals the
// training-tape loss value exactly.
func TestLossMatchesTapeForward(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 8
	cfg.Layers = 2
	cfg.Epochs = 2
	m := NewModel(toyGraph(), cfg)
	m.Train()

	tape := ag.NewTape()
	_, loss := m.forward(tape)
	if got, want := m.Loss(), loss.Value.At(0, 0); got != want {
		t.Fatalf("tape-free loss %v != tape loss %v", got, want)
	}
}

package ddi

import (
	"fmt"

	"dssddi/internal/mat"
)

// FromEmbeddings rebuilds an inference-only Model around a previously
// trained relation embedding matrix (the snapshot load path). The
// returned model serves Embeddings and EdgeScore exactly like the
// model the matrix came from; it has no encoder, so Train panics —
// retraining starts from NewModel.
func FromEmbeddings(cfg Config, emb *mat.Dense) (*Model, error) {
	if emb == nil || emb.Rows() == 0 {
		return nil, fmt.Errorf("ddi: FromEmbeddings needs a non-empty embedding matrix")
	}
	return &Model{Config: cfg, emb: emb}, nil
}

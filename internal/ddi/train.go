package ddi

import (
	"fmt"
	"math/rand"

	"dssddi/internal/ag"
	"dssddi/internal/graph"
	"dssddi/internal/mat"
	"dssddi/internal/nn"
	"dssddi/internal/optim"
)

// Model is a trained (or trainable) DDIGCN.
type Model struct {
	Config Config
	Graph  *TrainingGraph

	params  nn.Params
	enc     encoder
	targets *mat.Dense

	// tape is retained across epochs: Reset + replay reuses the whole
	// graph and its buffers, so epoch 2..N allocate ~nothing.
	tape  *ag.Tape
	grads []*mat.Dense

	// emb caches the relation embeddings once training finishes, so
	// read paths never rebuild the encoder forward pass.
	emb *mat.Dense
}

// NewModel builds a DDIGCN over the given signed DDI graph, sampling
// the zero edges for its edge-regression training set.
func NewModel(g *graph.Signed, cfg Config) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Config: cfg}
	m.Graph = BuildTrainingGraph(rng, g, cfg.ZeroRatio)
	m.targets = m.Graph.TargetMatrix()
	switch cfg.Backbone {
	case GIN:
		m.enc = newGIN(rng, &m.params, g, cfg.Hidden, cfg.Layers)
	case SGCN:
		m.enc = newSGCN(rng, &m.params, g, cfg.Hidden, cfg.Layers)
	case SiGAT:
		m.enc = newAttn(rng, &m.params, g, cfg.Hidden, cfg.Layers, kindSiGAT)
	case SNEA:
		m.enc = newAttn(rng, &m.params, g, cfg.Hidden, cfg.Layers, kindSNEA)
	default:
		panic(fmt.Sprintf("ddi: unknown backbone %v", cfg.Backbone))
	}
	return m
}

// forward builds the full forward pass on the tape: embeddings,
// per-edge inner product scores (Eq. 5) and MSE loss (Eq. 6).
func (m *Model) forward(t *ag.Tape) (*ag.Node, *ag.Node) {
	z := m.enc.embed(t)
	zu := t.GatherRows(z, m.Graph.EdgeU)
	zv := t.GatherRows(z, m.Graph.EdgeV)
	scores := t.RowDot(zu, zv)
	loss := t.MSELoss(scores, m.targets)
	return z, loss
}

// Train fits the model for Config.Epochs, returning the loss history.
// One tape serves the whole run: each epoch resets and replays it, so
// steady-state epochs reuse every node, value, gradient and scratch
// buffer of the previous one.
func (m *Model) Train() []float64 {
	opt := optim.NewAdam(m.Config.LR)
	if m.tape == nil {
		m.tape = ag.NewTape()
	}
	if len(m.grads) != len(m.params.All()) {
		m.grads = make([]*mat.Dense, len(m.params.All()))
	}
	losses := make([]float64, 0, m.Config.Epochs)
	for epoch := 0; epoch < m.Config.Epochs; epoch++ {
		m.tape.Reset()
		_, loss := m.forward(m.tape)
		m.tape.Backward(loss)
		nn.CollectGradsInto(m.grads, m.tape, &m.params)
		optim.ClipGlobalNorm(m.grads, 5)
		opt.Step(m.params.All(), m.grads)
		losses = append(losses, loss.Value.At(0, 0))
	}
	m.emb = m.enc.inferEmbed()
	return losses
}

// Embeddings returns the drug relation embedding matrix (N x Hidden)
// through the tape-free inference path. After Train it is served from
// the post-training cache; the result is always a private copy.
func (m *Model) Embeddings() *mat.Dense {
	if m.emb != nil {
		return m.emb.Clone()
	}
	return m.enc.inferEmbed()
}

// EdgeScore predicts the interaction score between two drugs from the
// current embeddings (ẑ ≈ +1 synergy, -1 antagonism, 0 none).
func (m *Model) EdgeScore(z *mat.Dense, u, v int) float64 {
	return mat.Dot(z.Row(u), z.Row(v))
}

// Loss returns the current training loss (without stepping), computed
// on the tape-free inference path — no nodes, no gradients.
func (m *Model) Loss() float64 {
	z := m.enc.inferEmbed()
	n := float64(len(m.Graph.Targets))
	var sum float64
	for i := range m.Graph.EdgeU {
		s := mat.Dot(z.Row(m.Graph.EdgeU[i]), z.Row(m.Graph.EdgeV[i]))
		d := s - m.Graph.Targets[i]
		sum += d * d
	}
	return sum / n
}

// NumParams reports the trainable parameter count.
func (m *Model) NumParams() int { return m.params.Count() }

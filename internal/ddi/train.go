package ddi

import (
	"fmt"
	"math/rand"

	"dssddi/internal/ag"
	"dssddi/internal/graph"
	"dssddi/internal/mat"
	"dssddi/internal/nn"
	"dssddi/internal/optim"
)

// Model is a trained (or trainable) DDIGCN.
type Model struct {
	Config Config
	Graph  *TrainingGraph

	params  nn.Params
	enc     encoder
	targets *mat.Dense
}

// NewModel builds a DDIGCN over the given signed DDI graph, sampling
// the zero edges for its edge-regression training set.
func NewModel(g *graph.Signed, cfg Config) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Config: cfg}
	m.Graph = BuildTrainingGraph(rng, g, cfg.ZeroRatio)
	m.targets = m.Graph.TargetMatrix()
	switch cfg.Backbone {
	case GIN:
		m.enc = newGIN(rng, &m.params, g, cfg.Hidden, cfg.Layers)
	case SGCN:
		m.enc = newSGCN(rng, &m.params, g, cfg.Hidden, cfg.Layers)
	case SiGAT:
		m.enc = newAttn(rng, &m.params, g, cfg.Hidden, cfg.Layers, kindSiGAT)
	case SNEA:
		m.enc = newAttn(rng, &m.params, g, cfg.Hidden, cfg.Layers, kindSNEA)
	default:
		panic(fmt.Sprintf("ddi: unknown backbone %v", cfg.Backbone))
	}
	return m
}

// forward builds the full forward pass: embeddings, per-edge inner
// product scores (Eq. 5) and MSE loss (Eq. 6).
func (m *Model) forward() (*ag.Tape, *ag.Node, *ag.Node) {
	t := ag.NewTape()
	z := m.enc.embed(t)
	zu := t.GatherRows(z, m.Graph.EdgeU)
	zv := t.GatherRows(z, m.Graph.EdgeV)
	scores := t.RowDot(zu, zv)
	loss := t.MSELoss(scores, m.targets)
	return t, z, loss
}

// Train fits the model for Config.Epochs, returning the loss history.
func (m *Model) Train() []float64 {
	opt := optim.NewAdam(m.Config.LR)
	losses := make([]float64, 0, m.Config.Epochs)
	for epoch := 0; epoch < m.Config.Epochs; epoch++ {
		t, _, loss := m.forward()
		t.Backward(loss)
		grads := nn.CollectGrads(t, &m.params)
		optim.ClipGlobalNorm(grads, 5)
		opt.Step(m.params.All(), grads)
		losses = append(losses, loss.Value.At(0, 0))
	}
	return losses
}

// Embeddings runs a forward pass and returns the drug relation
// embedding matrix (N x Hidden), detached from any tape.
func (m *Model) Embeddings() *mat.Dense {
	_, z, _ := m.forward()
	return z.Value.Clone()
}

// EdgeScore predicts the interaction score between two drugs from the
// current embeddings (ẑ ≈ +1 synergy, -1 antagonism, 0 none).
func (m *Model) EdgeScore(z *mat.Dense, u, v int) float64 {
	return mat.Dot(z.Row(u), z.Row(v))
}

// Loss returns the current training loss (without stepping).
func (m *Model) Loss() float64 {
	_, _, loss := m.forward()
	return loss.Value.At(0, 0)
}

// NumParams reports the trainable parameter count.
func (m *Model) NumParams() int { return m.params.Count() }

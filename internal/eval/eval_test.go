package eval

import (
	"strings"
	"testing"

	"dssddi/internal/ddi"
)

// tinyOptions keeps harness tests fast.
func tinyOptions() Options {
	return Options{
		Seed: 1, Males: 130, Females: 110, MIMICPatients: 150,
		DDIEpochs: 40, MDEpochs: 60, BaselineEpochs: 40, Hidden: 24,
	}
}

func TestSuiteConstruction(t *testing.T) {
	s := NewSuite(tinyOptions())
	if s.Chronic.NumPatients() != 240 || s.Chronic.NumDrugs() != 86 {
		t.Fatalf("chronic shape %d %d", s.Chronic.NumPatients(), s.Chronic.NumDrugs())
	}
	if s.MIMIC.NumPatients() != 150 {
		t.Fatalf("mimic patients %d", s.MIMIC.NumPatients())
	}
	if s.KGEmb.Rows() != 86 {
		t.Fatal("KG embeddings missing")
	}
}

func TestDSSDDISuggesterFitsAndScores(t *testing.T) {
	s := NewSuite(tinyOptions())
	m := NewDSSDDI(ddi.SGCN, s.Opts)
	if m.Name() != "DSSDDI(SGCN)" {
		t.Fatalf("name %q", m.Name())
	}
	m.Fit(s.Chronic)
	scores := m.Scores(s.Chronic.Test[:3])
	if scores.Rows() != 3 || scores.Cols() != 86 {
		t.Fatalf("scores shape %dx%d", scores.Rows(), scores.Cols())
	}
}

func TestTableIIAblationRuns(t *testing.T) {
	s := NewSuite(tinyOptions())
	table := s.TableII()
	if len(table.Rows) != 4 {
		t.Fatalf("ablation rows %d, want 4", len(table.Rows))
	}
	wantRows := []string{"w/o DDI", "One-hot", "KG", "DDIGCN"}
	for i, w := range wantRows {
		if table.Rows[i].Method != w {
			t.Fatalf("row %d = %q, want %q", i, table.Rows[i].Method, w)
		}
		if len(table.Rows[i].Reports) != 6 {
			t.Fatalf("row %q has %d reports", w, len(table.Rows[i].Reports))
		}
	}
	out := table.Format()
	if !strings.Contains(out, "DDIGCN") || !strings.Contains(out, "P@6") {
		t.Fatalf("format output wrong:\n%s", out)
	}
}

func TestFigure2And3(t *testing.T) {
	s := NewSuite(tinyOptions())
	f2 := s.Figure2()
	if !strings.Contains(f2, "Hypertension") {
		t.Fatalf("figure 2 missing hypertension:\n%s", f2)
	}
	f3 := s.Figure3()
	if !strings.Contains(f3, "Hypertension") || !strings.Contains(f3, "#") {
		t.Fatalf("figure 3 malformed:\n%s", f3)
	}
}

func TestFigure7OverSmoothingShape(t *testing.T) {
	// Over-smoothing needs enough patients and training for the
	// propagation to concentrate representations; use a mid profile.
	opts := tinyOptions()
	opts.Males, opts.Females = 260, 220
	opts.BaselineEpochs = 150
	s := NewSuite(opts)
	res, txt := s.Figure7()
	if !strings.Contains(txt, "LightGCN patients") {
		t.Fatalf("figure 7 text malformed:\n%s", txt)
	}
	// The paper's core claim: DSSDDI patient representations are less
	// mutually similar than LightGCN's propagated ones.
	if res.DSSDDIPatients.Mean >= res.LightGCNPatients.Mean {
		t.Fatalf("over-smoothing shape violated: DSSDDI %.3f vs LightGCN %.3f",
			res.DSSDDIPatients.Mean, res.LightGCNPatients.Mean)
	}
}

func TestFigure9FindsCases(t *testing.T) {
	s := NewSuite(tinyOptions())
	cases, txt := s.Figure9()
	if len(cases) == 0 {
		t.Fatal("no case studies found")
	}
	if !strings.Contains(txt, "rank") && !strings.Contains(txt, "similar") {
		t.Fatalf("figure 9 text malformed:\n%s", txt)
	}
	kinds := map[string]bool{}
	for _, c := range cases {
		kinds[c.Kind] = true
	}
	if len(kinds) < 2 {
		t.Fatalf("expected at least two distinct case kinds, got %v", kinds)
	}
}

func TestFormatSS(t *testing.T) {
	rows := []SSRow{{Method: "X", SS: map[int]float64{2: 0.5, 3: 0.25, 4: 0.1, 5: 0.05, 6: 0.02}}}
	out := FormatSS("Table III", rows)
	if !strings.Contains(out, "SS@2") || !strings.Contains(out, "0.5000") {
		t.Fatalf("SS format wrong:\n%s", out)
	}
}

func TestTableHelpers(t *testing.T) {
	s := NewSuite(tinyOptions())
	table := s.TableII()
	if table.BestByNDCG() == "" {
		t.Fatal("BestByNDCG empty")
	}
	if table.Row("DDIGCN") == nil {
		t.Fatal("Row lookup failed")
	}
	if table.Row("nope") != nil {
		t.Fatal("missing row should be nil")
	}
}

package eval

import (
	"fmt"
	"sort"
	"strings"

	"dssddi/internal/baselines"
	"dssddi/internal/ddi"
	"dssddi/internal/graph"
	"dssddi/internal/mat"
	"dssddi/internal/metrics"
	"dssddi/internal/ms"
	"dssddi/internal/synth"
)

// Figure2 reproduces the disease-prevalence pie of Fig. 2 as a text
// distribution over the generated cohort.
func (s *Suite) Figure2() string {
	counts := make(map[synth.Disease]int)
	for _, p := range s.Cohort.Patients {
		for _, d := range p.Diseases {
			counts[d]++
		}
	}
	type entry struct {
		d synth.Disease
		n int
	}
	var es []entry
	for d, n := range counts {
		es = append(es, entry{d, n})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].n != es[j].n {
			return es[i].n > es[j].n
		}
		return es[i].d < es[j].d
	})
	var b strings.Builder
	b.WriteString("Figure 2: proportion of patients with various diseases\n")
	total := len(s.Cohort.Patients)
	for _, e := range es {
		pct := 100 * float64(e.n) / float64(total)
		bar := strings.Repeat("#", int(pct/2))
		fmt.Fprintf(&b, "%-28s %5.1f%% %s\n", e.d.String(), pct, bar)
	}
	return b.String()
}

// Figure3 reproduces the medications-per-disease bars of Fig. 3 from
// the drug catalogue.
func (s *Suite) Figure3() string {
	byDisease := synth.DrugsByDisease(s.Cohort.Catalog)
	type entry struct {
		d synth.Disease
		n int
	}
	var es []entry
	for d, drugs := range byDisease {
		es = append(es, entry{d, len(drugs)})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].n != es[j].n {
			return es[i].n > es[j].n
		}
		return es[i].d < es[j].d
	})
	var b strings.Builder
	b.WriteString("Figure 3: number of medications for common chronic diseases\n")
	for _, e := range es {
		fmt.Fprintf(&b, "%-28s %2d %s\n", e.d.String(), e.n, strings.Repeat("#", e.n))
	}
	return b.String()
}

// SimilarityStats summarises a cosine-similarity heat map.
type SimilarityStats struct {
	Mean, Min, Max float64
}

func offDiagonalCosine(m *mat.Dense) SimilarityStats {
	st := SimilarityStats{Min: 1, Max: -1}
	var sum float64
	var count int
	for i := 0; i < m.Rows(); i++ {
		for j := i + 1; j < m.Rows(); j++ {
			c := mat.CosineSimilarity(m.Row(i), m.Row(j))
			sum += c
			count++
			if c < st.Min {
				st.Min = c
			}
			if c > st.Max {
				st.Max = c
			}
		}
	}
	if count > 0 {
		st.Mean = sum / float64(count)
	}
	return st
}

// Figure7Result carries the representation-similarity comparison.
type Figure7Result struct {
	DSSDDIPatients   SimilarityStats
	LightGCNPatients SimilarityStats
	DSSDDIDrugs      SimilarityStats
	LightGCNDrugs    SimilarityStats
}

// Figure7 reproduces the over-smoothing analysis of Fig. 7: cosine
// similarity between 100 patient representations and between the 86
// drug representations, for DSSDDI vs LightGCN. The paper's finding is
// that LightGCN's patient representations are nearly identical (mean
// cosine close to 1) while DSSDDI's stay distinguishable, and DSSDDI's
// drug representations show same-indication structure.
func (s *Suite) Figure7() (Figure7Result, string) {
	var res Figure7Result

	dss := NewDSSDDI(ddi.SGCN, s.Opts)
	dss.Fit(s.Chronic)
	lg := quickLightGCN(s.Opts)
	lg.Fit(s.Chronic)

	n := 100
	if n > len(s.Chronic.Test) {
		n = len(s.Chronic.Test)
	}
	sample := s.Chronic.Test[:n]
	res.DSSDDIPatients = offDiagonalCosine(dss.MD.PatientRepresentations(sample))
	res.LightGCNPatients = offDiagonalCosine(lg.PatientRepresentations(sample))

	res.DSSDDIDrugs = offDiagonalCosine(dss.MD.DrugRepresentations())
	res.LightGCNDrugs = offDiagonalCosine(lg.DrugRepresentations())

	var b strings.Builder
	b.WriteString("Figure 7: cosine similarity of learned representations\n")
	fmt.Fprintf(&b, "%-24s %8s %8s %8s\n", "", "mean", "min", "max")
	row := func(name string, st SimilarityStats) {
		fmt.Fprintf(&b, "%-24s %8.4f %8.4f %8.4f\n", name, st.Mean, st.Min, st.Max)
	}
	row("DSSDDI patients", res.DSSDDIPatients)
	row("LightGCN patients", res.LightGCNPatients)
	row("DSSDDI drugs", res.DSSDDIDrugs)
	row("LightGCN drugs", res.LightGCNDrugs)
	b.WriteString("(paper: LightGCN patient similarities ~1 = over-smoothed;\n")
	b.WriteString(" DSSDDI patients stay distinguishable)\n")
	return res, b.String()
}

// Figure8 reproduces the cardiovascular case study of Fig. 8: the
// top-3 suggestions of DSSDDI and four baselines for one test patient
// with cardiovascular disease, each explained through the MS module.
func (s *Suite) Figure8() string {
	patient := s.findCardioPatient()
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: explanation subgraphs for test patient %d\n\n", patient)

	names := s.Chronic.DrugNames
	explain := func(m baselines.Suggester) {
		m.Fit(s.Chronic)
		scores := m.Scores([]int{patient})
		top := metrics.TopK(scores.Row(0), 3)
		ex := ms.Explain(s.Chronic.DDI, top, ms.DefaultOptions())
		fmt.Fprintf(&b, "--- %s ---\n%s\n", m.Name(), ex.Render(names))
	}
	explain(NewDSSDDI(ddi.SGCN, s.Opts))
	explain(quickLightGCN(s.Opts))
	explain(quickGCMC(s.Opts))
	explain(baselines.NewSVM())
	explain(baselines.NewECC())
	return b.String()
}

// findCardioPatient picks a test patient with cardiovascular disease
// (falling back to the first test patient).
func (s *Suite) findCardioPatient() int {
	for _, p := range s.Chronic.Test {
		for _, d := range s.Cohort.Patients[p].Diseases {
			if d == synth.CardiovascularEvents {
				return p
			}
		}
	}
	return s.Chronic.Test[0]
}

// CaseStudy is one Fig. 9-style rank comparison.
type CaseStudy struct {
	Kind      string
	Patient   int
	DrugA     int // the interacting pair (A taken, B affected)
	DrugB     int
	Sign      graph.Sign
	RankNoDDI int // rank of DrugB without DDI
	RankDDI   int // rank of DrugB with DDI
}

// Figure9 reproduces the four case studies of Fig. 9: how DDI
// information moves drugs up (synergy), down (antagonism), groups
// indirectly-related drugs, and deviates from ground truth for safety.
// It searches the test split for patients exhibiting each pattern and
// reports the rank shifts between the full system and the w/o-DDI
// ablation.
func (s *Suite) Figure9() ([]CaseStudy, string) {
	withDDI := NewDSSDDI(ddi.SGCN, s.Opts)
	withDDI.Fit(s.Chronic)
	noDDI := NewDSSDDI(ddi.SGCN, s.Opts)
	noDDI.UseDDI = false
	noDDI.DisplayName = "w/o DDI"
	noDDI.Fit(s.Chronic)

	scoresDDI := withDDI.Scores(s.Chronic.Test)
	scoresNo := noDDI.Scores(s.Chronic.Test)

	var cases []CaseStudy
	// Case 1: synergy promotion — patient takes A, A-s-B synergy, B
	// taken too, and DDI ranks B higher than w/o DDI.
	// Case 2: antagonism demotion — patient takes A, A-a-B, B NOT
	// taken, and DDI ranks B lower.
	// Case 4: ground-truth deviation — patient takes BOTH ends of an
	// antagonistic pair; DDI ranks one of them lower.
	for ti, p := range s.Chronic.Test {
		taken := s.Chronic.TruePositives(p)
		isTaken := make(map[int]bool, len(taken))
		for _, v := range taken {
			isTaken[v] = true
		}
		for _, a := range taken {
			for _, bDrug := range s.Chronic.DDI.Neighbors(a, nil) {
				sign, _ := s.Chronic.DDI.Edge(a, bDrug)
				rDDI := metrics.Rank(scoresDDI.Row(ti), bDrug)
				rNo := metrics.Rank(scoresNo.Row(ti), bDrug)
				switch {
				case sign == graph.Synergy && isTaken[bDrug] && rDDI < rNo && !hasCase(cases, "synergy promotion"):
					cases = append(cases, CaseStudy{"synergy promotion", p, a, bDrug, sign, rNo, rDDI})
				case sign == graph.Antagonism && !isTaken[bDrug] && rDDI > rNo && !hasCase(cases, "antagonism demotion"):
					cases = append(cases, CaseStudy{"antagonism demotion", p, a, bDrug, sign, rNo, rDDI})
				case sign == graph.Antagonism && isTaken[bDrug] && rDDI > rNo && !hasCase(cases, "ground-truth deviation"):
					cases = append(cases, CaseStudy{"ground-truth deviation", p, a, bDrug, sign, rNo, rDDI})
				}
			}
		}
		if len(cases) >= 3 {
			break
		}
	}
	// Case 3: indirect DDI — two drugs with no direct edge but many
	// common antagonistic partners should have similar DDI relation
	// embeddings.
	if c, ok := s.indirectCase(withDDI); ok {
		cases = append(cases, c)
	}

	var b strings.Builder
	b.WriteString("Figure 9: case studies (rank shifts from DDI)\n")
	names := s.Chronic.DrugNames
	for _, c := range cases {
		if c.Kind == "indirect DDI" {
			fmt.Fprintf(&b, "%-24s %s ~ %s: similar relation embeddings via shared antagonists (cos %d%%)\n",
				c.Kind, names[c.DrugA], names[c.DrugB], c.RankDDI)
			continue
		}
		fmt.Fprintf(&b, "%-24s patient %d: %s (%v with %s) rank %d -> %d\n",
			c.Kind, c.Patient, names[c.DrugB], c.Sign, names[c.DrugA], c.RankNoDDI, c.RankDDI)
	}
	return cases, b.String()
}

func hasCase(cs []CaseStudy, kind string) bool {
	for _, c := range cs {
		if c.Kind == kind {
			return true
		}
	}
	return false
}

// indirectCase finds two drugs without a direct interaction that share
// >= 2 antagonistic partners (like Amlodipine and Felodipine in the
// paper's Case 3) and reports their relation-embedding similarity.
func (s *Suite) indirectCase(dss *DSSDDISuggester) (CaseStudy, bool) {
	ddiGraph := s.Chronic.DDI
	n := ddiGraph.N()
	isAnt := func(s graph.Sign) bool { return s == graph.Antagonism }
	rel := dss.MD.DrugRepresentations()
	best := CaseStudy{Kind: "indirect DDI"}
	bestShared := 0
	for u := 0; u < n; u++ {
		nu := ddiGraph.Neighbors(u, isAnt)
		for v := u + 1; v < n; v++ {
			if _, ok := ddiGraph.Edge(u, v); ok {
				continue
			}
			shared := 0
			nv := ddiGraph.Neighbors(v, isAnt)
			set := make(map[int]bool, len(nu))
			for _, x := range nu {
				set[x] = true
			}
			for _, x := range nv {
				if set[x] {
					shared++
				}
			}
			if shared > bestShared {
				bestShared = shared
				cos := mat.CosineSimilarity(rel.Row(u), rel.Row(v))
				best.DrugA, best.DrugB = u, v
				best.RankDDI = int(cos * 100) // store similarity (%) for display
			}
		}
	}
	return best, bestShared >= 2
}

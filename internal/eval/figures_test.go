package eval

import (
	"strings"
	"testing"

	"dssddi/internal/ddi"
	"dssddi/internal/graph"
)

func ddiBackboneSGCN() ddi.Backbone { return ddi.SGCN }

func TestFigure8CaseStudy(t *testing.T) {
	opts := tinyOptions()
	opts.BaselineEpochs = 30
	opts.MDEpochs = 40
	s := NewSuite(opts)
	out := s.Figure8()
	if !strings.Contains(out, "DSSDDI(SGCN)") || !strings.Contains(out, "LightGCN") {
		t.Fatalf("figure 8 must compare methods:\n%s", out)
	}
	if !strings.Contains(out, "Suggestion Satisfaction") {
		t.Fatalf("figure 8 must carry SS scores:\n%s", out)
	}
	// Every section explains exactly the top-3 suggestions.
	if strings.Count(out, "Suggestion:") != 5 {
		t.Fatalf("expected 5 method sections, got %d", strings.Count(out, "Suggestion:"))
	}
}

func TestTableIVSmoke(t *testing.T) {
	opts := tinyOptions()
	opts.MIMICPatients = 120
	opts.BaselineEpochs = 30
	opts.MDEpochs = 40
	s := NewSuite(opts)
	table := s.TableIV()
	if len(table.Rows) != 9 {
		t.Fatalf("Table IV should have 8 baselines + DSSDDI(GIN), got %d", len(table.Rows))
	}
	last := table.Rows[len(table.Rows)-1]
	if last.Method != "DSSDDI(GIN)" {
		t.Fatalf("last row %q, want DSSDDI(GIN)", last.Method)
	}
	for _, row := range table.Rows {
		for _, r := range row.Reports {
			if r.Precision < 0 || r.Precision > 1 {
				t.Fatalf("%s has precision %v out of range", row.Method, r.Precision)
			}
		}
	}
	// The MIMIC task is highly predictable from history: the best
	// method must clear a meaningful bar even at smoke scale.
	if best := table.BestByNDCG(); table.Row(best)[0].NDCG < 0.3 {
		t.Fatalf("best NDCG@8 %.3f implausibly low for MIMIC-like data", table.Row(best)[0].NDCG)
	}
}

func TestTableIIIOrderingSmoke(t *testing.T) {
	opts := tinyOptions()
	opts.BaselineEpochs = 30
	opts.MDEpochs = 40
	s := NewSuite(opts)
	title, rows := s.TableIII()
	if len(rows) != 12 {
		t.Fatalf("Table III should have 12 methods, got %d", len(rows))
	}
	if !strings.Contains(title, "Suggestion Satisfaction") {
		t.Fatalf("title %q", title)
	}
	// SS@2 compresses towards ~0.5 for every method (Eq. 19's
	// k(k-1)+2 = 4 denominator); verify the paper's compression effect.
	for _, row := range rows {
		if row.SS[2] < 0.2 || row.SS[2] > 0.8 {
			t.Fatalf("%s SS@2 = %v outside the compression band", row.Method, row.SS[2])
		}
		if row.SS[6] >= row.SS[2] {
			t.Fatalf("%s SS should shrink from k=2 to k=6 (%v vs %v)",
				row.Method, row.SS[2], row.SS[6])
		}
	}
}

func TestIndirectCaseFindsSharedAntagonists(t *testing.T) {
	opts := tinyOptions()
	opts.MDEpochs = 30
	s := NewSuite(opts)
	dss := NewDSSDDI(ddiBackboneSGCN(), opts)
	dss.Fit(s.Chronic)
	c, ok := s.indirectCase(dss)
	if !ok {
		t.Skip("no indirect pair in this generation")
	}
	if _, direct := s.Chronic.DDI.Edge(c.DrugA, c.DrugB); direct {
		t.Fatal("indirect case must have no direct edge")
	}
	// Both drugs must share at least two antagonistic partners.
	isAnt := func(sg graph.Sign) bool { return sg == graph.Antagonism }
	na := s.Chronic.DDI.Neighbors(c.DrugA, isAnt)
	set := map[int]bool{}
	for _, x := range na {
		set[x] = true
	}
	shared := 0
	for _, x := range s.Chronic.DDI.Neighbors(c.DrugB, isAnt) {
		if set[x] {
			shared++
		}
	}
	if shared < 2 {
		t.Fatalf("indirect case has only %d shared antagonists", shared)
	}
}

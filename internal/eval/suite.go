// Package eval is the experiment harness: it trains every method of
// the paper's evaluation on the synthetic datasets and regenerates each
// table (I-IV) and figure (2, 3, 7, 8, 9) of the paper as formatted
// text. cmd/benchtab and the repository's benchmarks drive it.
package eval

import (
	"fmt"
	"math/rand"

	"dssddi/internal/baselines"
	"dssddi/internal/dataset"
	"dssddi/internal/ddi"
	"dssddi/internal/kg"
	"dssddi/internal/mat"
	"dssddi/internal/md"
	"dssddi/internal/metrics"
	"dssddi/internal/synth"
)

// Options sizes an experiment run. Quick mode shrinks the cohort and
// epoch counts so a full table regenerates in seconds; Full mode uses
// the paper's sizes (4157 chronic records, 6350 MIMIC patients, 400 +
// 1000 training epochs).
type Options struct {
	Seed           int64
	Males          int
	Females        int
	MIMICPatients  int
	DDIEpochs      int
	MDEpochs       int
	BaselineEpochs int
	Hidden         int
}

// Quick returns the fast profile used by unit benches and smoke runs.
func Quick() Options {
	return Options{
		Seed: 1, Males: 420, Females: 380, MIMICPatients: 600,
		DDIEpochs: 150, MDEpochs: 250, BaselineEpochs: 150, Hidden: 48,
	}
}

// Full returns the paper-scale profile.
func Full() Options {
	return Options{
		Seed: 1, Males: 2254, Females: 1903, MIMICPatients: 6350,
		DDIEpochs: 400, MDEpochs: 1000, BaselineEpochs: 300, Hidden: 64,
	}
}

// Suite holds the materialised data shared by all experiments of one
// run.
type Suite struct {
	Opts     Options
	Chronic  *dataset.Dataset
	Cohort   *synth.Cohort
	MIMIC    *dataset.Dataset
	MIMICGen *synth.MIMIC
	KGEmb    *mat.Dense // TransE drug embeddings (Table II "KG" row)
}

// NewSuite generates the chronic and MIMIC data for one run.
func NewSuite(opts Options) *Suite {
	s := &Suite{Opts: opts}
	rng := rand.New(rand.NewSource(opts.Seed))
	copts := synth.DefaultCohortOptions()
	copts.Males, copts.Females = opts.Males, opts.Females
	s.Cohort = synth.GenerateCohort(rng, copts)

	kgraph := kg.Generate(rng, s.Cohort.Catalog, 40)
	kcfg := kg.DefaultTransEConfig()
	kcfg.Dim = opts.Hidden
	kcfg.Epochs = 30
	kcfg.Seed = opts.Seed
	s.KGEmb = kg.Train(kgraph, kcfg).DrugEmbeddings(len(s.Cohort.Catalog))

	s.Chronic = dataset.FromCohort(rng, s.Cohort, s.KGEmb)

	mopts := synth.DefaultMIMICOptions()
	mopts.Patients = opts.MIMICPatients
	s.MIMICGen = synth.GenerateMIMIC(rng, mopts)
	s.MIMIC = dataset.FromMIMIC(rng, s.MIMICGen)
	return s
}

// DSSDDISuggester adapts the full DSSDDI pipeline (DDIGCN + MDGCN) to
// the Suggester interface used by the harness.
type DSSDDISuggester struct {
	Backbone ddi.Backbone
	Opts     Options
	// RelEmbOverride, when set, replaces the DDIGCN embeddings
	// (Table II ablations). UseDDI=false disables the addition
	// entirely.
	RelEmbOverride *mat.Dense
	UseDDI         bool
	DisplayName    string

	MD *md.Model
}

// NewDSSDDI builds the standard system with the given backbone.
func NewDSSDDI(b ddi.Backbone, opts Options) *DSSDDISuggester {
	return &DSSDDISuggester{
		Backbone: b, Opts: opts, UseDDI: true,
		DisplayName: fmt.Sprintf("DSSDDI(%s)", b),
	}
}

// Name implements Suggester.
func (s *DSSDDISuggester) Name() string { return s.DisplayName }

// Fit implements Suggester.
func (s *DSSDDISuggester) Fit(d *dataset.Dataset) {
	var relEmb *mat.Dense
	switch {
	case !s.UseDDI:
		relEmb = nil
	case s.RelEmbOverride != nil:
		relEmb = s.RelEmbOverride
	default:
		dcfg := ddi.DefaultConfig()
		dcfg.Backbone = s.Backbone
		dcfg.Hidden = s.Opts.Hidden
		dcfg.Epochs = s.Opts.DDIEpochs
		dcfg.Seed = s.Opts.Seed
		dm := ddi.NewModel(d.DDI, dcfg)
		dm.Train()
		relEmb = dm.Embeddings()
	}
	mcfg := md.DefaultConfig()
	mcfg.Hidden = s.Opts.Hidden
	mcfg.Epochs = s.Opts.MDEpochs
	mcfg.Seed = s.Opts.Seed
	mcfg.UseDDI = s.UseDDI
	// δ selected on the validation split for the synthetic cohort (the
	// paper fixes δ=1 on its data and selects hyperparameters on
	// validation; see EXPERIMENTS.md).
	mcfg.Delta = 0.3
	s.MD = md.NewModel(d, relEmb, mcfg)
	s.MD.Train()
}

// Scores implements Suggester.
func (s *DSSDDISuggester) Scores(patients []int) *mat.Dense {
	return s.MD.Scores(patients)
}

// evaluateOn fits a suggester and computes metrics over the test split.
func evaluateOn(m baselines.Suggester, d *dataset.Dataset, ks []int) []metrics.Report {
	m.Fit(d)
	return testReports(m, d, ks)
}

// testReports scores the test split of d with an already-fitted model.
func testReports(m baselines.Suggester, d *dataset.Dataset, ks []int) []metrics.Report {
	scores := m.Scores(d.Test)
	rows := make([][]float64, len(d.Test))
	truth := make([][]int, len(d.Test))
	for i, p := range d.Test {
		rows[i] = scores.Row(i)
		truth[i] = d.TruePositives(p)
	}
	return metrics.Evaluate(rows, truth, ks)
}

// chronicBaselines instantiates the eight baselines with epoch budgets
// from opts.
func chronicBaselines(opts Options) []baselines.Suggester {
	lg := baselines.NewLightGCN()
	lg.Epochs = opts.BaselineEpochs
	gc := baselines.NewGCMC()
	gc.Epochs = opts.BaselineEpochs
	bp := baselines.NewBiparGCN()
	bp.Epochs = opts.BaselineEpochs
	sd := baselines.NewSafeDrug()
	sd.Epochs = opts.BaselineEpochs
	cr := baselines.NewCauseRec()
	cr.Epochs = opts.BaselineEpochs
	return []baselines.Suggester{
		baselines.NewUserSim(),
		baselines.NewECC(),
		baselines.NewSVM(),
		gc, lg, sd, bp, cr,
	}
}

package eval

import (
	"fmt"
	"strings"

	"dssddi/internal/baselines"
	"dssddi/internal/ddi"
	"dssddi/internal/mat"
	"dssddi/internal/metrics"
	"dssddi/internal/ms"
)

// MethodResult is one row of a results table.
type MethodResult struct {
	Method  string
	Reports []metrics.Report
}

// Table is a formatted experiment result.
type Table struct {
	Title string
	Ks    []int
	Rows  []MethodResult
}

// TableI reproduces the paper's Table I: medication-suggestion
// performance of every baseline and all four DSSDDI backbones on the
// chronic data set, at k = 1..6.
func (s *Suite) TableI() Table {
	ks := []int{6, 5, 4, 3, 2, 1}
	t := Table{Title: "Table I: medication suggestion on chronic data", Ks: ks}
	for _, m := range chronicBaselines(s.Opts) {
		t.Rows = append(t.Rows, MethodResult{m.Name(), evaluateOn(m, s.Chronic, ks)})
	}
	for _, b := range []ddi.Backbone{ddi.SiGAT, ddi.SNEA, ddi.GIN, ddi.SGCN} {
		m := NewDSSDDI(b, s.Opts)
		t.Rows = append(t.Rows, MethodResult{m.Name(), evaluateOn(m, s.Chronic, ks)})
	}
	return t
}

// TableII reproduces the ablation study of drug embeddings (Table II):
// the MD module with no DDI embeddings, one-hot embeddings, pretrained
// KG embeddings and the learned DDIGCN embeddings (SGCN backbone).
func (s *Suite) TableII() Table {
	ks := []int{6, 5, 4, 3, 2, 1}
	t := Table{Title: "Table II: drug-embedding ablation (SGCN backbone)", Ks: ks}

	withoutDDI := NewDSSDDI(ddi.SGCN, s.Opts)
	withoutDDI.UseDDI = false
	withoutDDI.DisplayName = "w/o DDI"

	oneHot := NewDSSDDI(ddi.SGCN, s.Opts)
	oneHot.RelEmbOverride = mat.OneHot(s.Chronic.NumDrugs())
	oneHot.DisplayName = "One-hot"

	kgEmb := NewDSSDDI(ddi.SGCN, s.Opts)
	kgEmb.RelEmbOverride = s.KGEmb
	kgEmb.DisplayName = "KG"

	full := NewDSSDDI(ddi.SGCN, s.Opts)
	full.DisplayName = "DDIGCN"

	for _, m := range []*DSSDDISuggester{withoutDDI, oneHot, kgEmb, full} {
		t.Rows = append(t.Rows, MethodResult{m.Name(), evaluateOn(m, s.Chronic, ks)})
	}
	return t
}

// SSRow is one row of the Suggestion Satisfaction table.
type SSRow struct {
	Method string
	SS     map[int]float64
}

// TableIII reproduces Table III: mean Suggestion Satisfaction of the
// top-k suggestions (k = 2..6) of every method on the chronic data.
func (s *Suite) TableIII() (string, []SSRow) {
	ks := []int{2, 3, 4, 5, 6}
	var rows []SSRow
	eval := func(m baselines.Suggester) {
		m.Fit(s.Chronic)
		scores := m.Scores(s.Chronic.Test)
		row := SSRow{Method: m.Name(), SS: make(map[int]float64)}
		for _, k := range ks {
			sugg := make([][]int, scores.Rows())
			for i := 0; i < scores.Rows(); i++ {
				sugg[i] = metrics.TopK(scores.Row(i), k)
			}
			row.SS[k] = ms.MeanSS(s.Chronic.DDI, sugg, ms.DefaultOptions())
		}
		rows = append(rows, row)
	}
	for _, m := range chronicBaselines(s.Opts) {
		eval(m)
	}
	for _, b := range []ddi.Backbone{ddi.SiGAT, ddi.SNEA, ddi.GIN, ddi.SGCN} {
		eval(NewDSSDDI(b, s.Opts))
	}
	return "Table III: Suggestion Satisfaction (SS@k)", rows
}

// TableIV reproduces Table IV: performance on the MIMIC-like data set
// at k = 8, 6, 4. Only the GIN backbone applies (the public DDI extract
// is unsigned), as the paper notes.
func (s *Suite) TableIV() Table {
	ks := []int{8, 6, 4}
	t := Table{Title: "Table IV: medication suggestion on MIMIC-like data", Ks: ks}

	// SafeDrug and CauseRec receive the visit histories on MIMIC.
	sd := baselines.NewSafeDrug()
	sd.Epochs = s.Opts.BaselineEpochs
	sd.VisitHistory = s.MIMICGen.VisitMedicineHistory()

	models := []baselines.Suggester{
		baselines.NewUserSim(),
		baselines.NewECC(),
		baselines.NewSVM(),
		quickGCMC(s.Opts), quickLightGCN(s.Opts), sd,
		quickBiparGCN(s.Opts), quickCauseRec(s.Opts),
	}
	for _, m := range models {
		t.Rows = append(t.Rows, MethodResult{m.Name(), evaluateOn(m, s.MIMIC, ks)})
	}
	g := NewDSSDDI(ddi.GIN, s.Opts)
	t.Rows = append(t.Rows, MethodResult{g.Name(), evaluateOn(g, s.MIMIC, ks)})
	return t
}

func quickGCMC(o Options) *baselines.GCMC {
	m := baselines.NewGCMC()
	m.Epochs = o.BaselineEpochs
	return m
}

func quickLightGCN(o Options) *baselines.LightGCN {
	m := baselines.NewLightGCN()
	m.Epochs = o.BaselineEpochs
	return m
}

func quickBiparGCN(o Options) *baselines.BiparGCN {
	m := baselines.NewBiparGCN()
	m.Epochs = o.BaselineEpochs
	return m
}

func quickCauseRec(o Options) *baselines.CauseRec {
	m := baselines.NewCauseRec()
	m.Epochs = o.BaselineEpochs
	return m
}

// Format renders a Table as aligned text with P/R/NDCG blocks per k,
// matching the layout of the paper's tables.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-16s", "Method")
	for _, k := range t.Ks {
		fmt.Fprintf(&b, " | P@%-2d   R@%-2d   NDCG@%-2d", k, k, k)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 16+len(t.Ks)*25))
	b.WriteString("\n")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-16s", row.Method)
		for _, r := range row.Reports {
			fmt.Fprintf(&b, " | %.4f %.4f %.4f ", r.Precision, r.Recall, r.NDCG)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatSS renders the Suggestion Satisfaction rows.
func FormatSS(title string, rows []SSRow) string {
	ks := []int{2, 3, 4, 5, 6}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-16s", title, "Method")
	for _, k := range ks {
		fmt.Fprintf(&b, " SS@%-4d", k)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 16+8*len(ks)))
	b.WriteString("\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-16s", row.Method)
		for _, k := range ks {
			fmt.Fprintf(&b, " %.4f", row.SS[k])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// BestByNDCG returns the method with the highest NDCG at the first k
// of the table (used by tests to assert the paper's ordering).
func (t Table) BestByNDCG() string {
	best, bestV := "", -1.0
	for _, row := range t.Rows {
		if len(row.Reports) == 0 {
			continue
		}
		if v := row.Reports[0].NDCG; v > bestV {
			best, bestV = row.Method, v
		}
	}
	return best
}

// Row returns the reports for a method, or nil.
func (t Table) Row(method string) []metrics.Report {
	for _, row := range t.Rows {
		if row.Method == method {
			return row.Reports
		}
	}
	return nil
}

// Package graph provides the graph data structures used across the
// system: a generic undirected graph with adjacency queries (the base
// for the truss/Steiner/community algorithms), the signed drug-drug
// interaction graph, and the patient-drug bipartite graph.
package graph

import (
	"fmt"
	"sort"
)

// Undirected is a simple undirected graph on nodes 0..n-1 with no
// parallel edges or self-loops.
type Undirected struct {
	n   int
	adj []map[int]bool
}

// NewUndirected returns an empty graph on n nodes.
func NewUndirected(n int) *Undirected {
	g := &Undirected{n: n, adj: make([]map[int]bool, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]bool)
	}
	return g
}

// N returns the number of nodes.
func (g *Undirected) N() int { return g.n }

// AddEdge inserts the undirected edge {u, v}. Self-loops are rejected;
// duplicate insertion is a no-op.
func (g *Undirected) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on node %d", u))
	}
	g.checkNode(u)
	g.checkNode(v)
	g.adj[u][v] = true
	g.adj[v][u] = true
}

// RemoveEdge deletes {u, v} if present.
func (g *Undirected) RemoveEdge(u, v int) {
	g.checkNode(u)
	g.checkNode(v)
	delete(g.adj[u], v)
	delete(g.adj[v], u)
}

// HasEdge reports whether {u, v} is present.
func (g *Undirected) HasEdge(u, v int) bool {
	g.checkNode(u)
	g.checkNode(v)
	return g.adj[u][v]
}

// Degree returns the degree of u.
func (g *Undirected) Degree(u int) int {
	g.checkNode(u)
	return len(g.adj[u])
}

// Neighbors returns the sorted neighbour list of u.
func (g *Undirected) Neighbors(u int) []int {
	g.checkNode(u)
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Edges returns all edges as sorted (u < v) pairs in deterministic
// order.
func (g *Undirected) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// NumEdges returns the edge count.
func (g *Undirected) NumEdges() int {
	var m int
	for u := 0; u < g.n; u++ {
		m += len(g.adj[u])
	}
	return m / 2
}

// Clone returns a deep copy.
func (g *Undirected) Clone() *Undirected {
	c := NewUndirected(g.n)
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			c.adj[u][v] = true
		}
	}
	return c
}

// Subgraph returns the subgraph induced by keep (node IDs are
// preserved; nodes outside keep become isolated).
func (g *Undirected) Subgraph(keep map[int]bool) *Undirected {
	s := NewUndirected(g.n)
	for u := 0; u < g.n; u++ {
		if !keep[u] {
			continue
		}
		for v := range g.adj[u] {
			if keep[v] && u < v {
				s.AddEdge(u, v)
			}
		}
	}
	return s
}

func (g *Undirected) checkNode(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range %d", u, g.n))
	}
}

// BFSDistances returns hop distances from src to every node; -1 marks
// unreachable nodes.
func (g *Undirected) BFSDistances(src int) []int {
	g.checkNode(src)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := range g.adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ConnectedComponent returns the set of nodes reachable from src.
func (g *Undirected) ConnectedComponent(src int) map[int]bool {
	comp := make(map[int]bool)
	dist := g.BFSDistances(src)
	for v, d := range dist {
		if d >= 0 {
			comp[v] = true
		}
	}
	return comp
}

// Connected reports whether every node in nodes lies in one connected
// component of g (only nodes with at least one incident edge or listed
// in nodes are considered).
func (g *Undirected) Connected(nodes []int) bool {
	if len(nodes) <= 1 {
		return true
	}
	dist := g.BFSDistances(nodes[0])
	for _, v := range nodes[1:] {
		if dist[v] < 0 {
			return false
		}
	}
	return true
}

// Diameter returns the longest shortest-path distance between any two
// non-isolated, mutually reachable nodes of g; 0 for an edgeless graph.
func (g *Undirected) Diameter() int {
	var diam int
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) == 0 {
			continue
		}
		for v, d := range g.BFSDistances(u) {
			if d > diam && len(g.adj[v]) > 0 {
				diam = d
			}
		}
	}
	return diam
}

// QueryDistance returns, for every node, the maximum hop distance to
// any node in query (used as the "distance to the query set" in the
// closest-truss-community shrink phase). Unreachable distances are
// reported as a large positive value.
func (g *Undirected) QueryDistance(query []int) []int {
	const inf = 1 << 30
	maxDist := make([]int, g.n)
	for _, q := range query {
		dist := g.BFSDistances(q)
		for v, d := range dist {
			if d < 0 {
				d = inf
			}
			if d > maxDist[v] {
				maxDist[v] = d
			}
		}
	}
	return maxDist
}

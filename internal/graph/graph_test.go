package graph

import (
	"testing"
)

func TestUndirectedBasics(t *testing.T) {
	g := NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.HasEdge(1, 0) {
		t.Fatal("edges must be symmetric")
	}
	if g.Degree(1) != 2 {
		t.Fatalf("deg(1)=%d, want 2", g.Degree(1))
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m=%d", g.NumEdges())
	}
	g.AddEdge(0, 1) // duplicate no-op
	if g.NumEdges() != 2 {
		t.Fatal("duplicate edge changed count")
	}
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) {
		t.Fatal("RemoveEdge failed")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUndirected(2).AddEdge(1, 1)
}

func TestNeighborsSorted(t *testing.T) {
	g := NewUndirected(5)
	g.AddEdge(2, 4)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	nb := g.Neighbors(2)
	if len(nb) != 3 || nb[0] != 0 || nb[1] != 3 || nb[2] != 4 {
		t.Fatalf("neighbors %v", nb)
	}
}

func TestEdgesDeterministic(t *testing.T) {
	g := NewUndirected(4)
	g.AddEdge(3, 1)
	g.AddEdge(0, 2)
	es := g.Edges()
	if len(es) != 2 || es[0] != [2]int{0, 2} || es[1] != [2]int{1, 3} {
		t.Fatalf("edges %v", es)
	}
}

func TestBFSDistances(t *testing.T) {
	g := NewUndirected(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	d := g.BFSDistances(0)
	want := []int{0, 1, 2, 3, -1}
	for i, v := range want {
		if d[i] != v {
			t.Fatalf("dist[%d]=%d, want %d", i, d[i], v)
		}
	}
}

func TestConnectedAndComponents(t *testing.T) {
	g := NewUndirected(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	if !g.Connected([]int{0, 2}) {
		t.Fatal("0-2 connected")
	}
	if g.Connected([]int{0, 4}) {
		t.Fatal("0-4 not connected")
	}
	comp := g.ConnectedComponent(4)
	if !comp[5] || comp[0] {
		t.Fatalf("component of 4: %v", comp)
	}
}

func TestDiameter(t *testing.T) {
	g := NewUndirected(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if d := g.Diameter(); d != 3 {
		t.Fatalf("diameter %d, want 3", d)
	}
	if NewUndirected(3).Diameter() != 0 {
		t.Fatal("edgeless diameter should be 0")
	}
}

func TestSubgraph(t *testing.T) {
	g := NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	s := g.Subgraph(map[int]bool{0: true, 1: true, 2: true})
	if !s.HasEdge(0, 1) || !s.HasEdge(1, 2) || s.HasEdge(2, 3) {
		t.Fatal("induced subgraph wrong")
	}
}

func TestQueryDistance(t *testing.T) {
	g := NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	qd := g.QueryDistance([]int{0, 3})
	// node 1: max(1, 2) = 2; node 2: max(2,1) = 2.
	if qd[1] != 2 || qd[2] != 2 || qd[0] != 3 || qd[3] != 3 {
		t.Fatalf("query distances %v", qd)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := NewUndirected(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("clone shares storage")
	}
}

func TestSignedGraph(t *testing.T) {
	g := NewSigned(4)
	g.SetEdge(0, 1, Synergy)
	g.SetEdge(1, 2, Antagonism)
	g.SetEdge(2, 3, NoInteraction)
	if s, ok := g.Edge(1, 0); !ok || s != Synergy {
		t.Fatal("edge lookup should be symmetric")
	}
	syn, ant, zero := g.CountBySign()
	if syn != 1 || ant != 1 || zero != 1 {
		t.Fatalf("counts %d %d %d", syn, ant, zero)
	}
	if _, ok := g.Edge(0, 3); ok {
		t.Fatal("unrecorded edge should not exist")
	}
}

func TestSignedNeighborsFilter(t *testing.T) {
	g := NewSigned(4)
	g.SetEdge(0, 1, Synergy)
	g.SetEdge(0, 2, Antagonism)
	g.SetEdge(0, 3, Synergy)
	syn := g.Neighbors(0, func(s Sign) bool { return s == Synergy })
	if len(syn) != 2 || syn[0] != 1 || syn[1] != 3 {
		t.Fatalf("synergy neighbors %v", syn)
	}
	all := g.Neighbors(0, nil)
	if len(all) != 3 {
		t.Fatalf("all neighbors %v", all)
	}
}

func TestSignedInteractingSkeleton(t *testing.T) {
	g := NewSigned(4)
	g.SetEdge(0, 1, Synergy)
	g.SetEdge(1, 2, NoInteraction)
	g.SetEdge(2, 3, Antagonism)
	u := g.Interacting()
	if !u.HasEdge(0, 1) || !u.HasEdge(2, 3) {
		t.Fatal("non-zero edges must appear")
	}
	if u.HasEdge(1, 2) {
		t.Fatal("zero edges must be excluded from the skeleton")
	}
}

func TestSignedEdgesDeterministic(t *testing.T) {
	g := NewSigned(4)
	g.SetEdge(3, 0, Synergy)
	g.SetEdge(2, 1, Antagonism)
	el := g.Edges()
	if len(el.U) != 2 || el.U[0] != 0 || el.V[0] != 3 || el.U[1] != 1 || el.V[1] != 2 {
		t.Fatalf("edge list %v %v", el.U, el.V)
	}
}

func TestSignStrings(t *testing.T) {
	if Synergy.String() != "synergy" || Antagonism.String() != "antagonism" || NoInteraction.String() != "none" {
		t.Fatal("sign strings wrong")
	}
}

func TestBipartite(t *testing.T) {
	b := NewBipartite(3, 4)
	b.AddLink(0, 2)
	b.AddLink(0, 1)
	b.AddLink(0, 2) // duplicate
	b.AddLink(2, 3)
	if !b.HasLink(0, 2) || b.HasLink(1, 0) {
		t.Fatal("HasLink wrong")
	}
	ds := b.DrugsOf(0)
	if len(ds) != 2 || ds[0] != 1 || ds[1] != 2 {
		t.Fatalf("DrugsOf sorted wrong: %v", ds)
	}
	if b.NumLinks() != 3 {
		t.Fatalf("NumLinks=%d", b.NumLinks())
	}
}

func TestBipartiteOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBipartite(2, 2).AddLink(0, 5)
}

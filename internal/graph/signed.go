package graph

import (
	"fmt"
	"sort"
)

// Sign labels a drug-drug interaction edge.
type Sign int8

// Interaction signs. Synergy and Antagonism correspond to the paper's
// e=+1 and e=-1 edge labels; NoInteraction is the explicitly sampled
// e=0 edge class used to train DDIGCN (Section IV-A1).
const (
	Antagonism    Sign = -1
	NoInteraction Sign = 0
	Synergy       Sign = +1
)

// String renders the sign for explanations.
func (s Sign) String() string {
	switch s {
	case Synergy:
		return "synergy"
	case Antagonism:
		return "antagonism"
	default:
		return "none"
	}
}

// Signed is the drug-drug interaction (DDI) graph: an undirected graph
// whose edges carry a Sign. It is Definition 2 of the paper.
type Signed struct {
	n     int
	signs map[[2]int]Sign
	adj   []map[int]Sign
}

// NewSigned returns an empty signed graph on n drugs.
func NewSigned(n int) *Signed {
	g := &Signed{n: n, signs: make(map[[2]int]Sign), adj: make([]map[int]Sign, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]Sign)
	}
	return g
}

// N returns the number of drugs.
func (g *Signed) N() int { return g.n }

func key(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// SetEdge records the interaction between drugs u and v, replacing any
// previous label.
func (g *Signed) SetEdge(u, v int, s Sign) {
	if u == v {
		panic(fmt.Sprintf("graph: signed self-loop on %d", u))
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: signed edge (%d,%d) out of range %d", u, v, g.n))
	}
	g.signs[key(u, v)] = s
	g.adj[u][v] = s
	g.adj[v][u] = s
}

// Edge returns the interaction sign of {u, v} and whether an edge (of
// any sign, including explicit NoInteraction) has been recorded.
func (g *Signed) Edge(u, v int) (Sign, bool) {
	s, ok := g.signs[key(u, v)]
	return s, ok
}

// Neighbors returns the sorted drugs with a recorded interaction with
// u whose sign matches filter; pass nil to accept all recorded edges.
func (g *Signed) Neighbors(u int, filter func(Sign) bool) []int {
	var out []int
	for v, s := range g.adj[u] {
		if filter == nil || filter(s) {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// EdgeList is a deterministic list of recorded edges with signs,
// sorted by (u, v).
type EdgeList struct {
	U, V []int
	S    []Sign
}

// Edges returns all recorded edges (including explicit zero edges).
func (g *Signed) Edges() EdgeList {
	type e struct {
		u, v int
		s    Sign
	}
	var es []e
	for k, s := range g.signs {
		es = append(es, e{k[0], k[1], s})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].u != es[j].u {
			return es[i].u < es[j].u
		}
		return es[i].v < es[j].v
	})
	var el EdgeList
	for _, x := range es {
		el.U = append(el.U, x.u)
		el.V = append(el.V, x.v)
		el.S = append(el.S, x.s)
	}
	return el
}

// CountBySign returns the number of recorded edges of each sign.
func (g *Signed) CountBySign() (syn, ant, zero int) {
	for _, s := range g.signs {
		switch s {
		case Synergy:
			syn++
		case Antagonism:
			ant++
		default:
			zero++
		}
	}
	return
}

// Interacting returns the undirected skeleton of the non-zero edges
// (synergy or antagonism), the structure the MS module's subgraph
// queries run on.
func (g *Signed) Interacting() *Undirected {
	u := NewUndirected(g.n)
	for k, s := range g.signs {
		if s != NoInteraction {
			u.AddEdge(k[0], k[1])
		}
	}
	return u
}

// Bipartite is the patient-drug medication-use graph. links[i] holds
// the sorted drug IDs patient i takes.
type Bipartite struct {
	Patients int
	Drugs    int
	links    [][]int
	isLink   []map[int]bool
}

// NewBipartite returns an empty bipartite graph.
func NewBipartite(patients, drugs int) *Bipartite {
	b := &Bipartite{
		Patients: patients,
		Drugs:    drugs,
		links:    make([][]int, patients),
		isLink:   make([]map[int]bool, patients),
	}
	for i := range b.isLink {
		b.isLink[i] = make(map[int]bool)
	}
	return b
}

// AddLink records that patient p takes drug d; duplicate calls are
// no-ops.
func (b *Bipartite) AddLink(p, d int) {
	if p < 0 || p >= b.Patients || d < 0 || d >= b.Drugs {
		panic(fmt.Sprintf("graph: link (%d,%d) out of range %dx%d", p, d, b.Patients, b.Drugs))
	}
	if b.isLink[p][d] {
		return
	}
	b.isLink[p][d] = true
	b.links[p] = append(b.links[p], d)
	sort.Ints(b.links[p])
}

// HasLink reports whether patient p takes drug d.
func (b *Bipartite) HasLink(p, d int) bool { return b.isLink[p][d] }

// DrugsOf returns the sorted drugs of patient p (shared slice; do not
// modify).
func (b *Bipartite) DrugsOf(p int) []int { return b.links[p] }

// Links returns the per-patient adjacency lists (shared; do not
// modify).
func (b *Bipartite) Links() [][]int { return b.links }

// NumLinks returns the total number of patient-drug links.
func (b *Bipartite) NumLinks() int {
	var n int
	for _, l := range b.links {
		n += len(l)
	}
	return n
}

// Package kg provides a small drug-centric knowledge graph and a
// from-scratch TransE trainer. It stands in for the paper's DRKG
// pretrained drug embeddings: the 86 catalogue drugs are embedded
// jointly with synthetic gene and disease entities through
// treats/targets/interacts relations, so the resulting vectors carry
// the "mixed external semantics" the paper's KG ablation row probes
// (Table II).
package kg

import (
	"fmt"
	"math"
	"math/rand"

	"dssddi/internal/mat"
	"dssddi/internal/synth"
)

// Relation labels a KG triple.
type Relation int

// KG relation vocabulary.
const (
	Treats    Relation = iota // drug -> disease
	Targets                   // drug -> gene
	Interacts                 // drug -> drug
	AssocWith                 // gene -> disease
	NumRelations
)

// Triple is one (head, relation, tail) fact.
type Triple struct {
	Head, Tail int
	Rel        Relation
}

// Graph is the synthetic knowledge graph: entity IDs are laid out as
// [0, NumDrugs) drugs, then genes, then diseases.
type Graph struct {
	NumDrugs    int
	NumGenes    int
	NumDiseases int
	Triples     []Triple
}

// NumEntities returns the total entity count.
func (g *Graph) NumEntities() int { return g.NumDrugs + g.NumGenes + g.NumDiseases }

// GeneID converts a gene index to its entity ID.
func (g *Graph) GeneID(i int) int { return g.NumDrugs + i }

// DiseaseID converts a disease index to its entity ID.
func (g *Graph) DiseaseID(i int) int { return g.NumDrugs + g.NumGenes + i }

// Generate builds a DRKG-like graph around the drug catalogue: treats
// edges from the catalogue's indications, synthetic drug-gene targets
// (drugs of one class share targets), gene-disease associations and
// drug-drug interaction triples.
func Generate(rng *rand.Rand, catalog []synth.Drug, numGenes int) *Graph {
	g := &Graph{NumDrugs: len(catalog), NumGenes: numGenes, NumDiseases: int(synth.NumDiseases)}
	// treats: straight from the catalogue.
	for _, d := range catalog {
		for _, dis := range d.Treats {
			g.Triples = append(g.Triples, Triple{Head: d.ID, Tail: g.DiseaseID(int(dis)), Rel: Treats})
		}
	}
	// targets: each drug class is assigned 2-4 genes; members hit a
	// subset of them, so same-class drugs cluster in embedding space.
	classGenes := make(map[synth.DrugClass][]int)
	for cls := synth.DrugClass(0); cls < synth.NumDrugClasses; cls++ {
		n := 2 + rng.Intn(3)
		perm := rng.Perm(numGenes)[:n]
		classGenes[cls] = perm
	}
	for _, d := range catalog {
		for _, gene := range classGenes[d.Class] {
			if rng.Float64() < 0.8 {
				g.Triples = append(g.Triples, Triple{Head: d.ID, Tail: g.GeneID(gene), Rel: Targets})
			}
		}
	}
	// gene-disease associations.
	for gene := 0; gene < numGenes; gene++ {
		n := 1 + rng.Intn(2)
		for i := 0; i < n; i++ {
			g.Triples = append(g.Triples, Triple{
				Head: g.GeneID(gene),
				Tail: g.DiseaseID(rng.Intn(g.NumDiseases)),
				Rel:  AssocWith,
			})
		}
	}
	// a sprinkle of drug-drug interaction facts.
	for i := 0; i < len(catalog); i++ {
		if rng.Float64() < 0.4 {
			j := rng.Intn(len(catalog))
			if j != i {
				g.Triples = append(g.Triples, Triple{Head: i, Tail: j, Rel: Interacts})
			}
		}
	}
	return g
}

// TransEConfig tunes training.
type TransEConfig struct {
	Dim    int // embedding dimension; the paper uses 400
	Epochs int
	LR     float64
	Margin float64
	Seed   int64
}

// DefaultTransEConfig returns a configuration that converges on the
// synthetic graph in a few seconds. Dim follows the paper's 400.
func DefaultTransEConfig() TransEConfig {
	return TransEConfig{Dim: 400, Epochs: 60, LR: 0.05, Margin: 1.0, Seed: 1}
}

// TransE holds trained entity and relation embeddings.
type TransE struct {
	Entities  *mat.Dense // numEntities x dim
	Relations *mat.Dense // NumRelations x dim
	Dim       int
}

// Train learns TransE embeddings with margin-based ranking loss and
// negative sampling (Bordes et al., 2013): for a triple (h, r, t) it
// enforces ‖h+r−t‖ + margin ≤ ‖h'+r−t'‖ for corrupted (h', t').
func Train(g *Graph, cfg TransEConfig) *TransE {
	if cfg.Dim <= 0 || cfg.Epochs < 0 {
		panic(fmt.Sprintf("kg: invalid TransE config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := g.NumEntities()
	bound := 6 / math.Sqrt(float64(cfg.Dim))
	ent := mat.RandUniform(rng, n, cfg.Dim, bound)
	rel := mat.RandUniform(rng, int(NumRelations), cfg.Dim, bound)
	normalizeRows(rel)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		normalizeRows(ent)
		perm := rng.Perm(len(g.Triples))
		for _, ti := range perm {
			tr := g.Triples[ti]
			// Corrupt head or tail uniformly.
			neg := tr
			if rng.Float64() < 0.5 {
				neg.Head = rng.Intn(n)
			} else {
				neg.Tail = rng.Intn(n)
			}
			posD := tripleDiff(ent, rel, tr, cfg.Dim)
			negD := tripleDiff(ent, rel, neg, cfg.Dim)
			posS := mat.Norm2(posD)
			negS := mat.Norm2(negD)
			if posS+cfg.Margin <= negS {
				continue // already satisfied
			}
			// Gradient of ‖h+r−t‖₂ w.r.t. h is (h+r−t)/‖·‖; SGD step.
			applyGrad(ent, rel, tr, posD, posS, -cfg.LR, cfg.Dim)
			applyGrad(ent, rel, neg, negD, negS, +cfg.LR, cfg.Dim)
		}
	}
	normalizeRows(ent)
	return &TransE{Entities: ent, Relations: rel, Dim: cfg.Dim}
}

// tripleDiff computes h + r - t.
func tripleDiff(ent, rel *mat.Dense, tr Triple, dim int) []float64 {
	h := ent.Row(tr.Head)
	r := rel.Row(int(tr.Rel))
	t := ent.Row(tr.Tail)
	d := make([]float64, dim)
	for i := range d {
		d[i] = h[i] + r[i] - t[i]
	}
	return d
}

// applyGrad steps h, r, t along ±(h+r−t)/‖·‖.
func applyGrad(ent, rel *mat.Dense, tr Triple, diff []float64, norm, lr float64, dim int) {
	if norm < 1e-9 {
		return
	}
	h := ent.Row(tr.Head)
	r := rel.Row(int(tr.Rel))
	t := ent.Row(tr.Tail)
	for i := 0; i < dim; i++ {
		g := lr * diff[i] / norm
		h[i] += g
		r[i] += g
		t[i] -= g
	}
}

func normalizeRows(m *mat.Dense) {
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		n := mat.Norm2(row)
		if n > 0 {
			for j := range row {
				row[j] /= n
			}
		}
	}
}

// Score returns ‖h+r−t‖₂ for a triple (smaller = more plausible).
func (t *TransE) Score(tr Triple) float64 {
	return mat.Norm2(tripleDiff(t.Entities, t.Relations, tr, t.Dim))
}

// DrugEmbeddings returns the numDrugs x dim block of entity embeddings,
// the "pretrained DRKG features" handed to the MD module and the KG
// ablation.
func (t *TransE) DrugEmbeddings(numDrugs int) *mat.Dense {
	out := mat.New(numDrugs, t.Dim)
	for i := 0; i < numDrugs; i++ {
		copy(out.Row(i), t.Entities.Row(i))
	}
	return out
}

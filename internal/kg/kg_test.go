package kg

import (
	"math"
	"math/rand"
	"testing"

	"dssddi/internal/mat"
	"dssddi/internal/synth"
)

func testGraph(seed int64) *Graph {
	return Generate(rand.New(rand.NewSource(seed)), synth.Catalog(), 40)
}

func TestGenerateLayout(t *testing.T) {
	g := testGraph(1)
	if g.NumDrugs != synth.NumDrugs {
		t.Fatalf("drugs %d", g.NumDrugs)
	}
	if g.NumEntities() != synth.NumDrugs+40+int(synth.NumDiseases) {
		t.Fatalf("entities %d", g.NumEntities())
	}
	if g.GeneID(0) != synth.NumDrugs || g.DiseaseID(0) != synth.NumDrugs+40 {
		t.Fatal("entity ID layout wrong")
	}
	if len(g.Triples) == 0 {
		t.Fatal("no triples generated")
	}
	for _, tr := range g.Triples {
		if tr.Head < 0 || tr.Head >= g.NumEntities() || tr.Tail < 0 || tr.Tail >= g.NumEntities() {
			t.Fatalf("triple out of range: %+v", tr)
		}
	}
}

func TestGenerateContainsCatalogTreats(t *testing.T) {
	g := testGraph(2)
	// Doxazosin (DID 1) treats hypertension.
	want := Triple{Head: 1, Tail: g.DiseaseID(int(synth.Hypertension)), Rel: Treats}
	found := false
	for _, tr := range g.Triples {
		if tr == want {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("catalogue treats relation missing from KG")
	}
}

func smallConfig() TransEConfig {
	return TransEConfig{Dim: 24, Epochs: 40, LR: 0.05, Margin: 1.0, Seed: 7}
}

func TestTransEEmbeddingsNormalised(t *testing.T) {
	g := testGraph(3)
	m := Train(g, smallConfig())
	for i := 0; i < m.Entities.Rows(); i++ {
		n := mat.Norm2(m.Entities.Row(i))
		if math.Abs(n-1) > 1e-6 {
			t.Fatalf("entity %d norm %v, want 1", i, n)
		}
	}
}

func TestTransERanksTrueTriplesAboveCorrupted(t *testing.T) {
	g := testGraph(4)
	m := Train(g, smallConfig())
	rng := rand.New(rand.NewSource(11))
	wins, total := 0, 0
	for i := 0; i < 200; i++ {
		tr := g.Triples[rng.Intn(len(g.Triples))]
		neg := tr
		neg.Tail = rng.Intn(g.NumEntities())
		if neg == tr {
			continue
		}
		total++
		if m.Score(tr) < m.Score(neg) {
			wins++
		}
	}
	rate := float64(wins) / float64(total)
	if rate < 0.75 {
		t.Fatalf("TransE ranks true triples above corrupted only %.2f of the time", rate)
	}
}

func TestTransESameClassDrugsCloser(t *testing.T) {
	// Drugs of the same class share gene targets, so their embeddings
	// should be more similar on average than cross-class pairs.
	g := testGraph(5)
	m := Train(g, smallConfig())
	catalog := synth.Catalog()
	var same, cross float64
	var nSame, nCross int
	for i := 0; i < len(catalog); i++ {
		for j := i + 1; j < len(catalog); j++ {
			sim := mat.CosineSimilarity(m.Entities.Row(i), m.Entities.Row(j))
			if catalog[i].Class == catalog[j].Class {
				same += sim
				nSame++
			} else {
				cross += sim
				nCross++
			}
		}
	}
	if nSame == 0 || nCross == 0 {
		t.Fatal("degenerate catalogue")
	}
	if same/float64(nSame) <= cross/float64(nCross) {
		t.Fatalf("same-class sim %.3f not above cross-class %.3f",
			same/float64(nSame), cross/float64(nCross))
	}
}

func TestDrugEmbeddingsBlock(t *testing.T) {
	g := testGraph(6)
	m := Train(g, smallConfig())
	d := m.DrugEmbeddings(synth.NumDrugs)
	if d.Rows() != synth.NumDrugs || d.Cols() != 24 {
		t.Fatalf("drug embedding shape %dx%d", d.Rows(), d.Cols())
	}
	for j := 0; j < d.Cols(); j++ {
		if d.At(0, j) != m.Entities.At(0, j) {
			t.Fatal("drug block must copy entity rows")
		}
	}
}

func TestTrainPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Train(testGraph(7), TransEConfig{Dim: 0})
}

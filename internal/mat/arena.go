package mat

import (
	"fmt"
	"math/bits"
)

// Arena is a size-bucketed recycler for the float64 buffers backing
// Dense matrices. Get hands out a zeroed buffer (recycled when one of
// the right size class is free, freshly allocated otherwise) and Put
// returns a buffer for reuse. The autodiff tape in internal/ag parks
// every node value and gradient here between epochs, which is what
// makes steady-state training allocation-free.
//
// Buffers are grouped in power-of-two capacity classes, so a buffer
// recycled at one shape can back any equal-or-smaller shape later.
// Recycled buffers are re-zeroed before they are handed out, so a
// matrix built from an Arena is bitwise identical to one built with
// make — arena on/off never changes numerics.
//
// An Arena is NOT goroutine-safe: it is meant to be owned by one tape
// (one training loop) at a time. A nil *Arena is valid everywhere and
// behaves like plain allocation.
type Arena struct {
	free [maxClass + 1][][]float64

	gets, hits, puts uint64
}

// maxClass bounds the bucket table: 1<<maxClass floats (32 GiB) is far
// beyond any matrix in this repository.
const maxClass = 32

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// class returns the smallest power-of-two exponent k with 1<<k >= n.
func class(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Get returns a zeroed buffer of length n, recycling a free one when
// available. A nil arena always allocates fresh.
func (a *Arena) Get(n int) []float64 {
	if n < 0 {
		panic(fmt.Sprintf("mat: Arena.Get negative size %d", n))
	}
	if a == nil || n == 0 {
		return make([]float64, n)
	}
	a.gets++
	k := class(n)
	if k > maxClass {
		return make([]float64, n)
	}
	if l := len(a.free[k]); l > 0 {
		buf := a.free[k][l-1]
		a.free[k][l-1] = nil
		a.free[k] = a.free[k][:l-1]
		a.hits++
		s := buf[:n]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	return make([]float64, n, 1<<k)
}

// Put returns a buffer to the arena for reuse. Callers must not touch
// the buffer afterwards. Buffers whose capacity is not a power of two
// are filed under the largest class they can fully serve. A nil arena
// drops the buffer.
func (a *Arena) Put(s []float64) {
	if a == nil || cap(s) == 0 {
		return
	}
	a.puts++
	k := bits.Len(uint(cap(s))) - 1 // largest k with 1<<k <= cap
	if k > maxClass {
		k = maxClass
	}
	a.free[k] = append(a.free[k], s[:cap(s)])
}

// Reset drops every free buffer, releasing the arena's memory to the
// garbage collector. Buffers currently handed out are unaffected.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	for k := range a.free {
		a.free[k] = nil
	}
}

// Stats reports lifetime counters: buffer requests, how many were
// served from the free lists, and how many buffers were recycled in.
func (a *Arena) Stats() (gets, hits, puts uint64) {
	if a == nil {
		return 0, 0, 0
	}
	return a.gets, a.hits, a.puts
}

// NewIn returns a zeroed rows x cols matrix whose backing buffer comes
// from the arena (plain allocation when a is nil).
func NewIn(a *Arena, rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: a.Get(rows * cols)}
}

// ReleaseTo returns m's backing buffer to the arena and clears m so any
// later use fails fast. Only matrices built with NewIn on the same
// arena (or buffers the arena may own) should be released.
func (m *Dense) ReleaseTo(a *Arena) {
	if m == nil {
		return
	}
	a.Put(m.data)
	m.data = nil
	m.rows, m.cols = 0, 0
}

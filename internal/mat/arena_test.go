package mat

import "testing"

func TestArenaRecyclesBuffers(t *testing.T) {
	a := NewArena()
	b1 := a.Get(100)
	if len(b1) != 100 {
		t.Fatalf("Get(100) len %d", len(b1))
	}
	b1[0] = 42
	a.Put(b1)
	b2 := a.Get(90) // same power-of-two class: must reuse and re-zero
	if cap(b2) != cap(b1[:cap(b1)]) {
		t.Fatalf("expected recycled buffer, got cap %d want %d", cap(b2), cap(b1))
	}
	for i, v := range b2 {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %v", i, v)
		}
	}
	gets, hits, puts := a.Stats()
	if gets != 2 || hits != 1 || puts != 1 {
		t.Fatalf("stats gets=%d hits=%d puts=%d, want 2/1/1", gets, hits, puts)
	}
}

func TestArenaResetDropsFreeLists(t *testing.T) {
	a := NewArena()
	a.Put(make([]float64, 64))
	a.Reset()
	_ = a.Get(64)
	if _, hits, _ := a.Stats(); hits != 0 {
		t.Fatalf("Get after Reset hit a free list (%d hits), want fresh allocation", hits)
	}
}

func TestNilArenaFallsBackToHeap(t *testing.T) {
	var a *Arena
	s := a.Get(8)
	if len(s) != 8 {
		t.Fatalf("nil arena Get len %d", len(s))
	}
	a.Put(s)  // must not panic
	a.Reset() // must not panic
	m := NewIn(nil, 3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("NewIn(nil) shape %dx%d", m.Rows(), m.Cols())
	}
}

func TestReleaseToClearsMatrix(t *testing.T) {
	a := NewArena()
	m := NewIn(a, 4, 4)
	m.Set(0, 0, 7)
	m.ReleaseTo(a)
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatal("released matrix still reports a shape")
	}
	n := NewIn(a, 4, 4) // reuses the released buffer, zeroed
	if n.At(0, 0) != 0 {
		t.Fatal("recycled matrix not zeroed")
	}
	if _, hits, _ := a.Stats(); hits != 1 {
		t.Fatal("NewIn after ReleaseTo should hit the free list")
	}
}

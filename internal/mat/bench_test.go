package mat

import (
	"math/rand"
	"testing"
)

// benchWorkers compares the serial path against the pooled path; on a
// multi-core runner the /parallel variants should scale with cores.
var benchWorkers = []struct {
	name string
	n    int
}{
	{"serial", 1},
	{"parallel", 0}, // 0 = GOMAXPROCS
}

func benchMatMulInto(b *testing.B, m, k, n int) {
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, m, k)
	x := randDense(rng, k, n)
	dst := New(m, n)
	for _, w := range benchWorkers {
		b.Run(w.name, func(b *testing.B) {
			SetWorkers(w.n)
			defer SetWorkers(0)
			b.ReportAllocs()
			b.SetBytes(int64(8 * m * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(dst, a, x)
			}
		})
	}
}

func BenchmarkMatMulInto128(b *testing.B) { benchMatMulInto(b, 128, 128, 128) }
func BenchmarkMatMulInto512(b *testing.B) { benchMatMulInto(b, 512, 512, 512) }
func BenchmarkMatMulIntoGCN(b *testing.B) { benchMatMulInto(b, 4157, 71, 64) } // paper-scale layer
func BenchmarkMatMulTransA(b *testing.B)  { benchTrans(b, MatMulTransA) }
func BenchmarkMatMulTransB(b *testing.B)  { benchTrans(b, MatMulTransB) }

func benchTrans(b *testing.B, f func(a, c *Dense) *Dense) {
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, 512, 256)
	c := randDense(rng, 512, 256)
	for _, w := range benchWorkers {
		b.Run(w.name, func(b *testing.B) {
			SetWorkers(w.n)
			defer SetWorkers(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f(a, c)
			}
		})
	}
}

func BenchmarkHadamardInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randDense(rng, 1024, 512)
	y := randDense(rng, 1024, 512)
	dst := New(1024, 512)
	for _, w := range benchWorkers {
		b.Run(w.name, func(b *testing.B) {
			SetWorkers(w.n)
			defer SetWorkers(0)
			b.ReportAllocs()
			b.SetBytes(int64(8 * 1024 * 512))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				HadamardInto(dst, x, y)
			}
		})
	}
}

func BenchmarkAddScaled(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randDense(rng, 1024, 512)
	dst := New(1024, 512)
	for _, w := range benchWorkers {
		b.Run(w.name, func(b *testing.B) {
			SetWorkers(w.n)
			defer SetWorkers(0)
			b.ReportAllocs()
			b.SetBytes(int64(8 * 1024 * 512))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst.AddScaled(x, 1e-9)
			}
		})
	}
}

package mat

import "fmt"

// MulRowInto computes dst = arow * b for a single input row: dst[j] =
// Σ_k arow[k]*b[k][j]. It runs the exact k-blocked, 4-way-unrolled,
// zero-skipping accumulation of MatMulInto restricted to one output
// row, so the result is bitwise identical to
// MatMulInto(dst1x, arow1x, b) for any worker count — the fused
// scoring engine relies on this to score (patient, drug) pairs
// without materializing the pair matrix while reproducing the batched
// path bit for bit.
//
// Runs entirely on the calling goroutine (callers partition their own
// row loops) and allocates nothing.
func MulRowInto(dst, arow []float64, b *Dense) {
	if len(arow) != b.rows || len(dst) != b.cols {
		panic(fmt.Sprintf("mat: MulRowInto shape mismatch dst[%d] = arow[%d] * %dx%d",
			len(dst), len(arow), b.rows, b.cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	K := len(arow)
	if b.cols == 1 {
		// Single-column b (e.g. a scalar-output decoder layer): the
		// j-loop of every panel has one element, so vector dispatch
		// only costs overhead. Accumulate the identical quad grouping
		// scalar-side; b's rows are consecutive elements of its data.
		var s float64
		for kb := 0; kb < K; kb += blockK {
			ke := kb + blockK
			if ke > K {
				ke = K
			}
			panel := arow[kb:ke]
			bcol := b.data[kb:ke]
			k := 0
			for ; k+3 < len(panel); k += 4 {
				a0, a1, a2, a3 := panel[k], panel[k+1], panel[k+2], panel[k+3]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				s += (a0*bcol[k] + a1*bcol[k+1]) + (a2*bcol[k+2] + a3*bcol[k+3])
			}
			for ; k < len(panel); k++ {
				if av := panel[k]; av != 0 {
					s += av * bcol[k]
				}
			}
		}
		dst[0] = s
		return
	}
	for kb := 0; kb < K; kb += blockK {
		ke := kb + blockK
		if ke > K {
			ke = K
		}
		panel := arow[kb:ke]
		k := 0
		for ; k+3 < len(panel); k += 4 {
			a0, a1, a2, a3 := panel[k], panel[k+1], panel[k+2], panel[k+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			mulAddRows4(dst, b.data[(kb+k)*b.cols:(kb+k+4)*b.cols], a0, a1, a2, a3)
		}
		for ; k < len(panel); k++ {
			av := panel[k]
			if av == 0 {
				continue
			}
			mulAddRow1(dst, b.Row(kb+k), av)
		}
	}
}

// HadamardRowInto computes dst[i] = a[i]*b[i] for plain slices — the
// row-level form of HadamardInto, sharing its element formula (and
// vector kernel) so fused consumers match the batched op bitwise.
func HadamardRowInto(dst, a, b []float64) {
	if len(a) != len(dst) || len(b) != len(dst) {
		panic(fmt.Sprintf("mat: HadamardRowInto length mismatch %d vs %d vs %d", len(dst), len(a), len(b)))
	}
	hadamardSlices(dst, a, b)
}

package mat

import (
	"math"
	"math/rand"
	"testing"
)

// TestMulRowIntoMatchesMatMul checks the single-row kernel against the
// full blocked matmul, row by row and bit for bit, across shapes that
// cover the k-block boundary, the unroll tails and zero panels.
func TestMulRowIntoMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, sh := range [][2]int{{1, 1}, {4, 9}, {48, 1}, {49, 48}, {65, 64}, {128, 17}, {130, 1}, {131, 33}, {260, 7}} {
		k, n := sh[0], sh[1]
		a := RandNormal(rng, 5, k, 1)
		// Sprinkle exact zeros so the zero-skip panels are exercised.
		ad := a.Data()
		for i := range ad {
			if rng.Intn(4) == 0 {
				ad[i] = 0
			}
		}
		b := RandNormal(rng, k, n, 1)
		want := MatMul(a, b)
		dst := make([]float64, n)
		for i := 0; i < a.Rows(); i++ {
			MulRowInto(dst, a.Row(i), b)
			wrow := want.Row(i)
			for j := range dst {
				if math.Float64bits(dst[j]) != math.Float64bits(wrow[j]) {
					t.Fatalf("shape %v row %d col %d: MulRowInto %v != MatMul %v", sh, i, j, dst[j], wrow[j])
				}
			}
		}
	}
}

// TestHadamardRowIntoMatchesHadamard pins the row-level form to the
// batched kernel.
func TestHadamardRowIntoMatchesHadamard(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := RandNormal(rng, 3, 29, 1)
	b := RandNormal(rng, 3, 29, 1)
	want := Hadamard(a, b)
	dst := make([]float64, 29)
	for i := 0; i < 3; i++ {
		HadamardRowInto(dst, a.Row(i), b.Row(i))
		for j, v := range dst {
			if math.Float64bits(v) != math.Float64bits(want.At(i, j)) {
				t.Fatalf("row %d col %d: %v != %v", i, j, v, want.At(i, j))
			}
		}
	}
}

// Package mat provides dense float64 matrices and the small set of
// linear-algebra kernels the rest of the library is built on.
//
// The package is deliberately minimal: row-major dense storage, no
// views/strides, explicit dimension checks that panic on programmer
// error. All neural-network code (internal/ag, internal/nn) and all
// classical models (internal/baselines) sit on top of it.
//
// Kernels are cache-blocked and row-parallel over the shared pool in
// internal/par (see parallel.go); SetWorkers tunes the worker count
// and results are bitwise identical for any setting.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix of float64.
//
// The zero value is an empty 0x0 matrix. Use New, NewFrom or the
// random constructors in rand.go to create populated matrices.
type Dense struct {
	rows, cols int
	data       []float64
}

// New returns a zeroed rows x cols matrix.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewFrom wraps the given backing slice (len must be rows*cols) without
// copying. The caller must not alias data afterwards.
func NewFrom(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: NewFrom backing slice has len %d, want %d", len(data), rows*cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("mat: FromRows ragged input: row %d has %d cols, want %d", i, len(r), c))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Data returns the underlying row-major backing slice.
func (m *Dense) Data() []float64 { return m.data }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set stores v at (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at (i, j).
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice sharing the matrix's backing store.
// The panic lives in a separate function so Row inlines into kernels.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		m.rowPanic(i)
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

//go:noinline
func (m *Dense) rowPanic(i int) {
	panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
}

// Col copies column j into a new slice.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// CopyFrom copies the contents of src into m. Dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("mat: CopyFrom shape mismatch %dx%d vs %dx%d", m.rows, m.cols, src.rows, src.cols))
	}
	copy(m.data, src.data)
}

// Zero sets every element to 0.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Scale multiplies every element by s in place.
func (m *Dense) Scale(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// AddScaled performs m += s*other element-wise in place.
func (m *Dense) AddScaled(other *Dense, s float64) {
	if m.rows != other.rows || m.cols != other.cols {
		panic(fmt.Sprintf("mat: AddScaled shape mismatch %dx%d vs %dx%d", m.rows, m.cols, other.rows, other.cols))
	}
	t := getKern(kAddScaled)
	t.dst, t.a, t.s = m, other, s
	t.run(len(m.data), ewGrain)
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// MatMul computes a*b into a new matrix. Panics on inner-dimension
// mismatch.
func MatMul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MatMul inner mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a*b, reusing dst's storage. dst must be
// a.rows x b.cols and must not alias a or b. The kernel is k-blocked
// and row-parallel (see parallel.go); output is bitwise identical for
// any worker count.
func MatMulInto(dst, a, b *Dense) {
	if a.cols != b.rows || dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MatMulInto shape mismatch dst %dx%d = %dx%d * %dx%d",
			dst.rows, dst.cols, a.rows, a.cols, b.rows, b.cols))
	}
	getKern(kMatMul).runMM(dst, a, b, a.rows, rowGrain(a.cols*b.cols))
}

// MatMulTransA computes aᵀ*b into a new matrix (a is m x n, result n x p).
func MatMulTransA(a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: MatMulTransA mismatch %dx%d ᵀ* %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.cols, b.cols)
	MatMulTransAInto(out, a, b)
	return out
}

// MatMulTransB computes a*bᵀ into a new matrix (a is m x n, b is p x n,
// result m x p).
func MatMulTransB(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: MatMulTransB mismatch %dx%d * %dx%dᵀ", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.rows)
	MatMulTransBInto(out, a, b)
	return out
}

// AddMat returns a+b as a new matrix.
func AddMat(a, b *Dense) *Dense {
	sameShape("AddMat", a, b)
	out := a.Clone()
	out.AddScaled(b, 1)
	return out
}

// SubMat returns a-b as a new matrix.
func SubMat(a, b *Dense) *Dense {
	sameShape("SubMat", a, b)
	out := a.Clone()
	out.AddScaled(b, -1)
	return out
}

// Hadamard returns the element-wise product a⊙b as a new matrix.
func Hadamard(a, b *Dense) *Dense {
	sameShape("Hadamard", a, b)
	out := New(a.rows, a.cols)
	HadamardInto(out, a, b)
	return out
}

// Apply returns a new matrix with f applied element-wise.
func (m *Dense) Apply(f func(float64) float64) *Dense {
	out := New(m.rows, m.cols)
	ApplyInto(out, m, f)
	return out
}

// ConcatCols returns [a | b] (horizontal concatenation).
func ConcatCols(a, b *Dense) *Dense {
	out := New(a.rows, a.cols+b.cols)
	ConcatColsInto(out, a, b)
	return out
}

// ConcatColsInto computes dst = [a | b], reusing dst's storage.
func ConcatColsInto(dst, a, b *Dense) {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: ConcatCols row mismatch %d vs %d", a.rows, b.rows))
	}
	if dst.rows != a.rows || dst.cols != a.cols+b.cols {
		panic(fmt.Sprintf("mat: ConcatColsInto shape mismatch dst %dx%d = [%dx%d | %dx%d]",
			dst.rows, dst.cols, a.rows, a.cols, b.rows, b.cols))
	}
	for i := 0; i < a.rows; i++ {
		copy(dst.Row(i)[:a.cols], a.Row(i))
		copy(dst.Row(i)[a.cols:], b.Row(i))
	}
}

// GatherRows returns a new matrix whose i-th row is m's idx[i]-th row.
func (m *Dense) GatherRows(idx []int) *Dense {
	out := New(len(idx), m.cols)
	GatherRowsInto(out, m, idx)
	return out
}

// GatherRowsInto computes dst[i] = src[idx[i]], reusing dst's storage.
func GatherRowsInto(dst, src *Dense, idx []int) {
	if dst.rows != len(idx) || dst.cols != src.cols {
		panic(fmt.Sprintf("mat: GatherRowsInto shape mismatch dst %dx%d, src %dx%d, %d indices",
			dst.rows, dst.cols, src.rows, src.cols, len(idx)))
	}
	t := getKern(kGather)
	t.dst, t.a, t.idx = dst, src, idx
	t.run(len(idx), rowGrain(src.cols))
}

// AddInto computes dst = a+b in one fused pass, reusing dst's storage
// (dst may alias a or b).
func AddInto(dst, a, b *Dense) {
	sameShape("AddInto", dst, a)
	sameShape("AddInto", a, b)
	t := getKern(kAddEl)
	t.dst, t.a, t.b = dst, a, b
	t.run(len(dst.data), ewGrain)
}

// SubInto computes dst = a-b in one fused pass, reusing dst's storage
// (dst may alias a or b).
func SubInto(dst, a, b *Dense) {
	sameShape("SubInto", dst, a)
	sameShape("SubInto", a, b)
	t := getKern(kSubEl)
	t.dst, t.a, t.b = dst, a, b
	t.run(len(dst.data), ewGrain)
}

// ScaleInto computes dst = s*a in one fused pass, reusing dst's
// storage (dst may alias a).
func ScaleInto(dst, a *Dense, s float64) {
	sameShape("ScaleInto", dst, a)
	t := getKern(kScaleEl)
	t.dst, t.a, t.s = dst, a, s
	t.run(len(dst.data), ewGrain)
}

func sameShape(op string, a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// EuclideanDistance returns ‖a-b‖₂.
func EuclideanDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: EuclideanDistance length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// CosineSimilarity returns the cosine of the angle between a and b, or 0
// if either vector is zero.
func CosineSimilarity(a, b []float64) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Sigmoid is the numerically stable logistic function.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// MaxAbs returns the largest absolute element value, or 0 for an empty
// matrix.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// SumAll returns the sum of all elements.
func (m *Dense) SumAll() float64 {
	var s float64
	for _, v := range m.data {
		s += v
	}
	return s
}

// String renders a small matrix for debugging; large matrices are
// summarised by shape.
func (m *Dense) String() string {
	if m.rows*m.cols > 64 {
		return fmt.Sprintf("Dense(%dx%d)", m.rows, m.cols)
	}
	s := fmt.Sprintf("Dense(%dx%d)[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}

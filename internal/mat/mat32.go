package mat

import (
	"fmt"
	"math"
)

// Dense32 is a row-major dense matrix of float32 — the serving
// engine's quantized representation of frozen model state (drug
// representations, decoder weights, treatment rows). It is
// deliberately minimal: the f32 path is inference-only, so Dense32
// carries just the accessors the fused kernels need.
type Dense32 struct {
	rows, cols int
	data       []float32
}

// New32 returns a zeroed rows x cols float32 matrix.
func New32(rows, cols int) *Dense32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Dense32{rows: rows, cols: cols, data: make([]float32, rows*cols)}
}

// Dense32From converts m to float32, rounding each element to the
// nearest representable value (IEEE round-to-nearest-even — the
// conversion is deterministic, so the same snapshot always derives the
// same f32 blob).
func Dense32From(m *Dense) *Dense32 {
	out := New32(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = float32(v)
	}
	return out
}

// Rows returns the number of rows.
func (m *Dense32) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense32) Cols() int { return m.cols }

// Data returns the underlying row-major backing slice.
func (m *Dense32) Data() []float32 { return m.data }

// Row returns row i as a slice sharing the matrix's backing store.
func (m *Dense32) Row(i int) []float32 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Bytes returns the resident size of the matrix payload — the explicit
// byte accounting the serving memory metrics report.
func (m *Dense32) Bytes() int { return 4 * len(m.data) }

// Floats32 converts src to a fresh []float32.
func Floats32(src []float64) []float32 {
	out := make([]float32, len(src))
	for i, v := range src {
		out[i] = float32(v)
	}
	return out
}

// Dot32 is the float32 dot product of two equal-length vectors,
// accumulated through the eight-lane vector kernel (bitwise identical
// with the vector path on or off).
func Dot32(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot32 length mismatch %d vs %d", len(a), len(b)))
	}
	return dot8x32(a, b)
}

// MulRowHadamardInto32 is the fused pair-decode input projection:
//
//	dst[j] = Σ_{k<d} (x[k]*y[k]) * b[k][j]  +  t * b[d][j]
//
// with d = len(x) and b a (d+1) x len(dst) weight matrix — the first
// decoder layer applied to concat(x⊙y, t) without materializing the
// Hadamard product or the concatenation. The per-quad coefficients are
// formed scalar-side and fed straight to the mulAddRows4 kernel, so
// the whole layer runs in four-row vector steps. Zero coefficient
// quads are skipped like MulRowInto's.
func MulRowHadamardInto32(dst, x, y []float32, t float32, b *Dense32) {
	d := len(x)
	if len(y) != d || b.rows != d+1 || len(dst) != b.cols {
		panic(fmt.Sprintf("mat: MulRowHadamardInto32 shape mismatch dst[%d] = concat(x[%d]⊙y[%d], t) * %dx%d",
			len(dst), len(x), len(y), b.rows, b.cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	k := 0
	for ; k+3 < d; k += 4 {
		a0 := x[k] * y[k]
		a1 := x[k+1] * y[k+1]
		a2 := x[k+2] * y[k+2]
		a3 := x[k+3] * y[k+3]
		if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
			continue
		}
		mulAddRows432(dst, b.data[k*b.cols:(k+4)*b.cols], a0, a1, a2, a3)
	}
	for ; k < d; k++ {
		if av := x[k] * y[k]; av != 0 {
			mulAddRow132(dst, b.Row(k), av)
		}
	}
	if t != 0 {
		mulAddRow132(dst, b.Row(d), t)
	}
}

// Quant8 is a row-quantized int8 matrix: each row carries its own
// affine (scale, offset) pair, chosen so the row's value range maps
// onto [-127, 127]. One element costs 1 byte plus the amortized 8
// bytes per row — the experimental int8 serving representation of the
// drug-representation matrix.
type Quant8 struct {
	rows, cols int
	data       []int8
	scale      []float32
	offset     []float32
}

// Quantize8 builds the per-row affine int8 quantization of m.
// Dequantizing element (i, j) yields
// float32(q[i][j])*scale[i] + offset[i]; a constant row quantizes
// exactly (scale 0, offset = the constant).
func Quantize8(m *Dense32) *Quant8 {
	q := &Quant8{
		rows:   m.rows,
		cols:   m.cols,
		data:   make([]int8, m.rows*m.cols),
		scale:  make([]float32, m.rows),
		offset: make([]float32, m.rows),
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		if len(row) == 0 {
			continue
		}
		lo, hi := row[0], row[0]
		for _, v := range row[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		off := (hi + lo) / 2
		scale := (hi - lo) / 254
		q.offset[i], q.scale[i] = off, scale
		if scale == 0 {
			continue // constant row: every element dequantizes to off
		}
		out := q.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			r := math.RoundToEven(float64((v - off) / scale))
			switch {
			case r > 127:
				r = 127
			case r < -127:
				r = -127
			}
			out[j] = int8(r)
		}
	}
	return q
}

// Rows returns the number of rows.
func (q *Quant8) Rows() int { return q.rows }

// Cols returns the number of columns.
func (q *Quant8) Cols() int { return q.cols }

// Bytes returns the resident size of the quantized payload: 1 byte per
// element plus the per-row scale/offset pairs.
func (q *Quant8) Bytes() int { return len(q.data) + 4*len(q.scale) + 4*len(q.offset) }

// DequantRowInto reconstructs row i into dst (length ≥ Cols), the
// fused dequantization step of the int8 scoring path.
func (q *Quant8) DequantRowInto(dst []float32, i int) {
	row := q.data[i*q.cols : (i+1)*q.cols]
	scale, off := q.scale[i], q.offset[i]
	dst = dst[:len(row)]
	for j, v := range row {
		dst[j] = float32(v)*scale + off
	}
}

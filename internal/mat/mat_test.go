package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("got %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("At(1,2) = %v, want 5", m.At(1, 2))
	}
	m.Add(1, 2, 2.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("Add: got %v, want 7.5", m.At(1, 2))
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1)=%v", m.At(2, 1))
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range access")
		}
	}()
	m.At(2, 0)
}

func TestMatMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want.At(i, j) {
				t.Fatalf("c[%d][%d]=%v want %v", i, j, c.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulTransA(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandNormal(rng, 4, 3, 1)
	b := RandNormal(rng, 4, 5, 1)
	got := MatMulTransA(a, b)
	want := MatMul(a.T(), b)
	if !matsClose(got, want, 1e-12) {
		t.Fatal("MatMulTransA disagrees with explicit transpose")
	}
}

func TestMatMulTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandNormal(rng, 4, 3, 1)
	b := RandNormal(rng, 5, 3, 1)
	got := MatMulTransB(a, b)
	want := MatMul(a, b.T())
	if !matsClose(got, want, 1e-12) {
		t.Fatal("MatMulTransB disagrees with explicit transpose")
	}
}

func matsClose(a, b *Dense, eps float64) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	for i, v := range a.Data() {
		if !almostEqual(v, b.Data()[i], eps) {
			return false
		}
	}
	return true
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tt := m.T()
	if tt.Rows() != 3 || tt.Cols() != 2 {
		t.Fatalf("shape %dx%d", tt.Rows(), tt.Cols())
	}
	if tt.At(2, 1) != 6 || tt.At(0, 1) != 4 {
		t.Fatalf("transpose values wrong: %v", tt)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(8)
		c := 1 + rng.Intn(8)
		m := RandNormal(rng, r, c, 1)
		return matsClose(m, m.T().T(), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		a := RandNormal(rng, n, n, 1)
		b := RandNormal(rng, n, n, 1)
		c := RandNormal(rng, n, n, 1)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return matsClose(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubHadamard(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	if got := AddMat(a, b).At(1, 1); got != 12 {
		t.Fatalf("Add: %v", got)
	}
	if got := SubMat(b, a).At(0, 0); got != 4 {
		t.Fatalf("Sub: %v", got)
	}
	if got := Hadamard(a, b).At(1, 0); got != 21 {
		t.Fatalf("Hadamard: %v", got)
	}
}

func TestConcatCols(t *testing.T) {
	a := FromRows([][]float64{{1}, {2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	c := ConcatCols(a, b)
	if c.Cols() != 3 || c.At(1, 2) != 6 || c.At(0, 0) != 1 {
		t.Fatalf("concat wrong: %v", c)
	}
}

func TestGatherRows(t *testing.T) {
	m := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	g := m.GatherRows([]int{2, 0, 2})
	if g.Rows() != 3 || g.At(0, 0) != 3 || g.At(1, 1) != 1 || g.At(2, 0) != 3 {
		t.Fatalf("gather wrong: %v", g)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestScaleFillZero(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.Scale(2)
	if m.At(1, 1) != 8 {
		t.Fatalf("Scale: %v", m.At(1, 1))
	}
	m.Fill(7)
	if m.At(0, 0) != 7 {
		t.Fatal("Fill failed")
	}
	m.Zero()
	if m.SumAll() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestDotAndNorms(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot: %v", Dot(a, b))
	}
	if !almostEqual(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2 failed")
	}
	if !almostEqual(EuclideanDistance(a, a), 0, 1e-12) {
		t.Fatal("distance to self nonzero")
	}
	if !almostEqual(EuclideanDistance([]float64{0, 0}, []float64{3, 4}), 5, 1e-12) {
		t.Fatal("distance wrong")
	}
}

func TestCosineSimilarity(t *testing.T) {
	if !almostEqual(CosineSimilarity([]float64{1, 0}, []float64{1, 0}), 1, 1e-12) {
		t.Fatal("parallel vectors should have sim 1")
	}
	if !almostEqual(CosineSimilarity([]float64{1, 0}, []float64{0, 1}), 0, 1e-12) {
		t.Fatal("orthogonal vectors should have sim 0")
	}
	if !almostEqual(CosineSimilarity([]float64{1, 0}, []float64{-1, 0}), -1, 1e-12) {
		t.Fatal("antiparallel vectors should have sim -1")
	}
	if CosineSimilarity([]float64{0, 0}, []float64{1, 2}) != 0 {
		t.Fatal("zero vector should yield 0")
	}
}

func TestCosineSimilarityBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		s := CosineSimilarity(a, b)
		return s >= -1-1e-9 && s <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSigmoid(t *testing.T) {
	if !almostEqual(Sigmoid(0), 0.5, 1e-12) {
		t.Fatal("Sigmoid(0) != 0.5")
	}
	if Sigmoid(100) <= 0.999 || Sigmoid(-100) >= 0.001 {
		t.Fatal("Sigmoid saturation wrong")
	}
	// Stability at extreme values: must not be NaN.
	for _, x := range []float64{-1e9, 1e9} {
		if math.IsNaN(Sigmoid(x)) {
			t.Fatalf("Sigmoid(%v) is NaN", x)
		}
	}
}

func TestSigmoidSymmetry(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return almostEqual(Sigmoid(x)+Sigmoid(-x), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGlorotUniformBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := GlorotUniform(rng, 10, 20)
	limit := math.Sqrt(6.0 / 30.0)
	for _, v := range m.Data() {
		if v < -limit || v > limit {
			t.Fatalf("value %v outside glorot bound %v", v, limit)
		}
	}
}

func TestOneHot(t *testing.T) {
	m := OneHot(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("OneHot[%d][%d]=%v", i, j, m.At(i, j))
			}
		}
	}
}

func TestMaxAbs(t *testing.T) {
	m := FromRows([][]float64{{-3, 2}, {1, -0.5}})
	if m.MaxAbs() != 3 {
		t.Fatalf("MaxAbs=%v", m.MaxAbs())
	}
	if New(0, 0).MaxAbs() != 0 {
		t.Fatal("empty MaxAbs should be 0")
	}
}

func TestApply(t *testing.T) {
	m := FromRows([][]float64{{1, -2}})
	a := m.Apply(math.Abs)
	if a.At(0, 1) != 2 || m.At(0, 1) != -2 {
		t.Fatal("Apply should not mutate the receiver")
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandNormal(rng, 128, 128, 1)
	y := RandNormal(rng, 128, 128, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

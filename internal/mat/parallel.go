package mat

import (
	"sync"

	"dssddi/internal/par"
)

// The kernels in this file are the parallel, cache-blocked backend for
// the public API in mat.go. Parallelism is row-partitioned through the
// shared pool in internal/par: each goroutine owns a disjoint,
// contiguous range of output rows (or of the flat element slice for
// element-wise ops) and accumulates in the same per-element order as
// the serial loop, so results are bitwise identical for any worker
// count. SetWorkers(1) runs everything on the calling goroutine.
//
// Every kernel dispatches through a pooled kernTask worker rather than
// a func literal, so a kernel invocation performs no heap allocation —
// the hot training loop calls these hundreds of times per epoch.

// SetWorkers sets the process-wide worker count used by all mat and
// sparse kernels. n <= 0 resets to runtime.GOMAXPROCS(0); 1 restores
// exact-serial execution.
func SetWorkers(n int) { par.SetWorkers(n) }

// Workers returns the effective kernel worker count.
func Workers() int { return par.Workers() }

const (
	// blockK is the k-tile height of the blocked matmul kernels: a
	// blockK x cols panel of the streamed operand stays hot in cache
	// while being applied to the rows a goroutine owns.
	blockK = 128
	// minFlopsPerTask is the smallest amount of matmul work worth
	// shipping to another goroutine.
	minFlopsPerTask = 32768
	// ewGrain is the per-chunk element count for element-wise kernels.
	ewGrain = 1 << 15
)

// RowGrain returns the minimum rows per parallel task given the
// work (flops or elements moved) of a single row, so each task
// carries enough to amortise dispatch. Shared by the consumers that
// row-partition their own loops (internal/ag and friends).
func RowGrain(workPerRow int) int {
	if workPerRow <= 0 {
		return 1 << 30 // no per-row work: stay serial
	}
	g := minFlopsPerTask / workPerRow
	if g < 1 {
		g = 1
	}
	return g
}

// rowGrain is the package-internal spelling.
func rowGrain(workPerRow int) int { return RowGrain(workPerRow) }

// Kernel kinds dispatched by kernTask.Chunk.
const (
	kMatMul uint8 = iota
	kTransAOver
	kTransAAdd
	kTransBOver
	kTransBAdd
	kHadamard
	kAddHadamard
	kAddScaled
	kApply
	kApplyInPlace
	kZipAdd
	kZipSet
	kGather
	kRepRow
	kAddRow
	kAddEl
	kSubEl
	kScaleEl
)

// kernTask carries one kernel invocation's operands through the worker
// pool. Instances are recycled via kernPool so kernels allocate
// nothing per call.
type kernTask struct {
	kind      uint8
	dst, a, b *Dense
	f         func(float64) float64
	zf        func(av, bv float64) float64
	s         float64
	idx       []int
	row       []float64
}

var kernPool = sync.Pool{New: func() any { return new(kernTask) }}

func getKern(kind uint8) *kernTask {
	t := kernPool.Get().(*kernTask)
	t.kind = kind
	return t
}

// run dispatches the task over [0, n) and recycles it.
func (t *kernTask) run(n, grain int) {
	par.Run(n, grain, t)
	*t = kernTask{}
	kernPool.Put(t)
}

// Chunk implements par.Worker.
func (t *kernTask) Chunk(lo, hi int) {
	switch t.kind {
	case kMatMul:
		matMulRange(t.dst, t.a, t.b, lo, hi)
	case kTransAOver:
		matMulTransARange(t.dst, t.a, t.b, lo, hi, true)
	case kTransAAdd:
		matMulTransARange(t.dst, t.a, t.b, lo, hi, false)
	case kTransBOver:
		matMulTransBRange(t.dst, t.a, t.b, lo, hi, true)
	case kTransBAdd:
		matMulTransBRange(t.dst, t.a, t.b, lo, hi, false)
	case kHadamard:
		dd, ad, bd := t.dst.data, t.a.data, t.b.data
		hadamardSlices(dd[lo:hi], ad[lo:hi], bd[lo:hi])
	case kAddHadamard:
		dd, ad, bd := t.dst.data, t.a.data, t.b.data
		for i := lo; i < hi; i++ {
			dd[i] += ad[i] * bd[i]
		}
	case kAddScaled:
		dd, ad := t.dst.data, t.a.data
		mulAddRow1(dd[lo:hi], ad[lo:hi], t.s)
	case kApply:
		dd, ad, f := t.dst.data, t.a.data, t.f
		for i := lo; i < hi; i++ {
			dd[i] = f(ad[i])
		}
	case kApplyInPlace:
		dd, f := t.dst.data, t.f
		for i := lo; i < hi; i++ {
			dd[i] = f(dd[i])
		}
	case kZipAdd:
		dd, ad, bd, zf := t.dst.data, t.a.data, t.b.data, t.zf
		for i := lo; i < hi; i++ {
			dd[i] += zf(ad[i], bd[i])
		}
	case kZipSet:
		dd, ad, bd, zf := t.dst.data, t.a.data, t.b.data, t.zf
		for i := lo; i < hi; i++ {
			dd[i] = zf(ad[i], bd[i])
		}
	case kGather:
		for i := lo; i < hi; i++ {
			copy(t.dst.Row(i), t.a.Row(t.idx[i]))
		}
	case kRepRow:
		for i := lo; i < hi; i++ {
			copy(t.dst.Row(i), t.row)
		}
	case kAddRow:
		for i := lo; i < hi; i++ {
			arow := t.a.Row(i)
			drow := t.dst.Row(i)
			for j, av := range arow {
				drow[j] = av + t.row[j]
			}
		}
	case kAddEl:
		dd, ad, bd := t.dst.data, t.a.data, t.b.data
		for i := lo; i < hi; i++ {
			dd[i] = ad[i] + bd[i]
		}
	case kSubEl:
		dd, ad, bd := t.dst.data, t.a.data, t.b.data
		for i := lo; i < hi; i++ {
			dd[i] = ad[i] - bd[i]
		}
	case kScaleEl:
		dd, ad, s := t.dst.data, t.a.data, t.s
		for i := lo; i < hi; i++ {
			dd[i] = s * ad[i]
		}
	}
}

// scratchPool recycles the per-chunk accumulation buffers of the fused
// gradient kernels (mat's transposed matmuls and sparse's SpMM — see
// GetScratch). Stored as *[]float64 so Put doesn't allocate a box.
var scratchPool = sync.Pool{New: func() any { return new([]float64) }}

// GetScratch returns a zeroed scratch buffer of length n from a
// process-wide pool. Pair with PutScratch. Safe for concurrent use
// (pool workers grab chunk scratch through it).
func GetScratch(n int) *[]float64 {
	p := scratchPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
		return p
	}
	*p = (*p)[:n]
	for i := range *p {
		(*p)[i] = 0
	}
	return p
}

// PutScratch returns a buffer obtained from GetScratch to the pool.
func PutScratch(p *[]float64) { scratchPool.Put(p) }

// matMulRange computes dst[lo:hi] = a[lo:hi] * b with a k-blocked ikj
// loop. Four k-panels are fused per pass over the output row, cutting
// the dst loads/stores to a quarter; rows are independent, so results
// stay bitwise identical for any worker count or chunking.
func matMulRange(dst, a, b *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
	}
	K := a.cols
	for kb := 0; kb < K; kb += blockK {
		ke := kb + blockK
		if ke > K {
			ke = K
		}
		for i := lo; i < hi; i++ {
			arow := a.Row(i)[kb:ke]
			drow := dst.Row(i)
			k := 0
			for ; k+3 < len(arow); k += 4 {
				a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue // one-hot and sparse-ish inputs skip whole panels
				}
				mulAddRows4(drow, b.data[(kb+k)*b.cols:(kb+k+4)*b.cols], a0, a1, a2, a3)
			}
			for ; k < len(arow); k++ {
				av := arow[k]
				if av == 0 {
					continue
				}
				mulAddRow1(drow, b.Row(kb+k), av)
			}
		}
	}
}

// matMulTransARange computes dst[lo:hi] = (or +=) (aᵀ*b)[lo:hi].
// Output rows index a's columns; terms accumulate in ascending-k
// order. Overwrite mode zeroes the owned dst rows and accumulates in
// place; accumulate mode builds the product in a pooled scratch block
// and lands it on dst with one add per element (matching the
// temp-matrix-then-AddScaled numerics of the serial gradient path).
func matMulTransARange(dst, a, b *Dense, lo, hi int, overwrite bool) {
	cols := dst.cols
	var out []float64
	var scratch *[]float64
	if overwrite {
		for i := lo; i < hi; i++ {
			drow := dst.Row(i)
			for j := range drow {
				drow[j] = 0
			}
		}
		out = dst.data[lo*cols : hi*cols]
	} else {
		scratch = GetScratch((hi - lo) * cols)
		out = *scratch
	}
	k := 0
	for ; k+3 < a.rows; k += 4 { // four k-panels per pass over the output
		ar0, ar1, ar2, ar3 := a.Row(k), a.Row(k+1), a.Row(k+2), a.Row(k+3)
		b4 := b.data[k*b.cols : (k+4)*b.cols]
		for i := lo; i < hi; i++ {
			a0, a1, a2, a3 := ar0[i], ar1[i], ar2[i], ar3[i]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			mulAddRows4(out[(i-lo)*cols:(i-lo+1)*cols], b4, a0, a1, a2, a3)
		}
	}
	for ; k < a.rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			mulAddRow1(out[(i-lo)*cols:(i-lo+1)*cols], brow, av)
		}
	}
	if overwrite {
		return
	}
	for i := lo; i < hi; i++ {
		drow := dst.Row(i)
		srow := out[(i-lo)*cols : (i-lo+1)*cols]
		for j, sv := range srow {
			drow[j] += sv
		}
	}
	PutScratch(scratch)
}

// matMulTransBRange computes dst[lo:hi] = (or +=) (a*bᵀ)[lo:hi] as a
// row of dot products per output row.
func matMulTransBRange(dst, a, b *Dense, lo, hi int, overwrite bool) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.rows; j++ {
			v := dot4(arow, b.Row(j))
			if overwrite {
				drow[j] = v
			} else {
				drow[j] += v
			}
		}
	}
}

func (t *kernTask) runMM(dst, a, b *Dense, n, grain int) {
	t.dst, t.a, t.b = dst, a, b
	t.run(n, grain)
}

// MatMulTransAInto computes dst = aᵀ*b. dst must be a.cols x b.cols.
func MatMulTransAInto(dst, a, b *Dense) {
	checkTransA(dst, a, b)
	getKern(kTransAOver).runMM(dst, a, b, a.cols, rowGrain(a.rows*b.cols))
}

// MatMulTransAAddInto accumulates dst += aᵀ*b, the fused form of the
// dB = Aᵀ*dOut gradient update (no temporary gradient matrix).
func MatMulTransAAddInto(dst, a, b *Dense) {
	checkTransA(dst, a, b)
	getKern(kTransAAdd).runMM(dst, a, b, a.cols, rowGrain(a.rows*b.cols))
}

// MatMulTransBInto computes dst = a*bᵀ. dst must be a.rows x b.rows.
func MatMulTransBInto(dst, a, b *Dense) {
	checkTransB(dst, a, b)
	getKern(kTransBOver).runMM(dst, a, b, a.rows, rowGrain(a.cols*b.rows))
}

// MatMulTransBAddInto accumulates dst += a*bᵀ, the fused form of the
// dA = dOut*Bᵀ gradient update.
func MatMulTransBAddInto(dst, a, b *Dense) {
	checkTransB(dst, a, b)
	getKern(kTransBAdd).runMM(dst, a, b, a.rows, rowGrain(a.cols*b.rows))
}

func checkTransA(dst, a, b *Dense) {
	if a.rows != b.rows || dst.rows != a.cols || dst.cols != b.cols {
		panic("mat: MatMulTransA shape mismatch")
	}
}

func checkTransB(dst, a, b *Dense) {
	if a.cols != b.cols || dst.rows != a.rows || dst.cols != b.rows {
		panic("mat: MatMulTransB shape mismatch")
	}
}

// HadamardInto computes dst = a⊙b element-wise.
func HadamardInto(dst, a, b *Dense) {
	sameShape("HadamardInto", dst, a)
	sameShape("HadamardInto", a, b)
	getKern(kHadamard).runMM(dst, a, b, len(dst.data), ewGrain)
}

// AddHadamard accumulates m += a⊙b element-wise — the fused form of
// the Hadamard gradient updates (dA += dOut⊙B, dB += dOut⊙A).
func (m *Dense) AddHadamard(a, b *Dense) {
	sameShape("AddHadamard", m, a)
	sameShape("AddHadamard", a, b)
	getKern(kAddHadamard).runMM(m, a, b, len(m.data), ewGrain)
}

// ApplyInto computes dst = f(src) element-wise.
func ApplyInto(dst, src *Dense, f func(float64) float64) {
	sameShape("ApplyInto", dst, src)
	t := getKern(kApply)
	t.dst, t.a, t.f = dst, src, f
	t.run(len(dst.data), ewGrain)
}

// ApplyInPlace overwrites every element with f(element).
func (m *Dense) ApplyInPlace(f func(float64) float64) {
	t := getKern(kApplyInPlace)
	t.dst, t.f = m, f
	t.run(len(m.data), ewGrain)
}

// ZipAddInto accumulates dst += f(a, b) element-wise. The autodiff
// tape uses it to fuse activation backward passes (grad += dOut·f'(x))
// without a temporary matrix.
func ZipAddInto(dst, a, b *Dense, f func(av, bv float64) float64) {
	sameShape("ZipAddInto", dst, a)
	sameShape("ZipAddInto", a, b)
	t := getKern(kZipAdd)
	t.dst, t.a, t.b, t.zf = dst, a, b, f
	t.run(len(dst.data), ewGrain)
}

// ZipInto computes dst = f(a, b) element-wise — the overwrite form of
// ZipAddInto, used when the destination receives its first gradient
// contribution of the epoch (no zero + add passes).
func ZipInto(dst, a, b *Dense, f func(av, bv float64) float64) {
	sameShape("ZipInto", dst, a)
	sameShape("ZipInto", a, b)
	t := getKern(kZipSet)
	t.dst, t.a, t.b, t.zf = dst, a, b, f
	t.run(len(dst.data), ewGrain)
}

// RepRow returns an n-row matrix whose every row is a copy of row.
func RepRow(row []float64, n int) *Dense {
	out := New(n, len(row))
	RepRowInto(out, row)
	return out
}

// RepRowInto fills every row of dst with a copy of row.
func RepRowInto(dst *Dense, row []float64) {
	if dst.cols != len(row) {
		panic("mat: RepRowInto width mismatch")
	}
	t := getKern(kRepRow)
	t.dst, t.row = dst, row
	t.run(dst.rows, rowGrain(len(row)))
}

// AddRowInto computes dst[i][j] = a[i][j] + row[j] — the broadcast bias
// add of a linear layer, shared by the tape op and the tape-free
// inference path so both produce bitwise-identical values.
func AddRowInto(dst, a *Dense, row []float64) {
	sameShape("AddRowInto", dst, a)
	if a.cols != len(row) {
		panic("mat: AddRowInto width mismatch")
	}
	t := getKern(kAddRow)
	t.dst, t.a, t.row = dst, a, row
	t.run(dst.rows, rowGrain(len(row)))
}

package mat

import (
	"dssddi/internal/par"
)

// The kernels in this file are the parallel, cache-blocked backend for
// the public API in mat.go. Parallelism is row-partitioned through the
// shared pool in internal/par: each goroutine owns a disjoint,
// contiguous range of output rows (or of the flat element slice for
// element-wise ops) and accumulates in the same per-element order as
// the serial loop, so results are bitwise identical for any worker
// count. SetWorkers(1) runs everything on the calling goroutine.

// SetWorkers sets the process-wide worker count used by all mat and
// sparse kernels. n <= 0 resets to runtime.GOMAXPROCS(0); 1 restores
// exact-serial execution.
func SetWorkers(n int) { par.SetWorkers(n) }

// Workers returns the effective kernel worker count.
func Workers() int { return par.Workers() }

const (
	// blockK is the k-tile height of the blocked matmul kernels: a
	// blockK x cols panel of the streamed operand stays hot in cache
	// while being applied to the rows a goroutine owns.
	blockK = 128
	// minFlopsPerTask is the smallest amount of matmul work worth
	// shipping to another goroutine.
	minFlopsPerTask = 32768
	// ewGrain is the per-chunk element count for element-wise kernels.
	ewGrain = 1 << 15
)

// RowGrain returns the minimum rows per parallel task given the
// work (flops or elements moved) of a single row, so each task
// carries enough to amortise dispatch. Shared by the consumers that
// row-partition their own loops (internal/ag and friends).
func RowGrain(workPerRow int) int {
	if workPerRow <= 0 {
		return 1 << 30 // no per-row work: stay serial
	}
	g := minFlopsPerTask / workPerRow
	if g < 1 {
		g = 1
	}
	return g
}

// rowGrain is the package-internal spelling.
func rowGrain(workPerRow int) int { return RowGrain(workPerRow) }

// matMulRange computes dst[lo:hi] = a[lo:hi] * b with a k-blocked ikj
// loop. Each output row is accumulated in ascending-k order, matching
// the serial kernel exactly.
func matMulRange(dst, a, b *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
	}
	K := a.cols
	for kb := 0; kb < K; kb += blockK {
		ke := kb + blockK
		if ke > K {
			ke = K
		}
		for i := lo; i < hi; i++ {
			arow := a.Row(i)[kb:ke]
			drow := dst.Row(i)
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Row(kb + k)
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	}
}

// matMulTransARange computes dst[lo:hi] = (or +=) (aᵀ*b)[lo:hi].
// Output rows index a's columns; terms accumulate in ascending-k
// order. Overwrite mode zeroes the owned dst rows and accumulates in
// place; accumulate mode builds the product in a scratch block and
// lands it on dst with one add per element (matching the
// temp-matrix-then-AddScaled numerics of the serial gradient path).
func matMulTransARange(dst, a, b *Dense, lo, hi int, overwrite bool) {
	out, base := dst, 0
	if overwrite {
		for i := lo; i < hi; i++ {
			drow := dst.Row(i)
			for j := range drow {
				drow[j] = 0
			}
		}
	} else {
		out, base = New(hi-lo, dst.cols), lo
	}
	for k := 0; k < a.rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			drow := out.Row(i - base)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	if overwrite {
		return
	}
	for i := lo; i < hi; i++ {
		drow := dst.Row(i)
		brow := out.Row(i - lo)
		for j, bv := range brow {
			drow[j] += bv
		}
	}
}

// matMulTransBRange computes dst[lo:hi] = (or +=) (a*bᵀ)[lo:hi] as a
// row of dot products per output row.
func matMulTransBRange(dst, a, b *Dense, lo, hi int, overwrite bool) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.rows; j++ {
			v := Dot(arow, b.Row(j))
			if overwrite {
				drow[j] = v
			} else {
				drow[j] += v
			}
		}
	}
}

// MatMulTransAInto computes dst = aᵀ*b. dst must be a.cols x b.cols.
func MatMulTransAInto(dst, a, b *Dense) {
	checkTransA(dst, a, b)
	par.For(a.cols, rowGrain(a.rows*b.cols), func(lo, hi int) {
		matMulTransARange(dst, a, b, lo, hi, true)
	})
}

// MatMulTransAAddInto accumulates dst += aᵀ*b, the fused form of the
// dB = Aᵀ*dOut gradient update (no temporary gradient matrix).
func MatMulTransAAddInto(dst, a, b *Dense) {
	checkTransA(dst, a, b)
	par.For(a.cols, rowGrain(a.rows*b.cols), func(lo, hi int) {
		matMulTransARange(dst, a, b, lo, hi, false)
	})
}

// MatMulTransBInto computes dst = a*bᵀ. dst must be a.rows x b.rows.
func MatMulTransBInto(dst, a, b *Dense) {
	checkTransB(dst, a, b)
	par.For(a.rows, rowGrain(a.cols*b.rows), func(lo, hi int) {
		matMulTransBRange(dst, a, b, lo, hi, true)
	})
}

// MatMulTransBAddInto accumulates dst += a*bᵀ, the fused form of the
// dA = dOut*Bᵀ gradient update.
func MatMulTransBAddInto(dst, a, b *Dense) {
	checkTransB(dst, a, b)
	par.For(a.rows, rowGrain(a.cols*b.rows), func(lo, hi int) {
		matMulTransBRange(dst, a, b, lo, hi, false)
	})
}

func checkTransA(dst, a, b *Dense) {
	if a.rows != b.rows || dst.rows != a.cols || dst.cols != b.cols {
		panic("mat: MatMulTransA shape mismatch")
	}
}

func checkTransB(dst, a, b *Dense) {
	if a.cols != b.cols || dst.rows != a.rows || dst.cols != b.rows {
		panic("mat: MatMulTransB shape mismatch")
	}
}

// forEachElem partitions the flat element range [0, n) across workers.
func forEachElem(n int, fn func(lo, hi int)) { par.For(n, ewGrain, fn) }

// HadamardInto computes dst = a⊙b element-wise.
func HadamardInto(dst, a, b *Dense) {
	sameShape("HadamardInto", dst, a)
	sameShape("HadamardInto", a, b)
	dd, ad, bd := dst.data, a.data, b.data
	forEachElem(len(dd), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dd[i] = ad[i] * bd[i]
		}
	})
}

// AddHadamard accumulates m += a⊙b element-wise — the fused form of
// the Hadamard gradient updates (dA += dOut⊙B, dB += dOut⊙A).
func (m *Dense) AddHadamard(a, b *Dense) {
	sameShape("AddHadamard", m, a)
	sameShape("AddHadamard", a, b)
	md, ad, bd := m.data, a.data, b.data
	forEachElem(len(md), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			md[i] += ad[i] * bd[i]
		}
	})
}

// ApplyInto computes dst = f(src) element-wise.
func ApplyInto(dst, src *Dense, f func(float64) float64) {
	sameShape("ApplyInto", dst, src)
	dd, sd := dst.data, src.data
	forEachElem(len(dd), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dd[i] = f(sd[i])
		}
	})
}

// ApplyInPlace overwrites every element with f(element).
func (m *Dense) ApplyInPlace(f func(float64) float64) {
	d := m.data
	forEachElem(len(d), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d[i] = f(d[i])
		}
	})
}

// ZipAddInto accumulates dst += f(a, b) element-wise. The autodiff
// tape uses it to fuse activation backward passes (grad += dOut·f'(x))
// without a temporary matrix.
func ZipAddInto(dst, a, b *Dense, f func(av, bv float64) float64) {
	sameShape("ZipAddInto", dst, a)
	sameShape("ZipAddInto", a, b)
	dd, ad, bd := dst.data, a.data, b.data
	forEachElem(len(dd), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dd[i] += f(ad[i], bd[i])
		}
	})
}

// RepRow returns an n-row matrix whose every row is a copy of row.
func RepRow(row []float64, n int) *Dense {
	out := New(n, len(row))
	par.For(n, rowGrain(len(row)), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(out.Row(i), row)
		}
	})
	return out
}

package mat

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// shapes covers the awkward cases: empty, scalar, odd, tall, wide, and
// zero inner dimension.
var shapes = []struct {
	name    string
	m, k, n int
}{
	{"empty", 0, 0, 0},
	{"scalar", 1, 1, 1},
	{"odd", 3, 5, 7},
	{"tall", 257, 3, 5},
	{"wide", 3, 5, 257},
	{"innerZero", 4, 0, 5},
	{"rowVec", 1, 64, 33},
	{"colVec", 65, 33, 1},
	{"square", 48, 48, 48},
	{"big", 130, 70, 90},
}

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := New(r, c)
	d := m.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
		if rng.Intn(8) == 0 {
			d[i] = 0 // exercise the zero-skip path
		}
	}
	return m
}

// withWorkers runs f under worker count w, restoring the default.
func withWorkers(w int, f func()) {
	SetWorkers(w)
	defer SetWorkers(0)
	f()
}

// serialThenParallel evaluates kernel once with 1 worker and once with
// 4, returning both results.
func serialThenParallel(kernel func() *Dense) (serial, parallel *Dense) {
	withWorkers(1, func() { serial = kernel() })
	withWorkers(4, func() { parallel = kernel() })
	return
}

func maxAbsDiff(t *testing.T, a, b *Dense) float64 {
	t.Helper()
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		t.Fatalf("shape mismatch %dx%d vs %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	var mx float64
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		if d := math.Abs(ad[i] - bd[i]); d > mx {
			mx = d
		}
	}
	return mx
}

// TestParallelMatchesSerial is the table-driven serial-vs-parallel
// equivalence check across every matmul variant and shape. The kernels
// are designed to be bitwise identical, so the 1e-12 bound of the
// acceptance criteria is checked with margin to spare.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sh := range shapes {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			a := randDense(rng, sh.m, sh.k)
			b := randDense(rng, sh.k, sh.n)
			at := randDense(rng, sh.k, sh.m) // for aᵀ*b with result m x n
			bt := randDense(rng, sh.n, sh.k) // for a*bᵀ with result m x n
			acc := randDense(rng, sh.m, sh.n)

			kernels := []struct {
				name string
				f    func() *Dense
			}{
				{"MatMul", func() *Dense { return MatMul(a, b) }},
				{"MatMulInto", func() *Dense {
					dst := New(sh.m, sh.n)
					MatMulInto(dst, a, b)
					return dst
				}},
				{"MatMulTransA", func() *Dense { return MatMulTransA(at, b) }},
				{"MatMulTransAAddInto", func() *Dense {
					dst := acc.Clone()
					MatMulTransAAddInto(dst, at, b)
					return dst
				}},
				{"MatMulTransB", func() *Dense { return MatMulTransB(a, bt) }},
				{"MatMulTransBAddInto", func() *Dense {
					dst := acc.Clone()
					MatMulTransBAddInto(dst, a, bt)
					return dst
				}},
			}
			for _, k := range kernels {
				s, p := serialThenParallel(k.f)
				if d := maxAbsDiff(t, s, p); d > 1e-12 {
					t.Errorf("%s: serial vs parallel max |diff| = %g", k.name, d)
				}
			}
		})
	}
}

// TestElementwiseParallelMatchesSerial covers the fused element-wise
// kernels over a size big enough to split across workers.
func TestElementwiseParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randDense(rng, 300, 301)
	b := randDense(rng, 300, 301)
	c := randDense(rng, 300, 301)

	kernels := []struct {
		name string
		f    func() *Dense
	}{
		{"Hadamard", func() *Dense { return Hadamard(a, b) }},
		{"AddHadamard", func() *Dense {
			dst := c.Clone()
			dst.AddHadamard(a, b)
			return dst
		}},
		{"Apply", func() *Dense { return a.Apply(math.Exp) }},
		{"ApplyInPlace", func() *Dense {
			dst := a.Clone()
			dst.ApplyInPlace(Sigmoid)
			return dst
		}},
		{"AddScaled", func() *Dense {
			dst := c.Clone()
			dst.AddScaled(a, 0.37)
			return dst
		}},
		{"ZipAddInto", func() *Dense {
			dst := c.Clone()
			ZipAddInto(dst, a, b, func(x, y float64) float64 { return x * math.Tanh(y) })
			return dst
		}},
		{"GatherRows", func() *Dense {
			idx := make([]int, 500)
			for i := range idx {
				idx[i] = (i * 7) % a.Rows()
			}
			return a.GatherRows(idx)
		}},
		{"RepRow", func() *Dense { return RepRow(a.Row(0), 400) }},
	}
	for _, k := range kernels {
		s, p := serialThenParallel(k.f)
		if d := maxAbsDiff(t, s, p); d != 0 {
			t.Errorf("%s: serial vs parallel max |diff| = %g, want bitwise identity", k.name, d)
		}
	}
}

// TestWorkerCountInvariance checks a chained computation (the shape of
// a GCN layer) is identical across several worker counts.
func TestWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randDense(rng, 97, 64)
	w := randDense(rng, 64, 32)
	var ref *Dense
	for _, workers := range []int{1, 2, 3, 4, 7} {
		var got *Dense
		withWorkers(workers, func() {
			h := MatMul(x, w)
			h.ApplyInPlace(math.Tanh)
			got = MatMulTransA(h, h)
		})
		if ref == nil {
			ref = got
			continue
		}
		if d := maxAbsDiff(t, ref, got); d != 0 {
			t.Fatalf("workers=%d: result differs from workers=1 by %g", workers, d)
		}
	}
}

// TestConcurrentMatMulInto hammers the kernels from many goroutines
// sharing input matrices (distinct outputs). Run with -race in CI.
func TestConcurrentMatMulInto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randDense(rng, 120, 80)
	b := randDense(rng, 80, 60)
	want := MatMul(a, b)

	withWorkers(4, func() {
		var wg sync.WaitGroup
		for g := 0; g < 12; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				dst := New(a.Rows(), b.Cols())
				for iter := 0; iter < 20; iter++ {
					MatMulInto(dst, a, b)
				}
				if d := maxAbsDiff(t, want, dst); d != 0 {
					t.Errorf("concurrent MatMulInto diverged by %g", d)
				}
			}()
		}
		wg.Wait()
	})
}

package mat

import (
	"math"
	"math/rand"
)

// RandUniform returns a rows x cols matrix with entries drawn uniformly
// from [-scale, scale).
func RandUniform(rng *rand.Rand, rows, cols int, scale float64) *Dense {
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}

// RandNormal returns a rows x cols matrix with N(0, std²) entries.
func RandNormal(rng *rand.Rand, rows, cols int, std float64) *Dense {
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = rng.NormFloat64() * std
	}
	return m
}

// GlorotUniform returns a rows x cols matrix initialised with the
// Glorot/Xavier uniform scheme: U(-√(6/(fanIn+fanOut)), +√(6/(fanIn+fanOut))).
func GlorotUniform(rng *rand.Rand, rows, cols int) *Dense {
	limit := math.Sqrt(6.0 / float64(rows+cols))
	return RandUniform(rng, rows, cols, limit)
}

// OneHot returns an n x n identity matrix, used as one-hot ID features.
func OneHot(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

package mat

// SIMD micro-kernels. The three accumulation patterns below are the
// inner loops of every dense matmul kernel in this package:
//
//	mulAddRows4  dst[j] += (a0*b0[j] + a1*b1[j]) + (a2*b2[j] + a3*b3[j])
//	mulAddRow1   dst[j] += a*b[j]
//	dot4         four-accumulator dot product (see dot4 in parallel.go)
//	hadamardInto dst[i] = a[i]*b[i]
//
// On amd64 with AVX2 they dispatch to hand-written vector assembly
// (simd_amd64.s). The vector forms are bitwise identical to the scalar
// forms: lanes are independent output elements (mulAddRows4,
// mulAddRow1, hadamardInto) or exactly the four interleaved
// accumulators of the scalar code (dot4), and every lane performs the
// same IEEE-754 operations in the same order as the scalar loop. No
// FMA is used — fused multiply-add skips the intermediate rounding and
// would change results. The *Go reference implementations in this file
// are the fallback for other architectures (and for CPUs without
// AVX2), and the oracle the assembly is tested against.

// mulAddRows4Go is the scalar reference of the four-row
// multiply-accumulate. b4 holds four consecutive rows of length
// len(dst), back to back.
func mulAddRows4Go(dst, b4 []float64, a0, a1, a2, a3 float64) {
	n := len(dst)
	b0 := b4[:n]
	b1 := b4[n : 2*n]
	b2 := b4[2*n : 3*n]
	b3 := b4[3*n : 4*n]
	for j, bv := range b0 {
		dst[j] += (a0*bv + a1*b1[j]) + (a2*b2[j] + a3*b3[j])
	}
}

// mulAddRow1Go is the scalar reference of the single-row
// multiply-accumulate.
func mulAddRow1Go(dst, b []float64, a float64) {
	b = b[:len(dst)]
	for j, bv := range b {
		dst[j] += a * bv
	}
}

// dot4Go is the scalar reference of the four-accumulator dot product.
// It reassociates the sum relative to the plain Dot (which the tape's
// RowSum must keep matching), so it is private to the matmul kernels.
func dot4Go(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	k := 0
	b = b[:len(a)]
	for ; k+3 < len(a); k += 4 {
		s0 += a[k] * b[k]
		s1 += a[k+1] * b[k+1]
		s2 += a[k+2] * b[k+2]
		s3 += a[k+3] * b[k+3]
	}
	for ; k < len(a); k++ {
		s0 += a[k] * b[k]
	}
	return (s0 + s1) + (s2 + s3)
}

// hadamardIntoGo is the scalar reference of the element-wise product.
func hadamardIntoGo(dst, a, b []float64) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// addBiasLeakyGo is the scalar reference of the fused bias-add +
// LeakyReLU epilogue: dst[i] = leaky(dst[i] + bias[i]) with
// leaky(v) = v if v > 0 else slope*v — the exact element formulas of
// AddRowInto followed by the LeakyReLU activation.
func addBiasLeakyGo(dst, bias []float64, slope float64) {
	bias = bias[:len(dst)]
	for i := range dst {
		v := dst[i] + bias[i]
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = slope * v
		}
	}
}

package mat

// float32 SIMD micro-kernels — the serving engine's quantized twins of
// the float64 kernels in simd.go. The accumulation patterns mirror the
// f64 set (an AVX2 ymm holds 8 float32 lanes instead of 4 float64):
//
//	mulAddRows4x32   dst[j] += (a0*b0[j] + a1*b1[j]) + (a2*b2[j] + a3*b3[j])
//	mulAddRow1x32    dst[j] += a*b[j]
//	dot8x32          eight-accumulator dot product
//	addBiasLeakyx32  dst[i] = leaky(dst[i] + bias[i])
//
// The same discipline as the f64 kernels applies: no FMA (a fused
// multiply-add skips the intermediate rounding and would make the
// vector path diverge from the scalar fallback), lanes are independent
// output elements (or dot8's exact eight interleaved accumulators),
// and scalar tails replicate the same operation grouping — so the
// assembly is bitwise identical to these Go references for every
// input, and a server answers the same f32 bits whether DSSDDI_SIMD
// forces the kernels off or not. The f32 path as a whole is NOT
// bitwise-equal to the f64 path; its divergence from the f64 oracle
// is characterized and gated separately (see internal/md and
// cmd/benchdiff -precision-gate).

// mulAddRows4Go32 is the scalar reference of the four-row float32
// multiply-accumulate. b4 holds four consecutive rows of length
// len(dst), back to back.
func mulAddRows4Go32(dst, b4 []float32, a0, a1, a2, a3 float32) {
	n := len(dst)
	b0 := b4[:n]
	b1 := b4[n : 2*n]
	b2 := b4[2*n : 3*n]
	b3 := b4[3*n : 4*n]
	for j, bv := range b0 {
		dst[j] += (a0*bv + a1*b1[j]) + (a2*b2[j] + a3*b3[j])
	}
}

// mulAddRow1Go32 is the scalar reference of the single-row float32
// multiply-accumulate.
func mulAddRow1Go32(dst, b []float32, a float32) {
	b = b[:len(dst)]
	for j, bv := range b {
		dst[j] += a * bv
	}
}

// dot8Go32 is the scalar reference of the eight-accumulator float32
// dot product: accumulator s_i is vector lane i of the AVX2 kernel,
// the tail adds into s0, and the final combine matches the kernel's
// in-register reduction order exactly.
func dot8Go32(a, b []float32) float32 {
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	k := 0
	b = b[:len(a)]
	for ; k+7 < len(a); k += 8 {
		s0 += a[k] * b[k]
		s1 += a[k+1] * b[k+1]
		s2 += a[k+2] * b[k+2]
		s3 += a[k+3] * b[k+3]
		s4 += a[k+4] * b[k+4]
		s5 += a[k+5] * b[k+5]
		s6 += a[k+6] * b[k+6]
		s7 += a[k+7] * b[k+7]
	}
	for ; k < len(a); k++ {
		s0 += a[k] * b[k]
	}
	return ((s0 + s2) + (s1 + s3)) + ((s4 + s6) + (s5 + s7))
}

// addBiasLeakyGo32 is the scalar reference of the fused float32
// bias-add + LeakyReLU epilogue: dst[i] = leaky(dst[i] + bias[i]) with
// leaky(v) = v if v > 0 else slope*v.
func addBiasLeakyGo32(dst, bias []float32, slope float32) {
	bias = bias[:len(dst)]
	for i := range dst {
		v := dst[i] + bias[i]
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = slope * v
		}
	}
}

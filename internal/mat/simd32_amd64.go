//go:build amd64

package mat

// The float32 kernels share the useAVX2/useAVX512 gates (and the
// DSSDDI_SIMD cap) with the float64 set in simd_amd64.go: one
// environment knob governs both precisions, and every level produces
// identical f32 bits.

//go:noescape
func mulAddRows4AVX512F32(dst, b4 []float32, a0, a1, a2, a3 float32)

//go:noescape
func mulAddRows4AVX2F32(dst, b4 []float32, a0, a1, a2, a3 float32)

//go:noescape
func mulAddRow1AVX2F32(dst, b []float32, a float32)

//go:noescape
func dot8AVX2F32(a, b []float32) float32

//go:noescape
func addBiasLeakyAVX2F32(dst, bias []float32, slope float32)

// mulAddRows432 computes dst[j] += (a0*b0[j] + a1*b1[j]) + (a2*b2[j] +
// a3*b3[j]) where b4 holds the four b-rows back to back. Bitwise
// identical with the vector path on or off.
func mulAddRows432(dst, b4 []float32, a0, a1, a2, a3 float32) {
	if len(b4) < 4*len(dst) {
		panic("mat: mulAddRows432 needs 4*len(dst) b values")
	}
	switch {
	case useAVX512 && len(dst) > 0:
		mulAddRows4AVX512F32(dst, b4, a0, a1, a2, a3)
	case useAVX2 && len(dst) > 0:
		mulAddRows4AVX2F32(dst, b4, a0, a1, a2, a3)
	default:
		mulAddRows4Go32(dst, b4, a0, a1, a2, a3)
	}
}

// mulAddRow132 computes dst[j] += a*b[j].
func mulAddRow132(dst, b []float32, a float32) {
	if useAVX2 && len(dst) > 0 {
		mulAddRow1AVX2F32(dst, b[:len(dst)], a)
		return
	}
	mulAddRow1Go32(dst, b, a)
}

// dot8x32 is the eight-accumulator float32 dot product behind Dot32.
func dot8x32(a, b []float32) float32 {
	if useAVX2 && len(a) >= 8 {
		return dot8AVX2F32(a, b[:len(a)])
	}
	return dot8Go32(a, b)
}

// AddBiasLeakyInto32 computes dst[i] = leaky(dst[i] + bias[i]) in one
// fused, branch-free vector pass — the float32 twin of
// AddBiasLeakyInto, bitwise identical to the separate bias-add and
// activation steps.
func AddBiasLeakyInto32(dst, bias []float32, slope float32) {
	if len(bias) < len(dst) {
		panic("mat: AddBiasLeakyInto32 bias shorter than dst")
	}
	if useAVX2 && len(dst) > 0 {
		addBiasLeakyAVX2F32(dst, bias[:len(dst)], slope)
		return
	}
	addBiasLeakyGo32(dst, bias, slope)
}

//go:build !amd64

package mat

// Portable float32 fallbacks — the scalar references in simd32.go are
// the implementation on non-amd64 platforms, mirroring simd_generic.go.

func mulAddRows432(dst, b4 []float32, a0, a1, a2, a3 float32) {
	if len(b4) < 4*len(dst) {
		panic("mat: mulAddRows432 needs 4*len(dst) b values")
	}
	mulAddRows4Go32(dst, b4, a0, a1, a2, a3)
}

func mulAddRow132(dst, b []float32, a float32) {
	mulAddRow1Go32(dst, b, a)
}

func dot8x32(a, b []float32) float32 { return dot8Go32(a, b) }

// AddBiasLeakyInto32 computes dst[i] = leaky(dst[i] + bias[i]) — the
// float32 twin of AddBiasLeakyInto.
func AddBiasLeakyInto32(dst, bias []float32, slope float32) {
	if len(bias) < len(dst) {
		panic("mat: AddBiasLeakyInto32 bias shorter than dst")
	}
	addBiasLeakyGo32(dst, bias, slope)
}

package mat

import (
	"math"
	"math/rand"
	"testing"
)

func randSlice32(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		v := float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(5)-2)))
		switch rng.Intn(16) {
		case 0:
			v = 0
		case 1:
			v = -v
		}
		out[i] = v
	}
	return out
}

// TestSIMDKernels32Bitwise checks every float32 vector kernel against
// its scalar reference, bit for bit, across lengths that exercise the
// eight-lane loops and every tail size.
func TestSIMDKernels32Bitwise(t *testing.T) {
	if !simdEnabled() {
		t.Skip("no vector unit on this platform")
	}
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 67; n++ {
		for trial := 0; trial < 4; trial++ {
			b4 := randSlice32(rng, 4*n)
			a := randSlice32(rng, 4)
			dst := randSlice32(rng, n)
			want := append([]float32(nil), dst...)
			mulAddRows4Go32(want, b4, a[0], a[1], a[2], a[3])
			dst512 := append([]float32(nil), dst...)
			mulAddRows4AVX2F32(dst, b4, a[0], a[1], a[2], a[3])
			for j := range dst {
				if math.Float32bits(dst[j]) != math.Float32bits(want[j]) {
					t.Fatalf("mulAddRows432 n=%d j=%d: avx2 %v != go %v", n, j, dst[j], want[j])
				}
			}
			if cpuSupportsAVX512() {
				mulAddRows4AVX512F32(dst512, b4, a[0], a[1], a[2], a[3])
				for j := range dst512 {
					if math.Float32bits(dst512[j]) != math.Float32bits(want[j]) {
						t.Fatalf("mulAddRows432 n=%d j=%d: avx512 %v != go %v", n, j, dst512[j], want[j])
					}
				}
			}

			b := randSlice32(rng, n)
			dst = randSlice32(rng, n)
			want = append(want[:0:0], dst...)
			mulAddRow1Go32(want, b, a[0])
			mulAddRow1AVX2F32(dst, b, a[0])
			for j := range dst {
				if math.Float32bits(dst[j]) != math.Float32bits(want[j]) {
					t.Fatalf("mulAddRow132 n=%d j=%d: avx2 %v != go %v", n, j, dst[j], want[j])
				}
			}

			x, y := randSlice32(rng, n), randSlice32(rng, n)
			if got, ref := dot8AVX2F32(x, y), dot8Go32(x, y); math.Float32bits(got) != math.Float32bits(ref) {
				t.Fatalf("dot8x32 n=%d: avx2 %v != go %v", n, got, ref)
			}

			dst = randSlice32(rng, n)
			bias := randSlice32(rng, n)
			if n > 4 {
				dst[0], dst[1], dst[2] = 0, float32(math.Copysign(0, -1)), float32(math.NaN())
				bias[3] = -dst[3]                                                              // v = +0 via cancellation
				dst[4], bias[4] = float32(math.Copysign(0, -1)), float32(math.Copysign(0, -1)) // v = -0
			}
			want = append(want[:0:0], dst...)
			addBiasLeakyGo32(want, bias, 0.01)
			addBiasLeakyAVX2F32(dst, bias, 0.01)
			for j := range dst {
				if math.Float32bits(dst[j]) != math.Float32bits(want[j]) {
					t.Fatalf("addBiasLeaky32 n=%d j=%d: avx2 %v != go %v (in %v bias %v)", n, j, dst[j], want[j], dst, bias)
				}
			}
		}
	}
}

// TestMulRowHadamardInto32SIMDOnOff proves the fused pair-decode
// projection produces identical f32 bits with the vector path forced
// off, across shapes that hit the quad loop, the scalar tail and the
// treatment row.
func TestMulRowHadamardInto32SIMDOnOff(t *testing.T) {
	if !simdEnabled() {
		t.Skip("no vector unit on this platform")
	}
	rng := rand.New(rand.NewSource(13))
	for _, sh := range [][2]int{{1, 1}, {4, 3}, {7, 9}, {24, 24}, {64, 64}, {65, 33}} {
		d, h := sh[0], sh[1]
		b := New32(d+1, h)
		copy(b.data, randSlice32(rng, len(b.data)))
		x, y := randSlice32(rng, d), randSlice32(rng, d)
		tv := randSlice32(rng, 1)[0]
		got := make([]float32, h)
		want := make([]float32, h)
		MulRowHadamardInto32(got, x, y, tv, b)
		setSIMD(false)
		MulRowHadamardInto32(want, x, y, tv, b)
		setSIMD(true)
		for j := range got {
			if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
				t.Fatalf("d=%d h=%d j=%d: simd %v != scalar %v", d, h, j, got[j], want[j])
			}
		}
	}
}

// TestQuantize8RoundTrip checks the affine row quantization: every
// dequantized element lies within half a quantization step of the
// original, and constant rows reconstruct exactly.
func TestQuantize8RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := New32(9, 33)
	copy(m.data, randSlice32(rng, len(m.data)))
	for j := range m.Row(4) {
		m.Row(4)[j] = 2.5 // constant row
	}
	q := Quantize8(m)
	deq := make([]float32, m.Cols())
	for i := 0; i < m.Rows(); i++ {
		q.DequantRowInto(deq, i)
		row := m.Row(i)
		lo, hi := row[0], row[0]
		for _, v := range row[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		step := float64(hi-lo) / 254
		for j, v := range row {
			if err := math.Abs(float64(deq[j] - v)); err > step/2+1e-6 {
				t.Fatalf("row %d col %d: dequant %v vs %v, err %g > half step %g", i, j, deq[j], v, err, step/2)
			}
		}
		if i == 4 {
			for j := range deq {
				if deq[j] != 2.5 {
					t.Fatalf("constant row reconstructs %v, want 2.5", deq[j])
				}
			}
		}
	}
	if got, want := q.Bytes(), 9*33+9*8; got != want {
		t.Fatalf("Quant8.Bytes() = %d, want %d", got, want)
	}
}

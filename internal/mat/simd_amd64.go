//go:build amd64

package mat

import "os"

// useAVX2 and useAVX512 gate the vector kernels. They are detected
// once at startup (CPUID + XGETBV, see simd_amd64.s) and only ever
// disabled after that — the equivalence tests flip them to prove the
// scalar and vector paths produce identical bits. The DSSDDI_SIMD
// environment variable caps the level ("off", "avx2", or the default
// "avx512"), for deployments where 512-bit frequency licensing is a
// concern; every level produces identical bits.
var useAVX2, useAVX512 = detectSIMD()

func detectSIMD() (avx2, avx512 bool) {
	avx2 = cpuSupportsAVX2()
	avx512 = avx2 && cpuSupportsAVX512()
	switch os.Getenv("DSSDDI_SIMD") {
	case "off":
		avx2, avx512 = false, false
	case "avx2":
		avx512 = false
	}
	return avx2, avx512
}

// cpuSupportsAVX2 reports AVX2 with OS-enabled YMM state.
func cpuSupportsAVX2() bool

// cpuSupportsAVX512 reports AVX512F with OS-enabled ZMM state.
func cpuSupportsAVX512() bool

//go:noescape
func mulAddRows4AVX512(dst, b4 []float64, a0, a1, a2, a3 float64)

// The assembly kernels require len(dst) >= 1 and the b operands laid
// out exactly as their Go references document. They are only called
// through the wrappers below.

//go:noescape
func mulAddRows4AVX2(dst, b4 []float64, a0, a1, a2, a3 float64)

//go:noescape
func mulAddRow1AVX2(dst, b []float64, a float64)

//go:noescape
func dot4AVX2(a, b []float64) float64

//go:noescape
func hadamardIntoAVX2(dst, a, b []float64)

//go:noescape
func addBiasLeakyAVX2(dst, bias []float64, slope float64)

// mulAddRows4 computes dst[j] += (a0*b0[j] + a1*b1[j]) + (a2*b2[j] +
// a3*b3[j]) where b4 holds the four b-rows back to back. Bitwise
// identical with the vector path on or off.
func mulAddRows4(dst, b4 []float64, a0, a1, a2, a3 float64) {
	if len(b4) < 4*len(dst) {
		panic("mat: mulAddRows4 needs 4*len(dst) b values")
	}
	switch {
	case useAVX512 && len(dst) > 0:
		mulAddRows4AVX512(dst, b4, a0, a1, a2, a3)
	case useAVX2 && len(dst) > 0:
		mulAddRows4AVX2(dst, b4, a0, a1, a2, a3)
	default:
		mulAddRows4Go(dst, b4, a0, a1, a2, a3)
	}
}

// mulAddRow1 computes dst[j] += a*b[j].
func mulAddRow1(dst, b []float64, a float64) {
	if useAVX2 && len(dst) > 0 {
		mulAddRow1AVX2(dst, b[:len(dst)], a)
		return
	}
	mulAddRow1Go(dst, b, a)
}

// dot4 is the four-accumulator dot product of the transposed-matmul
// kernels.
func dot4(a, b []float64) float64 {
	if useAVX2 && len(a) >= 4 {
		return dot4AVX2(a, b[:len(a)])
	}
	return dot4Go(a, b)
}

// AddBiasLeakyInto computes dst[i] = leaky(dst[i] + bias[i]) in one
// fused, branch-free vector pass — the epilogue of a linear layer
// followed by LeakyReLU, bitwise identical to the separate bias-add
// and activation steps.
func AddBiasLeakyInto(dst, bias []float64, slope float64) {
	if len(bias) < len(dst) {
		panic("mat: AddBiasLeakyInto bias shorter than dst")
	}
	if useAVX2 && len(dst) > 0 {
		addBiasLeakyAVX2(dst, bias[:len(dst)], slope)
		return
	}
	addBiasLeakyGo(dst, bias, slope)
}

// hadamardSlices computes dst[i] = a[i]*b[i].
func hadamardSlices(dst, a, b []float64) {
	if useAVX2 && len(dst) > 0 {
		hadamardIntoAVX2(dst, a[:len(dst)], b[:len(dst)])
		return
	}
	hadamardIntoGo(dst, a, b)
}

// SIMD names the active vector instruction set ("avx512", "avx2" or
// "none") so benchmark records can note what backed the kernels.
func SIMD() string {
	switch {
	case useAVX512:
		return "avx512"
	case useAVX2:
		return "avx2"
	default:
		return "none"
	}
}

// simdEnabled and setSIMD are test hooks: the equivalence tests force
// the scalar path to prove it produces the same bits. Not safe to
// flip while kernels are running on other goroutines.
func simdEnabled() bool { return useAVX2 }

func setSIMD(on bool) {
	useAVX2 = on && cpuSupportsAVX2()
	useAVX512 = useAVX2 && cpuSupportsAVX512()
}

// AVX2 micro-kernels for the dense matmul inner loops. Each function
// mirrors its *Go reference in simd.go exactly: vector lanes are
// independent output elements (or, for dot4, exactly the scalar
// code's four interleaved accumulators), multiplies and adds are
// separate instructions (no FMA — FMA skips the intermediate rounding
// and would change bits), and scalar tails replicate the same
// operation grouping. Results are bitwise identical to the Go
// fallback for every input.

#include "textflag.h"

// func cpuSupportsAVX2() bool
TEXT ·cpuSupportsAVX2(SB), NOSPLIT, $0-1
	// CPUID leaf 1: ECX bit 27 = OSXSAVE, bit 28 = AVX.
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $0x18000000, R8
	CMPL R8, $0x18000000
	JNE  cpu_no

	// XGETBV(0): OS must have enabled XMM (bit 1) and YMM (bit 2)
	// state saving.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  cpu_no

	// CPUID leaf 7, subleaf 0: EBX bit 5 = AVX2.
	MOVL  $7, AX
	XORL  CX, CX
	CPUID
	TESTL $0x20, BX
	JZ    cpu_no

	MOVB $1, ret+0(FP)
	RET

cpu_no:
	MOVB $0, ret+0(FP)
	RET

// func mulAddRows4AVX2(dst, b4 []float64, a0, a1, a2, a3 float64)
//
// dst[j] += (a0*b0[j] + a1*b1[j]) + (a2*b2[j] + a3*b3[j]) with the
// four b-rows of length len(dst) stored back to back in b4.
TEXT ·mulAddRows4AVX2(SB), NOSPLIT, $0-80
	MOVQ dst_base+0(FP), SI
	MOVQ dst_len+8(FP), CX
	MOVQ b4_base+24(FP), DI
	MOVQ CX, DX
	SHLQ $3, DX              // DX = row stride in bytes
	LEAQ (DI)(DX*2), R9      // R9 = start of row 2

	VBROADCASTSD a0+48(FP), Y0
	VBROADCASTSD a1+56(FP), Y1
	VBROADCASTSD a2+64(FP), Y2
	VBROADCASTSD a3+72(FP), Y3

	CMPQ CX, $4
	JL   mar4_tail_start

mar4_loop:
	VMOVUPD (DI), Y4
	VMULPD  Y4, Y0, Y4       // a0*b0
	VMOVUPD (DI)(DX*1), Y5
	VMULPD  Y5, Y1, Y5       // a1*b1
	VADDPD  Y5, Y4, Y4       // a0*b0 + a1*b1
	VMOVUPD (R9), Y6
	VMULPD  Y6, Y2, Y6       // a2*b2
	VMOVUPD (R9)(DX*1), Y7
	VMULPD  Y7, Y3, Y7       // a3*b3
	VADDPD  Y7, Y6, Y6       // a2*b2 + a3*b3
	VADDPD  Y6, Y4, Y4       // (low) + (high)
	VMOVUPD (SI), Y8
	VADDPD  Y4, Y8, Y8       // dst += sum
	VMOVUPD Y8, (SI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	ADDQ    $32, R9
	SUBQ    $4, CX
	CMPQ    CX, $4
	JGE     mar4_loop

mar4_tail_start:
	VZEROUPPER
	TESTQ CX, CX
	JZ    mar4_done

mar4_tail:
	MOVSD (DI), X4
	MULSD X0, X4
	MOVSD (DI)(DX*1), X5
	MULSD X1, X5
	ADDSD X5, X4
	MOVSD (R9), X6
	MULSD X2, X6
	MOVSD (R9)(DX*1), X7
	MULSD X3, X7
	ADDSD X7, X6
	ADDSD X6, X4
	MOVSD (SI), X8
	ADDSD X4, X8
	MOVSD X8, (SI)
	ADDQ  $8, SI
	ADDQ  $8, DI
	ADDQ  $8, R9
	DECQ  CX
	JNZ   mar4_tail

mar4_done:
	RET

// func mulAddRow1AVX2(dst, b []float64, a float64)
//
// dst[j] += a*b[j].
TEXT ·mulAddRow1AVX2(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), SI
	MOVQ dst_len+8(FP), CX
	MOVQ b_base+24(FP), DI

	VBROADCASTSD a+48(FP), Y0

	CMPQ CX, $4
	JL   mar1_tail_start

mar1_loop:
	VMOVUPD (DI), Y1
	VMULPD  Y1, Y0, Y1
	VMOVUPD (SI), Y2
	VADDPD  Y1, Y2, Y2
	VMOVUPD Y2, (SI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $4, CX
	CMPQ    CX, $4
	JGE     mar1_loop

mar1_tail_start:
	VZEROUPPER
	TESTQ CX, CX
	JZ    mar1_done

mar1_tail:
	MOVSD (DI), X1
	MULSD X0, X1
	MOVSD (SI), X2
	ADDSD X1, X2
	MOVSD X2, (SI)
	ADDQ  $8, SI
	ADDQ  $8, DI
	DECQ  CX
	JNZ   mar1_tail

mar1_done:
	RET

// func dot4AVX2(a, b []float64) float64
//
// Four-accumulator dot product: vector lane i accumulates exactly the
// scalar reference's s_i; the tail adds into s0 before the final
// (s0+s1)+(s2+s3) combine, as in dot4Go.
TEXT ·dot4AVX2(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), DI

	VXORPD Y0, Y0, Y0        // [s0, s1, s2, s3]

	CMPQ CX, $4
	JL   dot4_reduce

dot4_loop:
	VMOVUPD (SI), Y1
	VMOVUPD (DI), Y2
	VMULPD  Y2, Y1, Y1
	VADDPD  Y1, Y0, Y0
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $4, CX
	CMPQ    CX, $4
	JGE     dot4_loop

dot4_reduce:
	VEXTRACTF128 $1, Y0, X1  // X1 = [s2, s3]; X0 = [s0, s1]
	VZEROUPPER
	TESTQ        CX, CX
	JZ           dot4_combine

dot4_tail:
	MOVSD (SI), X4
	MOVSD (DI), X5
	MULSD X5, X4
	ADDSD X4, X0             // s0 += a[k]*b[k]
	ADDQ  $8, SI
	ADDQ  $8, DI
	DECQ  CX
	JNZ   dot4_tail

dot4_combine:
	MOVAPD   X0, X2
	UNPCKHPD X0, X2          // X2 lane0 = s1
	ADDSD    X2, X0          // s0 + s1
	MOVAPD   X1, X3
	UNPCKHPD X1, X3          // X3 lane0 = s3
	ADDSD    X3, X1          // s2 + s3
	ADDSD    X1, X0          // (s0+s1) + (s2+s3)
	MOVSD    X0, ret+48(FP)
	RET

// func hadamardIntoAVX2(dst, a, b []float64)
//
// dst[i] = a[i]*b[i].
TEXT ·hadamardIntoAVX2(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), R8
	MOVQ dst_len+8(FP), CX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), DI

	CMPQ CX, $4
	JL   had_tail_start

had_loop:
	VMOVUPD (SI), Y1
	VMOVUPD (DI), Y2
	VMULPD  Y2, Y1, Y1
	VMOVUPD Y1, (R8)
	ADDQ    $32, SI
	ADDQ    $32, DI
	ADDQ    $32, R8
	SUBQ    $4, CX
	CMPQ    CX, $4
	JGE     had_loop

had_tail_start:
	VZEROUPPER
	TESTQ CX, CX
	JZ    had_done

had_tail:
	MOVSD (SI), X1
	MOVSD (DI), X2
	MULSD X2, X1
	MOVSD X1, (R8)
	ADDQ  $8, SI
	ADDQ  $8, DI
	ADDQ  $8, R8
	DECQ  CX
	JNZ   had_tail

had_done:
	RET

// func cpuSupportsAVX512() bool
TEXT ·cpuSupportsAVX512(SB), NOSPLIT, $0-1
	// OSXSAVE + AVX as for AVX2.
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $0x18000000, R8
	CMPL R8, $0x18000000
	JNE  cpu512_no

	// XCR0: XMM+YMM (bits 1-2) and opmask+ZMM state (bits 5-7).
	XORL CX, CX
	XGETBV
	ANDL $0xE6, AX
	CMPL AX, $0xE6
	JNE  cpu512_no

	// CPUID leaf 7, subleaf 0: EBX bit 16 = AVX512F.
	MOVL  $7, AX
	XORL  CX, CX
	CPUID
	TESTL $0x10000, BX
	JZ    cpu512_no

	MOVB $1, ret+0(FP)
	RET

cpu512_no:
	MOVB $0, ret+0(FP)
	RET

// func mulAddRows4AVX512(dst, b4 []float64, a0, a1, a2, a3 float64)
//
// The 512-bit flavor of mulAddRows4: 8 lanes per step, then the
// 4-lane step, then the scalar tail — every output element sees the
// identical multiply/add sequence regardless of which step handles
// it, so the result matches the scalar reference bit for bit.
TEXT ·mulAddRows4AVX512(SB), NOSPLIT, $0-80
	MOVQ dst_base+0(FP), SI
	MOVQ dst_len+8(FP), CX
	MOVQ b4_base+24(FP), DI
	MOVQ CX, DX
	SHLQ $3, DX              // DX = row stride in bytes
	LEAQ (DI)(DX*2), R9      // R9 = start of row 2

	VBROADCASTSD a0+48(FP), Z0
	VBROADCASTSD a1+56(FP), Z1
	VBROADCASTSD a2+64(FP), Z2
	VBROADCASTSD a3+72(FP), Z3

	CMPQ CX, $8
	JL   m512_quad_start

m512_loop:
	VMOVUPD (DI), Z4
	VMULPD  Z4, Z0, Z4       // a0*b0
	VMOVUPD (DI)(DX*1), Z5
	VMULPD  Z5, Z1, Z5       // a1*b1
	VADDPD  Z5, Z4, Z4       // a0*b0 + a1*b1
	VMOVUPD (R9), Z6
	VMULPD  Z6, Z2, Z6       // a2*b2
	VMOVUPD (R9)(DX*1), Z7
	VMULPD  Z7, Z3, Z7       // a3*b3
	VADDPD  Z7, Z6, Z6       // a2*b2 + a3*b3
	VADDPD  Z6, Z4, Z4       // (low) + (high)
	VMOVUPD (SI), Z8
	VADDPD  Z4, Z8, Z8       // dst += sum
	VMOVUPD Z8, (SI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	ADDQ    $64, R9
	SUBQ    $8, CX
	CMPQ    CX, $8
	JGE     m512_loop

m512_quad_start:
	CMPQ CX, $4
	JL   m512_tail_start

	// One 4-lane step (the Y registers alias the Z broadcasts).
	VMOVUPD (DI), Y4
	VMULPD  Y4, Y0, Y4
	VMOVUPD (DI)(DX*1), Y5
	VMULPD  Y5, Y1, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD (R9), Y6
	VMULPD  Y6, Y2, Y6
	VMOVUPD (R9)(DX*1), Y7
	VMULPD  Y7, Y3, Y7
	VADDPD  Y7, Y6, Y6
	VADDPD  Y6, Y4, Y4
	VMOVUPD (SI), Y8
	VADDPD  Y4, Y8, Y8
	VMOVUPD Y8, (SI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	ADDQ    $32, R9
	SUBQ    $4, CX

m512_tail_start:
	VZEROUPPER
	TESTQ CX, CX
	JZ    m512_done

m512_tail:
	MOVSD (DI), X4
	MULSD X0, X4
	MOVSD (DI)(DX*1), X5
	MULSD X1, X5
	ADDSD X5, X4
	MOVSD (R9), X6
	MULSD X2, X6
	MOVSD (R9)(DX*1), X7
	MULSD X3, X7
	ADDSD X7, X6
	ADDSD X6, X4
	MOVSD (SI), X8
	ADDSD X4, X8
	MOVSD X8, (SI)
	ADDQ  $8, SI
	ADDQ  $8, DI
	ADDQ  $8, R9
	DECQ  CX
	JNZ   m512_tail

m512_done:
	RET

// func addBiasLeakyAVX2(dst, bias []float64, slope float64)
//
// dst[i] = v > 0 ? v : slope*v, with v = dst[i] + bias[i]. The blend
// selects the exact scalar-formula result per lane (including signed
// zeros and NaNs), so this matches addBiasLeakyGo bit for bit.
TEXT ·addBiasLeakyAVX2(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), SI
	MOVQ dst_len+8(FP), CX
	MOVQ bias_base+24(FP), DI

	VBROADCASTSD slope+48(FP), Y0
	VXORPD       Y1, Y1, Y1  // zero

	CMPQ CX, $4
	JL   abl_tail_start

abl_loop:
	VMOVUPD   (SI), Y2
	VMOVUPD   (DI), Y3
	VADDPD    Y3, Y2, Y2     // v = dst + bias
	VMULPD    Y2, Y0, Y3     // slope*v
	VCMPPD    $0x1E, Y1, Y2, Y4 // v > 0 (GT_OQ)
	VBLENDVPD Y4, Y2, Y3, Y2 // v > 0 ? v : slope*v
	VMOVUPD   Y2, (SI)
	ADDQ      $32, SI
	ADDQ      $32, DI
	SUBQ      $4, CX
	CMPQ      CX, $4
	JGE       abl_loop

abl_tail_start:
	VZEROUPPER
	TESTQ CX, CX
	JZ    abl_done

abl_tail:
	MOVSD  (SI), X2
	MOVSD  (DI), X3
	ADDSD  X3, X2            // v
	MOVAPD X2, X3
	MULSD  X0, X3            // slope*v
	XORPS  X4, X4
	UCOMISD X4, X2           // compare v with 0
	JA     abl_keep
	MOVAPD X3, X2
abl_keep:
	MOVSD X2, (SI)
	ADDQ  $8, SI
	ADDQ  $8, DI
	DECQ  CX
	JNZ   abl_tail

abl_done:
	RET

// ---------------------------------------------------------------------
// float32 kernels — the serving engine's quantized twins. Same
// discipline as the f64 set above (no FMA, lanes are independent
// output elements or dot8's exact interleaved accumulators, scalar
// tails replicate the vector grouping), with 8 float32 lanes per ymm
// instead of 4 float64 lanes. Bitwise identical to the *Go32
// references in simd32.go for every input.

// func mulAddRows4AVX2F32(dst, b4 []float32, a0, a1, a2, a3 float32)
//
// dst[j] += (a0*b0[j] + a1*b1[j]) + (a2*b2[j] + a3*b3[j]) with the
// four b-rows of length len(dst) stored back to back in b4.
TEXT ·mulAddRows4AVX2F32(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), SI
	MOVQ dst_len+8(FP), CX
	MOVQ b4_base+24(FP), DI
	MOVQ CX, DX
	SHLQ $2, DX              // DX = row stride in bytes
	LEAQ (DI)(DX*2), R9      // R9 = start of row 2

	VBROADCASTSS a0+48(FP), Y0
	VBROADCASTSS a1+52(FP), Y1
	VBROADCASTSS a2+56(FP), Y2
	VBROADCASTSS a3+60(FP), Y3

	CMPQ CX, $8
	JL   mar4f_tail_start

mar4f_loop:
	VMOVUPS (DI), Y4
	VMULPS  Y4, Y0, Y4       // a0*b0
	VMOVUPS (DI)(DX*1), Y5
	VMULPS  Y5, Y1, Y5       // a1*b1
	VADDPS  Y5, Y4, Y4       // a0*b0 + a1*b1
	VMOVUPS (R9), Y6
	VMULPS  Y6, Y2, Y6       // a2*b2
	VMOVUPS (R9)(DX*1), Y7
	VMULPS  Y7, Y3, Y7       // a3*b3
	VADDPS  Y7, Y6, Y6       // a2*b2 + a3*b3
	VADDPS  Y6, Y4, Y4       // (low) + (high)
	VMOVUPS (SI), Y8
	VADDPS  Y4, Y8, Y8       // dst += sum
	VMOVUPS Y8, (SI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	ADDQ    $32, R9
	SUBQ    $8, CX
	CMPQ    CX, $8
	JGE     mar4f_loop

mar4f_tail_start:
	VZEROUPPER
	TESTQ CX, CX
	JZ    mar4f_done

mar4f_tail:
	MOVSS (DI), X4
	MULSS X0, X4
	MOVSS (DI)(DX*1), X5
	MULSS X1, X5
	ADDSS X5, X4
	MOVSS (R9), X6
	MULSS X2, X6
	MOVSS (R9)(DX*1), X7
	MULSS X3, X7
	ADDSS X7, X6
	ADDSS X6, X4
	MOVSS (SI), X8
	ADDSS X4, X8
	MOVSS X8, (SI)
	ADDQ  $4, SI
	ADDQ  $4, DI
	ADDQ  $4, R9
	DECQ  CX
	JNZ   mar4f_tail

mar4f_done:
	RET

// func mulAddRow1AVX2F32(dst, b []float32, a float32)
//
// dst[j] += a*b[j].
TEXT ·mulAddRow1AVX2F32(SB), NOSPLIT, $0-52
	MOVQ dst_base+0(FP), SI
	MOVQ dst_len+8(FP), CX
	MOVQ b_base+24(FP), DI

	VBROADCASTSS a+48(FP), Y0

	CMPQ CX, $8
	JL   mar1f_tail_start

mar1f_loop:
	VMOVUPS (DI), Y1
	VMULPS  Y1, Y0, Y1
	VMOVUPS (SI), Y2
	VADDPS  Y1, Y2, Y2
	VMOVUPS Y2, (SI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $8, CX
	CMPQ    CX, $8
	JGE     mar1f_loop

mar1f_tail_start:
	VZEROUPPER
	TESTQ CX, CX
	JZ    mar1f_done

mar1f_tail:
	MOVSS (DI), X1
	MULSS X0, X1
	MOVSS (SI), X2
	ADDSS X1, X2
	MOVSS X2, (SI)
	ADDQ  $4, SI
	ADDQ  $4, DI
	DECQ  CX
	JNZ   mar1f_tail

mar1f_done:
	RET

// func dot8AVX2F32(a, b []float32) float32
//
// Eight-accumulator dot product: vector lane i accumulates exactly the
// scalar reference's s_i; the tail adds into s0 before the final
// ((s0+s2)+(s1+s3)) + ((s4+s6)+(s5+s7)) combine, as in dot8Go32.
TEXT ·dot8AVX2F32(SB), NOSPLIT, $0-52
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), DI

	VXORPS Y0, Y0, Y0        // [s0..s7]

	CMPQ CX, $8
	JL   dot8f_reduce

dot8f_loop:
	VMOVUPS (SI), Y1
	VMOVUPS (DI), Y2
	VMULPS  Y2, Y1, Y1
	VADDPS  Y1, Y0, Y0
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $8, CX
	CMPQ    CX, $8
	JGE     dot8f_loop

dot8f_reduce:
	VEXTRACTF128 $1, Y0, X1  // X1 = [s4..s7]; X0 = [s0..s3]
	VZEROUPPER
	TESTQ        CX, CX
	JZ           dot8f_combine

dot8f_tail:
	MOVSS (SI), X4
	MOVSS (DI), X5
	MULSS X5, X4
	ADDSS X4, X0             // s0 += a[k]*b[k]
	ADDQ  $4, SI
	ADDQ  $4, DI
	DECQ  CX
	JNZ   dot8f_tail

dot8f_combine:
	MOVAPS  X0, X2
	MOVHLPS X0, X2           // X2 = [s2, s3]
	ADDPS   X2, X0           // X0 = [s0+s2, s1+s3, ..]
	MOVAPS  X0, X3
	SHUFPS  $0x55, X3, X3    // X3 lane0 = s1+s3
	ADDSS   X3, X0           // (s0+s2) + (s1+s3)
	MOVAPS  X1, X4
	MOVHLPS X1, X4           // X4 = [s6, s7]
	ADDPS   X4, X1           // X1 = [s4+s6, s5+s7, ..]
	MOVAPS  X1, X5
	SHUFPS  $0x55, X5, X5    // X5 lane0 = s5+s7
	ADDSS   X5, X1           // (s4+s6) + (s5+s7)
	ADDSS   X1, X0           // low + high
	MOVSS   X0, ret+48(FP)
	RET

// func addBiasLeakyAVX2F32(dst, bias []float32, slope float32)
//
// dst[i] = v > 0 ? v : slope*v, with v = dst[i] + bias[i]. The blend
// selects the exact scalar-formula result per lane (including signed
// zeros and NaNs), so this matches addBiasLeakyGo32 bit for bit.
TEXT ·addBiasLeakyAVX2F32(SB), NOSPLIT, $0-52
	MOVQ dst_base+0(FP), SI
	MOVQ dst_len+8(FP), CX
	MOVQ bias_base+24(FP), DI

	VBROADCASTSS slope+48(FP), Y0
	VXORPS       Y1, Y1, Y1  // zero

	CMPQ CX, $8
	JL   ablf_tail_start

ablf_loop:
	VMOVUPS   (SI), Y2
	VMOVUPS   (DI), Y3
	VADDPS    Y3, Y2, Y2     // v = dst + bias
	VMULPS    Y2, Y0, Y3     // slope*v
	VCMPPS    $0x1E, Y1, Y2, Y4 // v > 0 (GT_OQ)
	VBLENDVPS Y4, Y2, Y3, Y2 // v > 0 ? v : slope*v
	VMOVUPS   Y2, (SI)
	ADDQ      $32, SI
	ADDQ      $32, DI
	SUBQ      $8, CX
	CMPQ      CX, $8
	JGE       ablf_loop

ablf_tail_start:
	VZEROUPPER
	TESTQ CX, CX
	JZ    ablf_done

ablf_tail:
	MOVSS  (SI), X2
	MOVSS  (DI), X3
	ADDSS  X3, X2            // v
	MOVAPS X2, X3
	MULSS  X0, X3            // slope*v
	XORPS  X4, X4
	UCOMISS X4, X2           // compare v with 0
	JA     ablf_keep
	MOVAPS X3, X2
ablf_keep:
	MOVSS X2, (SI)
	ADDQ  $4, SI
	ADDQ  $4, DI
	DECQ  CX
	JNZ   ablf_tail

ablf_done:
	RET

// func mulAddRows4AVX512F32(dst, b4 []float32, a0, a1, a2, a3 float32)
//
// The 512-bit flavor of mulAddRows4F32: 16 lanes per step, then one
// 8-lane step, then the scalar tail — every output element sees the
// identical multiply/add sequence regardless of which step handles
// it, so the result matches the scalar reference bit for bit.
TEXT ·mulAddRows4AVX512F32(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), SI
	MOVQ dst_len+8(FP), CX
	MOVQ b4_base+24(FP), DI
	MOVQ CX, DX
	SHLQ $2, DX              // DX = row stride in bytes
	LEAQ (DI)(DX*2), R9      // R9 = start of row 2

	VBROADCASTSS a0+48(FP), Z0
	VBROADCASTSS a1+52(FP), Z1
	VBROADCASTSS a2+56(FP), Z2
	VBROADCASTSS a3+60(FP), Z3

	CMPQ CX, $16
	JL   m512f_oct_start

m512f_loop:
	VMOVUPS (DI), Z4
	VMULPS  Z4, Z0, Z4       // a0*b0
	VMOVUPS (DI)(DX*1), Z5
	VMULPS  Z5, Z1, Z5       // a1*b1
	VADDPS  Z5, Z4, Z4       // a0*b0 + a1*b1
	VMOVUPS (R9), Z6
	VMULPS  Z6, Z2, Z6       // a2*b2
	VMOVUPS (R9)(DX*1), Z7
	VMULPS  Z7, Z3, Z7       // a3*b3
	VADDPS  Z7, Z6, Z6       // a2*b2 + a3*b3
	VADDPS  Z6, Z4, Z4       // (low) + (high)
	VMOVUPS (SI), Z8
	VADDPS  Z4, Z8, Z8       // dst += sum
	VMOVUPS Z8, (SI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	ADDQ    $64, R9
	SUBQ    $16, CX
	CMPQ    CX, $16
	JGE     m512f_loop

m512f_oct_start:
	CMPQ CX, $8
	JL   m512f_tail_start

	// One 8-lane step (the Y registers alias the Z broadcasts).
	VMOVUPS (DI), Y4
	VMULPS  Y4, Y0, Y4
	VMOVUPS (DI)(DX*1), Y5
	VMULPS  Y5, Y1, Y5
	VADDPS  Y5, Y4, Y4
	VMOVUPS (R9), Y6
	VMULPS  Y6, Y2, Y6
	VMOVUPS (R9)(DX*1), Y7
	VMULPS  Y7, Y3, Y7
	VADDPS  Y7, Y6, Y6
	VADDPS  Y6, Y4, Y4
	VMOVUPS (SI), Y8
	VADDPS  Y4, Y8, Y8
	VMOVUPS Y8, (SI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	ADDQ    $32, R9
	SUBQ    $8, CX

m512f_tail_start:
	VZEROUPPER
	TESTQ CX, CX
	JZ    m512f_done

m512f_tail:
	MOVSS (DI), X4
	MULSS X0, X4
	MOVSS (DI)(DX*1), X5
	MULSS X1, X5
	ADDSS X5, X4
	MOVSS (R9), X6
	MULSS X2, X6
	MOVSS (R9)(DX*1), X7
	MULSS X3, X7
	ADDSS X7, X6
	ADDSS X6, X4
	MOVSS (SI), X8
	ADDSS X4, X8
	MOVSS X8, (SI)
	ADDQ  $4, SI
	ADDQ  $4, DI
	ADDQ  $4, R9
	DECQ  CX
	JNZ   m512f_tail

m512f_done:
	RET

//go:build !amd64

package mat

// Non-amd64 architectures run the portable reference kernels.

const useAVX2 = false

func mulAddRows4(dst, b4 []float64, a0, a1, a2, a3 float64) {
	if len(b4) < 4*len(dst) {
		panic("mat: mulAddRows4 needs 4*len(dst) b values")
	}
	mulAddRows4Go(dst, b4, a0, a1, a2, a3)
}

func mulAddRow1(dst, b []float64, a float64) { mulAddRow1Go(dst, b, a) }

func dot4(a, b []float64) float64 { return dot4Go(a, b) }

func hadamardSlices(dst, a, b []float64) { hadamardIntoGo(dst, a, b) }

// AddBiasLeakyInto computes dst[i] = leaky(dst[i] + bias[i]) — the
// fused linear-layer epilogue, scalar on this architecture.
func AddBiasLeakyInto(dst, bias []float64, slope float64) {
	if len(bias) < len(dst) {
		panic("mat: AddBiasLeakyInto bias shorter than dst")
	}
	addBiasLeakyGo(dst, bias, slope)
}

// SIMD names the active vector instruction set.
func SIMD() string { return "none" }

func simdEnabled() bool { return false }

func setSIMD(bool) {}

package mat

import (
	"math"
	"math/rand"
	"testing"
)

func randSlice(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		v := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
		switch rng.Intn(16) {
		case 0:
			v = 0
		case 1:
			v = -v
		}
		out[i] = v
	}
	return out
}

// TestSIMDKernelsBitwise checks every vector kernel against its scalar
// reference, bit for bit, across lengths that exercise the quad loops
// and every tail size.
func TestSIMDKernelsBitwise(t *testing.T) {
	if !simdEnabled() {
		t.Skip("no vector unit on this platform")
	}
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 67; n++ {
		for trial := 0; trial < 4; trial++ {
			b4 := randSlice(rng, 4*n)
			a := randSlice(rng, 4)
			dst := randSlice(rng, n)
			want := append([]float64(nil), dst...)
			mulAddRows4Go(want, b4, a[0], a[1], a[2], a[3])
			dst512 := append([]float64(nil), dst...)
			mulAddRows4AVX2(dst, b4, a[0], a[1], a[2], a[3])
			for j := range dst {
				if math.Float64bits(dst[j]) != math.Float64bits(want[j]) {
					t.Fatalf("mulAddRows4 n=%d j=%d: avx2 %v != go %v", n, j, dst[j], want[j])
				}
			}
			if cpuSupportsAVX512() {
				mulAddRows4AVX512(dst512, b4, a[0], a[1], a[2], a[3])
				for j := range dst512 {
					if math.Float64bits(dst512[j]) != math.Float64bits(want[j]) {
						t.Fatalf("mulAddRows4 n=%d j=%d: avx512 %v != go %v", n, j, dst512[j], want[j])
					}
				}
			}

			b := randSlice(rng, n)
			dst = randSlice(rng, n)
			want = append(want[:0:0], dst...)
			mulAddRow1Go(want, b, a[0])
			mulAddRow1AVX2(dst, b, a[0])
			for j := range dst {
				if math.Float64bits(dst[j]) != math.Float64bits(want[j]) {
					t.Fatalf("mulAddRow1 n=%d j=%d: avx2 %v != go %v", n, j, dst[j], want[j])
				}
			}

			x, y := randSlice(rng, n), randSlice(rng, n)
			if got, ref := dot4AVX2(x, y), dot4Go(x, y); math.Float64bits(got) != math.Float64bits(ref) {
				t.Fatalf("dot4 n=%d: avx2 %v != go %v", n, got, ref)
			}

			dst = make([]float64, n)
			want = make([]float64, n)
			hadamardIntoGo(want, x, y)
			hadamardIntoAVX2(dst, x, y)
			for j := range dst {
				if math.Float64bits(dst[j]) != math.Float64bits(want[j]) {
					t.Fatalf("hadamard n=%d j=%d: avx2 %v != go %v", n, j, dst[j], want[j])
				}
			}

			dst = randSlice(rng, n)
			bias := randSlice(rng, n)
			if n > 4 {
				dst[0], dst[1], dst[2] = 0, math.Copysign(0, -1), math.NaN()
				bias[3] = -dst[3]                                            // v = +0 via cancellation
				dst[4], bias[4] = math.Copysign(0, -1), math.Copysign(0, -1) // v = -0
			}
			want = append(want[:0:0], dst...)
			addBiasLeakyGo(want, bias, 0.01)
			addBiasLeakyAVX2(dst, bias, 0.01)
			for j := range dst {
				if math.Float64bits(dst[j]) != math.Float64bits(want[j]) {
					t.Fatalf("addBiasLeaky n=%d j=%d: avx2 %v != go %v (in %v bias %v)", n, j, dst[j], want[j], dst, bias)
				}
			}
		}
	}
}

func denseBitsEqual(t *testing.T, name string, got, want *Dense) {
	t.Helper()
	g, w := got.Data(), want.Data()
	for i := range g {
		if math.Float64bits(g[i]) != math.Float64bits(w[i]) {
			t.Fatalf("%s element %d: simd %v != scalar %v", name, i, g[i], w[i])
		}
	}
}

// TestMatMulSIMDOnOffBitwise proves whole-kernel outputs do not depend
// on the vector path: MatMul, both transposed matmuls, Hadamard and
// AddScaled produce identical bits with SIMD forced off.
func TestMatMulSIMDOnOffBitwise(t *testing.T) {
	if !simdEnabled() {
		t.Skip("no vector unit on this platform")
	}
	rng := rand.New(rand.NewSource(11))
	for _, sh := range [][3]int{{1, 1, 1}, {3, 5, 7}, {17, 33, 9}, {64, 131, 48}, {10, 4, 4}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := RandNormal(rng, m, k, 1)
		b := RandNormal(rng, k, n, 1)
		bt := RandNormal(rng, n, k, 1)
		c := RandNormal(rng, m, n, 1)

		run := func() [5]*Dense {
			add := c.Clone()
			add.AddScaled(Hadamard(c, c), -0.7)
			return [5]*Dense{MatMul(a, b), MatMulTransA(a, c), MatMulTransB(a, bt), Hadamard(c, c), add}
		}
		got := run()
		setSIMD(false)
		want := run()
		setSIMD(true)
		for i, name := range []string{"MatMul", "MatMulTransA", "MatMulTransB", "Hadamard", "AddScaled"} {
			denseBitsEqual(t, name, got[i], want[i])
		}
	}
}

package md

import (
	"testing"

	"dssddi/internal/mat"
	"dssddi/internal/nn"
	"dssddi/internal/optim"
)

// TestSteadyStateEpochAllocBudget is the MDGCN half of the ISSUE 2
// allocation gate: once the tape is recorded and the counterfactual
// cache is warm, a training epoch must stay within a fixed small
// allocation budget. Serial kernels keep the count deterministic.
func TestSteadyStateEpochAllocBudget(t *testing.T) {
	const budget = 100
	mat.SetWorkers(1)
	defer mat.SetWorkers(0)

	d := smallDataset(31)
	cfg := DefaultConfig()
	cfg.Hidden = 16
	cfg.Epochs = 40 // enough epochs that the miner cache covers most pairs
	cfg.SelectOnVal = false
	m := NewModel(d, nil, cfg)
	m.Train()

	opt := optim.NewAdam(cfg.LR)
	opt.WeightDecay = cfg.WeightDecay
	step := func() {
		ps, vs, y, tr, cfY, cfT := m.epochPairs()
		tp := m.tape
		tp.Reset()
		hPat, hDrug := m.encode(tp)
		logits := m.decode(tp, hPat, hDrug, ps, vs, tr)
		loss := tp.BCEWithLogits(logits, y)
		if cfY != nil && m.Config.Delta > 0 {
			cfLogits := m.decode(tp, hPat, hDrug, ps, vs, cfT)
			loss = tp.Add(loss, tp.Scale(tp.BCEWithLogits(cfLogits, cfY), m.Config.Delta))
		}
		tp.Backward(loss)
		nn.CollectGradsInto(m.grads, tp, &m.params)
		optim.ClipGlobalNorm(m.grads, 5)
		opt.Step(m.params.All(), m.grads)
	}
	step() // warm the fresh optimizer
	if got := testing.AllocsPerRun(10, step); got > budget {
		t.Fatalf("steady-state MDGCN epoch allocates %.1f objects, budget %d", got, budget)
	}
}

package md

import (
	"math"
	"sort"

	"dssddi/internal/mat"
)

// Counterfactuals holds, for a list of (patient, drug) training pairs,
// the counterfactual treatment and outcome of Eq. 8.
type Counterfactuals struct {
	// TCF[i] and YCF[i] align with the i-th training pair.
	TCF []float64
	YCF []float64
	// Matched[i] reports whether a counterfactual neighbour satisfying
	// Eq. 7 was found (otherwise the factual values are carried over).
	Matched []bool
}

// CFConfig tunes counterfactual mining. GammaP/GammaD are the γp/γd
// distance ceilings of Eq. 7, expressed as quantiles of the observed
// nearest-neighbour distance distributions (0.3 means "the closest 30%
// count as similar"). Shortlist bounds the neighbour lists searched
// per pair.
type CFConfig struct {
	GammaPQuantile float64
	GammaDQuantile float64
	Shortlist      int
}

// DefaultCFConfig returns the mining configuration used by the
// experiments. The γ quantiles were selected on the validation split
// (as the paper selects its hyperparameters): tight ceilings keep only
// high-confidence counterfactual matches, which matters on the
// synthetic cohort where looser matches inject label noise.
func DefaultCFConfig() CFConfig {
	return CFConfig{GammaPQuantile: 0.05, GammaDQuantile: 0.05, Shortlist: 12}
}

// Miner mines counterfactual links lazily with precomputed
// nearest-neighbour shortlists, caching per-(patient, drug) results so
// that per-epoch negative resampling stays cheap.
type Miner struct {
	tmat, y        *mat.Dense
	pNbrs, dNbrs   [][]neighbour
	gammaP, gammaD float64
	cache          map[[2]int]cfEntry
}

type cfEntry struct {
	tcf, ycf float64
	matched  bool
}

// NewMiner precomputes the patient and drug shortlists of Eq. 7. x
// holds the observed patients' features, z the drug features, tmat the
// treatment matrix and y the outcome matrix, all over observed
// patients.
func NewMiner(x, z, tmat, y *mat.Dense, cfg CFConfig) *Miner {
	if cfg.Shortlist <= 0 {
		cfg.Shortlist = 12
	}
	m := &Miner{tmat: tmat, y: y, cache: make(map[[2]int]cfEntry)}
	m.pNbrs, m.gammaP = neighbourLists(x, cfg.Shortlist, cfg.GammaPQuantile)
	m.dNbrs, m.gammaD = neighbourLists(z, cfg.Shortlist, cfg.GammaDQuantile)
	return m
}

// Mine returns the counterfactual treatment/outcome for one (patient,
// drug) pair per Eqs. 7-8, falling back to the factual values when no
// opposite-treatment neighbour lies within the γ ceilings.
func (m *Miner) Mine(p, v int) (tcf, ycf float64, matched bool) {
	key := [2]int{p, v}
	if e, ok := m.cache[key]; ok {
		return e.tcf, e.ycf, e.matched
	}
	if p < 0 || p >= m.tmat.Rows() || v < 0 || v >= m.tmat.Cols() {
		panic("md: counterfactual pair index out of range")
	}
	factT := m.tmat.At(p, v)
	wantT := 1 - factT
	bestDist := math.Inf(1)
	var bestJ, bestU int
	found := false
	// Search the cross-product of the two shortlists in increasing
	// combined distance. Shortlists include the element itself at
	// distance 0, so "same patient, different drug" matches are
	// allowed, as in Eq. 7.
	for _, pj := range m.pNbrs[p] {
		if pj.dist >= m.gammaP || pj.dist >= bestDist {
			break
		}
		for _, du := range m.dNbrs[v] {
			if du.dist >= m.gammaD {
				break
			}
			total := pj.dist + du.dist
			if total >= bestDist {
				break
			}
			if m.tmat.At(pj.idx, du.idx) == wantT {
				bestDist = total
				bestJ, bestU = pj.idx, du.idx
				found = true
				break
			}
		}
	}
	e := cfEntry{tcf: factT, ycf: m.y.At(p, v)}
	if found {
		e = cfEntry{tcf: wantT, ycf: m.y.At(bestJ, bestU), matched: true}
	}
	m.cache[key] = e
	return e.tcf, e.ycf, e.matched
}

// MineCounterfactuals is the batch form of Miner.Mine over parallel
// pair slices.
func MineCounterfactuals(x, z, tmat, y *mat.Dense, pIdx, vIdx []int, cfg CFConfig) *Counterfactuals {
	miner := NewMiner(x, z, tmat, y, cfg)
	cf := &Counterfactuals{
		TCF:     make([]float64, len(pIdx)),
		YCF:     make([]float64, len(pIdx)),
		Matched: make([]bool, len(pIdx)),
	}
	for i := range pIdx {
		cf.TCF[i], cf.YCF[i], cf.Matched[i] = miner.Mine(pIdx[i], vIdx[i])
	}
	return cf
}

type neighbour struct {
	idx  int
	dist float64
}

// neighbourLists computes, for every row of x, its `shortlist` nearest
// rows (including itself at distance 0) sorted by distance, and the γ
// ceiling as the given quantile of all shortlist distances.
func neighbourLists(x *mat.Dense, shortlist int, quantile float64) ([][]neighbour, float64) {
	n := x.Rows()
	if shortlist > n {
		shortlist = n
	}
	lists := make([][]neighbour, n)
	var all []float64
	for i := 0; i < n; i++ {
		ds := make([]neighbour, 0, n)
		for j := 0; j < n; j++ {
			ds = append(ds, neighbour{j, mat.EuclideanDistance(x.Row(i), x.Row(j))})
		}
		sort.Slice(ds, func(a, b int) bool {
			if ds[a].dist != ds[b].dist {
				return ds[a].dist < ds[b].dist
			}
			return ds[a].idx < ds[b].idx
		})
		lists[i] = ds[:shortlist]
		for _, nb := range lists[i][1:] { // skip self distance 0
			all = append(all, nb.dist)
		}
	}
	gamma := math.Inf(1)
	if len(all) > 0 && quantile > 0 && quantile < 1 {
		sort.Float64s(all)
		gamma = all[int(float64(len(all))*quantile)]
	}
	return lists, gamma
}

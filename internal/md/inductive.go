package md

import (
	"fmt"
	"math"
	"sort"

	"dssddi/internal/mat"
	"dssddi/internal/metrics"
	"dssddi/internal/nn"
)

// This file is the inductive patient layer: scoring for patients that
// were never part of the training dataset. A PatientEmbedding carries
// everything the fused tiled engine needs for one patient — the
// decoder-facing hidden representation and the treatment row — so a
// regimen edited at serving time reaches the scorer without touching
// the trained model, and an unseen patient never requires retraining.
//
// The transductive path (Scores / TopKScores) derives both quantities
// from a dataset index; EmbedPatient derives the identical quantities
// from a (regimen, features) profile. For an observed patient queried
// with their own recorded profile the two are bitwise identical — the
// hidden representation goes through the same nn.ForwardRow kernel the
// engine uses, and the treatment row degenerates to the same cluster
// row (see Treatment.InferRowFor) — which the equivalence tests in
// inductive_test.go enforce for every training patient at workers
// {1, 4}.

// PatientEmbedding is the scoring-ready representation of one patient
// profile. H is the decoder-facing hidden representation (Eq. 9 when
// built from features, the propagated bipartite aggregation when built
// from a bare regimen); T is the treatment row. All slices are owned
// by the embedding and must be treated as read-only by the scoring
// engine.
//
// On a quantized model (SetPrecision f32/int8) EmbedPatient stores the
// narrowed H32/T32 pair instead and leaves H/T nil — a registry of
// cached embeddings then holds half the bytes — so an embedding is
// bound to the precision of the model that built it; checkEmbedding
// rejects a mismatch, and the serving layer re-embeds on every epoch
// swap.
type PatientEmbedding struct {
	H []float64
	T []float64

	H32 []float32
	T32 []float32
}

// Bytes returns the resident size of the embedding's payload — the
// per-entry term of the registry's explicit memory accounting.
func (e *PatientEmbedding) Bytes() int {
	return 8*(len(e.H)+len(e.T)) + 4*(len(e.H32)+len(e.T32))
}

// EmbedPatient builds the embedding for an arbitrary patient profile:
// a current medication regimen (drug IDs) plus an optional feature
// vector of the dataset's feature width.
//
// With features, H is the MDGCN patient representation h_i (Eq. 9)
// computed by the same row kernel the tiled engine runs, so scores for
// an observed patient's own profile are bitwise identical to the
// transductive Scores path. Without features, H is reconstructed from
// the regimen alone by running the bipartite aggregation inductively:
// the patient is treated as a fresh node linked to their regimen, and
// the per-layer propagated representations p_t = Σ_v d_{t-1,v} /
// √(deg_p·deg_v) (Eq. 11 with the drug-side layer inputs frozen at
// their training values and the training-time degrees) are combined
// with the same per-layer β_t = 1/(t+2) weights encode applies.
// Regimen drugs that never appear in the observed bipartite graph
// carry no learned propagation signal and contribute only to the
// treatment row.
//
// The regimen may be empty only when features are present. Invalid
// drug IDs or a wrong feature width are errors.
func (m *Model) EmbedPatient(regimen []int, features []float64) (*PatientEmbedding, error) {
	nD := m.Data.NumDrugs()
	for _, v := range regimen {
		if v < 0 || v >= nD {
			return nil, fmt.Errorf("md: EmbedPatient: regimen drug %d out of range [0, %d)", v, nD)
		}
	}
	if features == nil && len(regimen) == 0 {
		return nil, fmt.Errorf("md: EmbedPatient: need features or a non-empty regimen")
	}
	if features != nil && len(features) != m.Data.X.Cols() {
		return nil, fmt.Errorf("md: EmbedPatient: got %d features, dataset has %d", len(features), m.Data.X.Cols())
	}
	// Canonicalise the regimen (sorted, deduplicated copy) so the
	// embedding is independent of the caller's ordering and the input
	// slice is never retained or mutated.
	reg := append([]int(nil), regimen...)
	sort.Ints(reg)
	n := 0
	for i, v := range reg {
		if i == 0 || v != reg[n-1] {
			reg[n] = v
			n++
		}
	}
	reg = reg[:n]

	e := &PatientEmbedding{H: make([]float64, m.fcPat.OutDim())}
	if features != nil {
		w := m.fcPat.MaxWidth()
		buf1, buf2 := make([]float64, w), make([]float64, w)
		m.fcPat.ForwardRow(e.H, features, buf1, buf2)
	} else {
		m.aggregateRegimen(e.H, reg)
	}
	e.T = m.Treatment.InferRowFor(reg, features)
	if m.pd32 != nil {
		// Quantized model: keep only the narrowed pair. The f64
		// intermediates above stay the derivation path so the narrowing
		// is exactly one rounding of the oracle's values.
		e.H32, e.T32 = mat.Floats32(e.H), mat.Floats32(e.T)
		e.H, e.T = nil, nil
	}
	return e, nil
}

// inductiveInputs lazily builds (and caches) the inputs of the
// feature-free inductive aggregation: the per-layer drug
// representations d_0..d_{L-1} of the training propagation — the same
// tape-free recurrence as inferDrugReps, retaining each layer instead
// of only their β-combination — and the drugs' observed bipartite
// degrees. Everything is derived from state NewServing restores, so a
// snapshot-loaded model embeds identically to the model it was saved
// from and the snapshot format needs no extra weights.
func (m *Model) inductiveInputs() (layers []*mat.Dense, deg []float64) {
	m.indMu.Lock()
	defer m.indMu.Unlock()
	if m.indLayers == nil {
		hPat := m.fcPat.Forward(m.trainX)
		hDrug := nn.ForwardActivation(m.fcDrug.Forward(m.drugFeat), nn.ActLeakyReLU)
		ls := []*mat.Dense{hDrug}
		pT, dT := hPat, hDrug
		for layer := 1; layer < m.Config.PropLayers; layer++ {
			pNext := m.l2r.MulDense(dT)
			dNext := m.r2l.MulDense(pT)
			pT, dT = pNext, dNext
			ls = append(ls, dT)
		}
		d := make([]float64, m.Data.NumDrugs())
		for _, p := range m.Data.Train {
			row := m.Data.Y.Row(p)
			for v, y := range row {
				if y == 1 {
					d[v]++
				}
			}
		}
		m.indLayers, m.indDeg = ls, d
	}
	return m.indLayers, m.indDeg
}

// aggregateRegimen accumulates the β-combined inductive patient
// representation for a canonicalised (sorted, deduplicated) regimen
// into dst. dst must be zeroed and of width Hidden.
func (m *Model) aggregateRegimen(dst []float64, regimen []int) {
	layers, deg := m.inductiveInputs()
	degP := float64(len(regimen))
	tmp := make([]float64, len(dst))
	for t := 1; t <= m.Config.PropLayers; t++ {
		d := layers[t-1]
		for j := range tmp {
			tmp[j] = 0
		}
		for _, v := range regimen {
			if deg[v] == 0 {
				continue // unobserved drug: no learned propagation signal
			}
			w := 1 / math.Sqrt(degP*deg[v])
			row := d.Row(v)
			for j := range tmp {
				tmp[j] += w * row[j]
			}
		}
		b := beta(t)
		for j := range dst {
			dst[j] += b * tmp[j]
		}
	}
}

// checkEmbedding validates an embedding's shape against the model; the
// scoring kernels index matrices directly, so shape errors must stop
// here rather than surface as panics inside a worker.
func (m *Model) checkEmbedding(e *PatientEmbedding) {
	if e == nil {
		panic("md: nil PatientEmbedding")
	}
	if m.pd32 != nil {
		if e.H32 == nil {
			panic("md: float64 PatientEmbedding scored on a quantized model; re-embed the profile")
		}
		if len(e.H32) != m.fcPat.OutDim() || len(e.T32) != m.Data.NumDrugs() {
			panic(fmt.Sprintf("md: PatientEmbedding shape %d/%d does not match model %d/%d",
				len(e.H32), len(e.T32), m.fcPat.OutDim(), m.Data.NumDrugs()))
		}
		return
	}
	if e.H == nil {
		panic("md: quantized PatientEmbedding scored on a float64 model; re-embed the profile")
	}
	if len(e.H) != m.fcPat.OutDim() || len(e.T) != m.Data.NumDrugs() {
		panic(fmt.Sprintf("md: PatientEmbedding shape %d/%d does not match model %d/%d",
			len(e.H), len(e.T), m.fcPat.OutDim(), m.Data.NumDrugs()))
	}
}

// ScoresForInto fills dst (length NumDrugs) with the suggestion scores
// of an embedded patient profile, riding the fused tiled engine. For
// an observed patient's own profile the bits equal the corresponding
// Scores row for any worker count; every pair's value is independent
// of how pairs are partitioned, so the sequential tile walk here and
// the engine's parallel units agree exactly.
func (m *Model) ScoresForInto(dst []float64, e *PatientEmbedding) {
	m.checkEmbedding(e)
	nD := m.Data.NumDrugs()
	if len(dst) != nD {
		panic(fmt.Sprintf("md: ScoresForInto dst has length %d, want %d", len(dst), nD))
	}
	if m.pd == nil { // non-decomposable decoder: batched reference path
		copy(dst, m.scoresForReference(e))
		return
	}
	if m.pd32 != nil { // quantized serving representation: f32 twin
		sc := m.getScratch()
		copy(sc.hp32, e.H32)
		for vLo := 0; vLo < nD; vLo += drugTile {
			vHi := vLo + drugTile
			if vHi > nD {
				vHi = nD
			}
			m.scoreTile32(dst[vLo:vHi], sc, e.T32, vLo)
		}
		m.putScratch(sc)
		return
	}
	hDrug := m.drugReps()
	sc := m.getScratch()
	copy(sc.hp, e.H)
	for vLo := 0; vLo < nD; vLo += drugTile {
		vHi := vLo + drugTile
		if vHi > nD {
			vHi = nD
		}
		m.scoreTile(dst[vLo:vHi], sc, hDrug, e.T, vLo)
	}
	m.putScratch(sc)
}

// ScoresFor is the allocating form of ScoresForInto.
func (m *Model) ScoresFor(e *PatientEmbedding) []float64 {
	out := make([]float64, m.Data.NumDrugs())
	m.ScoresForInto(out, e)
	return out
}

// TopKScoresFor is TopKScores over an embedded patient profile: a
// tile-streamed size-k selection with exactly the ordering and score
// bits ranking the full ScoresFor row would produce. The returned
// slices are the caller's to keep.
func (m *Model) TopKScoresFor(e *PatientEmbedding, k int) (ids []int, scores []float64) {
	m.checkEmbedding(e)
	if m.pd == nil {
		row := m.scoresForReference(e)
		for _, v := range metrics.TopK(row, k) {
			ids = append(ids, v)
			scores = append(scores, row[v])
		}
		return ids, scores
	}
	if m.pd32 != nil { // quantized serving representation: f32 twin
		sc := m.getScratch()
		copy(sc.hp32, e.H32)
		ids, scores = m.topKSelect32(sc, e.T32, k)
		m.putScratch(sc)
		return ids, scores
	}
	hDrug := m.drugReps()
	sc := m.getScratch()
	copy(sc.hp, e.H)
	ids, scores = m.topKSelect(sc, hDrug, e.T, k)
	m.putScratch(sc)
	return ids, scores
}

// scoresForReference scores one embedding through the batched
// reference path — the fallback for non-fusable decoder shapes and the
// oracle for the engine equivalence tests.
func (m *Model) scoresForReference(e *PatientEmbedding) []float64 {
	hDrug := m.drugReps()
	hP := mat.NewFrom(1, len(e.H), append([]float64(nil), e.H...))
	nD := m.Data.NumDrugs()
	pIdx := make([]int, nD)
	vIdx := make([]int, nD)
	for v := range vIdx {
		vIdx[v] = v
	}
	logits := m.decodeInfer(hP, hDrug, pIdx, vIdx, column(e.T))
	out := make([]float64, nD)
	for v := range out {
		out[v] = mat.Sigmoid(logits.At(v, 0))
	}
	return out
}

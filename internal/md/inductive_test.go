package md

import (
	"math"
	"testing"

	"dssddi/internal/mat"
)

// regimenOf reads patient p's recorded medication set from the labels.
func regimenOf(m *Model, p int) []int {
	var out []int
	for v := 0; v < m.Data.NumDrugs(); v++ {
		if m.Data.Y.At(p, v) == 1 {
			out = append(out, v)
		}
	}
	return out
}

func bitsEqualSlice(t *testing.T, ctx string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d: inductive %v != transductive %v", ctx, i, got[i], want[i])
		}
	}
}

// TestInductiveMatchesTransductiveForTrainingPatients is the online
// layer's core guarantee: for EVERY training patient, embedding their
// own (regimen, features) profile and scoring it inductively yields
// bitwise the embedding and scores the transductive index path
// produces — at serial and parallel worker counts.
func TestInductiveMatchesTransductiveForTrainingPatients(t *testing.T) {
	m := trainedScoreModel(t)
	d := m.Data
	defer mat.SetWorkers(0)
	for _, workers := range []int{1, 4} {
		mat.SetWorkers(workers)
		want := m.Scores(d.Train)
		for i, p := range d.Train {
			e, err := m.EmbedPatient(regimenOf(m, p), d.X.Row(p))
			if err != nil {
				t.Fatalf("workers %d: EmbedPatient(train %d): %v", workers, p, err)
			}
			// The embedding itself: H is Eq. 9's hidden representation,
			// T the inferred treatment row — same bits as the engine's
			// internals for this patient.
			sc := m.getScratch()
			m.fcPat.ForwardRow(sc.hp, d.X.Row(p), sc.buf1, sc.buf2)
			bitsEqualSlice(t, "embedding H", e.H, sc.hp)
			m.putScratch(sc)
			bitsEqualSlice(t, "embedding T", e.T, m.Treatment.inferRowShared(d.X.Row(p)))

			bitsEqualSlice(t, "ScoresFor", m.ScoresFor(e), want.Row(i))

			dst := make([]float64, d.NumDrugs())
			m.ScoresForInto(dst, e)
			bitsEqualSlice(t, "ScoresForInto", dst, want.Row(i))

			wantIDs, wantScores := m.TopKScores(p, 5)
			gotIDs, gotScores := m.TopKScoresFor(e, 5)
			if len(gotIDs) != len(wantIDs) {
				t.Fatalf("TopKScoresFor returned %d ids, want %d", len(gotIDs), len(wantIDs))
			}
			for j := range wantIDs {
				if gotIDs[j] != wantIDs[j] || math.Float64bits(gotScores[j]) != math.Float64bits(wantScores[j]) {
					t.Fatalf("workers %d patient %d: top-k %d diverged: (%d, %v) vs (%d, %v)",
						workers, p, j, gotIDs[j], gotScores[j], wantIDs[j], wantScores[j])
				}
			}
		}
	}
}

// TestInductiveMatchesReferencePath pins the fused inductive scorer to
// the batched reference oracle for profiles that are NOT training
// patients (unseen feature vectors and edited regimens).
func TestInductiveMatchesReferencePath(t *testing.T) {
	m := trainedScoreModel(t)
	d := m.Data
	p := d.Test[0]
	profiles := []struct {
		name     string
		regimen  []int
		features []float64
	}{
		{"test patient's own profile", regimenOf(m, p), d.X.Row(p)},
		{"edited regimen", []int{0, 2, 5}, d.X.Row(p)},
		{"empty regimen", nil, d.X.Row(p)},
		{"regimen only", []int{1, 3, 4}, nil},
	}
	for _, pr := range profiles {
		e, err := m.EmbedPatient(pr.regimen, pr.features)
		if err != nil {
			t.Fatalf("%s: %v", pr.name, err)
		}
		bitsEqualSlice(t, pr.name, m.ScoresFor(e), m.scoresForReference(e))
	}
}

// TestEmbedPatientRegimenSemantics checks that the embedding is
// insensitive to regimen order and duplicates, that regimen edits
// actually move the feature-free embedding, and that the treatment row
// honours the regimen union rule.
func TestEmbedPatientRegimenSemantics(t *testing.T) {
	m := trainedScoreModel(t)

	a, err := m.EmbedPatient([]int{4, 1, 1, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.EmbedPatient([]int{1, 3, 4, 4, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bitsEqualSlice(t, "order/dup H", a.H, b.H)
	bitsEqualSlice(t, "order/dup T", a.T, b.T)

	c, err := m.EmbedPatient([]int{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.H {
		if a.H[i] != c.H[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different regimens produced identical feature-free embeddings")
	}

	// Every regimen drug must appear in the treatment row.
	x := m.Data.X.Row(m.Data.Test[1])
	e, err := m.EmbedPatient([]int{0, 5}, x)
	if err != nil {
		t.Fatal(err)
	}
	if e.T[0] != 1 || e.T[5] != 1 {
		t.Fatal("regimen drugs missing from the inferred treatment row")
	}
}

// TestEmbedPatientValidation covers the error surface: bad drug IDs,
// wrong feature width, and the empty profile.
func TestEmbedPatientValidation(t *testing.T) {
	m := trainedScoreModel(t)
	if _, err := m.EmbedPatient([]int{-1}, nil); err == nil {
		t.Fatal("negative drug id must error")
	}
	if _, err := m.EmbedPatient([]int{m.Data.NumDrugs()}, nil); err == nil {
		t.Fatal("out-of-range drug id must error")
	}
	if _, err := m.EmbedPatient(nil, nil); err == nil {
		t.Fatal("empty profile must error")
	}
	if _, err := m.EmbedPatient(nil, make([]float64, m.Data.X.Cols()+1)); err == nil {
		t.Fatal("wrong feature width must error")
	}
	if _, err := m.EmbedPatient(nil, append([]float64(nil), m.Data.X.Row(0)...)); err != nil {
		t.Fatalf("feature-only profile must embed: %v", err)
	}
}

package md

import (
	"math/rand"
	"testing"

	"dssddi/internal/ag"
	"dssddi/internal/mat"
)

// TestInferMatchesTapeEncode trains a small MDGCN and checks the
// tape-free inference path (drug representations and scoring logits)
// is bitwise identical to the autodiff-tape forward pass it replaced.
func TestInferMatchesTapeEncode(t *testing.T) {
	d := smallDataset(21)
	rng := rand.New(rand.NewSource(9))
	relEmb := mat.RandNormal(rng, d.NumDrugs(), 6, 0.5)

	cfg := DefaultConfig()
	cfg.Hidden = 8
	cfg.Epochs = 6
	cfg.SelectOnVal = false
	m := NewModel(d, relEmb, cfg)
	m.Train()

	tape := ag.NewTape()
	hPatNode, hDrugNode := m.encode(tape)

	hDrug := m.inferDrugReps()
	wantDrug := hDrugNode.Value
	if hDrug.Rows() != wantDrug.Rows() || hDrug.Cols() != wantDrug.Cols() {
		t.Fatalf("drug reps shape %dx%d, want %dx%d", hDrug.Rows(), hDrug.Cols(), wantDrug.Rows(), wantDrug.Cols())
	}
	for i, v := range hDrug.Data() {
		if v != wantDrug.Data()[i] {
			t.Fatalf("drug rep element %d: infer %v != tape %v", i, v, wantDrug.Data()[i])
		}
	}
	// The cached representations Train stored must match too.
	for i, v := range m.drugCache.Data() {
		if v != wantDrug.Data()[i] {
			t.Fatalf("cached drug rep element %d: %v != tape %v", i, v, wantDrug.Data()[i])
		}
	}

	// Decode equivalence on a handful of (patient, drug) pairs.
	pIdx := []int{0, 0, 1, 2}
	vIdx := []int{0, 1, 2, 3}
	tr := column([]float64{0, 1, 0, 1})
	want := m.decode(tape, hPatNode, hDrugNode, pIdx, vIdx, tr).Value
	got := m.decodeInfer(m.fcPat.Forward(m.trainX), hDrug, pIdx, vIdx, tr)
	for i, v := range got.Data() {
		if v != want.Data()[i] {
			t.Fatalf("logit %d: infer %v != tape %v", i, v, want.Data()[i])
		}
	}
}

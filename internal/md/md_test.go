package md

import (
	"math/rand"
	"testing"

	"dssddi/internal/dataset"
	"dssddi/internal/graph"
	"dssddi/internal/mat"
	"dssddi/internal/metrics"
	"dssddi/internal/synth"
)

func tinyDDI() *graph.Signed {
	g := graph.NewSigned(4)
	g.SetEdge(0, 1, graph.Synergy)
	g.SetEdge(2, 3, graph.Antagonism)
	return g
}

func TestBuildTreatmentSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Two well-separated patient groups; group A takes drug 0, group B
	// takes drug 2.
	x := mat.FromRows([][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{10, 10}, {10.1, 10}, {10, 10.1},
	})
	y := mat.New(6, 4)
	y.Set(0, 0, 1) // only one member of group A takes drug 0
	y.Set(3, 2, 1) // only one member of group B takes drug 2
	tr := BuildTreatment(rng, x, y, tinyDDI(), 2)

	// Step 1: observed.
	if tr.T.At(0, 0) != 1 {
		t.Fatal("observed treatment missing")
	}
	// Step 2: cluster propagation — all of group A must get drug 0.
	for i := 1; i <= 2; i++ {
		if tr.T.At(i, 0) != 1 {
			t.Fatalf("cluster propagation failed for patient %d", i)
		}
	}
	// Step 3: synergy expansion — drug 0 has synergy with drug 1.
	for i := 0; i <= 2; i++ {
		if tr.T.At(i, 1) != 1 {
			t.Fatalf("synergy expansion failed for patient %d", i)
		}
	}
	// Drug 2's antagonistic partner 3 must NOT be expanded.
	if tr.T.At(3, 3) != 0 {
		t.Fatal("antagonistic edge must not propagate treatment")
	}
	// Cross-group: group A must not receive group B's drug.
	if tr.T.At(0, 2) != 0 {
		t.Fatal("treatment leaked across clusters")
	}
}

func TestTreatmentInferRow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := mat.FromRows([][]float64{{0, 0}, {0.2, 0}, {10, 10}, {10.2, 10}})
	y := mat.New(4, 4)
	y.Set(0, 0, 1)
	y.Set(2, 2, 1)
	tr := BuildTreatment(rng, x, y, tinyDDI(), 2)
	// A new patient near group A inherits drug 0 (+1 via synergy).
	row := tr.InferRow([]float64{0.1, 0.05})
	if row[0] != 1 || row[1] != 1 {
		t.Fatalf("inferred treatments %v, want drug 0 and 1", row)
	}
	if row[2] != 0 {
		t.Fatal("should not inherit the far cluster's drugs")
	}
}

func TestMineCounterfactualsFindsOppositeTreatment(t *testing.T) {
	// 4 patients, 2 drugs. Patients 0/1 nearly identical; 0 takes drug
	// 0 (T=1), 1 does not (T=0). The counterfactual of (0, drug0)
	// should adopt patient 1's outcome.
	x := mat.FromRows([][]float64{{0, 0}, {0.01, 0}, {5, 5}, {5.01, 5}})
	z := mat.FromRows([][]float64{{0}, {1}})
	tmat := mat.FromRows([][]float64{{1, 0}, {0, 0}, {1, 1}, {0, 1}})
	y := mat.FromRows([][]float64{{1, 0}, {0, 0}, {1, 1}, {0, 1}})
	cf := MineCounterfactuals(x, z, tmat, y, []int{0}, []int{0},
		CFConfig{GammaPQuantile: 0.9, GammaDQuantile: 0.9, Shortlist: 4})
	if !cf.Matched[0] {
		t.Fatal("expected a counterfactual match")
	}
	if cf.TCF[0] != 0 {
		t.Fatalf("TCF = %v, want 0 (opposite treatment)", cf.TCF[0])
	}
	if cf.YCF[0] != 0 {
		t.Fatalf("YCF = %v, want patient 1's outcome 0", cf.YCF[0])
	}
}

func TestMineCounterfactualsFallsBackToFactual(t *testing.T) {
	// Single patient: no opposite-treatment neighbour exists.
	x := mat.FromRows([][]float64{{0, 0}})
	z := mat.FromRows([][]float64{{0}})
	tmat := mat.FromRows([][]float64{{1}})
	y := mat.FromRows([][]float64{{1}})
	cf := MineCounterfactuals(x, z, tmat, y, []int{0}, []int{0}, DefaultCFConfig())
	if cf.Matched[0] {
		t.Fatal("no match possible")
	}
	if cf.TCF[0] != 1 || cf.YCF[0] != 1 {
		t.Fatal("fallback must carry factual values")
	}
}

func smallDataset(seed int64) *dataset.Dataset {
	opts := synth.DefaultCohortOptions()
	opts.Males, opts.Females = 90, 70
	c := synth.GenerateCohort(rand.New(rand.NewSource(seed)), opts)
	return dataset.FromCohort(rand.New(rand.NewSource(seed+1)), c, nil)
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Epochs = 120
	cfg.Hidden = 32
	return cfg
}

func TestMDGCNTrainsAndBeatsRandomRanking(t *testing.T) {
	opts := synth.DefaultCohortOptions()
	opts.Males, opts.Females = 180, 140
	c := synth.GenerateCohort(rand.New(rand.NewSource(3)), opts)
	d := dataset.FromCohort(rand.New(rand.NewSource(4)), c, nil)
	cfg := smallConfig()
	cfg.Epochs = 150
	m := NewModel(d, nil, cfg)
	losses := m.Train()
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
	scores := m.Scores(d.Test)
	rows := make([][]float64, len(d.Test))
	truth := make([][]int, len(d.Test))
	for i, p := range d.Test {
		rows[i] = scores.Row(i)
		truth[i] = d.TruePositives(p)
	}
	reports := metrics.Evaluate(rows, truth, []int{4})
	// Random P@4 would be ~ avg#meds/86 ≈ 0.025; require clearly
	// better (2x random) even on this small noisy cohort.
	if reports[0].Precision < 0.055 {
		t.Fatalf("P@4 = %v; model did not learn", reports[0].Precision)
	}
}

func TestMDGCNWithRelationEmbeddings(t *testing.T) {
	d := smallDataset(4)
	rng := rand.New(rand.NewSource(9))
	rel := mat.RandNormal(rng, d.NumDrugs(), 16, 0.1) // needs projection 16->32
	m := NewModel(d, rel, smallConfig())
	losses := m.Train()
	if losses[len(losses)-1] >= losses[0] {
		t.Fatal("loss did not decrease with relation embeddings")
	}
	if m.relProj == nil {
		t.Fatal("projection layer expected for mismatched dims")
	}
}

func TestMDGCNNoDDIAblation(t *testing.T) {
	d := smallDataset(5)
	cfg := smallConfig()
	cfg.UseDDI = false
	rel := mat.RandNormal(rand.New(rand.NewSource(10)), d.NumDrugs(), 32, 0.1)
	m := NewModel(d, rel, cfg)
	m.Train()
	// With UseDDI=false the relation embeddings must not influence drug
	// reps: compare against a model with a very different rel matrix.
	rel2 := rel.Clone()
	rel2.Scale(100)
	m2 := NewModel(d, rel2, cfg)
	m2.Train()
	d1 := m.DrugRepresentations()
	d2 := m2.DrugRepresentations()
	for i, v := range d1.Data() {
		if v != d2.Data()[i] {
			t.Fatal("w/o-DDI ablation still depends on relation embeddings")
		}
	}
}

func TestScoresShapeAndRange(t *testing.T) {
	d := smallDataset(6)
	cfg := smallConfig()
	cfg.Epochs = 30
	m := NewModel(d, nil, cfg)
	m.Train()
	s := m.Scores(d.Val)
	if s.Rows() != len(d.Val) || s.Cols() != d.NumDrugs() {
		t.Fatalf("scores shape %dx%d", s.Rows(), s.Cols())
	}
	for _, v := range s.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("score %v outside [0,1]", v)
		}
	}
}

func TestPatientRepresentationsLessSmoothedThanDrugPropagation(t *testing.T) {
	// The paper's Fig. 7 argument: pre-propagation patient reps keep
	// diversity. Check they are not all nearly identical.
	d := smallDataset(7)
	cfg := smallConfig()
	cfg.Epochs = 60
	m := NewModel(d, nil, cfg)
	m.Train()
	sample := d.Test
	if len(sample) > 30 {
		sample = sample[:30]
	}
	h := m.PatientRepresentations(sample)
	var sum float64
	var cnt int
	for i := 0; i < h.Rows(); i++ {
		for j := i + 1; j < h.Rows(); j++ {
			sum += mat.CosineSimilarity(h.Row(i), h.Row(j))
			cnt++
		}
	}
	if avg := sum / float64(cnt); avg > 0.95 {
		t.Fatalf("patient reps over-smoothed: mean cosine %.3f", avg)
	}
}

func TestCounterfactualLossChangesTraining(t *testing.T) {
	d := smallDataset(8)
	cfgOn := smallConfig()
	cfgOn.Epochs = 40
	cfgOff := cfgOn
	cfgOff.UseCounterfactual = false
	mOn := NewModel(d, nil, cfgOn)
	mOff := NewModel(d, nil, cfgOff)
	lOn := mOn.Train()
	lOff := mOff.Train()
	same := true
	for i := range lOn {
		if lOn[i] != lOff[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("counterfactual loss had no effect on training")
	}
}

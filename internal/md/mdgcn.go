package md

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"dssddi/internal/ag"
	"dssddi/internal/dataset"
	"dssddi/internal/mat"
	"dssddi/internal/nn"
	"dssddi/internal/optim"
	"dssddi/internal/par"
	"dssddi/internal/sparse"
)

// Config tunes MDGCN training. Defaults follow Section V-A3: hidden 64,
// 2 propagation layers with βt = 1/(t+2), LeakyReLU after the fully
// connected layers, Adam at 0.01, 1000 epochs, δ = 1.
type Config struct {
	Hidden      int
	PropLayers  int
	Epochs      int
	LR          float64
	Delta       float64 // weight of the counterfactual loss (Eq. 18)
	WeightDecay float64
	Seed        int64
	CF          CFConfig
	// UseDDI controls whether the shared DDI relation embeddings are
	// added to the final drug representations (the paper's h'_v + z_v;
	// switched off for the "w/o DDI" ablation).
	UseDDI bool
	// UseCounterfactual toggles the counterfactual loss entirely
	// (equivalent to Delta = 0 but also skips mining).
	UseCounterfactual bool
	// SelectOnVal enables validation-based model selection (the paper
	// selects hyperparameters/checkpoints on the validation split):
	// every ValEvery epochs the NDCG@4 over the dataset's Val patients
	// is computed and the best-scoring parameters are restored after
	// training.
	SelectOnVal bool
	ValEvery    int
}

// DefaultConfig mirrors the paper's hyperparameters.
func DefaultConfig() Config {
	return Config{
		Hidden:      64,
		PropLayers:  2,
		Epochs:      1000,
		LR:          0.01,
		Delta:       1,
		WeightDecay: 1e-4,
		Seed:        1,
		CF:          DefaultCFConfig(),
		UseDDI:      true,

		UseCounterfactual: true,
		SelectOnVal:       true,
		ValEvery:          25,
	}
}

// Model is the Medical Decision GCN. It owns the patient/drug encoders
// (Eqs. 9-10), the bipartite propagation (Eqs. 11-13) and the MLP
// decoder (Eqs. 14-15).
type Model struct {
	Config    Config
	Data      *dataset.Dataset
	Treatment *Treatment

	params  nn.Params
	fcPat   *nn.MLP    // Eq. 9 ("two fully connected layers")
	fcDrug  *nn.Linear // Eq. 10
	relProj *nn.Linear // projects relation embeddings to Hidden when needed
	decoder *nn.MLP    // Eqs. 14-15

	drugFeat *mat.Dense // m x f drug input features
	relEmb   *mat.Dense // m x r DDI relation embeddings (may be nil)

	l2r, r2l *sparse.CSR // bipartite propagation operators
	trainX   *mat.Dense  // observed patients' features
	trainY   *mat.Dense  // observed patients' labels

	// Positive training pairs; negatives are resampled every epoch.
	posP, posV []int
	miner      *Miner
	rng        *rand.Rand

	// Retained training state: one tape replayed every epoch, a
	// reused gradient slice, and per-epoch pair buffers (epochPairs
	// refills them instead of reallocating).
	tape                           *ag.Tape
	grads                          []*mat.Dense
	pairP, pairV                   []int
	pairY, pairT, pairCFY, pairCFT *mat.Dense

	// drugCache holds the final drug representations h'_v once training
	// finishes, so scoring a patient is a cached-embedding lookup plus
	// decoder call (no propagation).
	drugCache *mat.Dense

	// pd is the fused pair-decode kernel over the decoder's live
	// weights (nil when the decoder shape is not fusable, which sends
	// scoring through the batched reference path). scratch pools the
	// tiled engine's per-goroutine buffers; see score.go.
	pd      *nn.PairDecoder
	scratch sync.Pool

	// Quantized serving representation (precision.go, score32.go):
	// derived from the frozen f64 model by SetPrecision, all nil at
	// F64, invalidated when Train moves the parameters. pd32 != nil is
	// the engine's dispatch condition.
	prec        Precision
	pd32        *nn.PairDecoder32
	drugCache32 *mat.Dense32
	drugQ8      *mat.Quant8
	trow32      [][]float32

	// Lazily built inputs of the inductive patient layer (see
	// inductive.go): the per-layer drug representations d_0..d_{L-1}
	// and the drugs' observed bipartite degrees. Guarded by indMu;
	// invalidated when Train moves the parameters.
	indMu     sync.Mutex
	indLayers []*mat.Dense
	indDeg    []float64
}

// NewModel assembles an MDGCN over the dataset. relEmb is the drug
// relation embedding matrix produced by the DDI module (nil for the
// w/o-DDI ablation); its rows are L2-normalised so backbones with
// different output scales contribute comparably to h'_v + z_v. Drug
// input features default to the dataset's pretrained features or
// one-hot IDs.
func NewModel(d *dataset.Dataset, relEmb *mat.Dense, cfg Config) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if relEmb != nil {
		relEmb = relEmb.Clone()
		par.For(relEmb.Rows(), 16, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				row := relEmb.Row(i)
				if n := mat.Norm2(row); n > 0 {
					for j := range row {
						row[j] /= n
					}
				}
			}
		})
	}
	m := &Model{Config: cfg, Data: d, relEmb: relEmb}

	m.drugFeat = d.DrugFeatures
	if m.drugFeat == nil {
		m.drugFeat = mat.OneHot(d.NumDrugs())
	}
	m.trainX = d.Rows(d.Train)
	m.trainY = d.Labels(d.Train)

	m.fcPat = nn.NewMLP(rng, &m.params, []int{d.X.Cols(), cfg.Hidden, cfg.Hidden}, nn.ActLeakyReLU, false)
	m.fcPat.OutAct = nn.ActLeakyReLU
	m.fcDrug = nn.NewLinear(rng, &m.params, m.drugFeat.Cols(), cfg.Hidden)
	if relEmb != nil && relEmb.Cols() != cfg.Hidden {
		m.relProj = nn.NewLinear(rng, &m.params, relEmb.Cols(), cfg.Hidden)
	}
	m.decoder = nn.NewMLP(rng, &m.params, []int{cfg.Hidden + 1, cfg.Hidden, 1}, nn.ActLeakyReLU, false)

	m.l2r, m.r2l = sparse.BipartiteNorm(len(d.Train), d.NumDrugs(), d.ObservedBipartite().Links())

	m.Treatment = BuildTreatment(rng, m.trainX, m.trainY, d.DDI, d.NumClusters)

	// Positive pairs over LOCAL train indices (0..len(Train)-1);
	// negatives are drawn fresh every epoch (1:1) to prevent the
	// decoder memorising a fixed negative set.
	for p := 0; p < m.trainY.Rows(); p++ {
		for v := 0; v < m.trainY.Cols(); v++ {
			if m.trainY.At(p, v) == 1 {
				m.posP = append(m.posP, p)
				m.posV = append(m.posV, v)
			}
		}
	}
	if cfg.UseCounterfactual {
		m.miner = NewMiner(m.trainX, m.drugFeat, m.Treatment.T, m.trainY, cfg.CF)
	}
	m.rng = rng
	m.pd, _ = nn.NewPairDecoder(m.decoder)
	return m
}

// epochPairs builds this epoch's training pairs: every positive plus
// one fresh negative per positive (the paper's 1:1 negative sampling),
// together with the treatment column and — when enabled — the
// counterfactual treatment/outcome columns. The returned slices and
// matrices are model-retained buffers refilled in place, so an epoch
// allocates nothing here.
func (m *Model) epochPairs() (ps, vs []int, y, tr, cfY, cfT *mat.Dense) {
	nDrugs := m.trainY.Cols()
	total := 2 * len(m.posP)
	if cap(m.pairP) < total {
		m.pairP = make([]int, 0, total)
		m.pairV = make([]int, 0, total)
		m.pairY = mat.New(total, 1)
		m.pairT = mat.New(total, 1)
		if m.miner != nil {
			m.pairCFY = mat.New(total, 1)
			m.pairCFT = mat.New(total, 1)
		}
	}
	ps, vs = m.pairP[:0], m.pairV[:0]
	yd := m.pairY.Data()
	for i := range m.posP {
		p := m.posP[i]
		ps = append(ps, p)
		vs = append(vs, m.posV[i])
		yd[len(ps)-1] = 1
		for {
			neg := m.rng.Intn(nDrugs)
			if m.trainY.At(p, neg) != 1 {
				ps = append(ps, p)
				vs = append(vs, neg)
				yd[len(ps)-1] = 0
				break
			}
		}
	}
	m.pairP, m.pairV = ps, vs
	td := m.pairT.Data()
	for i := range ps {
		td[i] = m.Treatment.T.At(ps[i], vs[i])
	}
	y, tr = m.pairY, m.pairT
	if m.miner != nil {
		cfYd, cfTd := m.pairCFY.Data(), m.pairCFT.Data()
		for i := range ps {
			cfTd[i], cfYd[i], _ = m.miner.Mine(ps[i], vs[i])
		}
		cfY, cfT = m.pairCFY, m.pairCFT
	}
	return
}

func column(vals []float64) *mat.Dense {
	c := mat.New(len(vals), 1)
	for i, v := range vals {
		c.Set(i, 0, v)
	}
	return c
}

// encode runs Eqs. 9-13 on a tape: patient hidden reps (pre-propagation,
// per the paper's anti-over-smoothing design), and final drug reps
// including the βt layer combination and the shared DDI embeddings.
func (m *Model) encode(t *ag.Tape) (hPat, hDrugFinal *ag.Node) {
	hPat = m.fcPat.Apply(t, t.Const(m.trainX))                         // Eq. 9
	hDrug := t.LeakyReLU(m.fcDrug.Apply(t, t.Const(m.drugFeat)), 0.01) // Eq. 10

	// Propagation (Eqs. 11-12) with layer combination (Eq. 13):
	// beta_t = 1/(t+2).
	pT, dT := hPat, hDrug
	hDrugFinal = t.Scale(hDrug, beta(0))
	for layer := 1; layer <= m.Config.PropLayers; layer++ {
		pNext := t.SpMM(m.l2r, dT)
		dNext := t.SpMM(m.r2l, pT)
		pT, dT = pNext, dNext
		hDrugFinal = t.Add(hDrugFinal, t.Scale(dT, beta(layer)))
	}
	// h'_v = h'_v + z_v (shared DDI relation embeddings).
	if m.Config.UseDDI && m.relEmb != nil {
		rel := t.Const(m.relEmb)
		var relNode *ag.Node
		if m.relProj != nil {
			relNode = m.relProj.Apply(t, rel)
		} else {
			relNode = rel
		}
		hDrugFinal = t.Add(hDrugFinal, relNode)
	}
	return hPat, hDrugFinal
}

func beta(t int) float64 { return 1 / float64(t+2) }

// decodeInter builds the shared h_i ⊙ h'_v interaction term of the
// decoder (Eq. 14). The factual and counterfactual losses decode the
// same (patient, drug) pairs, so Train computes this once and feeds it
// to both decoder heads.
func (m *Model) decodeInter(t *ag.Tape, hPat, hDrug *ag.Node, pIdx, vIdx []int) *ag.Node {
	hi := t.GatherRows(hPat, pIdx)
	hv := t.GatherRows(hDrug, vIdx)
	return t.Hadamard(hi, hv)
}

// decodeWith scores pairs given their interaction term: MLP([inter,
// T_iv]) (Eqs. 14-15). treatments is an (E x 1) column.
func (m *Model) decodeWith(t *ag.Tape, inter *ag.Node, treatments *mat.Dense) *ag.Node {
	return m.decoder.Apply(t, t.ConcatCols(inter, t.Const(treatments)))
}

// decode scores (patient, drug) pairs: MLP([h_i ⊙ h'_v, T_iv])
// (Eqs. 14-15). treatments is an (E x 1) column.
func (m *Model) decode(t *ag.Tape, hPat, hDrug *ag.Node, pIdx, vIdx []int, treatments *mat.Dense) *ag.Node {
	return m.decodeWith(t, m.decodeInter(t, hPat, hDrug, pIdx, vIdx), treatments)
}

// Train fits the model, returning the loss history (L = LC + δ·LCF,
// Eq. 18). With SelectOnVal the parameters giving the best validation
// NDCG@4 are restored at the end. One retained tape serves every
// epoch: Reset + replay reuses the whole graph and its buffers, so
// steady-state epochs allocate ~nothing. The final drug
// representations are cached for the tape-free scoring path.
func (m *Model) Train() []float64 {
	opt := optim.NewAdam(m.Config.LR)
	opt.WeightDecay = m.Config.WeightDecay
	losses := make([]float64, 0, m.Config.Epochs)
	valEvery := m.Config.ValEvery
	if valEvery <= 0 {
		valEvery = 25
	}
	m.drugCache = nil // params are about to move; never serve stale reps
	// The quantized representation is frozen-model state; drop it too.
	m.prec, m.pd32, m.drugCache32, m.drugQ8, m.trow32 = F64, nil, nil, nil, nil
	m.indMu.Lock()
	m.indLayers, m.indDeg = nil, nil // same for the inductive layer inputs
	m.indMu.Unlock()
	if m.tape == nil {
		m.tape = ag.NewTape()
	}
	if len(m.grads) != len(m.params.All()) {
		m.grads = make([]*mat.Dense, len(m.params.All()))
	}
	bestVal := -1.0
	var bestSnap []*mat.Dense
	for epoch := 0; epoch < m.Config.Epochs; epoch++ {
		ps, vs, y, tr, cfY, cfT := m.epochPairs()
		t := m.tape
		t.Reset()
		hPat, hDrug := m.encode(t)
		inter := m.decodeInter(t, hPat, hDrug, ps, vs)
		logits := m.decodeWith(t, inter, tr)
		loss := t.BCEWithLogits(logits, y) // Eq. 16
		if cfY != nil && m.Config.Delta > 0 {
			cfLogits := m.decodeWith(t, inter, cfT)  // same pairs, cf treatment
			cfLoss := t.BCEWithLogits(cfLogits, cfY) // Eq. 17
			loss = t.Add(loss, t.Scale(cfLoss, m.Config.Delta))
		}
		t.Backward(loss)
		nn.CollectGradsInto(m.grads, t, &m.params)
		optim.ClipGlobalNorm(m.grads, 5)
		opt.Step(m.params.All(), m.grads)
		losses = append(losses, loss.Value.At(0, 0))

		if m.Config.SelectOnVal && len(m.Data.Val) > 0 &&
			((epoch+1)%valEvery == 0 || epoch == m.Config.Epochs-1) {
			if v := m.valNDCG(); v > bestVal {
				bestVal = v
				bestSnap = snapshot(m.params.All())
			}
		}
	}
	if bestSnap != nil {
		restore(m.params.All(), bestSnap)
	}
	m.drugCache = m.inferDrugReps()
	return losses
}

// valNDCG scores the validation patients and returns NDCG@4.
func (m *Model) valNDCG() float64 {
	scores := m.Scores(m.Data.Val)
	var total float64
	var count int
	for i, p := range m.Data.Val {
		truth := m.Data.TruePositives(p)
		if len(truth) == 0 {
			continue
		}
		total += ndcgAt(scores.Row(i), truth, 4)
		count++
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// ndcgAt computes binary-relevance NDCG@k for one score row.
func ndcgAt(scores []float64, truth []int, k int) float64 {
	type sv struct {
		idx int
		v   float64
	}
	top := make([]sv, len(scores))
	for i, v := range scores {
		top[i] = sv{i, v}
	}
	sort.SliceStable(top, func(a, b int) bool { return top[a].v > top[b].v })
	isRel := make(map[int]bool, len(truth))
	for _, v := range truth {
		isRel[v] = true
	}
	var dcg float64
	for s := 0; s < k && s < len(top); s++ {
		if isRel[top[s].idx] {
			dcg += 1 / math.Log2(float64(s)+2)
		}
	}
	ideal := len(truth)
	if ideal > k {
		ideal = k
	}
	var idcg float64
	for s := 0; s < ideal; s++ {
		idcg += 1 / math.Log2(float64(s)+2)
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

func snapshot(params []*mat.Dense) []*mat.Dense {
	out := make([]*mat.Dense, len(params))
	for i, p := range params {
		out[i] = p.Clone()
	}
	return out
}

func restore(params, snap []*mat.Dense) {
	for i, p := range params {
		p.CopyFrom(snap[i])
	}
}

// inferDrugReps computes the final drug representations h'_v
// (Eqs. 10-13 plus the DDI embedding addition) on the tape-free
// inference path: plain Dense evaluation, bitwise identical to the
// tape encode.
func (m *Model) inferDrugReps() *mat.Dense {
	hPat := m.fcPat.Forward(m.trainX)
	hDrug := nn.ForwardActivation(m.fcDrug.Forward(m.drugFeat), nn.ActLeakyReLU)
	pT, dT := hPat, hDrug
	hFinal := hDrug.Clone()
	hFinal.Scale(beta(0))
	for layer := 1; layer <= m.Config.PropLayers; layer++ {
		pNext := m.l2r.MulDense(dT)
		dNext := m.r2l.MulDense(pT)
		pT, dT = pNext, dNext
		scaled := dT.Clone()
		scaled.Scale(beta(layer))
		hFinal.AddScaled(scaled, 1)
	}
	if m.Config.UseDDI && m.relEmb != nil {
		rel := m.relEmb
		if m.relProj != nil {
			rel = m.relProj.Forward(m.relEmb)
		}
		hFinal.AddScaled(rel, 1)
	}
	return hFinal
}

// drugReps serves the final drug representations: from the
// post-training cache when available, recomputed otherwise (e.g.
// validation scoring mid-training).
func (m *Model) drugReps() *mat.Dense {
	if m.drugCache != nil {
		return m.drugCache
	}
	return m.inferDrugReps()
}

// decodeInfer is the tape-free counterpart of decode: same kernels,
// bitwise-identical logits, no graph nodes.
func (m *Model) decodeInfer(hPat, hDrug *mat.Dense, pIdx, vIdx []int, treatments *mat.Dense) *mat.Dense {
	hi := hPat.GatherRows(pIdx)
	hv := hDrug.GatherRows(vIdx)
	inter := mat.Hadamard(hi, hv)
	return m.decoder.Forward(mat.ConcatCols(inter, treatments))
}

// Scores predicts medication-use probabilities for the given GLOBAL
// patient indices (typically validation or test patients), returning a
// (len(patients) x drugs) matrix. Treatments for unobserved patients
// come from Treatment.InferRow. The whole path is tape-free and runs
// on the tiled fused engine in score.go — no autodiff machinery, no
// pair-matrix materialization — and is bitwise identical to the
// batched reference path below for any worker count.
func (m *Model) Scores(patients []int) *mat.Dense {
	out := mat.New(len(patients), m.Data.NumDrugs())
	m.ScoresInto(out, patients)
	return out
}

// scoresReference is the batched scoring path the fused engine
// replaced: gather, Hadamard and concat matrices over every
// (patient, drug) pair, then one decoder forward. It remains as the
// equivalence oracle for the engine (score_test.go) and as the
// fallback for non-fusable decoder shapes.
func (m *Model) scoresReference(patients []int) *mat.Dense {
	hDrug := m.drugReps()
	// Patient reps for the queried patients (Eq. 9 on their features).
	x := m.Data.Rows(patients)
	hP := m.fcPat.Forward(x)

	nD := m.Data.NumDrugs()
	out := mat.New(len(patients), nD)
	// Score all drugs for all query patients in one batch. Treatment
	// inference is independent per patient, so it fans out across the
	// worker pool, filling the flat pair slices directly.
	pIdx := make([]int, len(patients)*nD)
	vIdx := make([]int, len(patients)*nD)
	tvals := make([]float64, len(patients)*nD)
	par.For(len(patients), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			trow := m.Treatment.inferRowShared(x.Row(i))
			base := i * nD
			for v := 0; v < nD; v++ {
				pIdx[base+v] = i
				vIdx[base+v] = v
				tvals[base+v] = trow[v]
			}
		}
	})
	logits := m.decodeInfer(hP, hDrug, pIdx, vIdx, column(tvals))
	// Each logit row targets a distinct (patient, drug) cell, so the
	// sigmoid fill partitions cleanly across workers.
	par.For(logits.Rows(), 4096, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			out.Set(pIdx[r], vIdx[r], mat.Sigmoid(logits.At(r, 0)))
		}
	})
	return out
}

// PatientRepresentations returns the pre-propagation patient hidden
// representations (Eq. 9) for the given global patient indices — the
// representations the paper analyses in Fig. 7(a). Tape-free.
func (m *Model) PatientRepresentations(patients []int) *mat.Dense {
	return m.fcPat.Forward(m.Data.Rows(patients))
}

// DrugRepresentations returns the final drug representations h'_v
// (Fig. 7(b)), served from the post-training cache when available.
func (m *Model) DrugRepresentations() *mat.Dense {
	return m.drugReps().Clone()
}

// NumParams reports the trainable parameter count.
func (m *Model) NumParams() int { return m.params.Count() }

package md

import (
	"fmt"

	"dssddi/internal/mat"
	"dssddi/internal/nn"
)

// This file is the precision control of the serving engine. The f64
// model is always the source of truth and the accuracy oracle; the f32
// and int8 representations are derived from it deterministically (IEEE
// round-to-nearest-even, per-row affine quantization) and can be
// rebuilt or dropped at any time without touching the trained
// parameters. Scoring dispatches on the derived state: pd32 != nil
// routes every engine entry point through score32.go.

// Precision selects the serving-side numeric representation of the
// frozen model.
type Precision uint8

const (
	// F64 scores through the full float64 model — the accuracy oracle.
	F64 Precision = iota
	// F32 scores through float32 copies of the frozen drug
	// representations, treatment rows and decoder, on the eight-lane
	// f32 SIMD kernels. Roughly half the resident bytes of F64; the
	// divergence from the oracle is characterized and gated (see
	// precision_test.go and benchdiff -precision-gate).
	F32
	// Int8 additionally stores the drug-representation matrix
	// row-quantized to int8 with a per-row affine (scale, offset),
	// dequantizing one row at a time into scratch before the f32
	// kernels. Experimental: ~1/4 the f32 drug-matrix bytes, larger
	// divergence.
	Int8
)

// String returns the flag spelling of the precision.
func (p Precision) String() string {
	switch p {
	case F32:
		return "f32"
	case Int8:
		return "int8-experimental"
	default:
		return "f64"
	}
}

// ParsePrecision maps a -precision flag value to a Precision.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "f64":
		return F64, nil
	case "f32":
		return F32, nil
	case "int8-experimental":
		return Int8, nil
	}
	return F64, fmt.Errorf("md: unknown precision %q (want f64, f32 or int8-experimental)", s)
}

// SetPrecision derives (or drops, for F64) the quantized serving
// representation of the frozen model: float32 copies of the final drug
// representations, the per-cluster treatment rows and the fused
// decoder, plus the int8 row-quantized drug matrix when p is Int8. The
// derivation is deterministic, so a given snapshot always yields the
// same blobs. It must not run concurrently with scoring — the serving
// layer applies it to a freshly loaded model before publishing the
// epoch, which also makes a hot reload switch precision atomically.
// Training invalidates the derived state (back to F64). Re-requesting
// the active precision is a read-only no-op, so re-publishing a system
// that is still serving an older epoch at the same precision never
// writes fields that epoch's in-flight requests are reading.
func (m *Model) SetPrecision(p Precision) error {
	if p == m.prec {
		return nil
	}
	if p == F64 {
		m.prec, m.pd32, m.drugCache32, m.drugQ8, m.trow32 = F64, nil, nil, nil, nil
		return nil
	}
	if m.pd == nil {
		return fmt.Errorf("md: precision %v needs a fusable decoder (this model scores through the batched reference path)", p)
	}
	if m.drugCache == nil {
		return fmt.Errorf("md: precision %v needs a frozen model — train to completion or load a snapshot first", p)
	}
	d32 := mat.Dense32From(m.drugCache)
	trow32 := make([][]float32, len(m.Treatment.clusterRow))
	for c, r := range m.Treatment.clusterRow {
		trow32[c] = mat.Floats32(r)
	}
	pd32 := nn.NewPairDecoder32(m.pd)
	if p == Int8 {
		m.drugQ8, m.drugCache32 = mat.Quantize8(d32), nil
	} else {
		m.drugCache32, m.drugQ8 = d32, nil
	}
	m.trow32, m.pd32, m.prec = trow32, pd32, p
	return nil
}

// Precision reports the active serving precision.
func (m *Model) Precision() Precision { return m.prec }

// ResidentModelBytes returns the explicit resident byte count of the
// active serving representation — the frozen drug representations, the
// per-cluster treatment rows and the fused decoder at the active
// precision. This is the accounting /metricsz and the bench reports
// record: measured from the blobs themselves, not from runtime.MemStats.
func (m *Model) ResidentModelBytes() int {
	var b int
	switch {
	case m.drugQ8 != nil:
		b = m.drugQ8.Bytes() + m.pd32.Bytes()
		for _, r := range m.trow32 {
			b += 4 * len(r)
		}
	case m.drugCache32 != nil:
		b = m.drugCache32.Bytes() + m.pd32.Bytes()
		for _, r := range m.trow32 {
			b += 4 * len(r)
		}
	default:
		h := m.drugReps()
		b = 8 * h.Rows() * h.Cols()
		if m.pd != nil {
			b += m.pd.Bytes()
		}
		for _, r := range m.Treatment.clusterRow {
			b += 8 * len(r)
		}
	}
	return b
}

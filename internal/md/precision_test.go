package md

import (
	"math"
	"testing"

	"dssddi/internal/mat"
	"dssddi/internal/metrics"
)

// withPrecision switches the shared fixture's serving precision for one
// test and guarantees the f64 default is restored for the rest of the
// package.
func withPrecision(t *testing.T, m *Model, p Precision) {
	t.Helper()
	if err := m.SetPrecision(p); err != nil {
		t.Fatalf("SetPrecision(%v): %v", p, err)
	}
	t.Cleanup(func() {
		if err := m.SetPrecision(F64); err != nil {
			t.Fatalf("restore F64: %v", err)
		}
	})
}

// TestParsePrecision pins the flag spellings.
func TestParsePrecision(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Precision
	}{{"", F64}, {"f64", F64}, {"f32", F32}, {"int8-experimental", Int8}} {
		got, err := ParsePrecision(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePrecision(%q) = %v, %v", tc.in, got, err)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Fatalf("Precision(%v).String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParsePrecision("fp16"); err == nil {
		t.Fatal("ParsePrecision accepted an unknown precision")
	}
}

// TestQuantizedScoresTrackOracle characterizes the quantized engines
// against the f64 oracle: max absolute score divergence stays inside
// the per-precision tolerance at both worker counts, and every f32
// entry point (Scores, ScoresInto, ScoresRowsInto) produces the same
// bits as the others.
func TestQuantizedScoresTrackOracle(t *testing.T) {
	m := trainedScoreModel(t)
	d := m.Data
	patients := append(append([]int{}, d.Test...), d.Val...)
	oracle := m.Scores(patients)

	for _, tc := range []struct {
		prec Precision
		tol  float64
	}{{F32, 1e-4}, {Int8, 0.3}} {
		withPrecision(t, m, tc.prec)
		var serial *mat.Dense
		for _, workers := range []int{1, 4} {
			mat.SetWorkers(workers)
			got := m.Scores(patients)
			var maxDelta float64
			g, w := got.Data(), oracle.Data()
			for i := range g {
				if dv := math.Abs(g[i] - w[i]); dv > maxDelta {
					maxDelta = dv
				}
			}
			if maxDelta > tc.tol {
				t.Fatalf("%v workers=%d: max |score - oracle| = %g, tolerance %g", tc.prec, workers, maxDelta, tc.tol)
			}
			t.Logf("%v workers=%d: max |score - oracle| = %g", tc.prec, workers, maxDelta)

			dst := mat.New(len(patients), d.NumDrugs())
			m.ScoresInto(dst, patients)
			bitsEqualRows(t, "quantized ScoresInto vs Scores", dst, got)
			rows := make([][]float64, len(patients))
			for i := range rows {
				rows[i] = make([]float64, d.NumDrugs())
			}
			m.ScoresRowsInto(rows, patients)
			for i := range rows {
				for j, v := range rows[i] {
					if math.Float64bits(v) != math.Float64bits(got.At(i, j)) {
						t.Fatalf("%v ScoresRowsInto (%d,%d) disagrees with Scores", tc.prec, i, j)
					}
				}
			}
			if workers == 1 {
				serial = got
			} else {
				bitsEqualRows(t, "quantized parallel vs serial", got, serial)
			}
		}
		mat.SetWorkers(0)
	}
}

// TestF32TopKRankingInvariance measures the top-k ranking-invariance
// rate of the f32 path against the f64 oracle — the statistic the
// serving bench records and benchdiff -precision-gate enforces — and
// checks the streamed selection agrees bitwise with ranking the full
// f32 row (the exp-skip must never change a result).
func TestF32TopKRankingInvariance(t *testing.T) {
	m := trainedScoreModel(t)
	d := m.Data
	const k = 4
	oracleTop := make([][]int, len(d.Test))
	for i, p := range d.Test {
		oracleTop[i], _ = m.TopKScores(p, k)
	}

	withPrecision(t, m, F32)
	invariant := 0
	for i, p := range d.Test {
		ids, scores := m.TopKScores(p, k)
		row := m.Scores([]int{p}).Row(0)
		want := metrics.TopK(row, k)
		for r := range want {
			if ids[r] != want[r] || math.Float64bits(scores[r]) != math.Float64bits(row[want[r]]) {
				t.Fatalf("patient %d rank %d: streamed f32 top-k (%d, %v) disagrees with full f32 ranking (%d, %v)",
					p, r, ids[r], scores[r], want[r], row[want[r]])
			}
		}
		same := len(ids) == len(oracleTop[i])
		for r := 0; same && r < len(ids); r++ {
			same = ids[r] == oracleTop[i][r]
		}
		if same {
			invariant++
		}
	}
	rate := float64(invariant) / float64(len(d.Test))
	t.Logf("f32 top-%d ranking invariance: %.3f (%d/%d)", k, rate, invariant, len(d.Test))
	if rate < 0.7 {
		t.Fatalf("f32 top-%d ranking invariance %.3f below 0.7", k, rate)
	}
}

// TestQuantizedInductiveMatchesTransductive proves the f32 inductive
// path is the same engine: an observed patient embedded from their own
// features scores bitwise identically to the transductive f32 row, and
// the embedding stores only the narrowed representation.
func TestQuantizedInductiveMatchesTransductive(t *testing.T) {
	m := trainedScoreModel(t)
	d := m.Data
	withPrecision(t, m, F32)
	for _, p := range d.Test[:4] {
		e, err := m.EmbedPatient(nil, d.X.Row(p))
		if err != nil {
			t.Fatalf("EmbedPatient(%d): %v", p, err)
		}
		if e.H != nil || e.T != nil || e.H32 == nil || e.T32 == nil {
			t.Fatalf("patient %d: quantized embedding kept f64 state (H=%v T=%v)", p, e.H != nil, e.T != nil)
		}
		if want := 4 * (len(e.H32) + len(e.T32)); e.Bytes() != want {
			t.Fatalf("embedding Bytes = %d, want %d", e.Bytes(), want)
		}
		row := m.Scores([]int{p}).Row(0)
		got := m.ScoresFor(e)
		for j := range got {
			if math.Float64bits(got[j]) != math.Float64bits(row[j]) {
				t.Fatalf("patient %d drug %d: inductive f32 %v != transductive f32 %v", p, j, got[j], row[j])
			}
		}
		ids, scores := m.TopKScoresFor(e, 4)
		wantIDs, wantScores := m.TopKScores(p, 4)
		for r := range wantIDs {
			if ids[r] != wantIDs[r] || math.Float64bits(scores[r]) != math.Float64bits(wantScores[r]) {
				t.Fatalf("patient %d rank %d: inductive top-k diverged", p, r)
			}
		}
	}
}

// TestPrecisionMismatchedEmbeddingPanics pins the guard: an embedding
// built at one precision must not silently score at another.
func TestPrecisionMismatchedEmbeddingPanics(t *testing.T) {
	m := trainedScoreModel(t)
	e64, err := m.EmbedPatient(nil, m.Data.X.Row(m.Data.Test[0]))
	if err != nil {
		t.Fatal(err)
	}
	withPrecision(t, m, F32)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("f64 embedding scored on a quantized model without panicking")
			}
		}()
		m.ScoresFor(e64)
	}()
	e32, err := m.EmbedPatient(nil, m.Data.X.Row(m.Data.Test[0]))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetPrecision(F64); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("quantized embedding scored on an f64 model without panicking")
		}
	}()
	m.ScoresFor(e32)
}

// TestResidentModelBytesHalves pins the explicit byte accounting: every
// f64 term narrows to exactly half at f32, and the int8 representation
// shrinks the drug matrix ~4x below its f32 size.
func TestResidentModelBytesHalves(t *testing.T) {
	m := trainedScoreModel(t)
	b64 := m.ResidentModelBytes()
	withPrecision(t, m, F32)
	b32 := m.ResidentModelBytes()
	if b64 != 2*b32 {
		t.Fatalf("ResidentModelBytes f64 = %d, f32 = %d; want exactly 2x", b64, b32)
	}
	drug32 := m.drugCache32.Bytes()
	if err := m.SetPrecision(Int8); err != nil {
		t.Fatal(err)
	}
	b8 := m.ResidentModelBytes()
	if b8 >= b32 {
		t.Fatalf("int8 resident bytes %d not below f32 %d", b8, b32)
	}
	if q := m.drugQ8.Bytes(); q > drug32/3 {
		t.Fatalf("int8 drug matrix %d bytes, f32 %d — want ~4x smaller", q, drug32)
	}
}

// TestQuantizedScoringAllocBudget keeps the f32 steady state as lean as
// the f64 engine: zero allocations per ScoresInto once scratch is warm.
func TestQuantizedScoringAllocBudget(t *testing.T) {
	m := trainedScoreModel(t)
	withPrecision(t, m, F32)
	mat.SetWorkers(1)
	defer mat.SetWorkers(0)
	var slack float64
	if raceEnabled {
		slack = 4
	}
	dst := mat.New(1, m.Data.NumDrugs())
	patients := []int{m.Data.Test[0]}
	m.ScoresInto(dst, patients)
	if got := testing.AllocsPerRun(20, func() { m.ScoresInto(dst, patients) }); got > 0+slack {
		t.Fatalf("steady-state f32 ScoresInto allocates %.1f objects, want 0", got)
	}
	m.TopKScores(patients[0], 4)
	if got := testing.AllocsPerRun(20, func() { m.TopKScores(patients[0], 4) }); got > 8+slack {
		t.Fatalf("f32 TopKScores allocates %.1f objects, budget 8", got)
	}
}

// TestTrainInvalidatesPrecision: moving the parameters must drop the
// quantized representation — stale f32 blobs would serve wrong scores.
func TestTrainInvalidatesPrecision(t *testing.T) {
	d := smallDataset(43)
	cfg := DefaultConfig()
	cfg.Hidden = 8
	cfg.Epochs = 2
	cfg.SelectOnVal = false
	m := NewModel(d, nil, cfg)
	m.Train()
	if err := m.SetPrecision(F32); err != nil {
		t.Fatal(err)
	}
	if m.Precision() != F32 || m.pd32 == nil {
		t.Fatal("SetPrecision(F32) did not take")
	}
	m.Train()
	if m.Precision() != F64 || m.pd32 != nil || m.drugCache32 != nil || m.trow32 != nil {
		t.Fatal("Train left stale quantized state")
	}
}

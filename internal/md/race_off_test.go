//go:build !race

package md

const raceEnabled = false

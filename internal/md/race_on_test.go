//go:build race

package md

// raceEnabled relaxes the strictest allocation gates: the race
// detector's instrumentation allocates on its own.
const raceEnabled = true

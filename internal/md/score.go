package md

import (
	"fmt"
	"sync"

	"dssddi/internal/mat"
	"dssddi/internal/metrics"
	"dssddi/internal/par"
)

// This file is the tiled, fused scoring engine — the cold path behind
// Scores, ScoresInto, ScoresRowsInto and TopKScores.
//
// The batched reference path (scoresReference in mdgcn.go) scores P
// patients against nD drugs by materializing three (P·nD × dim)
// intermediates — gathered patient rows, gathered drug rows and their
// Hadamard product — plus a (P·nD × dim+1) concatenation, before a
// single decoder forward. The engine instead walks (patient, drug
// tile) units and decodes each pair through nn.PairDecoder: one
// dim+1 scratch row replaces all four matrices, so peak memory is
// O(tile) instead of O(P·nD·dim) and the steady state allocates
// nothing (scratch is pooled and reused across calls).
//
// Every pair's value is bitwise identical to the reference path for
// any worker count: the fused kernels reproduce the batched kernels'
// per-element accumulation order exactly (see mat.MulRowInto and
// nn.PairDecoder), units partition the output disjointly, and the
// equivalence tests in score_test.go enforce it.

// drugTile is the drug-tile width of the scoring engine: one tile of
// final drug representations (64 rows of Hidden float64s) stays
// cache-hot while a unit scores it, and it is the granularity at
// which TopKScores folds scores into its running selection.
const drugTile = 64

// scoreScratch is the per-goroutine working set of the engine: the
// patient hidden representation, the encoder ping-pong buffers, the
// fused decoder's pair scratch, one score tile and a top-k selection.
type scoreScratch struct {
	hp    []float64
	buf1  []float64
	buf2  []float64
	inter []float64
	hid   []float64
	tile  []float64
	sel   metrics.Selector

	// f32 working set (score32.go): the narrowed patient hidden
	// representation, the f32 decoder scratch and the int8 dequant
	// buffer. Sized on demand the first time a scratch meets a
	// quantized model.
	hp32  []float32
	hid32 []float32
	deq   []float32
}

func (m *Model) getScratch() *scoreScratch {
	sc, _ := m.scratch.Get().(*scoreScratch)
	if sc == nil {
		d, h := m.pd.Dims()
		w := m.fcPat.MaxWidth()
		sc = &scoreScratch{
			hp:    make([]float64, m.fcPat.OutDim()),
			buf1:  make([]float64, w),
			buf2:  make([]float64, w),
			inter: make([]float64, d+1),
			hid:   make([]float64, h),
			tile:  make([]float64, drugTile),
		}
	}
	if m.pd32 != nil && sc.hp32 == nil {
		d, h := m.pd32.Dims()
		sc.hp32 = make([]float32, len(sc.hp))
		sc.hid32 = make([]float32, h)
		sc.deq = make([]float32, d)
	}
	return sc
}

func (m *Model) putScratch(sc *scoreScratch) { m.scratch.Put(sc) }

// scoreTask carries one scoring invocation through the worker pool.
// Work units are (patient, drug tile) pairs, so a lone patient still
// fans out across cores; each unit owns a disjoint slice of its
// output row, keeping any partition bitwise identical. hdr is the
// task-owned row-header buffer ScoresInto builds its destination
// views in, reused across calls.
type scoreTask struct {
	m        *Model
	patients []int
	rows     [][]float64
	hdr      [][]float64
	hDrug    *mat.Dense
	tiles    int
}

var scoreTaskPool = sync.Pool{New: func() any { return new(scoreTask) }}

// Chunk implements par.Worker.
func (t *scoreTask) Chunk(lo, hi int) {
	if t.m.pd32 != nil { // quantized serving representation: f32 twin
		t.chunk32(lo, hi)
		return
	}
	sc := t.m.getScratch()
	nD := t.m.Data.NumDrugs()
	cur := -1 // a patient's tiles are contiguous in u: encode once, score many
	var trow []float64
	for u := lo; u < hi; u++ {
		if pi := u / t.tiles; pi != cur {
			cur = pi
			x := t.m.Data.X.Row(t.patients[pi])
			t.m.fcPat.ForwardRow(sc.hp, x, sc.buf1, sc.buf2)
			trow = t.m.Treatment.inferRowShared(x)
		}
		vLo := (u % t.tiles) * drugTile
		vHi := vLo + drugTile
		if vHi > nD {
			vHi = nD
		}
		t.m.scoreTile(t.rows[cur][vLo:vHi], sc, t.hDrug, trow, vLo)
	}
	t.m.putScratch(sc)
}

// scoreTile scores drugs [vLo, vLo+len(dst)) for the patient whose
// hidden representation is in sc.hp, writing sigmoid scores into dst.
func (m *Model) scoreTile(dst []float64, sc *scoreScratch, hDrug *mat.Dense, trow []float64, vLo int) {
	for i := range dst {
		v := vLo + i
		dst[i] = mat.Sigmoid(m.pd.Logit(sc.hp, hDrug.Row(v), trow[v], sc.inter, sc.hid))
	}
}

// logitTile is scoreTile without the sigmoid — the top-k path defers
// it so drugs that provably cannot enter the selection never pay for
// an exp.
func (m *Model) logitTile(dst []float64, sc *scoreScratch, hDrug *mat.Dense, trow []float64, vLo int) {
	for i := range dst {
		v := vLo + i
		dst[i] = m.pd.Logit(sc.hp, hDrug.Row(v), trow[v], sc.inter, sc.hid)
	}
}

// runScore drives the engine over the given patients and recycles the
// task. rows[i] must have length NumDrugs.
func (m *Model) runScore(t *scoreTask, rows [][]float64, patients []int) {
	if len(patients) > 0 {
		t.m, t.patients, t.rows, t.hDrug = m, patients, rows, m.drugReps()
		t.tiles = (m.Data.NumDrugs() + drugTile - 1) / drugTile
		par.Run(len(patients)*t.tiles, 1, t)
	}
	for i := range t.hdr {
		t.hdr[i] = nil // keep the pooled header buffer, drop what it pointed at
	}
	t.m, t.patients, t.rows, t.hDrug = nil, nil, nil, nil
	scoreTaskPool.Put(t)
}

// ScoresInto is the scratch-reusing form of Scores: it fills dst
// (len(patients) x NumDrugs) in place, allocating nothing in the
// steady state. dst rows receive the same bits Scores would return.
func (m *Model) ScoresInto(dst *mat.Dense, patients []int) {
	if dst.Rows() != len(patients) || dst.Cols() != m.Data.NumDrugs() {
		panic(fmt.Sprintf("md: ScoresInto shape mismatch dst %dx%d for %d patients x %d drugs",
			dst.Rows(), dst.Cols(), len(patients), m.Data.NumDrugs()))
	}
	if m.pd == nil { // non-decomposable decoder: batched reference path
		dst.CopyFrom(m.scoresReference(patients))
		return
	}
	t := scoreTaskPool.Get().(*scoreTask)
	hdr := t.hdr[:0]
	for i := range patients {
		hdr = append(hdr, dst.Row(i))
	}
	t.hdr = hdr
	m.runScore(t, hdr, patients)
}

// ScoresRowsInto fills one caller-owned row per patient — the serving
// batcher's entry point, letting it recycle row buffers across
// requests instead of materializing a matrix per batch. Each rows[i]
// must have length NumDrugs.
func (m *Model) ScoresRowsInto(rows [][]float64, patients []int) {
	if len(rows) != len(patients) {
		panic(fmt.Sprintf("md: ScoresRowsInto got %d rows for %d patients", len(rows), len(patients)))
	}
	nD := m.Data.NumDrugs()
	for i, r := range rows {
		if len(r) != nD {
			panic(fmt.Sprintf("md: ScoresRowsInto row %d has length %d, want %d", i, len(r), nD))
		}
	}
	if m.pd == nil {
		ref := m.scoresReference(patients)
		for i, r := range rows {
			copy(r, ref.Row(i))
		}
		return
	}
	m.runScore(scoreTaskPool.Get().(*scoreTask), rows, patients)
}

// TopKScores scores every drug for one patient tile by tile,
// maintaining a size-k selection instead of producing the full row
// and sorting it — the single-patient cold path behind Suggest. The
// returned ids/scores are ordered exactly like
// metrics.TopK(Scores(patient).Row(0), k) with the identical score
// bits; only the full-row materialization is gone. The returned
// slices are the caller's to keep.
func (m *Model) TopKScores(patient, k int) (ids []int, scores []float64) {
	if m.pd == nil {
		row := m.scoresReference([]int{patient}).Row(0)
		for _, v := range metrics.TopK(row, k) {
			ids = append(ids, v)
			scores = append(scores, row[v])
		}
		return ids, scores
	}
	if m.pd32 != nil { // quantized serving representation: f32 twin
		return m.topKScores32(patient, k)
	}
	hDrug := m.drugReps()
	sc := m.getScratch()
	x := m.Data.X.Row(patient)
	m.fcPat.ForwardRow(sc.hp, x, sc.buf1, sc.buf2)
	trow := m.Treatment.inferRowShared(x)
	ids, scores = m.topKSelect(sc, hDrug, trow, k)
	m.putScratch(sc)
	return ids, scores
}

// topKSelect streams drug tiles for the patient whose hidden
// representation is in sc.hp, folding logits into a size-k selection —
// the shared tail of TopKScores and TopKScoresFor.
func (m *Model) topKSelect(sc *scoreScratch, hDrug *mat.Dense, trow []float64, k int) (ids []int, scores []float64) {
	sc.sel.Reset(k)
	nD := m.Data.NumDrugs()
	for vLo := 0; vLo < nD; vLo += drugTile {
		vHi := vLo + drugTile
		if vHi > nD {
			vHi = nD
		}
		tile := sc.tile[:vHi-vLo]
		m.logitTile(tile, sc, hDrug, trow, vLo)
		for i, logit := range tile {
			// The selection ranks sigmoid scores, but the sigmoid is
			// monotone non-decreasing, so a logit at or below the k-th
			// retained item's logit (carried as the selector aux value)
			// cannot displace anything — skip its exp entirely. Ranks
			// and retained score bits are unchanged: every retained
			// item's score is still mat.Sigmoid of its logit.
			if sc.sel.Full() && logit <= sc.sel.LastAux() {
				continue
			}
			sc.sel.PushAux(vLo+i, mat.Sigmoid(logit), logit)
		}
	}
	return sc.sel.AppendTo(nil, nil)
}

package md

import "dssddi/internal/mat"

// This file is the float32 twin of the tiled scoring engine in
// score.go — the same (patient, drug tile) walk, exp-skipping top-k
// selection and pooled scratch, with the pair decode running through
// the eight-lane f32 kernels (nn.PairDecoder32) over the quantized
// representations SetPrecision derived. Engine entry points dispatch
// here whenever pd32 is non-nil, so the callers in score.go and
// inductive.go stay the single public surface.
//
// The patient encoder still runs in float64 (one ForwardRow per
// patient, a sliver of a cold request's work) and its output row is
// converted once; logits come back widened to float64, so the selector,
// the sigmoid and every caller-visible type are unchanged. Unlike the
// f64 engine there is no bitwise guarantee against the reference path —
// the f32 twin is instead characterized against the f64 oracle by max
// absolute score divergence and top-k ranking invariance
// (precision_test.go, benchdiff -precision-gate).

// floats32Into narrows src into dst element by element.
func floats32Into(dst []float32, src []float64) {
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// drugRow32 returns drug v's serving representation: a direct row of
// the f32 matrix, or — on the int8 path — the row dequantized into the
// scratch's deq buffer (valid until the next call on this scratch).
func (m *Model) drugRow32(sc *scoreScratch, v int) []float32 {
	if m.drugQ8 != nil {
		m.drugQ8.DequantRowInto(sc.deq, v)
		return sc.deq
	}
	return m.drugCache32.Row(v)
}

// scoreTile32 is scoreTile on the f32 path: sigmoid scores for drugs
// [vLo, vLo+len(dst)) of the patient whose converted hidden
// representation is in sc.hp32.
func (m *Model) scoreTile32(dst []float64, sc *scoreScratch, trow []float32, vLo int) {
	for i := range dst {
		v := vLo + i
		dst[i] = mat.Sigmoid(m.pd32.Logit(sc.hp32, m.drugRow32(sc, v), trow[v], sc.hid32))
	}
}

// logitTile32 is scoreTile32 without the sigmoid — the top-k path
// defers it exactly like the f64 engine.
func (m *Model) logitTile32(dst []float64, sc *scoreScratch, trow []float32, vLo int) {
	for i := range dst {
		v := vLo + i
		dst[i] = m.pd32.Logit(sc.hp32, m.drugRow32(sc, v), trow[v], sc.hid32)
	}
}

// chunk32 is scoreTask.Chunk on the f32 path: identical unit walk and
// encode-once-per-patient structure, with the hidden representation
// narrowed once and the treatment row taken from the f32 cluster rows.
func (t *scoreTask) chunk32(lo, hi int) {
	sc := t.m.getScratch()
	nD := t.m.Data.NumDrugs()
	cur := -1
	var trow []float32
	for u := lo; u < hi; u++ {
		if pi := u / t.tiles; pi != cur {
			cur = pi
			x := t.m.Data.X.Row(t.patients[pi])
			t.m.fcPat.ForwardRow(sc.hp, x, sc.buf1, sc.buf2)
			floats32Into(sc.hp32, sc.hp)
			trow = t.m.trow32[t.m.Treatment.NearestCluster(x)]
		}
		vLo := (u % t.tiles) * drugTile
		vHi := vLo + drugTile
		if vHi > nD {
			vHi = nD
		}
		t.m.scoreTile32(t.rows[cur][vLo:vHi], sc, trow, vLo)
	}
	t.m.putScratch(sc)
}

// topKSelect32 is topKSelect on the f32 path. Logits are float64 by the
// time they reach the selector, so the exp-skip reasoning carries over
// unchanged: the sigmoid is monotone, a logit at or below the k-th
// retained aux cannot displace anything.
func (m *Model) topKSelect32(sc *scoreScratch, trow []float32, k int) (ids []int, scores []float64) {
	sc.sel.Reset(k)
	nD := m.Data.NumDrugs()
	for vLo := 0; vLo < nD; vLo += drugTile {
		vHi := vLo + drugTile
		if vHi > nD {
			vHi = nD
		}
		tile := sc.tile[:vHi-vLo]
		m.logitTile32(tile, sc, trow, vLo)
		for i, logit := range tile {
			if sc.sel.Full() && logit <= sc.sel.LastAux() {
				continue
			}
			sc.sel.PushAux(vLo+i, mat.Sigmoid(logit), logit)
		}
	}
	return sc.sel.AppendTo(nil, nil)
}

// topKScores32 is the single-patient cold path at f32: encode once,
// narrow, stream tiles into the selection.
func (m *Model) topKScores32(patient, k int) (ids []int, scores []float64) {
	sc := m.getScratch()
	x := m.Data.X.Row(patient)
	m.fcPat.ForwardRow(sc.hp, x, sc.buf1, sc.buf2)
	floats32Into(sc.hp32, sc.hp)
	trow := m.trow32[m.Treatment.NearestCluster(x)]
	ids, scores = m.topKSelect32(sc, trow, k)
	m.putScratch(sc)
	return ids, scores
}

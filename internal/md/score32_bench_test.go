package md

// Benchmarks for the quantized scoring paths, directly comparable to
// their f64 twins in score_bench_test.go: same model, same patient,
// same serial-worker discipline. BenchmarkTopKPrecisionWidths sweeps
// the representation width so the f32:f64 kernel ratio can be read at
// the widths the serve smoke trains at.

import (
	"fmt"
	"testing"

	"dssddi/internal/mat"
)

func withBenchPrecision(b *testing.B, m *Model, p Precision) {
	b.Helper()
	if err := m.SetPrecision(p); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { m.SetPrecision(F64) })
}

func BenchmarkScoreOnePatientF32(b *testing.B) {
	m := benchModel(b)
	withBenchPrecision(b, m, F32)
	p := m.Data.Test[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Scores([]int{p})
	}
}

func BenchmarkTopKOnePatientF32(b *testing.B) {
	m := benchModel(b)
	withBenchPrecision(b, m, F32)
	p := m.Data.Test[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TopKScores(p, 4)
	}
}

func BenchmarkTopKPrecisionWidths(b *testing.B) {
	for _, hidden := range []int{48, 96, 192} {
		mat.SetWorkers(1)
		d := smallDataset(31)
		cfg := DefaultConfig()
		cfg.Hidden = hidden
		cfg.Epochs = 4
		cfg.SelectOnVal = false
		m := NewModel(d, nil, cfg)
		m.Train()
		p := m.Data.Test[0]
		for _, prec := range []Precision{F64, F32, Int8} {
			b.Run(fmt.Sprintf("h%d/%s", hidden, prec), func(b *testing.B) {
				withBenchPrecision(b, m, prec)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.TopKScores(p, 4)
				}
			})
		}
	}
}

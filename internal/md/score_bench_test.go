package md

// Benchmarks for the tiled fused scoring engine: the full-row
// single-patient path and the TopKScores cold-suggest path (the
// numbers behind the README's cold-path table). Serial workers keep
// allocs/op deterministic.

import (
	"testing"

	"dssddi/internal/mat"
)

func benchModel(b *testing.B) *Model {
	mat.SetWorkers(1)
	d := smallDataset(31)
	cfg := DefaultConfig()
	cfg.Hidden = 48
	cfg.Epochs = 10
	cfg.SelectOnVal = false
	m := NewModel(d, nil, cfg)
	m.Train()
	return m
}

func BenchmarkScoreOnePatient(b *testing.B) {
	m := benchModel(b)
	p := m.Data.Test[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Scores([]int{p})
	}
}

func BenchmarkTopKOnePatient(b *testing.B) {
	m := benchModel(b)
	p := m.Data.Test[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TopKScores(p, 4)
	}
}

package md

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"dssddi/internal/mat"
	"dssddi/internal/metrics"
)

// scoreTestModel trains one small MDGCN (with relation embeddings, so
// the full h'_v path is exercised) shared by the engine tests.
var (
	scoreModelOnce sync.Once
	scoreModel     *Model
)

func trainedScoreModel(t *testing.T) *Model {
	t.Helper()
	scoreModelOnce.Do(func() {
		d := smallDataset(41)
		relEmb := mat.RandNormal(rand.New(rand.NewSource(42)), d.NumDrugs(), 12, 0.5)
		cfg := DefaultConfig()
		cfg.Hidden = 24
		cfg.Epochs = 25
		cfg.SelectOnVal = false
		m := NewModel(d, relEmb, cfg)
		m.Train()
		scoreModel = m
	})
	if scoreModel == nil {
		t.Fatal("shared scoring model failed to train")
	}
	return scoreModel
}

func bitsEqualRows(t *testing.T, ctx string, got, want *mat.Dense) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: shape %dx%d, want %dx%d", ctx, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	g, w := got.Data(), want.Data()
	for i := range g {
		if math.Float64bits(g[i]) != math.Float64bits(w[i]) {
			t.Fatalf("%s: element %d: fused %v != reference %v", ctx, i, g[i], w[i])
		}
	}
}

// TestFusedScoresMatchReference is the engine's core guarantee: the
// tiled fused path produces exactly the reference path's bits — for
// batch and single-patient queries, at serial and parallel worker
// counts, through Scores, ScoresInto and ScoresRowsInto.
func TestFusedScoresMatchReference(t *testing.T) {
	m := trainedScoreModel(t)
	d := m.Data
	queries := [][]int{
		d.Test,
		d.Val,
		{d.Test[0]},
		{d.Train[3], d.Test[1], d.Val[0], d.Test[1]}, // duplicates and observed patients
	}
	for _, workers := range []int{1, 4} {
		mat.SetWorkers(workers)
		for qi, patients := range queries {
			want := m.scoresReference(patients)

			bitsEqualRows(t, "Scores", m.Scores(patients), want)

			dst := mat.New(len(patients), d.NumDrugs())
			m.ScoresInto(dst, patients)
			bitsEqualRows(t, "ScoresInto", dst, want)

			rows := make([][]float64, len(patients))
			for i := range rows {
				rows[i] = make([]float64, d.NumDrugs())
			}
			m.ScoresRowsInto(rows, patients)
			for i := range rows {
				for j, v := range rows[i] {
					if math.Float64bits(v) != math.Float64bits(want.At(i, j)) {
						t.Fatalf("workers=%d query %d ScoresRowsInto (%d,%d): %v != %v", workers, qi, i, j, v, want.At(i, j))
					}
				}
			}
		}
	}
	mat.SetWorkers(0)
}

// TestTopKScoresMatchesFullRanking checks the streaming tiled
// selection against ranking the full reference row, for every test
// patient and several k, at both worker counts.
func TestTopKScoresMatchesFullRanking(t *testing.T) {
	m := trainedScoreModel(t)
	d := m.Data
	for _, workers := range []int{1, 4} {
		mat.SetWorkers(workers)
		for _, p := range d.Test[:6] {
			row := m.scoresReference([]int{p}).Row(0)
			for _, k := range []int{1, 4, 17, d.NumDrugs(), d.NumDrugs() + 5} {
				ids, scores := m.TopKScores(p, k)
				want := metrics.TopK(row, k)
				if len(ids) != len(want) || len(scores) != len(want) {
					t.Fatalf("patient %d k=%d: got %d ids, want %d", p, k, len(ids), len(want))
				}
				for r := range want {
					if ids[r] != want[r] {
						t.Fatalf("workers=%d patient %d k=%d rank %d: id %d, want %d", workers, p, k, r, ids[r], want[r])
					}
					if math.Float64bits(scores[r]) != math.Float64bits(row[want[r]]) {
						t.Fatalf("patient %d k=%d rank %d: score %v, want %v", p, k, r, scores[r], row[want[r]])
					}
				}
			}
		}
	}
	mat.SetWorkers(0)
}

// TestMidTrainingScoresStillMatch covers the drugCache-less path
// (validation scoring mid-training recomputes drug reps per call).
func TestMidTrainingScoresStillMatch(t *testing.T) {
	m := trainedScoreModel(t)
	cache := m.drugCache
	m.drugCache = nil
	defer func() { m.drugCache = cache }()
	patients := m.Data.Val[:3]
	bitsEqualRows(t, "uncached Scores", m.Scores(patients), m.scoresReference(patients))
}

// TestScoringAllocBudgets gates the engine's steady-state allocation:
// ScoresInto reuses pooled scratch end to end, and the TopKScores
// cold suggest path stays within a handful of allocations — far under
// the ≤64 budget the serving layer depends on.
func TestScoringAllocBudgets(t *testing.T) {
	m := trainedScoreModel(t)
	mat.SetWorkers(1)
	defer mat.SetWorkers(0)
	p := m.Data.Test[0]

	// The race detector's instrumentation allocates by itself; the
	// strict budgets only hold on uninstrumented builds.
	var slack float64
	if raceEnabled {
		slack = 4
	}
	dst := mat.New(1, m.Data.NumDrugs())
	patients := []int{p}
	m.ScoresInto(dst, patients) // warm the pools
	if got := testing.AllocsPerRun(20, func() { m.ScoresInto(dst, patients) }); got > 0+slack {
		t.Fatalf("steady-state ScoresInto allocates %.1f objects, want 0", got)
	}

	m.TopKScores(p, 4)
	if got := testing.AllocsPerRun(20, func() { m.TopKScores(p, 4) }); got > 8+slack {
		t.Fatalf("TopKScores allocates %.1f objects, budget 8", got)
	}
}

// TestConcurrentScoringHammer runs the fused engine from many
// goroutines at once (the serving pattern) under the race detector
// and checks every result is bitwise identical to the serial answer.
func TestConcurrentScoringHammer(t *testing.T) {
	m := trainedScoreModel(t)
	d := m.Data
	want := m.scoresReference(d.Test)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 15; iter++ {
				i := (g + iter) % len(d.Test)
				p := d.Test[i]
				if g%2 == 0 {
					got := m.Scores([]int{p})
					for j := 0; j < d.NumDrugs(); j++ {
						if math.Float64bits(got.At(0, j)) != math.Float64bits(want.At(i, j)) {
							t.Errorf("goroutine %d: Scores(%d) drug %d diverged", g, p, j)
							return
						}
					}
				} else {
					ids, scores := m.TopKScores(p, 4)
					top := metrics.TopK(want.Row(i), 4)
					for r := range top {
						if ids[r] != top[r] || math.Float64bits(scores[r]) != math.Float64bits(want.At(i, top[r])) {
							t.Errorf("goroutine %d: TopKScores(%d) rank %d diverged", g, p, r)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

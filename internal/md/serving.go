package md

import (
	"fmt"

	"dssddi/internal/dataset"
	"dssddi/internal/mat"
	"dssddi/internal/nn"
	"dssddi/internal/sparse"
)

// ServingState bundles everything a trained Model needs to score
// patients — the layer weights, the (row-normalised) shared DDI
// relation embeddings, the cached final drug representations and the
// treatment model. It is the unit the snapshot layer serializes; the
// matrices are shared with the live model and must be treated as
// read-only.
type ServingState struct {
	Config    Config
	FcPat     *nn.MLP    // patient encoder (Eq. 9)
	FcDrug    *nn.Linear // drug encoder (Eq. 10)
	RelProj   *nn.Linear // optional relation-embedding projection
	Decoder   *nn.MLP    // Eqs. 14-15
	RelEmb    *mat.Dense // row-normalised DDI embeddings; nil for w/o-DDI
	DrugCache *mat.Dense // final drug representations h'_v
	Treatment *Treatment
}

// ServingState exports the model's post-training state. It requires a
// trained model: the drug-representation cache is what makes a
// restored model score without re-running propagation.
func (m *Model) ServingState() (ServingState, error) {
	if m.drugCache == nil {
		return ServingState{}, fmt.Errorf("md: model has no cached drug representations; call Train before exporting serving state")
	}
	return ServingState{
		Config:    m.Config,
		FcPat:     m.fcPat,
		FcDrug:    m.fcDrug,
		RelProj:   m.relProj,
		Decoder:   m.decoder,
		RelEmb:    m.relEmb,
		DrugCache: m.drugCache,
		Treatment: m.Treatment,
	}, nil
}

// NewServing rebuilds an inference-ready Model from serialized state
// over the given dataset. The restored model's Scores /
// PatientRepresentations / DrugRepresentations are bitwise identical
// to the model the state came from; to retrain, build a fresh model
// with NewModel instead.
func NewServing(d *dataset.Dataset, st ServingState) (*Model, error) {
	switch {
	case st.FcPat == nil || st.FcDrug == nil || st.Decoder == nil:
		return nil, fmt.Errorf("md: serving state is missing encoder or decoder weights")
	case st.DrugCache == nil:
		return nil, fmt.Errorf("md: serving state is missing the drug representation cache")
	case st.Treatment == nil:
		return nil, fmt.Errorf("md: serving state is missing the treatment model")
	case st.DrugCache.Rows() != d.NumDrugs():
		return nil, fmt.Errorf("md: drug cache has %d rows for a dataset with %d drugs", st.DrugCache.Rows(), d.NumDrugs())
	case len(st.FcPat.Layers) == 0 || st.FcPat.Layers[0].W.Rows() != d.X.Cols():
		return nil, fmt.Errorf("md: patient encoder input width does not match the dataset feature width %d", d.X.Cols())
	}
	m := &Model{
		Config:    st.Config,
		Data:      d,
		Treatment: st.Treatment,
		fcPat:     st.FcPat,
		fcDrug:    st.FcDrug,
		relProj:   st.RelProj,
		decoder:   st.Decoder,
		relEmb:    st.RelEmb,
		drugCache: st.DrugCache,
	}
	// Register parameters in NewModel's order so NumParams matches.
	for _, l := range st.FcPat.Layers {
		m.params.Register(l.W)
		m.params.Register(l.B)
	}
	m.params.Register(st.FcDrug.W)
	m.params.Register(st.FcDrug.B)
	if st.RelProj != nil {
		m.params.Register(st.RelProj.W)
		m.params.Register(st.RelProj.B)
	}
	for _, l := range st.Decoder.Layers {
		m.params.Register(l.W)
		m.params.Register(l.B)
	}
	// Derived, dataset-owned inputs: the drug features, the observed
	// patients' rows and the bipartite propagation operators. They are
	// only needed by the inferDrugReps fallback (the cache normally
	// serves every request), but restoring them keeps the whole
	// inference surface of the model working.
	m.drugFeat = d.DrugFeatures
	if m.drugFeat == nil {
		m.drugFeat = mat.OneHot(d.NumDrugs())
	}
	m.trainX = d.Rows(d.Train)
	m.trainY = d.Labels(d.Train)
	m.l2r, m.r2l = sparse.BipartiteNorm(len(d.Train), d.NumDrugs(), d.ObservedBipartite().Links())
	// The fused scoring kernel references the decoder's live weight
	// matrices, so a restored model scores through the same tiled
	// engine (and with the same bits) as the model it was saved from.
	m.pd, _ = nn.NewPairDecoder(m.decoder)
	return m, nil
}

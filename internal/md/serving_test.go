package md

import (
	"math/rand"
	"testing"

	"dssddi/internal/dataset"
	"dssddi/internal/synth"
)

func servingDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	opts := synth.DefaultCohortOptions()
	opts.Males, opts.Females = 30, 25
	return dataset.FromCohort(rng, synth.GenerateCohort(rng, opts), nil)
}

func TestServingStateRoundTrip(t *testing.T) {
	d := servingDataset(t)
	cfg := DefaultConfig()
	cfg.Epochs = 15
	cfg.Hidden = 8
	m := NewModel(d, nil, cfg)

	// Before training there is no drug cache to export.
	if _, err := m.ServingState(); err == nil {
		t.Fatal("ServingState before Train must error")
	}
	m.Train()
	st, err := m.ServingState()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := NewServing(d, st)
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumParams() != m.NumParams() {
		t.Fatalf("restored model has %d params, original %d", restored.NumParams(), m.NumParams())
	}
	patients := d.Test[:4]
	want := m.Scores(patients)
	got := restored.Scores(patients)
	for i := 0; i < want.Rows(); i++ {
		for j := 0; j < want.Cols(); j++ {
			if want.At(i, j) != got.At(i, j) {
				t.Fatalf("restored Scores diverged at (%d,%d): %v vs %v", i, j, want.At(i, j), got.At(i, j))
			}
		}
	}

	// The restored model's fallback path (cache cleared) must also
	// reproduce the cached representations it was restored with.
	reps := restored.DrugRepresentations()
	fromScratch := restored.inferDrugReps()
	for i := 0; i < reps.Rows(); i++ {
		for j := 0; j < reps.Cols(); j++ {
			if reps.At(i, j) != fromScratch.At(i, j) {
				t.Fatalf("restored inferDrugReps diverged at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewServingValidation(t *testing.T) {
	d := servingDataset(t)
	cfg := DefaultConfig()
	cfg.Epochs = 5
	cfg.Hidden = 8
	m := NewModel(d, nil, cfg)
	m.Train()
	good, err := m.ServingState()
	if err != nil {
		t.Fatal(err)
	}

	broken := good
	broken.Decoder = nil
	if _, err := NewServing(d, broken); err == nil {
		t.Fatal("missing decoder must be rejected")
	}
	broken = good
	broken.DrugCache = nil
	if _, err := NewServing(d, broken); err == nil {
		t.Fatal("missing drug cache must be rejected")
	}
	broken = good
	broken.Treatment = nil
	if _, err := NewServing(d, broken); err == nil {
		t.Fatal("missing treatment must be rejected")
	}
}

func TestRestoreTreatmentMatchesBuild(t *testing.T) {
	d := servingDataset(t)
	rng := rand.New(rand.NewSource(9))
	x, y := d.Rows(d.Train), d.Labels(d.Train)
	orig := BuildTreatment(rng, x, y, d.DDI, d.NumClusters)

	restored := RestoreTreatment(orig.T, orig.Assign, orig.Centroids, orig.ClusterSets(), d.DDI)
	for _, p := range d.Test[:6] {
		a := orig.InferRow(d.X.Row(p))
		b := restored.InferRow(d.X.Row(p))
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("restored treatment row diverged for patient %d at drug %d", p, j)
			}
		}
	}
}

// Package md implements the paper's Medical Decision module
// (Section IV-B): the three-step causal treatment matrix, the
// counterfactual link mining of Eqs. 7-8, and MDGCN — a LightGCN-style
// bipartite encoder with an MLP decoder trained jointly on factual and
// counterfactual outcomes (Eqs. 9-18).
package md

import (
	"math"
	"math/rand"
	"sort"

	"dssddi/internal/cluster"
	"dssddi/internal/graph"
	"dssddi/internal/mat"
)

// Treatment holds the causal treatment matrix over the observed
// (training) patients and everything needed to derive treatments for
// unobserved patients.
type Treatment struct {
	// T is the (observed patients x drugs) treatment matrix after the
	// three construction steps.
	T *mat.Dense
	// Assign is each observed patient's cluster.
	Assign []int
	// Centroids holds the k cluster centres in feature space.
	Centroids *mat.Dense
	// clusterDrugs[c][v] = true if any member of cluster c takes v
	// (the post-step-2 cluster treatment set, pre-DDI expansion).
	clusterDrugs []map[int]bool
	ddi          *graph.Signed
	// clusterRow[c] is the fully expanded (cluster set + synergy
	// propagation) treatment row for cluster c, precomputed so
	// inference for an unobserved patient is a centroid scan plus a
	// cached-row lookup — no per-request graph walk or allocation.
	clusterRow [][]float64
}

// BuildTreatment runs the three treatment-construction steps of
// Section IV-B1 over the observed patients:
//
//  1. T_iv = 1 where patient i takes drug v,
//  2. patients are clustered (k-means, k = number of chronic diseases);
//     treatments propagate within a cluster,
//  3. treatments propagate across synergistic DDI edges.
//
// x and y are the observed patients' features and medication use.
func BuildTreatment(rng *rand.Rand, x, y *mat.Dense, ddi *graph.Signed, k int) *Treatment {
	n, m := y.Rows(), y.Cols()
	res := cluster.KMeans(rng, x, k, 30)
	t := &Treatment{
		T:         mat.New(n, m),
		Centroids: res.Centroids,
		ddi:       ddi,
	}
	// The assignment is re-derived from the final centroids with
	// NearestCluster rather than taken from the k-means result: when
	// Lloyd iterations stop at the iteration cap, the last centroid
	// update can leave res.Assign inconsistent with res.Centroids.
	// Every inference path (InferRow, InferRowFor) assigns by
	// NearestCluster, so deriving the training assignment the same way
	// guarantees an observed patient's own drugs are always contained
	// in the cluster set their inference-time cluster carries — the
	// invariant the inductive scoring path's bitwise guarantee rests on.
	t.Assign = make([]int, n)
	for i := range t.Assign {
		t.Assign[i] = t.NearestCluster(x.Row(i))
	}
	res.Assign = t.Assign
	// Step 1: observed links.
	for i := 0; i < n; i++ {
		for v := 0; v < m; v++ {
			if y.At(i, v) == 1 {
				t.T.Set(i, v, 1)
			}
		}
	}
	// Step 2: propagate within clusters.
	k = res.Centroids.Rows()
	t.clusterDrugs = make([]map[int]bool, k)
	for c := range t.clusterDrugs {
		t.clusterDrugs[c] = make(map[int]bool)
	}
	for i := 0; i < n; i++ {
		for v := 0; v < m; v++ {
			if y.At(i, v) == 1 {
				t.clusterDrugs[res.Assign[i]][v] = true
			}
		}
	}
	for i := 0; i < n; i++ {
		for v := range t.clusterDrugs[res.Assign[i]] {
			t.T.Set(i, v, 1)
		}
	}
	// Step 3: propagate across synergistic edges.
	for i := 0; i < n; i++ {
		expandSynergy(ddi, t.T.Row(i))
	}
	// Precompute the per-cluster inference rows (steps 2-3 for a
	// hypothetical member with no observed links of its own).
	t.buildClusterRows(m)
	return t
}

// buildClusterRows derives the per-cluster inference rows from
// clusterDrugs: the cluster treatment set expanded across synergistic
// DDI edges. Both the training constructor and the snapshot restore
// path go through here, so a restored Treatment infers bitwise
// identically to the original.
func (t *Treatment) buildClusterRows(m int) {
	t.clusterRow = make([][]float64, len(t.clusterDrugs))
	for c := range t.clusterRow {
		row := make([]float64, m)
		for v := range t.clusterDrugs[c] {
			row[v] = 1
		}
		expandSynergy(t.ddi, row)
		t.clusterRow[c] = row
	}
}

// expandSynergy marks the synergistic neighbours of every treated drug
// in one ascending pass over the row — the shared step-3 expansion of
// BuildTreatment, buildClusterRows and InferRowFor. A single function
// (and its exact visit order) keeps every treatment row in the system
// derived by the same rule, which is what lets the inductive path
// reproduce a transductive row bit for bit.
func expandSynergy(ddi *graph.Signed, row []float64) {
	for v := range row {
		if row[v] != 1 {
			continue
		}
		for _, u := range ddi.Neighbors(v, func(s graph.Sign) bool { return s == graph.Synergy }) {
			row[u] = 1
		}
	}
}

// ClusterSets exports the post-step-2 cluster treatment sets (sorted
// drug IDs per cluster) — the part of a Treatment that cannot be
// recomputed from its exported fields. Together with T, Assign,
// Centroids and the DDI graph it fully determines the inference
// behaviour (see RestoreTreatment).
func (t *Treatment) ClusterSets() [][]int {
	out := make([][]int, len(t.clusterDrugs))
	for c, set := range t.clusterDrugs {
		drugs := make([]int, 0, len(set))
		for v := range set {
			drugs = append(drugs, v)
		}
		sort.Ints(drugs)
		out[c] = drugs
	}
	return out
}

// RestoreTreatment rebuilds a Treatment from serialized state: the
// treatment matrix, cluster assignment, centroids and per-cluster
// treatment sets (as returned by ClusterSets), plus the DDI graph the
// synergy expansion runs on. The precomputed inference rows are
// re-derived with the same expansion as BuildTreatment, so InferRow on
// the restored value is bitwise identical to the original.
func RestoreTreatment(T *mat.Dense, assign []int, centroids *mat.Dense, clusterSets [][]int, ddi *graph.Signed) *Treatment {
	t := &Treatment{T: T, Assign: assign, Centroids: centroids, ddi: ddi}
	t.clusterDrugs = make([]map[int]bool, len(clusterSets))
	for c, drugs := range clusterSets {
		t.clusterDrugs[c] = make(map[int]bool, len(drugs))
		for _, v := range drugs {
			t.clusterDrugs[c][v] = true
		}
	}
	t.buildClusterRows(ddi.N())
	return t
}

// InferRow derives the treatment row for an unobserved patient from
// their feature vector: assign to the nearest cluster centroid, adopt
// the cluster's treatment set, then expand across synergy edges. The
// returned slice is the caller's to keep.
func (t *Treatment) InferRow(x []float64) []float64 {
	return append([]float64(nil), t.inferRowShared(x)...)
}

// inferRowShared returns the precomputed treatment row of the nearest
// cluster. The slice is shared and read-only — the hot scoring path
// copies what it needs without allocating.
func (t *Treatment) inferRowShared(x []float64) []float64 {
	return t.clusterRow[t.NearestCluster(x)]
}

// InferRowFor derives the treatment row for an arbitrary patient
// profile: the union of their current regimen and — when a feature
// vector is supplied — the treatment set of their nearest cluster,
// expanded across synergistic DDI edges exactly like the training-time
// construction. For an observed patient queried with their own
// features and recorded regimen this reproduces inferRowShared's row
// bit for bit: the assignment rule is the same NearestCluster call, so
// the regimen is already contained in the cluster set and the union
// (and its synergy expansion) degenerates to the cached cluster row.
// Regimen entries must be valid drug IDs. The returned slice is the
// caller's to keep.
func (t *Treatment) InferRowFor(regimen []int, x []float64) []float64 {
	row := make([]float64, t.ddi.N())
	if x != nil {
		for v := range t.clusterDrugs[t.NearestCluster(x)] {
			row[v] = 1
		}
	}
	for _, v := range regimen {
		row[v] = 1
	}
	expandSynergy(t.ddi, row)
	return row
}

// NearestCluster returns the index of the centroid closest to x.
func (t *Treatment) NearestCluster(x []float64) int {
	best, bestD := 0, math.Inf(1)
	for c := 0; c < t.Centroids.Rows(); c++ {
		if d := mat.EuclideanDistance(x, t.Centroids.Row(c)); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Package metrics implements the ranking metrics of the paper's
// evaluation: Precision@k, Recall@k and NDCG@k (Eqs. 21-24), plus
// helpers for turning score vectors into top-k suggestion lists.
package metrics

import (
	"math"
	"sort"
)

// TopK returns the indices of the k largest scores, ties broken by
// lower index for determinism. k is clamped to len(scores).
func TopK(scores []float64, k int) []int {
	if k > len(scores) {
		k = len(scores)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx[:k]
}

// Selector is a streaming top-k selection with exactly TopK's
// ordering semantics: descending score, ties broken by lower index.
// Items must be pushed in ascending index order (as a scan over a
// score row naturally does); the selection then matches
// TopK(fullRow, k) without ever holding more than k entries — the
// tiled scoring engine keeps one of these instead of materializing
// and sorting a full score row. The zero value is ready after Reset;
// its buffers are reused across Resets, so steady-state use
// allocates nothing.
type Selector struct {
	k      int
	idx    []int
	scores []float64
	aux    []float64
}

// Reset empties the selection and sets its capacity to k.
func (s *Selector) Reset(k int) {
	if k < 0 {
		k = 0
	}
	s.k = k
	s.idx = s.idx[:0]
	s.scores = s.scores[:0]
	s.aux = s.aux[:0]
}

// Push offers one (index, score) item. Indices must arrive in
// ascending order.
func (s *Selector) Push(i int, v float64) { s.PushAux(i, v, 0) }

// PushAux is Push with an auxiliary value carried alongside the item
// (the scoring engine stores the pre-sigmoid logit there; see
// LastAux).
func (s *Selector) PushAux(i int, v, aux float64) {
	n := len(s.idx)
	if n == s.k {
		if n == 0 || !(v > s.scores[n-1]) {
			return // not better than the current k-th (ties keep the earlier index)
		}
		s.idx[n-1], s.scores[n-1], s.aux[n-1] = i, v, aux
	} else {
		s.idx = append(s.idx, i)
		s.scores = append(s.scores, v)
		s.aux = append(s.aux, aux)
	}
	// Bubble the new entry up past strictly smaller scores only, so an
	// equal-score earlier index stays ahead — TopK's stable-sort order.
	for p := len(s.idx) - 1; p > 0 && v > s.scores[p-1]; p-- {
		s.idx[p], s.scores[p], s.aux[p] = s.idx[p-1], s.scores[p-1], s.aux[p-1]
		s.idx[p-1], s.scores[p-1], s.aux[p-1] = i, v, aux
	}
}

// Full reports whether the selection holds k items.
func (s *Selector) Full() bool { return len(s.idx) == s.k && s.k > 0 }

// LastAux returns the auxiliary value of the current k-th (worst
// retained) item. Only meaningful when Full.
func (s *Selector) LastAux() float64 { return s.aux[len(s.aux)-1] }

// Len returns the current selection size (≤ k).
func (s *Selector) Len() int { return len(s.idx) }

// At returns the r-th best (index, score), r in [0, Len).
func (s *Selector) At(r int) (int, float64) { return s.idx[r], s.scores[r] }

// AppendTo appends the selection to ids and scores (either may be
// nil) and returns them — the allocation point callers control.
func (s *Selector) AppendTo(ids []int, scores []float64) ([]int, []float64) {
	return append(ids, s.idx...), append(scores, s.scores...)
}

// Rank returns the 1-based rank of item in the descending score order
// (ties broken by lower index); 0 if item is out of range.
func Rank(scores []float64, item int) int {
	if item < 0 || item >= len(scores) {
		return 0
	}
	order := TopK(scores, len(scores))
	for r, v := range order {
		if v == item {
			return r + 1
		}
	}
	return 0
}

// PrecisionRecallAtK computes the micro-averaged Precision@k and
// Recall@k over all patients (Eqs. 21-22): sums of per-patient hit
// counts divided by the sums of suggestion-list and truth-set sizes.
// suggestions[j] is the top-k list for patient j; truth[j] the drugs
// the patient takes.
func PrecisionRecallAtK(suggestions [][]int, truth [][]int) (precision, recall float64) {
	var hits, sugg, rel float64
	for j := range suggestions {
		truthSet := make(map[int]bool, len(truth[j]))
		for _, v := range truth[j] {
			truthSet[v] = true
		}
		for _, v := range suggestions[j] {
			if truthSet[v] {
				hits++
			}
		}
		sugg += float64(len(suggestions[j]))
		rel += float64(len(truth[j]))
	}
	if sugg > 0 {
		precision = hits / sugg
	}
	if rel > 0 {
		recall = hits / rel
	}
	return
}

// NDCGAtK computes the mean NDCG@k over patients (Eqs. 23-24) with
// binary relevance: DCG = Σ (2^rel − 1)/log2(s+1); IDCG assumes all
// relevant items are ranked first.
func NDCGAtK(suggestions [][]int, truth [][]int, k int) float64 {
	var total float64
	var count int
	for j := range suggestions {
		truthSet := make(map[int]bool, len(truth[j]))
		for _, v := range truth[j] {
			truthSet[v] = true
		}
		if len(truthSet) == 0 {
			continue
		}
		var dcg float64
		for s, v := range suggestions[j] {
			if s >= k {
				break
			}
			if truthSet[v] {
				dcg += 1 / math.Log2(float64(s)+2)
			}
		}
		ideal := len(truthSet)
		if ideal > k {
			ideal = k
		}
		var idcg float64
		for s := 0; s < ideal; s++ {
			idcg += 1 / math.Log2(float64(s)+2)
		}
		total += dcg / idcg
		count++
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// Report bundles the three ranking metrics at one k.
type Report struct {
	K         int
	Precision float64
	Recall    float64
	NDCG      float64
}

// Evaluate scores every patient row of scores (patients x drugs) and
// reports metrics at each requested k. truth[j] lists patient j's
// drugs.
func Evaluate(scores [][]float64, truth [][]int, ks []int) []Report {
	reports := make([]Report, 0, len(ks))
	for _, k := range ks {
		sugg := make([][]int, len(scores))
		for j := range scores {
			sugg[j] = TopK(scores[j], k)
		}
		p, r := PrecisionRecallAtK(sugg, truth)
		n := NDCGAtK(sugg, truth, k)
		reports = append(reports, Report{K: k, Precision: p, Recall: r, NDCG: n})
	}
	return reports
}

package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.9}
	top := TopK(scores, 2)
	if top[0] != 1 || top[1] != 3 {
		t.Fatalf("TopK = %v, want [1 3] (stable ties)", top)
	}
	if len(TopK(scores, 10)) != 4 {
		t.Fatal("k must clamp to len")
	}
}

func TestRank(t *testing.T) {
	scores := []float64{0.3, 0.9, 0.5}
	if Rank(scores, 1) != 1 || Rank(scores, 2) != 2 || Rank(scores, 0) != 3 {
		t.Fatal("ranks wrong")
	}
	if Rank(scores, 9) != 0 {
		t.Fatal("out of range should be 0")
	}
}

func TestPrecisionRecallPerfect(t *testing.T) {
	sugg := [][]int{{0, 1}, {2}}
	truth := [][]int{{0, 1}, {2}}
	p, r := PrecisionRecallAtK(sugg, truth)
	if p != 1 || r != 1 {
		t.Fatalf("p=%v r=%v, want 1,1", p, r)
	}
}

func TestPrecisionRecallPartial(t *testing.T) {
	// Patient 0: 1 hit of 2 suggested, 1 of 2 relevant.
	// Patient 1: 0 hits of 1 suggested, 0 of 1 relevant.
	sugg := [][]int{{0, 5}, {7}}
	truth := [][]int{{0, 1}, {2}}
	p, r := PrecisionRecallAtK(sugg, truth)
	if math.Abs(p-1.0/3.0) > 1e-12 {
		t.Fatalf("precision %v, want 1/3", p)
	}
	if math.Abs(r-1.0/3.0) > 1e-12 {
		t.Fatalf("recall %v, want 1/3", r)
	}
}

func TestPrecisionRecallEmpty(t *testing.T) {
	p, r := PrecisionRecallAtK(nil, nil)
	if p != 0 || r != 0 {
		t.Fatal("empty input should give zeros")
	}
}

func TestNDCGPerfectIsOne(t *testing.T) {
	sugg := [][]int{{3, 1, 4}}
	truth := [][]int{{3, 1, 4}}
	if n := NDCGAtK(sugg, truth, 3); math.Abs(n-1) > 1e-12 {
		t.Fatalf("perfect NDCG %v, want 1", n)
	}
}

func TestNDCGOrderMatters(t *testing.T) {
	truth := [][]int{{7}}
	first := NDCGAtK([][]int{{7, 1, 2}}, truth, 3)
	last := NDCGAtK([][]int{{1, 2, 7}}, truth, 3)
	if first <= last {
		t.Fatalf("hit at rank 1 (%v) must beat rank 3 (%v)", first, last)
	}
	if math.Abs(first-1) > 1e-12 {
		t.Fatalf("single relevant at rank 1 should be NDCG 1, got %v", first)
	}
	want := 1 / math.Log2(4) // rel at position 3: 1/log2(3+1); IDCG=1
	if math.Abs(last-want) > 1e-12 {
		t.Fatalf("NDCG %v, want %v", last, want)
	}
}

func TestNDCGIgnoresPatientsWithoutTruth(t *testing.T) {
	sugg := [][]int{{1}, {2}}
	truth := [][]int{{}, {2}}
	if n := NDCGAtK(sugg, truth, 1); math.Abs(n-1) > 1e-12 {
		t.Fatalf("NDCG %v; patients without truth must be skipped", n)
	}
}

func TestNDCGBounds(t *testing.T) {
	sugg := [][]int{{0, 1, 2, 3}, {4, 5, 6}, {9, 8}}
	truth := [][]int{{2, 9}, {5}, {0}}
	for _, k := range []int{1, 2, 3, 4} {
		n := NDCGAtK(sugg, truth, k)
		if n < 0 || n > 1 {
			t.Fatalf("NDCG@%d = %v outside [0,1]", k, n)
		}
	}
}

func TestEvaluateMultipleKs(t *testing.T) {
	scores := [][]float64{{0.9, 0.1, 0.8}, {0.2, 0.7, 0.3}}
	truth := [][]int{{0}, {1, 2}}
	reports := Evaluate(scores, truth, []int{1, 2})
	if len(reports) != 2 {
		t.Fatal("wrong report count")
	}
	// @1: patient0 suggests {0}: hit. patient1 suggests {1}: hit.
	if reports[0].Precision != 1 {
		t.Fatalf("P@1 = %v, want 1", reports[0].Precision)
	}
	// R@1 = (1 + 1) / (1 + 2) = 2/3.
	if math.Abs(reports[0].Recall-2.0/3.0) > 1e-12 {
		t.Fatalf("R@1 = %v, want 2/3", reports[0].Recall)
	}
	if reports[1].K != 2 {
		t.Fatal("K order wrong")
	}
}

// TestSelectorMatchesTopK drives the streaming selection and the
// sort-based TopK over random rows dense with ties and checks they
// produce identical index lists for every k.
func TestSelectorMatchesTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var sel Selector
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		scores := make([]float64, n)
		for i := range scores {
			// Few distinct values => many ties at every boundary.
			scores[i] = float64(rng.Intn(5)) / 4
		}
		for _, k := range []int{0, 1, 3, n / 2, n, n + 3} {
			want := TopK(scores, k)
			sel.Reset(k)
			for i, v := range scores {
				sel.Push(i, v)
			}
			ids, vals := sel.AppendTo(nil, nil)
			if len(ids) != len(want) {
				t.Fatalf("n=%d k=%d: selector returned %d ids, TopK %d", n, k, len(ids), len(want))
			}
			for r := range want {
				if ids[r] != want[r] {
					t.Fatalf("n=%d k=%d rank %d: selector %v, TopK %v (scores %v)", n, k, r, ids, want, scores)
				}
				if vals[r] != scores[want[r]] {
					t.Fatalf("n=%d k=%d rank %d: score %v, want %v", n, k, r, vals[r], scores[want[r]])
				}
				ri, rv := sel.At(r)
				if ri != want[r] || rv != scores[want[r]] {
					t.Fatalf("At(%d) = (%d, %v), want (%d, %v)", r, ri, rv, want[r], scores[want[r]])
				}
			}
			if sel.Len() != len(want) {
				t.Fatalf("Len = %d, want %d", sel.Len(), len(want))
			}
		}
	}
}

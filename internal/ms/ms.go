// Package ms implements the paper's Medical Support module
// (Section IV-C): given the drugs suggested by the Medical Decision
// module, it extracts the closest dense subgraph of the DDI graph
// around them (via the closest-truss-community search), computes the
// Suggestion Satisfaction measure (Eq. 19) and renders a human-readable
// explanation for doctors.
package ms

import (
	"fmt"
	"sort"
	"strings"

	"dssddi/internal/community"
	"dssddi/internal/graph"
)

// Explanation is the MS module's output for one suggestion.
type Explanation struct {
	// Suggested drugs (the query set Q).
	Suggested []int
	// Subgraph nodes/edges of the closest dense DDI subgraph G_sub.
	Nodes []int
	Edges []ExplainedEdge
	// SS is the Suggestion Satisfaction of Eq. 19.
	SS float64
	// SynergyIn / AntagonismIn count interactions among the suggested
	// drugs; AntagonismOut counts antagonistic edges from suggested to
	// non-suggested subgraph drugs.
	SynergyIn, AntagonismIn, AntagonismOut int
	// Found reports whether any dense subgraph containing the query
	// was found.
	Found bool
}

// ExplainedEdge is one DDI edge of the explanation subgraph.
type ExplainedEdge struct {
	U, V      int
	Sign      graph.Sign
	Suggested bool // both endpoints are suggested drugs
}

// Options tunes the MS module.
type Options struct {
	// Alpha balances the two terms of Eq. 19. The experiments use 0.5.
	Alpha float64
	// MaxExpand caps the community size explored by the subgraph query.
	MaxExpand int
}

// DefaultOptions mirrors the experimental setup.
func DefaultOptions() Options { return Options{Alpha: 0.5, MaxExpand: 20} }

// Explain runs the full MS pipeline for a set of suggested drugs
// against the DDI graph.
func Explain(ddi *graph.Signed, suggested []int, opts Options) Explanation {
	// The closed interval is valid: alpha 0 or 1 weights a single term
	// of Eq. 19 (reachable via dssddi.ExplicitZero). Only values
	// outside [0, 1] fall back to the experiments' default.
	if opts.Alpha < 0 || opts.Alpha > 1 {
		opts.Alpha = 0.5
	}
	ex := Explanation{Suggested: dedupSorted(suggested)}

	skeleton := ddi.Interacting()
	res := community.Search(skeleton, ex.Suggested, community.Options{MaxExpand: opts.MaxExpand})
	ex.Found = res.Found
	ex.Nodes = res.Nodes

	inQuery := make(map[int]bool, len(ex.Suggested))
	for _, q := range ex.Suggested {
		inQuery[q] = true
	}
	for _, e := range res.Edges {
		s, ok := ddi.Edge(e[0], e[1])
		if !ok || s == graph.NoInteraction {
			continue
		}
		ee := ExplainedEdge{U: e[0], V: e[1], Sign: s, Suggested: inQuery[e[0]] && inQuery[e[1]]}
		ex.Edges = append(ex.Edges, ee)
	}
	// Interactions among suggested drugs are counted from the full DDI
	// graph (they may be absent from the community when sparse).
	for i := 0; i < len(ex.Suggested); i++ {
		for j := i + 1; j < len(ex.Suggested); j++ {
			s, ok := ddi.Edge(ex.Suggested[i], ex.Suggested[j])
			if !ok {
				continue
			}
			switch s {
			case graph.Synergy:
				ex.SynergyIn++
			case graph.Antagonism:
				ex.AntagonismIn++
			}
		}
	}
	// Antagonistic edges from suggested to non-suggested subgraph
	// drugs.
	for _, e := range ex.Edges {
		if e.Sign != graph.Antagonism {
			continue
		}
		if inQuery[e.U] != inQuery[e.V] { // exactly one endpoint suggested
			ex.AntagonismOut++
		}
	}
	ex.SS = SuggestionSatisfaction(len(ex.Suggested), len(ex.Nodes),
		ex.SynergyIn, ex.AntagonismIn, ex.AntagonismOut, opts.Alpha)
	return ex
}

// SuggestionSatisfaction computes Eq. 19:
//
//	SS = α·2(r_in_pos+1) / ((r_in_neg+1)(k(k-1)+2)) +
//	     (1-α)·r_out_neg / (k(n'-k))
//
// where k is the number of suggested drugs and n' the community size.
// The second term is 0 when the community adds no extra drugs.
func SuggestionSatisfaction(k, nPrime, rInPos, rInNeg, rOutNeg int, alpha float64) float64 {
	if k <= 0 {
		return 0
	}
	first := alpha * 2 * float64(rInPos+1) /
		(float64(rInNeg+1) * float64(k*(k-1)+2))
	var second float64
	if nPrime > k {
		second = (1 - alpha) * float64(rOutNeg) / float64(k*(nPrime-k))
	}
	return first + second
}

// Render writes a textual explanation, naming drugs when names are
// provided (pass nil to use numeric IDs).
func (ex Explanation) Render(names []string) string {
	nameOf := func(id int) string {
		if names != nil && id < len(names) {
			return fmt.Sprintf("%s (DID %d)", names[id], id)
		}
		return fmt.Sprintf("DID %d", id)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Suggestion:")
	for _, d := range ex.Suggested {
		fmt.Fprintf(&b, " %s", nameOf(d))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "Suggestion Satisfaction: %.4f\n", ex.SS)
	if !ex.Found {
		b.WriteString("No dense DDI subgraph connects the suggested drugs.\n")
		return b.String()
	}
	var syn, ant []string
	for _, e := range ex.Edges {
		line := fmt.Sprintf("%s and %s", nameOf(e.U), nameOf(e.V))
		if e.Sign == graph.Synergy {
			syn = append(syn, line)
		} else {
			ant = append(ant, line)
		}
	}
	if len(syn) > 0 {
		b.WriteString("Synergism:\n")
		for _, s := range syn {
			fmt.Fprintf(&b, "  %s\n", s)
		}
	}
	if len(ant) > 0 {
		b.WriteString("Antagonism:\n")
		for _, s := range ant {
			fmt.Fprintf(&b, "  %s\n", s)
		}
	}
	return b.String()
}

func dedupSorted(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

// MeanSS evaluates the mean Suggestion Satisfaction of top-k
// suggestions across many patients (the SS@k rows of Table III).
// suggestions[j] is the suggestion list for patient j.
func MeanSS(ddi *graph.Signed, suggestions [][]int, opts Options) float64 {
	if len(suggestions) == 0 {
		return 0
	}
	var total float64
	for _, sugg := range suggestions {
		total += Explain(ddi, sugg, opts).SS
	}
	return total / float64(len(suggestions))
}

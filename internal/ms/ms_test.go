package ms

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dssddi/internal/graph"
	"dssddi/internal/synth"
)

// demoGraph wires a small signed DDI graph:
//
//	0 -s- 1   (synergy)
//	0 -a- 2   (antagonism)
//	1 -s- 3, 3 -s- 0 (make {0,1,3} dense-ish)
//	4 isolated
func demoGraph() *graph.Signed {
	g := graph.NewSigned(5)
	g.SetEdge(0, 1, graph.Synergy)
	g.SetEdge(0, 2, graph.Antagonism)
	g.SetEdge(1, 3, graph.Synergy)
	g.SetEdge(0, 3, graph.Synergy)
	return g
}

func TestSuggestionSatisfactionFormula(t *testing.T) {
	// k=2, n'=4, rInPos=1, rInNeg=0, rOutNeg=2, alpha=0.5:
	// first = 0.5 * 2*2 / (1 * (2*1+2)) = 0.5
	// second = 0.5 * 2 / (2*(4-2)) = 0.25
	got := SuggestionSatisfaction(2, 4, 1, 0, 2, 0.5)
	if math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("SS = %v, want 0.75", got)
	}
}

func TestSuggestionSatisfactionEdgeCases(t *testing.T) {
	if SuggestionSatisfaction(0, 4, 1, 0, 1, 0.5) != 0 {
		t.Fatal("k=0 should give 0")
	}
	// No extra community nodes: second term must vanish, not divide by
	// zero.
	got := SuggestionSatisfaction(3, 3, 0, 0, 0, 0.5)
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatal("NaN/Inf for n'=k")
	}
	// Antagonism inside the suggestion lowers SS.
	clean := SuggestionSatisfaction(2, 5, 1, 0, 0, 0.5)
	dirty := SuggestionSatisfaction(2, 5, 1, 1, 0, 0.5)
	if dirty >= clean {
		t.Fatal("internal antagonism must lower SS")
	}
	// Synergy inside the suggestion raises SS.
	if SuggestionSatisfaction(2, 5, 2, 0, 0, 0.5) <= clean {
		t.Fatal("internal synergy must raise SS")
	}
	// Antagonism towards non-suggested drugs raises SS.
	if SuggestionSatisfaction(2, 5, 1, 0, 3, 0.5) <= clean {
		t.Fatal("external antagonism must raise SS")
	}
}

func TestExplainCountsInteractions(t *testing.T) {
	ex := Explain(demoGraph(), []int{0, 1}, DefaultOptions())
	if !ex.Found {
		t.Fatal("expected a subgraph")
	}
	if ex.SynergyIn != 1 {
		t.Fatalf("SynergyIn = %d, want 1 (0-1)", ex.SynergyIn)
	}
	if ex.AntagonismIn != 0 {
		t.Fatalf("AntagonismIn = %d, want 0", ex.AntagonismIn)
	}
	if ex.SS <= 0 {
		t.Fatal("SS should be positive")
	}
}

func TestExplainAntagonisticPair(t *testing.T) {
	good := Explain(demoGraph(), []int{0, 1}, DefaultOptions())
	bad := Explain(demoGraph(), []int{0, 2}, DefaultOptions())
	if bad.AntagonismIn != 1 {
		t.Fatalf("AntagonismIn = %d, want 1", bad.AntagonismIn)
	}
	if bad.SS >= good.SS {
		t.Fatalf("antagonistic pair SS %v should be below synergistic %v", bad.SS, good.SS)
	}
}

func TestExplainIsolatedDrug(t *testing.T) {
	ex := Explain(demoGraph(), []int{4}, DefaultOptions())
	if ex.Found {
		t.Fatal("isolated drug has no dense subgraph")
	}
	if ex.SS < 0 {
		t.Fatal("SS must still be well-defined")
	}
}

func TestExplainDeduplicatesQuery(t *testing.T) {
	ex := Explain(demoGraph(), []int{1, 0, 1, 0}, DefaultOptions())
	if len(ex.Suggested) != 2 || ex.Suggested[0] != 0 || ex.Suggested[1] != 1 {
		t.Fatalf("suggested = %v", ex.Suggested)
	}
}

func TestRenderNamesDrugs(t *testing.T) {
	names := []string{"A", "B", "C", "D", "E"}
	out := Explain(demoGraph(), []int{0, 1}, DefaultOptions()).Render(names)
	if !strings.Contains(out, "A (DID 0)") || !strings.Contains(out, "Suggestion Satisfaction") {
		t.Fatalf("render output missing content:\n%s", out)
	}
	if !strings.Contains(out, "Synergism") {
		t.Fatalf("render should list the synergy edge:\n%s", out)
	}
}

func TestMeanSS(t *testing.T) {
	g := demoGraph()
	mean := MeanSS(g, [][]int{{0, 1}, {0, 2}}, DefaultOptions())
	a := Explain(g, []int{0, 1}, DefaultOptions()).SS
	b := Explain(g, []int{0, 2}, DefaultOptions()).SS
	if math.Abs(mean-(a+b)/2) > 1e-12 {
		t.Fatalf("mean SS %v, want %v", mean, (a+b)/2)
	}
	if MeanSS(g, nil, DefaultOptions()) != 0 {
		t.Fatal("empty suggestion set should give 0")
	}
}

func TestExplainOnCatalogueGraph(t *testing.T) {
	// Integration with the paper-shaped DDI graph: the
	// Simvastatin+Atorvastatin suggestion (Fig. 8a) must produce a
	// subgraph containing the synergy edge between them.
	rng := rand.New(rand.NewSource(1))
	g := synth.GenerateDDI(rng, synth.Catalog(), synth.DefaultDDIOptions())
	ex := Explain(g, []int{46, 47}, DefaultOptions())
	if !ex.Found {
		t.Fatal("statin pair should sit in a dense subgraph")
	}
	if ex.SynergyIn != 1 {
		t.Fatalf("SynergyIn = %d, want 1", ex.SynergyIn)
	}
	// An antagonistic pair from Case 3 scores lower.
	bad := Explain(g, []int{8, 62}, DefaultOptions())
	if bad.SS >= ex.SS {
		t.Fatalf("antagonistic suggestion SS %v >= synergistic %v", bad.SS, ex.SS)
	}
}

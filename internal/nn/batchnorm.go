package nn

import (
	"math"

	"dssddi/internal/ag"
	"dssddi/internal/mat"
)

// BatchNorm normalises each feature column to zero mean and unit
// variance over the batch, then applies a learnable affine transform
// (gamma, beta). Statistics are always computed from the current batch
// — the models here do full-batch training, so train and eval see the
// same statistics.
//
// The backward pass treats the batch statistics as constants, i.e. this
// is the "frozen statistics" approximation. For full-batch graph
// training this is a standard and stable simplification; gradient flow
// through mean/variance mainly matters for small minibatches.
type BatchNorm struct {
	Gamma *mat.Dense
	Beta  *mat.Dense
	Eps   float64

	// Retained batch-statistics buffers: the layer recomputes them
	// every call but reuses the storage, so a steady-state epoch on a
	// retained tape allocates nothing here. The shift/scale matrices
	// keep stable identities, which is what lets the tape reuse the
	// Const nodes wrapping them.
	mean, invStd []float64
	shift, scale *mat.Dense
	idx          []int
}

// NewBatchNorm creates a BatchNorm over d features.
func NewBatchNorm(ps *Params, d int) *BatchNorm {
	g := mat.New(1, d)
	g.Fill(1)
	return &BatchNorm{
		Gamma: ps.Register(g),
		Beta:  ps.Register(mat.New(1, d)),
		Eps:   1e-5,
	}
}

// stats refreshes the retained mean/invStd/shift/scale buffers from the
// current batch x (n x d).
func (bn *BatchNorm) stats(x *mat.Dense) {
	n, d := x.Rows(), x.Cols()
	if len(bn.mean) != d {
		bn.mean = make([]float64, d)
		bn.invStd = make([]float64, d)
		bn.shift = mat.New(1, d)
	}
	mean, invStd := bn.mean, bn.invStd
	for j := range mean {
		mean[j] = 0
		invStd[j] = 0
	}
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j, v := range row {
			dv := v - mean[j]
			invStd[j] += dv * dv
		}
	}
	for j := range invStd {
		invStd[j] = 1 / math.Sqrt(invStd[j]/float64(n)+bn.Eps)
	}
	for j := 0; j < d; j++ {
		bn.shift.Set(0, j, -mean[j])
	}
	if bn.scale == nil || bn.scale.Rows() != n {
		bn.scale = mat.New(n, d)
		bn.idx = make([]int, n)
	}
	mat.RepRowInto(bn.scale, invStd)
}

// Apply normalises x (n x d) column-wise and applies the affine
// transform on the tape.
func (bn *BatchNorm) Apply(t *ag.Tape, x *ag.Node) *ag.Node {
	n := x.Rows()
	if n == 0 {
		return x
	}
	bn.stats(x.Value)

	// Normalisation as constant shift+scale: xhat = (x - mean) * invStd.
	xhat := t.Hadamard(t.AddBias(x, t.Const(bn.shift)), t.Const(bn.scale))

	// Affine: gamma broadcast-multiplied per column, then + beta.
	// To keep gamma trainable we multiply via a broadcasted parameter:
	// out = xhat .* rowrep(gamma) + beta. Implemented with GatherRows so
	// the gradient flows back into the single gamma row.
	gammaNode := t.GatherRows(t.Param(bn.Gamma), bn.idx) // all rows = row 0
	return t.AddBias(t.Hadamard(xhat, gammaNode), t.Param(bn.Beta))
}

// Forward is the tape-free inference path: it computes exactly the
// same values as Apply (same operation order, bitwise identical)
// without building graph nodes. Unlike Apply — which, like the tape
// it feeds, is single-goroutine by design — Forward keeps its batch
// statistics on the stack, so concurrent inference calls are safe and
// the retained training buffers are never touched.
func (bn *BatchNorm) Forward(x *mat.Dense) *mat.Dense {
	n, d := x.Rows(), x.Cols()
	if n == 0 {
		return x
	}
	mean := make([]float64, d)
	invStd := make([]float64, d)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j, v := range row {
			dv := v - mean[j]
			invStd[j] += dv * dv
		}
	}
	for j := range invStd {
		invStd[j] = 1 / math.Sqrt(invStd[j]/float64(n)+bn.Eps)
	}
	out := mat.New(n, d)
	grow := bn.Gamma.Row(0)
	brow := bn.Beta.Row(0)
	for i := 0; i < n; i++ {
		xrow := x.Row(i)
		orow := out.Row(i)
		for j, v := range xrow {
			orow[j] = (v+(-mean[j]))*invStd[j]*grow[j] + brow[j]
		}
	}
	return out
}

package nn

import (
	"math"

	"dssddi/internal/ag"
	"dssddi/internal/mat"
)

// BatchNorm normalises each feature column to zero mean and unit
// variance over the batch, then applies a learnable affine transform
// (gamma, beta). Statistics are always computed from the current batch
// — the models here do full-batch training, so train and eval see the
// same statistics.
//
// The backward pass treats the batch statistics as constants, i.e. this
// is the "frozen statistics" approximation. For full-batch graph
// training this is a standard and stable simplification; gradient flow
// through mean/variance mainly matters for small minibatches.
type BatchNorm struct {
	Gamma *mat.Dense
	Beta  *mat.Dense
	Eps   float64
}

// NewBatchNorm creates a BatchNorm over d features.
func NewBatchNorm(ps *Params, d int) *BatchNorm {
	g := mat.New(1, d)
	g.Fill(1)
	return &BatchNorm{
		Gamma: ps.Register(g),
		Beta:  ps.Register(mat.New(1, d)),
		Eps:   1e-5,
	}
}

// Apply normalises x (n x d) column-wise and applies the affine
// transform on the tape.
func (bn *BatchNorm) Apply(t *ag.Tape, x *ag.Node) *ag.Node {
	n, d := x.Rows(), x.Cols()
	if n == 0 {
		return x
	}
	mean := make([]float64, d)
	for i := 0; i < n; i++ {
		row := x.Value.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	invStd := make([]float64, d)
	for i := 0; i < n; i++ {
		row := x.Value.Row(i)
		for j, v := range row {
			dv := v - mean[j]
			invStd[j] += dv * dv
		}
	}
	for j := range invStd {
		invStd[j] = 1 / math.Sqrt(invStd[j]/float64(n)+bn.Eps)
	}

	// Normalisation as constant shift+scale: xhat = (x - mean) * invStd.
	// The scale matrix is a row replication, built with the parallel
	// RepRow kernel.
	shift := mat.New(1, d)
	for j := 0; j < d; j++ {
		shift.Set(0, j, -mean[j])
	}
	scale := mat.RepRow(invStd, n)
	xhat := t.Hadamard(t.AddBias(x, t.Const(shift)), t.Const(scale))

	// Affine: gamma broadcast-multiplied per column, then + beta.
	// To keep gamma trainable we multiply via a broadcasted parameter:
	// out = xhat .* rowrep(gamma) + beta. Implemented with GatherRows so
	// the gradient flows back into the single gamma row.
	idx := make([]int, n)
	gammaNode := t.GatherRows(t.Param(bn.Gamma), idx) // all rows = row 0
	return t.AddBias(t.Hadamard(xhat, gammaNode), t.Param(bn.Beta))
}

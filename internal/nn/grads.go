package nn

import (
	"dssddi/internal/ag"
	"dssddi/internal/mat"
)

// CollectGrads returns, for every registered parameter in ps, the
// gradient accumulated on the given tape (nil where a parameter was not
// touched). The result aligns index-for-index with ps.All(), ready to
// hand to an optimizer Step.
func CollectGrads(tape *ag.Tape, ps *Params) []*mat.Dense {
	grads := make([]*mat.Dense, len(ps.All()))
	CollectGradsInto(grads, tape, ps)
	return grads
}

// CollectGradsInto is CollectGrads into a caller-retained slice, so a
// steady-state training epoch performs no allocation here. dst must
// have len(ps.All()) entries.
func CollectGradsInto(dst []*mat.Dense, tape *ag.Tape, ps *Params) {
	if len(dst) != len(ps.All()) {
		panic("nn: CollectGradsInto length mismatch")
	}
	for i, p := range ps.All() {
		dst[i] = tape.Grad(p)
	}
}

package nn

import (
	"dssddi/internal/ag"
	"dssddi/internal/mat"
)

// CollectGrads returns, for every registered parameter in ps, the
// gradient accumulated on the given tape (nil where a parameter was not
// touched). The result aligns index-for-index with ps.All(), ready to
// hand to an optimizer Step.
func CollectGrads(tape *ag.Tape, ps *Params) []*mat.Dense {
	grads := make([]*mat.Dense, len(ps.All()))
	for i, p := range ps.All() {
		grads[i] = tape.Grad(p)
	}
	return grads
}

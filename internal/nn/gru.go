package nn

import (
	"math/rand"

	"dssddi/internal/ag"
	"dssddi/internal/mat"
)

// GRUCell is a gated recurrent unit used by the SafeDrug baseline to
// encode a patient's visit sequence:
//
//	z = σ(x Wz + h Uz + bz)
//	r = σ(x Wr + h Ur + br)
//	ĥ = tanh(x Wh + (r⊙h) Uh + bh)
//	h' = (1-z)⊙h + z⊙ĥ
type GRUCell struct {
	Wz, Uz, Bz *mat.Dense
	Wr, Ur, Br *mat.Dense
	Wh, Uh, Bh *mat.Dense
	Hidden     int
}

// NewGRUCell creates a GRU cell mapping in-dim inputs to hidden-dim
// states.
func NewGRUCell(rng *rand.Rand, ps *Params, in, hidden int) *GRUCell {
	return &GRUCell{
		Wz:     ps.Register(mat.GlorotUniform(rng, in, hidden)),
		Uz:     ps.Register(mat.GlorotUniform(rng, hidden, hidden)),
		Bz:     ps.Register(mat.New(1, hidden)),
		Wr:     ps.Register(mat.GlorotUniform(rng, in, hidden)),
		Ur:     ps.Register(mat.GlorotUniform(rng, hidden, hidden)),
		Br:     ps.Register(mat.New(1, hidden)),
		Wh:     ps.Register(mat.GlorotUniform(rng, in, hidden)),
		Uh:     ps.Register(mat.GlorotUniform(rng, hidden, hidden)),
		Bh:     ps.Register(mat.New(1, hidden)),
		Hidden: hidden,
	}
}

// Step advances the cell one time step: given input x (n x in) and
// previous state h (n x hidden), it returns the next state.
func (g *GRUCell) Step(t *ag.Tape, x, h *ag.Node) *ag.Node {
	z := t.Sigmoid(t.AddBias(t.Add(t.MatMul(x, t.Param(g.Wz)), t.MatMul(h, t.Param(g.Uz))), t.Param(g.Bz)))
	r := t.Sigmoid(t.AddBias(t.Add(t.MatMul(x, t.Param(g.Wr)), t.MatMul(h, t.Param(g.Ur))), t.Param(g.Br)))
	rh := t.Hadamard(r, h)
	hhat := t.Tanh(t.AddBias(t.Add(t.MatMul(x, t.Param(g.Wh)), t.MatMul(rh, t.Param(g.Uh))), t.Param(g.Bh)))
	// h' = h - z⊙h + z⊙ĥ
	return t.Add(t.Sub(h, t.Hadamard(z, h)), t.Hadamard(z, hhat))
}

// Run unrolls the cell over a sequence of inputs (each n x in), starting
// from a zero state, and returns the final state.
func (g *GRUCell) Run(t *ag.Tape, xs []*ag.Node) *ag.Node {
	if len(xs) == 0 {
		panic("nn: GRU Run needs at least one step")
	}
	h := t.Const(mat.New(xs[0].Rows(), g.Hidden))
	for _, x := range xs {
		h = g.Step(t, x, h)
	}
	return h
}

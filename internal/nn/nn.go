// Package nn provides neural-network layers built on the ag autodiff
// tape: linear layers, multi-layer perceptrons, batch normalisation,
// embeddings and a GRU cell. Layers own their parameters; a Params
// registry collects them for the optimizer.
package nn

import (
	"math"
	"math/rand"

	"dssddi/internal/ag"
	"dssddi/internal/mat"
)

// Params is an ordered registry of trainable parameter matrices.
// Layers register their weights here so the optimizer can step them.
type Params struct {
	list []*mat.Dense
}

// Register adds p to the registry and returns it.
func (ps *Params) Register(p *mat.Dense) *mat.Dense {
	ps.list = append(ps.list, p)
	return p
}

// All returns the registered parameters in registration order.
func (ps *Params) All() []*mat.Dense { return ps.list }

// Count returns the total number of scalar parameters.
func (ps *Params) Count() int {
	var n int
	for _, p := range ps.list {
		n += p.Rows() * p.Cols()
	}
	return n
}

// Activation selects the nonlinearity applied by MLP hidden layers.
type Activation int

// Supported activations.
const (
	ActReLU Activation = iota
	ActLeakyReLU
	ActTanh
	ActSigmoid
	ActNone
)

func applyActivation(t *ag.Tape, x *ag.Node, a Activation) *ag.Node {
	switch a {
	case ActReLU:
		return t.ReLU(x)
	case ActLeakyReLU:
		return t.LeakyReLU(x, 0.01)
	case ActTanh:
		return t.Tanh(x)
	case ActSigmoid:
		return t.Sigmoid(x)
	default:
		return x
	}
}

// reluScalar and leakyReLUScalar are the shared element formulas of
// the ReLU activations; the batched and row-level forward paths both
// use them, so the two stay bitwise identical by construction.
func reluScalar(v float64) float64 {
	if v > 0 {
		return v
	}
	return 0
}

func leakyReLUScalar(v float64) float64 {
	if v > 0 {
		return v
	}
	return 0.01 * v
}

// ForwardActivation applies the activation in place on a plain matrix —
// the tape-free counterpart of applyActivation, with element formulas
// identical to the tape ops.
func ForwardActivation(x *mat.Dense, a Activation) *mat.Dense {
	switch a {
	case ActReLU:
		x.ApplyInPlace(reluScalar)
	case ActLeakyReLU:
		x.ApplyInPlace(leakyReLUScalar)
	case ActTanh:
		x.ApplyInPlace(math.Tanh)
	case ActSigmoid:
		x.ApplyInPlace(mat.Sigmoid)
	}
	return x
}

// ActivateScalar applies a's element formula to one value.
func ActivateScalar(a Activation, v float64) float64 {
	switch a {
	case ActReLU:
		return reluScalar(v)
	case ActLeakyReLU:
		return leakyReLUScalar(v)
	case ActTanh:
		return math.Tanh(v)
	case ActSigmoid:
		return mat.Sigmoid(v)
	default:
		return v
	}
}

// ActivateRow applies a in place on a plain row — the row-level form
// of ForwardActivation, same element formulas, no kernel dispatch.
func ActivateRow(a Activation, xs []float64) {
	switch a {
	case ActReLU:
		for i, v := range xs {
			xs[i] = reluScalar(v)
		}
	case ActLeakyReLU:
		for i, v := range xs {
			xs[i] = leakyReLUScalar(v)
		}
	case ActTanh:
		for i, v := range xs {
			xs[i] = math.Tanh(v)
		}
	case ActSigmoid:
		for i, v := range xs {
			xs[i] = mat.Sigmoid(v)
		}
	}
}

// Linear is a fully connected layer y = x*W + b.
type Linear struct {
	W *mat.Dense
	B *mat.Dense
}

// NewLinear creates a Glorot-initialised linear layer and registers its
// parameters.
func NewLinear(rng *rand.Rand, ps *Params, in, out int) *Linear {
	return &Linear{
		W: ps.Register(mat.GlorotUniform(rng, in, out)),
		B: ps.Register(mat.New(1, out)),
	}
}

// Apply runs the layer on the tape.
func (l *Linear) Apply(t *ag.Tape, x *ag.Node) *ag.Node {
	return t.AddBias(t.MatMul(x, t.Param(l.W)), t.Param(l.B))
}

// Forward is the tape-free inference path: same kernels and operation
// order as Apply (bitwise identical values), no graph nodes.
func (l *Linear) Forward(x *mat.Dense) *mat.Dense {
	out := mat.MatMul(x, l.W)
	mat.AddRowInto(out, out, l.B.Row(0))
	return out
}

// MLP is a stack of linear layers with a shared hidden activation. The
// output layer is linear (no activation) unless OutAct is set.
type MLP struct {
	Layers []*Linear
	Act    Activation
	OutAct Activation
	Norms  []*BatchNorm // optional, one per hidden layer when UseNorm
}

// NewMLP builds an MLP with the given layer sizes, e.g. sizes =
// [in, hidden, out]. When useNorm is true a BatchNorm follows every
// hidden linear layer (the paper's DDIGCN applies BatchNorm+ReLU after
// each graph convolution).
func NewMLP(rng *rand.Rand, ps *Params, sizes []int, act Activation, useNorm bool) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least [in, out] sizes")
	}
	m := &MLP{Act: act, OutAct: ActNone}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewLinear(rng, ps, sizes[i], sizes[i+1]))
		if useNorm && i+2 < len(sizes) {
			m.Norms = append(m.Norms, NewBatchNorm(ps, sizes[i+1]))
		} else {
			m.Norms = append(m.Norms, nil)
		}
	}
	return m
}

// Apply runs the MLP on the tape.
func (m *MLP) Apply(t *ag.Tape, x *ag.Node) *ag.Node {
	h := x
	for i, l := range m.Layers {
		h = l.Apply(t, h)
		last := i == len(m.Layers)-1
		if !last {
			if m.Norms[i] != nil {
				h = m.Norms[i].Apply(t, h)
			}
			h = applyActivation(t, h, m.Act)
		} else {
			h = applyActivation(t, h, m.OutAct)
		}
	}
	return h
}

// Forward is the tape-free inference path of the MLP: bitwise identical
// to Apply's values, no graph nodes or backward machinery.
func (m *MLP) Forward(x *mat.Dense) *mat.Dense {
	h := x
	for i, l := range m.Layers {
		h = l.Forward(h)
		last := i == len(m.Layers)-1
		if !last {
			if m.Norms[i] != nil {
				h = m.Norms[i].Forward(h)
			}
			h = ForwardActivation(h, m.Act)
		} else {
			h = ForwardActivation(h, m.OutAct)
		}
	}
	return h
}

// MaxWidth returns the widest layer output — the scratch size
// ForwardRow needs.
func (m *MLP) MaxWidth() int {
	var w int
	for _, l := range m.Layers {
		if c := l.W.Cols(); c > w {
			w = c
		}
	}
	return w
}

// OutDim returns the output width of the final layer.
func (m *MLP) OutDim() int { return m.Layers[len(m.Layers)-1].W.Cols() }

// InDim returns the input width of the first layer.
func (m *MLP) InDim() int { return m.Layers[0].W.Rows() }

// ForwardRow runs the MLP on a single input row without allocating:
// dst receives the output (length OutDim), buf1 and buf2 are
// ping-pong scratch of at least MaxWidth. Values are bitwise
// identical to the corresponding row of Forward — every step uses the
// same element formulas and the same per-row accumulation order as
// the batched kernels. BatchNorm MLPs are not row-decomposable and
// panic.
func (m *MLP) ForwardRow(dst, x, buf1, buf2 []float64) {
	cur := x
	for i, l := range m.Layers {
		if m.Norms[i] != nil {
			panic("nn: ForwardRow does not support BatchNorm layers")
		}
		last := i == len(m.Layers)-1
		var out []float64
		switch {
		case last:
			out = dst[:l.W.Cols()]
		case i%2 == 0:
			out = buf1[:l.W.Cols()]
		default:
			out = buf2[:l.W.Cols()]
		}
		mat.MulRowInto(out, cur, l.W)
		brow := l.B.Row(0)
		for j := range out {
			out[j] += brow[j]
		}
		if last {
			ActivateRow(m.OutAct, out)
		} else {
			ActivateRow(m.Act, out)
		}
		cur = out
	}
}

// Embedding is a lookup table of n vectors of dimension d.
type Embedding struct {
	Table *mat.Dense
}

// NewEmbedding creates an n x d embedding table with N(0, 0.1²) init.
func NewEmbedding(rng *rand.Rand, ps *Params, n, d int) *Embedding {
	return &Embedding{Table: ps.Register(mat.RandNormal(rng, n, d, 0.1))}
}

// Lookup gathers the rows for ids.
func (e *Embedding) Lookup(t *ag.Tape, ids []int) *ag.Node {
	return t.GatherRows(t.Param(e.Table), ids)
}

// Full returns the whole table as a node.
func (e *Embedding) Full(t *ag.Tape) *ag.Node { return t.Param(e.Table) }

package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"dssddi/internal/ag"
	"dssddi/internal/mat"
	"dssddi/internal/optim"
)

func TestParamsRegistry(t *testing.T) {
	var ps Params
	rng := rand.New(rand.NewSource(1))
	NewLinear(rng, &ps, 3, 4)
	if len(ps.All()) != 2 {
		t.Fatalf("linear should register W and B, got %d", len(ps.All()))
	}
	if ps.Count() != 3*4+4 {
		t.Fatalf("Count=%d, want 16", ps.Count())
	}
}

func TestLinearShapes(t *testing.T) {
	var ps Params
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(rng, &ps, 3, 5)
	tape := ag.NewTape()
	x := tape.Const(mat.RandNormal(rng, 7, 3, 1))
	y := l.Apply(tape, x)
	if y.Rows() != 7 || y.Cols() != 5 {
		t.Fatalf("linear output %dx%d, want 7x5", y.Rows(), y.Cols())
	}
}

func TestMLPForwardShapes(t *testing.T) {
	var ps Params
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, &ps, []int{4, 8, 8, 2}, ActReLU, true)
	tape := ag.NewTape()
	x := tape.Const(mat.RandNormal(rng, 5, 4, 1))
	y := m.Apply(tape, x)
	if y.Rows() != 5 || y.Cols() != 2 {
		t.Fatalf("MLP output %dx%d, want 5x2", y.Rows(), y.Cols())
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	// End-to-end training test: a 2-layer MLP must fit XOR, which a
	// linear model cannot. Exercises the full tape/optim stack.
	rng := rand.New(rand.NewSource(4))
	var ps Params
	m := NewMLP(rng, &ps, []int{2, 8, 1}, ActTanh, false)
	x := mat.FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	y := mat.FromRows([][]float64{{0}, {1}, {1}, {0}})
	opt := optim.NewAdam(0.05)
	var loss float64
	for epoch := 0; epoch < 500; epoch++ {
		tape := ag.NewTape()
		out := m.Apply(tape, tape.Const(x))
		l := tape.BCEWithLogits(out, y)
		tape.Backward(l)
		loss = l.Value.At(0, 0)
		grads := gradsFor(tape, &ps)
		opt.Step(ps.All(), grads)
	}
	if loss > 0.1 {
		t.Fatalf("MLP failed to fit XOR, final loss %v", loss)
	}
}

// gradsFor extracts the gradient of each registered parameter from the
// most recent tape. Parameters are matched by identity of the value
// matrix; test-local helper mirroring what trainers do.
func gradsFor(tape *ag.Tape, ps *Params) []*mat.Dense {
	// The tape stores nodes in creation order; parameters wrapped with
	// tape.Param(p) share the backing *mat.Dense. Collect the gradient
	// by re-wrapping: since Param always creates a new node per call,
	// walk the param list and find grads via a map.
	return CollectGrads(tape, ps)
}

func TestBatchNormNormalises(t *testing.T) {
	var ps Params
	bn := NewBatchNorm(&ps, 3)
	rng := rand.New(rand.NewSource(5))
	x := mat.RandNormal(rng, 50, 3, 4)
	// Shift columns so raw means are far from zero.
	for i := 0; i < 50; i++ {
		x.Row(i)[1] += 10
	}
	tape := ag.NewTape()
	y := bn.Apply(tape, tape.Const(x))
	for j := 0; j < 3; j++ {
		var mean, varr float64
		for i := 0; i < 50; i++ {
			mean += y.Value.At(i, j)
		}
		mean /= 50
		for i := 0; i < 50; i++ {
			d := y.Value.At(i, j) - mean
			varr += d * d
		}
		varr /= 50
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("col %d mean %v, want ~0", j, mean)
		}
		if math.Abs(varr-1) > 1e-2 {
			t.Fatalf("col %d var %v, want ~1", j, varr)
		}
	}
}

func TestBatchNormGammaBetaTrainable(t *testing.T) {
	var ps Params
	bn := NewBatchNorm(&ps, 2)
	rng := rand.New(rand.NewSource(6))
	x := mat.RandNormal(rng, 10, 2, 1)
	tape := ag.NewTape()
	y := bn.Apply(tape, tape.Const(x))
	l := tape.Mean(y)
	tape.Backward(l)
	grads := CollectGrads(tape, &ps)
	if grads[0] == nil && grads[1] == nil {
		t.Fatal("expected gradients on gamma/beta")
	}
	// Beta's gradient for mean loss is 1/n per column-sum contribution.
	if grads[1] == nil || grads[1].MaxAbs() == 0 {
		t.Fatal("beta should receive gradient")
	}
}

func TestEmbeddingLookup(t *testing.T) {
	var ps Params
	rng := rand.New(rand.NewSource(7))
	e := NewEmbedding(rng, &ps, 5, 3)
	tape := ag.NewTape()
	out := e.Lookup(tape, []int{4, 0})
	if out.Rows() != 2 || out.Cols() != 3 {
		t.Fatalf("lookup shape %dx%d", out.Rows(), out.Cols())
	}
	for j := 0; j < 3; j++ {
		if out.Value.At(0, j) != e.Table.At(4, j) {
			t.Fatal("lookup row mismatch")
		}
	}
}

func TestGRUStepShapesAndRange(t *testing.T) {
	var ps Params
	rng := rand.New(rand.NewSource(8))
	g := NewGRUCell(rng, &ps, 4, 6)
	tape := ag.NewTape()
	x1 := tape.Const(mat.RandNormal(rng, 3, 4, 1))
	x2 := tape.Const(mat.RandNormal(rng, 3, 4, 1))
	h := g.Run(tape, []*ag.Node{x1, x2})
	if h.Rows() != 3 || h.Cols() != 6 {
		t.Fatalf("GRU state %dx%d, want 3x6", h.Rows(), h.Cols())
	}
	// GRU state is a convex-ish combination of tanh values: |h| <= 1.
	for _, v := range h.Value.Data() {
		if math.Abs(v) > 1 {
			t.Fatalf("GRU state value %v outside [-1,1]", v)
		}
	}
}

func TestGRULearnsSequenceSignal(t *testing.T) {
	// The label is determined by the FIRST input of a 3-step sequence;
	// the GRU must carry the information through time.
	rng := rand.New(rand.NewSource(9))
	var ps Params
	g := NewGRUCell(rng, &ps, 1, 8)
	readout := NewLinear(rng, &ps, 8, 1)
	n := 32
	first := mat.New(n, 1)
	labels := mat.New(n, 1)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.5 {
			first.Set(i, 0, 1)
			labels.Set(i, 0, 1)
		} else {
			first.Set(i, 0, -1)
		}
	}
	noise1 := mat.RandNormal(rng, n, 1, 0.1)
	noise2 := mat.RandNormal(rng, n, 1, 0.1)
	opt := optim.NewAdam(0.03)
	var loss float64
	for epoch := 0; epoch < 300; epoch++ {
		tape := ag.NewTape()
		h := g.Run(tape, []*ag.Node{tape.Const(first), tape.Const(noise1), tape.Const(noise2)})
		logits := readout.Apply(tape, h)
		l := tape.BCEWithLogits(logits, labels)
		tape.Backward(l)
		loss = l.Value.At(0, 0)
		opt.Step(ps.All(), CollectGrads(tape, &ps))
	}
	if loss > 0.2 {
		t.Fatalf("GRU failed to learn first-step signal, loss %v", loss)
	}
}

func TestBatchNormForwardConcurrent(t *testing.T) {
	var ps Params
	bn := NewBatchNorm(&ps, 6)
	rng := rand.New(rand.NewSource(17))
	x := mat.RandNormal(rng, 12, 6, 1)
	want := bn.Forward(x)

	// Forward keeps its statistics call-local, so concurrent inference
	// over the same layer must be race-free and deterministic (run
	// under -race in CI).
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				got := bn.Forward(x)
				for i, v := range got.Data() {
					if v != want.Data()[i] {
						t.Errorf("concurrent Forward diverged at %d: %v != %v", i, v, want.Data()[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

package nn

import "dssddi/internal/mat"

// PairDecoder is the fused pair-decode kernel of the scoring engine:
// it evaluates a two-layer MLP decoder over inputs of the form
// concat(a⊙b, t) — the paper's MLP([h_i ⊙ h'_v, T_iv]) — one pair at
// a time, without materializing the gathered-row, Hadamard or
// concatenated matrices the batched path builds.
//
// Layer 1 is linear over the concatenation, so its weight matrix
// splits by input row into the interaction block W_inter (rows 0..d-1)
// and the treatment row w_t (row d); the fused evaluation computes
// (a⊙b)·W_inter + t·w_t + b1 directly from the operand rows. The
// accumulation runs through mat.MulRowInto over a d+1 scratch row, so
// every output is bitwise identical to the batched
// MatMul/AddRow/activation pipeline for any worker count.
//
// The decoder holds references to the MLP's live weight matrices (not
// copies), so it stays valid across optimizer steps.
type PairDecoder struct {
	w1     *mat.Dense // (d+1) x h — W_inter stacked on w_t
	b1     []float64  // layer-1 bias row
	w2     *mat.Dense // h x 1
	b2     []float64  // layer-2 bias row (length 1)
	act    Activation
	outAct Activation
	d, h   int
}

// NewPairDecoder builds the fused kernel for a decoder MLP. It
// supports the MD decoder shape — exactly two plain linear layers
// (no BatchNorm) ending in a scalar — and reports ok=false for
// anything else, letting callers fall back to the batched path.
func NewPairDecoder(m *MLP) (*PairDecoder, bool) {
	if m == nil || len(m.Layers) != 2 {
		return nil, false
	}
	for _, bn := range m.Norms {
		if bn != nil {
			return nil, false
		}
	}
	l1, l2 := m.Layers[0], m.Layers[1]
	if l2.W.Cols() != 1 || l1.W.Rows() < 2 || l1.W.Cols() != l2.W.Rows() {
		return nil, false
	}
	return &PairDecoder{
		w1:     l1.W,
		b1:     l1.B.Row(0),
		w2:     l2.W,
		b2:     l2.B.Row(0),
		act:    m.Act,
		outAct: m.OutAct,
		d:      l1.W.Rows() - 1,
		h:      l1.W.Cols(),
	}, true
}

// Dims returns the interaction width d and the hidden width h; scratch
// for Logit needs d+1 and h elements.
func (p *PairDecoder) Dims() (d, h int) { return p.d, p.h }

// Bytes returns the resident size of the referenced decoder weights —
// the f64 term of the serving memory accounting, comparable with
// PairDecoder32.Bytes.
func (p *PairDecoder) Bytes() int {
	return 8 * ((p.d+1)*p.h + len(p.b1) + p.h + len(p.b2))
}

// Logit scores one (a, b, t) pair: the decoder output for
// concat(a⊙b, t). inter (length ≥ d+1) and hid (length ≥ h) are
// caller-owned scratch, clobbered on every call; nothing is retained
// and nothing allocates, so one scratch pair serves any number of
// sequential calls.
func (p *PairDecoder) Logit(a, b []float64, t float64, inter, hid []float64) float64 {
	inter = inter[:p.d+1]
	mat.HadamardRowInto(inter[:p.d], a[:p.d], b[:p.d])
	inter[p.d] = t

	hid = hid[:p.h]
	mat.MulRowInto(hid, inter, p.w1)
	if p.act == ActLeakyReLU {
		// One fused, branch-free pass over the hidden row; identical
		// element formulas to the separate bias add + activation.
		mat.AddBiasLeakyInto(hid, p.b1, 0.01)
	} else {
		for j := range hid {
			hid[j] += p.b1[j]
		}
		ActivateRow(p.act, hid)
	}

	out := inter[:1] // layer-1 input is dead; reuse its scratch
	mat.MulRowInto(out, hid, p.w2)
	return ActivateScalar(p.outAct, out[0]+p.b2[0])
}

package nn

import "dssddi/internal/mat"

// PairDecoder32 is the float32 serving twin of PairDecoder: the same
// fused evaluation of the two-layer decoder over concat(a⊙b, t), run
// entirely in float32 through the eight-lane vector kernels. Unlike
// PairDecoder it owns converted copies of the weights (the f64
// matrices stay the accuracy oracle), built deterministically by
// rounding each f64 parameter to the nearest float32 — so a given
// snapshot always derives the same f32 decoder, and its divergence
// from the f64 oracle comes only from f32 arithmetic, never from the
// conversion.
type PairDecoder32 struct {
	w1     *mat.Dense32 // (d+1) x h — W_inter stacked on w_t
	b1     []float32    // layer-1 bias row
	w2col  []float32    // h x 1 output layer as a column vector
	b2     float32      // layer-2 bias
	act    Activation
	outAct Activation
	d, h   int
}

// NewPairDecoder32 derives the float32 twin of a fused decoder.
func NewPairDecoder32(p *PairDecoder) *PairDecoder32 {
	w2col := make([]float32, p.h)
	for j := 0; j < p.h; j++ {
		w2col[j] = float32(p.w2.At(j, 0))
	}
	return &PairDecoder32{
		w1:     mat.Dense32From(p.w1),
		b1:     mat.Floats32(p.b1),
		w2col:  w2col,
		b2:     float32(p.b2[0]),
		act:    p.act,
		outAct: p.outAct,
		d:      p.d,
		h:      p.h,
	}
}

// Dims returns the interaction width d and the hidden width h; scratch
// for Logit needs h elements (the fused projection never materializes
// the d+1 interaction row).
func (p *PairDecoder32) Dims() (d, h int) { return p.d, p.h }

// Bytes returns the resident size of the converted weights — the f32
// decoder's contribution to the serving memory accounting.
func (p *PairDecoder32) Bytes() int {
	return p.w1.Bytes() + 4*len(p.b1) + 4*len(p.w2col) + 4
}

// Logit scores one (a, b, t) pair in float32: the decoder output for
// concat(a⊙b, t), returned widened to float64 so callers can rank and
// sigmoid it alongside the f64 path. hid (length ≥ h) is caller-owned
// scratch, clobbered on every call; nothing is retained and nothing
// allocates. The layer-1 input projection is fused
// (mat.MulRowHadamardInto32), so no d+1 interaction row exists at all.
func (p *PairDecoder32) Logit(a, b []float32, t float32, hid []float32) float64 {
	hid = hid[:p.h]
	mat.MulRowHadamardInto32(hid, a[:p.d], b[:p.d], t, p.w1)
	if p.act == ActLeakyReLU {
		mat.AddBiasLeakyInto32(hid, p.b1, 0.01)
	} else {
		for j := range hid {
			hid[j] += p.b1[j]
		}
		p.activateRow32(hid)
	}
	out := mat.Dot32(hid, p.w2col) + p.b2
	return ActivateScalar(p.outAct, float64(out))
}

// activateRow32 applies the hidden activation in place on a float32
// row, with the f32 analogue of ActivateRow's element formulas.
func (p *PairDecoder32) activateRow32(xs []float32) {
	switch p.act {
	case ActReLU:
		for i, v := range xs {
			if v <= 0 {
				xs[i] = 0
			}
		}
	case ActLeakyReLU:
		for i, v := range xs {
			if v <= 0 {
				xs[i] = 0.01 * v
			}
		}
	default:
		for i, v := range xs {
			xs[i] = float32(ActivateScalar(p.act, float64(v)))
		}
	}
}

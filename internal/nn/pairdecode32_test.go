package nn

import (
	"math"
	"math/rand"
	"testing"

	"dssddi/internal/mat"
)

// TestPairDecoder32TracksOracle checks the f32 fused pair decode
// against the f64 oracle across activations: with O(1) weights and
// inputs the two paths must agree to a few ulps of float32 — the same
// tolerance the serving divergence gate enforces end to end.
func TestPairDecoder32TracksOracle(t *testing.T) {
	for _, act := range []Activation{ActLeakyReLU, ActReLU, ActTanh, ActSigmoid} {
		rng := rand.New(rand.NewSource(5))
		const d, h, pairs = 23, 16, 200
		var ps Params
		mlp := NewMLP(rng, &ps, []int{d + 1, h, 1}, act, false)
		pd, ok := NewPairDecoder(mlp)
		if !ok {
			t.Fatal("decoder-shaped MLP rejected")
		}
		pd32 := NewPairDecoder32(pd)
		if gd, gh := pd32.Dims(); gd != d || gh != h {
			t.Fatalf("Dims = (%d, %d), want (%d, %d)", gd, gh, d, h)
		}
		if pd32.Bytes() != (d+1)*h*4+h*4+h*4+4 {
			t.Fatalf("Bytes = %d", pd32.Bytes())
		}

		ha := mat.RandNormal(rng, 9, d, 1)
		hb := mat.RandNormal(rng, 11, d, 1)
		inter := make([]float64, d+1)
		hid := make([]float64, h)
		hid32 := make([]float32, h)
		var maxDelta float64
		for i := 0; i < pairs; i++ {
			a64 := ha.Row(rng.Intn(ha.Rows()))
			b64 := hb.Row(rng.Intn(hb.Rows()))
			tv := float64(rng.Intn(2))
			want := pd.Logit(a64, b64, tv, inter, hid)
			got := pd32.Logit(mat.Floats32(a64), mat.Floats32(b64), float32(tv), hid32)
			if d := math.Abs(got - want); d > maxDelta {
				maxDelta = d
			}
		}
		// d=23/h=16 sums of O(1) terms: f32 rounding keeps the logit
		// within ~1e-5; anything larger means a wrong formula, not
		// rounding.
		if maxDelta > 1e-4 {
			t.Fatalf("act=%v: max |logit32 - logit64| = %g, want <= 1e-4", act, maxDelta)
		}
	}
}

// TestPairDecoder32Deterministic pins the conversion determinism the
// snapshot-load derivation relies on: two derivations from the same
// oracle produce identical f32 bits for every pair.
func TestPairDecoder32Deterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const d, h = 12, 8
	var ps Params
	mlp := NewMLP(rng, &ps, []int{d + 1, h, 1}, ActLeakyReLU, false)
	pd, _ := NewPairDecoder(mlp)
	p1, p2 := NewPairDecoder32(pd), NewPairDecoder32(pd)
	a := mat.Floats32(mat.RandNormal(rng, 1, d, 1).Row(0))
	b := mat.Floats32(mat.RandNormal(rng, 1, d, 1).Row(0))
	hid := make([]float32, h)
	for i := 0; i < 20; i++ {
		g1 := p1.Logit(a, b, 1, hid)
		g2 := p2.Logit(a, b, 1, hid)
		if math.Float64bits(g1) != math.Float64bits(g2) {
			t.Fatalf("derivation not deterministic: %v != %v", g1, g2)
		}
	}
}

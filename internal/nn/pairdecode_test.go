package nn

import (
	"math"
	"math/rand"
	"testing"

	"dssddi/internal/mat"
)

// TestPairDecoderMatchesBatchedForward checks the fused pair decode
// against the reference gather→Hadamard→concat→Forward pipeline, bit
// for bit, at several worker counts and across activations.
func TestPairDecoderMatchesBatchedForward(t *testing.T) {
	for _, workers := range []int{1, 4} {
		mat.SetWorkers(workers)
		for _, act := range []Activation{ActLeakyReLU, ActReLU, ActTanh, ActSigmoid} {
			rng := rand.New(rand.NewSource(5))
			const d, h, pairs = 23, 16, 37
			var ps Params
			mlp := NewMLP(rng, &ps, []int{d + 1, h, 1}, act, false)
			pd, ok := NewPairDecoder(mlp)
			if !ok {
				t.Fatal("decoder-shaped MLP rejected")
			}
			if gd, gh := pd.Dims(); gd != d || gh != h {
				t.Fatalf("Dims = (%d, %d), want (%d, %d)", gd, gh, d, h)
			}

			ha := mat.RandNormal(rng, 9, d, 1)
			hb := mat.RandNormal(rng, 11, d, 1)
			aIdx := make([]int, pairs)
			bIdx := make([]int, pairs)
			tcol := mat.New(pairs, 1)
			for i := 0; i < pairs; i++ {
				aIdx[i] = rng.Intn(ha.Rows())
				bIdx[i] = rng.Intn(hb.Rows())
				tcol.Set(i, 0, float64(rng.Intn(2)))
			}
			inter := mat.Hadamard(ha.GatherRows(aIdx), hb.GatherRows(bIdx))
			want := mlp.Forward(mat.ConcatCols(inter, tcol))

			interBuf := make([]float64, d+1)
			hidBuf := make([]float64, h)
			for i := 0; i < pairs; i++ {
				got := pd.Logit(ha.Row(aIdx[i]), hb.Row(bIdx[i]), tcol.At(i, 0), interBuf, hidBuf)
				if math.Float64bits(got) != math.Float64bits(want.At(i, 0)) {
					t.Fatalf("workers=%d act=%v pair %d: fused %v != batched %v", workers, act, i, got, want.At(i, 0))
				}
			}
		}
	}
	mat.SetWorkers(0)
}

// TestPairDecoderRejectsUnsupportedShapes pins the fallback contract.
func TestPairDecoderRejectsUnsupportedShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var ps Params
	three := NewMLP(rng, &ps, []int{8, 8, 8, 1}, ActReLU, false)
	if _, ok := NewPairDecoder(three); ok {
		t.Fatal("3-layer MLP must be rejected")
	}
	wide := NewMLP(rng, &ps, []int{8, 8, 2}, ActReLU, false)
	if _, ok := NewPairDecoder(wide); ok {
		t.Fatal("non-scalar output must be rejected")
	}
	normed := NewMLP(rng, &ps, []int{8, 8, 1}, ActReLU, true)
	if _, ok := NewPairDecoder(normed); ok {
		t.Fatal("BatchNorm MLP must be rejected")
	}
	if _, ok := NewPairDecoder(nil); ok {
		t.Fatal("nil MLP must be rejected")
	}
}

// TestForwardRowMatchesForward checks the row-level MLP forward against
// the batched kernels, bit for bit, including an odd layer count.
func TestForwardRowMatchesForward(t *testing.T) {
	for _, sizes := range [][]int{{7, 5, 3}, {9, 16, 16, 4}, {6, 2}} {
		rng := rand.New(rand.NewSource(8))
		var ps Params
		mlp := NewMLP(rng, &ps, sizes, ActLeakyReLU, false)
		mlp.OutAct = ActLeakyReLU
		x := mat.RandNormal(rng, 13, sizes[0], 1)
		want := mlp.Forward(x)

		w := mlp.MaxWidth()
		dst := make([]float64, mlp.OutDim())
		buf1 := make([]float64, w)
		buf2 := make([]float64, w)
		for i := 0; i < x.Rows(); i++ {
			mlp.ForwardRow(dst, x.Row(i), buf1, buf2)
			for j, v := range dst {
				if math.Float64bits(v) != math.Float64bits(want.At(i, j)) {
					t.Fatalf("sizes %v row %d col %d: row forward %v != batched %v", sizes, i, j, v, want.At(i, j))
				}
			}
		}
		if mlp.InDim() != sizes[0] {
			t.Fatalf("InDim = %d, want %d", mlp.InDim(), sizes[0])
		}
	}
}

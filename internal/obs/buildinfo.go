package obs

import (
	"log/slog"
	"runtime"
	"runtime/debug"
	"sync"
)

// commit is stamped at link time:
//
//	go build -ldflags "-X dssddi/internal/obs.commit=$(git rev-parse HEAD)"
//
// When unset, BuildInfo falls back to the vcs.revision baked into the
// binary by the Go toolchain (module builds inside a git checkout).
var commit string

// BuildInfo identifies the running binary: which source produced it
// and which toolchain built it. It is exposed in /healthz on both
// tiers, logged at boot, and rendered as a build_info gauge in the
// Prometheus exposition — so every fleet answer is attributable to a
// build, not just an epoch.
type BuildInfo struct {
	// Commit is the git revision (ldflags-stamped, else the
	// toolchain's vcs.revision, else "unknown").
	Commit string `json:"commit"`
	// Dirty reports uncommitted changes at build time (vcs.modified).
	Dirty bool `json:"dirty,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Module is the main module path.
	Module string `json:"module,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the binary's build identity, computed once.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{Commit: commit, GoVersion: runtime.Version()}
		if bi, ok := debug.ReadBuildInfo(); ok {
			buildInfo.Module = bi.Main.Path
			for _, s := range bi.Settings {
				switch s.Key {
				case "vcs.revision":
					if buildInfo.Commit == "" {
						buildInfo.Commit = s.Value
					}
				case "vcs.modified":
					buildInfo.Dirty = s.Value == "true"
				}
			}
		}
		if buildInfo.Commit == "" {
			buildInfo.Commit = "unknown"
		}
	})
	return buildInfo
}

// Short renders the abbreviated commit ("3f2a1b0c" or
// "3f2a1b0c-dirty") for log lines and banners.
func (b BuildInfo) Short() string {
	c := b.Commit
	if len(c) > 8 {
		c = c[:8]
	}
	if b.Dirty {
		c += "-dirty"
	}
	return c
}

// LogValue renders the build identity as a slog group, so
// logger.Info("boot", "build", obs.Build()) emits structured fields.
func (b BuildInfo) LogValue() slog.Value {
	return slog.GroupValue(
		slog.String("commit", b.Short()),
		slog.String("go", b.GoVersion),
	)
}

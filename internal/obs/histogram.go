package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The bucket layout is fixed and shared by every histogram in the
// binary (and across processes built from the same source), which is
// what makes fleet aggregation exact: the router can add a backend's
// bucket counters to its own position by position. Bucket i (for
// i < NumBuckets-1) has inclusive upper bound bucketBase<<i
// nanoseconds — 8.192µs, 16.384µs, ... doubling up to ~34.4s — and
// the last bucket is +Inf. The range brackets everything the system
// produces, from a ~45µs cached suggest to a multi-second chaos tail.
const (
	bucketShift = 13
	bucketBase  = 1 << bucketShift // 8.192µs in ns
	// NumBuckets is the fixed bucket count, including the +Inf bucket.
	NumBuckets = 24
)

// Histogram is a fixed-bucket latency histogram safe for concurrent
// use. Observe is two atomic adds and a shift — no locks, no
// allocation — so it can sit on the request hot path; scrapes read
// the counters without stopping writers (unlike a ring of samples
// that must be copied and sorted under a mutex per scrape).
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	sumNs   atomic.Int64
}

// bucketFor returns the index of the smallest bucket whose upper
// bound is >= ns.
func bucketFor(ns int64) int {
	if ns <= bucketBase {
		return 0
	}
	idx := bits.Len64(uint64(ns-1) >> bucketShift)
	if idx >= NumBuckets {
		return NumBuckets - 1
	}
	return idx
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketFor(ns)].Add(1)
	h.sumNs.Add(ns)
}

// Snapshot returns a point-in-time copy of the counters. Count is
// derived from the bucket counters themselves, so the Prometheus
// invariant _count == cumulative(+Inf) holds exactly even while
// writers race the read.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Buckets[i] = c
		s.Count += c
	}
	s.SumNs = h.sumNs.Load()
	return s
}

// HistogramSnapshot is an immutable copy of a Histogram's counters,
// the unit of merging and rendering.
type HistogramSnapshot struct {
	Buckets [NumBuckets]int64
	Count   int64
	SumNs   int64
}

// Add merges another snapshot into this one. Merging is exact:
// bucket-wise integer addition, so a fleet histogram summed from N
// backend snapshots reports precisely the union of their
// observations.
func (s *HistogramSnapshot) Add(o HistogramSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.SumNs += o.SumNs
}

// BucketUpperNs is bucket i's inclusive upper bound in nanoseconds
// (math.MaxInt64 for the +Inf bucket).
func BucketUpperNs(i int) int64 {
	if i >= NumBuckets-1 {
		return math.MaxInt64
	}
	return bucketBase << i
}

// BucketUpperSeconds is bucket i's upper bound in seconds
// (math.Inf(1) for the last bucket), the Prometheus `le` value.
func BucketUpperSeconds(i int) float64 {
	if i >= NumBuckets-1 {
		return math.Inf(1)
	}
	return float64(int64(bucketBase)<<i) / 1e9
}

// QuantileNs estimates the q-quantile (q in [0,1]) in nanoseconds by
// linear interpolation inside the bucket containing the target rank.
// The +Inf bucket reports its lower bound (the estimate cannot exceed
// what the layout resolves). An empty snapshot reports 0.
func (s HistogramSnapshot) QuantileNs(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Buckets {
		prev := cum
		cum += c
		if float64(cum) >= rank && c > 0 {
			var lo float64
			if i > 0 {
				lo = float64(int64(bucketBase) << (i - 1))
			}
			if i == NumBuckets-1 {
				return lo
			}
			hi := float64(int64(bucketBase) << i)
			frac := (rank - float64(prev)) / float64(c)
			return lo + frac*(hi-lo)
		}
	}
	return float64(BucketUpperNs(NumBuckets - 2))
}

// QuantileMs is QuantileNs in milliseconds — the unit the JSON
// metrics report.
func (s HistogramSnapshot) QuantileMs(q float64) float64 {
	return s.QuantileNs(q) / 1e6
}

// MeanMs is the exact mean latency in milliseconds (total observed
// time over count), 0 when empty.
func (s HistogramSnapshot) MeanMs() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count) / 1e6
}

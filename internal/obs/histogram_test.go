package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestBucketForBounds(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {bucketBase, 0},
		{bucketBase + 1, 1}, {2 * bucketBase, 1},
		{2*bucketBase + 1, 2},
		{math.MaxInt64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketFor(c.ns); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every bucket's upper bound must land in its own bucket (le is
	// inclusive) and one past it in the next.
	for i := 0; i < NumBuckets-1; i++ {
		ub := BucketUpperNs(i)
		if got := bucketFor(ub); got != i {
			t.Errorf("bucketFor(upper(%d)=%d) = %d, want %d", i, ub, got, i)
		}
		next := i + 1
		if got := bucketFor(ub + 1); got != next && i < NumBuckets-2 {
			t.Errorf("bucketFor(upper(%d)+1) = %d, want %d", i, got, next)
		}
	}
}

func TestHistogramCountSum(t *testing.T) {
	var h Histogram
	var wantSum int64
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i) * 10 * time.Microsecond
		h.Observe(d)
		wantSum += d.Nanoseconds()
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.SumNs != wantSum {
		t.Fatalf("sum = %d, want %d", s.SumNs, wantSum)
	}
	var bucketTotal int64
	for _, b := range s.Buckets {
		bucketTotal += b
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

// TestHistogramQuantileAccuracy checks the estimate lands within one
// bucket's resolution of the true quantile for a uniform sample.
func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	for i := 0; i < n; i++ {
		// 10µs .. 10ms uniform.
		ns := 10_000 + rng.Int63n(10_000_000)
		h.Observe(time.Duration(ns))
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := s.QuantileNs(q)
		// The true quantile's bucket gives the tolerance: the estimate
		// may be off by at most that bucket's width.
		truth := 10_000 + q*10_000_000
		idx := bucketFor(int64(truth))
		width := float64(BucketUpperNs(idx))
		if idx > 0 {
			width -= float64(BucketUpperNs(idx - 1))
		}
		if math.Abs(got-truth) > width {
			t.Errorf("q%.2f = %.0fns, want %.0f +- bucket width %.0f", q, got, truth, width)
		}
	}
	if s.QuantileNs(0) > s.QuantileNs(0.5) || s.QuantileNs(0.5) > s.QuantileNs(1) {
		t.Error("quantiles not monotone")
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().QuantileNs(0.99); got != 0 {
		t.Fatalf("empty histogram q99 = %v, want 0", got)
	}
	if got := h.Snapshot().MeanMs(); got != 0 {
		t.Fatalf("empty histogram mean = %v, want 0", got)
	}
}

// TestHistogramMergeExact proves fleet aggregation is exact: merged
// bucket counts equal the element-wise sums, and the merged count is
// the sum of the member counts.
func TestHistogramMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var members []HistogramSnapshot
	var total int64
	for m := 0; m < 3; m++ {
		var h Histogram
		n := 500 + rng.Intn(1500)
		for i := 0; i < n; i++ {
			h.Observe(time.Duration(rng.Int63n(5_000_000_000)))
		}
		members = append(members, h.Snapshot())
		total += int64(n)
	}
	var merged HistogramSnapshot
	for _, m := range members {
		merged.Add(m)
	}
	if merged.Count != total {
		t.Fatalf("merged count %d, want %d", merged.Count, total)
	}
	for i := 0; i < NumBuckets; i++ {
		var want int64
		for _, m := range members {
			want += m.Buckets[i]
		}
		if merged.Buckets[i] != want {
			t.Fatalf("bucket %d: merged %d, want %d", i, merged.Buckets[i], want)
		}
	}
	var wantSum int64
	for _, m := range members {
		wantSum += m.SumNs
	}
	if merged.SumNs != wantSum {
		t.Fatalf("merged sum %d, want %d", merged.SumNs, wantSum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const (
		workers = 8
		per     = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// A scraper racing the writers must never see count != Σ buckets
	// drift negative or panic; exact equality holds by construction
	// (Count is derived from the bucket loads).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var tot int64
			for _, b := range s.Buckets {
				tot += b
			}
			if tot != s.Count {
				t.Error("snapshot count diverged from bucket total")
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.Int63n(1_000_000_000)))
			}
		}(w)
	}
	close(stop)
	wg.Wait()
	if got := h.Snapshot().Count; got != workers*per {
		t.Fatalf("final count %d, want %d", got, workers*per)
	}
}

// BenchmarkHistogramObserve is the hot-path recording cost: two
// atomic adds, zero allocations.
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}

// BenchmarkHistogramObserveUnderScrape records while another
// goroutine scrapes continuously — the contention profile of a
// Prometheus scraper hammering /metricsz. Compare with the old
// scheme (copy + sort 2048 samples under a mutex per scrape), which
// serialized the hot path against every scrape.
func BenchmarkHistogramObserveUnderScrape(b *testing.B) {
	var h Histogram
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				_ = s.QuantileNs(0.99)
			}
		}
	}()
	defer close(stop)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(time.Duration(i) * time.Microsecond)
			i++
		}
	})
}

package obs

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strings"
)

// NewLogger builds the process logger from the -log-format and
// -log-level flag spellings. format is "json" (machine-parsable
// access/event logs), "text" (slog key=value) or "off"/"" (no
// logging: returns nil, and all callers treat a nil logger as
// silence). level is "debug" (per-request access logs), "info",
// "warn" or "error".
func NewLogger(format, level string, w io.Writer) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "off", "":
		return nil, nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want json, text or off)", format)
}

// WithPprof mounts the net/http/pprof handlers under /debug/pprof/ in
// front of next. The daemons gate it behind a -pprof flag: profiling
// endpoints expose goroutine stacks and heap contents, so they are
// opt-in, never default.
func WithPprof(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", next)
	return mux
}

// Package obs is the zero-dependency observability layer shared by
// the serving tier (internal/serve), the fleet router
// (internal/router) and the WAL (internal/wal). It provides the four
// primitives the rest of the system composes:
//
//   - Request identity: every request entering the fleet is stamped
//     with an X-Request-Id (client-supplied or minted), propagated
//     router -> backend and echoed on every response, so a slow or
//     wrong answer is attributable across tiers.
//
//   - Request tracing: a sampled, bounded ring of per-request span
//     timelines (admission-queue wait, batch wait, score compute,
//     encode; router-side per-attempt spans annotated with the
//     backend) served at GET /debug/tracez as text and JSON, in the
//     spirit of golang.org/x/net/trace. Tracing costs nothing when a
//     request is not sampled: every Trace method is a nil-receiver
//     no-op, so the hot path stays allocation-free.
//
//   - Latency histograms: fixed exponential buckets backed by atomic
//     counters — recording is a couple of atomic adds, scraping never
//     locks or sorts, and two histograms merge exactly (bucket-wise
//     integer addition), so the router can sum fleet histograms
//     without approximation.
//
//   - Prometheus text exposition: minimal writers for counters,
//     gauges and histograms in the text format (version 0.0.4), plus
//     a parser used by tests and cmd/obscheck to prove scrapes
//     round-trip.
//
// BuildInfo (git commit + toolchain, via -ldflags -X and
// debug.ReadBuildInfo), a slog construction helper and a flag-gated
// net/http/pprof mux wrapper round out the package.
package obs

package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// PromLabel renders one label pair for use in PromSample label lists
// ("backend=\"127.0.0.1:9001\"").
func PromLabel(k, v string) string {
	return k + `="` + promEscape(v) + `"`
}

// PromHeader writes the # HELP / # TYPE preamble for a metric family.
// typ is "counter", "gauge" or "histogram".
func PromHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// promValue renders a sample value.
func promValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PromSample writes one sample line. labels is a comma-joined list of
// PromLabel results ("" for none).
func PromSample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, promValue(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, promValue(v))
}

// PromInt is PromSample for integer counters.
func PromInt(w io.Writer, name, labels string, v int64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %d\n", name, v)
		return
	}
	fmt.Fprintf(w, "%s{%s} %d\n", name, labels, v)
}

// PromHistogram writes a full histogram family instance: cumulative
// _bucket series (le-labelled, ending at +Inf), _sum (seconds) and
// _count. The caller writes the PromHeader once per family; this
// writes one label-set's series, so per-backend (or per-endpoint)
// histograms share a family.
func PromHistogram(w io.Writer, name, labels string, s HistogramSnapshot) {
	var cum int64
	for i := 0; i < NumBuckets; i++ {
		cum += s.Buckets[i]
		le := PromLabel("le", promValue(BucketUpperSeconds(i)))
		l := le
		if labels != "" {
			l = labels + "," + le
		}
		PromInt(w, name+"_bucket", l, cum)
	}
	PromSample(w, name+"_sum", labels, float64(s.SumNs)/1e9)
	PromInt(w, name+"_count", labels, cum)
}

// PromSeries is one parsed sample: a metric name, its sorted
// label-pair rendering and the value.
type PromSeries struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// labelKey renders the label set deterministically (sorted keys,
// le excluded when excludeLe) for grouping histogram series.
func (s PromSeries) labelKey(excludeLe bool) string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		if excludeLe && k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + s.Labels[k]
	}
	return strings.Join(parts, ",")
}

// PromSet is a parsed exposition: every sample plus the declared
// types per metric family.
type PromSet struct {
	Series []PromSeries
	Types  map[string]string // family name -> counter|gauge|histogram|...
}

// Value returns the value of the first series with the given name
// whose labels include every pair in want (nil matches anything).
func (p *PromSet) Value(name string, want map[string]string) (float64, bool) {
	for _, s := range p.Series {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range want {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}

// ParseProm parses the Prometheus text exposition format, strictly
// enough to prove a scrape is well-formed: every non-comment line
// must be `name[{labels}] value`, label values must be quoted, and
// every sample's family must have been declared with # TYPE. It is a
// validator for our own output (and a test oracle), not a general
// scraper.
func ParseProm(r io.Reader) (*PromSet, error) {
	set := &PromSet{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				set.Types[fields[2]] = fields[3]
			} else if len(fields) >= 3 && fields[1] == "HELP" {
				// fine
			} else if len(fields) >= 2 && (fields[1] == "TYPE" || fields[1] == "HELP") {
				return nil, fmt.Errorf("prom: line %d: malformed %s comment", lineNo, fields[1])
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("prom: line %d: %w", lineNo, err)
		}
		family := s.Name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.Name, suffix)
			if base != s.Name && set.Types[base] == "histogram" {
				family = base
				break
			}
		}
		if _, ok := set.Types[family]; !ok {
			return nil, fmt.Errorf("prom: line %d: sample %q has no # TYPE declaration", lineNo, s.Name)
		}
		set.Series = append(set.Series, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return set, nil
}

func parsePromSample(line string) (PromSeries, error) {
	s := PromSeries{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set")
		}
		if err := parsePromLabels(rest[i+1:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return s, fmt.Errorf("want `name value`, got %q", line)
		}
		s.Name = fields[0]
		rest = fields[1]
	}
	if s.Name == "" || !validPromName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("invalid value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

func validPromName(name string) bool {
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parsePromLabels(s string, into map[string]string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("label without '=': %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		rest := strings.TrimSpace(s[eq+1:])
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("label %q value must be quoted", key)
		}
		// Scan the quoted value honoring escapes.
		var val strings.Builder
		i := 1
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(rest) {
			return fmt.Errorf("label %q value unterminated", key)
		}
		into[key] = val.String()
		s = strings.TrimSpace(rest[i+1:])
		s = strings.TrimPrefix(s, ",")
		s = strings.TrimSpace(s)
	}
	return nil
}

// CheckHistograms validates every histogram family in the set: for
// each label group, bucket counts must be cumulative (non-decreasing
// as le grows), the le="+Inf" bucket must exist and equal the _count
// series, and _sum must be present. It returns the number of
// histogram instances validated.
func (p *PromSet) CheckHistograms() (int, error) {
	type group struct {
		buckets []PromSeries
		count   *float64
		sum     *float64
	}
	groups := map[string]map[string]*group{} // family -> labelKey -> group
	for family, typ := range p.Types {
		if typ == "histogram" {
			groups[family] = map[string]*group{}
		}
	}
	for _, s := range p.Series {
		for family := range groups {
			var g *group
			key := s.labelKey(true)
			get := func() *group {
				if groups[family][key] == nil {
					groups[family][key] = &group{}
				}
				return groups[family][key]
			}
			switch s.Name {
			case family + "_bucket":
				g = get()
				g.buckets = append(g.buckets, s)
			case family + "_count":
				g = get()
				v := s.Value
				g.count = &v
			case family + "_sum":
				g = get()
				v := s.Value
				g.sum = &v
			}
		}
	}
	n := 0
	for family, byLabel := range groups {
		for key, g := range byLabel {
			n++
			if g.count == nil || g.sum == nil {
				return n, fmt.Errorf("histogram %s{%s}: missing _count or _sum", family, key)
			}
			if len(g.buckets) == 0 {
				return n, fmt.Errorf("histogram %s{%s}: no _bucket series", family, key)
			}
			sort.Slice(g.buckets, func(i, j int) bool {
				return parseLe(g.buckets[i].Labels["le"]) < parseLe(g.buckets[j].Labels["le"])
			})
			prev := -1.0
			for _, b := range g.buckets {
				if b.Value < prev {
					return n, fmt.Errorf("histogram %s{%s}: buckets not cumulative at le=%s", family, key, b.Labels["le"])
				}
				prev = b.Value
			}
			last := g.buckets[len(g.buckets)-1]
			if !math.IsInf(parseLe(last.Labels["le"]), 1) {
				return n, fmt.Errorf("histogram %s{%s}: missing le=\"+Inf\" bucket", family, key)
			}
			if last.Value != *g.count {
				return n, fmt.Errorf("histogram %s{%s}: +Inf bucket %v != _count %v", family, key, last.Value, *g.count)
			}
		}
	}
	return n, nil
}

func parseLe(s string) float64 {
	if s == "+Inf" {
		return math.Inf(1)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return math.NaN()
	}
	return v
}

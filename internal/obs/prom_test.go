package obs

import (
	"strings"
	"testing"
	"time"
)

// TestPromRoundTrip writes an exposition with the same writers the
// daemons use, then parses and validates it with the same parser the
// smoke test uses — proving the two ends agree on the format.
func TestPromRoundTrip(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * 100 * time.Microsecond)
	}
	var sb strings.Builder
	PromHeader(&sb, "dssddi_requests_total", "counter", "Requests by endpoint.")
	PromInt(&sb, "dssddi_requests_total", PromLabel("endpoint", "suggest"), 100)
	PromInt(&sb, "dssddi_requests_total", PromLabel("endpoint", "scores"), 40)
	PromHeader(&sb, "dssddi_up", "gauge", "Always 1.")
	PromSample(&sb, "dssddi_up", "", 1)
	PromHeader(&sb, "dssddi_request_duration_seconds", "histogram", "Latency by endpoint.")
	PromHistogram(&sb, "dssddi_request_duration_seconds", PromLabel("endpoint", "suggest"), h.Snapshot())

	set, err := ParseProm(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("own output does not parse: %v\n%s", err, sb.String())
	}
	if v, ok := set.Value("dssddi_requests_total", map[string]string{"endpoint": "suggest"}); !ok || v != 100 {
		t.Fatalf("counter round-trip: got %v, %v", v, ok)
	}
	if v, ok := set.Value("dssddi_up", nil); !ok || v != 1 {
		t.Fatalf("gauge round-trip: got %v, %v", v, ok)
	}
	n, err := set.CheckHistograms()
	if err != nil {
		t.Fatalf("histogram validation: %v", err)
	}
	if n != 1 {
		t.Fatalf("validated %d histogram instances, want 1", n)
	}
	if v, ok := set.Value("dssddi_request_duration_seconds_count", nil); !ok || v != 100 {
		t.Fatalf("_count round-trip: got %v, %v", v, ok)
	}
}

// TestPromHistogramMergeEqualsSum is the fleet-aggregation contract:
// the router's merged exposition must carry bucket counts exactly
// equal to the sum of what each backend would expose.
func TestPromHistogramMergeEqualsSum(t *testing.T) {
	var h1, h2 Histogram
	for i := 1; i <= 60; i++ {
		h1.Observe(time.Duration(i) * time.Millisecond)
	}
	for i := 1; i <= 40; i++ {
		h2.Observe(time.Duration(i) * 50 * time.Microsecond)
	}
	merged := h1.Snapshot()
	merged.Add(h2.Snapshot())

	render := func(s HistogramSnapshot) *PromSet {
		var sb strings.Builder
		PromHeader(&sb, "lat_seconds", "histogram", "x")
		PromHistogram(&sb, "lat_seconds", "", s)
		set, err := ParseProm(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("render: %v", err)
		}
		return set
	}
	m, a, b := render(merged), render(h1.Snapshot()), render(h2.Snapshot())
	for i := 0; i < NumBuckets; i++ {
		le := promValue(BucketUpperSeconds(i))
		want := map[string]string{"le": le}
		mv, _ := m.Value("lat_seconds_bucket", want)
		av, _ := a.Value("lat_seconds_bucket", want)
		bv, _ := b.Value("lat_seconds_bucket", want)
		if mv != av+bv {
			t.Fatalf("bucket le=%s: merged %v != %v + %v", le, mv, av, bv)
		}
	}
	mc, _ := m.Value("lat_seconds_count", nil)
	if mc != 100 {
		t.Fatalf("merged count %v, want 100", mc)
	}
}

func TestPromEscaping(t *testing.T) {
	var sb strings.Builder
	PromHeader(&sb, "m", "gauge", "x")
	PromSample(&sb, "m", PromLabel("path", `C:\x"y`+"\nz"), 2)
	set, err := ParseProm(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("escaped label does not parse: %v\n%q", err, sb.String())
	}
	if v, ok := set.Value("m", map[string]string{"path": `C:\x"y` + "\nz"}); !ok || v != 2 {
		t.Fatalf("escape round-trip failed: %v %v in %+v", v, ok, set.Series)
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	bad := []string{
		"no_type_decl 1\n",
		"# TYPE m counter\nm{x=unquoted} 1\n",
		"# TYPE m counter\nm{x=\"v\"} notanumber\n",
		"# TYPE m counter\nm{x=\"unterminated 1\n",
		"# TYPE m counter\n1leading_digit 1\n",
	}
	for _, in := range bad {
		if _, err := ParseProm(strings.NewReader(in)); err == nil {
			t.Errorf("accepted malformed input %q", in)
		}
	}
}

func TestCheckHistogramsCatchesBroken(t *testing.T) {
	in := `# TYPE h histogram
h_bucket{le="0.1"} 5
h_bucket{le="+Inf"} 4
h_sum 1
h_count 4
`
	set, err := ParseProm(strings.NewReader(in))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := set.CheckHistograms(); err == nil {
		t.Fatal("non-cumulative buckets passed validation")
	}
	in2 := `# TYPE h histogram
h_bucket{le="0.1"} 4
h_bucket{le="+Inf"} 5
h_sum 1
h_count 4
`
	set2, _ := ParseProm(strings.NewReader(in2))
	if _, err := set2.CheckHistograms(); err == nil {
		t.Fatal("+Inf != _count passed validation")
	}
}

package obs

import (
	crand "crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
	"sync/atomic"
)

// RequestIDHeader carries the request identity across tiers: clients
// may supply it, the router mints one when absent and propagates it
// to the backend it proxies to, and every tier echoes it on the
// response — so one id follows a request from loadgen through the
// router into the owning backend's tracez ring.
const RequestIDHeader = "X-Request-Id"

// maxRequestIDLen bounds accepted client-supplied ids so a hostile
// header cannot bloat logs or trace entries.
const maxRequestIDLen = 96

// ridPrefix is a per-process random prefix, so ids minted by
// different processes (router vs backends, restarts) never collide
// even though the counter restarts at zero.
var ridPrefix = func() string {
	var b [6]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Last-ditch fallback: a fixed prefix still yields unique ids
		// within the process.
		return "dssddi"
	}
	return hex.EncodeToString(b[:])
}()

var ridSeq atomic.Uint64

// NewRequestID mints a process-unique request id: a random
// per-process prefix plus a monotonic counter. Two small allocations,
// no locks — cheap enough for every request.
func NewRequestID() string {
	return ridPrefix + "-" + strconv.FormatUint(ridSeq.Add(1), 36)
}

// validRequestID accepts ids of reasonable length made of printable
// ASCII (no spaces, quotes or control bytes — they go into logs and
// headers verbatim).
func validRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' {
			return false
		}
	}
	return true
}

// EnsureRequestID returns the request's id: the client-supplied
// X-Request-Id when present and well-formed, otherwise a freshly
// minted one. It does not modify the header.
func EnsureRequestID(h http.Header) string {
	if id := h.Get(RequestIDHeader); validRequestID(id) {
		return id
	}
	return NewRequestID()
}

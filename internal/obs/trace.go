package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one named stage of a request, as offsets from the trace
// start (so a rendered timeline needs no clock arithmetic).
type Span struct {
	Name    string  `json:"name"`
	StartMs float64 `json:"start_ms"`
	DurMs   float64 `json:"duration_ms"`
}

// Event is a point annotation on a trace ("retry 1 backend=...").
type Event struct {
	AtMs float64 `json:"at_ms"`
	Msg  string  `json:"msg"`
}

// Trace is one sampled request's timeline. All methods are no-ops on
// a nil receiver: un-sampled requests carry a nil *Trace and pay
// nothing — no allocation, no branch beyond the nil check.
//
// A trace is mutated by the request's handler goroutine and, for the
// batch/score spans, by the batching collector; the mutex makes that
// safe even when a deadline-abandoned request finishes its trace
// while the collector is still recording the batch it was part of.
// After Finish the trace is immutable (late span/event recordings are
// dropped), so the tracez rings read it without locking per field.
type Trace struct {
	mu      sync.Mutex
	id      string
	route   string
	start   time.Time
	done    bool
	dur     time.Duration
	status  int
	epoch   int64
	backend string
	spans   []Span
	events  []Event
}

// ID returns the trace's request id.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start returns the trace's start time (zero for nil).
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// SpanAt records a named stage spanning [from, to].
func (t *Trace) SpanAt(name string, from, to time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.spans = append(t.spans, Span{
			Name:    name,
			StartMs: float64(from.Sub(t.start)) / 1e6,
			DurMs:   float64(to.Sub(from)) / 1e6,
		})
	}
	t.mu.Unlock()
}

// Span records a named stage from `from` until now.
func (t *Trace) Span(name string, from time.Time) {
	if t == nil {
		return
	}
	t.SpanAt(name, from, time.Now())
}

// Eventf records a point annotation at the current offset.
func (t *Trace) Eventf(format string, args ...any) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	if !t.done {
		t.events = append(t.events, Event{
			AtMs: float64(now.Sub(t.start)) / 1e6,
			Msg:  fmt.Sprintf(format, args...),
		})
	}
	t.mu.Unlock()
}

// SetEpoch tags the trace with the serving epoch that answered it.
func (t *Trace) SetEpoch(epoch int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.epoch = epoch
	t.mu.Unlock()
}

// SetBackend tags the trace with the backend that served it (router
// side).
func (t *Trace) SetBackend(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.backend = name
	t.mu.Unlock()
}

// TraceView is the JSON (and rendering) shape of a finished trace.
type TraceView struct {
	ID      string    `json:"id"`
	Route   string    `json:"route"`
	Start   time.Time `json:"start"`
	DurMs   float64   `json:"duration_ms"`
	Status  int       `json:"status"`
	Epoch   int64     `json:"epoch,omitempty"`
	Backend string    `json:"backend,omitempty"`
	Error   bool      `json:"error,omitempty"`
	Spans   []Span    `json:"spans,omitempty"`
	Events  []Event   `json:"events,omitempty"`
}

func (t *Trace) view() TraceView {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TraceView{
		ID: t.id, Route: t.route, Start: t.start,
		DurMs: float64(t.dur) / 1e6, Status: t.status,
		Epoch: t.epoch, Backend: t.backend, Error: t.status >= 400,
		Spans: append([]Span(nil), t.spans...), Events: append([]Event(nil), t.events...),
	}
}

// Tracer samples requests into three bounded rings: the most recent
// traces, the slowest, and the errored (status >= 400). The rings are
// fixed-size — a flood of traffic recycles entries, it never grows
// them — and sampling is decided at Start, so an un-sampled request
// costs one atomic increment.
type Tracer struct {
	every uint64 // 0 = tracing off, 1 = every request, n = every nth
	size  int
	seq   atomic.Uint64

	started  atomic.Int64
	finished atomic.Int64

	mu      sync.Mutex
	recent  []*Trace // ring: recentPos points at the next slot
	pos     int
	slowest []*Trace // kept sorted by duration, descending
	errored []*Trace // ring
	errPos  int
}

// DefaultTraceRing is the per-ring capacity when the caller passes 0.
const DefaultTraceRing = 64

// NewTracer builds a tracer sampling the given fraction of requests
// (<= 0 disables tracing entirely, >= 1 traces everything, otherwise
// every round(1/sample)-th request is traced) with ringSize entries
// per ring (0 = DefaultTraceRing).
func NewTracer(sample float64, ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultTraceRing
	}
	var every uint64
	switch {
	case sample <= 0:
		every = 0
	case sample >= 1:
		every = 1
	default:
		every = uint64(1/sample + 0.5)
		if every < 1 {
			every = 1
		}
	}
	return &Tracer{every: every, size: ringSize}
}

// Enabled reports whether any request can be sampled.
func (tc *Tracer) Enabled() bool { return tc != nil && tc.every > 0 }

// Start begins a trace for one request, or returns nil when the
// request is not sampled (or the tracer is nil/disabled) — the nil
// trace then makes every downstream recording a no-op.
func (tc *Tracer) Start(id, route string) *Trace {
	if tc == nil || tc.every == 0 {
		return nil
	}
	if tc.every > 1 && tc.seq.Add(1)%tc.every != 0 {
		return nil
	}
	tc.started.Add(1)
	return &Trace{id: id, route: route, start: time.Now()}
}

// Finish seals the trace with its response status and files it into
// the rings. Safe on a nil trace.
func (tc *Tracer) Finish(t *Trace, status int) {
	if tc == nil || t == nil {
		return
	}
	t.mu.Lock()
	t.done = true
	t.dur = time.Since(t.start)
	t.status = status
	dur := t.dur
	t.mu.Unlock()
	tc.finished.Add(1)

	tc.mu.Lock()
	defer tc.mu.Unlock()
	// Recent: plain ring.
	if len(tc.recent) < tc.size {
		tc.recent = append(tc.recent, t)
	} else {
		tc.recent[tc.pos] = t
		tc.pos = (tc.pos + 1) % tc.size
	}
	// Slowest: sorted insert, bounded.
	i := sort.Search(len(tc.slowest), func(i int) bool { return tc.slowest[i].dur < dur })
	if i < tc.size {
		if len(tc.slowest) < tc.size {
			tc.slowest = append(tc.slowest, nil)
		}
		copy(tc.slowest[i+1:], tc.slowest[i:])
		tc.slowest[i] = t
	}
	// Errored: ring.
	if status >= 400 {
		if len(tc.errored) < tc.size {
			tc.errored = append(tc.errored, t)
		} else {
			tc.errored[tc.errPos] = t
			tc.errPos = (tc.errPos + 1) % tc.size
		}
	}
}

// TracezPage is the JSON payload of /debug/tracez.
type TracezPage struct {
	Service  string      `json:"service"`
	Sampling string      `json:"sampling"`
	Started  int64       `json:"traces_started"`
	Finished int64       `json:"traces_finished"`
	Recent   []TraceView `json:"recent"`
	Slowest  []TraceView `json:"slowest"`
	Errored  []TraceView `json:"errored"`
}

// snapshot renders the rings, newest first for recent/errored. With a
// non-empty id filter only matching traces are kept.
func (tc *Tracer) snapshot(service, id string) TracezPage {
	page := TracezPage{
		Service:  service,
		Started:  tc.started.Load(),
		Finished: tc.finished.Load(),
		Recent:   []TraceView{},
		Slowest:  []TraceView{},
		Errored:  []TraceView{},
	}
	switch {
	case tc.every == 0:
		page.Sampling = "off"
	case tc.every == 1:
		page.Sampling = "all"
	default:
		page.Sampling = fmt.Sprintf("1/%d", tc.every)
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	collect := func(ring []*Trace, pos int, newestFirst bool) []TraceView {
		out := make([]TraceView, 0, len(ring))
		for i := range ring {
			var t *Trace
			if newestFirst {
				// Walk backwards from the slot before pos.
				t = ring[((pos-1-i)%len(ring)+len(ring))%len(ring)]
			} else {
				t = ring[i]
			}
			if t == nil || (id != "" && t.id != id) {
				continue
			}
			out = append(out, t.view())
		}
		return out
	}
	if len(tc.recent) > 0 {
		p := tc.pos
		if len(tc.recent) < tc.size {
			p = len(tc.recent)
		}
		page.Recent = collect(tc.recent, p, true)
	}
	page.Slowest = collect(tc.slowest, 0, false)
	if len(tc.errored) > 0 {
		p := tc.errPos
		if len(tc.errored) < tc.size {
			p = len(tc.errored)
		}
		page.Errored = collect(tc.errored, p, true)
	}
	return page
}

// Find returns every retained trace with the given request id,
// searching all three rings (duplicates across rings are collapsed).
func (tc *Tracer) Find(id string) []TraceView {
	if tc == nil {
		return nil
	}
	page := tc.snapshot("", id)
	out := page.Recent
	have := make(map[string]bool, len(out))
	key := func(v TraceView) string { return fmt.Sprintf("%s|%d|%f", v.ID, v.Start.UnixNano(), v.DurMs) }
	for _, v := range out {
		have[key(v)] = true
	}
	for _, v := range append(page.Slowest, page.Errored...) {
		if !have[key(v)] {
			have[key(v)] = true
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Handler serves GET /debug/tracez: a text timeline by default, JSON
// with ?format=json, optionally filtered to one request id with
// ?id=<request-id>.
func (tc *Tracer) Handler(service string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if tc == nil {
			http.Error(w, "tracing not configured", http.StatusNotFound)
			return
		}
		page := tc.snapshot(service, r.URL.Query().Get("id"))
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(page)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%s /debug/tracez — sampling %s, %d started / %d finished\n",
			page.Service, page.Sampling, page.Started, page.Finished)
		section := func(name string, views []TraceView) {
			fmt.Fprintf(w, "\n== %s (%d)\n", name, len(views))
			for _, v := range views {
				flag := ""
				if v.Error {
					flag = "  ERROR"
				}
				fmt.Fprintf(w, "%s  %-22s %8.3fms  status=%d epoch=%d%s", v.Start.Format("15:04:05.000"), v.Route, v.DurMs, v.Status, v.Epoch, flag)
				if v.Backend != "" {
					fmt.Fprintf(w, "  backend=%s", v.Backend)
				}
				fmt.Fprintf(w, "  id=%s\n", v.ID)
				for _, sp := range v.Spans {
					fmt.Fprintf(w, "    %10.3fms  %-12s %10.3fms\n", sp.StartMs, sp.Name, sp.DurMs)
				}
				for _, ev := range v.Events {
					fmt.Fprintf(w, "    %10.3fms  * %s\n", ev.AtMs, ev.Msg)
				}
			}
		}
		section("recent", page.Recent)
		section("slowest", page.Slowest)
		section("errored", page.Errored)
	})
}

// ctxKey is the context key carrying a sampled request's trace.
type ctxKey struct{}

// NewContext returns ctx carrying tr. Callers should only attach
// non-nil traces: un-sampled requests keep their original context and
// allocate nothing.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the trace attached to ctx, or nil — and a nil
// trace's methods are all no-ops, so callers never branch.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}

package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceSafe(t *testing.T) {
	// The unsampled hot path carries a nil *Trace; every method must be
	// a no-op, never a panic.
	var tr *Trace
	if tr.ID() != "" {
		t.Fatal("nil trace ID should be empty")
	}
	start := tr.Start()
	tr.SpanAt("queue", start, time.Now())
	tr.Span("score", start)
	tr.Eventf("retry backend=%s", "b0")
	tr.SetEpoch(3)
	tr.SetBackend("b0")
	ctx := NewContext(context.Background(), tr)
	if got := FromContext(ctx); got != nil {
		t.Fatal("nil trace should not be stored in context")
	}
}

func TestTracerSampling(t *testing.T) {
	cases := []struct {
		sample float64
		every  uint64
	}{
		{0, 0},   // off
		{1, 1},   // everything
		{0.5, 2}, // every 2nd
		{0.01, 100},
	}
	for _, c := range cases {
		tr := NewTracer(c.sample, 8)
		if tr.every != c.every {
			t.Errorf("sample %v: every = %d, want %d", c.sample, tr.every, c.every)
		}
	}
	off := NewTracer(0, 8)
	if off.Enabled() {
		t.Fatal("sample 0 tracer should be disabled")
	}
	for i := 0; i < 10; i++ {
		if got := off.Start("id", "/v1/suggest"); got != nil {
			t.Fatal("disabled tracer must return nil traces")
		}
	}
	half := NewTracer(0.5, 8)
	sampled := 0
	for i := 0; i < 100; i++ {
		if tr := half.Start("id", "/v1/suggest"); tr != nil {
			sampled++
			half.Finish(tr, 200)
		}
	}
	if sampled != 50 {
		t.Fatalf("sample 0.5: got %d of 100 sampled, want 50", sampled)
	}
}

func TestTracerRingsBoundedUnderFlood(t *testing.T) {
	const ring = 16
	tc := NewTracer(1, ring)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr := tc.Start(NewRequestID(), "/v1/suggest")
				tr.Span("score", tr.Start())
				status := 200
				if i%10 == 0 {
					status = 500
				}
				tc.Finish(tr, status)
			}
		}(w)
	}
	wg.Wait()
	page := tc.snapshot("test", "")
	if len(page.Recent) > ring {
		t.Fatalf("recent ring grew to %d, cap %d", len(page.Recent), ring)
	}
	if len(page.Slowest) > ring {
		t.Fatalf("slowest ring grew to %d, cap %d", len(page.Slowest), ring)
	}
	if len(page.Errored) > ring {
		t.Fatalf("errored ring grew to %d, cap %d", len(page.Errored), ring)
	}
	if page.Finished != 8*500 {
		t.Fatalf("finished = %d, want %d", page.Finished, 8*500)
	}
	// Slowest must be sorted descending by duration.
	for i := 1; i < len(page.Slowest); i++ {
		if page.Slowest[i].DurMs > page.Slowest[i-1].DurMs {
			t.Fatal("slowest ring not sorted by duration")
		}
	}
	for _, v := range page.Errored {
		if v.Status < 400 {
			t.Fatalf("errored ring holds status %d", v.Status)
		}
	}
}

func TestTraceSpansAndFind(t *testing.T) {
	tc := NewTracer(1, 8)
	tr := tc.Start("req-42", "/v1/suggest")
	if tr == nil {
		t.Fatal("sample 1 must trace every request")
	}
	t0 := tr.Start()
	tr.SpanAt("queue", t0, t0.Add(2*time.Millisecond))
	tr.SpanAt("score", t0.Add(2*time.Millisecond), t0.Add(5*time.Millisecond))
	tr.SetEpoch(7)
	tr.SetBackend("b1")
	tr.Eventf("cache miss")
	tc.Finish(tr, 200)

	views := tc.Find("req-42")
	if len(views) == 0 {
		t.Fatal("Find returned nothing for a finished trace")
	}
	v := views[0]
	if v.ID != "req-42" || v.Route != "/v1/suggest" || v.Epoch != 7 || v.Backend != "b1" {
		t.Fatalf("bad view: %+v", v)
	}
	if len(v.Spans) != 2 || v.Spans[0].Name != "queue" || v.Spans[1].Name != "score" {
		t.Fatalf("bad spans: %+v", v.Spans)
	}
	if v.Spans[0].DurMs < 1.9 || v.Spans[0].DurMs > 2.1 {
		t.Fatalf("queue span duration %v, want ~2ms", v.Spans[0].DurMs)
	}
	if len(v.Events) != 1 || v.Events[0].Msg != "cache miss" {
		t.Fatalf("bad events: %+v", v.Events)
	}

	// A span recorded after Finish (deadline-abandoned request whose
	// batch completes late) must be dropped, not mutate the sealed view.
	tr.Span("late", t0)
	if got := tc.Find("req-42")[0]; len(got.Spans) != 2 {
		t.Fatalf("late span leaked into sealed trace: %+v", got.Spans)
	}
	if tc.Find("no-such-id") != nil {
		t.Fatal("Find of unknown id should return nil")
	}
}

func TestTracezHandler(t *testing.T) {
	tc := NewTracer(1, 8)
	tr := tc.Start("req-h", "/v1/scores")
	tr.Span("encode", tr.Start())
	tc.Finish(tr, 200)

	h := tc.Handler("serve-test")

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/tracez", nil))
	if rec.Code != 200 {
		t.Fatalf("text status %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "req-h") || !strings.Contains(body, "/v1/scores") {
		t.Fatalf("text page missing trace: %q", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/tracez?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("json content-type %q", ct)
	}
	var page TracezPage
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("json page: %v", err)
	}
	if page.Service != "serve-test" || len(page.Recent) != 1 {
		t.Fatalf("bad json page: %+v", page)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/tracez?format=json&id=req-h", nil))
	var filtered TracezPage
	if err := json.Unmarshal(rec.Body.Bytes(), &filtered); err != nil {
		t.Fatalf("filtered page: %v", err)
	}
	if len(filtered.Recent) != 1 || filtered.Recent[0].ID != "req-h" {
		t.Fatalf("id filter failed: %+v", filtered)
	}
}

func TestRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Fatal("ids must be unique")
	}
	if !validRequestID(a) {
		t.Fatalf("minted id %q fails own validation", a)
	}
	for _, bad := range []string{"", "has space", "quote\"", string(make([]byte, 97)), "ctl\x01"} {
		if validRequestID(bad) {
			t.Errorf("validRequestID(%q) = true", bad)
		}
	}
	h := httptest.NewRequest("GET", "/", nil).Header
	h.Set(RequestIDHeader, "client-supplied-1")
	if got := EnsureRequestID(h); got != "client-supplied-1" {
		t.Fatalf("valid client id replaced: %q", got)
	}
	h.Set(RequestIDHeader, "bad id with spaces")
	if got := EnsureRequestID(h); got == "bad id with spaces" || got == "" {
		t.Fatalf("invalid client id kept: %q", got)
	}
}

func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.Commit == "" {
		t.Fatal("commit must never be empty (falls back to \"unknown\")")
	}
	if b.GoVersion == "" {
		t.Fatal("go version missing")
	}
	if s := b.Short(); s == "" || len(s) > 8+len("-dirty") {
		t.Fatalf("short form %q", s)
	}
}

func TestNewLogger(t *testing.T) {
	var sb strings.Builder
	lg, err := NewLogger("json", "info", &sb)
	if err != nil || lg == nil {
		t.Fatalf("json logger: %v", err)
	}
	lg.Info("boot", "build", Build())
	var rec map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &rec); err != nil {
		t.Fatalf("log line not json: %v (%q)", err, sb.String())
	}
	if rec["msg"] != "boot" {
		t.Fatalf("bad log record: %v", rec)
	}
	if lg, err := NewLogger("off", "info", &sb); err != nil || lg != nil {
		t.Fatalf("off must yield nil logger, got %v, %v", lg, err)
	}
	if _, err := NewLogger("xml", "info", &sb); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := NewLogger("json", "loud", &sb); err == nil {
		t.Fatal("unknown level accepted")
	}
}

// Package optim provides the optimizers used for model training: Adam
// (the paper's choice) and plain SGD, plus global-norm gradient
// clipping. Optimizers step a fixed list of parameter matrices; the
// matching gradient list comes from the autodiff tape.
package optim

import (
	"fmt"
	"math"

	"dssddi/internal/mat"
)

// Adam implements the Adam optimizer (Kingma & Ba, 2015) with optional
// decoupled weight decay.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	step int
	m    []*mat.Dense
	v    []*mat.Dense
}

// NewAdam returns an Adam optimizer with the standard defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update. params[i] is updated in place using
// grads[i]; a nil grad is treated as zero (parameter untouched by the
// loss this step).
func (a *Adam) Step(params, grads []*mat.Dense) {
	if len(params) != len(grads) {
		panic(fmt.Sprintf("optim: %d params but %d grads", len(params), len(grads)))
	}
	if a.m == nil {
		a.m = make([]*mat.Dense, len(params))
		a.v = make([]*mat.Dense, len(params))
		for i, p := range params {
			a.m[i] = mat.New(p.Rows(), p.Cols())
			a.v[i] = mat.New(p.Rows(), p.Cols())
		}
	}
	if len(a.m) != len(params) {
		panic("optim: parameter list changed between steps")
	}
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range params {
		g := grads[i]
		if g == nil {
			continue
		}
		pd, gd := p.Data(), g.Data()
		md, vd := a.m[i].Data(), a.v[i].Data()
		for k := range pd {
			gk := gd[k]
			if a.WeightDecay > 0 {
				pd[k] -= a.LR * a.WeightDecay * pd[k]
			}
			md[k] = a.Beta1*md[k] + (1-a.Beta1)*gk
			vd[k] = a.Beta2*vd[k] + (1-a.Beta2)*gk*gk
			mhat := md[k] / bc1
			vhat := vd[k] / bc2
			pd[k] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	vel []*mat.Dense
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum}
}

// Step applies one SGD update in place.
func (s *SGD) Step(params, grads []*mat.Dense) {
	if len(params) != len(grads) {
		panic(fmt.Sprintf("optim: %d params but %d grads", len(params), len(grads)))
	}
	if s.Momentum > 0 && s.vel == nil {
		s.vel = make([]*mat.Dense, len(params))
		for i, p := range params {
			s.vel[i] = mat.New(p.Rows(), p.Cols())
		}
	}
	for i, p := range params {
		g := grads[i]
		if g == nil {
			continue
		}
		if s.Momentum > 0 {
			vd, gd, pd := s.vel[i].Data(), g.Data(), p.Data()
			for k := range pd {
				vd[k] = s.Momentum*vd[k] + gd[k]
				pd[k] -= s.LR * vd[k]
			}
		} else {
			p.AddScaled(g, -s.LR)
		}
	}
}

// ClipGlobalNorm rescales grads in place so their combined L2 norm is at
// most maxNorm, returning the pre-clip norm. Nil grads are skipped.
func ClipGlobalNorm(grads []*mat.Dense, maxNorm float64) float64 {
	var total float64
	for _, g := range grads {
		if g == nil {
			continue
		}
		for _, v := range g.Data() {
			total += v * v
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, g := range grads {
			if g != nil {
				g.Scale(scale)
			}
		}
	}
	return norm
}

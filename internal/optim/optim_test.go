package optim

import (
	"math"
	"testing"

	"dssddi/internal/mat"
)

// quadGrad returns the gradient of f(x) = Σ (x-target)² at x.
func quadGrad(x, target *mat.Dense) *mat.Dense {
	g := mat.SubMat(x, target)
	g.Scale(2)
	return g
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	x := mat.FromRows([][]float64{{5, -3}, {2, 8}})
	target := mat.FromRows([][]float64{{1, 1}, {1, 1}})
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		opt.Step([]*mat.Dense{x}, []*mat.Dense{quadGrad(x, target)})
	}
	for i, v := range x.Data() {
		if math.Abs(v-target.Data()[i]) > 1e-3 {
			t.Fatalf("Adam did not converge: x=%v", x)
		}
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	x := mat.FromRows([][]float64{{5, -3}})
	target := mat.FromRows([][]float64{{1, 1}})
	opt := NewSGD(0.1, 0.9)
	for i := 0; i < 300; i++ {
		opt.Step([]*mat.Dense{x}, []*mat.Dense{quadGrad(x, target)})
	}
	for i, v := range x.Data() {
		if math.Abs(v-target.Data()[i]) > 1e-3 {
			t.Fatalf("SGD did not converge: x=%v", x)
		}
	}
}

func TestNilGradSkipsParam(t *testing.T) {
	x := mat.FromRows([][]float64{{3}})
	y := mat.FromRows([][]float64{{4}})
	opt := NewAdam(0.1)
	opt.Step([]*mat.Dense{x, y}, []*mat.Dense{nil, quadGrad(y, mat.New(1, 1))})
	if x.At(0, 0) != 3 {
		t.Fatal("param with nil grad must be untouched")
	}
	if y.At(0, 0) == 4 {
		t.Fatal("param with grad must move")
	}
}

func TestAdamMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAdam(0.1).Step([]*mat.Dense{mat.New(1, 1)}, nil)
}

func TestAdamWeightDecayShrinksParams(t *testing.T) {
	x := mat.FromRows([][]float64{{10}})
	opt := NewAdam(0.01)
	opt.WeightDecay = 0.1
	zero := mat.New(1, 1)
	for i := 0; i < 100; i++ {
		opt.Step([]*mat.Dense{x}, []*mat.Dense{zero.Clone()})
	}
	if math.Abs(x.At(0, 0)) >= 10 {
		t.Fatalf("weight decay had no effect: %v", x.At(0, 0))
	}
}

func TestClipGlobalNorm(t *testing.T) {
	g1 := mat.FromRows([][]float64{{3, 0}})
	g2 := mat.FromRows([][]float64{{0, 4}})
	pre := ClipGlobalNorm([]*mat.Dense{g1, nil, g2}, 1.0)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm %v, want 5", pre)
	}
	var total float64
	for _, g := range []*mat.Dense{g1, g2} {
		for _, v := range g.Data() {
			total += v * v
		}
	}
	if math.Abs(math.Sqrt(total)-1) > 1e-9 {
		t.Fatalf("post-clip norm %v, want 1", math.Sqrt(total))
	}
}

func TestClipNoOpBelowThreshold(t *testing.T) {
	g := mat.FromRows([][]float64{{0.3, 0.4}})
	ClipGlobalNorm([]*mat.Dense{g}, 10)
	if g.At(0, 0) != 0.3 || g.At(0, 1) != 0.4 {
		t.Fatal("clip should be a no-op when under threshold")
	}
}

// Package par is the shared worker pool behind every parallel kernel
// in internal/mat and internal/sparse. It row-partitions index ranges
// across a fixed set of long-lived goroutines.
//
// Design constraints, in priority order:
//
//  1. Determinism: For hands each goroutine a disjoint contiguous
//     range, so kernels that only write inside their range produce
//     bitwise-identical output for any worker count.
//  2. No deadlocks under nesting or saturation: submission to the pool
//     never blocks — when every pool worker is busy the caller runs the
//     chunk inline, so a kernel invoked from inside another parallel
//     region still completes.
//  3. Zero overhead for small inputs: work below the grain threshold
//     runs serially on the calling goroutine.
//
// The worker count is a process-wide knob (SetWorkers); 1 restores
// exact-serial execution on the calling goroutine.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers holds the configured worker count; 0 means "use
// runtime.GOMAXPROCS(0)" resolved at call time.
var workers atomic.Int64

// SetWorkers sets the process-wide worker count used by For. n <= 0
// resets to the default, runtime.GOMAXPROCS(0). SetWorkers(1) restores
// exact-serial execution.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// Workers returns the effective worker count (always >= 1).
func Workers() int {
	if n := int(workers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// The pool: long-lived goroutines draining an unbuffered channel.
// Sized generously so oversubscribed worker settings (useful in tests
// on small machines) still get real goroutines; idle workers cost only
// a parked goroutine each.
var (
	poolOnce sync.Once
	poolCh   chan func()
)

func poolSize() int {
	n := runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return n
}

func ensurePool() {
	poolOnce.Do(func() {
		poolCh = make(chan func())
		for i := 0; i < poolSize(); i++ {
			go func() {
				for f := range poolCh {
					f()
				}
			}()
		}
	})
}

// For splits [0, n) into at most Workers() contiguous chunks of at
// least grain indices each and runs fn on every chunk, returning when
// all chunks are done. fn must only touch state owned by its [lo, hi)
// range; chunks run concurrently.
//
// With one worker, a sub-grain n, or n == 0, fn runs (at most once)
// on the calling goroutine — the exact serial path.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	if w := Workers(); chunks > w {
		chunks = w
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	ensurePool()
	var wg sync.WaitGroup
	wg.Add(chunks - 1)
	for c := 1; c < chunks; c++ {
		lo, hi := c*n/chunks, (c+1)*n/chunks
		job := func() {
			defer wg.Done()
			fn(lo, hi)
		}
		select {
		case poolCh <- job:
		default:
			// Every pool worker is busy (saturation or nesting):
			// run inline rather than block, so progress is always
			// made by the submitting goroutine itself.
			job()
		}
	}
	fn(0, n/chunks)
	wg.Wait()
}

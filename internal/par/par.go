// Package par is the shared worker pool behind every parallel kernel
// in internal/mat and internal/sparse. It row-partitions index ranges
// across a fixed set of long-lived goroutines.
//
// Design constraints, in priority order:
//
//  1. Determinism: Run hands each goroutine a disjoint contiguous
//     range, so kernels that only write inside their range produce
//     bitwise-identical output for any worker count.
//  2. No deadlocks under nesting or saturation: submission to the pool
//     never blocks — when every pool worker is busy the caller runs the
//     chunk inline, so a kernel invoked from inside another parallel
//     region still completes.
//  3. Zero steady-state allocation: the serial path (one worker, or
//     work below the grain) calls Worker.Chunk directly, and the
//     parallel path recycles its dispatch records through sync.Pools —
//     a kernel invocation allocates nothing once the pools are warm.
//  4. Zero overhead for small inputs: work below the grain threshold
//     runs serially on the calling goroutine.
//
// The worker count is a process-wide knob (SetWorkers); 1 restores
// exact-serial execution on the calling goroutine.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Worker is one unit of partitionable work: Chunk processes the index
// range [lo, hi) and must only touch state owned by that range.
// Implementations are typically small structs holding the kernel
// operands, so the hot path constructs no closures.
type Worker interface {
	Chunk(lo, hi int)
}

// FuncWorker adapts a plain chunk function to the Worker interface.
// Func values are pointer-shaped, so the conversion does not allocate;
// the function itself should be a long-lived closure (e.g. stored on an
// autodiff node), not a literal built per call.
type FuncWorker func(lo, hi int)

// Chunk implements Worker.
func (f FuncWorker) Chunk(lo, hi int) { f(lo, hi) }

// workers holds the configured worker count; 0 means "use
// runtime.GOMAXPROCS(0)" resolved at call time.
var workers atomic.Int64

// SetWorkers sets the process-wide worker count used by Run and For.
// n <= 0 resets to the default, runtime.GOMAXPROCS(0). SetWorkers(1)
// restores exact-serial execution.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// Workers returns the effective worker count (always >= 1).
func Workers() int {
	if n := int(workers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// task is one pooled dispatch record: a Worker plus its range and the
// completion group it reports to.
type task struct {
	w      Worker
	lo, hi int
	wg     *sync.WaitGroup
}

var taskPool = sync.Pool{New: func() any { return new(task) }}
var wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

// The pool: long-lived goroutines draining an unbuffered channel.
// Sized generously so oversubscribed worker settings (useful in tests
// on small machines) still get real goroutines; idle workers cost only
// a parked goroutine each.
var (
	poolOnce sync.Once
	poolCh   chan *task
)

func poolSize() int {
	n := runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return n
}

func ensurePool() {
	poolOnce.Do(func() {
		poolCh = make(chan *task)
		for i := 0; i < poolSize(); i++ {
			go func() {
				for t := range poolCh {
					runTask(t)
				}
			}()
		}
	})
}

// runTask executes a task and recycles its record. The record is
// returned to the pool before Done so a submitter woken by Done never
// races with the recycling.
func runTask(t *task) {
	t.w.Chunk(t.lo, t.hi)
	wg := t.wg
	t.w, t.wg = nil, nil
	taskPool.Put(t)
	wg.Done()
}

// Run splits [0, n) into at most Workers() contiguous chunks of at
// least grain indices each and calls w.Chunk on every chunk, returning
// when all chunks are done. Chunks run concurrently; w.Chunk must only
// touch state owned by its [lo, hi) range.
//
// With one worker, a sub-grain n, or n == 0, w.Chunk runs (at most
// once) on the calling goroutine — the exact serial path, which
// performs no allocation and no synchronisation.
func Run(n, grain int, w Worker) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	if ws := Workers(); chunks > ws {
		chunks = ws
	}
	if chunks <= 1 {
		w.Chunk(0, n)
		return
	}
	ensurePool()
	wg := wgPool.Get().(*sync.WaitGroup)
	wg.Add(chunks - 1)
	for c := 1; c < chunks; c++ {
		t := taskPool.Get().(*task)
		t.w, t.lo, t.hi, t.wg = w, c*n/chunks, (c+1)*n/chunks, wg
		select {
		case poolCh <- t:
		default:
			// Every pool worker is busy (saturation or nesting):
			// run inline rather than block, so progress is always
			// made by the submitting goroutine itself.
			runTask(t)
		}
	}
	w.Chunk(0, n/chunks)
	wg.Wait()
	wgPool.Put(wg)
}

// For is Run with a plain function. Note the closure passed here
// escapes (it is shipped to pool goroutines), so a func literal at the
// call site costs one allocation per call — hot kernels use Run with a
// pooled Worker struct or a retained FuncWorker instead.
func For(n, grain int, fn func(lo, hi int)) { Run(n, grain, FuncWorker(fn)) }

package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// withWorkers runs f with the global worker count set to n, restoring
// the default afterwards.
func withWorkers(n int, f func()) {
	SetWorkers(n)
	defer SetWorkers(0)
	f()
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			for _, grain := range []int{1, 3, 100} {
				withWorkers(w, func() {
					hits := make([]int32, n)
					For(n, grain, func(lo, hi int) {
						if lo < 0 || hi > n || lo > hi {
							t.Fatalf("w=%d n=%d grain=%d: bad range [%d,%d)", w, n, grain, lo, hi)
						}
						for i := lo; i < hi; i++ {
							atomic.AddInt32(&hits[i], 1)
						}
					})
					for i, h := range hits {
						if h != 1 {
							t.Fatalf("w=%d n=%d grain=%d: index %d visited %d times", w, n, grain, i, h)
						}
					}
				})
			}
		}
	}
}

func TestForSerialWhenOneWorker(t *testing.T) {
	withWorkers(1, func() {
		var calls int
		For(100, 1, func(lo, hi int) {
			calls++
			if lo != 0 || hi != 100 {
				t.Fatalf("want single [0,100) range, got [%d,%d)", lo, hi)
			}
		})
		if calls != 1 {
			t.Fatalf("want 1 call, got %d", calls)
		}
	})
}

func TestForRespectsGrain(t *testing.T) {
	withWorkers(8, func() {
		var calls int32
		For(10, 100, func(lo, hi int) { atomic.AddInt32(&calls, 1) })
		if calls != 1 {
			t.Fatalf("n below grain must run serially, got %d chunks", calls)
		}
	})
}

// TestForNested exercises a parallel region spawned from inside another
// parallel region: the non-blocking submit path must keep this
// deadlock-free even when the pool is saturated.
func TestForNested(t *testing.T) {
	withWorkers(4, func() {
		n := 32
		var total int64
		For(n, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				For(n, 1, func(ilo, ihi int) {
					atomic.AddInt64(&total, int64(ihi-ilo))
				})
			}
		})
		if total != int64(n*n) {
			t.Fatalf("nested For: want %d units, got %d", n*n, total)
		}
	})
}

// TestForConcurrent hammers For from many goroutines at once; run with
// -race in CI.
func TestForConcurrent(t *testing.T) {
	withWorkers(4, func() {
		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				out := make([]int, 4096)
				For(len(out), 64, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						out[i] = i
					}
				})
				for i, v := range out {
					if v != i {
						t.Errorf("out[%d] = %d", i, v)
						return
					}
				}
			}()
		}
		wg.Wait()
	})
}

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	SetWorkers(0)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS %d", Workers(), runtime.GOMAXPROCS(0))
	}
	SetWorkers(-5)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative SetWorkers must reset to default")
	}
}

// TestRunSerialNoAlloc pins the zero-allocation property of the serial
// dispatch path: the whole steady-state training story rests on it.
func TestRunSerialNoAlloc(t *testing.T) {
	withWorkers(1, func() {
		var sum int
		fn := FuncWorker(func(lo, hi int) { sum += hi - lo })
		if n := testing.AllocsPerRun(100, func() { Run(1000, 1, fn) }); n != 0 {
			t.Fatalf("serial Run allocates %v objects per call, want 0", n)
		}
	})
}

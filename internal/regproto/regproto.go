// Package regproto defines the wire protocol the fleet uses to
// replicate the patient registry: the canonical versioned record, the
// shard layout shared by both tiers, the per-shard digests that drive
// anti-entropy, and the JSON bodies of the replica-apply / digest /
// sync admin endpoints.
//
// Replication is last-writer-wins on a per-record monotonically
// increasing version assigned by the acting ring owner at mutation
// time. Deletes are tombstones (Deleted=true) so a delete replicated
// to a lagging peer cannot be resurrected by an older set record.
package regproto

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash/fnv"
	"math"
	"sort"
)

// Shards is the registry shard count; it must match the serving
// tier's internal shard map so per-shard digests line up across
// replicas.
const Shards = 16

// Header names used by the replication paths.
const (
	// ReplicateHeader marks a router-originated mutation: the backend
	// echoes the canonical versioned record in the response so the
	// router can fan it out to the replica group.
	ReplicateHeader = "X-Replicate"
	// ServedByReplicaHeader tags a registered-patient response that
	// was served by a replica because the ring owner was unavailable.
	ServedByReplicaHeader = "X-Served-By-Replica"
)

// ShardOf maps a patient id onto its registry shard (FNV-1a 32-bit,
// mod Shards).
func ShardOf(id string) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % Shards)
}

// Record is the canonical replicated registry record. A tombstone
// (Deleted=true) carries no profile payload but keeps its version so
// last-writer-wins merges order deletes against writes.
type Record struct {
	ID       string    `json:"id"`
	Version  uint64    `json:"version"`
	Deleted  bool      `json:"deleted,omitempty"`
	Regimen  []int     `json:"regimen,omitempty"`
	Features []float64 `json:"features,omitempty"`
}

// Newer reports whether r supersedes other under last-writer-wins.
func (r Record) Newer(other Record) bool { return r.Version > other.Version }

// ShardDigest summarizes one shard's records: how many, and a SHA-256
// over the sorted full record contents (ids, versions, tombstones,
// regimens, features). Two replicas whose digests match hold
// byte-identical shard state.
type ShardDigest struct {
	Shard   int    `json:"shard"`
	Records int    `json:"records"`
	Digest  string `json:"digest"`
}

// DigestResponse is the body of GET /v1/admin/registry/digest.
type DigestResponse struct {
	Records int           `json:"records"`
	Shards  []ShardDigest `json:"shards"`
}

// SyncRequest is the body of POST /v1/admin/registry/sync: pull
// records by shard (empty Shards = all shards) or by explicit id.
type SyncRequest struct {
	Shards []int    `json:"shards,omitempty"`
	IDs    []string `json:"ids,omitempty"`
}

// SyncResponse returns the pulled records, tombstones included.
type SyncResponse struct {
	Records []Record `json:"records"`
}

// ApplyRequest is the body of POST /v1/admin/registry/apply: install
// replicated records, each gated on its version (apply only if the
// incoming version is newer than the locally stored one).
type ApplyRequest struct {
	Records []Record `json:"records"`
}

// ApplyResult reports the per-record outcome: Applied says whether
// the record was installed; Version is the version now stored locally
// (the incoming one if applied, the newer local one if stale).
type ApplyResult struct {
	ID      string `json:"id"`
	Applied bool   `json:"applied"`
	Version uint64 `json:"version"`
}

// ApplyResponse is the replica-apply outcome.
type ApplyResponse struct {
	Applied int           `json:"applied"`
	Stale   int           `json:"stale"`
	Results []ApplyResult `json:"results"`
}

// DigestShards computes the per-shard digests of a record set.
// Records are bucketed by ShardOf and hashed in id order, so the
// result is independent of input order. Every shard is present in the
// output, empty ones included (their digest covers zero records).
func DigestShards(records []Record) []ShardDigest {
	byShard := make([][]Record, Shards)
	for _, r := range records {
		s := ShardOf(r.ID)
		byShard[s] = append(byShard[s], r)
	}
	out := make([]ShardDigest, Shards)
	for s := range byShard {
		recs := byShard[s]
		sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
		h := sha256.New()
		var buf [8]byte
		for _, r := range recs {
			h.Write([]byte(r.ID))
			h.Write([]byte{0})
			binary.LittleEndian.PutUint64(buf[:], r.Version)
			h.Write(buf[:])
			if r.Deleted {
				h.Write([]byte{1})
			} else {
				h.Write([]byte{0})
			}
			binary.LittleEndian.PutUint64(buf[:], uint64(len(r.Regimen)))
			h.Write(buf[:])
			for _, d := range r.Regimen {
				binary.LittleEndian.PutUint64(buf[:], uint64(int64(d)))
				h.Write(buf[:])
			}
			binary.LittleEndian.PutUint64(buf[:], uint64(len(r.Features)))
			h.Write(buf[:])
			for _, f := range r.Features {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
				h.Write(buf[:])
			}
		}
		out[s] = ShardDigest{Shard: s, Records: len(recs), Digest: hex.EncodeToString(h.Sum(nil))}
	}
	return out
}

// Merge folds a batch of records into an LWW-authoritative map: a
// record wins its slot if it is the first seen for its id or strictly
// newer than the held one.
func Merge(into map[string]Record, batch []Record) {
	for _, r := range batch {
		if cur, ok := into[r.ID]; !ok || r.Version > cur.Version {
			into[r.ID] = r
		}
	}
}

package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"dssddi/internal/obs"
)

// ReloadRequest is the router's /v1/admin/reload body. Path names a
// snapshot file visible to every backend (shared filesystem or
// per-backend copy at the same path); empty falls through to each
// backend's configured SnapshotPath.
type ReloadRequest struct {
	Path string `json:"path,omitempty"`
}

// RolloutStep reports one backend's slice of a rollout.
type RolloutStep struct {
	Backend  string `json:"backend"`
	Canary   bool   `json:"canary,omitempty"`
	OldEpoch int64  `json:"old_epoch,omitempty"`
	NewEpoch int64  `json:"new_epoch,omitempty"`
	Status   string `json:"status"` // "reloaded" | "failed" | "skipped"
	Error    string `json:"error,omitempty"`
}

// RolloutResponse is the router's /v1/admin/reload payload. On abort,
// Steps records exactly which backends reloaded before the failure so
// the operator knows whether the fleet is mixed.
type RolloutResponse struct {
	OK    bool          `json:"ok"`
	Error string        `json:"error,omitempty"`
	Steps []RolloutStep `json:"steps"`
}

// handleReload coordinates a fleet-wide model rollout: backends are
// reloaded one at a time in deterministic (sorted) order, the first
// acting as canary. Every step is verified — the backend's reload
// must succeed, bump its epoch, report the same model identity as the
// canary's, and answer a smoke suggest stamped with the new epoch —
// before the next backend is touched. Any mismatch aborts the rollout
// and the response reports exactly how far it got. Each backend's own
// hot-reload machinery guarantees its clients never see a mixed-model
// response; the rollout guarantees the fleet converges or the
// operator hears about it.
func (rt *Router) handleReload(w http.ResponseWriter, r *http.Request) {
	var req ReloadRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && err != io.EOF {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("invalid request body: %v", err)})
		return
	}

	rt.reloadMu.Lock()
	defer rt.reloadMu.Unlock()
	rt.rollouts.Add(1)

	// A rollout into a partially-healthy fleet would leave the ejected
	// members on the old model and resurface them mixed; require full
	// health up front.
	for _, name := range rt.order {
		if !rt.backends[name].health.Healthy() {
			rt.rolloutFailures.Add(1)
			writeJSON(w, http.StatusServiceUnavailable, apiError{
				Error: fmt.Sprintf("rollout requires a fully healthy fleet: backend %s is %s", name, rt.stateOf(name)),
			})
			return
		}
	}

	resp := RolloutResponse{OK: true}
	var fleetModel json.RawMessage
	for i, name := range rt.order {
		step := rt.rolloutOne(rt.backends[name], req.Path, i == 0, &fleetModel)
		resp.Steps = append(resp.Steps, step)
		if step.Status != "reloaded" {
			resp.OK = false
			resp.Error = fmt.Sprintf("rollout aborted at backend %s: %s", name, step.Error)
			for _, rest := range rt.order[i+1:] {
				resp.Steps = append(resp.Steps, RolloutStep{Backend: rest, Status: "skipped"})
			}
			rt.rolloutFailures.Add(1)
			writeJSON(w, http.StatusBadGateway, resp)
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) stateOf(name string) string {
	state, _, _ := rt.backends[name].health.snapshot()
	return state.String()
}

// rolloutOne reloads and verifies a single backend. fleetModel pins
// the model identity the canary converged on; later backends must
// match it bit for bit (marshaled SnapshotInfo), or the rollout is
// feeding the fleet from diverging snapshot files.
func (rt *Router) rolloutOne(b *backend, path string, canary bool, fleetModel *json.RawMessage) RolloutStep {
	step := RolloutStep{Backend: b.name, Canary: canary, Status: "failed"}

	// 1. Capture the pre-reload epoch.
	oldEpoch, err := rt.backendEpoch(b)
	if err != nil {
		step.Error = fmt.Sprintf("pre-reload healthz: %v", err)
		return step
	}
	step.OldEpoch = oldEpoch

	// 2. Trigger the backend's own zero-downtime reload.
	body, _ := json.Marshal(ReloadRequest{Path: path})
	resp, err := b.client.Post(b.base+"/v1/admin/reload", "application/json", bytes.NewReader(body))
	if err != nil {
		rt.noteFailure(b, "reload", err)
		step.Error = fmt.Sprintf("reload request: %v", err)
		return step
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		step.Error = fmt.Sprintf("reload returned %d: %s", resp.StatusCode, truncate(raw, 200))
		return step
	}
	var reload struct {
		Epoch int64           `json:"epoch"`
		Model json.RawMessage `json:"model"`
	}
	if err := json.Unmarshal(raw, &reload); err != nil {
		step.Error = fmt.Sprintf("reload response: %v", err)
		return step
	}
	step.NewEpoch = reload.Epoch

	// 3. Verify the epoch actually moved.
	if reload.Epoch <= oldEpoch {
		step.Error = fmt.Sprintf("epoch did not advance (%d -> %d)", oldEpoch, reload.Epoch)
		return step
	}

	// 4. Verify the fleet converges on one model identity.
	if *fleetModel == nil {
		*fleetModel = reload.Model
	} else if !bytes.Equal(*fleetModel, reload.Model) {
		step.Error = fmt.Sprintf("model identity diverges from canary: %s vs %s",
			truncate(reload.Model, 200), truncate(*fleetModel, 200))
		return step
	}

	// 5. Smoke suggest through the scoring path (cache bypassed) and
	// require it to be stamped with the new epoch.
	smokeBody := []byte(`{"patient": 0, "k": 1}`)
	req, err := http.NewRequest(http.MethodPost, b.base+"/v1/suggest", bytes.NewReader(smokeBody))
	if err != nil {
		step.Error = fmt.Sprintf("smoke request: %v", err)
		return step
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Cache-Control", "no-cache")
	smoke, err := b.client.Do(req)
	if err != nil {
		rt.noteFailure(b, "rollout smoke", err)
		step.Error = fmt.Sprintf("smoke suggest: %v", err)
		return step
	}
	io.Copy(io.Discard, smoke.Body)
	smoke.Body.Close()
	if smoke.StatusCode != http.StatusOK {
		step.Error = fmt.Sprintf("smoke suggest returned %d", smoke.StatusCode)
		return step
	}
	if got := smoke.Header.Get("X-Epoch"); got != fmt.Sprint(reload.Epoch) {
		step.Error = fmt.Sprintf("smoke suggest served by epoch %s, want %d", got, reload.Epoch)
		return step
	}

	b.epoch.Store(reload.Epoch)
	step.Status = "reloaded"
	return step
}

// backendEpoch reads one backend's current epoch from its /healthz.
func (rt *Router) backendEpoch(b *backend) (int64, error) {
	resp, err := b.client.Get(b.base + "/healthz")
	if err != nil {
		rt.noteFailure(b, "healthz", err)
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("healthz returned %d", resp.StatusCode)
	}
	var health struct {
		Epoch int64 `json:"epoch"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&health); err != nil {
		return 0, err
	}
	return health.Epoch, nil
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		return string(b[:n]) + "..."
	}
	return string(b)
}

// BackendHealth is one pool member's health summary.
type BackendHealth struct {
	Name      string `json:"name"`
	State     string `json:"state"`
	Epoch     int64  `json:"epoch"`
	Fails     int    `json:"consecutive_fails,omitempty"`
	Ejections int64  `json:"ejections,omitempty"`
}

// HealthResponse is the router's /healthz payload. Model mirrors one
// healthy backend's model block so cohort-discovering clients
// (loadgen) work unchanged against the router.
type HealthResponse struct {
	Status        string          `json:"status"` // ok | degraded | down
	UptimeSeconds float64         `json:"uptime_seconds"`
	Healthy       int             `json:"healthy_backends"`
	Total         int             `json:"total_backends"`
	Backends      []BackendHealth `json:"backends"`
	Model         json.RawMessage `json:"model,omitempty"`
	Build         obs.BuildInfo   `json:"build"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := HealthResponse{Total: len(rt.order), UptimeSeconds: time.Since(rt.start).Seconds(), Build: obs.Build()}
	var healthy []*backend
	for _, name := range rt.order {
		b := rt.backends[name]
		state, fails, ejections := b.health.snapshot()
		if state == stateHealthy {
			resp.Healthy++
			healthy = append(healthy, b)
		}
		resp.Backends = append(resp.Backends, BackendHealth{
			Name: name, State: state.String(), Epoch: b.epoch.Load(),
			Fails: fails, Ejections: ejections,
		})
	}
	status := http.StatusOK
	switch {
	case resp.Healthy == len(rt.order):
		resp.Status = "ok"
	case resp.Healthy > 0:
		resp.Status = "degraded"
	default:
		resp.Status = "down"
		status = http.StatusServiceUnavailable
	}
	// Any healthy backend can vouch for the model block; a transient
	// fetch failure on one (a fault-injected link, say) must not strip
	// the cohort info clients discover through it.
	for _, b := range healthy {
		if model, err := rt.backendModel(b); err == nil {
			resp.Model = model
			break
		}
	}
	writeJSON(w, status, resp)
}

// backendModel fetches the model block from one backend's /healthz.
func (rt *Router) backendModel(b *backend) (json.RawMessage, error) {
	resp, err := b.client.Get(b.base + "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("healthz returned %d", resp.StatusCode)
	}
	var health struct {
		Model json.RawMessage `json:"model"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&health); err != nil {
		return nil, err
	}
	return health.Model, nil
}

// BackendMetrics is one pool member's traffic and health counters.
type BackendMetrics struct {
	State     string  `json:"state"`
	Epoch     int64   `json:"epoch"`
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"transport_errors"`
	Retries   int64   `json:"retries"`
	Ejections int64   `json:"ejections"`
	P50Ms     float64 `json:"p50_ms"`
	P90Ms     float64 `json:"p90_ms"`
	P99Ms     float64 `json:"p99_ms"`
	// RoutedKeys counts requests whose routing key this backend owned;
	// KeyShare is its observed fraction, RingShare the fraction of the
	// hash circle it owns (the expected share). Divergence between the
	// two is either skew in the workload's patient mix or a bug in the
	// ring.
	RoutedKeys int64   `json:"routed_keys"`
	KeyShare   float64 `json:"key_share"`
	RingShare  float64 `json:"ring_share"`
}

// Metrics is the router's /metricsz payload.
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      int64   `json:"requests"`
	ProxyErrors   int64   `json:"proxy_errors"`
	Retries       int64   `json:"retries"`
	// PinnedUnavailable counts 503s where a pinned patient's owning
	// shard was out of rotation (no failover possible); DeadlineExhausted
	// counts 504s where the request budget ran out before any backend
	// answered.
	PinnedUnavailable int64 `json:"pinned_unavailable"`
	DeadlineExhausted int64 `json:"deadline_exhausted"`
	Rollouts          int64 `json:"rollouts"`
	RolloutFailures   int64 `json:"rollout_failures"`
	// Replication counters (all zero when ReplicationFactor is 1):
	// ReplicaReads counts registered-patient reads served by a
	// non-owner group member, ReadRepairs the stale replicas refreshed
	// by failover reads, ReplicationFanouts the replica applies fanned
	// out for acknowledged writes, QuorumFailures the mutations refused
	// for too few acks, and AntiEntropySyncs / AntiEntropyRecords the
	// reconciliation rounds run for recovering backends and the records
	// they moved.
	ReplicaReads       int64                     `json:"replica_reads"`
	ReadRepairs        int64                     `json:"read_repairs"`
	ReplicationFanouts int64                     `json:"replication_fanouts"`
	QuorumFailures     int64                     `json:"quorum_failures"`
	AntiEntropySyncs   int64                     `json:"anti_entropy_syncs"`
	AntiEntropyRecords int64                     `json:"anti_entropy_records"`
	Backends           map[string]BackendMetrics `json:"backends"`
}

func (rt *Router) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		rt.writePromMetrics(w)
		return
	}
	shares := rt.ring.Shares()
	total := rt.requests.Load()
	m := Metrics{
		UptimeSeconds:      time.Since(rt.start).Seconds(),
		Requests:           total,
		ProxyErrors:        rt.proxyErrors.Load(),
		Retries:            rt.retriesTotal.Load(),
		PinnedUnavailable:  rt.pinnedUnavailable.Load(),
		DeadlineExhausted:  rt.deadlineExhausted.Load(),
		Rollouts:           rt.rollouts.Load(),
		RolloutFailures:    rt.rolloutFailures.Load(),
		ReplicaReads:       rt.replicaReads.Load(),
		ReadRepairs:        rt.readRepairs.Load(),
		ReplicationFanouts: rt.replicationFanouts.Load(),
		QuorumFailures:     rt.quorumFailures.Load(),
		AntiEntropySyncs:   rt.antiEntropySyncs.Load(),
		AntiEntropyRecords: rt.antiEntropyRecords.Load(),
		Backends:           make(map[string]BackendMetrics, len(rt.order)),
	}
	for _, name := range rt.order {
		b := rt.backends[name]
		state, _, ejections := b.health.snapshot()
		bm := BackendMetrics{
			State:      state.String(),
			Epoch:      b.epoch.Load(),
			Requests:   b.requests.Load(),
			Errors:     b.errors.Load(),
			Retries:    b.retries.Load(),
			Ejections:  ejections,
			RoutedKeys: b.routedKeys.Load(),
			RingShare:  shares[name],
		}
		lat := b.lat.Snapshot()
		bm.P50Ms, bm.P90Ms, bm.P99Ms = lat.QuantileMs(0.50), lat.QuantileMs(0.90), lat.QuantileMs(0.99)
		if total > 0 {
			bm.KeyShare = float64(bm.RoutedKeys) / float64(total)
		}
		m.Backends[name] = bm
	}
	writeJSON(w, http.StatusOK, m)
}

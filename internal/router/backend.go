package router

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dssddi/internal/obs"
)

// healthState is one backend's position in the ejection/recovery
// state machine.
type healthState int32

const (
	// stateHealthy: taking traffic; consecutive failures accumulate
	// toward ejection.
	stateHealthy healthState = iota
	// stateEjected: out of rotation; after Cooldown the prober moves it
	// to half-open and sends a single trial probe.
	stateEjected
	// stateHalfOpen: one probe in flight decides recovery (-> healthy)
	// or re-ejection (-> ejected with a fresh cooldown).
	stateHalfOpen
)

func (s healthState) String() string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateEjected:
		return "ejected"
	case stateHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// healthMachine is the per-backend ejection/recovery state machine,
// kept free of I/O so it is directly unit-testable. Failures are
// transport-level (connect refused/reset, timeout) or failed health
// probes — an application-level 4xx/5xx from a live backend is not a
// health signal.
type healthMachine struct {
	failAfter int
	cooldown  time.Duration

	mu        sync.Mutex
	state     healthState
	fails     int // consecutive failures while healthy
	ejectedAt time.Time
	ejections int64
}

func newHealthMachine(failAfter int, cooldown time.Duration) *healthMachine {
	if failAfter <= 0 {
		failAfter = 3
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &healthMachine{failAfter: failAfter, cooldown: cooldown}
}

// OnSuccess records a successful probe or proxied request. In
// half-open it completes recovery; it returns true when the backend
// transitioned back to healthy.
func (m *healthMachine) OnSuccess() (recovered bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	recovered = m.state == stateHalfOpen
	m.state = stateHealthy
	m.fails = 0
	return recovered
}

// OnFailure records a transport failure at time now. It returns true
// when this failure ejected the backend (from healthy after failAfter
// consecutive failures, or instantly from half-open).
func (m *healthMachine) OnFailure(now time.Time) (ejected bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch m.state {
	case stateHealthy:
		m.fails++
		if m.fails >= m.failAfter {
			m.state = stateEjected
			m.ejectedAt = now
			m.ejections++
			return true
		}
	case stateHalfOpen:
		// The trial failed: re-eject with a fresh cooldown.
		m.state = stateEjected
		m.ejectedAt = now
		m.ejections++
		return true
	case stateEjected:
		// Late failures from requests already in flight; the clock is
		// not reset, or a flapping backend could starve its own trials.
	}
	return false
}

// ProbeDue reports whether the prober should send a half-open trial,
// transitioning ejected -> half-open when the cooldown has elapsed.
// At most one caller wins the transition, so the trial is single.
func (m *healthMachine) ProbeDue(now time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state == stateEjected && now.Sub(m.ejectedAt) >= m.cooldown {
		m.state = stateHalfOpen
		return true
	}
	return false
}

// RetryAfter estimates how long until this backend could plausibly
// take traffic again: the remainder of the ejection cooldown when
// ejected, one full cooldown otherwise (a half-open trial or
// accumulating failures — recovery time is unknowable, so quote the
// cycle length). Used to stamp Retry-After on pinned-key 503s.
func (m *healthMachine) RetryAfter(now time.Time) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state == stateEjected {
		if rem := m.cooldown - now.Sub(m.ejectedAt); rem > 0 {
			// Near cooldown expiry the remainder can be sub-second;
			// quoting it raw would render as Retry-After: 0 once
			// truncated to whole seconds, telling clients to hammer a
			// backend that is still out of rotation. Never quote less
			// than one second.
			if rem < time.Second {
				rem = time.Second
			}
			return rem
		}
	}
	return m.cooldown
}

// Healthy reports whether the backend is in rotation.
func (m *healthMachine) Healthy() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state == stateHealthy
}

func (m *healthMachine) snapshot() (state healthState, fails int, ejections int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state, m.fails, m.ejections
}

// backend is one pool member: its HTTP client (own transport, so
// connection reuse is per-backend and one slow backend cannot starve
// another's idle pool), health machine and counters.
type backend struct {
	name   string // host:port — the ring identity
	base   string // http://host:port
	client *http.Client
	health *healthMachine

	// epoch is the serving epoch the last successful health probe
	// reported — the router's view of rollout convergence.
	epoch atomic.Int64

	requests   atomic.Int64 // proxied attempts sent to this backend
	errors     atomic.Int64 // transport failures of proxied attempts
	retries    atomic.Int64 // attempts that were retries of a failed one
	routedKeys atomic.Int64 // requests whose key this backend owned
	// lat is the per-backend attempt latency distribution. Fixed
	// buckets shared with the serve tier, so the router's fleet view
	// can sum the per-backend histograms bucket-wise into an exact
	// aggregate (no lock, no sort — two atomic adds per attempt).
	lat obs.Histogram
}

func newBackend(name string, cfg Config) *backend {
	transport := &http.Transport{
		MaxIdleConns:        cfg.MaxIdleConns,
		MaxIdleConnsPerHost: cfg.MaxIdleConns,
		IdleConnTimeout:     90 * time.Second,
	}
	return &backend{
		name:   name,
		base:   "http://" + name,
		client: &http.Client{Transport: transport, Timeout: cfg.Timeout},
		health: newHealthMachine(cfg.FailAfter, cfg.Cooldown),
	}
}

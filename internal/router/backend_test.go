package router

import (
	"testing"
	"time"
)

// TestHealthMachineEjection: failAfter consecutive failures eject;
// any interleaved success resets the streak.
func TestHealthMachineEjection(t *testing.T) {
	m := newHealthMachine(3, time.Second)
	now := time.Now()
	if !m.Healthy() {
		t.Fatal("new machine should start healthy")
	}
	m.OnFailure(now)
	m.OnFailure(now)
	m.OnSuccess() // streak broken
	m.OnFailure(now)
	m.OnFailure(now)
	if !m.Healthy() {
		t.Fatal("2 consecutive failures after a success must not eject (failAfter=3)")
	}
	if ejected := m.OnFailure(now); !ejected {
		t.Fatal("3rd consecutive failure should eject")
	}
	if m.Healthy() {
		t.Fatal("ejected machine reports healthy")
	}
	if _, _, ejections := m.snapshot(); ejections != 1 {
		t.Fatalf("ejections = %d, want 1", ejections)
	}
}

// TestHealthMachineHalfOpenRecovery: after the cooldown exactly one
// trial is granted; success recovers, failure re-ejects with a fresh
// cooldown.
func TestHealthMachineHalfOpenRecovery(t *testing.T) {
	m := newHealthMachine(2, 100*time.Millisecond)
	t0 := time.Now()
	m.OnFailure(t0)
	m.OnFailure(t0)
	if m.Healthy() {
		t.Fatal("should be ejected")
	}

	if m.ProbeDue(t0.Add(50 * time.Millisecond)) {
		t.Fatal("probe granted before cooldown elapsed")
	}
	if !m.ProbeDue(t0.Add(150 * time.Millisecond)) {
		t.Fatal("probe not granted after cooldown")
	}
	// Half-open: no second trial until this one resolves.
	if m.ProbeDue(t0.Add(200 * time.Millisecond)) {
		t.Fatal("second trial granted while half-open")
	}
	if recovered := m.OnSuccess(); !recovered {
		t.Fatal("half-open success should report recovery")
	}
	if !m.Healthy() {
		t.Fatal("recovered machine should be healthy")
	}

	// Re-eject and fail the trial: back to ejected with a new clock.
	t1 := t0.Add(time.Second)
	m.OnFailure(t1)
	m.OnFailure(t1)
	if !m.ProbeDue(t1.Add(150 * time.Millisecond)) {
		t.Fatal("probe not granted after second cooldown")
	}
	trialAt := t1.Add(150 * time.Millisecond)
	if ejected := m.OnFailure(trialAt); !ejected {
		t.Fatal("half-open failure should re-eject")
	}
	if m.ProbeDue(trialAt.Add(50 * time.Millisecond)) {
		t.Fatal("cooldown was not reset by the failed trial")
	}
	if !m.ProbeDue(trialAt.Add(150 * time.Millisecond)) {
		t.Fatal("probe not granted after the reset cooldown")
	}
	if _, _, ejections := m.snapshot(); ejections != 3 {
		t.Fatalf("ejections = %d, want 3", ejections)
	}
}

// TestHealthMachineLateFailuresWhileEjected: stragglers from requests
// already in flight must not push the cooldown out indefinitely.
func TestHealthMachineLateFailuresWhileEjected(t *testing.T) {
	m := newHealthMachine(1, 100*time.Millisecond)
	t0 := time.Now()
	m.OnFailure(t0)
	for i := 0; i < 10; i++ {
		m.OnFailure(t0.Add(time.Duration(i*20) * time.Millisecond))
	}
	if !m.ProbeDue(t0.Add(150 * time.Millisecond)) {
		t.Fatal("late failures while ejected delayed the half-open trial")
	}
}

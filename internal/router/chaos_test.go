package router

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dssddi/internal/chaos"
	"dssddi/internal/serve"
)

// TestRouterSurvivesChaoticBackend puts a fault-injecting TCP proxy
// between the router and one of three backends — connections reset,
// responses cut mid-body, latency added — and drives mixed reads
// through the fleet. The router must keep the overall success rate
// high (retries + failover around the flaky member) and, crucially,
// every 200 it does return must be bitwise-consistent per
// (patient, epoch): a flaky network may cost availability, never
// correctness.
func TestRouterSurvivesChaoticBackend(t *testing.T) {
	sys, _ := systems(t)
	f := &fleet{}
	for i := 0; i < 3; i++ {
		s, err := serve.New(sys, serve.Config{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		f.backends = append(f.backends, s)
		f.tss = append(f.tss, ts)
		f.names = append(f.names, strings.TrimPrefix(ts.URL, "http://"))
	}

	// Backend 0 goes behind the chaos proxy: 25% of connections RST,
	// 10% die mid-response, everything gets 5ms of latency.
	px, err := chaos.NewProxy("127.0.0.1:0", f.names[0], chaos.Faults{
		Latency:   5 * time.Millisecond,
		ResetProb: 0.25,
		DropProb:  0.10,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	f.names[0] = px.Addr()

	cfg := fastConfig()
	cfg.Backends = f.names
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.router = rt
	f.rts = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		f.rts.Close()
		rt.Close()
		px.Close()
		for i := range f.tss {
			f.tss[i].Close()
			f.backends[i].Close()
		}
	})

	seen := make(map[string]string) // patient|k|epoch -> body
	var ok, failed int
	for round := 0; round < 10; round++ {
		for patient := 0; patient < 8; patient++ {
			resp, body := postJSON(t, f.rts.URL+"/v1/suggest", map[string]any{"patient": patient, "k": 3})
			if resp.StatusCode != http.StatusOK {
				failed++
				continue
			}
			ok++
			epoch := resp.Header.Get("X-Epoch")
			if epoch == "" {
				t.Fatalf("200 without X-Epoch (patient %d)", patient)
			}
			key := fmt.Sprintf("%d|3|%s", patient, epoch)
			if prev, dup := seen[key]; dup {
				if prev != string(body) {
					t.Fatalf("bitwise divergence for %s under chaos:\n%s\nvs\n%s", key, prev, body)
				}
			} else {
				seen[key] = string(body)
			}
		}
	}
	total := ok + failed
	if ok < total*8/10 {
		t.Fatalf("only %d/%d requests succeeded under chaos; failover is not absorbing the faults", ok, total)
	}
	if px.Resets.Load() == 0 && px.Drops.Load() == 0 {
		t.Fatal("the chaos proxy injected nothing; the test proved nothing")
	}
}

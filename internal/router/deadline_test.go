package router

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeBackend is a minimal dssddi-serve stand-in: a live /healthz (so
// the prober keeps it in rotation) plus a configurable suggest
// handler. It lets deadline tests observe exactly what the router
// sends without training a model.
func fakeBackend(t *testing.T, suggest http.HandlerFunc) (name string) {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok","epoch":1}`))
	})
	mux.HandleFunc("POST /v1/suggest", suggest)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

func bootRouter(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { rts.Close(); rt.Close() })
	return rts
}

// Every proxied attempt carries X-Deadline-Ms: the per-attempt budget
// in milliseconds, capped by the attempt timeout and by whatever the
// client itself propagated.
func TestRouterStampsDeadline(t *testing.T) {
	var stamped atomic.Int64
	name := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		ms, err := strconv.ParseInt(r.Header.Get(deadlineHeader), 10, 64)
		if err != nil {
			t.Errorf("backend got %s=%q: %v", deadlineHeader, r.Header.Get(deadlineHeader), err)
		}
		stamped.Store(ms)
		w.Write([]byte(`{}`))
	})
	rts := bootRouter(t, Config{Backends: []string{name}, Timeout: 5 * time.Second})

	resp, _ := postJSON(t, rts.URL+"/v1/suggest", map[string]any{"patient": 0, "k": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("suggest: status %d", resp.StatusCode)
	}
	if ms := stamped.Load(); ms <= 0 || ms > 5000 {
		t.Fatalf("stamped deadline %dms, want in (0, 5000]", ms)
	}

	// A client-propagated deadline tighter than the router's own budget
	// wins; a looser one is clamped to the attempt timeout.
	for _, tc := range []struct {
		client string
		maxMs  int64
	}{
		{"250", 250},
		{"60000", 5000},
	} {
		req, err := http.NewRequest(http.MethodPost, rts.URL+"/v1/suggest",
			strings.NewReader(`{"patient": 0, "k": 1}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(deadlineHeader, tc.client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("suggest with deadline %s: status %d", tc.client, resp.StatusCode)
		}
		if ms := stamped.Load(); ms <= 0 || ms > tc.maxMs {
			t.Fatalf("client deadline %s: stamped %dms, want in (0, %d]", tc.client, ms, tc.maxMs)
		}
	}
}

// A request whose budget runs out before any backend answers gets a
// fast 504, not a hang: the attempt context is cut at the remaining
// budget and no further retries are attempted.
func TestRouterBudgetExhausted(t *testing.T) {
	name := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(300 * time.Millisecond)
		w.Write([]byte(`{}`))
	})
	rts := bootRouter(t, Config{
		Backends: []string{name}, Timeout: 5 * time.Second,
		MaxRetries: 2, RetryBackoff: 5 * time.Millisecond,
	})

	// Already-expired budget: answered without touching a backend.
	req, _ := http.NewRequest(http.MethodPost, rts.URL+"/v1/suggest",
		strings.NewReader(`{"patient": 0, "k": 1}`))
	req.Header.Set(deadlineHeader, "0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired budget: status %d, want 504", resp.StatusCode)
	}

	// A 50ms budget against a 300ms backend: the attempt is cut off at
	// the deadline and the router answers 504 well before the backend
	// would have.
	req, _ = http.NewRequest(http.MethodPost, rts.URL+"/v1/suggest",
		strings.NewReader(`{"patient": 0, "k": 1}`))
	req.Header.Set(deadlineHeader, "50")
	t0 := time.Now()
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	elapsed := time.Since(t0)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("exhausted budget: status %d, want 504", resp.StatusCode)
	}
	if elapsed > 250*time.Millisecond {
		t.Fatalf("budget-bound request took %v; the slow backend's clock leaked through", elapsed)
	}

	// Both 504s are visible in /metricsz.
	mresp, body := doJSON(t, http.MethodGet, rts.URL+"/metricsz", nil)
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz: status %d", mresp.StatusCode)
	}
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.DeadlineExhausted < 2 {
		t.Fatalf("deadline_exhausted = %d, want >= 2", m.DeadlineExhausted)
	}
}

// A pinned patient whose owning shard is out of rotation gets a 503
// that names the condition: Retry-After derived from the ejection
// cooldown, and a distinct pinned_unavailable counter — operators can
// tell "the shard holding this patient is down" apart from generic
// proxy errors.
func TestRouterPinnedUnavailableRetryAfter(t *testing.T) {
	f := bootFleet(t, 2, "", fastConfig())

	const id = "pin-me"
	resp, _ := doJSON(t, http.MethodPut, f.rts.URL+"/v1/patients/"+id, map[string]any{"regimen": []int{0, 1}})
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
	owner := resp.Header.Get("X-Backend")
	if owner == "" {
		t.Fatal("registration response missing X-Backend")
	}

	// Kill the owning backend and wait for the prober to eject it.
	for i, name := range f.names {
		if name == owner {
			f.tss[i].Close()
		}
	}
	waitFor(t, "owner ejection", 5*time.Second, func() bool {
		return !f.router.backends[owner].health.Healthy()
	})

	resp, _ = doJSON(t, http.MethodGet, f.rts.URL+"/v1/patients/"+id, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pinned read with dead owner: status %d, want 503", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("pinned 503 Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}

	mresp, body := doJSON(t, http.MethodGet, f.rts.URL+"/metricsz", nil)
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz: status %d", mresp.StatusCode)
	}
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.PinnedUnavailable < 1 {
		t.Fatalf("pinned_unavailable = %d, want >= 1", m.PinnedUnavailable)
	}
}

// RetryAfter quotes the remaining cooldown when ejected and a full
// cooldown otherwise, and retryAfterSeconds rounds up to whole
// seconds with a floor of 1.
func TestHealthRetryAfter(t *testing.T) {
	m := newHealthMachine(1, 10*time.Second)
	now := time.Now()
	if got := m.RetryAfter(now); got != 10*time.Second {
		t.Fatalf("healthy RetryAfter = %v, want full cooldown", got)
	}
	m.OnFailure(now) // ejects (failAfter=1)
	if got := m.RetryAfter(now.Add(4 * time.Second)); got != 6*time.Second {
		t.Fatalf("ejected RetryAfter = %v, want 6s remaining", got)
	}
	if got := m.RetryAfter(now.Add(11 * time.Second)); got != 10*time.Second {
		t.Fatalf("cooldown-elapsed RetryAfter = %v, want full cooldown", got)
	}
	for d, want := range map[time.Duration]string{
		300 * time.Millisecond:  "1",
		time.Second:             "1",
		1100 * time.Millisecond: "2",
		-time.Second:            "1",
	} {
		if got := retryAfterSeconds(d); got != want {
			t.Fatalf("retryAfterSeconds(%v) = %s, want %s", d, got, want)
		}
	}
}

package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"dssddi"
	"dssddi/internal/obs"
	"dssddi/internal/serve"
)

// bootTracedFleet is bootFleet with tracing sampled at 100% on the
// router and every backend, so trace-correlation tests can look up any
// request id on both tiers.
func bootTracedFleet(t *testing.T, n int, snapPath string, cfg Config) *fleet {
	t.Helper()
	sys, _ := systems(t)
	f := &fleet{}
	for i := 0; i < n; i++ {
		backendSys := sys
		if snapPath != "" {
			fh, err := os.Open(snapPath)
			if err != nil {
				t.Fatal(err)
			}
			backendSys, err = dssddi.Load(fh)
			fh.Close()
			if err != nil {
				t.Fatal(err)
			}
		}
		s, err := serve.New(backendSys, serve.Config{SnapshotPath: snapPath, TraceSample: 1, TraceRing: 512})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		f.backends = append(f.backends, s)
		f.tss = append(f.tss, ts)
		f.names = append(f.names, strings.TrimPrefix(ts.URL, "http://"))
	}
	cfg.Backends = f.names
	cfg.TraceSample = 1
	cfg.TraceRing = 512
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.router = rt
	f.rts = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		f.rts.Close()
		rt.Close()
		for i := range f.tss {
			f.tss[i].Close()
			f.backends[i].Close()
		}
	})
	return f
}

// TestTraceIDPropagationUnderReload hammers the router with
// id-stamped requests while a coordinated rolling reload swaps the
// fleet's model, asserting every response echoes the exact id the
// client sent — across retries, failovers and epoch transitions — and
// that a request id can afterwards be correlated into a retained
// trace on the router AND on exactly the backend that served it.
func TestTraceIDPropagationUnderReload(t *testing.T) {
	a, b := systems(t)
	dir := t.TempDir()
	pathA := saveSnapshot(t, a, dir, "a.snap")
	pathB := saveSnapshot(t, b, dir, "b.snap")
	f := bootTracedFleet(t, 3, pathA, fastConfig())

	const workers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, workers)
	for c := 0; c < workers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for it := 0; ; it++ {
				select {
				case <-stop:
					return
				default:
				}
				rid := fmt.Sprintf("hammer-%d-%d", c, it)
				buf, _ := json.Marshal(map[string]any{"patient": (c*7 + it) % 40, "k": 2})
				req, err := http.NewRequest(http.MethodPost, f.rts.URL+"/v1/suggest", bytes.NewReader(buf))
				if err != nil {
					errc <- err
					return
				}
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set(obs.RequestIDHeader, rid)
				resp, err := client.Do(req)
				if err != nil {
					errc <- fmt.Errorf("worker %d: transport error: %v", c, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("worker %d: status %d", c, resp.StatusCode)
					return
				}
				if got := resp.Header.Get(obs.RequestIDHeader); got != rid {
					errc <- fmt.Errorf("worker %d: request id %q came back as %q", c, rid, got)
					return
				}
			}
		}(c)
	}

	time.Sleep(100 * time.Millisecond)
	resp, body := postJSON(t, f.rts.URL+"/v1/admin/reload", ReloadRequest{Path: pathB})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mid-load rollout: status %d: %s", resp.StatusCode, body)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Quiesced: send one last tagged request and correlate it end to
	// end — router trace names the backend, that backend retains a
	// trace with the same id, and no other backend does.
	rid := obs.NewRequestID()
	buf, _ := json.Marshal(map[string]any{"patient": 3, "k": 2})
	req, err := http.NewRequest(http.MethodPost, f.rts.URL+"/v1/suggest", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, rid)
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	served := r2.Header.Get("X-Backend")
	if served == "" {
		t.Fatal("response missing X-Backend")
	}

	routerTraces := f.router.Tracer().Find(rid)
	if len(routerTraces) == 0 {
		t.Fatalf("router retained no trace for %s", rid)
	}
	if got := routerTraces[0].Backend; got != served {
		t.Fatalf("router trace names backend %q, X-Backend says %q", got, served)
	}
	holders := 0
	for i, s := range f.backends {
		views := s.Tracer().Find(rid)
		if f.names[i] == served {
			if len(views) == 0 {
				t.Fatalf("serving backend %s retained no trace for %s", served, rid)
			}
			holders++
			continue
		}
		if len(views) != 0 {
			t.Fatalf("backend %s retained a trace for %s it never served", f.names[i], rid)
		}
	}
	if holders != 1 {
		t.Fatalf("id %s held by %d backends, want 1", rid, holders)
	}
}

// TestRouterFleetHistogramMergeEqualsSum drives traffic through the
// fleet, then scrapes the router's Prometheus exposition and asserts
// the fleet-merged latency histogram is the exact bucket-wise (and
// count-wise) sum of the per-backend histograms — the property that
// makes fleet aggregation lossless rather than an estimate.
func TestRouterFleetHistogramMergeEqualsSum(t *testing.T) {
	f := bootFleet(t, 3, "", fastConfig())
	for i := 0; i < 60; i++ {
		resp, body := postJSON(t, f.rts.URL+"/v1/suggest", map[string]any{"patient": i % 40, "k": 2})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("suggest %d: status %d: %s", i, resp.StatusCode, body)
		}
	}

	resp, err := http.Get(f.rts.URL + "/metricsz?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	set, err := obs.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("router exposition failed to parse: %v", err)
	}
	if _, err := set.CheckHistograms(); err != nil {
		t.Fatalf("router exposition histograms inconsistent: %v", err)
	}

	fleetCount, ok := set.Value("dssddi_router_fleet_duration_seconds_count", nil)
	if !ok {
		t.Fatal("fleet histogram count missing")
	}
	var backendSum float64
	for _, name := range f.names {
		c, ok := set.Value("dssddi_router_backend_duration_seconds_count", map[string]string{"backend": name})
		if !ok {
			t.Fatalf("backend %s histogram count missing", name)
		}
		backendSum += c
	}
	if fleetCount != backendSum || fleetCount < 60 {
		t.Fatalf("fleet count %v != sum of backend counts %v (or < 60 requests)", fleetCount, backendSum)
	}

	// Per-bucket equality, not just totals: for every le the fleet
	// bucket must equal the sum across backends.
	buckets := make(map[string]float64) // le -> summed backend value
	fleetBuckets := make(map[string]float64)
	for _, s := range set.Series {
		switch s.Name {
		case "dssddi_router_backend_duration_seconds_bucket":
			buckets[s.Labels["le"]] += s.Value
		case "dssddi_router_fleet_duration_seconds_bucket":
			fleetBuckets[s.Labels["le"]] = s.Value
		}
	}
	if len(fleetBuckets) == 0 {
		t.Fatal("no fleet histogram buckets in exposition")
	}
	for le, want := range buckets {
		if got := fleetBuckets[le]; got != want {
			t.Fatalf("fleet bucket le=%s = %v, sum of backends = %v", le, got, want)
		}
	}
}

package router

import (
	"bytes"
	"net/http"
	"time"

	"dssddi/internal/obs"
)

// writePromMetrics renders /metricsz?format=prometheus for the
// router: its own counters, per-backend attempt histograms, and a
// fleet-aggregated latency histogram whose buckets are the exact
// bucket-wise sum of the per-backend ones — the fixed shared bucket
// layout makes the merge integer addition, not estimation, so the
// fleet _count always equals the sum of the backend _counts.
func (rt *Router) writePromMetrics(w http.ResponseWriter) {
	var buf bytes.Buffer

	b := obs.Build()
	obs.PromHeader(&buf, "dssddi_router_build_info", "gauge", "Build identity of the running binary (value is always 1).")
	obs.PromSample(&buf, "dssddi_router_build_info",
		obs.PromLabel("commit", b.Short())+","+obs.PromLabel("go", b.GoVersion), 1)

	obs.PromHeader(&buf, "dssddi_router_uptime_seconds", "gauge", "Seconds since the router booted.")
	obs.PromSample(&buf, "dssddi_router_uptime_seconds", "", time.Since(rt.start).Seconds())
	obs.PromHeader(&buf, "dssddi_router_requests_total", "counter", "Routed requests.")
	obs.PromInt(&buf, "dssddi_router_requests_total", "", rt.requests.Load())
	obs.PromHeader(&buf, "dssddi_router_proxy_errors_total", "counter", "Requests answered 502/503/504 by the router itself.")
	obs.PromInt(&buf, "dssddi_router_proxy_errors_total", "", rt.proxyErrors.Load())
	obs.PromHeader(&buf, "dssddi_router_retries_total", "counter", "Proxy attempts that were retries of a failed one.")
	obs.PromInt(&buf, "dssddi_router_retries_total", "", rt.retriesTotal.Load())
	obs.PromHeader(&buf, "dssddi_router_pinned_unavailable_total", "counter", "Pinned-key 503s: the owning shard was out of rotation.")
	obs.PromInt(&buf, "dssddi_router_pinned_unavailable_total", "", rt.pinnedUnavailable.Load())
	obs.PromHeader(&buf, "dssddi_router_deadline_exhausted_total", "counter", "504s: the request budget ran out before any backend answered.")
	obs.PromInt(&buf, "dssddi_router_deadline_exhausted_total", "", rt.deadlineExhausted.Load())
	obs.PromHeader(&buf, "dssddi_router_rollouts_total", "counter", "Fleet rollouts attempted.")
	obs.PromInt(&buf, "dssddi_router_rollouts_total", "", rt.rollouts.Load())
	obs.PromHeader(&buf, "dssddi_router_rollout_failures_total", "counter", "Fleet rollouts aborted.")
	obs.PromInt(&buf, "dssddi_router_rollout_failures_total", "", rt.rolloutFailures.Load())

	obs.PromHeader(&buf, "dssddi_router_replica_reads_total", "counter", "Registered-patient reads served by a non-owner replica.")
	obs.PromInt(&buf, "dssddi_router_replica_reads_total", "", rt.replicaReads.Load())
	obs.PromHeader(&buf, "dssddi_router_read_repairs_total", "counter", "Stale replicas refreshed in the background (failover reads and failed fan-out applies).")
	obs.PromInt(&buf, "dssddi_router_read_repairs_total", "", rt.readRepairs.Load())
	obs.PromHeader(&buf, "dssddi_router_replication_fanouts_total", "counter", "Replica applies fanned out for acknowledged registry writes.")
	obs.PromInt(&buf, "dssddi_router_replication_fanouts_total", "", rt.replicationFanouts.Load())
	obs.PromHeader(&buf, "dssddi_router_quorum_failures_total", "counter", "Registry mutations refused because the write quorum was not met.")
	obs.PromInt(&buf, "dssddi_router_quorum_failures_total", "", rt.quorumFailures.Load())
	obs.PromHeader(&buf, "dssddi_router_anti_entropy_syncs_total", "counter", "Anti-entropy reconciliation rounds run for recovering backends.")
	obs.PromInt(&buf, "dssddi_router_anti_entropy_syncs_total", "", rt.antiEntropySyncs.Load())
	obs.PromHeader(&buf, "dssddi_router_anti_entropy_records_total", "counter", "Records moved by anti-entropy and read repair pushes.")
	obs.PromInt(&buf, "dssddi_router_anti_entropy_records_total", "", rt.antiEntropyRecords.Load())
	obs.PromHeader(&buf, "dssddi_router_replication_lag_seconds", "histogram", "Owner-ack to replica-ack fan-out latency.")
	obs.PromHistogram(&buf, "dssddi_router_replication_lag_seconds", "", rt.replLag.Snapshot())

	obs.PromHeader(&buf, "dssddi_router_backend_up", "gauge", "1 when the backend is in rotation.")
	for _, name := range rt.order {
		up := int64(0)
		if rt.backends[name].health.Healthy() {
			up = 1
		}
		obs.PromInt(&buf, "dssddi_router_backend_up", obs.PromLabel("backend", name), up)
	}
	obs.PromHeader(&buf, "dssddi_router_backend_epoch", "gauge", "Serving epoch last reported by the backend.")
	for _, name := range rt.order {
		obs.PromInt(&buf, "dssddi_router_backend_epoch", obs.PromLabel("backend", name), rt.backends[name].epoch.Load())
	}
	obs.PromHeader(&buf, "dssddi_router_backend_requests_total", "counter", "Proxy attempts sent to the backend.")
	for _, name := range rt.order {
		obs.PromInt(&buf, "dssddi_router_backend_requests_total", obs.PromLabel("backend", name), rt.backends[name].requests.Load())
	}
	obs.PromHeader(&buf, "dssddi_router_backend_transport_errors_total", "counter", "Transport failures of proxy attempts.")
	for _, name := range rt.order {
		obs.PromInt(&buf, "dssddi_router_backend_transport_errors_total", obs.PromLabel("backend", name), rt.backends[name].errors.Load())
	}
	obs.PromHeader(&buf, "dssddi_router_backend_ejections_total", "counter", "Times the backend was ejected from rotation.")
	for _, name := range rt.order {
		_, _, ejections := rt.backends[name].health.snapshot()
		obs.PromInt(&buf, "dssddi_router_backend_ejections_total", obs.PromLabel("backend", name), ejections)
	}

	var fleet obs.HistogramSnapshot
	obs.PromHeader(&buf, "dssddi_router_backend_duration_seconds", "histogram", "Proxy attempt latency by backend.")
	for _, name := range rt.order {
		snap := rt.backends[name].lat.Snapshot()
		fleet.Add(snap)
		obs.PromHistogram(&buf, "dssddi_router_backend_duration_seconds", obs.PromLabel("backend", name), snap)
	}
	obs.PromHeader(&buf, "dssddi_router_fleet_duration_seconds", "histogram", "Proxy attempt latency across the whole fleet (exact bucket-wise sum of the per-backend histograms).")
	obs.PromHistogram(&buf, "dssddi_router_fleet_duration_seconds", "", fleet)

	w.Header().Set("Content-Type", obs.PromContentType)
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

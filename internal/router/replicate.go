package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dssddi/internal/obs"
	"dssddi/internal/regproto"
)

// Registry replication. With ReplicationFactor R > 1 every registered
// patient's record lives on its ring owner plus the R-1 distinct ring
// successors — a deterministic replica group that is a pure function
// of the key and the member set. The router is the replication
// coordinator:
//
//   - Writes go to the acting owner (first in-rotation group member)
//     with an X-Replicate header; the backend assigns the record's
//     monotonic version, WAL-logs it, and echoes the canonical record,
//     which the router fans out to the remaining in-rotation group
//     members. The write is acknowledged once the available-bounded
//     quorum has it.
//   - Reads fail over owner -> successors within the group; a response
//     served by a non-owner is tagged X-Served-By-Replica, and a
//     replica found missing the record is read-repaired in the
//     background from the member that had it.
//   - A recovering backend reconciles through anti-entropy (digest
//     compare + record pull/push, last-writer-wins) before the health
//     machine returns it to rotation, so it rejoins converged, not
//     stale.

// replicaGroup is the ring-ordered replica group for key: owner first,
// then distinct successors.
func (rt *Router) replicaGroup(key string) []string {
	return rt.ring.Successors(key, rt.cfg.ReplicationFactor)
}

// capturedResponse is one fully-buffered backend response — the
// replication paths inspect status (404-failover, quorum decisions)
// before anything is relayed to the client.
type capturedResponse struct {
	status int
	header http.Header
	body   []byte
}

// proxyCapture sends one attempt to one backend and buffers the whole
// response. Transport failures feed the health machine and return an
// error; any HTTP response is a successful proxy. extra headers (e.g.
// X-Replicate) are stamped onto the backend request.
func (rt *Router) proxyCapture(r *http.Request, tr *obs.Trace, b *backend, body []byte, remaining time.Duration, extra http.Header) (*capturedResponse, error) {
	b.requests.Add(1)
	url := b.base + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	attemptTimeout := rt.cfg.Timeout
	if remaining < attemptTimeout {
		attemptTimeout = remaining
	}
	ctx, cancel := context.WithTimeout(r.Context(), attemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, r.Method, url, reader)
	if err != nil {
		b.errors.Add(1)
		return nil, err
	}
	copyProxyHeaders(req.Header, r.Header)
	for k, vs := range extra {
		req.Header[k] = vs
	}
	req.Header.Set(deadlineHeader, strconv.FormatInt(attemptTimeout.Milliseconds(), 10))
	t0 := time.Now()
	resp, err := b.client.Do(req)
	lat := time.Since(t0)
	if tr != nil {
		tr.SpanAt("proxy:"+b.name, t0, t0.Add(lat))
	}
	if err != nil {
		b.errors.Add(1)
		tr.Eventf("backend %s failed: %v", b.name, err)
		rt.noteFailure(b, "proxy", err)
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxBodyBytes+1))
	if err == nil && resp.ContentLength >= 0 && int64(len(raw)) != resp.ContentLength {
		err = fmt.Errorf("short body: %d of %d bytes", len(raw), resp.ContentLength)
	}
	if err != nil {
		b.errors.Add(1)
		rt.noteFailure(b, "proxy", err)
		return nil, err
	}
	b.lat.Observe(lat)
	rt.noteSuccess(b)
	tr.SetBackend(b.name)
	return &capturedResponse{status: resp.StatusCode, header: resp.Header, body: raw}, nil
}

// relayCaptured writes a buffered backend response to the client.
func relayCaptured(w http.ResponseWriter, cr *capturedResponse, backendName string) {
	h := w.Header()
	for k, vs := range cr.header {
		if isHopByHop(k) {
			continue
		}
		h[k] = vs
	}
	h.Set("X-Backend", backendName)
	w.WriteHeader(cr.status)
	w.Write(cr.body)
}

// forwardPinnedRead serves a registered-patient read from the key's
// replica group: the owner first, then successors. A member that is
// out of rotation is skipped; a transport failure moves on (and feeds
// the health machine); a 404 is remembered and the walk continues —
// the record may live on a later member, in which case the 404-ing
// replicas are stale and get read-repaired in the background. Only
// when every reachable member says 404 is the patient genuinely
// unregistered.
func (rt *Router) forwardPinnedRead(w http.ResponseWriter, r *http.Request, tr *obs.Trace, body []byte, key string, group []string, deadline time.Time) {
	id := strings.TrimPrefix(key, "p|")
	backoff := rt.cfg.RetryBackoff
	var notFound *capturedResponse
	var notFoundFrom string
	var stale []string // members that answered 404 before a hit
	var lastErr error

	// One pass over the group, then MaxRetries extra passes with
	// backoff for the case where every member failed at transport
	// level (e.g. the whole group is mid-restart).
	for pass := 0; pass <= rt.cfg.MaxRetries; pass++ {
		if pass > 0 {
			remaining := time.Until(deadline)
			if remaining <= 0 || backoff >= remaining {
				break
			}
			tr.Eventf("pinned read retry pass %d after %s", pass, backoff)
			time.Sleep(backoff)
			backoff *= 2
			rt.retriesTotal.Add(1)
		}
		tried := 0
		for _, name := range group {
			b := rt.backends[name]
			if !b.health.Healthy() && pass == 0 {
				continue // ejected members reconcile before serving reads
			}
			remaining := time.Until(deadline)
			if remaining <= 0 {
				break
			}
			tried++
			cr, err := rt.proxyCapture(r, tr, b, body, remaining, nil)
			if err != nil {
				lastErr = fmt.Errorf("backend %s unreachable", b.name)
				if pass > 0 {
					b.retries.Add(1)
				}
				continue
			}
			if cr.status == http.StatusNotFound {
				if notFound == nil {
					notFound, notFoundFrom = cr, b.name
				}
				stale = append(stale, b.name)
				tr.Eventf("backend %s misses %q; walking group", b.name, id)
				continue
			}
			if name != group[0] {
				rt.replicaReads.Add(1)
				cr.header.Set(regproto.ServedByReplicaHeader, b.name)
				tr.Eventf("read failed over to replica %s", b.name)
			}
			if cr.status < 300 && len(stale) > 0 {
				rt.scheduleReadRepair(id, b.name, stale)
			}
			relayCaptured(w, cr, b.name)
			return
		}
		if tried == 0 {
			break // nothing in rotation; no point backing off
		}
	}

	if notFound != nil {
		// Every reachable group member agrees: not registered.
		relayCaptured(w, notFound, notFoundFrom)
		return
	}
	rt.proxyErrors.Add(1)
	if !rt.anyHealthy(group) {
		owner := rt.backends[group[0]]
		rt.pinnedUnavailable.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(owner.health.RetryAfter(time.Now())))
		writeJSON(w, http.StatusServiceUnavailable, apiError{
			Error: fmt.Sprintf("router: backend %s owning this patient is out of rotation", owner.name),
		})
		return
	}
	if time.Until(deadline) <= 0 {
		rt.deadlineExhausted.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, apiError{Error: "router: request budget exhausted"})
		return
	}
	msg := "router: request failed"
	if lastErr != nil {
		msg = "router: " + lastErr.Error()
	}
	writeJSON(w, http.StatusBadGateway, apiError{Error: msg})
}

// withRetry runs f up to attempts times, sleeping a doubling backoff
// between tries. Chaotic links drop individual connections, not whole
// backends: replication control traffic (applies, syncs, digests)
// retries through transient failures instead of treating the first
// reset as truth.
func withRetry(attempts int, backoff time.Duration, f func() error) error {
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if err = f(); err == nil {
			return nil
		}
	}
	return err
}

// repairAttempts bounds background repair retries. Each failed attempt
// doubles the backoff, so the chain stays short in wall-clock terms
// while surviving several consecutive connection-level faults.
const repairAttempts = 6

// syncRecordsRetry is syncRecords with transient-failure retries.
func (rt *Router) syncRecordsRetry(b *backend, req regproto.SyncRequest, attempts int) ([]regproto.Record, error) {
	var recs []regproto.Record
	err := withRetry(attempts, rt.cfg.RetryBackoff, func() (e error) {
		recs, e = rt.syncRecords(b, req)
		return
	})
	return recs, err
}

// fetchDigestRetry is fetchDigest with transient-failure retries.
func (rt *Router) fetchDigestRetry(b *backend, attempts int) (*regproto.DigestResponse, error) {
	var dr *regproto.DigestResponse
	err := withRetry(attempts, rt.cfg.RetryBackoff, func() (e error) {
		dr, e = rt.fetchDigest(b)
		return
	})
	return dr, err
}

// scheduleReadRepair refreshes replicas that missed a record, pulling
// the canonical copy from the member that served the read and applying
// it (version-gated, so a concurrent newer write always wins) to the
// stale members. Runs in the background — the read that discovered the
// staleness has already been answered.
func (rt *Router) scheduleReadRepair(id, from string, stale []string) {
	targets := append([]string(nil), stale...)
	rt.repairWG.Add(1)
	go func() {
		defer rt.repairWG.Done()
		recs, err := rt.syncRecordsRetry(rt.backends[from], regproto.SyncRequest{IDs: []string{id}}, repairAttempts)
		if err != nil || len(recs) == 0 {
			return
		}
		repaired := false
		for _, name := range targets {
			b := rt.backends[name]
			if withRetry(repairAttempts, rt.cfg.RetryBackoff, func() error {
				return rt.applyRecords(b, recs)
			}) == nil {
				repaired = true
			}
		}
		if repaired {
			rt.readRepairs.Add(1)
			if rt.logger != nil {
				rt.logger.Info("read repair", "patient", id, "from", from, "repaired", targets)
			}
		}
	}()
}

// scheduleReplicaRepair keeps retrying a fan-out apply that failed in
// the request path. The write was already acknowledged under the
// available-bounded quorum; redundancy is restored in the background so
// a healthy-but-flaky member cannot silently decay into a stale replica
// that only the next anti-entropy round would catch.
func (rt *Router) scheduleReplicaRepair(b *backend, rec regproto.Record) {
	rt.repairWG.Add(1)
	go func() {
		defer rt.repairWG.Done()
		err := withRetry(repairAttempts, rt.cfg.RetryBackoff, func() error {
			return rt.applyRecords(b, []regproto.Record{rec})
		})
		if err != nil {
			if rt.logger != nil {
				rt.logger.Warn("replica repair abandoned", "backend", b.name, "patient", rec.ID, "version", rec.Version, "err", err)
			}
			return
		}
		rt.readRepairs.Add(1)
	}()
}

// forwardReplicatedWrite routes a registry mutation under replication:
// the acting owner (first in-rotation group member) assigns the
// record's version and WAL-logs it, the router fans the echoed record
// out to the rest of the group, and the client is acknowledged once
// the available-bounded write quorum holds the record. Full-replace
// PUT and DELETE retry across the group on transport failure —
// replaying them is safe under last-writer-wins; PATCH stays
// single-shot.
func (rt *Router) forwardReplicatedWrite(w http.ResponseWriter, r *http.Request, body []byte, id string) {
	rt.requests.Add(1)
	tr := obs.FromContext(r.Context())
	key := registeredKey(id)
	group := rt.replicaGroup(key)
	if len(group) == 0 {
		rt.proxyErrors.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "router: no backends"})
		return
	}
	rt.backends[group[0]].routedKeys.Add(1)
	deadline, expired := rt.requestDeadline(r)
	if expired {
		rt.proxyErrors.Add(1)
		rt.deadlineExhausted.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, apiError{Error: "router: request deadline already expired"})
		return
	}

	attempts := 1
	if r.Method != http.MethodPatch {
		attempts += rt.cfg.MaxRetries
	}
	extra := http.Header{}
	extra.Set(regproto.ReplicateHeader, "1")
	backoff := rt.cfg.RetryBackoff
	var resp *capturedResponse
	var acting *backend
	var lastErr error
	cursor := 0
	for attempt := 0; attempt < attempts; attempt++ {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			break
		}
		var b *backend
		for n := 0; n < len(group); n++ {
			cand := rt.backends[group[(cursor+n)%len(group)]]
			if cand.health.Healthy() {
				b = cand
				cursor = (cursor + n) % len(group)
				break
			}
		}
		if b == nil {
			b = rt.backends[group[cursor%len(group)]]
		}
		if attempt > 0 {
			if backoff >= remaining {
				break
			}
			tr.Eventf("write retry %d: backoff %s then backend %s", attempt, backoff, b.name)
			time.Sleep(backoff)
			backoff *= 2
			b.retries.Add(1)
			rt.retriesTotal.Add(1)
			if remaining = time.Until(deadline); remaining <= 0 {
				break
			}
		}
		cr, err := rt.proxyCapture(r, tr, b, body, remaining, extra)
		if err != nil {
			lastErr = fmt.Errorf("backend %s unreachable", b.name)
			cursor++
			continue
		}
		resp, acting = cr, b
		break
	}

	if resp == nil {
		rt.proxyErrors.Add(1)
		if !rt.anyHealthy(group) {
			owner := rt.backends[group[0]]
			rt.pinnedUnavailable.Add(1)
			w.Header().Set("Retry-After", retryAfterSeconds(owner.health.RetryAfter(time.Now())))
			writeJSON(w, http.StatusServiceUnavailable, apiError{
				Error: fmt.Sprintf("router: backend %s owning this patient is out of rotation", owner.name),
			})
			return
		}
		if time.Until(deadline) <= 0 {
			rt.deadlineExhausted.Add(1)
			writeJSON(w, http.StatusGatewayTimeout, apiError{Error: "router: request budget exhausted"})
			return
		}
		msg := "router: request failed"
		if lastErr != nil {
			msg = "router: " + lastErr.Error()
		}
		writeJSON(w, http.StatusBadGateway, apiError{Error: msg})
		return
	}
	if resp.status >= 300 {
		// The acting owner rejected the mutation (400/404/...); nothing
		// was written, nothing fans out.
		relayCaptured(w, resp, acting.name)
		return
	}

	// Fan the canonical record out to the rest of the in-rotation
	// group. Ejected members are skipped — they reconcile through
	// anti-entropy before rejoining.
	var echo struct {
		Record *regproto.Record `json:"record"`
	}
	json.Unmarshal(resp.body, &echo)
	var acks atomic.Int64
	acks.Store(1) // the acting owner's WAL-backed ack
	fanout := 0
	if echo.Record != nil {
		t0 := time.Now()
		var wg sync.WaitGroup
		for _, name := range group {
			if name == acting.name {
				continue
			}
			b := rt.backends[name]
			if !b.health.Healthy() {
				continue
			}
			fanout++
			wg.Add(1)
			go func(b *backend) {
				defer wg.Done()
				if err := rt.applyRecords(b, []regproto.Record{*echo.Record}); err != nil {
					tr.Eventf("replica %s apply failed: %v", b.name, err)
					// The ack already stands (available-bounded quorum);
					// restore this member's copy off the request path.
					rt.scheduleReplicaRepair(b, *echo.Record)
					return
				}
				acks.Add(1)
				rt.replLag.Observe(time.Since(t0))
			}(b)
		}
		wg.Wait()
		rt.replicationFanouts.Add(int64(fanout))
		tr.Eventf("replicated %q v%d to %d/%d group members", id, echo.Record.Version, acks.Load()-1, fanout)
	}

	// The quorum is bounded by the members actually available: a
	// permanently dead replica costs redundancy, not writability.
	required := rt.cfg.WriteQuorum
	if avail := 1 + fanout; avail < required {
		required = avail
	}
	if int(acks.Load()) < required {
		rt.quorumFailures.Add(1)
		rt.proxyErrors.Add(1)
		writeJSON(w, http.StatusBadGateway, apiError{
			Error: fmt.Sprintf("router: write quorum not met (%d of %d required acks)", acks.Load(), required),
		})
		return
	}
	relayCaptured(w, resp, acting.name)
}

// applyRecords pushes records to one backend's replica-apply endpoint.
// Transport failures feed the health machine; a non-200 (the backend
// refused the batch) is an error without being a health signal.
func (rt *Router) applyRecords(b *backend, recs []regproto.Record) error {
	body, err := json.Marshal(regproto.ApplyRequest{Records: recs})
	if err != nil {
		return err
	}
	resp, err := b.client.Post(b.base+"/v1/admin/registry/apply", "application/json", bytes.NewReader(body))
	if err != nil {
		rt.noteFailure(b, "replica apply", err)
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("apply returned %d", resp.StatusCode)
	}
	return nil
}

// syncRecords pulls records from one backend. An empty request pulls
// the full registry (tombstones included).
func (rt *Router) syncRecords(b *backend, req regproto.SyncRequest) ([]regproto.Record, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := b.client.Post(b.base+"/v1/admin/registry/sync", "application/json", bytes.NewReader(body))
	if err != nil {
		rt.noteFailure(b, "registry sync", err)
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return nil, fmt.Errorf("sync returned %d", resp.StatusCode)
	}
	var sr regproto.SyncResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&sr); err != nil {
		return nil, err
	}
	return sr.Records, nil
}

// fetchDigest reads one backend's per-shard registry digests.
func (rt *Router) fetchDigest(b *backend) (*regproto.DigestResponse, error) {
	resp, err := b.client.Get(b.base + "/v1/admin/registry/digest")
	if err != nil {
		rt.noteFailure(b, "registry digest", err)
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return nil, fmt.Errorf("digest returned %d", resp.StatusCode)
	}
	var dr regproto.DigestResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&dr); err != nil {
		return nil, err
	}
	return &dr, nil
}

// reconcile runs one anti-entropy round for a recovering backend and
// verifies digest convergence; the caller returns b to rotation only
// on nil. The merge is bidirectional last-writer-wins: writes the
// rejoiner accepted as acting owner that never fanned out flow to
// their current group members, and everything the rejoiner missed (or
// lost — a wiped disk rejoins empty) flows in.
func (rt *Router) reconcile(b *backend) error {
	rt.antiEntropySyncs.Add(1)

	// The fleet's view, merged LWW across every in-rotation peer.
	merged := make(map[string]regproto.Record)
	for _, name := range rt.order {
		p := rt.backends[name]
		if p == b || !p.health.Healthy() {
			continue
		}
		recs, err := rt.syncRecordsRetry(p, regproto.SyncRequest{}, repairAttempts)
		if err != nil {
			return fmt.Errorf("pulling from peer %s: %w", p.name, err)
		}
		regproto.Merge(merged, recs)
	}
	own, err := rt.syncRecordsRetry(b, regproto.SyncRequest{}, repairAttempts)
	if err != nil {
		return fmt.Errorf("pulling from rejoiner: %w", err)
	}

	// Outward: records where the rejoiner is strictly newest.
	var outward []regproto.Record
	for _, rec := range own {
		if have, ok := merged[rec.ID]; !ok || rec.Newer(have) {
			outward = append(outward, rec)
		}
	}
	regproto.Merge(merged, own)
	pushed := 0
	if len(outward) > 0 {
		perPeer := make(map[string][]regproto.Record)
		for _, rec := range outward {
			for _, name := range rt.replicaGroup(registeredKey(rec.ID)) {
				if name != b.name && rt.backends[name].health.Healthy() {
					perPeer[name] = append(perPeer[name], rec)
				}
			}
		}
		for name, batch := range perPeer {
			sort.Slice(batch, func(i, j int) bool { return batch[i].ID < batch[j].ID })
			peer := rt.backends[name]
			if err := withRetry(repairAttempts, rt.cfg.RetryBackoff, func() error {
				return rt.applyRecords(peer, batch)
			}); err != nil {
				return fmt.Errorf("pushing %d records to %s: %w", len(batch), name, err)
			}
			pushed += len(batch)
		}
	}

	// Inward: everything the rejoiner's replica groups hold that it is
	// missing or stale on. The apply endpoint is version-gated, so
	// shipping the full expected set is idempotent.
	ownVersion := make(map[string]uint64, len(own))
	for _, rec := range own {
		ownVersion[rec.ID] = rec.Version
	}
	var inward []regproto.Record
	expected := make([]regproto.Record, 0, len(merged))
	for id, rec := range merged {
		if !rt.groupContains(registeredKey(id), b.name) {
			continue
		}
		expected = append(expected, rec)
		if v, ok := ownVersion[id]; !ok || v < rec.Version {
			inward = append(inward, rec)
		}
	}
	if len(inward) > 0 {
		sort.Slice(inward, func(i, j int) bool { return inward[i].ID < inward[j].ID })
		if err := withRetry(repairAttempts, rt.cfg.RetryBackoff, func() error {
			return rt.applyRecords(b, inward)
		}); err != nil {
			return fmt.Errorf("pushing %d records to rejoiner: %w", len(inward), err)
		}
		pushed += len(inward)
	}
	rt.antiEntropyRecords.Add(int64(pushed))

	// Convergence gate: the rejoiner's digests must match, shard for
	// shard, the digests of exactly the records its groups own.
	want := regproto.DigestShards(expected)
	got, err := rt.fetchDigestRetry(b, repairAttempts)
	if err != nil {
		return fmt.Errorf("verifying digest: %w", err)
	}
	if err := diffDigests(want, got.Shards); err != nil {
		return fmt.Errorf("rejoiner %s not converged: %w", b.name, err)
	}
	if rt.logger != nil {
		rt.logger.Info("anti-entropy reconciled", "backend", b.name, "records", len(expected), "pushed", pushed)
	}
	return nil
}

// groupContains reports whether name is in key's replica group.
func (rt *Router) groupContains(key, name string) bool {
	for _, n := range rt.replicaGroup(key) {
		if n == name {
			return true
		}
	}
	return false
}

// diffDigests compares two per-shard digest sets (both always carry
// every shard, in shard order).
func diffDigests(want, got []regproto.ShardDigest) error {
	if len(want) != len(got) {
		return fmt.Errorf("digest shape mismatch: %d vs %d shards", len(got), len(want))
	}
	for i := range want {
		if want[i].Shard != got[i].Shard || want[i].Digest != got[i].Digest {
			return fmt.Errorf("shard %d diverges (%d vs %d records)", want[i].Shard, got[i].Records, want[i].Records)
		}
	}
	return nil
}

// VerifyBackend is one backend's slice of a fleet verification.
type VerifyBackend struct {
	Backend string `json:"backend"`
	State   string `json:"state"`
	Records int    `json:"records"`
	OK      bool   `json:"ok"`
	Error   string `json:"error,omitempty"`
}

// VerifyResponse is the /v1/admin/registry/verify payload: whether
// every in-rotation backend's registry digests match the fleet-merged
// expectation for its replica groups.
type VerifyResponse struct {
	OK       bool            `json:"ok"`
	Records  int             `json:"records"` // live (non-tombstone) fleet records
	Backends []VerifyBackend `json:"backends"`
}

// handleRegistryVerify audits replication convergence across the
// in-rotation fleet: it merges every backend's records (LWW), then
// checks each backend's digests against exactly the records its
// replica groups should hold. Ejected members are reported but not
// audited — they reconcile before rejoining.
func (rt *Router) handleRegistryVerify(w http.ResponseWriter, _ *http.Request) {
	merged := make(map[string]regproto.Record)
	resp := VerifyResponse{OK: true}
	healthy := make(map[string][]regproto.Record)
	for _, name := range rt.order {
		b := rt.backends[name]
		if !b.health.Healthy() {
			resp.Backends = append(resp.Backends, VerifyBackend{Backend: name, State: rt.stateOf(name), OK: true})
			continue
		}
		recs, err := rt.syncRecordsRetry(b, regproto.SyncRequest{}, repairAttempts)
		if err != nil {
			resp.OK = false
			resp.Backends = append(resp.Backends, VerifyBackend{Backend: name, State: rt.stateOf(name), Error: err.Error()})
			continue
		}
		healthy[name] = recs
		regproto.Merge(merged, recs)
	}
	for id, rec := range merged {
		if !rec.Deleted {
			resp.Records++
		}
		_ = id
	}
	for _, name := range rt.order {
		recs, ok := healthy[name]
		if !ok {
			continue
		}
		vb := VerifyBackend{Backend: name, State: rt.stateOf(name), Records: len(recs), OK: true}
		var expected []regproto.Record
		for id, rec := range merged {
			if rt.groupContains(registeredKey(id), name) {
				expected = append(expected, rec)
			}
		}
		got, err := rt.fetchDigestRetry(rt.backends[name], repairAttempts)
		if err != nil {
			vb.OK, vb.Error = false, err.Error()
		} else if err := diffDigests(regproto.DigestShards(expected), got.Shards); err != nil {
			vb.OK, vb.Error = false, err.Error()
		}
		if !vb.OK {
			resp.OK = false
		}
		resp.Backends = append(resp.Backends, vb)
	}
	status := http.StatusOK
	if !resp.OK {
		status = http.StatusConflict
	}
	writeJSON(w, status, resp)
}

package router

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dssddi/internal/regproto"
	"dssddi/internal/serve"
)

// replConfig is fastConfig with replication on: every record on its
// owner plus one ring successor, acknowledged at quorum 2 when both
// are in rotation.
func replConfig() Config {
	cfg := fastConfig()
	cfg.ReplicationFactor = 2
	cfg.WriteQuorum = 2
	return cfg
}

// swapHandler lets a test replace a backend's entire serve.Server
// behind a stable address — simulating a process that restarted with
// an empty disk.
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	h.ServeHTTP(w, r)
}

func (s *swapHandler) swap(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// routerMetrics fetches and decodes the router's /metricsz JSON.
func routerMetrics(t *testing.T, url string) Metrics {
	t.Helper()
	resp, body := doJSON(t, http.MethodGet, url+"/metricsz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz: status %d", resp.StatusCode)
	}
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

// ownerOf finds a registered-patient id owned by the named backend on
// an identically configured ring.
func ownerOf(t *testing.T, names []string, vnodes int, owner, prefix string) string {
	t.Helper()
	ring := NewRing(vnodes)
	for _, n := range names {
		ring.Add(n)
	}
	for i := 0; i < 5000; i++ {
		id := fmt.Sprintf("%s-%d", prefix, i)
		if ring.Lookup(registeredKey(id)) == owner {
			return id
		}
	}
	t.Fatalf("no id with owner %s found", owner)
	return ""
}

// TestReplicatedWriteFanout: with R=2 a mutation lands on the owner
// and exactly one ring successor; the rest of the fleet never sees it.
func TestReplicatedWriteFanout(t *testing.T) {
	f := bootFleet(t, 3, "", replConfig())
	const id = "fanout-patient"
	resp, body := doJSON(t, http.MethodPut, f.rts.URL+"/v1/patients/"+id, map[string]any{"regimen": []int{0, 1, 2}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT: status %d: %s", resp.StatusCode, body)
	}

	group := f.router.replicaGroup(registeredKey(id))
	if len(group) != 2 {
		t.Fatalf("replica group = %v, want 2 members", group)
	}
	inGroup := map[string]bool{group[0]: true, group[1]: true}
	for i, name := range f.names {
		direct, _ := doJSON(t, http.MethodGet, f.tss[i].URL+"/v1/patients/"+id, nil)
		want := http.StatusNotFound
		if inGroup[name] {
			want = http.StatusOK
		}
		if direct.StatusCode != want {
			t.Fatalf("backend %s: GET = %d, want %d", name, direct.StatusCode, want)
		}
	}

	// The router-echoed record never leaks to clients going through the
	// normal write path? It does carry version — but the replication
	// record itself is only echoed to X-Replicate callers. A direct
	// client PUT (no header) must not see a "record" field.
	direct, dbody := doJSON(t, http.MethodPut, f.tss[0].URL+"/v1/patients/plain-client", map[string]any{"regimen": []int{1}})
	if direct.StatusCode != http.StatusCreated {
		t.Fatalf("direct PUT: status %d", direct.StatusCode)
	}
	if strings.Contains(string(dbody), `"record"`) {
		t.Fatalf("direct PUT response leaks the replication record: %s", dbody)
	}

	// A delete propagates as a tombstone: both group members agree the
	// patient is gone, and a re-registration resurrects it on both.
	resp, _ = doJSON(t, http.MethodDelete, f.rts.URL+"/v1/patients/"+id, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	for i, name := range f.names {
		if !inGroup[name] {
			continue
		}
		direct, _ := doJSON(t, http.MethodGet, f.tss[i].URL+"/v1/patients/"+id, nil)
		if direct.StatusCode != http.StatusNotFound {
			t.Fatalf("backend %s still serves deleted patient (status %d)", name, direct.StatusCode)
		}
	}

	m := routerMetrics(t, f.rts.URL)
	if m.ReplicationFanouts < 2 {
		t.Fatalf("ReplicationFanouts = %d, want >= 2", m.ReplicationFanouts)
	}
	if m.QuorumFailures != 0 {
		t.Fatalf("QuorumFailures = %d, want 0", m.QuorumFailures)
	}
}

// TestFailoverReadServedByReplica: when a record's owner dies, reads
// keep working from the replica — tagged X-Served-By-Replica, counted,
// and bitwise-identical to the owner's answers. The pinned-503 dead
// end is gone.
func TestFailoverReadServedByReplica(t *testing.T) {
	sys, _ := systems(t)
	f := &fleet{}
	var gate *gatedHandler
	for i := 0; i < 3; i++ {
		s, err := serve.New(sys, serve.Config{})
		if err != nil {
			t.Fatal(err)
		}
		handler := http.Handler(s.Handler())
		if i == 2 {
			gate = &gatedHandler{h: handler}
			gate.open.Store(true)
			handler = gate
		}
		ts := httptest.NewServer(handler)
		f.backends = append(f.backends, s)
		f.tss = append(f.tss, ts)
		f.names = append(f.names, strings.TrimPrefix(ts.URL, "http://"))
	}
	cfg := replConfig()
	cfg.Backends = f.names
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.router = rt
	f.rts = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		f.rts.Close()
		rt.Close()
		for i := range f.tss {
			f.tss[i].Close()
			f.backends[i].Close()
		}
	})
	gated := f.names[2]
	id := ownerOf(t, f.names, rt.cfg.VNodes, gated, "fr")

	resp, body := doJSON(t, http.MethodPut, f.rts.URL+"/v1/patients/"+id, map[string]any{"regimen": []int{0, 1, 2}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT: status %d: %s", resp.StatusCode, body)
	}
	// Baseline answers from the healthy owner.
	resp, ownerGet := doJSON(t, http.MethodGet, f.rts.URL+"/v1/patients/"+id, nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Backend") != gated {
		t.Fatalf("pre-failure GET: status %d via %s, want 200 via owner %s", resp.StatusCode, resp.Header.Get("X-Backend"), gated)
	}
	resp, ownerSuggest := postJSON(t, f.rts.URL+"/v1/suggest", map[string]any{"patient_id": id, "k": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-failure suggest: status %d", resp.StatusCode)
	}

	// Kill the owner. Reads must keep answering — from the replica.
	gate.open.Store(false)
	resp, replicaGet := doJSON(t, http.MethodGet, f.rts.URL+"/v1/patients/"+id, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover GET: status %d: %s", resp.StatusCode, replicaGet)
	}
	served := resp.Header.Get(regproto.ServedByReplicaHeader)
	if served == "" || served == gated {
		t.Fatalf("failover GET served by %q without a replica tag (X-Backend %s)", served, resp.Header.Get("X-Backend"))
	}
	if string(replicaGet) != string(ownerGet) {
		t.Fatalf("replica GET diverges from owner:\n  owner:   %s\n  replica: %s", ownerGet, replicaGet)
	}
	resp, replicaSuggest := postJSON(t, f.rts.URL+"/v1/suggest", map[string]any{"patient_id": id, "k": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover suggest: status %d: %s", resp.StatusCode, replicaSuggest)
	}
	if string(replicaSuggest) != string(ownerSuggest) {
		t.Fatalf("replica suggest diverges from owner:\n  owner:   %s\n  replica: %s", ownerSuggest, replicaSuggest)
	}

	m := routerMetrics(t, f.rts.URL)
	if m.ReplicaReads < 2 {
		t.Fatalf("ReplicaReads = %d, want >= 2", m.ReplicaReads)
	}
	if m.PinnedUnavailable != 0 {
		t.Fatalf("PinnedUnavailable = %d, want 0 — failover reads must replace the pinned 503", m.PinnedUnavailable)
	}

	// Writes keep working too: the replica becomes acting owner and
	// assigns the next version.
	waitFor(t, "owner ejection", 5*time.Second, func() bool {
		return !rt.backends[gated].health.Healthy()
	})
	resp, _ = doJSON(t, http.MethodPut, f.rts.URL+"/v1/patients/"+id, map[string]any{"regimen": []int{3, 4}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("write with dead owner: status %d, want 200", resp.StatusCode)
	}
}

// TestReplicaRejoinAntiEntropy: a backend that dies, loses its disk,
// and rejoins empty must reconverge through anti-entropy — byte-equal
// digests — before the health machine lets it take traffic again. No
// registration is lost, tombstones included.
func TestReplicaRejoinAntiEntropy(t *testing.T) {
	sys, _ := systems(t)
	f := &fleet{}
	var gate *gatedHandler
	var swap *swapHandler
	for i := 0; i < 2; i++ {
		s, err := serve.New(sys, serve.Config{})
		if err != nil {
			t.Fatal(err)
		}
		handler := http.Handler(s.Handler())
		if i == 1 {
			swap = &swapHandler{h: handler}
			gate = &gatedHandler{h: swap}
			gate.open.Store(true)
			handler = gate
		}
		ts := httptest.NewServer(handler)
		f.backends = append(f.backends, s)
		f.tss = append(f.tss, ts)
		f.names = append(f.names, strings.TrimPrefix(ts.URL, "http://"))
	}
	cfg := replConfig()
	cfg.Backends = f.names
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.router = rt
	f.rts = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		f.rts.Close()
		rt.Close()
		for i := range f.tss {
			f.tss[i].Close()
			f.backends[i].Close()
		}
	})

	put := func(id string, regimen []int, wantStatus int) {
		t.Helper()
		resp, body := doJSON(t, http.MethodPut, f.rts.URL+"/v1/patients/"+id, map[string]any{"regimen": regimen})
		if resp.StatusCode != wantStatus {
			t.Fatalf("PUT %s: status %d, want %d: %s", id, resp.StatusCode, wantStatus, body)
		}
	}

	// Phase 1: both up; ten registrations replicate to both.
	for i := 0; i < 10; i++ {
		put(fmt.Sprintf("ae-%d", i), []int{0, 1, i % 5}, http.StatusCreated)
	}

	// Phase 2: kill backend 1 permanently. Writes keep flowing
	// (available-bounded quorum), one record is deleted, one updated.
	gate.open.Store(false)
	waitFor(t, "ejection", 5*time.Second, func() bool {
		return !rt.backends[f.names[1]].health.Healthy()
	})
	for i := 10; i < 20; i++ {
		put(fmt.Sprintf("ae-%d", i), []int{0, 1, i % 5}, http.StatusCreated)
	}
	put("ae-3", []int{4, 5}, http.StatusOK) // version moves past what the dead replica holds
	resp, _ := doJSON(t, http.MethodDelete, f.rts.URL+"/v1/patients/ae-7", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE ae-7: status %d", resp.StatusCode)
	}

	// Phase 3: the backend comes back with an empty registry (fresh
	// process, wiped disk) behind the same address.
	empty, err := serve.New(sys, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(empty.Close)
	swap.swap(empty.Handler())
	gate.open.Store(true)

	// The half-open trial must reconcile it before rotation: once
	// healthy, it already holds every record.
	waitFor(t, "rejoin after anti-entropy", 10*time.Second, func() bool {
		return rt.backends[f.names[1]].health.Healthy()
	})

	// Every surviving registration is on the rejoined backend...
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("ae-%d", i)
		want := http.StatusOK
		if i == 7 {
			want = http.StatusNotFound // the tombstone must not resurrect
		}
		direct, body := doJSON(t, http.MethodGet, f.tss[1].URL+"/v1/patients/"+id, nil)
		if direct.StatusCode != want {
			t.Fatalf("rejoined backend: GET %s = %d, want %d: %s", id, direct.StatusCode, want, body)
		}
	}
	// ...the updated record carries the post-outage regimen...
	direct, body := doJSON(t, http.MethodGet, f.tss[1].URL+"/v1/patients/ae-3", nil)
	if direct.StatusCode != http.StatusOK || !strings.Contains(string(body), "[4,5]") {
		t.Fatalf("rejoined backend: ae-3 = %d %s, want the updated regimen [4,5]", direct.StatusCode, body)
	}
	// ...and the fleet audit agrees the digests are byte-identical.
	resp, body = doJSON(t, http.MethodGet, f.rts.URL+"/v1/admin/registry/verify", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify: status %d: %s", resp.StatusCode, body)
	}
	var verify VerifyResponse
	if err := json.Unmarshal(body, &verify); err != nil {
		t.Fatal(err)
	}
	if !verify.OK || verify.Records != 19 {
		t.Fatalf("verify = %+v, want OK with 19 live records", verify)
	}
	m := routerMetrics(t, f.rts.URL)
	if m.AntiEntropySyncs == 0 || m.AntiEntropyRecords < 19 {
		t.Fatalf("anti-entropy counters = %d syncs / %d records, want >= 1 / >= 19", m.AntiEntropySyncs, m.AntiEntropyRecords)
	}
}

// TestReplicatedWriteQuorumFailure: when a required replica is
// reachable-in-name-only (drops every connection but is still marked
// healthy), a quorum-2 write is refused rather than silently
// under-replicated.
func TestReplicatedWriteQuorumFailure(t *testing.T) {
	sys, _ := systems(t)
	f := &fleet{}
	var gate *gatedHandler
	for i := 0; i < 2; i++ {
		s, err := serve.New(sys, serve.Config{})
		if err != nil {
			t.Fatal(err)
		}
		handler := http.Handler(s.Handler())
		if i == 1 {
			gate = &gatedHandler{h: handler}
			gate.open.Store(true)
			handler = gate
		}
		ts := httptest.NewServer(handler)
		f.backends = append(f.backends, s)
		f.tss = append(f.tss, ts)
		f.names = append(f.names, strings.TrimPrefix(ts.URL, "http://"))
	}
	cfg := replConfig()
	cfg.ProbeInterval = time.Hour // no probes: the gated member stays nominally healthy
	cfg.FailAfter = 100           // and passive failures do not eject it mid-test
	cfg.Backends = f.names
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.router = rt
	f.rts = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		f.rts.Close()
		rt.Close()
		for i := range f.tss {
			f.tss[i].Close()
			f.backends[i].Close()
		}
	})

	// An id owned by the healthy backend, so the acting owner write
	// succeeds and only the fan-out to the gated replica can fail.
	id := ownerOf(t, f.names, rt.cfg.VNodes, f.names[0], "qf")
	gate.open.Store(false)
	resp, body := doJSON(t, http.MethodPut, f.rts.URL+"/v1/patients/"+id, map[string]any{"regimen": []int{0, 1}})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("under-quorum write: status %d, want 502: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "quorum") {
		t.Fatalf("under-quorum write error does not name the quorum: %s", body)
	}
	if m := routerMetrics(t, f.rts.URL); m.QuorumFailures != 1 {
		t.Fatalf("QuorumFailures = %d, want 1", m.QuorumFailures)
	}
}

// TestReplicatedConvergenceHammer: concurrent writers and readers
// through the router with R=2 — every write acknowledged at quorum,
// every read consistent, and the fleet digest-converged when the dust
// settles. Run with -race.
func TestReplicatedConvergenceHammer(t *testing.T) {
	f := bootFleet(t, 3, "", replConfig())
	const workers, iters = 8, 25
	var wg sync.WaitGroup
	var failures atomic.Int64
	for c := 0; c < workers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("cv-%d", c)
				resp, _ := doJSON(t, http.MethodPut, f.rts.URL+"/v1/patients/"+id, map[string]any{"regimen": []int{c, i % 7}})
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
					failures.Add(1)
					continue
				}
				resp, _ = doJSON(t, http.MethodGet, f.rts.URL+"/v1/patients/"+id, nil)
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d write/read failures under concurrency", n)
	}
	resp, body := doJSON(t, http.MethodGet, f.rts.URL+"/v1/admin/registry/verify", nil)
	var verify VerifyResponse
	if err := json.Unmarshal(body, &verify); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !verify.OK || verify.Records != workers {
		t.Fatalf("post-hammer verify = status %d %+v, want OK with %d records", resp.StatusCode, verify, workers)
	}
}

// TestHealthRetryAfterClampsSubSecond: near cooldown expiry the
// remainder must never quote below one second — a raw 800ms remainder
// truncates to Retry-After: 0 and tells clients to hammer.
func TestHealthRetryAfterClampsSubSecond(t *testing.T) {
	m := newHealthMachine(1, 2*time.Second)
	now := time.Now()
	m.OnFailure(now) // ejects (failAfter 1)
	if got := m.RetryAfter(now.Add(1800 * time.Millisecond)); got != time.Second {
		t.Fatalf("RetryAfter 200ms before expiry = %v, want clamped 1s", got)
	}
	if got := m.RetryAfter(now.Add(500 * time.Millisecond)); got != 1500*time.Millisecond {
		t.Fatalf("RetryAfter mid-cooldown = %v, want the real 1.5s remainder", got)
	}
	if s := retryAfterSeconds(m.RetryAfter(now.Add(1999 * time.Millisecond))); s != "1" {
		t.Fatalf("rendered Retry-After = %s, want 1", s)
	}
}

// Package router is the fleet front tier: an HTTP proxy that
// consistent-hashes patient keys onto a health-checked pool of
// dssddi-serve backends. Sharding by patient keeps the things that are
// per-patient — registry profiles, cached embeddings, suggest-cache
// generations — local to one backend, so replication multiplies
// throughput without multiplying cache misses or scattering registry
// writes. The router also coordinates model rollouts: one admin
// reload fans out backend-by-backend (canary first, verified with an
// epoch bump and a smoke suggest) so the fleet converges on a new
// snapshot with zero downtime and no silently mixed models.
package router

import (
	"hash/fnv"
	"math"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring with virtual nodes. Each node is
// projected onto Replicas points of the 64-bit hash circle; a key is
// owned by the node whose point follows the key's hash. The layout is
// a pure function of the member set — adding a node back after a
// removal restores exactly the previous ownership, and removing one
// of N nodes remaps only the keys the departed node owned (~1/N of
// them), never shuffling keys between survivors.
//
// Ring is not safe for concurrent mutation; the router guards it (the
// member set is fixed after New, and health-based failover walks
// successors instead of mutating the ring).
type Ring struct {
	replicas int
	points   []ringPoint // sorted by (hash, node)
	nodes    map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring with the given virtual-node count per
// member (<=0 gets the default 128).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = 128
	}
	return &Ring{replicas: replicas, nodes: make(map[string]bool)}
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the murmur3 finalizer. FNV-1a alone distributes similar
// strings ("host:port#0", "host:port#1", ...) unevenly around the
// circle — enough to skew per-node shares by >10 points at 128
// vnodes; the avalanche pass restores a near-uniform layout.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Add inserts a node (idempotent).
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: hashKey(node + "#" + strconv.Itoa(i)), node: node})
	}
	r.sortPoints()
}

// Remove deletes a node and all its virtual points (idempotent).
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// sortPoints orders the circle; node name breaks hash ties so the
// layout is deterministic even under (vanishingly rare) collisions.
func (r *Ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the members in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the node owning key, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(hashKey(key))].node
}

// Successors returns up to max distinct nodes in ring order starting
// at key's owner — the deterministic failover sequence: if the owner
// is unavailable, its keys spill onto the next node around the circle
// (and only its keys; every other key's owner is unchanged), and they
// return home when it recovers.
func (r *Ring) Successors(key string, max int) []string {
	if len(r.points) == 0 || max <= 0 {
		return nil
	}
	if max > len(r.nodes) {
		max = len(r.nodes)
	}
	out := make([]string, 0, max)
	seen := make(map[string]bool, max)
	i := r.search(hashKey(key))
	for n := 0; n < len(r.points) && len(out) < max; n++ {
		node := r.points[(i+n)%len(r.points)].node
		if !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	return out
}

// search returns the index of the first point at or after h, wrapping
// to 0 past the end.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Shares reports each node's fraction of the hash circle (the arc
// length preceding its points) — the expected key distribution, to
// compare against the observed routing counts in /metricsz.
func (r *Ring) Shares() map[string]float64 {
	out := make(map[string]float64, len(r.nodes))
	if len(r.points) == 0 {
		return out
	}
	if len(r.points) == 1 {
		out[r.points[0].node] = 1
		return out
	}
	const circle = float64(math.MaxUint64)
	prev := r.points[len(r.points)-1].hash // arc wraps from the last point
	for _, p := range r.points {
		arc := p.hash - prev // uint64 subtraction wraps correctly
		out[p.node] += float64(arc) / circle
		prev = p.hash
	}
	return out
}

package router

import (
	"fmt"
	"math"
	"testing"
)

func ringOf(replicas int, nodes ...string) *Ring {
	r := NewRing(replicas)
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

func testKeys(n int) []string {
	keys := make([]string, 0, 2*n)
	for i := 0; i < n; i++ {
		keys = append(keys, patientKey(i), registeredKey(fmt.Sprintf("patient-%d", i)))
	}
	return keys
}

// TestRingDeterministic: the layout is a pure function of the member
// set — insertion order must not matter.
func TestRingDeterministic(t *testing.T) {
	a := ringOf(128, "n1", "n2", "n3", "n4")
	b := ringOf(128, "n4", "n2", "n1", "n3")
	for _, key := range testKeys(2000) {
		if a.Lookup(key) != b.Lookup(key) {
			t.Fatalf("key %q: insertion order changed the owner (%s vs %s)", key, a.Lookup(key), b.Lookup(key))
		}
	}
}

// TestRingRemapFraction is the acceptance property: removing one of N
// backends remaps ONLY the keys it owned — every other key keeps
// exactly its previous owner — and those keys are ~1/N of the total.
func TestRingRemapFraction(t *testing.T) {
	const n = 5
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("10.0.0.%d:9000", i+1)
	}
	keys := testKeys(5000)

	for _, removed := range nodes {
		r := ringOf(128, nodes...)
		before := make(map[string]string, len(keys))
		ownedByRemoved := 0
		for _, k := range keys {
			before[k] = r.Lookup(k)
			if before[k] == removed {
				ownedByRemoved++
			}
		}
		r.Remove(removed)
		remapped := 0
		for _, k := range keys {
			after := r.Lookup(k)
			if before[k] == removed {
				remapped++
				if after == removed {
					t.Fatalf("key %q still routes to removed node", k)
				}
				continue
			}
			if after != before[k] {
				t.Fatalf("removing %s moved key %q between survivors: %s -> %s", removed, k, before[k], after)
			}
		}
		if remapped != ownedByRemoved {
			t.Fatalf("remapped %d keys, but removed node owned %d", remapped, ownedByRemoved)
		}
		// ~1/N with slack for vnode placement variance (stddev shrinks
		// with replicas; 1.5x of the expected share is generous).
		max := int(1.5 * float64(len(keys)) / n)
		if remapped > max {
			t.Errorf("removing %s remapped %d/%d keys, want <= %d (~1/%d)", removed, remapped, len(keys), max, n)
		}
	}
}

// TestRingRejoinRestoresOwnership: a node that leaves and comes back
// gets exactly its old keys.
func TestRingRejoinRestoresOwnership(t *testing.T) {
	r := ringOf(128, "a:1", "b:1", "c:1")
	keys := testKeys(2000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Lookup(k)
	}
	r.Remove("b:1")
	r.Add("b:1")
	for _, k := range keys {
		if got := r.Lookup(k); got != before[k] {
			t.Fatalf("key %q: owner changed across leave/rejoin: %s -> %s", k, before[k], got)
		}
	}
}

// TestRingSuccessors: the failover sequence starts at the owner,
// holds distinct nodes, and every ring member is reachable.
func TestRingSuccessors(t *testing.T) {
	r := ringOf(128, "a:1", "b:1", "c:1")
	for _, k := range testKeys(500) {
		succ := r.Successors(k, 3)
		if len(succ) != 3 {
			t.Fatalf("key %q: got %d successors, want 3", k, len(succ))
		}
		if succ[0] != r.Lookup(k) {
			t.Fatalf("key %q: successor[0] = %s, owner = %s", k, succ[0], r.Lookup(k))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("key %q: duplicate successor %s", k, s)
			}
			seen[s] = true
		}
	}
	if got := r.Successors("x", 10); len(got) != 3 {
		t.Fatalf("max beyond pool size: got %d successors, want 3", len(got))
	}
}

// TestRingShares: arc shares sum to 1 and sit near 1/N each, and the
// observed key distribution tracks them.
func TestRingShares(t *testing.T) {
	r := ringOf(256, "a:1", "b:1", "c:1", "d:1")
	shares := r.Shares()
	sum := 0.0
	for node, s := range shares {
		sum += s
		if s < 0.10 || s > 0.45 {
			t.Errorf("node %s arc share %.3f implausibly far from 0.25", node, s)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %.12f, want 1", sum)
	}

	counts := map[string]int{}
	keys := testKeys(10000)
	for _, k := range keys {
		counts[r.Lookup(k)]++
	}
	for node, c := range counts {
		observed := float64(c) / float64(len(keys))
		if math.Abs(observed-shares[node]) > 0.05 {
			t.Errorf("node %s: observed share %.3f vs arc share %.3f", node, observed, shares[node])
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(8)
	if got := r.Lookup("k"); got != "" {
		t.Fatalf("empty ring Lookup = %q, want empty", got)
	}
	if got := r.Successors("k", 2); got != nil {
		t.Fatalf("empty ring Successors = %v, want nil", got)
	}
	r.Add("only:1")
	for _, k := range testKeys(50) {
		if got := r.Lookup(k); got != "only:1" {
			t.Fatalf("single-node ring routed %q to %q", k, got)
		}
	}
}

package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dssddi/internal/obs"
)

// Config tunes the router. Backends is required; everything else has
// serviceable defaults from fill.
type Config struct {
	// Backends is the fixed pool of dssddi-serve addresses
	// (host:port). The ring is built over exactly this set; health
	// ejection takes a member out of rotation without changing the
	// ring, so its keys spill deterministically to ring successors and
	// return when it recovers.
	Backends []string
	// VNodes is the virtual-node count per backend on the hash ring
	// (default 128).
	VNodes int
	// ReplicationFactor is how many ring-ordered backends hold each
	// registered patient's record: the owner plus R-1 successors
	// (default 1 — no replication, registry state is owner-only).
	ReplicationFactor int
	// WriteQuorum is how many replica-group acknowledgements a registry
	// mutation needs before the router acknowledges it (default 1: the
	// acting owner's WAL-backed ack). The effective quorum is bounded
	// by the members actually in rotation — a permanently dead replica
	// degrades durability, it does not wedge writes.
	WriteQuorum int
	// ProbeInterval is the active health-check cadence (default 1s).
	ProbeInterval time.Duration
	// FailAfter ejects a backend after this many consecutive transport
	// failures (default 3).
	FailAfter int
	// Cooldown is how long an ejected backend sits out before a
	// half-open trial probe (default 2s).
	Cooldown time.Duration
	// MaxRetries bounds additional attempts for idempotent reads after
	// a transport failure (default 2). Writes never retry.
	MaxRetries int
	// RetryBackoff is the initial backoff before a retry, doubling per
	// attempt (default 25ms).
	RetryBackoff time.Duration
	// Timeout is the per-attempt client timeout (default 10s).
	Timeout time.Duration
	// RequestBudget bounds one routed request end to end: every
	// attempt and every backoff sleep spends from it, and each attempt
	// stamps the remaining budget onto the backend as X-Deadline-Ms so
	// batch waits are abandoned the moment the router has given up. A
	// client-supplied X-Deadline-Ms can only shrink the budget, never
	// extend it (default 2x Timeout).
	RequestBudget time.Duration
	// MaxIdleConns bounds the kept-alive connections per backend
	// (default 256).
	MaxIdleConns int
	// MaxBodyBytes bounds buffered request bodies (default 1<<20,
	// matching the backends' own request cap).
	MaxBodyBytes int64

	// TraceSample is the fraction of routed requests recorded into the
	// /debug/tracez rings (0 = off). A sampled request's trace carries
	// one span per proxy attempt, annotated with the backend tried and
	// every retry/failover/ejection event along the way.
	TraceSample float64
	// TraceRing is the capacity of each tracez ring (default
	// obs.DefaultTraceRing).
	TraceRing int
	// SlowMs, when positive, logs a warning for every routed request
	// slower than this many milliseconds (requires Logger).
	SlowMs int
	// Logger, when non-nil, receives structured access and fleet event
	// logs (ejections, recoveries, rollouts).
	Logger *slog.Logger
}

func (c *Config) fill() error {
	if len(c.Backends) == 0 {
		return fmt.Errorf("router: no backends configured")
	}
	seen := make(map[string]bool, len(c.Backends))
	for _, b := range c.Backends {
		if b == "" {
			return fmt.Errorf("router: empty backend address")
		}
		if seen[b] {
			return fmt.Errorf("router: duplicate backend %q", b)
		}
		seen[b] = true
	}
	if c.VNodes <= 0 {
		c.VNodes = 128
	}
	if c.ReplicationFactor <= 0 {
		c.ReplicationFactor = 1
	}
	if c.ReplicationFactor > len(c.Backends) {
		c.ReplicationFactor = len(c.Backends)
	}
	if c.WriteQuorum <= 0 {
		c.WriteQuorum = 1
	}
	if c.WriteQuorum > c.ReplicationFactor {
		c.WriteQuorum = c.ReplicationFactor
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.RequestBudget <= 0 {
		c.RequestBudget = 2 * c.Timeout
	}
	if c.MaxIdleConns <= 0 {
		c.MaxIdleConns = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return nil
}

// Router consistent-hashes patient keys over a health-checked backend
// pool and coordinates fleet-wide model rollouts.
type Router struct {
	cfg      Config
	ring     *Ring
	backends map[string]*backend
	order    []string // sorted names: deterministic rollout order
	start    time.Time
	tracer   *obs.Tracer
	logger   *slog.Logger

	requests          atomic.Int64
	proxyErrors       atomic.Int64 // requests answered 502/503/504 by the router itself
	retriesTotal      atomic.Int64
	pinnedUnavailable atomic.Int64 // pinned-key 503s: the whole replica group is out of rotation
	deadlineExhausted atomic.Int64 // 504s: the request budget ran out before any backend answered
	rollouts          atomic.Int64
	rolloutFailures   atomic.Int64

	// Replication counters: replicaReads counts registered-patient
	// reads served by a non-owner group member; readRepairs counts
	// stale replicas refreshed by a failover read; quorumFailures
	// counts mutations refused because too few group members
	// acknowledged; antiEntropySyncs / antiEntropyRecords count
	// reconciliation rounds and the records they pushed. replLag is
	// the owner-ack to replica-ack fan-out latency distribution.
	replicaReads       atomic.Int64
	readRepairs        atomic.Int64
	quorumFailures     atomic.Int64
	replicationFanouts atomic.Int64
	antiEntropySyncs   atomic.Int64
	antiEntropyRecords atomic.Int64
	replLag            obs.Histogram

	reloadMu  sync.Mutex // serializes rollouts
	stopProbe chan struct{}
	probeWG   sync.WaitGroup
	repairWG  sync.WaitGroup // in-flight async read repairs
}

// New builds a router over the configured backend pool and starts the
// active health prober. Backends start healthy — a down member is
// detected by the first probe (or proxied request) and ejected.
func New(cfg Config) (*Router, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:       cfg,
		ring:      NewRing(cfg.VNodes),
		backends:  make(map[string]*backend, len(cfg.Backends)),
		start:     time.Now(),
		tracer:    obs.NewTracer(cfg.TraceSample, cfg.TraceRing),
		logger:    cfg.Logger,
		stopProbe: make(chan struct{}),
	}
	for _, name := range cfg.Backends {
		rt.ring.Add(name)
		rt.backends[name] = newBackend(name, cfg)
		rt.order = append(rt.order, name)
	}
	sort.Strings(rt.order)
	rt.probeWG.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// Close stops the health prober and waits out in-flight read repairs.
func (rt *Router) Close() {
	close(rt.stopProbe)
	rt.probeWG.Wait()
	rt.repairWG.Wait()
}

// probeLoop actively probes every backend's /healthz on the
// configured cadence. Healthy members are verified (keeping their
// failure streak at zero); ejected members get a half-open trial once
// their cooldown elapses.
func (rt *Router) probeLoop() {
	defer rt.probeWG.Done()
	ticker := time.NewTicker(rt.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stopProbe:
			return
		case <-ticker.C:
			for _, name := range rt.order {
				b := rt.backends[name]
				switch {
				case b.health.Healthy():
					rt.probe(b)
				case b.health.ProbeDue(time.Now()):
					rt.trial(b)
				}
			}
		}
	}
}

// probe hits one backend's /healthz. A 200 with a parsable epoch is
// success; anything else (transport error or bad status) counts
// toward ejection.
func (rt *Router) probe(b *backend) {
	resp, err := b.client.Get(b.base + "/healthz")
	if err != nil {
		rt.noteFailure(b, "probe", err)
		return
	}
	var health struct {
		Epoch int64 `json:"epoch"`
	}
	decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&health)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || decErr != nil {
		rt.noteFailure(b, "probe", fmt.Errorf("healthz status %d (decode: %v)", resp.StatusCode, decErr))
		return
	}
	b.epoch.Store(health.Epoch)
	rt.noteSuccess(b)
}

// trial is the half-open recovery probe for an ejected backend. Under
// replication, answering /healthz is not enough to rejoin: the member
// missed every write fanned out while it was gone (or lost its disk
// entirely), so it must reconcile via anti-entropy — and prove digest
// convergence — before it takes traffic again. A failed trial or a
// failed reconcile re-ejects for a fresh cooldown.
func (rt *Router) trial(b *backend) {
	resp, err := b.client.Get(b.base + "/healthz")
	if err != nil {
		rt.noteFailure(b, "trial", err)
		return
	}
	var health struct {
		Epoch int64 `json:"epoch"`
	}
	decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&health)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || decErr != nil {
		rt.noteFailure(b, "trial", fmt.Errorf("healthz status %d (decode: %v)", resp.StatusCode, decErr))
		return
	}
	b.epoch.Store(health.Epoch)
	if rt.cfg.ReplicationFactor > 1 {
		if err := rt.reconcile(b); err != nil {
			rt.noteFailure(b, "reconcile", err)
			return
		}
	}
	rt.noteSuccess(b)
}

// noteFailure feeds one transport failure into the backend's health
// machine and logs the ejection when this failure caused one.
func (rt *Router) noteFailure(b *backend, cause string, err error) {
	if b.health.OnFailure(time.Now()) && rt.logger != nil {
		rt.logger.Warn("backend ejected", "backend", b.name, "cause", cause, "error", err)
	}
}

// noteSuccess feeds one success into the health machine and logs a
// half-open recovery when this success completed one.
func (rt *Router) noteSuccess(b *backend) {
	if b.health.OnSuccess() && rt.logger != nil {
		rt.logger.Info("backend recovered", "backend", b.name)
	}
}

// Handler returns the routed HTTP handler.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/suggest", rt.handleSuggest)
	mux.HandleFunc("POST /v1/scores", rt.handleScores)
	mux.HandleFunc("POST /v1/explain", rt.handleExplain)
	mux.HandleFunc("POST /v1/alerts", rt.handleAlerts)
	mux.HandleFunc("/v1/patients/{id}", rt.handlePatients)
	mux.HandleFunc("POST /v1/admin/reload", rt.handleReload)
	mux.HandleFunc("GET /v1/admin/registry/verify", rt.handleRegistryVerify)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metricsz", rt.handleMetricsz)
	mux.Handle("/debug/tracez", rt.tracer.Handler("dssddi-router"))
	return rt.observe(mux)
}

// Tracer exposes the router's trace rings to tests.
func (rt *Router) Tracer() *obs.Tracer { return rt.tracer }

// statusWriter captures the response status for the access log and
// trace without buffering the body.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// observe is the router's request middleware: it settles the request
// identity (accepting a well-formed client X-Request-Id, minting one
// otherwise) before any routing happens, so the same id is echoed on
// the response, forwarded to whichever backend ends up serving the
// request, and used for both tiers' tracez entries. Sampled requests
// additionally carry a trace that forward annotates with per-attempt
// spans.
func (rt *Router) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rid := obs.EnsureRequestID(r.Header)
		r.Header.Set(obs.RequestIDHeader, rid) // canonical form; forwarded to the backend
		w.Header().Set(obs.RequestIDHeader, rid)
		tr := rt.tracer.Start(rid, r.URL.Path)
		if tr != nil {
			r = r.WithContext(obs.NewContext(r.Context(), tr))
		}
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		dur := time.Since(t0)
		rt.tracer.Finish(tr, status)
		if rt.logger == nil {
			return
		}
		if rt.cfg.SlowMs > 0 && dur >= time.Duration(rt.cfg.SlowMs)*time.Millisecond {
			rt.logger.Warn("slow request",
				"id", rid, "method", r.Method, "path", r.URL.Path,
				"status", status, "backend", sw.Header().Get("X-Backend"),
				"ms", float64(dur)/1e6, "slow_ms", rt.cfg.SlowMs)
			return
		}
		if rt.logger.Enabled(r.Context(), slog.LevelDebug) {
			rt.logger.Debug("request",
				"id", rid, "method", r.Method, "path", r.URL.Path,
				"status", status, "backend", sw.Header().Get("X-Backend"),
				"ms", float64(dur)/1e6)
		}
	})
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf)
}

// routeProbe is the shallow body decode used only to extract the
// routing key. Full validation stays on the backends — an undecodable
// body is still forwarded so the backend's 400 is the single source
// of truth for what a bad request looks like.
type routeProbe struct {
	Patient   int    `json:"patient"`
	PatientID string `json:"patient_id"`
	Patients  []int  `json:"patients"`
	Drugs     []int  `json:"drugs"`
}

// patientKey is the routing key for a dataset-index patient. It is
// shared by suggest/scores/explain/alerts so one patient's reads all
// land on (and warm) one backend's caches.
func patientKey(index int) string { return "i|" + strconv.Itoa(index) }

// registeredKey is the routing key for a registered patient id. It is
// the one key that carries state: the profile lives only on the
// owning backend.
func registeredKey(id string) string { return "p|" + id }

func drugsKey(drugs []int) string {
	sorted := append([]int(nil), drugs...)
	sort.Ints(sorted)
	parts := make([]string, len(sorted))
	for i, d := range sorted {
		parts[i] = strconv.Itoa(d)
	}
	return "d|" + strings.Join(parts, ",")
}

// readBody buffers the request body so it can be replayed on retry.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("reading request body: %v", err)})
		return nil, false
	}
	return body, true
}

func (rt *Router) handleSuggest(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var probe routeProbe
	json.Unmarshal(body, &probe) // best-effort: key only
	key := patientKey(probe.Patient)
	pinned := false
	if probe.PatientID != "" {
		key = registeredKey(probe.PatientID)
		pinned = true // registry state is shard-local
	}
	rt.forward(w, r, body, key, true, pinned)
}

func (rt *Router) handleScores(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var probe routeProbe
	json.Unmarshal(body, &probe)
	key := patientKey(0)
	if len(probe.Patients) > 0 {
		key = patientKey(probe.Patients[0])
	}
	rt.forward(w, r, body, key, true, false)
}

func (rt *Router) handleExplain(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	// Explain requests name a patient or an explicit drug set; the
	// patient field is a pointer server-side, so distinguish "absent"
	// from 0 here too.
	var probe struct {
		Patient *int  `json:"patient"`
		Drugs   []int `json:"drugs"`
	}
	json.Unmarshal(body, &probe)
	var key string
	switch {
	case probe.Patient != nil:
		key = patientKey(*probe.Patient)
	default:
		key = drugsKey(probe.Drugs)
	}
	rt.forward(w, r, body, key, true, false)
}

func (rt *Router) handleAlerts(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var probe struct {
		Patient *int  `json:"patient"`
		Drugs   []int `json:"drugs"`
	}
	json.Unmarshal(body, &probe)
	var key string
	switch {
	case probe.Patient != nil:
		key = patientKey(*probe.Patient)
	default:
		key = drugsKey(probe.Drugs)
	}
	rt.forward(w, r, body, key, true, false)
}

func (rt *Router) handlePatients(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var body []byte
	if r.Method == http.MethodPut || r.Method == http.MethodPatch {
		var ok bool
		if body, ok = rt.readBody(w, r); !ok {
			return
		}
	}
	key := registeredKey(id)
	if r.Method == http.MethodGet {
		rt.forward(w, r, nil, key, true, true)
		return
	}
	if rt.cfg.ReplicationFactor > 1 {
		rt.forwardReplicatedWrite(w, r, body, id)
		return
	}
	// Full-replace PUT and DELETE are idempotent by construction —
	// replaying one after an ambiguous transport failure (connection
	// refused or reset before the response arrived) converges to the
	// same record — so they retry the owner under the request budget
	// instead of surfacing a 502 for every restart race. PATCH merges
	// and stays single-shot.
	retryable := r.Method == http.MethodPut || r.Method == http.MethodDelete
	rt.forward(w, r, body, key, retryable, true)
}

// deadlineHeader is the propagated request budget (mirrors the
// backends' header): the router stamps each attempt's remaining
// milliseconds so backends abandon work the moment the router has
// moved on, and honors a client-sent value as an upper bound.
const deadlineHeader = "X-Deadline-Ms"

// forward proxies one request to the backend owning key. Pinned
// requests (registry state lives on the key's replica group) stay
// within the group: idempotent pinned reads fail over owner ->
// successors inside the group, un-replicated writes retry the owner
// with backoff. Un-pinned requests walk the owner's ring successors,
// so an ejected backend's keys are served by its deterministic
// neighbor until it recovers. The whole dance — attempts plus backoff
// sleeps — is bounded by the request budget.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, body []byte, key string, idempotent, pinned bool) {
	rt.requests.Add(1)
	tr := obs.FromContext(r.Context())
	candidates := rt.ring.Successors(key, rt.ring.Len())
	if len(candidates) == 0 {
		rt.proxyErrors.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "router: no backends"})
		return
	}
	rt.backends[candidates[0]].routedKeys.Add(1)
	if pinned && rt.cfg.ReplicationFactor < len(candidates) {
		candidates = candidates[:rt.cfg.ReplicationFactor]
	}

	deadline, expired := rt.requestDeadline(r)
	if expired {
		rt.proxyErrors.Add(1)
		rt.deadlineExhausted.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, apiError{Error: "router: request deadline already expired"})
		return
	}

	if pinned && idempotent && len(candidates) > 1 {
		// A replicated registered-patient read: every group member holds
		// the record, so the read fails over within the group instead of
		// dead-ending on the owner.
		rt.forwardPinnedRead(w, r, tr, body, key, candidates, deadline)
		return
	}

	attempts := 1
	if idempotent {
		attempts += rt.cfg.MaxRetries
	}
	backoff := rt.cfg.RetryBackoff
	var lastErr error
	cursor := 0
	for attempt := 0; attempt < attempts; attempt++ {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			break
		}
		// Prefer in-rotation members; when every candidate is ejected
		// (e.g. the whole pool just restarted), try the owner anyway —
		// passive success flips it back to healthy faster than a probe.
		var b *backend
		for n := 0; n < len(candidates); n++ {
			cand := rt.backends[candidates[(cursor+n)%len(candidates)]]
			if cand.health.Healthy() {
				b = cand
				cursor = (cursor + n) % len(candidates)
				break
			}
		}
		if b == nil {
			if !pinned && attempt > 0 {
				break // every successor tried or ejected
			}
			b = rt.backends[candidates[cursor%len(candidates)]]
		}

		if attempt > 0 {
			if backoff >= remaining {
				break // the budget would be spent sleeping
			}
			tr.Eventf("retry %d: backoff %s then backend %s", attempt, backoff, b.name)
			time.Sleep(backoff)
			backoff *= 2
			b.retries.Add(1)
			rt.retriesTotal.Add(1)
			if remaining = time.Until(deadline); remaining <= 0 {
				break
			}
		}
		if rt.proxyOnce(w, r, tr, b, body, remaining) {
			return
		}
		lastErr = fmt.Errorf("backend %s unreachable", b.name)
		cursor++ // next attempt starts at the following successor
	}
	rt.proxyErrors.Add(1)
	if pinned && !rt.anyHealthy(candidates) {
		// No group member that can answer is in rotation. Tell the
		// client when a retry could plausibly succeed: the remainder of
		// the owner's ejection cooldown.
		owner := rt.backends[candidates[0]]
		rt.pinnedUnavailable.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(owner.health.RetryAfter(time.Now())))
		writeJSON(w, http.StatusServiceUnavailable, apiError{
			Error: fmt.Sprintf("router: backend %s owning this patient is out of rotation", owner.name),
		})
		return
	}
	if time.Until(deadline) <= 0 {
		rt.deadlineExhausted.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, apiError{Error: "router: request budget exhausted"})
		return
	}
	msg := "router: request failed"
	if lastErr != nil {
		msg = "router: " + lastErr.Error()
	}
	writeJSON(w, http.StatusBadGateway, apiError{Error: msg})
}

// anyHealthy reports whether any named backend is in rotation.
func (rt *Router) anyHealthy(names []string) bool {
	for _, n := range names {
		if rt.backends[n].health.Healthy() {
			return true
		}
	}
	return false
}

// requestDeadline settles the request budget: the router's own budget,
// shrunk (never grown) by a client-sent X-Deadline-Ms. expired reports
// a budget that was spent before the request arrived.
func (rt *Router) requestDeadline(r *http.Request) (deadline time.Time, expired bool) {
	deadline = time.Now().Add(rt.cfg.RequestBudget)
	if h := r.Header.Get(deadlineHeader); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil {
			if ms <= 0 {
				return time.Time{}, true
			}
			if d := time.Now().Add(time.Duration(ms) * time.Millisecond); d.Before(deadline) {
				deadline = d
			}
		}
	}
	return deadline, false
}

// retryAfterSeconds renders a duration as a Retry-After value: whole
// seconds, rounded up, never below 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// proxyOnce sends one attempt to one backend, streaming the response
// through on success. A transport failure reports to the backend's
// health machine and returns false so the caller can retry; any HTTP
// response — including 4xx/5xx — is a successful proxy and is
// relayed as-is. remaining is the request budget left: it caps the
// attempt timeout and is stamped onto the backend as X-Deadline-Ms so
// the backend stops working the moment this attempt's clock runs out.
func (rt *Router) proxyOnce(w http.ResponseWriter, r *http.Request, tr *obs.Trace, b *backend, body []byte, remaining time.Duration) bool {
	b.requests.Add(1)
	url := b.base + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	attemptTimeout := rt.cfg.Timeout
	if remaining < attemptTimeout {
		attemptTimeout = remaining
	}
	ctx, cancel := context.WithTimeout(r.Context(), attemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, r.Method, url, reader)
	if err != nil {
		b.errors.Add(1)
		return false
	}
	copyProxyHeaders(req.Header, r.Header)
	req.Header.Set(deadlineHeader, strconv.FormatInt(attemptTimeout.Milliseconds(), 10))
	t0 := time.Now()
	resp, err := b.client.Do(req)
	lat := time.Since(t0)
	if tr != nil {
		tr.SpanAt("proxy:"+b.name, t0, t0.Add(lat))
	}
	if err != nil {
		b.errors.Add(1)
		tr.Eventf("backend %s failed: %v", b.name, err)
		rt.noteFailure(b, "proxy", err)
		return false
	}
	defer resp.Body.Close()
	// Buffer the whole response before a byte reaches the client. Once
	// the status line is written the attempt cannot be retried, and a
	// chunked body that dies mid-stream on the backend link would be
	// re-terminated cleanly by our own server — the client would read a
	// truncated 2xx as if it were complete. A mid-body failure here is
	// a transport error like any other: it feeds the health machine and
	// the caller retries.
	raw, rerr := io.ReadAll(resp.Body)
	if rerr == nil && resp.ContentLength >= 0 && int64(len(raw)) != resp.ContentLength {
		rerr = fmt.Errorf("short body: %d of %d bytes", len(raw), resp.ContentLength)
	}
	if rerr != nil {
		b.errors.Add(1)
		tr.Eventf("backend %s body died mid-read: %v", b.name, rerr)
		rt.noteFailure(b, "proxy", rerr)
		return false
	}
	b.lat.Observe(lat)
	rt.noteSuccess(b)
	tr.SetBackend(b.name)

	h := w.Header()
	for k, vs := range resp.Header {
		if isHopByHop(k) {
			continue
		}
		h[k] = vs
	}
	h.Set("X-Backend", b.name)
	w.WriteHeader(resp.StatusCode)
	w.Write(raw)
	return true
}

// copyProxyHeaders forwards the request headers the backends care
// about: content negotiation, the Cache-Control bypass hook, and the
// request identity (observe settled X-Request-Id before routing, so
// the backend's trace carries the same id as the router's).
func copyProxyHeaders(dst, src http.Header) {
	for _, k := range []string{"Content-Type", "Accept", "Cache-Control", "Accept-Encoding", obs.RequestIDHeader} {
		if v := src.Values(k); len(v) > 0 {
			dst[k] = v
		}
	}
}

func isHopByHop(k string) bool {
	switch http.CanonicalHeaderKey(k) {
	case "Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
		"Te", "Trailer", "Transfer-Encoding", "Upgrade":
		return true
	}
	return false
}

package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dssddi"
	"dssddi/internal/serve"
)

var (
	sysOnce sync.Once
	sysA    *dssddi.System
	sysB    *dssddi.System
)

// systems trains two small models over the same cohort (different
// parameter seeds) — one to serve, one to roll out.
func systems(t testing.TB) (*dssddi.System, *dssddi.System) {
	t.Helper()
	sysOnce.Do(func() {
		data := dssddi.GenerateChronic(11, 50, 40)
		train := func(seed int64) *dssddi.System {
			cfg := dssddi.DefaultConfig()
			cfg.DDIEpochs = 15
			cfg.MDEpochs = 25
			cfg.Hidden = 16
			cfg.Seed = seed
			sys := dssddi.New(cfg)
			if err := sys.Train(data); err != nil {
				panic(err)
			}
			return sys
		}
		sysA, sysB = train(1), train(7)
	})
	if sysA == nil || sysB == nil {
		t.Fatal("shared test systems failed to train")
	}
	return sysA, sysB
}

// saveSnapshot writes sys to dir/name and returns the path.
func saveSnapshot(t testing.TB, sys *dssddi.System, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// fleet is a test cluster: n serve backends (each loaded from its own
// snapshot read, with SnapshotPath wired for reloads) plus a router.
type fleet struct {
	names    []string
	backends []*serve.Server
	tss      []*httptest.Server
	router   *Router
	rts      *httptest.Server
}

func bootFleet(t *testing.T, n int, snapPath string, cfg Config) *fleet {
	t.Helper()
	sys, _ := systems(t)
	f := &fleet{}
	for i := 0; i < n; i++ {
		backendSys := sys
		if snapPath != "" {
			fh, err := os.Open(snapPath)
			if err != nil {
				t.Fatal(err)
			}
			backendSys, err = dssddi.Load(fh)
			fh.Close()
			if err != nil {
				t.Fatal(err)
			}
		}
		s, err := serve.New(backendSys, serve.Config{SnapshotPath: snapPath})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		f.backends = append(f.backends, s)
		f.tss = append(f.tss, ts)
		f.names = append(f.names, strings.TrimPrefix(ts.URL, "http://"))
	}
	cfg.Backends = f.names
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.router = rt
	f.rts = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		f.rts.Close()
		rt.Close()
		for i := range f.tss {
			f.tss[i].Close()
			f.backends[i].Close()
		}
	})
	return f
}

func fastConfig() Config {
	return Config{
		ProbeInterval: 50 * time.Millisecond,
		FailAfter:     2,
		Cooldown:      250 * time.Millisecond,
		MaxRetries:    2,
		RetryBackoff:  5 * time.Millisecond,
		Timeout:       5 * time.Second,
	}
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func doJSON(t testing.TB, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var reader io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		reader = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, reader)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestRouterStickyRouting: a patient's requests always land on the
// ring owner, the fleet as a whole is actually spread, and every
// proxied response carries exactly one X-Epoch and an X-Backend.
func TestRouterStickyRouting(t *testing.T) {
	f := bootFleet(t, 3, "", fastConfig())
	used := map[string]bool{}
	for p := 0; p < 30; p++ {
		var owner string
		for rep := 0; rep < 3; rep++ {
			resp, body := postJSON(t, f.rts.URL+"/v1/suggest", map[string]any{"patient": p, "k": 2})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("patient %d: status %d: %s", p, resp.StatusCode, body)
			}
			backend := resp.Header.Get("X-Backend")
			if backend == "" {
				t.Fatal("response missing X-Backend")
			}
			if epochs := resp.Header.Values("X-Epoch"); len(epochs) != 1 {
				t.Fatalf("response carries %d X-Epoch headers, want exactly 1", len(epochs))
			}
			if rep == 0 {
				owner = backend
			} else if backend != owner {
				t.Fatalf("patient %d moved between backends: %s then %s", p, owner, backend)
			}
		}
		used[owner] = true
	}
	if len(used) < 2 {
		t.Fatalf("30 patients all routed to %d backend(s); ring is not spreading", len(used))
	}

	// The router's view of the routing must match an identically
	// configured ring.
	ring := NewRing(f.router.cfg.VNodes)
	for _, n := range f.names {
		ring.Add(n)
	}
	resp, _ := postJSON(t, f.rts.URL+"/v1/suggest", map[string]any{"patient": 17, "k": 2})
	if got, want := resp.Header.Get("X-Backend"), ring.Lookup(patientKey(17)); got != want {
		t.Fatalf("patient 17 served by %s, ring says %s", got, want)
	}
}

// TestRouterRegistryShardLocal: a registered profile lives on exactly
// the ring owner, and registered suggests through the router reach it.
func TestRouterRegistryShardLocal(t *testing.T) {
	f := bootFleet(t, 3, "", fastConfig())
	const id = "shard-local-patient"
	resp, body := doJSON(t, http.MethodPut, f.rts.URL+"/v1/patients/"+id, map[string]any{"regimen": []int{0, 1, 2}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT: status %d: %s", resp.StatusCode, body)
	}
	owner := resp.Header.Get("X-Backend")

	// Direct backend reads: only the owner knows the patient.
	for i, name := range f.names {
		direct, _ := doJSON(t, http.MethodGet, f.tss[i].URL+"/v1/patients/"+id, nil)
		want := http.StatusNotFound
		if name == owner {
			want = http.StatusOK
		}
		if direct.StatusCode != want {
			t.Fatalf("backend %s: GET patient = %d, want %d", name, direct.StatusCode, want)
		}
	}

	// Registered suggest routes to the same shard.
	resp, body = postJSON(t, f.rts.URL+"/v1/suggest", map[string]any{"patient_id": id, "k": 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("registered suggest: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Backend"); got != owner {
		t.Fatalf("registered suggest served by %s, profile lives on %s", got, owner)
	}

	// And the whole lifecycle stays on the shard through the router.
	resp, _ = doJSON(t, http.MethodDelete, f.rts.URL+"/v1/patients/"+id, nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Backend") != owner {
		t.Fatalf("DELETE: status %d via %s, want 200 via %s", resp.StatusCode, resp.Header.Get("X-Backend"), owner)
	}
}

// TestRouterCoordinatedRollout: one router reload rolls every backend
// to the new snapshot, canary first, each step verified.
func TestRouterCoordinatedRollout(t *testing.T) {
	a, b := systems(t)
	dir := t.TempDir()
	pathA := saveSnapshot(t, a, dir, "a.snap")
	pathB := saveSnapshot(t, b, dir, "b.snap")
	f := bootFleet(t, 3, pathA, fastConfig())

	resp, body := postJSON(t, f.rts.URL+"/v1/admin/reload", ReloadRequest{Path: pathB})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollout: status %d: %s", resp.StatusCode, body)
	}
	var rollout RolloutResponse
	if err := json.Unmarshal(body, &rollout); err != nil {
		t.Fatal(err)
	}
	if !rollout.OK || len(rollout.Steps) != 3 {
		t.Fatalf("rollout = %+v, want OK with 3 steps", rollout)
	}
	if !rollout.Steps[0].Canary {
		t.Fatal("first step is not marked canary")
	}
	for _, step := range rollout.Steps {
		if step.Status != "reloaded" || step.OldEpoch != 1 || step.NewEpoch != 2 {
			t.Fatalf("step %+v, want reloaded 1 -> 2", step)
		}
	}
	// Every backend is really on epoch 2.
	for i, s := range f.backends {
		if got := s.Epoch(); got != 2 {
			t.Fatalf("backend %d epoch = %d, want 2", i, got)
		}
	}
}

// TestRouterRolloutAbort: a failing canary aborts the rollout before
// any other backend is touched, and the report says so.
func TestRouterRolloutAbort(t *testing.T) {
	a, _ := systems(t)
	dir := t.TempDir()
	pathA := saveSnapshot(t, a, dir, "a.snap")
	f := bootFleet(t, 3, pathA, fastConfig())

	resp, body := postJSON(t, f.rts.URL+"/v1/admin/reload", ReloadRequest{Path: filepath.Join(dir, "missing.snap")})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("rollout with bad path: status %d: %s", resp.StatusCode, body)
	}
	var rollout RolloutResponse
	if err := json.Unmarshal(body, &rollout); err != nil {
		t.Fatal(err)
	}
	if rollout.OK || len(rollout.Steps) != 3 {
		t.Fatalf("rollout = %+v, want failed with 3 steps", rollout)
	}
	if rollout.Steps[0].Status != "failed" || !rollout.Steps[0].Canary {
		t.Fatalf("canary step = %+v, want failed canary", rollout.Steps[0])
	}
	for _, step := range rollout.Steps[1:] {
		if step.Status != "skipped" {
			t.Fatalf("post-canary step = %+v, want skipped", step)
		}
	}
	// No backend moved off epoch 1.
	for i, s := range f.backends {
		if got := s.Epoch(); got != 1 {
			t.Fatalf("backend %d epoch = %d after aborted rollout, want 1", i, got)
		}
	}
}

// gatedHandler simulates a crashed backend: while closed, every
// connection is hijacked and dropped, which the router sees as a
// transport failure.
type gatedHandler struct {
	open atomic.Bool
	h    http.Handler
}

func (g *gatedHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.open.Load() {
		g.h.ServeHTTP(w, r)
		return
	}
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	panic("gated handler: hijack unsupported")
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRouterFailoverEjectionRecovery: when a backend dies, its index
// keys fail over to the deterministic ring successor and the prober
// ejects it; pinned registry traffic for its shard is refused rather
// than silently served elsewhere; on recovery, its keys return.
func TestRouterFailoverEjectionRecovery(t *testing.T) {
	sys, _ := systems(t)
	f := &fleet{}
	var gate *gatedHandler
	for i := 0; i < 3; i++ {
		s, err := serve.New(sys, serve.Config{})
		if err != nil {
			t.Fatal(err)
		}
		handler := http.Handler(s.Handler())
		if i == 2 {
			gate = &gatedHandler{h: handler}
			gate.open.Store(true)
			handler = gate
		}
		ts := httptest.NewServer(handler)
		f.backends = append(f.backends, s)
		f.tss = append(f.tss, ts)
		f.names = append(f.names, strings.TrimPrefix(ts.URL, "http://"))
	}
	cfg := fastConfig()
	cfg.Backends = f.names
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.router = rt
	f.rts = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		f.rts.Close()
		rt.Close()
		for i := range f.tss {
			f.tss[i].Close()
			f.backends[i].Close()
		}
	})
	gated := f.names[2]

	// Find keys the gated backend owns.
	ring := NewRing(rt.cfg.VNodes)
	for _, n := range f.names {
		ring.Add(n)
	}
	gatedIndex := -1
	for p := 0; p < 50; p++ {
		if ring.Lookup(patientKey(p)) == gated {
			gatedIndex = p
			break
		}
	}
	gatedID := ""
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("fo-%d", i)
		if ring.Lookup(registeredKey(id)) == gated {
			gatedID = id
			break
		}
	}
	if gatedIndex < 0 || gatedID == "" {
		t.Fatal("could not find keys owned by the gated backend")
	}

	// Healthy: the owner serves its own keys.
	resp, _ := postJSON(t, f.rts.URL+"/v1/suggest", map[string]any{"patient": gatedIndex, "k": 2})
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Backend") != gated {
		t.Fatalf("pre-failure: status %d via %s, want 200 via %s", resp.StatusCode, resp.Header.Get("X-Backend"), gated)
	}

	// Kill it. Index reads must fail over to a survivor within the
	// retry budget — zero client-visible errors.
	gate.open.Store(false)
	resp, body := postJSON(t, f.rts.URL+"/v1/suggest", map[string]any{"patient": gatedIndex, "k": 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover suggest: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Backend"); got == gated || got == "" {
		t.Fatalf("failover suggest served by %q, want a survivor", got)
	}

	// Registry writes for the dead shard fail fast (502 pre-ejection,
	// 503 once ejected) instead of landing on the wrong backend.
	resp, _ = doJSON(t, http.MethodPut, f.rts.URL+"/v1/patients/"+gatedID, map[string]any{"regimen": []int{0, 1}})
	if resp.StatusCode != http.StatusBadGateway && resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write to dead shard: status %d, want 502/503", resp.StatusCode)
	}

	// The prober ejects it.
	waitFor(t, "ejection", 5*time.Second, func() bool {
		var health HealthResponse
		resp, body := doJSON(t, http.MethodGet, f.rts.URL+"/healthz", nil)
		if resp.StatusCode != http.StatusOK {
			return false
		}
		if err := json.Unmarshal(body, &health); err != nil {
			return false
		}
		return health.Status == "degraded" && health.Healthy == 2
	})

	// Recovery: reopen the gate; the half-open trial brings it back
	// and its keys return home.
	gate.open.Store(true)
	waitFor(t, "recovery", 5*time.Second, func() bool {
		var health HealthResponse
		resp, body := doJSON(t, http.MethodGet, f.rts.URL+"/healthz", nil)
		if resp.StatusCode != http.StatusOK {
			return false
		}
		if err := json.Unmarshal(body, &health); err != nil {
			return false
		}
		return health.Status == "ok"
	})
	waitFor(t, "keys returning to the recovered owner", 5*time.Second, func() bool {
		resp, _ := postJSON(t, f.rts.URL+"/v1/suggest", map[string]any{"patient": gatedIndex, "k": 2})
		return resp.StatusCode == http.StatusOK && resp.Header.Get("X-Backend") == gated
	})
}

// TestRouterRollingReloadHammer: concurrent index and registered
// suggests through the router while a rolling reload sweeps the
// fleet. Every response must be 200 with exactly one X-Epoch header
// whose value is a real epoch (1 pre-reload, 2 post) — i.e. each
// response was produced wholly by one backend generation.
func TestRouterRollingReloadHammer(t *testing.T) {
	a, b := systems(t)
	dir := t.TempDir()
	pathA := saveSnapshot(t, a, dir, "a.snap")
	pathB := saveSnapshot(t, b, dir, "b.snap")
	f := bootFleet(t, 3, pathA, fastConfig())

	// Register a patient per worker up front.
	const workers = 8
	for c := 0; c < workers; c++ {
		resp, body := doJSON(t, http.MethodPut, f.rts.URL+"/v1/patients/"+fmt.Sprintf("h-%d", c), map[string]any{"regimen": []int{0, 1, 2}})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("PUT h-%d: status %d: %s", c, resp.StatusCode, body)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, workers)
	for c := 0; c < workers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for it := 0; ; it++ {
				select {
				case <-stop:
					return
				default:
				}
				var req any
				if it%2 == 0 {
					req = map[string]any{"patient": (c*7 + it) % 40, "k": 2}
				} else {
					req = map[string]any{"patient_id": fmt.Sprintf("h-%d", c), "k": 2}
				}
				buf, _ := json.Marshal(req)
				resp, err := client.Post(f.rts.URL+"/v1/suggest", "application/json", bytes.NewReader(buf))
				if err != nil {
					errc <- fmt.Errorf("worker %d: transport error: %v", c, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("worker %d: status %d", c, resp.StatusCode)
					return
				}
				epochs := resp.Header.Values("X-Epoch")
				if len(epochs) != 1 {
					errc <- fmt.Errorf("worker %d: %d X-Epoch headers", c, len(epochs))
					return
				}
				if epochs[0] != "1" && epochs[0] != "2" {
					errc <- fmt.Errorf("worker %d: impossible epoch %q", c, epochs[0])
					return
				}
			}
		}(c)
	}

	time.Sleep(100 * time.Millisecond)
	resp, body := postJSON(t, f.rts.URL+"/v1/admin/reload", ReloadRequest{Path: pathB})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mid-load rollout: status %d: %s", resp.StatusCode, body)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	for i, s := range f.backends {
		if got := s.Epoch(); got != 2 {
			t.Fatalf("backend %d epoch = %d after rollout, want 2", i, got)
		}
	}
}

package serve

import (
	"sync/atomic"
	"time"

	"dssddi"
)

// batcher coalesces concurrent per-patient score requests into one
// System.Scores matrix call. The score kernels partition work by
// output row, so a row computed in a batch of 64 is bitwise identical
// to the same row computed alone — batching changes latency and
// throughput, never results (the equivalence tests enforce this).
type batcher struct {
	sys      *dssddi.System
	reqs     chan batchReq
	maxBatch int
	window   time.Duration
	stop     chan struct{}
	done     chan struct{}

	batches  atomic.Int64 // Scores calls issued
	requests atomic.Int64 // patient requests served through them
}

type batchReq struct {
	patient int
	out     chan batchResp
}

type batchResp struct {
	row []float64
	err error
}

// newBatcher starts the collector goroutine. maxBatch bounds the
// patients per Scores call; window is how long the collector holds a
// lone request hoping for company (0 = opportunistic only: batch
// whatever is already queued, never wait).
func newBatcher(sys *dssddi.System, maxBatch int, window time.Duration) *batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	b := &batcher{
		sys:      sys,
		reqs:     make(chan batchReq, 4*maxBatch),
		maxBatch: maxBatch,
		window:   window,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go b.loop()
	return b
}

// Score returns the score row for one patient, transparently batched
// with whatever concurrent requests are in flight. The returned slice
// is owned by the caller. The patient index must already be validated.
func (b *batcher) Score(patient int) ([]float64, error) {
	out := make(chan batchResp, 1)
	select {
	case b.reqs <- batchReq{patient: patient, out: out}:
	case <-b.stop:
		return nil, errServerClosed
	}
	select {
	case r := <-out:
		return r.row, r.err
	case <-b.done:
		// The collector exited. Our request may still have been served
		// by its final drain (out is buffered), so check before giving
		// up — otherwise it was enqueued after the drain and will never
		// be serviced.
		select {
		case r := <-out:
			return r.row, r.err
		default:
			return nil, errServerClosed
		}
	}
}

// Close stops the collector after it drains in-flight requests.
func (b *batcher) Close() {
	close(b.stop)
	<-b.done
}

// Stats reports how many Scores calls served how many requests.
func (b *batcher) Stats() (batches, requests int64) {
	return b.batches.Load(), b.requests.Load()
}

func (b *batcher) loop() {
	defer close(b.done)
	buf := make([]batchReq, 0, b.maxBatch)
	for {
		select {
		case r := <-b.reqs:
			buf = append(buf[:0], r)
			b.collect(&buf)
			b.flush(buf)
		case <-b.stop:
			// Drain whatever was enqueued before Close.
			for {
				select {
				case r := <-b.reqs:
					buf = append(buf[:0], r)
					b.collect(&buf)
					b.flush(buf)
				default:
					return
				}
			}
		}
	}
}

// collect fills buf (which holds one request) up to maxBatch: first a
// non-blocking drain of everything already queued, then — when the
// batch is still a singleton and a window is configured — a bounded
// wait for company.
func (b *batcher) collect(buf *[]batchReq) {
	for len(*buf) < b.maxBatch {
		select {
		case r := <-b.reqs:
			*buf = append(*buf, r)
			continue
		default:
		}
		break
	}
	if len(*buf) > 1 || b.window <= 0 {
		return
	}
	timer := time.NewTimer(b.window)
	defer timer.Stop()
	for len(*buf) < b.maxBatch {
		select {
		case r := <-b.reqs:
			*buf = append(*buf, r)
		case <-timer.C:
			return
		case <-b.stop:
			return
		}
	}
}

// flush scores the batch with one matrix call and fans the rows back
// out to the waiting requests.
func (b *batcher) flush(batch []batchReq) {
	if len(batch) == 0 {
		return
	}
	patients := make([]int, len(batch))
	for i, r := range batch {
		patients[i] = r.patient
	}
	rows, err := b.sys.Scores(patients)
	b.batches.Add(1)
	b.requests.Add(int64(len(batch)))
	for i, r := range batch {
		if err != nil {
			r.out <- batchResp{err: err}
			continue
		}
		r.out <- batchResp{row: rows[i]}
	}
}

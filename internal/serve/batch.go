package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"dssddi"
	"dssddi/internal/obs"
)

// batcher coalesces concurrent per-patient score requests into one
// System.ScoresInto call. The score kernels partition work by output
// row, so a row computed in a batch of 64 is bitwise identical to the
// same row computed alone — batching changes latency and throughput,
// never results (the equivalence tests enforce this).
//
// Score rows live in a bounded free list: the collector hands each
// request a recycled buffer filled in place, and handlers return it
// through PutRow once the response is encoded, so steady-state
// scoring allocates nothing per request. The per-batch patients and
// row-header slices are collector-owned and reused across loop
// iterations.
type batcher struct {
	sys      *dssddi.System
	reqs     chan batchReq
	maxBatch int
	window   time.Duration
	stop     chan struct{}
	done     chan struct{}

	patients []int       // reused per batch (collector goroutine only)
	rows     [][]float64 // reused per batch (collector goroutine only)
	rowPool  rowPool

	batches  atomic.Int64 // Scores calls issued
	requests atomic.Int64 // patient requests served through them
}

type batchReq struct {
	patient int
	out     chan batchResp
	// tr/enq carry a sampled request's trace into the collector, which
	// records the batch-wait and score-compute spans. Both are zero for
	// un-sampled requests (the overwhelmingly common case).
	tr  *obs.Trace
	enq time.Time
}

type batchResp struct {
	row []float64
	err error
}

// rowPool is a bounded free list of score-row buffers. A plain
// mutex-guarded stack beats sync.Pool here: the buffers are plain
// slices (no boxing allocation on Put) and survive GC cycles, so a
// steady request stream reuses the same few rows indefinitely.
type rowPool struct {
	mu    sync.Mutex
	width int
	max   int
	free  [][]float64
}

func (p *rowPool) get() []float64 {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		row := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return row
	}
	p.mu.Unlock()
	return make([]float64, p.width)
}

func (p *rowPool) put(row []float64) {
	if len(row) != p.width {
		return // foreign or resized buffer; drop it
	}
	p.mu.Lock()
	if len(p.free) < p.max {
		p.free = append(p.free, row)
	}
	p.mu.Unlock()
}

// newBatcher starts the collector goroutine. maxBatch bounds the
// patients per Scores call; window is how long the collector holds a
// lone request hoping for company (0 = opportunistic only: batch
// whatever is already queued, never wait). drugs is the score-row
// width.
func newBatcher(sys *dssddi.System, maxBatch int, window time.Duration, drugs int) *batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	b := &batcher{
		sys:      sys,
		reqs:     make(chan batchReq, 4*maxBatch),
		maxBatch: maxBatch,
		window:   window,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		patients: make([]int, 0, maxBatch),
		rows:     make([][]float64, 0, maxBatch),
		rowPool:  rowPool{width: drugs, max: 4 * maxBatch},
	}
	go b.loop()
	return b
}

// Score returns the score row for one patient, transparently batched
// with whatever concurrent requests are in flight. The returned slice
// is borrowed from the batcher's row pool: the caller must hand it
// back with PutRow when done (PutRow(nil) is a no-op, so callers may
// defer it unconditionally). The patient index must already be
// validated.
//
// An expired ctx abandons the request — both while enqueueing and
// while waiting for the batch — and returns ctx.Err(), so a caller
// whose propagated deadline has passed stops consuming batch capacity
// immediately. An abandoned request's row is still computed and sent
// into the buffered out channel, where the GC reclaims it; the row
// pool is bounded, so the leak-back is a missed recycle, not a leak.
func (b *batcher) Score(ctx context.Context, patient int) ([]float64, error) {
	out := make(chan batchResp, 1)
	req := batchReq{patient: patient, out: out}
	if tr := obs.FromContext(ctx); tr != nil {
		req.tr, req.enq = tr, time.Now()
	}
	select {
	case b.reqs <- req:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-b.stop:
		return nil, errServerClosed
	}
	select {
	case r := <-out:
		return r.row, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-b.done:
		// The collector exited. Our request may still have been served
		// by its final drain (out is buffered), so check before giving
		// up — otherwise it was enqueued after the drain and will never
		// be serviced.
		select {
		case r := <-out:
			return r.row, r.err
		default:
			return nil, errServerClosed
		}
	}
}

// PutRow recycles a row obtained from Score.
func (b *batcher) PutRow(row []float64) {
	if row != nil {
		b.rowPool.put(row)
	}
}

// Close stops the collector after it drains in-flight requests.
func (b *batcher) Close() {
	close(b.stop)
	<-b.done
}

// Stats reports how many Scores calls served how many requests.
func (b *batcher) Stats() (batches, requests int64) {
	return b.batches.Load(), b.requests.Load()
}

func (b *batcher) loop() {
	defer close(b.done)
	buf := make([]batchReq, 0, b.maxBatch)
	for {
		select {
		case r := <-b.reqs:
			buf = append(buf[:0], r)
			b.collect(&buf)
			b.flush(buf)
		case <-b.stop:
			// Drain whatever was enqueued before Close.
			for {
				select {
				case r := <-b.reqs:
					buf = append(buf[:0], r)
					b.collect(&buf)
					b.flush(buf)
				default:
					return
				}
			}
		}
	}
}

// collect fills buf (which holds one request) up to maxBatch: first a
// non-blocking drain of everything already queued, then — when the
// batch is still a singleton and a window is configured — a bounded
// wait for company.
func (b *batcher) collect(buf *[]batchReq) {
	for len(*buf) < b.maxBatch {
		select {
		case r := <-b.reqs:
			*buf = append(*buf, r)
			continue
		default:
		}
		break
	}
	if len(*buf) > 1 || b.window <= 0 {
		return
	}
	timer := time.NewTimer(b.window)
	defer timer.Stop()
	for len(*buf) < b.maxBatch {
		select {
		case r := <-b.reqs:
			*buf = append(*buf, r)
		case <-timer.C:
			return
		case <-b.stop:
			return
		}
	}
}

// flush scores the batch into pooled row buffers with one ScoresInto
// call and fans the rows out to the waiting requests, which own them
// until PutRow.
func (b *batcher) flush(batch []batchReq) {
	if len(batch) == 0 {
		return
	}
	b.patients = b.patients[:0]
	b.rows = b.rows[:0]
	traced := false
	for _, r := range batch {
		b.patients = append(b.patients, r.patient)
		b.rows = append(b.rows, b.rowPool.get())
		traced = traced || r.tr != nil
	}
	var scoreStart time.Time
	if traced {
		scoreStart = time.Now()
	}
	err := b.sys.ScoresInto(b.rows, b.patients)
	if traced {
		// The batch span is each request's enqueue-to-score wait; the
		// score span is shared (one matrix call served the whole batch).
		// The trace mutex drops these recordings if the request already
		// Finished (deadline abandoned), so a sealed trace never mutates.
		scoreEnd := time.Now()
		for _, r := range batch {
			if r.tr != nil {
				r.tr.SpanAt("batch", r.enq, scoreStart)
				r.tr.SpanAt("score", scoreStart, scoreEnd)
				r.tr.Eventf("batch size %d", len(batch))
			}
		}
	}
	b.batches.Add(1)
	b.requests.Add(int64(len(batch)))
	for i, r := range batch {
		if err != nil {
			b.rowPool.put(b.rows[i])
			r.out <- batchResp{err: err}
		} else {
			r.out <- batchResp{row: b.rows[i]}
		}
		b.rows[i] = nil // handed off (or recycled); drop the header's reference
	}
}

package serve

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// lruCache is a sharded LRU over marshaled response bodies. Sharding
// keeps lock contention off the hot path: a request only takes the
// mutex of the shard its key hashes to, so concurrent suggests for
// different patients rarely serialize on the cache.
type lruCache struct {
	shards []*lruShard
	hits   atomic.Int64
	misses atomic.Int64
}

type lruShard struct {
	mu    sync.Mutex
	max   int
	items map[string]*list.Element
	order *list.List // front = most recently used
}

type lruEntry struct {
	key   string
	value []byte
}

// newLRUCache builds a cache holding at most capacity entries across
// shards (shard count rounded so every shard gets the same budget).
// Returns nil when capacity <= 0 — a nil *lruCache is a valid,
// always-miss cache, which is how caching is disabled.
func newLRUCache(capacity, shards int) *lruCache {
	if capacity <= 0 {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	perShard := (capacity + shards - 1) / shards
	c := &lruCache{shards: make([]*lruShard, shards)}
	for i := range c.shards {
		c.shards[i] = &lruShard{
			max:   perShard,
			items: make(map[string]*list.Element, perShard),
			order: list.New(),
		}
	}
	return c
}

func (c *lruCache) shard(key string) *lruShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[h.Sum32()%uint32(len(c.shards))]
}

// Get returns the cached body for key, if any, promoting it to most
// recently used. The returned slice is shared — callers only write it
// to the response, never mutate it.
func (c *lruCache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.items[key]
	var value []byte
	if ok {
		s.order.MoveToFront(el)
		// Read the slice header under the lock: Put may overwrite an
		// existing entry's value in place.
		value = el.Value.(*lruEntry).value
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return value, true
}

// Put stores a body, evicting the least recently used entry of the
// shard when it is full.
func (c *lruCache) Put(key string, value []byte) {
	if c == nil {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*lruEntry).value = value
		s.order.MoveToFront(el)
		return
	}
	if s.order.Len() >= s.max {
		oldest := s.order.Back()
		if oldest != nil {
			s.order.Remove(oldest)
			delete(s.items, oldest.Value.(*lruEntry).key)
		}
	}
	s.items[key] = s.order.PushFront(&lruEntry{key: key, value: value})
}

// Len returns the number of live entries.
func (c *lruCache) Len() int {
	if c == nil {
		return 0
	}
	var n int
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats reports cumulative hit/miss counters.
func (c *lruCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"dssddi/internal/snapshot"
	"dssddi/internal/wal"
)

// The durable registry layers a write-ahead log under the in-memory
// patient registry: every accepted mutation (put / patch / delete) is
// appended to the WAL before the request is acknowledged, so a
// crashed backend rebuilds its registered patients on restart instead
// of silently losing them (the fleet pins registered ids to one owner
// backend — its RAM used to be the only copy). The log is compacted
// through periodic checkpoints: the full registry state is written to
// a sibling checkpoint file (internal/snapshot's checksummed codec)
// and the log truncated, so recovery replays a bounded suffix.
//
// Consistency discipline: a mutation appends its WAL record inside
// the same shard critical section that installs it, so log order
// matches install order per patient; a registry-wide RWMutex (gate)
// lets mutations proceed concurrently (RLock) while a checkpoint
// takes the write side, making the checkpoint + log truncation
// atomic with respect to writers. Records are absolute (full profile
// per set, not deltas), so replaying a checkpoint-covered suffix is
// idempotent.

// errDurability marks a mutation that failed at the WAL layer: the
// write was NOT acknowledged durably and must surface as a 500, not a
// 400 — the client's profile was fine, the disk was not.
var errDurability = errors.New("serve: durable registry write failed")

// WAL record operations.
const (
	walOpSet    = 1 // full profile for one id (put and patch both log this)
	walOpDelete = 2
)

// checkpointTag / checkpointVersion head the checkpoint file inside
// the snapshot container. Version 2 added the per-record replication
// version and tombstone flag.
const (
	checkpointTag     = "registry-checkpoint"
	checkpointVersion = 2
)

// storedProfile is one recovered registry entry. Tombstones
// (deleted=true) are recovered too: a replica must remember deletes
// across restarts or anti-entropy could resurrect them.
type storedProfile struct {
	regimen  []int
	features []float64
	version  uint64
	deleted  bool
}

// durableStore owns the WAL and checkpoint machinery for one
// registry.
type durableStore struct {
	log      *wal.Log
	ckptPath string
	every    int64 // mutations between automatic checkpoints

	// gate serializes checkpoints against mutations: every mutation
	// holds the read side across its WAL append + install, a
	// checkpoint holds the write side across scan + file write + log
	// truncation. Reads (get / suggest) never touch it.
	gate sync.RWMutex

	pending      atomic.Int64 // mutations logged since the last checkpoint
	checkpoints  atomic.Int64
	ckptFailures atomic.Int64

	recovered int // patients rebuilt at boot (checkpoint + WAL)

	closeOnce sync.Once
	closeErr  error
}

// openDurableStore loads the checkpoint (if any), replays the WAL on
// top of it and returns the store plus the recovered profiles. A
// corrupt WAL interior or checkpoint refuses to open: serving guessed
// clinical state is worse than refusing to start.
func openDurableStore(cfg Config) (*durableStore, map[string]storedProfile, error) {
	pol, err := wal.ParseSyncPolicy(cfg.WALSync)
	if err != nil {
		return nil, nil, err
	}
	ckptPath := cfg.CheckpointPath
	if ckptPath == "" {
		ckptPath = cfg.WALPath + ".ckpt"
	}
	profiles := make(map[string]storedProfile)
	if err := loadCheckpoint(ckptPath, profiles); err != nil {
		return nil, nil, err
	}
	log, err := wal.Open(cfg.WALPath, wal.Options{Sync: pol, Interval: cfg.WALSyncInterval}, func(version uint64, payload []byte) error {
		return applyRecord(profiles, version, payload)
	})
	if err != nil {
		return nil, nil, err
	}
	live := 0
	for _, p := range profiles {
		if !p.deleted {
			live++
		}
	}
	st := &durableStore{
		log:       log,
		ckptPath:  ckptPath,
		every:     int64(cfg.CheckpointEvery),
		recovered: live,
	}
	// Records already in the log count toward the next compaction,
	// otherwise a workload of short-lived restarts never checkpoints.
	st.pending.Store(log.Records())
	return st, profiles, nil
}

// logSet appends a full-profile record stamped with its replication
// version; called under the owning shard's lock so the log order
// matches the install order.
func (st *durableStore) logSet(version uint64, id string, regimen []int, features []float64) error {
	if err := st.log.Append(version, encodeSetRecord(id, regimen, features)); err != nil {
		return fmt.Errorf("%w: %v", errDurability, err)
	}
	st.pending.Add(1)
	return nil
}

// logDelete appends a tombstone; called under the owning shard's lock.
func (st *durableStore) logDelete(version uint64, id string) error {
	if err := st.log.Append(version, encodeDeleteRecord(id)); err != nil {
		return fmt.Errorf("%w: %v", errDurability, err)
	}
	st.pending.Add(1)
	return nil
}

// maybeCheckpoint compacts the log once enough mutations accumulated.
// Called after a mutation has released its locks. A failed checkpoint
// is counted and logged but never fails the request — the mutations
// themselves are already durable in the WAL.
func (st *durableStore) maybeCheckpoint(r *patientRegistry) {
	if st.every <= 0 || st.pending.Load() < st.every {
		return
	}
	if err := st.checkpoint(r, false); err != nil {
		st.ckptFailures.Add(1)
		fmt.Fprintf(os.Stderr, "serve: registry checkpoint failed (mutations remain in the WAL): %v\n", err)
	}
}

// checkpoint writes the full registry state to the checkpoint file
// (atomically, via rename) and truncates the WAL. force skips the
// threshold re-check used to collapse racing triggers.
func (st *durableStore) checkpoint(r *patientRegistry, force bool) error {
	st.gate.Lock()
	defer st.gate.Unlock()
	if !force && st.pending.Load() < st.every {
		return nil // a racing mutation already checkpointed
	}
	if err := writeCheckpoint(st.ckptPath, r.snapshotProfiles()); err != nil {
		return err
	}
	if err := st.log.Reset(); err != nil {
		return err
	}
	st.pending.Store(0)
	st.checkpoints.Add(1)
	return nil
}

// shutdown writes a final checkpoint and fsync-closes the WAL — the
// graceful half of the crash-recovery contract. Idempotent.
func (st *durableStore) shutdown(r *patientRegistry) error {
	st.closeOnce.Do(func() {
		err := st.checkpoint(r, true)
		if cerr := st.log.Close(); err == nil {
			err = cerr
		}
		st.closeErr = err
	})
	return st.closeErr
}

// --- record codec -----------------------------------------------------
//
// One WAL record payload (framing and checksumming live in
// internal/wal):
//
//	op      byte (walOpSet | walOpDelete)
//	id      uvarint length + bytes
//	set only:
//	  regimen   flag byte (0 = nil) + uvarint count + varint each
//	  features  flag byte (0 = nil) + uvarint count + 8-byte LE IEEE-754 each
//
// Profiles are absolute, never deltas, so replay is idempotent and a
// record re-applied over a checkpoint that already contains it is
// harmless.

func encodeSetRecord(id string, regimen []int, features []float64) []byte {
	buf := make([]byte, 0, 1+1+len(id)+2+len(regimen)*2+2+len(features)*8+binary.MaxVarintLen64)
	buf = append(buf, walOpSet)
	buf = binary.AppendUvarint(buf, uint64(len(id)))
	buf = append(buf, id...)
	buf = appendIntSlice(buf, regimen)
	buf = appendFloatSlice(buf, features)
	return buf
}

func encodeDeleteRecord(id string) []byte {
	buf := make([]byte, 0, 1+1+len(id))
	buf = append(buf, walOpDelete)
	buf = binary.AppendUvarint(buf, uint64(len(id)))
	buf = append(buf, id...)
	return buf
}

func appendIntSlice(buf []byte, v []int) []byte {
	if v == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = binary.AppendUvarint(buf, uint64(len(v)))
	for _, x := range v {
		buf = binary.AppendVarint(buf, int64(x))
	}
	return buf
}

func appendFloatSlice(buf []byte, v []float64) []byte {
	if v == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = binary.AppendUvarint(buf, uint64(len(v)))
	for _, x := range v {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	return buf
}

// applyRecord applies one replayed WAL record to the recovery map.
// The record's replication version rides in the WAL frame; deletes
// become tombstones rather than map removals so the recovered replica
// still refuses stale resurrecting writes.
func applyRecord(profiles map[string]storedProfile, version uint64, payload []byte) error {
	r := recordReader{buf: payload}
	op := r.byte()
	id := r.string()
	switch op {
	case walOpSet:
		regimen := r.intSlice()
		features := r.floatSlice()
		if r.err != nil {
			return fmt.Errorf("malformed set record: %w", r.err)
		}
		profiles[id] = storedProfile{regimen: regimen, features: features, version: version}
	case walOpDelete:
		if r.err != nil {
			return fmt.Errorf("malformed delete record: %w", r.err)
		}
		profiles[id] = storedProfile{version: version, deleted: true}
	default:
		return fmt.Errorf("unknown record op %d", op)
	}
	if len(r.buf) != r.pos {
		return fmt.Errorf("record has %d trailing bytes", len(r.buf)-r.pos)
	}
	return nil
}

// recordReader is a tiny sticky-error cursor over one record payload.
type recordReader struct {
	buf []byte
	pos int
	err error
}

func (r *recordReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("truncated %s at byte %d", what, r.pos)
	}
}

func (r *recordReader) byte() byte {
	if r.err != nil || r.pos >= len(r.buf) {
		r.fail("byte")
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

func (r *recordReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.pos += n
	return v
}

func (r *recordReader) string() string {
	n := r.uvarint("id length")
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)-r.pos) {
		r.fail("id")
		return ""
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

func (r *recordReader) intSlice() []int {
	if r.byte() == 0 || r.err != nil {
		return nil
	}
	n := r.uvarint("int count")
	if r.err != nil || n > uint64(len(r.buf)-r.pos) {
		r.fail("ints")
		return nil
	}
	out := make([]int, n)
	for i := range out {
		if r.err != nil {
			return nil
		}
		v, w := binary.Varint(r.buf[r.pos:])
		if w <= 0 {
			r.fail("int")
			return nil
		}
		r.pos += w
		out[i] = int(v)
	}
	return out
}

func (r *recordReader) floatSlice() []float64 {
	if r.byte() == 0 || r.err != nil {
		return nil
	}
	n := r.uvarint("float count")
	if r.err != nil || n*8 > uint64(len(r.buf)-r.pos) {
		r.fail("floats")
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.pos:]))
		r.pos += 8
	}
	return out
}

// --- checkpoint file --------------------------------------------------

type checkpointEntry struct {
	id       string
	regimen  []int
	features []float64
	version  uint64
	deleted  bool
}

// writeCheckpoint atomically replaces the checkpoint file: encode into
// a temp sibling, fsync, rename, fsync the directory.
func writeCheckpoint(path string, entries []checkpointEntry) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	e := snapshot.NewEncoder(f)
	e.String(checkpointTag)
	e.Int(checkpointVersion)
	e.Int(len(entries))
	for _, ent := range entries {
		e.String(ent.id)
		e.Int64(int64(ent.version))
		e.Bool(ent.deleted)
		e.Bool(ent.regimen != nil)
		e.Ints(ent.regimen)
		e.Bool(ent.features != nil)
		e.Floats(ent.features)
	}
	if err := e.Finish(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// loadCheckpoint reads a checkpoint file into profiles; a missing file
// is a fresh start, a damaged one refuses to load (the snapshot
// codec's CRC footer catches torn or flipped bytes).
func loadCheckpoint(path string, profiles map[string]storedProfile) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	d, err := snapshot.NewDecoder(f)
	if err != nil {
		return fmt.Errorf("serve: checkpoint %s: %w", path, err)
	}
	if tag := d.String(); tag != checkpointTag && d.Err() == nil {
		return fmt.Errorf("serve: checkpoint %s: unexpected tag %q", path, tag)
	}
	if v := d.Int(); v != checkpointVersion && d.Err() == nil {
		return fmt.Errorf("serve: checkpoint %s: unsupported version %d", path, v)
	}
	n := d.Int()
	// The decoded feature vectors are retained in profiles, so they come
	// from a shared arena: one block allocation serves many entries
	// instead of one fresh slice per Floats call.
	var arena snapshot.FloatArena
	for i := 0; i < n && d.Err() == nil; i++ {
		id := d.String()
		version := uint64(d.Int64())
		deleted := d.Bool()
		hasRegimen := d.Bool()
		regimen := d.Ints()
		hasFeatures := d.Bool()
		features := d.FloatsArena(&arena)
		if !hasRegimen {
			regimen = nil
		}
		if !hasFeatures {
			features = nil
		}
		profiles[id] = storedProfile{regimen: regimen, features: features, version: version, deleted: deleted}
	}
	if err := d.Verify(); err != nil {
		return fmt.Errorf("serve: checkpoint %s: %w", path, err)
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// --- registry integration --------------------------------------------

// snapshotProfiles copies every entry — tombstones included, so a
// checkpointed replica still remembers its deletes; callers must hold
// the durable gate exclusively (or otherwise exclude mutations).
func (r *patientRegistry) snapshotProfiles() []checkpointEntry {
	entries := make([]checkpointEntry, 0, r.len())
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for id, p := range sh.items {
			entries = append(entries, checkpointEntry{
				id: id, regimen: p.regimen, features: p.features,
				version: p.version, deleted: p.deleted,
			})
		}
		sh.mu.RUnlock()
	}
	return entries
}

// installRecovered seeds the registry with boot-recovered profiles
// and tombstones. Embeddings are left unset (embEpoch 0), so the
// subsequent reembedAll treats recovery exactly like a hot reload:
// every recovered patient is re-embedded against the current model
// before the server takes traffic.
func (r *patientRegistry) installRecovered(profiles map[string]storedProfile) {
	for id, p := range profiles {
		sh := r.shard(id)
		sh.mu.Lock()
		sh.items[id] = &registeredPatient{
			regimen: p.regimen, features: p.features, gen: 1,
			version: p.version, deleted: p.deleted,
		}
		sh.mu.Unlock()
		if !p.deleted {
			r.count.Add(1)
		}
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dssddi/internal/wal"
)

// newDurableServer boots a WAL-backed server WITHOUT registering
// cleanup — crash tests abandon it deliberately (no Close, no final
// checkpoint), simulating a SIGKILL'd process whose only legacy is
// the WAL file.
func newDurableServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(system(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, httptest.NewServer(s.Handler())
}

func durableConfig(dir string) Config {
	return Config{WALPath: filepath.Join(dir, "registry.wal"), WALSync: "always"}
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestDurableCrashRecovery is the core zero-acknowledged-write-loss
// contract: register, patch and delete patients against a WAL-backed
// server, "crash" it (abandon without Close — no final checkpoint),
// boot a fresh server on the same WAL, and verify the recovered
// registry serves every acknowledged state: survivors GET 200 with
// their last acknowledged profile and suggest byte-identically to the
// pre-crash responses; the deleted patient stays deleted.
func TestDurableCrashRecovery(t *testing.T) {
	cfg := durableConfig(t.TempDir())
	a, tsA := newDurableServer(t, cfg)
	_ = a // abandoned below: the crash keeps its WAL fd open, harmlessly

	type acked struct {
		regimen []int
		suggest []byte
	}
	want := map[string]acked{}
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("crash-%d", i)
		regimen := []int{i % 5, 5 + i%7}
		resp, body := doJSON(t, http.MethodPut, tsA.URL+"/v1/patients/"+id, PatientPutRequest{Regimen: regimen})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("PUT %s: %d %s", id, resp.StatusCode, body)
		}
		want[id] = acked{regimen: regimen}
	}
	// Patch a few: recovery must serve the patched regimen, not the
	// original PUT.
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("crash-%d", i)
		regimen := []int{9 - i%3, 12 + i%9, 3}
		resp, body := doJSON(t, http.MethodPatch, tsA.URL+"/v1/patients/"+id, map[string]any{"regimen": regimen})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("PATCH %s: %d %s", id, resp.StatusCode, body)
		}
		want[id] = acked{regimen: regimen}
	}
	// Delete one: recovery must not resurrect it.
	if resp, body := doJSON(t, http.MethodDelete, tsA.URL+"/v1/patients/crash-11", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d %s", resp.StatusCode, body)
	}
	delete(want, "crash-11")
	// Record the acknowledged suggest bytes for each survivor.
	for id, w := range want {
		resp, body := post(t, tsA.URL+"/v1/suggest", SuggestRequest{PatientID: id, K: 4})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pre-crash suggest %s: %d %s", id, resp.StatusCode, body)
		}
		w.suggest = body
		want[id] = w
	}

	tsA.Close() // crash: no s.Close(), no final checkpoint

	b, tsB := newDurableServer(t, cfg)
	defer func() { tsB.Close(); b.Close() }()
	if got := b.patients.len(); got != len(want) {
		t.Fatalf("recovered %d patients, want %d", got, len(want))
	}
	if st := b.patients.store; st.recovered != len(want) {
		t.Fatalf("store.recovered = %d, want %d", st.recovered, len(want))
	}
	for id, w := range want {
		resp, body := get(t, tsB.URL+"/v1/patients/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-crash GET %s: %d %s", id, resp.StatusCode, body)
		}
		var pr PatientResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(pr.Regimen) != fmt.Sprint(w.regimen) {
			t.Fatalf("%s recovered regimen %v, want %v", id, pr.Regimen, w.regimen)
		}
		resp, body = post(t, tsB.URL+"/v1/suggest", SuggestRequest{PatientID: id, K: 4})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-crash suggest %s: %d %s", id, resp.StatusCode, body)
		}
		if !bytes.Equal(body, w.suggest) {
			t.Fatalf("%s post-crash suggest diverged from the acknowledged bytes:\n pre: %s\npost: %s", id, w.suggest, body)
		}
	}
	if resp, _ := get(t, tsB.URL+"/v1/patients/crash-11"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted patient resurrected with status %d", resp.StatusCode)
	}
}

// TestCheckpointCompaction drives enough mutations to trip automatic
// checkpoints and verifies (a) the WAL actually shrank (compaction
// happened), (b) a post-compaction boot — which recovers from the
// checkpoint file plus a short log suffix — rebuilds a registry whose
// GETs and suggests are byte-identical to the pre-restart ones.
func TestCheckpointCompaction(t *testing.T) {
	cfg := durableConfig(t.TempDir())
	cfg.CheckpointEvery = 8
	a, tsA := newDurableServer(t, cfg)

	const n = 30
	// Feature vectors must match the dataset's width; vary one slot so
	// the checkpoint round-trip is checked against distinct bit
	// patterns per patient.
	width := len(system(t).Data().Features(0))
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ckpt-%d", i)
		features := make([]float64, width)
		features[i%width] = float64(i) * 0.25
		resp, body := doJSON(t, http.MethodPut, tsA.URL+"/v1/patients/"+id, PatientPutRequest{
			Regimen:  []int{i % 11, (i * 3) % 13},
			Features: features,
		})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("PUT %s: %d %s", id, resp.StatusCode, body)
		}
	}
	st := a.patients.store
	if st.checkpoints.Load() == 0 {
		t.Fatalf("no automatic checkpoint after %d mutations with CheckpointEvery=8", n)
	}
	if recs := st.log.Records(); recs >= n {
		t.Fatalf("WAL still holds %d records after compaction (want < %d)", recs, n)
	}
	if _, err := os.Stat(cfg.WALPath + ".ckpt"); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}
	pre := map[string][]byte{}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ckpt-%d", i)
		_, body := post(t, tsA.URL+"/v1/suggest", SuggestRequest{PatientID: id, K: 3})
		pre[id] = body
	}
	tsA.Close() // crash again: checkpoint + WAL suffix is all that survives

	b, tsB := newDurableServer(t, cfg)
	defer func() { tsB.Close(); b.Close() }()
	if got := b.patients.len(); got != n {
		t.Fatalf("recovered %d patients, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ckpt-%d", i)
		resp, body := get(t, tsB.URL+"/v1/patients/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", id, resp.StatusCode, body)
		}
		var pr PatientResponse
		json.Unmarshal(body, &pr)
		if !pr.HasFeatures {
			t.Fatalf("%s lost its feature vector through checkpoint round-trip", id)
		}
		_, sbody := post(t, tsB.URL+"/v1/suggest", SuggestRequest{PatientID: id, K: 3})
		if !bytes.Equal(sbody, pre[id]) {
			t.Fatalf("%s suggest diverged across checkpointed restart", id)
		}
	}
}

// TestGracefulCloseCheckpoints: Close must leave a final checkpoint
// and an empty (reset) WAL, so a clean restart replays nothing.
func TestGracefulCloseCheckpoints(t *testing.T) {
	cfg := durableConfig(t.TempDir())
	a, tsA := newDurableServer(t, cfg)
	for i := 0; i < 5; i++ {
		doJSON(t, http.MethodPut, fmt.Sprintf("%s/v1/patients/clean-%d", tsA.URL, i), PatientPutRequest{Regimen: []int{i}})
	}
	tsA.Close()
	a.Close()
	if _, err := os.Stat(cfg.WALPath + ".ckpt"); err != nil {
		t.Fatalf("graceful Close left no checkpoint: %v", err)
	}

	b, tsB := newDurableServer(t, cfg)
	defer func() { tsB.Close(); b.Close() }()
	st := b.patients.store
	if st.log.Replayed() != 0 {
		t.Fatalf("clean restart replayed %d WAL records, want 0 (all state in the checkpoint)", st.log.Replayed())
	}
	if got := b.patients.len(); got != 5 {
		t.Fatalf("recovered %d patients from checkpoint, want 5", got)
	}
	for i := 0; i < 5; i++ {
		if resp, _ := get(t, fmt.Sprintf("%s/v1/patients/clean-%d", tsB.URL, i)); resp.StatusCode != http.StatusOK {
			t.Fatalf("clean-%d not served after graceful restart", i)
		}
	}
}

// TestCorruptWALRefusesBoot: interior damage in the WAL must refuse
// to start the server, not silently drop registered patients.
func TestCorruptWALRefusesBoot(t *testing.T) {
	cfg := durableConfig(t.TempDir())
	_, tsA := newDurableServer(t, cfg)
	for i := 0; i < 6; i++ {
		doJSON(t, http.MethodPut, fmt.Sprintf("%s/v1/patients/c-%d", tsA.URL, i), PatientPutRequest{Regimen: []int{i}})
	}
	tsA.Close() // crash, WAL keeps all records

	raw, err := os.ReadFile(cfg.WALPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x04 // interior bit flip
	if err := os.WriteFile(cfg.WALPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = New(system(t), cfg)
	if err == nil {
		t.Fatal("New booted over a corrupt WAL")
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("error %q does not name the corruption", err)
	}

	// A torn tail, by contrast, must boot: truncate mid-record.
	fixed := append([]byte(nil), raw...)
	fixed[len(raw)/2] ^= 0x04 // undo the flip
	if err := os.WriteFile(cfg.WALPath, fixed[:len(fixed)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := New(system(t), cfg)
	if err != nil {
		t.Fatalf("New refused a torn-tail WAL: %v", err)
	}
	defer b.Close()
	if b.patients.store.log.TornBytes() == 0 {
		t.Fatal("torn tail not detected")
	}
	if got := b.patients.len(); got != 5 {
		t.Fatalf("recovered %d patients from torn WAL, want 5 (last record torn)", got)
	}
}

// TestCrashRestartHammer is the -race crash/restart proof: concurrent
// writers register and update patients against a WAL-backed server,
// the server is abandoned mid-traffic state (no Close), and a fresh
// boot on the same WAL must serve EVERY acknowledged write: each
// patient GETs 200 with its last acknowledged regimen and suggests
// inductively.
func TestCrashRestartHammer(t *testing.T) {
	cfg := durableConfig(t.TempDir())
	_, tsA := newDurableServer(t, cfg)

	const writers, iters = 8, 15
	type last struct {
		regimen []int
	}
	ackMu := sync.Mutex{}
	acked := map[string]last{}
	var wg sync.WaitGroup
	for wid := 0; wid < writers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				id := fmt.Sprintf("hammer-%d-%d", wid, it%5)
				regimen := []int{wid % 7, it % 11, (wid + it) % 13}
				resp, body := doJSON(t, http.MethodPut, tsA.URL+"/v1/patients/"+id, PatientPutRequest{Regimen: regimen})
				if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
					t.Errorf("PUT %s: %d %s", id, resp.StatusCode, body)
					return
				}
				// Acknowledged: this exact regimen must survive the
				// crash (each id is owned by one sequential writer, so
				// the last ack per id is well-defined).
				ackMu.Lock()
				acked[id] = last{regimen: regimen}
				ackMu.Unlock()
			}
		}(wid)
	}
	wg.Wait()
	tsA.Close() // SIGKILL equivalent: no drain, no checkpoint, no WAL close

	b, tsB := newDurableServer(t, cfg)
	defer func() { tsB.Close(); b.Close() }()
	if got, want := b.patients.len(), len(acked); got != want {
		t.Fatalf("recovered %d patients, want %d", got, want)
	}
	for id, w := range acked {
		resp, body := get(t, tsB.URL+"/v1/patients/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("acknowledged patient %s lost: GET %d %s", id, resp.StatusCode, body)
		}
		var pr PatientResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(pr.Regimen) != fmt.Sprint(w.regimen) {
			t.Fatalf("%s recovered regimen %v, want last acknowledged %v", id, pr.Regimen, w.regimen)
		}
		if resp, body := post(t, tsB.URL+"/v1/suggest", SuggestRequest{PatientID: id, K: 4}); resp.StatusCode != http.StatusOK {
			t.Fatalf("recovered patient %s cannot suggest: %d %s", id, resp.StatusCode, body)
		}
	}
}

// TestCloseCheckpointRace: registrations racing a graceful Close. The
// final checkpoint snapshots the registry under the durable gate while
// writers keep landing; a registration acknowledged after that
// snapshot began goes to the freshly reset WAL instead. Either way,
// every 2xx-acknowledged registration must survive the restart —
// writes refused mid-shutdown (non-2xx) may be lost, acknowledged ones
// never. Run with -race: the hammer overlaps the checkpoint's
// snapshot scan with concurrent shard mutations.
func TestCloseCheckpointRace(t *testing.T) {
	for round := 0; round < 3; round++ {
		cfg := durableConfig(t.TempDir())
		a, tsA := newDurableServer(t, cfg)

		ackMu := sync.Mutex{}
		acked := map[string][]int{}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for wid := 0; wid < 6; wid++ {
			wg.Add(1)
			go func(wid int) {
				defer wg.Done()
				for it := 0; ; it++ {
					select {
					case <-stop:
						return
					default:
					}
					id := fmt.Sprintf("race-%d-%d", wid, it)
					regimen := []int{wid % 7, it % 11}
					resp, _ := doJSON(t, http.MethodPut, tsA.URL+"/v1/patients/"+id, PatientPutRequest{Regimen: regimen})
					if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusOK {
						ackMu.Lock()
						acked[id] = regimen
						ackMu.Unlock()
					}
				}
			}(wid)
		}
		// Let the hammer build momentum, then Close concurrently with it:
		// the final checkpoint races in-flight registrations.
		for {
			ackMu.Lock()
			n := len(acked)
			ackMu.Unlock()
			if n >= 20 {
				break
			}
		}
		a.Close()
		close(stop)
		wg.Wait()
		tsA.Close()

		b, tsB := newDurableServer(t, cfg)
		for id, regimen := range acked {
			resp, body := get(t, tsB.URL+"/v1/patients/"+id)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("round %d: acked registration %s lost across Close+restart: GET %d %s", round, id, resp.StatusCode, body)
			}
			var pr PatientResponse
			if err := json.Unmarshal(body, &pr); err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(pr.Regimen) != fmt.Sprint(regimen) {
				t.Fatalf("round %d: %s recovered regimen %v, want acknowledged %v", round, id, pr.Regimen, regimen)
			}
		}
		tsB.Close()
		b.Close()
	}
}

// TestWALSyncPolicyFlagged: a bad sync policy string is a boot error,
// not a silent default.
func TestWALSyncPolicyRejected(t *testing.T) {
	cfg := durableConfig(t.TempDir())
	cfg.WALSync = "sometimes"
	if _, err := New(system(t), cfg); err == nil {
		t.Fatal("New accepted an unknown WAL sync policy")
	}
	if _, err := wal.ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted an unknown policy")
	}
}

package serve

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"dssddi"
	"dssddi/internal/alerts"
)

// servingEpoch is one generation of the serving state: an immutable
// trained system plus everything derived from it — the interaction
// checker, the micro-batching scorer and the result caches. A hot
// reload builds a complete new epoch in the background and swaps one
// atomic pointer, so every request runs start to finish against
// exactly one epoch: the batcher it scores through, the cache it reads
// and fills, and the alerts it screens with all belong to the same
// model. Nothing is shared between epochs except the patient registry,
// whose cached embeddings are tagged with the epoch they were computed
// against.
type servingEpoch struct {
	id      int64
	sys     *dssddi.System
	data    *dssddi.Data
	checker *alerts.Checker
	info    dssddi.SnapshotInfo
	// precision is the serving precision this epoch's system was
	// quantized to at build time ("f64", "f32" or "int8-experimental").
	// It is applied to the freshly loaded system before the epoch is
	// published, so a hot reload switches precision atomically with the
	// model and every response's X-Precision header is consistent with
	// its X-Epoch.
	precision string

	batcher      *batcher
	suggestCache *lruCache
	explainCache *lruCache

	// refs counts the server's own reference (1) plus every in-flight
	// request. When it reaches zero the epoch is retired and its
	// batcher's collector goroutine shut down — so a reload never
	// drops a request that is still scoring on the old model, and a
	// long-running server never accumulates idle collectors.
	refs      atomic.Int64
	closeOnce sync.Once
}

// newEpoch derives a serving epoch from a trained system, quantizing
// it to the given precision ("" means f64) before anything else is
// derived from it.
func (s *Server) newEpoch(sys *dssddi.System, precision string) (*servingEpoch, error) {
	data := sys.Data()
	if data == nil {
		return nil, fmt.Errorf("serve: system is not trained")
	}
	if err := sys.SetPrecision(precision); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	info, err := sys.SnapshotInfo()
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	emb, err := sys.DrugRelationEmbeddings()
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	names := make([]string, data.NumDrugs())
	for i := range names {
		names[i] = data.DrugName(i)
	}
	ep := &servingEpoch{
		id:        s.epochSeq.Add(1),
		sys:       sys,
		data:      data,
		checker:   alerts.NewChecker(data.Dataset().DDI, emb, names),
		info:      info,
		precision: sys.Precision(),
		batcher:   newBatcher(sys, s.cfg.MaxBatch, s.cfg.BatchWindow, data.NumDrugs()),
	}
	half := s.cfg.CacheSize / 2
	ep.suggestCache = newLRUCache(s.cfg.CacheSize-half, s.cfg.CacheShards)
	ep.explainCache = newLRUCache(half, s.cfg.CacheShards)
	ep.refs.Store(1)
	return ep, nil
}

// unref drops one reference; the last reference retires the epoch.
// Retirement is idempotent: acquireEpoch can transiently resurrect and
// re-drop a dying epoch's counter while it retries.
func (ep *servingEpoch) unref() {
	if ep.refs.Add(-1) <= 0 {
		ep.closeOnce.Do(func() { ep.batcher.Close() })
	}
}

// acquireEpoch pins the current epoch for one request. It returns nil
// only when the server is closed. The swap ordering (new pointer is
// published before the old epoch's server reference is dropped)
// guarantees the retry loop terminates: a raced acquire on a retiring
// epoch re-loads the pointer and finds its successor.
func (s *Server) acquireEpoch() *servingEpoch {
	for {
		ep := s.epoch.Load()
		if ep == nil {
			return nil
		}
		if ep.refs.Add(1) > 1 {
			return ep
		}
		// The epoch retired between Load and Add; undo and retry.
		ep.unref()
	}
}

// swap atomically replaces the serving model: it builds a complete new
// epoch from sys, re-embeds every registered patient against it, then
// publishes the epoch pointer. In-flight requests finish on the epoch
// they started with; requests arriving after the swap see only the new
// one. The old epoch's batcher shuts down once its last in-flight
// request completes. reloadMu (shared with Close) serializes swaps and
// guarantees a swap can never republish an epoch after Close retired
// the last one.
// An empty precision keeps the server's current one; a named precision
// becomes the server's precision for this and subsequent reloads.
func (s *Server) swap(sys *dssddi.System, precision string) (*servingEpoch, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if s.epoch.Load() == nil {
		return nil, fmt.Errorf("serve: server is closed")
	}
	if precision == "" {
		precision = s.precision
	}
	ep, err := s.newEpoch(sys, precision)
	if err != nil {
		return nil, err
	}
	s.precision = precision
	// Warm the registry against the new model before any request can
	// reach it, so the first post-swap suggest for a registered patient
	// does not pay the re-embed. Per-patient failures are recorded on
	// the entry, not fatal: the rest of the registry and the whole
	// index path keep serving.
	s.patients.reembedAll(ep)
	old := s.epoch.Swap(ep)
	s.reloads.Add(1)
	if old != nil {
		old.unref()
	}
	return ep, nil
}

// Swap replaces the serving model with an already-loaded system and
// returns the new epoch id. The server's current precision is applied
// to the incoming system before publication.
func (s *Server) Swap(sys *dssddi.System) (int64, error) {
	ep, err := s.swap(sys, "")
	if err != nil {
		return 0, err
	}
	return ep.id, nil
}

// ReloadSnapshot loads a snapshot stream and swaps it in.
func (s *Server) ReloadSnapshot(r io.Reader) (int64, error) {
	sys, err := dssddi.Load(r)
	if err != nil {
		return 0, err
	}
	return s.Swap(sys)
}

func (s *Server) reloadFromPath(path, precision string) (*servingEpoch, error) {
	if path == "" {
		path = s.cfg.SnapshotPath
	}
	if path == "" {
		return nil, fmt.Errorf("serve: no snapshot path configured (set Config.SnapshotPath or pass one)")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sys, err := dssddi.Load(f)
	if err != nil {
		return nil, err
	}
	return s.swap(sys, precision)
}

// ReloadFromPath loads a snapshot file and swaps it in — the body of
// the /v1/admin/reload endpoint and the SIGHUP / -watch wiring in
// cmd/dssddi-serve. The server's current precision carries over.
func (s *Server) ReloadFromPath(path string) (int64, error) {
	ep, err := s.reloadFromPath(path, "")
	if err != nil {
		return 0, err
	}
	return ep.id, nil
}

// Epoch reports the current serving epoch id.
func (s *Server) Epoch() int64 {
	if ep := s.epoch.Load(); ep != nil {
		return ep.id
	}
	return 0
}

package serve

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// limiter is per-endpoint admission control: at most maxInflight
// requests execute concurrently, at most maxQueue more wait for a
// slot, and everything beyond that is shed immediately with a 503 —
// under overload the server degrades into fast, explicit rejections
// instead of an unbounded queue whose tail latency (and memory)
// grows without limit. Admitted requests keep a bounded p99: the
// queue in front of them is never deeper than maxQueue.
type limiter struct {
	inflight chan struct{} // buffered to maxInflight; a token is one executing request
	queue    chan struct{} // buffered to maxQueue; a token is one waiting request
	sheds    atomic.Int64
}

// newLimiter returns nil (no limiting) when maxInflight <= 0.
func newLimiter(maxInflight, maxQueue int) *limiter {
	if maxInflight <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &limiter{
		inflight: make(chan struct{}, maxInflight),
		queue:    make(chan struct{}, maxQueue),
	}
}

// acquire admits, queues or sheds one request. It returns (release,
// 0) on admission — the caller must invoke release exactly once — or
// (nil, status) where status is 503 (shed: inflight and queue both
// full) or 504 (the request's deadline expired while queued). Safe on
// a nil limiter: always admits.
func (l *limiter) acquire(ctx context.Context) (release func(), status int) {
	if l == nil {
		return func() {}, 0
	}
	select {
	case l.inflight <- struct{}{}:
		return l.release, 0
	default:
	}
	select {
	case l.queue <- struct{}{}:
	default:
		l.sheds.Add(1)
		return nil, http.StatusServiceUnavailable
	}
	defer func() { <-l.queue }()
	select {
	case l.inflight <- struct{}{}:
		return l.release, 0
	case <-ctx.Done():
		return nil, http.StatusGatewayTimeout
	}
}

func (l *limiter) release() { <-l.inflight }

func (l *limiter) shedCount() int64 {
	if l == nil {
		return 0
	}
	return l.sheds.Load()
}

// writeShed answers a shed request: an immediate 503 with a
// Retry-After hint, so well-behaved clients (and the router's retry
// loop) back off instead of hammering an overloaded backend.
func writeShed(w http.ResponseWriter) int {
	w.Header().Set("Retry-After", "1")
	return writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server overloaded; retry later"})
}

// deadlineHeader is the propagated request budget: the router stamps
// the milliseconds it is still willing to wait, and the backend
// derives a context from it so batch waits and scoring are abandoned
// the moment the upstream has already given up.
const deadlineHeader = "X-Deadline-Ms"

// requestContext derives the request's context from the propagated
// deadline header. expired=true means the budget was already spent
// when the request arrived (or a non-positive value was sent) — the
// only useful answer is an immediate 504. A missing or malformed
// header leaves the context untouched.
func requestContext(r *http.Request) (ctx context.Context, cancel context.CancelFunc, expired bool) {
	h := r.Header.Get(deadlineHeader)
	if h == "" {
		return r.Context(), nil, false
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil {
		return r.Context(), nil, false
	}
	if ms <= 0 {
		return nil, nil, true
	}
	ctx, cancel = context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
	return ctx, cancel, false
}

// writeDeadlineExceeded answers a request whose propagated budget ran
// out before the work completed.
func (s *Server) writeDeadlineExceeded(w http.ResponseWriter) int {
	s.deadlineTimeouts.Add(1)
	return writeJSON(w, http.StatusGatewayTimeout, apiError{Error: "deadline exceeded before the request completed"})
}

// isDeadlineErr reports whether err is a context expiry (deadline or
// cancellation) rather than a scoring failure.
func isDeadlineErr(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

// The limiter's contract, unit-level: maxInflight tokens execute,
// maxQueue more wait, the rest shed instantly.
func TestLimiterAdmitQueueShed(t *testing.T) {
	l := newLimiter(2, 1)
	bg := context.Background()

	rel1, st := l.acquire(bg)
	if st != 0 || rel1 == nil {
		t.Fatalf("first acquire: status %d", st)
	}
	rel2, st := l.acquire(bg)
	if st != 0 {
		t.Fatalf("second acquire: status %d", st)
	}

	// Inflight full: the next caller queues; verify by acquiring from a
	// goroutine and seeing it complete only after a release.
	admitted := make(chan struct{})
	go func() {
		rel3, st := l.acquire(bg)
		if st != 0 {
			t.Errorf("queued acquire: status %d", st)
		} else {
			defer rel3()
		}
		close(admitted)
	}()
	// Give the goroutine time to take the queue slot, then overflow it.
	deadline := time.Now().Add(time.Second)
	for len(l.queue) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, st := l.acquire(bg); st != http.StatusServiceUnavailable {
		t.Fatalf("overflow acquire: status %d, want 503", st)
	}
	if l.shedCount() != 1 {
		t.Fatalf("sheds = %d, want 1", l.shedCount())
	}
	select {
	case <-admitted:
		t.Fatal("queued acquire admitted while inflight was full")
	case <-time.After(20 * time.Millisecond):
	}
	rel1()
	select {
	case <-admitted:
	case <-time.After(time.Second):
		t.Fatal("queued acquire never admitted after a release")
	}
	rel2()
}

// A queued request whose deadline expires leaves the queue with 504.
func TestLimiterQueueDeadline(t *testing.T) {
	l := newLimiter(1, 4)
	rel, st := l.acquire(context.Background())
	if st != 0 {
		t.Fatalf("acquire: status %d", st)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, st := l.acquire(ctx); st != http.StatusGatewayTimeout {
		t.Fatalf("expired queued acquire: status %d, want 504", st)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("expired acquire did not leave the queue promptly")
	}
	if len(l.queue) != 0 {
		t.Fatal("expired waiter leaked its queue slot")
	}
}

// nil limiter = unlimited.
func TestLimiterNilAdmitsEverything(t *testing.T) {
	var l *limiter
	rel, st := l.acquire(context.Background())
	if st != 0 {
		t.Fatalf("nil limiter status %d", st)
	}
	rel()
	if l.shedCount() != 0 {
		t.Fatal("nil limiter counted sheds")
	}
}

// End-to-end overload: with inflight 1 / queue 1 and a batch window
// that parks the admitted request, a third concurrent request is shed
// FAST (503 + Retry-After) while the admitted ones complete normally
// — sustained overload degrades into explicit rejections with bounded
// latency for admitted work, not an unbounded queue.
func TestOverloadShedsFastWithRetryAfter(t *testing.T) {
	sys := system(t)
	_, ts := newTestServer(t, Config{MaxInflight: 1, MaxQueue: 1, BatchWindow: 250 * time.Millisecond})
	p := sys.Data().TestPatients()[0]

	type result struct {
		status     int
		retryAfter string
		elapsed    time.Duration
	}
	req := func() result {
		t0 := time.Now()
		resp, _ := post(t, ts.URL+"/v1/suggest", SuggestRequest{Patient: p, K: 3})
		return result{resp.StatusCode, resp.Header.Get("Retry-After"), time.Since(t0)}
	}

	var wg sync.WaitGroup
	var first, second result
	wg.Add(2)
	go func() { defer wg.Done(); first = req() }()
	time.Sleep(60 * time.Millisecond) // let it occupy the inflight slot + batch window
	go func() { defer wg.Done(); second = req() }()
	time.Sleep(60 * time.Millisecond) // let it take the queue slot

	shed := req() // inflight busy, queue full -> immediate 503
	if shed.status != http.StatusServiceUnavailable {
		t.Fatalf("overflow request: status %d, want 503", shed.status)
	}
	if shed.retryAfter == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if shed.elapsed > 150*time.Millisecond {
		t.Fatalf("shed took %v; must fast-fail while the admitted request still waits", shed.elapsed)
	}
	wg.Wait()
	if first.status != http.StatusOK || second.status != http.StatusOK {
		t.Fatalf("admitted requests: %d, %d, want 200, 200", first.status, second.status)
	}

	// The shed is visible in /metricsz: per-endpoint and total.
	_, body := get(t, ts.URL+"/metricsz")
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Sheds < 1 || m.Endpoints["suggest"].Sheds < 1 {
		t.Fatalf("sheds not counted: total=%d suggest=%d", m.Sheds, m.Endpoints["suggest"].Sheds)
	}
}

// Deadline propagation: an already-expired X-Deadline-Ms is answered
// 504 immediately; a short deadline aborts the batch wait early
// instead of sitting out the full window.
func TestDeadlinePropagation(t *testing.T) {
	sys := system(t)
	_, ts := newTestServer(t, Config{BatchWindow: 400 * time.Millisecond})
	p := sys.Data().TestPatients()[0]

	send := func(deadlineMs string) (*http.Response, time.Duration) {
		body, _ := json.Marshal(SuggestRequest{Patient: p, K: 3})
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/suggest", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(deadlineHeader, deadlineMs)
		req.Header.Set("Cache-Control", "no-cache")
		t0 := time.Now()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp, time.Since(t0)
	}

	resp, elapsed := send("0")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: status %d, want 504", resp.StatusCode)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("dead-on-arrival request took %v", elapsed)
	}

	// 40ms budget vs 400ms batch window: the batch wait must be
	// abandoned when the deadline fires, well before the window ends.
	resp, elapsed = send("40")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("short deadline: status %d, want 504", resp.StatusCode)
	}
	if elapsed > 300*time.Millisecond {
		t.Fatalf("short-deadline request took %v; batch wait was not aborted", elapsed)
	}

	// A roomy deadline serves normally.
	resp, _ = send("5000")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("roomy deadline: status %d, want 200", resp.StatusCode)
	}

	_, body := get(t, ts.URL+"/metricsz")
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.DeadlineTimeouts < 2 {
		t.Fatalf("deadline_timeouts = %d, want >= 2", m.DeadlineTimeouts)
	}
}

package serve

import (
	"sync/atomic"
	"time"

	"dssddi/internal/obs"
)

// endpointStats tracks one endpoint: monotonic request/error counters
// plus a fixed-bucket latency histogram for p50/p90/p99. The
// histogram replaced a 2048-sample mutex-guarded ring: recording is
// now two atomic adds (no lock the scraper can contend on), a
// /metricsz scrape reads bucket counters instead of copying and
// sorting the window, and the same buckets render directly as a
// Prometheus histogram that merges exactly across backends.
type endpointStats struct {
	requests atomic.Int64
	errors   atomic.Int64
	lat      obs.Histogram
}

func (s *endpointStats) observe(d time.Duration, isError bool) {
	s.requests.Add(1)
	if isError {
		s.errors.Add(1)
	}
	s.lat.Observe(d)
}

// EndpointMetrics is the JSON shape of one endpoint's counters.
type EndpointMetrics struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// Sheds counts requests fast-failed 503 by admission control
	// (inflight and wait-queue limits both full).
	Sheds int64   `json:"sheds,omitempty"`
	AvgMs float64 `json:"avg_ms"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// CacheMetrics is the JSON shape of the result-cache counters.
type CacheMetrics struct {
	Enabled bool    `json:"enabled"`
	Entries int     `json:"entries"`
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// BatchMetrics is the JSON shape of the micro-batching counters.
type BatchMetrics struct {
	Batches      int64   `json:"batches"`
	Requests     int64   `json:"requests"`
	AvgBatchSize float64 `json:"avg_batch_size"`
}

// RegistryMetrics is the JSON shape of the patient-registry counters.
type RegistryMetrics struct {
	Patients int   `json:"patients"`
	Writes   int64 `json:"writes"`
	Reembeds int64 `json:"reembeds"`
	// ReplicaApplies counts records installed through the replication
	// apply endpoint; ReplicaStale counts apply attempts refused
	// because the local record already carried an equal-or-newer
	// version (last-writer-wins kept the local copy).
	ReplicaApplies int64 `json:"replica_applies"`
	ReplicaStale   int64 `json:"replica_stale"`
}

// WALMetrics is the JSON shape of the durable-registry counters,
// present only when the server runs with -registry-wal.
type WALMetrics struct {
	Path       string `json:"path"`
	SyncPolicy string `json:"sync_policy"`
	// Records / Bytes describe the live (un-compacted) log.
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
	Syncs   int64 `json:"syncs"`
	// Replayed / RecoveredPatients / TornBytes describe boot recovery.
	Replayed          int64 `json:"replayed"`
	RecoveredPatients int   `json:"recovered_patients"`
	TornBytes         int64 `json:"torn_bytes_truncated"`
	// Checkpoints counts log compactions; PendingRecords is the
	// mutations logged since the last one.
	Checkpoints        int64 `json:"checkpoints"`
	CheckpointFailures int64 `json:"checkpoint_failures,omitempty"`
	PendingRecords     int64 `json:"pending_records"`
}

// MemoryMetrics is the explicit resident-byte accounting of the
// serving representation: the frozen model blobs (drug representations,
// treatment rows, fused decoder) plus the registry's cached patient
// embeddings, at the epoch's precision. Measured from the structures
// themselves — bytes per element times elements — not from
// runtime.MemStats, so the f64/f32/int8 figures compare exactly.
type MemoryMetrics struct {
	Precision              string `json:"precision"`
	ModelBytes             int64  `json:"model_bytes"`
	RegistryEmbeddingBytes int64  `json:"registry_embedding_bytes"`
}

// Metrics is the full /metricsz payload. Cache and batching counters
// belong to the current epoch (a hot reload starts them fresh);
// endpoint and registry counters span the server's lifetime.
type Metrics struct {
	UptimeSeconds float64                    `json:"uptime_seconds"`
	Epoch         int64                      `json:"epoch"`
	Reloads       int64                      `json:"reloads"`
	Memory        MemoryMetrics              `json:"memory"`
	Endpoints     map[string]EndpointMetrics `json:"endpoints"`
	SuggestCache  CacheMetrics               `json:"suggest_cache"`
	ExplainCache  CacheMetrics               `json:"explain_cache"`
	Batching      BatchMetrics               `json:"batching"`
	Registry      RegistryMetrics            `json:"registry"`
	// Sheds totals admission-control rejections across endpoints;
	// DeadlineTimeouts counts requests answered 504 because their
	// propagated X-Deadline-Ms budget expired.
	Sheds            int64       `json:"sheds"`
	DeadlineTimeouts int64       `json:"deadline_timeouts"`
	WAL              *WALMetrics `json:"wal,omitempty"`
}

// registry maps endpoint names to their stats. Endpoints are
// registered up front, so lookups are lock-free reads of a fixed map.
type registry struct {
	endpoints map[string]*endpointStats
}

func newRegistry(names ...string) *registry {
	r := &registry{endpoints: make(map[string]*endpointStats, len(names))}
	for _, n := range names {
		r.endpoints[n] = &endpointStats{}
	}
	return r
}

func (r *registry) get(name string) *endpointStats { return r.endpoints[name] }

func (r *registry) snapshot() map[string]EndpointMetrics {
	out := make(map[string]EndpointMetrics, len(r.endpoints))
	for name, s := range r.endpoints {
		lat := s.lat.Snapshot()
		m := EndpointMetrics{
			Requests: s.requests.Load(),
			Errors:   s.errors.Load(),
			AvgMs:    lat.MeanMs(),
			P50Ms:    lat.QuantileMs(0.50),
			P90Ms:    lat.QuantileMs(0.90),
			P99Ms:    lat.QuantileMs(0.99),
		}
		out[name] = m
	}
	return out
}

func cacheMetrics(c *lruCache) CacheMetrics {
	hits, misses := c.Stats()
	m := CacheMetrics{Enabled: c != nil, Entries: c.Len(), Hits: hits, Misses: misses}
	if total := hits + misses; total > 0 {
		m.HitRate = float64(hits) / float64(total)
	}
	return m
}

package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyWindow is how many recent samples each endpoint keeps for
// quantile estimates. A power of two keeps the ring index cheap.
const latencyWindow = 2048

// endpointStats tracks one endpoint: monotonic request/error counters
// plus a ring of recent latencies for p50/p90/p99.
type endpointStats struct {
	requests atomic.Int64
	errors   atomic.Int64
	totalNs  atomic.Int64

	mu      sync.Mutex
	ring    [latencyWindow]int64
	ringLen int
	ringPos int
}

func (s *endpointStats) observe(d time.Duration, isError bool) {
	s.requests.Add(1)
	if isError {
		s.errors.Add(1)
	}
	ns := d.Nanoseconds()
	s.totalNs.Add(ns)
	s.mu.Lock()
	s.ring[s.ringPos] = ns
	s.ringPos = (s.ringPos + 1) % latencyWindow
	if s.ringLen < latencyWindow {
		s.ringLen++
	}
	s.mu.Unlock()
}

// quantiles returns p50/p90/p99 over the retained window, in
// milliseconds.
func (s *endpointStats) quantiles() (p50, p90, p99 float64) {
	s.mu.Lock()
	n := s.ringLen
	samples := make([]int64, n)
	copy(samples, s.ring[:n])
	s.mu.Unlock()
	if n == 0 {
		return 0, 0, 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	at := func(q float64) float64 {
		idx := int(q * float64(n-1))
		return float64(samples[idx]) / 1e6
	}
	return at(0.50), at(0.90), at(0.99)
}

// EndpointMetrics is the JSON shape of one endpoint's counters.
type EndpointMetrics struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// Sheds counts requests fast-failed 503 by admission control
	// (inflight and wait-queue limits both full).
	Sheds int64   `json:"sheds,omitempty"`
	AvgMs float64 `json:"avg_ms"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// CacheMetrics is the JSON shape of the result-cache counters.
type CacheMetrics struct {
	Enabled bool    `json:"enabled"`
	Entries int     `json:"entries"`
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// BatchMetrics is the JSON shape of the micro-batching counters.
type BatchMetrics struct {
	Batches      int64   `json:"batches"`
	Requests     int64   `json:"requests"`
	AvgBatchSize float64 `json:"avg_batch_size"`
}

// RegistryMetrics is the JSON shape of the patient-registry counters.
type RegistryMetrics struct {
	Patients int   `json:"patients"`
	Writes   int64 `json:"writes"`
	Reembeds int64 `json:"reembeds"`
}

// WALMetrics is the JSON shape of the durable-registry counters,
// present only when the server runs with -registry-wal.
type WALMetrics struct {
	Path       string `json:"path"`
	SyncPolicy string `json:"sync_policy"`
	// Records / Bytes describe the live (un-compacted) log.
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
	Syncs   int64 `json:"syncs"`
	// Replayed / RecoveredPatients / TornBytes describe boot recovery.
	Replayed          int64 `json:"replayed"`
	RecoveredPatients int   `json:"recovered_patients"`
	TornBytes         int64 `json:"torn_bytes_truncated"`
	// Checkpoints counts log compactions; PendingRecords is the
	// mutations logged since the last one.
	Checkpoints        int64 `json:"checkpoints"`
	CheckpointFailures int64 `json:"checkpoint_failures,omitempty"`
	PendingRecords     int64 `json:"pending_records"`
}

// Metrics is the full /metricsz payload. Cache and batching counters
// belong to the current epoch (a hot reload starts them fresh);
// endpoint and registry counters span the server's lifetime.
type Metrics struct {
	UptimeSeconds float64                    `json:"uptime_seconds"`
	Epoch         int64                      `json:"epoch"`
	Reloads       int64                      `json:"reloads"`
	Endpoints     map[string]EndpointMetrics `json:"endpoints"`
	SuggestCache  CacheMetrics               `json:"suggest_cache"`
	ExplainCache  CacheMetrics               `json:"explain_cache"`
	Batching      BatchMetrics               `json:"batching"`
	Registry      RegistryMetrics            `json:"registry"`
	// Sheds totals admission-control rejections across endpoints;
	// DeadlineTimeouts counts requests answered 504 because their
	// propagated X-Deadline-Ms budget expired.
	Sheds            int64       `json:"sheds"`
	DeadlineTimeouts int64       `json:"deadline_timeouts"`
	WAL              *WALMetrics `json:"wal,omitempty"`
}

// registry maps endpoint names to their stats. Endpoints are
// registered up front, so lookups are lock-free reads of a fixed map.
type registry struct {
	endpoints map[string]*endpointStats
}

func newRegistry(names ...string) *registry {
	r := &registry{endpoints: make(map[string]*endpointStats, len(names))}
	for _, n := range names {
		r.endpoints[n] = &endpointStats{}
	}
	return r
}

func (r *registry) get(name string) *endpointStats { return r.endpoints[name] }

func (r *registry) snapshot() map[string]EndpointMetrics {
	out := make(map[string]EndpointMetrics, len(r.endpoints))
	for name, s := range r.endpoints {
		reqs := s.requests.Load()
		m := EndpointMetrics{Requests: reqs, Errors: s.errors.Load()}
		if reqs > 0 {
			m.AvgMs = float64(s.totalNs.Load()) / float64(reqs) / 1e6
		}
		m.P50Ms, m.P90Ms, m.P99Ms = s.quantiles()
		out[name] = m
	}
	return out
}

func cacheMetrics(c *lruCache) CacheMetrics {
	hits, misses := c.Stats()
	m := CacheMetrics{Enabled: c != nil, Entries: c.Len(), Hits: hits, Misses: misses}
	if total := hits + misses; total > 0 {
		m.HitRate = float64(hits) / float64(total)
	}
	return m
}

package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"dssddi/internal/obs"
)

// TestRequestIDEchoAndMint: every response carries X-Request-Id — the
// client's own id echoed back verbatim when one was sent, a freshly
// minted valid id otherwise.
func TestRequestIDEchoAndMint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Minted: no id on the request.
	resp, _ := post(t, ts.URL+"/v1/suggest", SuggestRequest{Patient: 0, K: 2})
	minted := resp.Header.Get(obs.RequestIDHeader)
	if minted == "" {
		t.Fatal("response missing a minted X-Request-Id")
	}

	// Echoed: the client's id comes back exactly.
	body, _ := json.Marshal(SuggestRequest{Patient: 1, K: 2})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/suggest", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, "client-id-42")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if got := r2.Header.Get(obs.RequestIDHeader); got != "client-id-42" {
		t.Fatalf("client id not echoed: got %q", got)
	}

	// A garbage id (spaces, too long) is replaced, not echoed.
	req2, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set(obs.RequestIDHeader, "has spaces in it")
	r3, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if got := r3.Header.Get(obs.RequestIDHeader); got == "has spaces in it" || got == "" {
		t.Fatalf("invalid client id should be replaced with a minted one, got %q", got)
	}
}

// TestTracezSpansExplainLatency: with full sampling, a scored (cache
// bypassing) request's trace carries the full stage timeline — queue,
// batch, score, encode — and the stages sum to no more than the
// measured request latency.
func TestTracezSpansExplainLatency(t *testing.T) {
	s, ts := newTestServer(t, Config{TraceSample: 1})

	rid := obs.NewRequestID()
	body, _ := json.Marshal(SuggestRequest{Patient: 2, K: 3})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/suggest", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Cache-Control", "no-cache")
	req.Header.Set(obs.RequestIDHeader, rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	views := s.Tracer().Find(rid)
	if len(views) == 0 {
		t.Fatalf("no retained trace for %s", rid)
	}
	v := views[0]
	if v.DurMs <= 0 || v.Status != http.StatusOK || v.Epoch != 1 {
		t.Fatalf("trace header wrong: dur=%v status=%d epoch=%d", v.DurMs, v.Status, v.Epoch)
	}
	have := make(map[string]bool, len(v.Spans))
	var sumMs float64
	for _, sp := range v.Spans {
		have[sp.Name] = true
		sumMs += sp.DurMs
		if sp.DurMs < 0 || sp.StartMs < 0 {
			t.Fatalf("span %s has negative timing: %+v", sp.Name, sp)
		}
	}
	for _, want := range []string{"queue", "batch", "score", "encode"} {
		if !have[want] {
			t.Fatalf("span %q missing from scored request trace (have %v)", want, v.Spans)
		}
	}
	// Stages are sequential; allow a little scheduling slack.
	if sumMs > v.DurMs+1.0 {
		t.Fatalf("spans sum to %.3fms but the request took %.3fms", sumMs, v.DurMs)
	}

	// The tracez handler serves the same trace by id, in both formats.
	r2, body2 := get(t, ts.URL+"/debug/tracez?format=json&id="+rid)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("tracez status %d", r2.StatusCode)
	}
	var page obs.TracezPage
	if err := json.Unmarshal(body2, &page); err != nil {
		t.Fatalf("tracez JSON: %v", err)
	}
	if len(page.Recent) == 0 || page.Recent[0].ID != rid {
		t.Fatalf("tracez?id=%s did not return the trace", rid)
	}
	r3, body3 := get(t, ts.URL+"/debug/tracez?id="+rid)
	if r3.StatusCode != http.StatusOK || !bytes.Contains(body3, []byte(rid)) {
		t.Fatalf("text tracez missing the trace: status %d", r3.StatusCode)
	}
}

// TestServePromExposition: the Prometheus view of /metricsz parses
// strictly, its histograms are internally consistent, the core
// families are present, and the default JSON shape is still served
// (and still carries the same request counts).
func TestServePromExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 5; i++ {
		resp, _ := post(t, ts.URL+"/v1/suggest", SuggestRequest{Patient: i, K: 2})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("suggest %d: status %d", i, resp.StatusCode)
		}
	}

	resp, body := get(t, ts.URL+"/metricsz?format=prometheus")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prometheus metricsz status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("content-type %q, want %q", ct, obs.PromContentType)
	}
	set, err := obs.ParseProm(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition failed to parse: %v\n%s", err, body)
	}
	if _, err := set.CheckHistograms(); err != nil {
		t.Fatalf("inconsistent histograms: %v", err)
	}
	for _, fam := range []string{
		"dssddi_build_info", "dssddi_requests_total",
		"dssddi_request_duration_seconds", "dssddi_epoch",
		"dssddi_cache_hits_total", "dssddi_score_batches_total",
	} {
		if _, ok := set.Types[fam]; !ok {
			t.Fatalf("metric family %q missing from exposition", fam)
		}
	}
	count, ok := set.Value("dssddi_requests_total", map[string]string{"endpoint": "suggest"})
	if !ok || count < 5 {
		t.Fatalf("dssddi_requests_total{endpoint=suggest} = %v (present=%v), want >= 5", count, ok)
	}

	// The JSON default is untouched: same URL without the format
	// parameter still returns the structured metrics document.
	respJSON, bodyJSON := get(t, ts.URL+"/metricsz")
	if respJSON.StatusCode != http.StatusOK {
		t.Fatalf("json metricsz status %d", respJSON.StatusCode)
	}
	var m Metrics
	if err := json.Unmarshal(bodyJSON, &m); err != nil {
		t.Fatalf("json metricsz no longer parses: %v", err)
	}
	suggestReqs := m.Endpoints["suggest"].Requests
	if float64(suggestReqs) != count {
		t.Fatalf("JSON reports %d suggest requests, Prometheus %v — same counters must back both", suggestReqs, count)
	}

	// Health carries the build identity.
	respH, bodyH := get(t, ts.URL+"/healthz")
	if respH.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", respH.StatusCode)
	}
	var h struct {
		Build struct {
			GoVersion string `json:"go_version"`
		} `json:"build"`
	}
	if err := json.Unmarshal(bodyH, &h); err != nil {
		t.Fatal(err)
	}
	if h.Build.GoVersion == "" {
		t.Fatalf("healthz missing build info: %s", bodyH)
	}
}

package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"dssddi"
)

// snapshotPath saves the shared test system to a temp file so servers
// and reference systems can load fresh, independent copies of it.
func snapshotPath(t *testing.T) string {
	t.Helper()
	sys := system(t)
	path := filepath.Join(t.TempDir(), "model.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func loadSnapshot(t *testing.T, path string) *dssddi.System {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sys, err := dssddi.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestPrecisionBootAndMemory boots the same snapshot at f64 and f32,
// and checks the precision surfaces end to end: the X-Precision
// response header, /healthz, and /metricsz explicit byte accounting —
// where the f64 model and registry embeddings must cost exactly twice
// their f32 counterparts — plus scores that track the f64 oracle.
func TestPrecisionBootAndMemory(t *testing.T) {
	path := snapshotPath(t)

	newServer := func(precision string) (*Server, *httptest.Server) {
		s, err := New(loadSnapshot(t, path), Config{SnapshotPath: path, Precision: precision})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() { ts.Close(); s.Close() })
		return s, ts
	}
	_, ts64 := newServer("")
	_, ts32 := newServer("f32")

	// Same registered patient on both, so registry bytes compare.
	for _, ts := range []*httptest.Server{ts64, ts32} {
		if resp, body := do(t, http.MethodPut, ts.URL+"/v1/patients/carol", PatientPutRequest{Regimen: []int{1, 3, 5}}); resp.StatusCode != http.StatusCreated {
			t.Fatalf("register: %d %s", resp.StatusCode, body)
		}
	}

	suggest := func(ts *httptest.Server) (*http.Response, SuggestResponse) {
		resp, body := post(t, ts.URL+"/v1/suggest", SuggestRequest{PatientID: "carol", K: 4})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("suggest: %d %s", resp.StatusCode, body)
		}
		var out SuggestResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		return resp, out
	}
	r64, got64 := suggest(ts64)
	r32, got32 := suggest(ts32)
	if p := r64.Header.Get("X-Precision"); p != "f64" {
		t.Fatalf("f64 server X-Precision %q", p)
	}
	if p := r32.Header.Get("X-Precision"); p != "f32" {
		t.Fatalf("f32 server X-Precision %q", p)
	}
	// The f32 scores track the f64 oracle: identical ranking on this
	// fixture and scores within a tolerance far looser than the
	// measured worst-case divergence.
	if len(got32.Suggestions) != len(got64.Suggestions) {
		t.Fatalf("suggestion count diverged: %d vs %d", len(got32.Suggestions), len(got64.Suggestions))
	}
	for i, s64 := range got64.Suggestions {
		s32 := got32.Suggestions[i]
		if s32.DrugID != s64.DrugID {
			t.Fatalf("rank %d drug diverged: f32 %d vs f64 %d", i, s32.DrugID, s64.DrugID)
		}
		if d := math.Abs(s32.Score - s64.Score); d > 1e-4 {
			t.Fatalf("rank %d score diverged by %g", i, d)
		}
	}

	metricsOf := func(ts *httptest.Server) Metrics {
		_, body := get(t, ts.URL+"/metricsz")
		var m Metrics
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	m64, m32 := metricsOf(ts64), metricsOf(ts32)
	if m64.Memory.Precision != "f64" || m32.Memory.Precision != "f32" {
		t.Fatalf("memory precision: %q / %q", m64.Memory.Precision, m32.Memory.Precision)
	}
	if m32.Memory.ModelBytes <= 0 || m64.Memory.ModelBytes != 2*m32.Memory.ModelBytes {
		t.Fatalf("model bytes f64 %d vs f32 %d, want exactly 2x", m64.Memory.ModelBytes, m32.Memory.ModelBytes)
	}
	if m32.Memory.RegistryEmbeddingBytes <= 0 || m64.Memory.RegistryEmbeddingBytes != 2*m32.Memory.RegistryEmbeddingBytes {
		t.Fatalf("registry bytes f64 %d vs f32 %d, want exactly 2x", m64.Memory.RegistryEmbeddingBytes, m32.Memory.RegistryEmbeddingBytes)
	}

	var health HealthResponse
	if _, body := get(t, ts32.URL+"/healthz"); true {
		if err := json.Unmarshal(body, &health); err != nil {
			t.Fatal(err)
		}
	}
	if health.Precision != "f32" {
		t.Fatalf("healthz precision %q, want f32", health.Precision)
	}

	// Hot reload flips the f32 server to int8: header follows, model
	// shrinks below the f32 footprint, and the patient still serves.
	resp, body := post(t, ts32.URL+"/v1/admin/reload", ReloadRequest{Precision: "int8-experimental"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("int8 reload: %d %s", resp.StatusCode, body)
	}
	var rr ReloadResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Precision != "int8-experimental" {
		t.Fatalf("reload precision %q", rr.Precision)
	}
	r8, got8 := suggest(ts32)
	if p := r8.Header.Get("X-Precision"); p != "int8-experimental" {
		t.Fatalf("int8 X-Precision %q", p)
	}
	if len(got8.Suggestions) != len(got64.Suggestions) {
		t.Fatalf("int8 suggestion count %d", len(got8.Suggestions))
	}
	m8 := metricsOf(ts32)
	if m8.Memory.ModelBytes <= 0 || m8.Memory.ModelBytes >= m32.Memory.ModelBytes {
		t.Fatalf("int8 model bytes %d not below f32's %d", m8.Memory.ModelBytes, m32.Memory.ModelBytes)
	}

	// Invalid precisions fail loudly: at boot and over the reload API.
	if _, err := New(loadSnapshot(t, path), Config{Precision: "f16"}); err == nil {
		t.Fatal("New accepted precision f16")
	}
	resp, _ = post(t, ts64.URL+"/v1/admin/reload", ReloadRequest{Precision: "bf16"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad precision reload: %d, want 400", resp.StatusCode)
	}
}

// TestPrecisionSwapHammer is satellite coverage for quantized hot
// reloads (run with -race): concurrent index and registry suggests
// while the snapshot is reloaded back and forth between f32 and f64.
// Every response must carry an X-Precision consistent with the
// precision its X-Epoch was published at, and a body bitwise equal to
// what a reference system quantized to that precision produces — so a
// request can never observe a half-switched model.
func TestPrecisionSwapHammer(t *testing.T) {
	path := snapshotPath(t)
	s, err := New(loadSnapshot(t, path), Config{SnapshotPath: path})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	regimen := []int{0, 2, 5}
	const regPatients = 3
	for i := 0; i < regPatients; i++ {
		id := fmt.Sprintf("prec-%d", i)
		if resp, body := do(t, http.MethodPut, ts.URL+"/v1/patients/"+id, PatientPutRequest{Regimen: regimen}); resp.StatusCode != http.StatusCreated {
			t.Fatalf("register %s: %d %s", id, resp.StatusCode, body)
		}
	}

	// Reference systems: fresh loads of the same snapshot, one per
	// precision. Quantization is deterministic, so the server's
	// reloaded copies must score bitwise identically to these.
	const k = 4
	refs := map[string]*dssddi.System{"f64": loadSnapshot(t, path), "f32": loadSnapshot(t, path)}
	if err := refs["f32"].SetPrecision("f32"); err != nil {
		t.Fatal(err)
	}
	indexPatients := refs["f64"].Data().TestPatients()[:4]
	wantIndex := map[string]map[int][]dssddi.Suggestion{}
	wantReg := map[string][]dssddi.Suggestion{}
	for prec, ref := range refs {
		wantIndex[prec] = make(map[int][]dssddi.Suggestion, len(indexPatients))
		for _, p := range indexPatients {
			sg, err := ref.Suggest(p, k)
			if err != nil {
				t.Fatal(err)
			}
			wantIndex[prec][p] = sg
		}
		sg, err := ref.SuggestFor(dssddi.PatientProfile{Regimen: regimen}, k)
		if err != nil {
			t.Fatal(err)
		}
		wantReg[prec] = sg
	}

	// epochPrec maps each epoch id to the precision it was published
	// at. Epoch ids are sequential and the only reloader is this test,
	// so the mapping is stored before the epoch can go live.
	var epochPrec sync.Map
	epochPrec.Store(int64(1), "f64")
	precOf := func(epochHeader string) (string, error) {
		id, err := strconv.ParseInt(epochHeader, 10, 64)
		if err != nil {
			return "", fmt.Errorf("bad X-Epoch %q: %v", epochHeader, err)
		}
		v, ok := epochPrec.Load(id)
		if !ok {
			return "", fmt.Errorf("response on unknown epoch %d", id)
		}
		return v.(string), nil
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	check := func(resp *http.Response, body []byte, want func(prec string) []dssddi.Suggestion, label string) error {
		if resp == nil || resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: dropped/failed request: %v %s", label, resp, body)
		}
		prec, err := precOf(resp.Header.Get("X-Epoch"))
		if err != nil {
			return err
		}
		if got := resp.Header.Get("X-Precision"); got != prec {
			return fmt.Errorf("%s: X-Precision %q on epoch %s published at %q", label, got, resp.Header.Get("X-Epoch"), prec)
		}
		var got SuggestResponse
		if err := json.Unmarshal(body, &got); err != nil {
			return err
		}
		if !sameSuggestions(got.Suggestions, want(prec)) {
			return fmt.Errorf("%s: response not bitwise consistent with its epoch's %s model: %s", label, prec, body)
		}
		return nil
	}

	// Index readers: scores must match the reference at the epoch's
	// precision bitwise.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 25; it++ {
				p := indexPatients[(g+it)%len(indexPatients)]
				resp, body := postQuiet(ts.URL+"/v1/suggest", SuggestRequest{Patient: p, K: k})
				want := func(prec string) []dssddi.Suggestion { return wantIndex[prec][p] }
				if err := check(resp, body, want, "index"); err != nil {
					fail(err)
					return
				}
			}
		}(g)
	}

	// Registry readers: embeddings are re-quantized on every swap; the
	// response must match the reference SuggestFor at the precision.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 25; it++ {
				id := fmt.Sprintf("prec-%d", (g+it)%regPatients)
				resp, body := postQuiet(ts.URL+"/v1/suggest", SuggestRequest{PatientID: id, K: k})
				want := func(prec string) []dssddi.Suggestion { return wantReg[prec] }
				if err := check(resp, body, want, "registry"); err != nil {
					fail(err)
					return
				}
			}
		}(g)
	}

	// One writer re-registering the same regimen: registry writes and
	// their inline embeds race the precision swaps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for it := 0; it < 15; it++ {
			id := fmt.Sprintf("prec-%d", it%regPatients)
			r, b := doQuiet(http.MethodPut, ts.URL+"/v1/patients/"+id, PatientPutRequest{Regimen: regimen})
			if r == nil || r.StatusCode != http.StatusOK && r.StatusCode != http.StatusCreated {
				fail(fmt.Errorf("writer: PUT %s failed: %v %s", id, r, b))
				return
			}
		}
	}()

	// Reloads run on the test goroutine, alternating f32 and f64; the
	// epoch->precision mapping is announced before each reload so no
	// reader can observe an unmapped epoch.
	const reloadCount = 6
	for i := 0; i < reloadCount; i++ {
		prec := "f32"
		if i%2 == 1 {
			prec = "f64"
		}
		epochPrec.Store(int64(i+2), prec)
		resp, body := post(t, ts.URL+"/v1/admin/reload", ReloadRequest{Precision: prec})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload %d: %d %s", i, resp.StatusCode, body)
		}
		var rr ReloadResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		if rr.Epoch != int64(i+2) || rr.Precision != prec {
			t.Fatalf("reload %d: epoch %d precision %q, want %d %q", i, rr.Epoch, rr.Precision, i+2, prec)
		}
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

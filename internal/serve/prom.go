package serve

import (
	"bytes"
	"net/http"
	"sort"
	"time"

	"dssddi/internal/obs"
)

// writePromMetrics renders /metricsz?format=prometheus: the same
// counters as the JSON payload in the text exposition format, plus
// full latency histograms (the JSON view only carries the estimated
// quantiles). Endpoint series are emitted in sorted order so
// consecutive scrapes are byte-comparable.
func (s *Server) writePromMetrics(w http.ResponseWriter, ep *servingEpoch) int {
	var buf bytes.Buffer

	b := obs.Build()
	obs.PromHeader(&buf, "dssddi_build_info", "gauge", "Build identity of the running binary (value is always 1).")
	obs.PromSample(&buf, "dssddi_build_info",
		obs.PromLabel("commit", b.Short())+","+obs.PromLabel("go", b.GoVersion), 1)

	obs.PromHeader(&buf, "dssddi_uptime_seconds", "gauge", "Seconds since the server booted.")
	obs.PromSample(&buf, "dssddi_uptime_seconds", "", time.Since(s.start).Seconds())
	obs.PromHeader(&buf, "dssddi_epoch", "gauge", "Current serving epoch.")
	obs.PromInt(&buf, "dssddi_epoch", "", ep.id)
	obs.PromHeader(&buf, "dssddi_reloads_total", "counter", "Hot reloads performed.")
	obs.PromInt(&buf, "dssddi_reloads_total", "", s.reloads.Load())

	obs.PromHeader(&buf, "dssddi_precision_info", "gauge", "Serving precision of the current epoch (value is always 1).")
	obs.PromSample(&buf, "dssddi_precision_info", obs.PromLabel("precision", ep.precision), 1)
	obs.PromHeader(&buf, "dssddi_model_resident_bytes", "gauge", "Explicit resident bytes of the serving model representation at the active precision.")
	obs.PromInt(&buf, "dssddi_model_resident_bytes", "", int64(ep.sys.ResidentModelBytes()))
	obs.PromHeader(&buf, "dssddi_registry_embedding_bytes", "gauge", "Explicit resident bytes of the registry's cached patient embeddings.")
	obs.PromInt(&buf, "dssddi_registry_embedding_bytes", "", s.patients.embeddingBytes())

	names := make([]string, 0, len(s.metrics.endpoints))
	for name := range s.metrics.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)

	obs.PromHeader(&buf, "dssddi_requests_total", "counter", "Requests by endpoint.")
	for _, name := range names {
		obs.PromInt(&buf, "dssddi_requests_total", obs.PromLabel("endpoint", name), s.metrics.get(name).requests.Load())
	}
	obs.PromHeader(&buf, "dssddi_request_errors_total", "counter", "Requests answered with status >= 400, by endpoint.")
	for _, name := range names {
		obs.PromInt(&buf, "dssddi_request_errors_total", obs.PromLabel("endpoint", name), s.metrics.get(name).errors.Load())
	}
	obs.PromHeader(&buf, "dssddi_sheds_total", "counter", "Requests shed by admission control, by endpoint.")
	for _, name := range names {
		if lim := s.limits[name]; lim != nil {
			obs.PromInt(&buf, "dssddi_sheds_total", obs.PromLabel("endpoint", name), lim.shedCount())
		}
	}
	obs.PromHeader(&buf, "dssddi_deadline_timeouts_total", "counter", "Requests answered 504 because their propagated deadline expired.")
	obs.PromInt(&buf, "dssddi_deadline_timeouts_total", "", s.deadlineTimeouts.Load())

	obs.PromHeader(&buf, "dssddi_request_duration_seconds", "histogram", "Request latency by endpoint.")
	for _, name := range names {
		obs.PromHistogram(&buf, "dssddi_request_duration_seconds", obs.PromLabel("endpoint", name), s.metrics.get(name).lat.Snapshot())
	}

	writeCache := func(name string, c *lruCache) {
		hits, misses := c.Stats()
		l := obs.PromLabel("cache", name)
		obs.PromInt(&buf, "dssddi_cache_hits_total", l, hits)
		obs.PromInt(&buf, "dssddi_cache_misses_total", l, misses)
	}
	obs.PromHeader(&buf, "dssddi_cache_hits_total", "counter", "Result-cache hits by cache.")
	obs.PromHeader(&buf, "dssddi_cache_misses_total", "counter", "Result-cache misses by cache.")
	writeCache("suggest", ep.suggestCache)
	writeCache("explain", ep.explainCache)

	batches, reqs := ep.batcher.Stats()
	obs.PromHeader(&buf, "dssddi_score_batches_total", "counter", "Score-matrix calls issued by the micro-batcher (current epoch).")
	obs.PromInt(&buf, "dssddi_score_batches_total", "", batches)
	obs.PromHeader(&buf, "dssddi_score_batched_requests_total", "counter", "Patient requests served through batched score calls (current epoch).")
	obs.PromInt(&buf, "dssddi_score_batched_requests_total", "", reqs)

	obs.PromHeader(&buf, "dssddi_registry_patients", "gauge", "Registered patients.")
	obs.PromInt(&buf, "dssddi_registry_patients", "", int64(s.patients.len()))
	obs.PromHeader(&buf, "dssddi_registry_writes_total", "counter", "Accepted registry mutations.")
	obs.PromInt(&buf, "dssddi_registry_writes_total", "", s.patients.writes.Load())
	obs.PromHeader(&buf, "dssddi_registry_reembeds_total", "counter", "Embeddings recomputed for an epoch move.")
	obs.PromInt(&buf, "dssddi_registry_reembeds_total", "", s.patients.reembeds.Load())
	obs.PromHeader(&buf, "dssddi_replica_applies_total", "counter", "Replicated records installed via the registry apply endpoint.")
	obs.PromInt(&buf, "dssddi_replica_applies_total", "", s.patients.replicaApplies.Load())
	obs.PromHeader(&buf, "dssddi_replica_apply_stale_total", "counter", "Replica applies refused because the local version was equal or newer.")
	obs.PromInt(&buf, "dssddi_replica_apply_stale_total", "", s.patients.replicaStale.Load())
	obs.PromHeader(&buf, "dssddi_replication_apply_duration_seconds", "histogram", "Latency of replica-apply record installs.")
	obs.PromHistogram(&buf, "dssddi_replication_apply_duration_seconds", "", s.patients.applyLat.Snapshot())

	if st := s.patients.store; st != nil {
		obs.PromHeader(&buf, "dssddi_wal_records", "gauge", "Records in the live (un-compacted) WAL.")
		obs.PromInt(&buf, "dssddi_wal_records", "", st.log.Records())
		obs.PromHeader(&buf, "dssddi_wal_bytes", "gauge", "Payload bytes in the live WAL.")
		obs.PromInt(&buf, "dssddi_wal_bytes", "", st.log.Bytes())
		obs.PromHeader(&buf, "dssddi_wal_syncs_total", "counter", "Explicit fsyncs issued by the WAL.")
		obs.PromInt(&buf, "dssddi_wal_syncs_total", "", st.log.Syncs())
		obs.PromHeader(&buf, "dssddi_wal_checkpoints_total", "counter", "Log compactions into the checkpoint file.")
		obs.PromInt(&buf, "dssddi_wal_checkpoints_total", "", st.checkpoints.Load())
		obs.PromHeader(&buf, "dssddi_wal_append_duration_seconds", "histogram", "WAL append-to-ack latency.")
		obs.PromHistogram(&buf, "dssddi_wal_append_duration_seconds", "", st.log.AppendLatency())
	}

	w.Header().Set("Content-Type", obs.PromContentType)
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
	return http.StatusOK
}

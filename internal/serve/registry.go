package serve

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"dssddi"
	"dssddi/internal/obs"
	"dssddi/internal/regproto"
)

// patientRegistry is the server's mutable patient store: registered
// profiles (regimen + optional features) addressable by caller-chosen
// string ids, sharded with one RWMutex per shard so concurrent writes
// to different patients never serialize. Each entry caches the
// scoring-ready embedding of its profile, recomputed on every write
// and lazily refreshed when the serving epoch moves — registered
// patients survive hot reloads. The registry itself is epoch-agnostic;
// embeddings are tagged with the epoch they were built against.
//
// Locking discipline: stored slices are replace-only (a write installs
// fresh copies, never mutates in place), so a reader may hand a slice
// it extracted under RLock to the response encoder after unlocking.
type patientRegistry struct {
	shards [registryShards]registryShard

	// store, when non-nil, write-ahead-logs every mutation before it
	// is acknowledged and periodically compacts the log into a
	// checkpoint file (see durable.go). Set once before the server
	// takes traffic; nil means a volatile, RAM-only registry.
	store *durableStore

	count    atomic.Int64 // live entries (tombstones excluded)
	writes   atomic.Int64 // PUT/PATCH mutations accepted
	reembeds atomic.Int64 // embeddings recomputed for an epoch move

	// Replication counters: records installed (or refused as stale)
	// through applyReplica — router fan-out and anti-entropy sync.
	replicaApplies atomic.Int64
	replicaStale   atomic.Int64
	applyLat       obs.Histogram
}

// registryShards must equal regproto.Shards so per-shard anti-entropy
// digests computed here line up with the fleet's view.
const registryShards = regproto.Shards

type registryShard struct {
	mu    sync.RWMutex
	items map[string]*registeredPatient
}

// registeredPatient is one registry entry, guarded by its shard's
// mutex.
type registeredPatient struct {
	regimen  []int
	features []float64
	// gen counts writes to this patient; it is baked into the result
	// cache key, so a regimen update unreaches exactly this patient's
	// cached responses (O(1) invalidation; stale entries age out of
	// the LRU) without touching anyone else's.
	gen uint64
	// version is the replication-layer last-writer-wins version:
	// monotonically increasing per record, assigned by the acting ring
	// owner on each mutation, WAL-logged and replicated. Unlike gen it
	// survives restarts and is comparable across replicas.
	version uint64
	// deleted marks a tombstone: the delete is retained (with its
	// version) so replication cannot resurrect the patient by applying
	// an older set record. Tombstones are invisible to reads.
	deleted bool

	emb      *dssddi.PatientEmbedding
	embEpoch int64
	embErr   error // re-embed failure against embEpoch's model
}

func newPatientRegistry() *patientRegistry {
	r := &patientRegistry{}
	for i := range r.shards {
		r.shards[i].items = make(map[string]*registeredPatient)
	}
	return r
}

func (r *patientRegistry) shard(id string) *registryShard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &r.shards[h.Sum32()%registryShards]
}

// validPatientID bounds registry ids: 1-64 bytes of [A-Za-z0-9._-].
// Anything else is a malformed request (400), as opposed to a
// well-formed id that simply is not registered (404).
func validPatientID(id string) error {
	if id == "" {
		return fmt.Errorf("patient id must be non-empty")
	}
	if len(id) > 64 {
		return fmt.Errorf("patient id exceeds 64 bytes")
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("patient id may only contain letters, digits, '.', '_' and '-'")
		}
	}
	return nil
}

// put creates or replaces a patient's profile, embedding it against
// the given epoch's model. The profile is validated by the embed: an
// invalid one is rejected and the previous state (if any) is kept.
// The returned version is the record's new LWW version (previous
// version + 1, tombstones included, so a re-registration after a
// delete still moves the version forward).
func (r *patientRegistry) put(ep *servingEpoch, tr *obs.Trace, id string, regimen []int, features []float64) (created bool, gen, version uint64, err error) {
	emb, err := ep.sys.EmbedPatient(dssddi.PatientProfile{Regimen: regimen, Features: features})
	if err != nil {
		return false, 0, 0, err
	}
	if r.store != nil {
		r.store.gate.RLock()
	}
	sh := r.shard(id)
	sh.mu.Lock()
	p := sh.items[id]
	version = 1
	if p != nil {
		version = p.version + 1
	}
	if r.store != nil {
		// Log before install, inside the shard critical section: the
		// WAL order matches the install order, and a failed append
		// leaves the previous state intact and unacknowledged.
		var wStart time.Time
		if tr != nil {
			wStart = time.Now()
		}
		err := r.store.logSet(version, id, regimen, features)
		tr.Span("wal-append", wStart)
		if err != nil {
			sh.mu.Unlock()
			r.store.gate.RUnlock()
			return false, 0, 0, err
		}
	}
	if p == nil {
		p = &registeredPatient{}
		sh.items[id] = p
		r.count.Add(1)
		created = true
	} else if p.deleted {
		// Re-registration over a tombstone: a creation from the
		// client's point of view.
		r.count.Add(1)
		created = true
	}
	p.regimen = append([]int(nil), regimen...)
	p.features = append([]float64(nil), features...)
	if features == nil {
		p.features = nil
	}
	p.gen++
	gen = p.gen
	p.version = version
	p.deleted = false
	p.emb, p.embEpoch, p.embErr = emb, ep.id, nil
	r.writes.Add(1)
	sh.mu.Unlock()
	if r.store != nil {
		// The gate must be released before the checkpoint check: a
		// checkpoint takes its write side.
		r.store.gate.RUnlock()
		r.store.maybeCheckpoint(r)
	}
	return created, gen, version, nil
}

// patch partially updates a patient: non-nil fields replace the stored
// ones, the merged profile is re-embedded against the given epoch and
// installed atomically. found=false means no such patient. The
// returned regimen is the one this patch installed (read under the
// same critical section, so a concurrent writer can never be echoed
// back as this patch's result).
func (r *patientRegistry) patch(ep *servingEpoch, tr *obs.Trace, id string, regimen *[]int, features *[]float64) (found bool, gen, version uint64, merged []int, err error) {
	if r.store != nil {
		r.store.gate.RLock()
	}
	sh := r.shard(id)
	sh.mu.Lock()
	unlock := func() {
		sh.mu.Unlock()
		if r.store != nil {
			r.store.gate.RUnlock()
		}
	}
	p := sh.items[id]
	if p == nil || p.deleted {
		unlock()
		return false, 0, 0, nil, nil
	}
	newRegimen, newFeatures := p.regimen, p.features
	if regimen != nil {
		newRegimen = append([]int(nil), *regimen...)
	}
	if features != nil {
		newFeatures = append([]float64(nil), *features...)
		if *features == nil {
			newFeatures = nil
		}
	}
	emb, err := ep.sys.EmbedPatient(dssddi.PatientProfile{Regimen: newRegimen, Features: newFeatures})
	if err != nil {
		unlock()
		return true, 0, 0, nil, err
	}
	version = p.version + 1
	if r.store != nil {
		// The merged profile is logged absolute, so replay never
		// depends on the pre-patch state.
		var wStart time.Time
		if tr != nil {
			wStart = time.Now()
		}
		err := r.store.logSet(version, id, newRegimen, newFeatures)
		tr.Span("wal-append", wStart)
		if err != nil {
			unlock()
			return true, 0, 0, nil, err
		}
	}
	p.regimen, p.features = newRegimen, newFeatures
	p.gen++
	gen = p.gen
	p.version = version
	merged = p.regimen
	p.emb, p.embEpoch, p.embErr = emb, ep.id, nil
	r.writes.Add(1)
	unlock()
	if r.store != nil {
		r.store.maybeCheckpoint(r)
	}
	return true, gen, version, merged, nil
}

// delete tombstones a patient, reporting whether it existed. The
// entry is kept as a versioned tombstone (invisible to reads) so
// replication and anti-entropy order the delete against concurrent
// set records instead of resurrecting the patient. A non-nil error
// means the tombstone could not be logged durably; the patient is
// kept.
func (r *patientRegistry) delete(id string) (bool, uint64, error) {
	if r.store != nil {
		r.store.gate.RLock()
	}
	sh := r.shard(id)
	sh.mu.Lock()
	unlock := func() {
		sh.mu.Unlock()
		if r.store != nil {
			r.store.gate.RUnlock()
		}
	}
	p, ok := sh.items[id]
	if !ok || p.deleted {
		unlock()
		return false, 0, nil
	}
	version := p.version + 1
	if r.store != nil {
		if err := r.store.logDelete(version, id); err != nil {
			unlock()
			return true, 0, err
		}
	}
	p.regimen, p.features = nil, nil
	p.emb, p.embErr = nil, nil
	p.deleted = true
	p.version = version
	p.gen++
	r.count.Add(-1)
	unlock()
	if r.store != nil {
		r.store.maybeCheckpoint(r)
	}
	return true, version, nil
}

// get returns a snapshot of a patient's profile. Tombstones read as
// not-found.
func (r *patientRegistry) get(id string) (regimen []int, features []float64, gen, version uint64, embEpoch int64, found bool) {
	sh := r.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	p := sh.items[id]
	if p == nil || p.deleted {
		return nil, nil, 0, 0, 0, false
	}
	return p.regimen, p.features, p.gen, p.version, p.embEpoch, true
}

// embeddingFor returns the patient's embedding valid for the given
// epoch, recomputing it if the cached one belongs to an older epoch
// (the lazy half of hot reload; Swap's eager reembedAll normally makes
// this a read-lock fast path). Recomputation runs OUTSIDE the shard
// locks — the stored slices are replace-only, so the profile read
// under RLock stays valid — and is installed only when it moves the
// entry forward: a request still pinned to a pre-swap epoch gets a
// transient embedding for its own epoch without clobbering a newer
// one (no re-embed ping-pong during the drain window). The returned
// regimen slice is the stored (replace-only) one and safe to encode
// after return.
func (r *patientRegistry) embeddingFor(ep *servingEpoch, id string) (emb *dssddi.PatientEmbedding, gen uint64, regimen []int, found bool, err error) {
	sh := r.shard(id)
	sh.mu.RLock()
	p := sh.items[id]
	if p == nil || p.deleted {
		sh.mu.RUnlock()
		return nil, 0, nil, false, nil
	}
	gen, regimen = p.gen, p.regimen
	features := p.features
	emb, embEpoch, err := p.emb, p.embEpoch, p.embErr
	sh.mu.RUnlock()
	if embEpoch == ep.id {
		return emb, gen, regimen, true, err
	}

	fresh, ferr := ep.sys.EmbedPatient(dssddi.PatientProfile{Regimen: regimen, Features: features})
	r.reembeds.Add(1)
	if embEpoch < ep.id {
		sh.mu.Lock()
		// Install only if the entry still describes the profile we
		// embedded and nobody moved it to this epoch (or past it)
		// meanwhile.
		if q := sh.items[id]; q != nil && q.gen == gen && q.embEpoch < ep.id {
			q.emb, q.embEpoch, q.embErr = fresh, ep.id, ferr
		}
		sh.mu.Unlock()
	}
	return fresh, gen, regimen, true, ferr
}

// reembedAll refreshes every entry against a new epoch — called by
// Swap before the epoch pointer is published. Profiles are snapshotted
// under a read lock and embedded lock-free; each install takes the
// shard lock only briefly, so suggest traffic on the old epoch is
// never stalled behind a whole shard's worth of embeds.
func (r *patientRegistry) reembedAll(ep *servingEpoch) {
	type job struct {
		id       string
		regimen  []int
		features []float64
		gen      uint64
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		jobs := make([]job, 0, len(sh.items))
		for id, p := range sh.items {
			if !p.deleted && p.embEpoch < ep.id {
				jobs = append(jobs, job{id, p.regimen, p.features, p.gen})
			}
		}
		sh.mu.RUnlock()
		for _, j := range jobs {
			emb, err := ep.sys.EmbedPatient(dssddi.PatientProfile{Regimen: j.regimen, Features: j.features})
			r.reembeds.Add(1)
			sh.mu.Lock()
			if p := sh.items[j.id]; p != nil && p.gen == j.gen && p.embEpoch < ep.id {
				p.emb, p.embEpoch, p.embErr = emb, ep.id, err
			}
			sh.mu.Unlock()
		}
	}
}

func (r *patientRegistry) len() int { return int(r.count.Load()) }

// embeddingBytes sums the resident size of every cached patient
// embedding — the registry term of the /metricsz memory accounting.
// At precision f32/int8 each embedding stores narrowed slices, so the
// total is about half the f64 figure for the same registry.
func (r *patientRegistry) embeddingBytes() int64 {
	var total int64
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, p := range sh.items {
			total += int64(p.emb.Bytes())
		}
		sh.mu.RUnlock()
	}
	return total
}

// applyReplica installs one replicated record (router fan-out or
// anti-entropy sync), gated on its version: the record is applied
// only if its version is strictly newer than the locally stored one
// (last-writer-wins; a stale or duplicate apply is an idempotent
// no-op). The outcome reports whether it applied and the version now
// stored locally. Applied records are WAL-logged with the incoming
// version — a replica's acknowledged copy must survive its own crash
// — and re-embedded against the current epoch so the replica can
// serve failover reads immediately. An embed failure does not refuse
// the record (state convergence outranks a scorable embedding; the
// error is kept and surfaces on suggest), so replicas converge even
// mid-rollout when models briefly differ.
func (r *patientRegistry) applyReplica(ep *servingEpoch, rec regproto.Record) (applied bool, version uint64, err error) {
	t0 := time.Now()
	defer func() { r.applyLat.Observe(time.Since(t0)) }()
	var emb *dssddi.PatientEmbedding
	var embErr error
	if !rec.Deleted {
		emb, embErr = ep.sys.EmbedPatient(dssddi.PatientProfile{Regimen: rec.Regimen, Features: rec.Features})
	}
	if r.store != nil {
		r.store.gate.RLock()
	}
	sh := r.shard(rec.ID)
	sh.mu.Lock()
	p := sh.items[rec.ID]
	if p != nil && p.version >= rec.Version {
		local := p.version
		sh.mu.Unlock()
		if r.store != nil {
			r.store.gate.RUnlock()
		}
		r.replicaStale.Add(1)
		return false, local, nil
	}
	if r.store != nil {
		var lerr error
		if rec.Deleted {
			lerr = r.store.logDelete(rec.Version, rec.ID)
		} else {
			lerr = r.store.logSet(rec.Version, rec.ID, rec.Regimen, rec.Features)
		}
		if lerr != nil {
			sh.mu.Unlock()
			r.store.gate.RUnlock()
			return false, 0, lerr
		}
	}
	wasLive := p != nil && !p.deleted
	if p == nil {
		p = &registeredPatient{}
		sh.items[rec.ID] = p
	}
	if rec.Deleted {
		p.regimen, p.features = nil, nil
		p.emb, p.embErr = nil, nil
		p.deleted = true
		if wasLive {
			r.count.Add(-1)
		}
	} else {
		p.regimen = append([]int(nil), rec.Regimen...)
		p.features = append([]float64(nil), rec.Features...)
		if rec.Features == nil {
			p.features = nil
		}
		p.deleted = false
		p.emb, p.embEpoch, p.embErr = emb, ep.id, embErr
		if !wasLive {
			r.count.Add(1)
		}
	}
	p.version = rec.Version
	p.gen++
	sh.mu.Unlock()
	if r.store != nil {
		r.store.gate.RUnlock()
		r.store.maybeCheckpoint(r)
	}
	r.replicaApplies.Add(1)
	return true, rec.Version, nil
}

// records snapshots every registry record — tombstones included — as
// canonical replication records, for the digest and sync endpoints.
// Slices are the stored replace-only ones, safe to encode after the
// locks drop.
func (r *patientRegistry) records() []regproto.Record {
	out := make([]regproto.Record, 0, r.count.Load())
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for id, p := range sh.items {
			out = append(out, regproto.Record{
				ID:       id,
				Version:  p.version,
				Deleted:  p.deleted,
				Regimen:  p.regimen,
				Features: p.features,
			})
		}
		sh.mu.RUnlock()
	}
	return out
}

// recordsFor snapshots records filtered by shard and/or explicit ids,
// per one sync pull.
func (r *patientRegistry) recordsFor(req regproto.SyncRequest) []regproto.Record {
	if len(req.IDs) > 0 {
		out := make([]regproto.Record, 0, len(req.IDs))
		for _, id := range req.IDs {
			sh := r.shard(id)
			sh.mu.RLock()
			if p := sh.items[id]; p != nil {
				out = append(out, regproto.Record{
					ID: id, Version: p.version, Deleted: p.deleted,
					Regimen: p.regimen, Features: p.features,
				})
			}
			sh.mu.RUnlock()
		}
		return out
	}
	if len(req.Shards) == 0 {
		return r.records()
	}
	want := make(map[int]bool, len(req.Shards))
	for _, s := range req.Shards {
		want[s] = true
	}
	var out []regproto.Record
	for i := range r.shards {
		if !want[i] {
			continue
		}
		sh := &r.shards[i]
		sh.mu.RLock()
		for id, p := range sh.items {
			out = append(out, regproto.Record{
				ID: id, Version: p.version, Deleted: p.deleted,
				Regimen: p.regimen, Features: p.features,
			})
		}
		sh.mu.RUnlock()
	}
	return out
}

package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"testing"

	"dssddi"
)

// do issues a request with an arbitrary method (the registry endpoints
// use PUT/PATCH/DELETE).
func do(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func sameSuggestions(got []SuggestionOut, want []dssddi.Suggestion) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i].DrugID != want[i].DrugID || math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			return false
		}
	}
	return true
}

// TestPatientRegistryLifecycle drives the full registry surface:
// register, suggest by id (bitwise equal to the library's inductive
// path), live regimen update with per-patient cache invalidation,
// delete, and the 400-vs-404 split for registry ids.
func TestPatientRegistryLifecycle(t *testing.T) {
	sys := system(t)
	_, ts := newTestServer(t, Config{})

	regimen1 := []int{0, 2, 5}
	regimen2 := []int{0, 7}

	// Create: 201, then replace: 200.
	resp, body := do(t, http.MethodPut, ts.URL+"/v1/patients/alice", PatientPutRequest{Regimen: regimen1})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d: %s", resp.StatusCode, body)
	}
	resp, _ = do(t, http.MethodPut, ts.URL+"/v1/patients/alice", PatientPutRequest{Regimen: regimen1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replace status %d", resp.StatusCode)
	}

	// Suggest by registered id — the inductive path, bitwise equal to
	// the library.
	resp, body = post(t, ts.URL+"/v1/suggest", SuggestRequest{PatientID: "alice", K: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("suggest status %d: %s", resp.StatusCode, body)
	}
	var got SuggestResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	want, err := sys.SuggestFor(dssddi.PatientProfile{Regimen: regimen1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSuggestions(got.Suggestions, want) {
		t.Fatalf("registered suggest diverged from library: %s", body)
	}
	if got.PatientID != "alice" || got.Patient != -1 {
		t.Fatalf("response must name the registered patient: %s", body)
	}

	// Second request hits the cache.
	resp, _ = post(t, ts.URL+"/v1/suggest", SuggestRequest{PatientID: "alice", K: 4})
	if resp.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("repeat suggest X-Cache %q, want HIT", resp.Header.Get("X-Cache"))
	}

	// Live regimen update invalidates exactly this patient's cache
	// (the gen in the key moves) and the next suggest reflects it.
	resp, body = do(t, http.MethodPatch, ts.URL+"/v1/patients/alice", map[string]any{"regimen": regimen2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch status %d: %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/v1/suggest", SuggestRequest{PatientID: "alice", K: 4})
	if resp.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("post-update suggest X-Cache %q, want MISS", resp.Header.Get("X-Cache"))
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	want, err = sys.SuggestFor(dssddi.PatientProfile{Regimen: regimen2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSuggestions(got.Suggestions, want) {
		t.Fatalf("post-update suggest diverged: %s", body)
	}

	// GET reflects the stored profile.
	resp, body = do(t, http.MethodGet, ts.URL+"/v1/patients/alice", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get status %d", resp.StatusCode)
	}
	var pr PatientResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Regimen) != len(regimen2) || pr.Gen != 3 {
		t.Fatalf("profile drifted: %s", body)
	}

	// Delete, then everything 404s.
	if resp, _ = do(t, http.MethodDelete, ts.URL+"/v1/patients/alice", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	if resp, _ = do(t, http.MethodDelete, ts.URL+"/v1/patients/alice", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("re-delete status %d, want 404", resp.StatusCode)
	}
	if resp, _ = post(t, ts.URL+"/v1/suggest", SuggestRequest{PatientID: "alice"}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("suggest for deleted patient: %d, want 404", resp.StatusCode)
	}
}

// TestPatientStatusCodes pins the malformed-vs-unknown split for both
// addressing modes: 400 for bad input, 404 for well-formed input that
// names no patient.
func TestPatientStatusCodes(t *testing.T) {
	sys := system(t)
	_, ts := newTestServer(t, Config{})

	// Dataset indices.
	if resp, _ := post(t, ts.URL+"/v1/suggest", SuggestRequest{Patient: sys.Data().NumPatients()}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("out-of-range index must 404, got %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/v1/suggest", SuggestRequest{Patient: -3}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative index must 400, got %d", resp.StatusCode)
	}
	p := 1 << 29
	if resp, _ := post(t, ts.URL+"/v1/explain", ExplainRequest{Patient: &p}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("explain out-of-range index must 404, got %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/v1/alerts", AlertsRequest{Drugs: []int{0}, Patient: &p}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("alerts out-of-range index must 404, got %d", resp.StatusCode)
	}

	// Registry ids.
	if resp, _ := post(t, ts.URL+"/v1/suggest", SuggestRequest{PatientID: "nobody-here"}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown registry id must 404, got %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/v1/suggest", SuggestRequest{PatientID: "bad id!"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed registry id must 400, got %d", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodPut, ts.URL+"/v1/patients/bad%20id", PatientPutRequest{Regimen: []int{0}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed id on PUT must 400, got %d", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodPatch, ts.URL+"/v1/patients/ghost", map[string]any{"regimen": []int{0}}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("PATCH unknown id must 404, got %d", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodPut, ts.URL+"/v1/patients/badreg", PatientPutRequest{Regimen: []int{-4}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid regimen must 400, got %d", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodPut, ts.URL+"/v1/patients/empty", PatientPutRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty profile must 400, got %d", resp.StatusCode)
	}
}
